package graphgen_test

import (
	"testing"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/pcolor"
)

// TestMeshShape pins the grid generator's exact structure: edge
// count 2wh - w - h, degree <= 4, and a proper 4-coloring exists
// (first-fit over the natural order 4-colors any grid).
func TestMeshShape(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{1, 1}, {1, 7}, {5, 1}, {4, 4}, {31, 17}} {
		g, costs := graphgen.Mesh(tc.w, tc.h)
		n := tc.w * tc.h
		if g.NumNodes() != n || len(costs) != n {
			t.Fatalf("%dx%d: %d nodes, %d costs", tc.w, tc.h, g.NumNodes(), len(costs))
		}
		want := 2*tc.w*tc.h - tc.w - tc.h
		if g.NumEdges() != want {
			t.Fatalf("%dx%d: %d edges, want %d", tc.w, tc.h, g.NumEdges(), want)
		}
		if g.MaxDegree() > 4 {
			t.Fatalf("%dx%d: max degree %d > 4", tc.w, tc.h, g.MaxDegree())
		}
		colors, st := pcolor.Color(g, pcolor.Options{Workers: 2, Seed: 1, Algo: pcolor.JonesPlassmann})
		if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
			t.Fatalf("%dx%d: %v", tc.w, tc.h, err)
		}
		if n > 1 && st.ColorsInt > 5 {
			// First-fit in degree order may use 5 on grids; never more
			// (grids are 4-degenerate... in fact 2-degenerate, but the
			// Welsh–Powell order only guarantees maxdeg+1).
			t.Fatalf("%dx%d: %d colors on a grid", tc.w, tc.h, st.ColorsInt)
		}
	}
}

// TestPowerLawShape pins the preferential-attachment generator: the
// exact edge count m(m+1)/2 + (n-m-1)m, a heavy-tailed degree
// profile (the hubs' degree far exceeds the 2m average), and
// determinism in the seed.
func TestPowerLawShape(t *testing.T) {
	const n, m = 20000, 3
	g, costs := graphgen.PowerLaw(n, m, 11)
	if g.NumNodes() != n || len(costs) != n {
		t.Fatalf("%d nodes, %d costs", g.NumNodes(), len(costs))
	}
	want := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != want {
		t.Fatalf("%d edges, want exactly %d", g.NumEdges(), want)
	}
	// Every non-nucleus node attaches to m distinct targets, so the
	// minimum degree is m; the hubs must dwarf the 2m average.
	if g.MaxDegree() < 10*m {
		t.Fatalf("max degree %d: no heavy tail (average is %d)", g.MaxDegree(), 2*m)
	}
	for v := int32(0); v < int32(n); v++ {
		if g.Degree(v) < m {
			t.Fatalf("node %d has degree %d < m=%d", v, g.Degree(v), m)
		}
	}
	for i, c := range costs {
		if c < 1 || c >= 1000 {
			t.Fatalf("cost[%d] = %v out of [1, 1000)", i, c)
		}
	}
}

// TestPowerLawDeterminism: same seed, same graph; different seed,
// different graph.
func TestPowerLawDeterminism(t *testing.T) {
	a, _ := graphgen.PowerLaw(3000, 4, 7)
	b, _ := graphgen.PowerLaw(3000, 4, 7)
	c, _ := graphgen.PowerLaw(3000, 4, 8)
	sameAsA := func(o interface {
		NumEdges() int
		Degree(int32) int
	}) bool {
		if o.NumEdges() != a.NumEdges() {
			return false
		}
		for v := int32(0); v < int32(a.NumNodes()); v++ {
			if a.Degree(v) != o.Degree(v) {
				return false
			}
		}
		return true
	}
	if !sameAsA(b) {
		t.Fatal("same seed produced different graphs")
	}
	if sameAsA(c) {
		t.Fatal("different seeds produced identical degree sequences")
	}
}

// TestPowerLawColorable is the scale smoke at test size: a 10^5-node
// power-law graph colors properly under both engines.
func TestPowerLawColorable(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke")
	}
	g, _ := graphgen.PowerLaw(100_000, 4, 1)
	for _, algo := range []pcolor.Algo{pcolor.Speculative, pcolor.JonesPlassmann} {
		colors, st := pcolor.Color(g, pcolor.Options{Workers: 4, Seed: 1, Algo: algo})
		if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}
