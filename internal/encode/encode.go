// Package encode serializes assembled programs (package asm) to a
// compact binary object format and back. This is the repository's
// "object file" layer: a compiled benchmark can be written to disk
// and executed later without recompiling, and the decoder doubles as
// an independent check that lowered code is fully described by its
// printable fields (the round-trip tests run decoded programs and
// compare results).
//
// Format (little-endian):
//
//	file   := magic u32 | version u8 | nfuncs uvarint | func*
//	func   := name str | flags u8 | retcls u8 | gpr uvarint | fpr uvarint
//	          | nparams uvarint | paramcls u8* | ninstr uvarint | instr*
//	instr  := op u8 | layout-specific operands
//	str    := len uvarint | bytes
//
// Register operands are one byte (0xFF = absent); immediates are
// zigzag varints; float immediates are 8 raw bytes; branch targets
// are uvarints. The per-op operand layout is table-driven and shared
// by the encoder and decoder.
package encode

import (
	"encoding/binary"
	"fmt"
	"math"

	"regalloc/internal/asm"
	"regalloc/internal/ir"
	"regalloc/internal/target"
)

const (
	magic   = 0x52414C43 // "CLAR"
	version = 1
)

// field identifies one operand slot of an instruction.
type field uint8

const (
	fDst field = iota
	fA
	fB
	fC
	fCls
	fACls
	fImm
	fFImm
	fCmp
	fT0
	fCallee
	fArgs
)

// layouts maps each opcode to the operand fields it carries, in
// encoding order.
var layouts = map[ir.Op][]field{
	ir.OpNop:   {},
	ir.OpParam: {fDst, fCls, fImm},
	ir.OpConst: {fDst, fCls, fImm, fFImm},
	ir.OpMove:  {fDst, fA, fCls},
	ir.OpItoF:  {fDst, fA},
	ir.OpFtoI:  {fDst, fA},
	ir.OpAdd:   {fDst, fA, fB},
	ir.OpSub:   {fDst, fA, fB},
	ir.OpMul:   {fDst, fA, fB},
	ir.OpDiv:   {fDst, fA, fB},
	ir.OpMod:   {fDst, fA, fB},
	ir.OpNeg:   {fDst, fA},
	ir.OpIMin:  {fDst, fA, fB},
	ir.OpIMax:  {fDst, fA, fB},
	ir.OpIAbs:  {fDst, fA},
	ir.OpISign: {fDst, fA, fB},
	ir.OpIPow:  {fDst, fA, fB},
	ir.OpAddI:  {fDst, fA, fImm},
	ir.OpMulI:  {fDst, fA, fImm},
	ir.OpFAdd:  {fDst, fA, fB},
	ir.OpFSub:  {fDst, fA, fB},
	ir.OpFMul:  {fDst, fA, fB},
	ir.OpFDiv:  {fDst, fA, fB},
	ir.OpFNeg:  {fDst, fA},
	ir.OpFMin:  {fDst, fA, fB},
	ir.OpFMax:  {fDst, fA, fB},
	ir.OpFAbs:  {fDst, fA},
	ir.OpFSqrt: {fDst, fA},
	ir.OpFExp:  {fDst, fA},
	ir.OpFLog:  {fDst, fA},
	ir.OpFSin:  {fDst, fA},
	ir.OpFCos:  {fDst, fA},
	ir.OpFSign: {fDst, fA, fB},
	ir.OpFMod:  {fDst, fA, fB},
	ir.OpFPow:  {fDst, fA, fB},
	ir.OpLoad:  {fDst, fB, fC, fCls, fImm},
	ir.OpStore: {fA, fB, fC, fCls, fACls, fImm},
	ir.OpBr:    {fT0},
	ir.OpBrIf:  {fA, fB, fCmp, fCls, fT0},
	ir.OpRet:   {fA, fACls},
	ir.OpCall:  {fDst, fCls, fCallee, fArgs},
}

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) reg(r int16) {
	if r == asm.NoReg {
		w.u8(0xFF)
		return
	}
	w.u8(uint8(r))
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail("encode: truncated input at %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("encode: truncated input at %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("encode: bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("encode: bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("encode: truncated float at %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil || r.off+int(n) > len(r.buf) {
		r.fail("encode: truncated string at %d", r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) reg() int16 {
	v := r.u8()
	if v == 0xFF {
		return asm.NoReg
	}
	return int16(v)
}

// EncodeProgram serializes every function of p.
func EncodeProgram(p *asm.Program) ([]byte, error) {
	w := &writer{}
	w.u32(magic)
	w.u8(version)
	w.uvarint(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		if err := encodeFunc(w, f); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

func encodeFunc(w *writer, f *asm.Func) error {
	w.str(f.Name)
	flags := uint8(0)
	if f.HasRet {
		flags |= 1
	}
	w.u8(flags)
	w.u8(uint8(f.RetCls))
	w.uvarint(uint64(f.Machine.NumGPR))
	w.uvarint(uint64(f.Machine.NumFPR))
	w.uvarint(uint64(len(f.ParamCls)))
	for _, c := range f.ParamCls {
		w.u8(uint8(c))
	}
	w.uvarint(uint64(len(f.Code)))
	for i := range f.Code {
		in := &f.Code[i]
		lay, ok := layouts[in.Op]
		if !ok {
			return fmt.Errorf("encode: %s: no layout for op %s", f.Name, in.Op)
		}
		w.u8(uint8(in.Op))
		for _, fd := range lay {
			switch fd {
			case fDst:
				w.reg(in.Dst)
			case fA:
				w.reg(in.A)
			case fB:
				w.reg(in.B)
			case fC:
				w.reg(in.C)
			case fCls:
				w.u8(uint8(in.Cls))
			case fACls:
				w.u8(uint8(in.ACls))
			case fImm:
				w.varint(in.Imm)
			case fFImm:
				w.f64(in.FImm)
			case fCmp:
				w.u8(uint8(in.Cmp))
			case fT0:
				w.uvarint(uint64(in.T0))
			case fCallee:
				w.str(in.Callee)
			case fArgs:
				w.uvarint(uint64(len(in.Args)))
				for _, a := range in.Args {
					w.reg(a.R)
					w.u8(uint8(a.Cls))
				}
			}
		}
	}
	return nil
}

// DecodeProgram parses a serialized program.
func DecodeProgram(data []byte) (*asm.Program, error) {
	r := &reader{buf: data}
	if r.u32() != magic {
		return nil, fmt.Errorf("encode: bad magic")
	}
	if v := r.u8(); v != version {
		return nil, fmt.Errorf("encode: unsupported version %d", v)
	}
	n := r.uvarint()
	p := asm.NewProgram()
	for i := uint64(0); i < n && r.err == nil; i++ {
		f := decodeFunc(r)
		if r.err == nil {
			p.Add(f)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("encode: %d trailing bytes", len(data)-r.off)
	}
	return p, nil
}

func decodeFunc(r *reader) *asm.Func {
	f := &asm.Func{Name: r.str(), Machine: target.Machine{Name: "decoded"}}
	flags := r.u8()
	f.HasRet = flags&1 != 0
	f.RetCls = ir.Class(r.u8())
	f.Machine.NumGPR = int(r.uvarint())
	f.Machine.NumFPR = int(r.uvarint())
	np := r.uvarint()
	for i := uint64(0); i < np && r.err == nil; i++ {
		f.ParamCls = append(f.ParamCls, ir.Class(r.u8()))
	}
	ni := r.uvarint()
	for i := uint64(0); i < ni && r.err == nil; i++ {
		op := ir.Op(r.u8())
		lay, ok := layouts[op]
		if !ok {
			r.fail("encode: unknown op %d", op)
			return f
		}
		in := asm.Instr{Op: op, Dst: asm.NoReg, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, T1: -1}
		for _, fd := range lay {
			switch fd {
			case fDst:
				in.Dst = r.reg()
			case fA:
				in.A = r.reg()
			case fB:
				in.B = r.reg()
			case fC:
				in.C = r.reg()
			case fCls:
				in.Cls = ir.Class(r.u8())
			case fACls:
				in.ACls = ir.Class(r.u8())
			case fImm:
				in.Imm = r.varint()
			case fFImm:
				in.FImm = r.f64()
			case fCmp:
				in.Cmp = ir.Cmp(r.u8())
			case fT0:
				in.T0 = int32(r.uvarint())
			case fCallee:
				in.Callee = r.str()
			case fArgs:
				na := r.uvarint()
				for j := uint64(0); j < na && r.err == nil; j++ {
					reg := r.reg()
					cls := ir.Class(r.u8())
					in.Args = append(in.Args, asm.ArgRef{R: reg, Cls: cls})
				}
			}
		}
		normalizeClasses(&in)
		f.Code = append(f.Code, in)
	}
	return f
}

// normalizeClasses reconstructs the Cls/ACls fields that are implied
// by the opcode and therefore not encoded. The lowering pass sets
// them on every instruction; reproducing them keeps
// decode(encode(f)) structurally identical to f.
func normalizeClasses(in *asm.Instr) {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpNeg,
		ir.OpIMin, ir.OpIMax, ir.OpIAbs, ir.OpISign, ir.OpIPow,
		ir.OpAddI, ir.OpMulI:
		in.Cls = ir.ClassInt
		if in.A != asm.NoReg {
			in.ACls = ir.ClassInt
		}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
		ir.OpFMin, ir.OpFMax, ir.OpFAbs, ir.OpFSqrt, ir.OpFExp,
		ir.OpFLog, ir.OpFSin, ir.OpFCos, ir.OpFSign, ir.OpFMod, ir.OpFPow:
		in.Cls = ir.ClassFloat
		if in.A != asm.NoReg {
			in.ACls = ir.ClassFloat
		}
	case ir.OpItoF:
		in.Cls = ir.ClassFloat
		in.ACls = ir.ClassInt
	case ir.OpFtoI:
		in.Cls = ir.ClassInt
		in.ACls = ir.ClassFloat
	case ir.OpMove:
		in.ACls = in.Cls
	}
}
