package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regalloc"
	"regalloc/internal/cachekey"
	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/obs/promtext"
	"regalloc/internal/pcolor"
	"regalloc/internal/portfolio"
	"regalloc/internal/reqtrace"
	"regalloc/internal/rescache"
)

// Default result-cache bounds: generous for the service's small JSON
// bodies, tight enough that a runaway corpus cannot eat the host.
const (
	defaultCacheEntries = 1024
	defaultCacheBytes   = 64 << 20
)

// server is the allocd state: the run registry and live-event
// aggregate behind /metrics, the content-addressed result cache, and
// the admission semaphore bounding concurrent allocation work.
// Handlers are safe for concurrent use.
type server struct {
	reg      *obs.Registry
	metrics  *obs.MetricsSink
	cache    *rescache.Cache // nil: result caching disabled
	sem      chan struct{}   // admission: one slot per in-flight request
	recorder *reqtrace.Recorder
	reqLat   *obs.ExemplarHistogram // request latency with trace exemplars
	access   *accessLog             // nil: access logging disabled
	ready    atomic.Bool
	started  time.Time

	// allocTimeout, when > 0, caps each allocation request's
	// wall-clock (queueing for admission included). Expiry while the
	// service is healthy answers 429 Retry-After — the work would
	// succeed on a quieter instant — while drain and client
	// cancellation stay 503.
	allocTimeout time.Duration

	// legacyOnce guards the one-time deprecation log for /alloc.
	legacyOnce sync.Once
}

func newServer(maxInflight int) *server {
	if maxInflight < 1 {
		maxInflight = 1
	}
	s := &server{
		reg:      obs.NewRegistry(),
		metrics:  obs.NewMetricsSink(),
		cache:    rescache.New(defaultCacheEntries, defaultCacheBytes),
		sem:      make(chan struct{}, maxInflight),
		recorder: reqtrace.NewRecorder(recorderSlowCap, recorderErrCap),
		reqLat:   new(obs.ExemplarHistogram),
		started:  time.Now(),
	}
	s.ready.Store(true)
	return s
}

// routes mounts the full handler set on a fresh mux. pprof is
// mounted explicitly (rather than via the package's DefaultServeMux
// side effect) so the service owns every route it serves.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/alloc", s.traced(s.handleAlloc))
	mux.HandleFunc("/v1/alloc/batch", s.traced(s.handleBatch))
	mux.HandleFunc("/alloc", s.traced(s.handleAllocLegacy))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// beginShutdown flips readiness off so load balancers drain the
// instance before Shutdown closes the listener.
func (s *server) beginShutdown() { s.ready.Store(false) }

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics renders every metric family. The snapshots are taken
// one after the other, not atomically, so a single scrape can catch a
// run in one family but not yet another; the skew is one in-flight
// request and self-corrects by the next scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := promtext.Write(w, s.reg.Snapshot()); err != nil {
		return // client went away; nothing sensible to do
	}
	if err := promtext.WriteMetrics(w, s.metrics.Snapshot()); err != nil {
		return
	}
	if s.cache != nil {
		if err := promtext.WriteCache(w, s.cache.Stats()); err != nil {
			return
		}
	}
	if err := promtext.WriteExemplarHistogram(w, "allocd_request_duration_seconds",
		"Wall time of one allocation request, with per-bucket trace exemplars.", s.reqLat); err != nil {
		return
	}
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(w, "# HELP allocd_inflight_requests Allocation requests currently admitted.\n# TYPE allocd_inflight_requests gauge\nallocd_inflight_requests %d\n", len(s.sem))
	fmt.Fprintf(w, "# HELP allocd_ready Whether the instance is accepting traffic.\n# TYPE allocd_ready gauge\nallocd_ready %d\n", ready)
	fmt.Fprintf(w, "# HELP allocd_uptime_seconds Seconds since the service started.\n# TYPE allocd_uptime_seconds gauge\nallocd_uptime_seconds %d\n", int64(time.Since(s.started).Seconds()))
}

// maxBodyBytes bounds the request body: mini-FORTRAN sources and .ig
// graphs are small; anything larger is a mistake or abuse.
const maxBodyBytes = 8 << 20

// igFirstLine recognizes a .ig graph body by its mandatory leading
// node-count directive.
var igFirstLine = regexp.MustCompile(`^n\s+\d+`)

// handleAllocLegacy is the deprecated /alloc route: the same handler
// as /v1/alloc (the shared parser accepts both request forms), plus
// the successor-version headers and a one-time log nudging callers
// over.
func (s *server) handleAllocLegacy(w http.ResponseWriter, r *http.Request) {
	s.legacyOnce.Do(func() {
		log.Printf("allocd: /alloc is deprecated; use /v1/alloc (same request forms, structured errors)")
	})
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/alloc>; rel="successor-version"`)
	s.handleAlloc(w, r)
}

// readBody drains the request body under the size cap, classifying
// failures: only an actual overflow is 413; other read errors
// (disconnects, transport faults) are the client's 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, failErr(http.StatusRequestEntityTooLarge, codeBodyTooLarge, "reading body", err)
		}
		return nil, failErr(http.StatusBadRequest, codeBadBody, "reading body", err)
	}
	return body, nil
}

// requestContext layers the per-request -alloc-timeout deadline under
// the client's own context, so whichever expires first cancels the
// work.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.allocTimeout > 0 {
		return context.WithTimeout(r.Context(), s.allocTimeout)
	}
	return r.Context(), func() {}
}

// admit takes one admission slot, or classifies the failure: a
// deadline that fires while the service is healthy is backpressure
// (429 Retry-After — the same request succeeds on a quieter
// instant), drain and client cancellation are 503.
func (s *server) admit(ctx context.Context) (func(), *apiError) {
	// Check the deadline before the select: with an already-expired
	// context both select arms are ready and the choice would be
	// random, turning the -alloc-timeout answer into a coin flip.
	if err := ctx.Err(); err != nil {
		return nil, s.ctxFailure(ctx, "queued for admission", codeAdmissionTimeout)
	}
	select {
	case s.sem <- struct{}{}:
		return sync.OnceFunc(func() { <-s.sem }), nil
	case <-ctx.Done():
		return nil, s.ctxFailure(ctx, "queued for admission", codeAdmissionTimeout)
	}
}

// ctxFailure maps a context failure to its status: 503 while
// draining or for a client cancellation, 429 for a deadline on a
// healthy instance. timeoutCode distinguishes where the deadline hit
// (admission queue vs. the allocation itself).
func (s *server) ctxFailure(ctx context.Context, what, timeoutCode string) *apiError {
	err := ctx.Err()
	if s.ready.Load() && errors.Is(err, context.DeadlineExceeded) {
		return failErr(http.StatusTooManyRequests, timeoutCode, what, err)
	}
	return failErr(http.StatusServiceUnavailable, codeUnavailable, what, err)
}

// handleAlloc is POST /v1/alloc: decode (JSON body or legacy query
// form), admit, then serve from the result cache or run the
// allocation. Portfolio races bypass the cache — they are
// wall-clock-dependent by design.
func (s *server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, failf(http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a mini-FORTRAN source, .ig graph, or JSON request"))
		return
	}
	body, fail := readBody(w, r)
	if fail != nil {
		writeError(w, fail)
		return
	}
	req, fail := decodeAllocRequest(r, body)
	if fail != nil {
		writeError(w, fail)
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, failf(http.StatusBadRequest, codeEmptyBody, "empty source: POST a mini-FORTRAN source or .ig graph"))
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	// Admission: one semaphore slot per in-flight allocation, so a
	// burst queues instead of oversubscribing the host (each request
	// may itself fan out opt.Workers goroutines). The slot is released
	// through a once-guarded closure because the portfolio path hands
	// it back early: there each racing candidate is admitted against
	// the same semaphore individually, and holding the request's own
	// slot across the race would deadlock at -max-inflight=1.
	release, fail := s.admit(ctx)
	if fail != nil {
		writeError(w, fail)
		return
	}
	defer release()

	kind, fail := req.inputKind()
	if fail != nil {
		writeError(w, fail)
		return
	}
	if spec := req.portfolioSpec(); spec != "" {
		if kind != "src" {
			writeError(w, failf(http.StatusBadRequest, codeBadRequest, "portfolio races apply to source programs, not .ig graphs"))
			return
		}
		s.allocPortfolio(w, ctx, req, spec, release)
		return
	}

	resp, out, fail := s.allocCached(ctx, req, kind)
	if fail != nil {
		writeError(w, fail)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", out.String())
	w.Write(resp)
}

// allocCached parses the payload, derives the content-addressed key,
// and serves the rendered response through the result cache (the
// singleflight layer collapses concurrent identical requests onto one
// allocation). Parsing happens before the lookup because the key is a
// digest of the canonical form — the parsed IR or graph — not of the
// request text, so formatting-only variants of the same input collide
// on purpose.
func (s *server) allocCached(ctx context.Context, req *AllocRequest, kind string) ([]byte, rescache.Outcome, *apiError) {
	opt, fail := req.options()
	if fail != nil {
		return nil, rescache.Miss, fail
	}
	rt, _ := reqtrace.FromContext(ctx)
	rt.Annotate("unit", requestUnit(req, kind))
	rt.Annotate("heuristic", requestHeuristic(req, opt))

	var key cachekey.Key
	var fill func() ([]byte, error)
	switch kind {
	case "src":
		prog, err := regalloc.Compile(req.Source)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: "(compile)", Error: true})
			return nil, rescache.Miss, failErr(http.StatusBadRequest, codeCompileFailed, "compile", err)
		}
		if req.Unit != "" && prog.Func(req.Unit) == nil {
			s.reg.Record(obs.RunSummary{Unit: req.Unit, Error: true})
			return nil, rescache.Miss, failf(http.StatusBadRequest, codeUnknownUnit, "no unit %s (have %s)", req.Unit, strings.Join(prog.Functions(), ", "))
		}
		key = srcKey(prog, opt, req)
		fill = func() ([]byte, error) { return s.sourceBody(ctx, prog, opt, req) }
	case "ig":
		g, costs, err := graphgen.ReadGraph(strings.NewReader(req.Source))
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: "(graph)", Error: true})
			return nil, rescache.Miss, failErr(http.StatusBadRequest, codeBadGraph, "parse graph", err)
		}
		key = graphKey(g, costs, opt, req)
		fill = func() ([]byte, error) { return s.graphBody(ctx, g, costs, opt, req) }
	default:
		return nil, rescache.Miss, failf(http.StatusBadRequest, codeBadRequest, "unknown input kind %q", kind)
	}

	if s.cache == nil || req.NoCache {
		b, err := fill()
		rt.Annotate("cache", "bypass")
		if err != nil {
			return nil, rescache.Miss, s.asAPIError(ctx, err)
		}
		return b, rescache.Miss, nil
	}
	b, out, err := s.cache.Do(ctx, key, fill)
	rt.Annotate("cache", out.String())
	if err != nil {
		return nil, out, s.asAPIError(ctx, err)
	}
	return b, out, nil
}

// requestUnit names the request's allocation target for annotations
// and the access log, matching the unit labels the registry uses.
func requestUnit(req *AllocRequest, kind string) string {
	if req.Unit != "" {
		return req.Unit
	}
	if kind == "ig" {
		return "graph"
	}
	return "(program)"
}

// requestHeuristic names the engine for annotations and the access
// log: the explicit request string when given (it distinguishes
// pcolor, which Options folds into flags), the parsed option's
// heuristic otherwise.
func requestHeuristic(req *AllocRequest, opt regalloc.Options) string {
	if req.Heuristic != "" {
		return req.Heuristic
	}
	return opt.Heuristic.String()
}

// asAPIError normalizes a fill error: typed failures pass through,
// context failures (a waiter abandoned by its deadline, a cancelled
// run) get the drain/backpressure classification, anything else is
// the service's 500.
func (s *server) asAPIError(ctx context.Context, err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return s.ctxFailure(ctx, "allocation cancelled", codeDeadlineExceeded)
	}
	return failErr(http.StatusInternalServerError, codeInternal, "allocation", err)
}

// srcKey is the cache identity of one source-program request: the
// digest of the unit set actually allocated (the whole program, or
// the one selected routine), the full options fingerprint, and the
// response-shaping fields. Equivalent sources — same IR after the
// front end normalizes comments, spacing, and names — collide;
// different configurations never do.
func srcKey(prog *regalloc.Program, opt regalloc.Options, req *AllocRequest) cachekey.Key {
	var pk cachekey.Key
	if req.Unit != "" {
		pk = cachekey.Func(prog.Func(req.Unit))
	} else {
		pk = cachekey.Program(prog.IR.Funcs)
	}
	ok := cachekey.Options(opt)
	h := cachekey.New("allocd/v1/src")
	h.Bytes(pk[:])
	h.Bytes(ok[:])
	h.Str(req.Unit)
	h.Bool(req.Colors)
	return h.Key()
}

// graphKey is the cache identity of one .ig request: the canonical
// graph digest (edge order and formatting do not matter), the options
// fingerprint — with the pcolor engine's (seed, workers) folded in
// when that is the requested heuristic — and the response-shaping
// colors flag. The metrics unit label is deliberately excluded: it
// names the run for observability and does not change a byte of the
// response.
func graphKey(g *ig.Graph, costs []float64, opt regalloc.Options, req *AllocRequest) cachekey.Key {
	keyOpt := opt
	if req.Heuristic == "pcolor" {
		keyOpt.UsePColor = true
		keyOpt.PColorSeed = pcolorSeed(req)
		keyOpt.PColorWorkers = pcolorWorkers(req)
	}
	gk := cachekey.Graph(g, costs)
	ok := cachekey.Options(keyOpt)
	h := cachekey.New("allocd/v1/ig")
	h.Bytes(gk[:])
	h.Bytes(ok[:])
	h.Bool(req.Colors)
	return h.Key()
}

// pcolorSeed and pcolorWorkers resolve the speculative engine's
// parameters. Workers is resolved to its effective count up front so
// the cache key and the run agree (pcolor itself maps <= 0 to
// GOMAXPROCS).
func pcolorSeed(req *AllocRequest) uint64 {
	if req.Seed != nil {
		return *req.Seed
	}
	return 1
}

func pcolorWorkers(req *AllocRequest) int {
	if req.Workers != nil && *req.Workers > 0 {
		return *req.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// unitResponse is one routine's allocation in the reply.
type unitResponse struct {
	Unit         string           `json:"unit"`
	LiveRanges   int              `json:"live_ranges"`
	Edges        int              `json:"edges"`
	Passes       int              `json:"passes"`
	Spilled      int              `json:"spilled"`
	SpillCost    float64          `json:"spill_cost"`
	PaletteInt   int              `json:"palette_int"`
	PaletteFloat int              `json:"palette_float"`
	TotalNS      int64            `json:"total_ns"`
	PhaseNS      map[string]int64 `json:"phase_ns"`
	Colors       []int16          `json:"colors,omitempty"`

	// Portfolio carries the race report when the portfolio raced this
	// unit; the flat fields above then describe the winner.
	Portfolio *portfolioResponse `json:"portfolio,omitempty"`
}

// portfolioResponse is one unit's race report in the reply.
type portfolioResponse struct {
	Mode       string                       `json:"mode"`
	Winner     string                       `json:"winner"`
	WinMargin  float64                      `json:"win_margin"`
	Candidates []portfolioCandidateResponse `json:"candidates"`
}

// portfolioCandidateResponse is one strategy's outcome in a race.
type portfolioCandidateResponse struct {
	Name      string  `json:"name"`
	Status    string  `json:"status"`
	Spills    int     `json:"spills"`
	SpillCost float64 `json:"spill_cost"`
	NS        int64   `json:"ns"`
	Error     string  `json:"error,omitempty"`
}

type allocResponse struct {
	Input        string         `json:"input"`
	Units        []unitResponse `json:"units"`
	SpilledTotal int            `json:"spilled_total"`
	SpillCost    float64        `json:"spill_cost_total"`
	TotalNS      int64          `json:"total_ns"`

	// Machine echoes the resolved register-file model when the
	// request asked for one: what the allocation was constrained by,
	// per class.
	Machine *machineResponse `json:"machine,omitempty"`
}

// machineResponse is the resolved machine model in the reply.
type machineResponse struct {
	Name    string                 `json:"name"`
	Classes []machineClassResponse `json:"classes"`
}

// machineClassResponse describes one register class's file and
// convention.
type machineClassResponse struct {
	Class       string  `json:"class"`
	K           int     `json:"k"`
	CallerSaved int     `json:"caller_saved"`
	ArgRegs     []int16 `json:"arg_regs"`
	RetReg      int16   `json:"ret_reg"`
}

// machineEcho renders the model for the response.
func machineEcho(m *regalloc.MachineModel) *machineResponse {
	if m == nil {
		return nil
	}
	mr := &machineResponse{Name: m.Name}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		mr.Classes = append(mr.Classes, machineClassResponse{
			Class:       c.String(),
			K:           m.NumRegs[c],
			CallerSaved: m.CallerSaved[c],
			ArgRegs:     m.ArgRegs[c],
			RetReg:      m.RetReg[c],
		})
	}
	return mr
}

// sourceBody allocates a compiled program's routines (all, or the
// one the request selects) on the bounded worker pool and renders
// the response. It runs as a cache fill: on a hit none of this — the
// allocation, the registry recording — happens again, by design.
func (s *server) sourceBody(ctx context.Context, prog *regalloc.Program, opt regalloc.Options, req *AllocRequest) ([]byte, error) {
	opt.Observer = s.metrics
	var results map[string]*regalloc.Result
	if req.Unit != "" {
		res, err := prog.AllocateContext(ctx, req.Unit, opt)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: req.Unit, Error: true})
			return nil, failErr(http.StatusBadRequest, codeBadRequest, "allocate "+req.Unit, err)
		}
		results = map[string]*regalloc.Result{req.Unit: res}
	} else {
		var err error
		results, err = prog.AllocateAllContext(ctx, opt)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: "(program)", Error: true})
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, s.ctxFailure(ctx, "allocate", codeDeadlineExceeded)
			}
			return nil, failErr(http.StatusBadRequest, codeBadRequest, "allocate", err)
		}
	}

	resp := allocResponse{Input: "src", Machine: machineEcho(opt.Machine)}
	var costMilli int64
	for _, name := range prog.Functions() {
		res, ok := results[name]
		if !ok {
			continue
		}
		sum := regalloc.Summarize(name, res)
		s.reg.Record(sum)
		costMilli += sum.SpillCostMilli
		u := unitResponse{
			Unit:         name,
			LiveRanges:   sum.LiveRanges,
			Edges:        sum.Edges,
			Passes:       sum.Passes,
			Spilled:      sum.Spills,
			SpillCost:    float64(sum.SpillCostMilli) / 1000,
			PaletteInt:   sum.PaletteInt,
			PaletteFloat: sum.PaletteFloat,
			TotalNS:      sum.TotalNS,
			PhaseNS:      phaseNSMap(sum),
		}
		if req.Colors {
			u.Colors = res.Colors
		}
		resp.Units = append(resp.Units, u)
		resp.SpilledTotal += sum.Spills
		resp.SpillCost += float64(sum.SpillCostMilli) / 1000
		resp.TotalNS += sum.TotalNS
	}
	if rt, _ := reqtrace.FromContext(ctx); rt != nil {
		rt.Annotate("spill_cost_milli", strconv.FormatInt(costMilli, 10))
	}
	return renderJSON(resp)
}

// allocPortfolio races the strategy portfolio for each requested
// routine and replies with the winner plus the full race report. spec
// is "all" or a comma-separated candidate-name subset; pmode,
// pbudget, and pseeds tune the race. The request's own admission slot
// is handed back up front and each racing candidate acquires its own
// instead, so a race counts against -max-inflight exactly as many
// slots as it has strategies in flight — and cannot deadlock at
// -max-inflight=1. Races never touch the result cache: their outcome
// depends on wall-clock, which a digest cannot capture.
func (s *server) allocPortfolio(w http.ResponseWriter, ctx context.Context, req *AllocRequest, spec string, release func()) {
	opt, fail := req.options()
	if fail != nil {
		writeError(w, fail)
		return
	}
	rt, _ := reqtrace.FromContext(ctx)
	rt.Annotate("unit", requestUnit(req, "src"))
	rt.Annotate("heuristic", "portfolio")
	rt.Annotate("cache", "bypass")
	opt.Observer = s.metrics
	prog, err := regalloc.Compile(req.Source)
	if err != nil {
		s.reg.Record(obs.RunSummary{Unit: "(compile)", Error: true})
		writeError(w, failErr(http.StatusBadRequest, codeCompileFailed, "compile", err))
		return
	}

	seeds := portfolio.DefaultSeeds
	if req.PSeeds != "" {
		seeds = nil
		for _, f := range strings.Split(req.PSeeds, ",") {
			seed, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				writeError(w, failErr(http.StatusBadRequest, codeBadRequest, "pseeds", err))
				return
			}
			seeds = append(seeds, seed)
		}
	}
	cands := regalloc.DefaultPortfolio(opt, seeds...)
	if spec != "all" {
		byName := make(map[string]regalloc.PortfolioCandidate, len(cands))
		names := make([]string, 0, len(cands))
		for _, c := range cands {
			byName[c.Name] = c
			names = append(names, c.Name)
		}
		var picked []regalloc.PortfolioCandidate
		for _, f := range strings.Split(spec, ",") {
			name := strings.TrimSpace(f)
			c, ok := byName[name]
			if !ok {
				writeError(w, failf(http.StatusBadRequest, codeBadRequest, "portfolio: unknown candidate %q (have %s)", name, strings.Join(names, ", ")))
				return
			}
			picked = append(picked, c)
		}
		cands = picked
	}

	cfg := regalloc.PortfolioConfig{Observer: s.metrics}
	if req.PMode != "" {
		if cfg.Mode, err = portfolio.ParseMode(req.PMode); err != nil {
			writeError(w, failErr(http.StatusBadRequest, codeBadRequest, "pmode", err))
			return
		}
	}
	if req.PBudget != "" {
		if cfg.Budget, err = time.ParseDuration(req.PBudget); err != nil {
			writeError(w, failErr(http.StatusBadRequest, codeBadRequest, "pbudget", err))
			return
		}
	}
	// Per-candidate admission against the service semaphore: a
	// candidate queued for a slot gives up when the request context
	// (or the race budget) is done, which cancels that candidate, not
	// the race.
	cfg.Acquire = func(ctx context.Context) error {
		select {
		case s.sem <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	cfg.Release = func() { <-s.sem }
	release()

	units := prog.Functions()
	if req.Unit != "" {
		units = []string{req.Unit}
	}
	resp := allocResponse{Input: "src", Machine: machineEcho(opt.Machine)}
	var costMilli int64
	for _, name := range units {
		pr, err := prog.AllocatePortfolio(ctx, name, cands, cfg)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: name, Error: true})
			// A race that died to the deadline or a client disconnect
			// is the service's drain/backpressure answer, like every
			// other cancellation; a bad unit name or candidate set is
			// the client's 400.
			if ctx.Err() != nil {
				writeError(w, s.ctxFailure(ctx, "portfolio "+name, codeDeadlineExceeded))
			} else {
				writeError(w, failErr(http.StatusBadRequest, codeBadRequest, "portfolio "+name, err))
			}
			return
		}
		sum := regalloc.SummarizePortfolio(name, pr)
		s.reg.Record(sum)
		costMilli += sum.SpillCostMilli
		u := unitResponse{
			Unit:         name,
			LiveRanges:   sum.LiveRanges,
			Edges:        sum.Edges,
			Passes:       sum.Passes,
			Spilled:      sum.Spills,
			SpillCost:    float64(sum.SpillCostMilli) / 1000,
			PaletteInt:   sum.PaletteInt,
			PaletteFloat: sum.PaletteFloat,
			TotalNS:      sum.TotalNS,
			PhaseNS:      phaseNSMap(sum),
		}
		win := pr.Outcomes[pr.Winner]
		p := &portfolioResponse{
			Mode:      pr.Mode.String(),
			Winner:    win.Name,
			WinMargin: float64(pr.WinMarginMilli) / 1000,
		}
		for _, o := range pr.Outcomes {
			pc := portfolioCandidateResponse{
				Name:      o.Name,
				Status:    o.Status.String(),
				Spills:    o.Spills,
				SpillCost: float64(o.SpillCostMilli) / 1000,
				NS:        o.Duration.Nanoseconds(),
			}
			if o.Err != nil {
				pc.Error = o.Err.Error()
			}
			p.Candidates = append(p.Candidates, pc)
		}
		u.Portfolio = p
		if req.Colors {
			u.Colors = pr.Res.Colors
		}
		resp.Units = append(resp.Units, u)
		resp.SpilledTotal += sum.Spills
		resp.SpillCost += float64(sum.SpillCostMilli) / 1000
		resp.TotalNS += sum.TotalNS
	}
	rt.Annotate("spill_cost_milli", strconv.FormatInt(costMilli, 10))
	writeJSON(w, resp)
}

// graphResponse is the reply for an interference-graph payload.
type graphResponse struct {
	Input     string  `json:"input"`
	Heuristic string  `json:"heuristic"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Spilled   []int32 `json:"spilled"`
	SpillCost float64 `json:"spill_cost"`
	Colors    []int16 `json:"colors,omitempty"`

	// pcolor only:
	Workers     int `json:"workers,omitempty"`
	Rounds      int `json:"rounds,omitempty"`
	Conflicts   int `json:"conflicts,omitempty"`
	Recolored   int `json:"recolored,omitempty"`
	ColorsInt   int `json:"colors_int,omitempty"`
	ColorsFloat int `json:"colors_float,omitempty"`
}

// graphBody colors a parsed .ig graph under one heuristic (chaitin,
// briggs, mb, or the speculative parallel engine with
// heuristic=pcolor) and renders the response. Like sourceBody it
// runs as a cache fill.
func (s *server) graphBody(ctx context.Context, g *ig.Graph, costs []float64, opt regalloc.Options, req *AllocRequest) ([]byte, error) {
	name := req.Unit
	if name == "" {
		name = "graph"
	}
	rt, parent := reqtrace.FromContext(ctx)

	// The SSA heuristic colors in dominance order and IRC coalesces
	// move instructions, neither of which a bare interference graph
	// carries; both apply to source payloads only.
	if opt.Heuristic == color.SSA {
		return nil, failErr(http.StatusBadRequest, codeBadHeuristic, "heuristic",
			errors.New("heuristic ssa needs program structure (dominance order); send mini-FORTRAN source, not a graph"))
	}
	if opt.Heuristic == color.IRC {
		return nil, failErr(http.StatusBadRequest, codeBadHeuristic, "heuristic",
			errors.New("heuristic irc needs program structure (move instructions); send mini-FORTRAN source, not a graph"))
	}
	// Likewise the machine model: precolored argument and return
	// bindings attach to instructions, not to anonymous graph nodes.
	if opt.Machine != nil {
		return nil, failErr(http.StatusBadRequest, codeBadMachine, "machine",
			errors.New("a machine model needs program structure (convention bindings); send mini-FORTRAN source, not a graph"))
	}

	if req.Heuristic == "pcolor" {
		t0 := time.Now()
		colors, st := pcolor.Color(g, pcolor.Options{Workers: pcolorWorkers(req), Seed: pcolorSeed(req)})
		dur := time.Since(t0)
		graphSpan := rt.Record(parent, "alloc:"+name, t0, dur,
			reqtrace.Attr{Key: "heuristic", Value: "pcolor"})
		rt.Record(graphSpan, "phase:color", t0, dur)
		rt.Annotate("spill_cost_milli", "0")
		if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
			s.reg.Record(obs.RunSummary{Unit: name, Error: true})
			return nil, failErr(http.StatusInternalServerError, codeInternal, "pcolor verify", err)
		}
		sum := obs.RunSummary{
			Unit:            name,
			LiveRanges:      g.NumNodes(),
			Edges:           g.NumEdges(),
			PaletteInt:      st.ColorsInt,
			PaletteFloat:    st.ColorsFloat,
			PColorRounds:    st.Rounds,
			PColorConflicts: st.Conflicts,
			TotalNS:         dur.Nanoseconds(),
		}
		sum.PhaseNS[obs.PhaseColor] = dur.Nanoseconds()
		s.reg.Record(sum)
		resp := graphResponse{
			Input: "ig", Heuristic: "pcolor", Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Spilled: []int32{}, Workers: st.Workers, Rounds: st.Rounds,
			Conflicts: st.Conflicts, Recolored: st.Recolored,
			ColorsInt: st.ColorsInt, ColorsFloat: st.ColorsFloat,
		}
		if req.Colors {
			resp.Colors = colors
		}
		return renderJSON(resp)
	}

	h := opt.Heuristic
	kf := func(c ir.Class) int {
		if c == ir.ClassInt {
			return opt.KInt
		}
		return opt.KFloat
	}
	tr := obs.New(s.metrics, name)
	t0 := time.Now()
	tr.BeginPhase(obs.PhaseSimplify)
	sr := color.SimplifyTraced(g, costs, kf, h, opt.Metric, tr)
	simplifyDur := time.Since(t0)
	tr.EndPhase(obs.PhaseSimplify, simplifyDur)
	var spilled []int32
	var colors []int16
	var colorDur time.Duration
	if h == color.Chaitin && len(sr.SpillMarked) > 0 {
		spilled = sr.SpillMarked
	} else {
		tc := time.Now()
		tr.BeginPhase(obs.PhaseColor)
		colors, spilled = color.SelectTraced(g, sr, kf, h != color.Chaitin, tr)
		colorDur = time.Since(tc)
		tr.EndPhase(obs.PhaseColor, colorDur)
	}
	dur := time.Since(t0)
	cost := 0.0
	for _, n := range spilled {
		cost += costs[n]
	}
	if rt != nil {
		graphSpan := rt.Record(parent, "alloc:"+name, t0, dur,
			reqtrace.Attr{Key: "heuristic", Value: h.String()})
		rt.Record(graphSpan, "phase:simplify", t0, simplifyDur)
		if colorDur > 0 {
			rt.Record(graphSpan, "phase:color", t0.Add(simplifyDur), colorDur)
		}
		rt.Annotate("spill_cost_milli", strconv.FormatInt(obs.SpillCostMilli(cost), 10))
	}
	sum := obs.RunSummary{
		Unit:           name,
		LiveRanges:     g.NumNodes(),
		Edges:          g.NumEdges(),
		Spills:         len(spilled),
		SpillCostMilli: obs.SpillCostMilli(cost),
		TotalNS:        dur.Nanoseconds(),
	}
	if colors != nil {
		var maxInt, maxFloat int16 = -1, -1
		for n, c := range colors {
			if c < 0 {
				continue
			}
			if g.Class(int32(n)) == ir.ClassFloat {
				if c > maxFloat {
					maxFloat = c
				}
			} else if c > maxInt {
				maxInt = c
			}
		}
		sum.PaletteInt = int(maxInt) + 1
		sum.PaletteFloat = int(maxFloat) + 1
	}
	sum.PhaseNS[obs.PhaseSimplify] = simplifyDur.Nanoseconds()
	sum.PhaseNS[obs.PhaseColor] = colorDur.Nanoseconds()
	s.reg.Record(sum)

	if spilled == nil {
		spilled = []int32{}
	}
	resp := graphResponse{
		Input: "ig", Heuristic: h.String(), Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Spilled: spilled, SpillCost: cost,
	}
	if req.Colors {
		resp.Colors = colors
	}
	return renderJSON(resp)
}

// renderJSON encodes a response body exactly as writeJSON sends it,
// so cached bytes are byte-identical to a directly-written reply.
func renderJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// phaseNSMap renders a RunSummary's phase array with phase names as
// keys, for the JSON reply.
func phaseNSMap(s obs.RunSummary) map[string]int64 {
	m := make(map[string]int64, obs.NumPhases)
	for p := 0; p < obs.NumPhases; p++ {
		if s.PhaseNS[p] > 0 {
			m[obs.Phase(p).String()] = s.PhaseNS[p]
		}
	}
	return m
}
