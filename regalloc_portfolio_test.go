package regalloc_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"regalloc"
	"regalloc/internal/obs/promtext"
	"regalloc/internal/workloads"
)

// TestPortfolioNeverWorseThanStandalone is the differential oracle of
// the racing engine: over the full Figure 5 corpus, the portfolio
// winner's spill cost must be at most every candidate's cost when that
// candidate is run standalone (candidates that error standalone are
// expected to error identically inside the race and are excluded).
func TestPortfolioNeverWorseThanStandalone(t *testing.T) {
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Program, err)
		}
		for _, unit := range w.Routines {
			pr, err := prog.AllocatePortfolio(context.Background(), unit, cands, regalloc.PortfolioConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Program, unit, err)
			}
			win := pr.Outcomes[pr.Winner]
			for _, c := range cands {
				res, err := prog.Allocate(unit, c.Opt)
				if err != nil {
					// The same strategy must have lost the race the
					// same way, not silently produced a result.
					for _, o := range pr.Outcomes {
						if o.Name == c.Name && o.Err == nil {
							t.Errorf("%s/%s: %s errors standalone (%v) but finished in the race", w.Program, unit, c.Name, err)
						}
					}
					continue
				}
				cost := regalloc.Summarize(unit, res).SpillCostMilli
				if cost < win.SpillCostMilli {
					t.Errorf("%s/%s: standalone %s cost %d beats portfolio winner %s cost %d",
						w.Program, unit, c.Name, cost, win.Name, win.SpillCostMilli)
				}
			}
		}
	}
}

// TestPortfolioDeterministicWinner races the spilliest unit of the
// corpus repeatedly under different concurrency and requires the same
// winner, cost, and margin every time — the selection key is a pure
// function of the outcomes, not of goroutine finish order.
func TestPortfolioDeterministicWinner(t *testing.T) {
	w := workloads.SVD()
	prog, err := regalloc.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	type key struct {
		winner string
		cost   int64
		margin int64
	}
	var first key
	for trial := 0; trial < 4; trial++ {
		pr, err := prog.AllocatePortfolio(context.Background(), "SVD", cands, regalloc.PortfolioConfig{Workers: 1 + trial})
		if err != nil {
			t.Fatal(err)
		}
		got := key{pr.Outcomes[pr.Winner].Name, pr.Outcomes[pr.Winner].SpillCostMilli, pr.WinMarginMilli}
		if trial == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("trial %d: %+v, want %+v", trial, got, first)
		}
	}
}

// TestSummarizePortfolio checks the registry record a race produces:
// winner summary fields plus the portfolio counts.
func TestSummarizePortfolio(t *testing.T) {
	prog, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		t.Fatal(err)
	}
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	pr, err := prog.AllocatePortfolio(context.Background(), "SVD", cands, regalloc.PortfolioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := regalloc.SummarizePortfolio("SVD", pr)
	if s.Unit != "SVD" || s.PortfolioCandidates != len(cands) {
		t.Fatalf("summary: %+v", s)
	}
	if s.PortfolioWinner != pr.Outcomes[pr.Winner].Name {
		t.Fatalf("winner %q, want %q", s.PortfolioWinner, pr.Outcomes[pr.Winner].Name)
	}
	if s.SpillCostMilli != pr.Outcomes[pr.Winner].SpillCostMilli {
		t.Fatalf("cost %d, want %d", s.SpillCostMilli, pr.Outcomes[pr.Winner].SpillCostMilli)
	}
	reg := regalloc.NewRegistry()
	reg.Record(s)
	snap := reg.Snapshot()
	if snap.PortfolioRaces != 1 || snap.PortfolioWins[s.PortfolioWinner] != 1 {
		t.Fatalf("registry: %+v", snap)
	}
}

// TestPortfolioWinsLabelSetComplete pins the wins_total label-set
// contract: after one race, the registry exports a wins_total series
// for EVERY candidate strategy in the race — zero for the losers —
// not just for strategies that happen to have won. (Before entrants
// were recorded, a family like irc or ssa that never won a race was
// simply absent from /metrics, and win rates computed from the scrape
// silently skewed toward the incumbents.)
func TestPortfolioWinsLabelSetComplete(t *testing.T) {
	prog, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		t.Fatal(err)
	}
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions(), 1, 7)
	pr, err := prog.AllocatePortfolio(context.Background(), "SVD", cands, regalloc.PortfolioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := regalloc.NewRegistry()
	reg.Record(regalloc.SummarizePortfolio("SVD", pr))
	snap := reg.Snapshot()
	var sb strings.Builder
	if err := promtext.Write(&sb, snap); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wins := 0
	for _, c := range cands {
		series := fmt.Sprintf("regalloc_portfolio_wins_total{strategy=%q}", c.Name)
		if !strings.Contains(out, series) {
			t.Errorf("series %s missing from the export", series)
		}
		wins += int(snap.PortfolioWins[c.Name])
	}
	if wins != 1 {
		t.Fatalf("wins across the candidate set sum to %d, want 1", wins)
	}
	// The candidate list includes every allocator family by name.
	for _, family := range []string{"chaitin", "briggs", "mb", "ssa", "irc"} {
		found := false
		for _, c := range cands {
			if c.Name == family {
				found = true
			}
		}
		if !found {
			t.Errorf("default portfolio lacks the %s family", family)
		}
	}
}

// TestAssemblePortfolio races every unit of a program and checks the
// winning code still executes correctly on the VM.
func TestAssemblePortfolio(t *testing.T) {
	prog, err := regalloc.Compile(workloads.Quicksort().Source)
	if err != nil {
		t.Fatal(err)
	}
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	code, results, err := prog.AssemblePortfolio(context.Background(), regalloc.RTPC(), cands, regalloc.PortfolioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, unit := range prog.Functions() {
		if results[unit] == nil {
			t.Fatalf("no race result for %s", unit)
		}
	}
	if code == nil {
		t.Fatal("no code")
	}
}
