// Package fuzzgen generates random — but well-formed and
// terminating — mini-FORTRAN subroutines for differential testing:
// each generated program is compiled, executed on the reference IR
// interpreter, and executed as register-allocated machine code on
// the simulator; the results must agree for every heuristic and
// register count. This hunts for allocator bugs in corners the
// hand-ported benchmark suite never reaches (odd nestings, dead
// branches, reused temporaries, heavy redefinition).
//
// Generation rules that keep programs safe to run:
//
//   - array indices are wrapped with MOD(IABS(i), n) + 1, so every
//     access is in bounds;
//   - integer division and MOD take denominators of the form
//     1 + IABS(e), never zero;
//   - loop bounds are small constants (and DO trip counts are fixed
//     at lowering, so loops always terminate);
//   - float expressions use only +, -, *, and guarded /, keeping
//     values finite for the digest comparison.
package fuzzgen

import (
	"fmt"
	"strings"
)

// rng is a deterministic xorshift generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Config bounds the generated program's shape.
type Config struct {
	MaxStmts int // top-level statement budget (default 24)
	MaxDepth int // control-structure nesting (default 3)
}

// ArraySize is the extent of the two scratch arrays the generated
// subroutine works on; the driver must provide arrays at least this
// large.
const ArraySize = 32

// Generate returns the source of `SUBROUTINE FZ(IA, RA, N)` built
// from the seed: IA is an INTEGER scratch array, RA a REAL scratch
// array (both of ArraySize elements), and N a small integer the
// program may use in expressions. The subroutine's observable
// behaviour is its final array contents.
func Generate(seed uint64, cfg Config) string {
	if cfg.MaxStmts == 0 {
		cfg.MaxStmts = 24
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 3
	}
	g := &gen{
		r:        &rng{s: seed*2654435761 + 1},
		cfg:      cfg,
		intVars:  []string{"N", "I0", "I1", "I2", "I3"},
		realVars: []string{"R0", "R1", "R2", "R3"},
	}
	var b strings.Builder
	b.WriteString("      SUBROUTINE FZ(IA,RA,N)\n")
	b.WriteString("      INTEGER IA(*),N,I0,I1,I2,I3\n")
	b.WriteString("      REAL RA(*),R0,R1,R2,R3\n")
	// Deterministic initialization so every variable is defined
	// before the random body reads it.
	b.WriteString("      I0 = N + 1\n")
	b.WriteString("      I1 = N*2 + 3\n")
	b.WriteString("      I2 = 7 - N\n")
	b.WriteString("      I3 = 1\n")
	b.WriteString("      R0 = FLOAT(N)*0.5\n")
	b.WriteString("      R1 = 1.25\n")
	b.WriteString("      R2 = -2.0\n")
	b.WriteString("      R3 = 0.125\n")
	g.stmts(&b, "      ", cfg.MaxStmts, cfg.MaxDepth)
	b.WriteString("      RETURN\n")
	b.WriteString("      END\n")
	return b.String()
}

type gen struct {
	r        *rng
	cfg      Config
	intVars  []string
	realVars []string
	loopID   int
}

// stmts emits up to budget statements at the given indent.
func (g *gen) stmts(b *strings.Builder, ind string, budget, depth int) {
	n := 1 + g.r.intn(budget)
	for i := 0; i < n; i++ {
		g.stmt(b, ind, depth)
	}
}

func (g *gen) stmt(b *strings.Builder, ind string, depth int) {
	choice := g.r.intn(10)
	if depth <= 0 && choice >= 6 {
		choice = g.r.intn(6)
	}
	switch choice {
	case 0, 1: // integer scalar assignment
		fmt.Fprintf(b, "%s%s = %s\n", ind, g.intVar(), g.intExpr(2))
	case 2, 3: // real scalar assignment
		fmt.Fprintf(b, "%s%s = %s\n", ind, g.realVar(), g.realExpr(2))
	case 4: // integer array store
		fmt.Fprintf(b, "%sIA(%s) = %s\n", ind, g.index(), g.intExpr(2))
	case 5: // real array store
		fmt.Fprintf(b, "%sRA(%s) = %s\n", ind, g.index(), g.realExpr(2))
	case 6: // IF / ELSE
		fmt.Fprintf(b, "%sIF (%s) THEN\n", ind, g.cond())
		g.stmts(b, ind+"   ", 3, depth-1)
		if g.r.intn(2) == 0 {
			fmt.Fprintf(b, "%sELSE\n", ind)
			g.stmts(b, ind+"   ", 3, depth-1)
		}
		fmt.Fprintf(b, "%sENDIF\n", ind)
	case 7, 8: // bounded DO loop over a dedicated index
		g.loopID++
		iv := fmt.Sprintf("L%d", g.loopID)
		step := ""
		if g.r.intn(3) == 0 {
			step = ",2"
		}
		fmt.Fprintf(b, "%sDO %s = 1,%d%s\n", ind, iv, 2+g.r.intn(6), step)
		// The loop variable joins the expression pool inside the body.
		g.intVars = append(g.intVars, iv)
		g.stmts(b, ind+"   ", 3, depth-1)
		if g.r.intn(4) == 0 {
			fmt.Fprintf(b, "%sIF (%s) EXIT\n", ind+"   ", g.cond())
		}
		g.intVars = g.intVars[:len(g.intVars)-1]
		fmt.Fprintf(b, "%sENDDO\n", ind)
	case 9: // logical IF
		fmt.Fprintf(b, "%sIF (%s) %s = %s\n", ind, g.cond(), g.intVar(), g.intExpr(1))
	}
}

// intVar returns an *assignable* integer variable: never N (an
// input) and never an active DO variable (reassigning one could make
// the loop miss its exit test and spin forever).
func (g *gen) intVar() string {
	return [4]string{"I0", "I1", "I2", "I3"}[g.r.intn(4)]
}

func (g *gen) realVar() string { return g.realVars[g.r.intn(len(g.realVars))] }

// index is always in [1, ArraySize].
func (g *gen) index() string {
	return fmt.Sprintf("MOD(IABS(%s),%d) + 1", g.intExpr(1), ArraySize)
}

func (g *gen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.r.intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.intn(20)-10)
		case 1:
			return g.intVars[g.r.intn(len(g.intVars))]
		default:
			return fmt.Sprintf("IA(%s)", fmt.Sprintf("MOD(IABS(%s),%d) + 1", g.intVars[g.r.intn(len(g.intVars))], ArraySize))
		}
	}
	a := g.intExpr(depth - 1)
	c := g.intExpr(depth - 1)
	switch g.r.intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, c)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, c)
	case 2:
		return fmt.Sprintf("(%s*%s)", a, c)
	case 3:
		return fmt.Sprintf("(%s/(1 + IABS(%s)))", a, c)
	case 4:
		return fmt.Sprintf("MOD(%s, 1 + IABS(%s))", a, c)
	case 5:
		return fmt.Sprintf("MIN(%s, %s)", a, c)
	default:
		return fmt.Sprintf("MAX(%s, %s)", a, c)
	}
}

func (g *gen) realExpr(depth int) string {
	if depth <= 0 {
		switch g.r.intn(4) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.intn(8), g.r.intn(10))
		case 1:
			return g.realVars[g.r.intn(len(g.realVars))]
		case 2:
			return fmt.Sprintf("FLOAT(%s)", g.intVars[g.r.intn(len(g.intVars))])
		default:
			return fmt.Sprintf("RA(%s)", fmt.Sprintf("MOD(IABS(%s),%d) + 1", g.intVars[g.r.intn(len(g.intVars))], ArraySize))
		}
	}
	a := g.realExpr(depth - 1)
	c := g.realExpr(depth - 1)
	switch g.r.intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, c)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, c)
	case 2:
		return fmt.Sprintf("(%s*%s)", a, c)
	case 3:
		return fmt.Sprintf("(%s/(1.0 + ABS(%s)))", a, c)
	case 4:
		return fmt.Sprintf("AMIN1(%s, %s)", a, c)
	default:
		return fmt.Sprintf("SQRT(ABS(%s))", a)
	}
}

func (g *gen) cond() string {
	rel := []string{".LT.", ".LE.", ".GT.", ".GE.", ".EQ.", ".NE."}[g.r.intn(6)]
	base := fmt.Sprintf("%s %s %s", g.intExpr(1), rel, g.intExpr(1))
	switch g.r.intn(4) {
	case 0:
		return fmt.Sprintf("%s .AND. %s %s %s", base, g.intExpr(0), rel, g.intExpr(0))
	case 1:
		return fmt.Sprintf("%s .OR. %s %s %s", base, g.intExpr(0), rel, g.intExpr(0))
	default:
		return base
	}
}
