package workloads_test

import (
	"testing"

	"regalloc"
	"regalloc/internal/workloads"
)

// TestAllWorkloadsCompile checks that every benchmark program
// parses, type-checks, and lowers to valid IR, and that the expected
// routines are present.
func TestAllWorkloadsCompile(t *testing.T) {
	all := append(workloads.All(), workloads.Quicksort())
	for _, w := range all {
		w := w
		t.Run(w.Program, func(t *testing.T) {
			prog, err := regalloc.Compile(w.Source)
			if err != nil {
				t.Fatalf("compile %s: %v", w.Program, err)
			}
			for _, r := range w.Routines {
				if prog.Func(r) == nil {
					t.Errorf("%s: routine %s missing after compile", w.Program, r)
				}
			}
		})
	}
}

// TestAllWorkloadsAllocate checks that both heuristics allocate every
// routine on the paper's machine without error.
func TestAllWorkloadsAllocate(t *testing.T) {
	all := append(workloads.All(), workloads.Quicksort())
	for _, w := range all {
		w := w
		t.Run(w.Program, func(t *testing.T) {
			prog, err := regalloc.Compile(w.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, r := range w.Routines {
				for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
					opt := regalloc.DefaultOptions()
					opt.Heuristic = h
					res, err := prog.Allocate(r, opt)
					if err != nil {
						t.Fatalf("%s/%s with %s: %v", w.Program, r, h, err)
					}
					if res.LiveRanges() == 0 {
						t.Errorf("%s/%s: zero live ranges", w.Program, r)
					}
				}
			}
		})
	}
}

// TestIntegerKernelsCompileAndAllocate covers the extension workload.
func TestIntegerKernelsCompileAndAllocate(t *testing.T) {
	w := workloads.IntegerKernels()
	prog, err := regalloc.Compile(w.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, r := range w.Routines {
		if prog.Func(r) == nil {
			t.Fatalf("routine %s missing", r)
		}
		if _, err := prog.Allocate(r, regalloc.DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", r, err)
		}
	}
}

// TestByName covers the registry lookup.
func TestByName(t *testing.T) {
	for _, name := range []string{"SVD", "LINPACK", "SIMPLEX", "EULER", "CEDETA", "QSORT", "INTKERN"} {
		w, err := workloads.ByName(name)
		if err != nil || w.Program != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := workloads.ByName("NOPE"); err == nil {
		t.Error("ByName(NOPE) should fail")
	}
}
