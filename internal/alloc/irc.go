package alloc

import (
	"context"
	"fmt"
	"time"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/irc"
	"regalloc/internal/liverange"
	"regalloc/internal/obs"
	"regalloc/internal/spill"
)

// runIRC dispatches opt.Heuristic == color.IRC to the iterated
// register coalescing allocator (internal/irc), with spilling
// decoupled from coalescing — the same separation the SSA allocator
// already uses, and for the same reason. Interleaving aggressive
// coalescing with spill decisions lets merged webs inflate graph
// pressure before the spill chooser runs, which is exactly the
// pathology optimistic coalescing (Park & Moon) was invented to
// undo: an "iterate everything" driver measurably spills units the
// plain Figure 4 cycle colors cleanly. So the driver splits the work
// by objective:
//
//  1. Spill rounds run the unmodified Figure 4 cycle under Briggs
//     optimism with the conservative coalescing pre-pass — the
//     strongest non-IRC configuration — until a pass completes with
//     no new spills. Spill placement, and therefore total spill
//     cost, is identical to that baseline by construction.
//  2. The worklist machine (simplify / coalesce / freeze
//     interleaved, George and Briggs tests, move-biased select) then
//     runs once on the final colorable program. Conservative tests
//     guarantee its merges preserve colorability, so this round can
//     only delete copies, never add spills; in the rare case the
//     baseline's zero-spill coloring depended on optimism the round
//     cannot reproduce, the driver falls back to the phase 1
//     coloring unchanged.
//
// Each phase 1 pass lands in Result.Passes as usual; the worklist
// round is appended as one more pass, its machine charged to the
// simplify phase and its rewrite + select to the color phase.
func runIRC(ctx context.Context, f *ir.Func, opt Options) (*Result, error) {
	// Phase 1: decide spills with the Figure 4 baseline. Everything
	// else about the request (machine model, spill lowering flavor,
	// costs, metric, observer) carries over unchanged.
	base := opt
	base.Heuristic = color.Briggs
	base.Coalesce = true
	base.ConservativeCoalesce = true
	res, err := RunContext(ctx, f, base)
	if err != nil {
		return nil, err
	}
	res.Options = opt
	work := res.Func
	kf := opt.K()
	tr := obs.New(opt.Observer, f.Name)
	runStart := time.Now()
	tr.SetPass(len(res.Passes))

	// Phase 2: one worklist-machine round over the colorable program.
	var ps PassStats
	tr.BeginPhase(obs.PhaseBuild)
	t0 := time.Now()
	liverange.Renumber(work)
	pc := newPassCtx(work)
	var mg *ig.MachineGraph
	if opt.Machine != nil {
		mg = ig.BuildWithMachine(work, pc.lv, opt.Machine, tr)
	} else {
		mg = ig.WrapPlain(ig.BuildWithLiveness(work, pc.lv, opt.Workers, tr))
	}
	var costs []float64
	if opt.Rematerialize {
		rematOK, _ := spill.Remat(work)
		costs = spill.CostsRemat(work, opt.CostParams, rematOK)
	} else {
		costs = spill.Costs(work, opt.CostParams)
	}
	ps.Build = time.Since(t0)
	ps.LiveRanges = work.NumRegs()
	ps.Edges = mg.NumEdges()
	tr.EndPhase(obs.PhaseBuild, ps.Build)
	pc.emitCounters(tr)
	if tr.Enabled() {
		tr.Counter(obs.PhaseBuild, "graph.nodes", int64(mg.NumNodes()))
		tr.Counter(obs.PhaseBuild, "graph.edges", int64(ps.Edges))
	}

	tr.BeginPhase(obs.PhaseSimplify)
	t0 = time.Now()
	// Terminal round: spill-temp moves are fair game — no further
	// spill round can be forced to spill a widened temporary web.
	rr := irc.ColorWith(work, mg, costs, kf, opt.Metric, tr, irc.Opts{CoalesceSpillTemps: true})
	ps.Simplify = time.Since(t0)
	tr.EndPhase(obs.PhaseSimplify, ps.Simplify)

	if len(rr.Spilled) > 0 {
		// The baseline coloring leaned on optimism this round's
		// conservative merges broke. Keep the baseline result: cost
		// and copies exactly as Briggs left them.
		return res, nil
	}

	tr.BeginPhase(obs.PhaseColor)
	t0 = time.Now()
	ps.CoalescedMoves = rr.ApplyRewrite(work)
	colors := append([]int16(nil), rr.Colors[:work.NumRegs()]...)
	ps.Color = time.Since(t0)
	tr.EndPhase(obs.PhaseColor, ps.Color)
	res.Passes = append(res.Passes, ps)
	if opt.Machine != nil {
		if err := VerifyAssignmentMachine(work, colors, opt.Machine); err != nil {
			return nil, fmt.Errorf("alloc: %s: irc: %w", f.Name, err)
		}
	} else if err := VerifyAssignment(work, colors); err != nil {
		return nil, fmt.Errorf("alloc: %s: irc: %w", f.Name, err)
	}
	res.Func = work
	res.Colors = colors
	recordPassSpans(ctx, f.Name, opt, res.Passes[len(res.Passes)-1:], runStart)
	return res, nil
}
