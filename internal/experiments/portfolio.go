package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"regalloc"
	"regalloc/internal/portfolio"
	"regalloc/internal/workloads"
)

// PortfolioCandidateRow is one strategy's outcome in one routine's
// race.
type PortfolioCandidateRow struct {
	Name      string
	Status    string
	Spills    int
	CostMilli int64
	NS        int64
}

// PortfolioRow is one routine's race.
type PortfolioRow struct {
	Program     string
	Routine     string
	Winner      string
	Spills      int
	CostMilli   int64
	MarginMilli int64
	Candidates  []PortfolioCandidateRow
}

// PortfolioStudyResult is the full racing study.
type PortfolioStudyResult struct {
	Mode string
	Rows []PortfolioRow
	// Wins counts races won per strategy, the portfolio's
	// justification in one map: no single strategy wins them all.
	Wins map[string]int
}

// PortfolioStudy races the default strategy portfolio (the paper's
// two heuristics, the alternative spill metrics, smallest-last, and
// the speculative pcolor engine under three seeds) over every routine
// of the Figure 5 corpus and reports each race's outcome table. The
// study is the engine's evidence for the Das-style hybrid argument:
// the winner column varies by routine, and the portfolio's cost is
// the per-routine minimum by construction. Runs feed the package
// observer, so -trace surfaces per-candidate event streams.
func PortfolioStudy() (*PortfolioStudyResult, error) {
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	out := &PortfolioStudyResult{Mode: portfolio.RaceToBest.String(), Wins: map[string]int{}}
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("portfolio study: compile %s: %w", w.Program, err)
		}
		for _, routine := range w.Routines {
			pr, err := prog.AllocatePortfolio(context.Background(), routine, cands,
				regalloc.PortfolioConfig{Observer: observer})
			if err != nil {
				return nil, fmt.Errorf("portfolio study: %s/%s: %w", w.Program, routine, err)
			}
			win := pr.Outcomes[pr.Winner]
			row := PortfolioRow{
				Program:     w.Program,
				Routine:     routine,
				Winner:      win.Name,
				Spills:      win.Spills,
				CostMilli:   win.SpillCostMilli,
				MarginMilli: pr.WinMarginMilli,
			}
			for _, o := range pr.Outcomes {
				row.Candidates = append(row.Candidates, PortfolioCandidateRow{
					Name:      o.Name,
					Status:    o.Status.String(),
					Spills:    o.Spills,
					CostMilli: o.SpillCostMilli,
					NS:        o.Duration.Nanoseconds(),
				})
			}
			out.Rows = append(out.Rows, row)
			out.Wins[win.Name]++
		}
	}
	return out, nil
}

// String renders the study table.
func (r *PortfolioStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heuristic-portfolio racing over the Figure 5 corpus (mode %s)\n", r.Mode)
	fmt.Fprintf(&b, "%-8s %-8s | %-14s | %6s %10s %10s\n",
		"program", "routine", "winner", "spills", "cost", "margin")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8s | %-14s | %6d %10.3f %10.3f\n",
			row.Program, row.Routine, row.Winner, row.Spills,
			float64(row.CostMilli)/1000, float64(row.MarginMilli)/1000)
	}
	names := make([]string, 0, len(r.Wins))
	for n := range r.Wins {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("races won: ")
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", n, r.Wins[n])
	}
	b.WriteString("\ncost and margin are spill-cost units (fixed-point milli); ties go to the lowest candidate index\n")
	return b.String()
}
