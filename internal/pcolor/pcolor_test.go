package pcolor_test

import (
	"fmt"
	"testing"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
)

// corpus is the graphgen corpus the differential tests sweep: the
// random and structured generators at several sizes and seeds.
func corpus() []struct {
	name string
	g    *ig.Graph
} {
	var out []struct {
		name string
		g    *ig.Graph
	}
	add := func(name string, g *ig.Graph, _ []float64) {
		out = append(out, struct {
			name string
			g    *ig.Graph
		}{name, g})
	}
	for _, c := range []struct {
		n    int
		p    float64
		seed uint64
	}{
		{60, 0.3, 1}, {200, 0.1, 2}, {800, 0.02, 3}, {2500, 0.004, 4},
	} {
		g, costs := graphgen.Random(c.n, c.p, c.seed)
		add(fmt.Sprintf("random-%d-%g-%d", c.n, c.p, c.seed), g, costs)
	}
	for _, c := range []struct {
		n    int
		seed uint64
	}{
		{100, 5}, {1200, 6},
	} {
		g, costs := graphgen.TwoClass(c.n, 0.08, c.seed)
		add(fmt.Sprintf("twoclass-%d-%d", c.n, c.seed), g, costs)
	}
	for _, seed := range []uint64{7, 8} {
		g, costs := graphgen.SVDLike(20, 12, 4, 10, 6, seed)
		add(fmt.Sprintf("svdlike-%d", seed), g, costs)
	}
	for _, n := range []int{4, 5, 101, 1000} {
		g, costs := graphgen.Cycle(n)
		add(fmt.Sprintf("cycle-%d", n), g, costs)
	}
	return out
}

// TestPColorMatchesSequential is the differential oracle of the
// speculative engine: over the graphgen corpus, every coloring must
// be proper, byte-identical across runs for a fixed (seed, workers)
// pair, and within the documented palette slack of the sequential
// smallest-last baseline.
func TestPColorMatchesSequential(t *testing.T) {
	for _, c := range corpus() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			_, seq := pcolor.Sequential(c.g)
			for _, workers := range []int{1, 2, 4, 8} {
				for _, seed := range []uint64{1, 42} {
					o := pcolor.Options{Workers: workers, Seed: seed}
					colors, st := pcolor.Color(c.g, o)
					if err := color.Verify(c.g, colors, pcolor.KFor(st)); err != nil {
						t.Fatalf("workers=%d seed=%d: improper coloring: %v", workers, seed, err)
					}
					for i, cc := range colors {
						if cc < 0 {
							t.Fatalf("workers=%d seed=%d: node %d left uncolored", workers, seed, i)
						}
					}
					again, st2 := pcolor.Color(c.g, o)
					if *st != *st2 {
						t.Fatalf("workers=%d seed=%d: stats differ across runs: %+v vs %+v", workers, seed, st, st2)
					}
					for i := range colors {
						if colors[i] != again[i] {
							t.Fatalf("workers=%d seed=%d: node %d colored %d then %d — not deterministic",
								workers, seed, i, colors[i], again[i])
						}
					}
					for _, cls := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
						want := seq.Colors(cls)
						if got := st.Colors(cls); got > want+pcolor.Slack(want) {
							t.Fatalf("workers=%d seed=%d class=%s: %d colors, sequential used %d (slack %d)",
								workers, seed, cls, got, want, pcolor.Slack(want))
						}
					}
				}
			}
		})
	}
}

// TestSequentialBaseline pins the comparator itself: proper, fully
// colored, and stable across calls.
func TestSequentialBaseline(t *testing.T) {
	g, _ := graphgen.Random(300, 0.05, 9)
	colors, st := pcolor.Sequential(g)
	if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
		t.Fatal(err)
	}
	again, st2 := pcolor.Sequential(g)
	if *st != *st2 {
		t.Fatalf("sequential stats differ: %+v vs %+v", st, st2)
	}
	for i := range colors {
		if colors[i] < 0 {
			t.Fatalf("node %d uncolored", i)
		}
		if colors[i] != again[i] {
			t.Fatalf("sequential baseline not deterministic at node %d", i)
		}
	}
}

// TestCycleExact: odd cycles need 3 colors, even cycles 2; the
// speculative engine must not drift beyond the slack on the shapes
// where the optimum is known.
func TestCycleExact(t *testing.T) {
	for _, n := range []int{4, 5, 100, 101} {
		g, _ := graphgen.Cycle(n)
		_, st := pcolor.Color(g, pcolor.Options{Workers: 4, Seed: 3})
		want := 2
		if n%2 == 1 {
			want = 3
		}
		if st.ColorsInt > want+pcolor.Slack(want) {
			t.Errorf("cycle-%d: %d colors, optimum %d", n, st.ColorsInt, want)
		}
	}
}

// TestEmptyAndTiny covers the degenerate shapes.
func TestEmptyAndTiny(t *testing.T) {
	g := ig.New(nil)
	colors, st := pcolor.Color(g, pcolor.Options{Workers: 4, Seed: 1})
	if len(colors) != 0 || st.Rounds != 0 || st.ColorsInt != 0 {
		t.Fatalf("empty graph: %v %+v", colors, st)
	}
	g = ig.New(make([]ir.Class, 3)) // edgeless
	colors, st = pcolor.Color(g, pcolor.Options{Workers: 8, Seed: 1})
	for i, c := range colors {
		if c != 0 {
			t.Fatalf("edgeless node %d got color %d", i, c)
		}
	}
	if st.ColorsInt != 1 || st.Conflicts != 0 {
		t.Fatalf("edgeless stats: %+v", st)
	}
}

// counterSink collects counter events by name.
type counterSink struct {
	got map[string][]int64
}

func (s *counterSink) Emit(e obs.Event) {
	if e.Kind != obs.KindCounter {
		return
	}
	if s.got == nil {
		s.got = map[string][]int64{}
	}
	s.got[e.Name] = append(s.got[e.Name], e.Value)
}

// TestTraceCounters checks the iteration is visible in traces: run
// totals always, and one pending/conflict sample per round.
func TestTraceCounters(t *testing.T) {
	g, _ := graphgen.Random(500, 0.05, 11)
	sink := &counterSink{}
	tr := obs.New(sink, "pcolor-test")
	_, st := pcolor.Color(g, pcolor.Options{Workers: 4, Seed: 1, Tracer: tr})
	for _, name := range []string{"pcolor.workers", "pcolor.rounds", "pcolor.conflicts", "pcolor.recolored"} {
		if len(sink.got[name]) != 1 {
			t.Fatalf("counter %s emitted %d times", name, len(sink.got[name]))
		}
	}
	if got := sink.got["pcolor.rounds"][0]; got != int64(st.Rounds) {
		t.Fatalf("rounds counter %d, stats %d", got, st.Rounds)
	}
	if got := len(sink.got["pcolor.round.pending"]); got != st.Rounds {
		t.Fatalf("%d per-round pending samples for %d rounds", got, st.Rounds)
	}
	if got := len(sink.got["pcolor.round.conflicts"]); got != st.Rounds {
		t.Fatalf("%d per-round conflict samples for %d rounds", got, st.Rounds)
	}
	if sink.got["pcolor.round.pending"][0] != int64(g.NumNodes()) {
		t.Fatalf("first round pending %d, want all %d nodes", sink.got["pcolor.round.pending"][0], g.NumNodes())
	}
}

// TestSlackShape pins the documented slack function.
func TestSlackShape(t *testing.T) {
	for _, c := range []struct{ seq, want int }{{0, 2}, {1, 2}, {7, 2}, {8, 2}, {12, 3}, {40, 10}} {
		if got := pcolor.Slack(c.seq); got != c.want {
			t.Errorf("Slack(%d) = %d, want %d", c.seq, got, c.want)
		}
	}
}
