package spill_test

import (
	"math"
	"testing"

	"regalloc/internal/cfg"
	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
	"regalloc/internal/spill"
)

// loopFunc builds: b0: x=2; br b1 / b1(body,depth1): y=x*x; brif ->
// b1 b2 / b2: ret y. x has one def at depth 0 and one use at depth 1.
func loopFunc() (*ir.Func, ir.Reg, ir.Reg) {
	f := &ir.Func{Name: "L"}
	x := f.NewReg(ir.ClassInt)
	y := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpMul, Dst: y, A: x, B: x, C: ir.NoReg},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: y, B: x, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b1.Succs = []int{1, 2}
	b2.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: y, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	cfg.Analyze(f)
	return f, x, y
}

func TestCostsDepthWeighted(t *testing.T) {
	f, x, y := loopFunc()
	costs := spill.Costs(f, spill.DefaultCostParams())
	// x: def at depth 0 (2*1) + two uses in mul and one in brif at
	// depth 1 (3 * 2*10) = 62.
	if costs[x] != 2+3*20 {
		t.Fatalf("cost(x) = %g, want 62", costs[x])
	}
	// y: def at depth 1 (20) + use in brif depth 1 (20) + use in ret
	// depth 0 (2) = 42.
	if costs[y] != 20+20+2 {
		t.Fatalf("cost(y) = %g, want 42", costs[y])
	}
}

func TestCostParamsConfigurable(t *testing.T) {
	f, x, _ := loopFunc()
	p := spill.CostParams{DepthBase: 2, MemOpWeight: 1}
	costs := spill.Costs(f, p)
	// x: 1 + 3*2 = 7 with base 2 weight 1.
	if costs[x] != 7 {
		t.Fatalf("cost(x) = %g, want 7", costs[x])
	}
}

func TestSpillTempInfiniteCost(t *testing.T) {
	f, _, _ := loopFunc()
	tmp := f.NewSpillTemp(ir.ClassInt)
	costs := spill.Costs(f, spill.DefaultCostParams())
	if !math.IsInf(costs[tmp], 1) {
		t.Fatal("spill temporaries must have infinite cost")
	}
}

func TestInsertCodeStructure(t *testing.T) {
	f, x, _ := loopFunc()
	st := spill.InsertCode(f, []ir.Reg{x})
	if st.Slots != 1 {
		t.Fatalf("slots = %d", st.Slots)
	}
	if st.Stores != 1 {
		t.Fatalf("stores = %d, want 1 (one def)", st.Stores)
	}
	// One reload covers both operand occurrences in the mul, plus
	// one for the brif use: the mul's operands share a single load;
	// the brif's use needs its own.
	if st.Loads != 2 {
		t.Fatalf("loads = %d, want 2", st.Loads)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// The def must now write a fresh temp and be followed by a
	// store to the slot.
	ins := f.Blocks[0].Instrs
	if ins[0].Op != ir.OpConst || ins[1].Op != ir.OpSpillStore || ins[1].A != ins[0].Dst {
		t.Fatalf("def/store sequence wrong: %v then %v", ins[0].Op, ins[1].Op)
	}
	if f.RegFlags(ins[0].Dst)&ir.FlagSpillTemp == 0 {
		t.Fatal("def rewritten to a non-spill-temp register")
	}
	// Reload precedes the use in b1.
	b1 := f.Blocks[1].Instrs
	if b1[0].Op != ir.OpSpillLoad {
		t.Fatalf("no reload before use: %v", b1[0].Op)
	}
	if b1[1].A != b1[0].Dst || b1[1].B != b1[0].Dst {
		t.Fatal("mul operands not rewritten to the reload temp")
	}
}

func TestSpillPreservesSemantics(t *testing.T) {
	run := func(f *ir.Func) int64 {
		p := ir.NewProgram(0)
		p.Add(f)
		v, err := irinterp.New(p, 1<<16).Call("L")
		if err != nil {
			t.Fatal(err)
		}
		return v.I
	}
	ref, _, _ := loopFunc()
	want := run(ref)
	f, x, y := loopFunc()
	f.StaticBase = 100 // slots land at 100+
	spill.InsertCode(f, []ir.Reg{x, y})
	if got := run(f); got != want {
		t.Fatalf("spilling changed the result: %d, want %d", got, want)
	}
}

func TestBothUseAndDefSpilled(t *testing.T) {
	// i = i + 1 with i spilled: reload, add into temp, store.
	f := &ir.Func{Name: "L"}
	i := f.NewReg(ir.ClassInt)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 41},
		{Op: ir.OpAddI, Dst: i, A: i, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpRet, Dst: ir.NoReg, A: i, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	cfg.Analyze(f)
	spill.InsertCode(f, []ir.Reg{i})
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	p := ir.NewProgram(0)
	p.Add(f)
	v, err := irinterp.New(p, 1<<16).Call("L")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Fatalf("got %d, want 42", v.I)
	}
}
