// Package irgen lowers the typed AST into the three-address IR.
//
// Lowering decisions that matter to the register allocator:
//
//   - Every scalar variable gets exactly one virtual register for the
//     whole unit; the later renumbering pass (Chaitin's "renumber")
//     splits it into webs, so a variable whose def–use chains are
//     disjoint becomes several live ranges.
//   - DO-loop limits are evaluated once into a temporary before the
//     loop (FORTRAN trip semantics), producing the "loop index and
//     limit" live ranges whose spilling motivates the paper (§1.2).
//   - Constants are materialized at each use; small integer address
//     arithmetic uses immediate forms (addi/muli), mirroring the
//     RT/PC's immediate instructions.
//   - Local arrays get static storage (FORTRAN 77 style); array
//     parameters are passed as base addresses in integer registers.
package irgen

import (
	"fmt"

	"regalloc/internal/ast"
	"regalloc/internal/ir"
	"regalloc/internal/sem"
	"regalloc/internal/source"
)

// SpillReserve is the per-function headroom (in words) left after
// the static area for spill slots added during allocation.
const SpillReserve = 1 << 14

// DefaultStaticStart is the first word address used for static data
// unless the caller chooses another; addresses below it are free for
// driver-managed argument arrays.
const DefaultStaticStart = 1 << 21

// Gen lowers a checked program. staticStart is the first memory word
// available for static data (local arrays and spill slots).
func Gen(prog *ast.Program, info *sem.Info, staticStart int64) (*ir.Program, error) {
	p := ir.NewProgram(staticStart)
	cursor := staticStart
	for _, u := range prog.Units {
		ui := info.Units[u.Name]
		if ui == nil {
			return nil, fmt.Errorf("irgen: no semantic info for unit %s", u.Name)
		}
		g := &gen{info: info, ui: ui, unit: u}
		f, err := g.genUnit(cursor)
		if err != nil {
			return nil, err
		}
		cursor = f.StaticBase + f.StaticSize + SpillReserve
		p.Add(f)
	}
	p.StaticEnd = cursor
	return p, nil
}

type gen struct {
	info *sem.Info
	ui   *sem.UnitInfo
	unit *ast.Unit

	f   *ir.Func
	cur *ir.Block

	vreg      map[string]ir.Reg // scalar symbol -> virtual register
	arrayBase map[string]int64  // local array -> absolute base address
	arrayReg  map[string]ir.Reg // parameter array -> base-address register
	loops     []loopCtx         // innermost last
	err       source.ErrorList
}

type loopCtx struct {
	exit  *ir.Block
	latch *ir.Block // CYCLE target (increment block for DO, header for WHILE)
}

func (g *gen) errorf(pos source.Pos, format string, args ...interface{}) {
	g.err.Add(pos, format, args...)
}

func (g *gen) emit(in ir.Instr) {
	g.cur.Instrs = append(g.cur.Instrs, in)
}

// terminated reports whether the current block already ends in a
// terminator (because of RETURN/EXIT/CYCLE).
func (g *gen) terminated() bool {
	n := len(g.cur.Instrs)
	return n > 0 && g.cur.Instrs[n-1].Op.IsTerminator()
}

// br terminates the current block with an unconditional branch and
// makes target the current block... callers switch blocks themselves.
func (g *gen) br(target *ir.Block) {
	if g.terminated() {
		return
	}
	g.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	g.cur.Succs = append(g.cur.Succs, target.ID)
}

func (g *gen) brIf(cls ir.Class, cmp ir.Cmp, a, b ir.Reg, t, f *ir.Block) {
	if g.terminated() {
		return
	}
	g.emit(ir.Instr{Op: ir.OpBrIf, Dst: ir.NoReg, A: a, B: b, C: ir.NoReg, Cmp: cmp, Cls: cls})
	g.cur.Succs = append(g.cur.Succs, t.ID, f.ID)
}

func (g *gen) ret() {
	if g.terminated() {
		return
	}
	v := ir.NoReg
	if g.f.HasRet {
		v = g.vreg[g.unit.Name]
	}
	g.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: v, B: ir.NoReg, C: ir.NoReg})
}

func clsOf(t ast.Type) ir.Class {
	if t == ast.TypeReal {
		return ir.ClassFloat
	}
	return ir.ClassInt
}

func (g *gen) genUnit(staticBase int64) (*ir.Func, error) {
	u := g.unit
	f := &ir.Func{Name: u.Name, StaticBase: staticBase}
	g.f = f
	g.vreg = make(map[string]ir.Reg)
	g.arrayBase = make(map[string]int64)
	g.arrayReg = make(map[string]ir.Reg)

	entry := f.NewBlock()
	g.cur = entry

	// Parameters.
	for i, pname := range u.Params {
		sym := g.ui.Sym(pname)
		var r ir.Reg
		if sym.IsArray() {
			r = f.NewReg(ir.ClassInt) // base address
			g.arrayReg[pname] = r
		} else {
			r = f.NewReg(clsOf(sym.Type))
			g.vreg[pname] = r
		}
		f.Params = append(f.Params, r)
		g.emit(ir.Instr{Op: ir.OpParam, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: int64(i)})
	}

	// Return-value register.
	if u.Kind == ast.KindFunction {
		f.HasRet = true
		f.RetCls = clsOf(g.info.Sigs[u.Name].Ret)
		g.vreg[u.Name] = f.NewReg(f.RetCls)
	}

	// Static storage for local arrays.
	var size int64
	for _, d := range u.Decls {
		sym := g.ui.Sym(d.Name)
		if sym == nil || !sym.IsArray() || sym.Kind == sem.SymParam {
			continue
		}
		n := int64(1)
		for _, dim := range d.Dims {
			n *= dim.Const
		}
		g.arrayBase[d.Name] = staticBase + size
		size += n
	}
	f.StaticSize = size

	g.genStmts(u.Body)
	g.ret()

	// Terminate any block left open (e.g. an unreachable join after
	// both branches returned).
	for _, b := range f.Blocks {
		n := len(b.Instrs)
		if n == 0 || !b.Instrs[n-1].Op.IsTerminator() {
			saved := g.cur
			g.cur = b
			g.ret()
			g.cur = saved
		}
	}
	f.RecomputePreds()
	if err := g.err.Err(); err != nil {
		return nil, err
	}
	if err := ir.Validate(f); err != nil {
		return nil, fmt.Errorf("irgen: produced invalid IR: %w", err)
	}
	return f, nil
}

// scalarReg returns the register of a scalar symbol, creating one on
// first reference (implicit locals).
func (g *gen) scalarReg(name string) ir.Reg {
	if r, ok := g.vreg[name]; ok {
		return r
	}
	sym := g.ui.Sym(name)
	r := g.f.NewReg(clsOf(sym.Type))
	g.vreg[name] = r
	return r
}

func (g *gen) genStmts(list []ast.Stmt) {
	for _, s := range list {
		if g.terminated() {
			// Unreachable code after RETURN/EXIT/CYCLE: keep
			// generating into a fresh block so the code is preserved
			// (it may contain loops the source author counts on for
			// structure), though nothing branches to it.
			g.cur = g.f.NewBlock()
		}
		g.genStmt(s)
	}
}

func (g *gen) genStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		g.genAssign(s)
	case *ast.IfStmt:
		g.genIf(s)
	case *ast.DoStmt:
		g.genDo(s)
	case *ast.WhileStmt:
		g.genWhile(s)
	case *ast.CallStmt:
		g.genCall(ir.NoReg, s.Name, s.Args, s.Pos)
	case *ast.ReturnStmt:
		g.ret()
	case *ast.ExitStmt:
		if len(g.loops) == 0 {
			g.errorf(s.Pos, "EXIT outside of a loop")
			return
		}
		g.br(g.loops[len(g.loops)-1].exit)
	case *ast.CycleStmt:
		if len(g.loops) == 0 {
			g.errorf(s.Pos, "CYCLE outside of a loop")
			return
		}
		g.br(g.loops[len(g.loops)-1].latch)
	case *ast.ContinueStmt:
		// no-op
	}
}

func (g *gen) genAssign(s *ast.AssignStmt) {
	sym := g.ui.Sym(s.LHS.Name)
	if sym == nil {
		return
	}
	if len(s.LHS.Indexes) > 0 {
		// Array element store.
		base, index, imm := g.genAddr(s.LHS.Name, s.LHS.Indexes, s.Pos)
		v := g.genExprAs(s.RHS, sym.Type)
		g.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: v, B: base, C: index, Imm: imm})
		return
	}
	dst := g.scalarReg(s.LHS.Name)
	v := g.genExprAs(s.RHS, sym.Type)
	g.emit(ir.Instr{Op: ir.OpMove, Dst: dst, A: v, B: ir.NoReg, C: ir.NoReg})
}

func (g *gen) genIf(s *ast.IfStmt) {
	thenB := g.f.NewBlock()
	var elseB *ir.Block
	join := g.f.NewBlock()
	if len(s.Else) > 0 {
		elseB = g.f.NewBlock()
	} else {
		elseB = join
	}
	g.genCond(s.Cond, thenB, elseB)
	g.cur = thenB
	g.genStmts(s.Then)
	g.br(join)
	if len(s.Else) > 0 {
		g.cur = elseB
		g.genStmts(s.Else)
		g.br(join)
	}
	g.cur = join
}

// genDo lowers "DO v = from, to, step" in the inverted (bottom-test)
// form that optimizing compilers of the era produced:
//
//	limit = to; v = from
//	if v <= limit goto body else exit     (guard, outside the loop)
//	body:  ...                            (loop header)
//	latch: v += step; if v <= limit goto body else exit
//	exit:
//
// The limit is evaluated once before the loop (FORTRAN trip
// semantics); the constant step fixes the test direction. Inversion
// matters to the reproduction: the body executes whenever the loop
// is entered, which licenses the optimizer to hoist loop-invariant
// loads into the preheader (see package opt).
func (g *gen) genDo(s *ast.DoStmt) {
	iv := g.scalarReg(s.Var)
	from := g.genExprAs(s.From, ast.TypeInt)
	limit := g.newTemp(ir.ClassInt)
	toV := g.genExprAs(s.To, ast.TypeInt)
	g.emit(ir.Instr{Op: ir.OpMove, Dst: limit, A: toV, B: ir.NoReg, C: ir.NoReg})
	g.emit(ir.Instr{Op: ir.OpMove, Dst: iv, A: from, B: ir.NoReg, C: ir.NoReg})

	body := g.f.NewBlock()
	latch := g.f.NewBlock()
	exit := g.f.NewBlock()

	cmp := ir.CmpLE
	if s.Step < 0 {
		cmp = ir.CmpGE
	}
	g.brIf(ir.ClassInt, cmp, iv, limit, body, exit) // guard

	g.loops = append(g.loops, loopCtx{exit: exit, latch: latch})
	g.cur = body
	g.genStmts(s.Body)
	g.br(latch)
	g.loops = g.loops[:len(g.loops)-1]

	g.cur = latch
	g.emit(ir.Instr{Op: ir.OpAddI, Dst: iv, A: iv, B: ir.NoReg, C: ir.NoReg, Imm: s.Step})
	g.brIf(ir.ClassInt, cmp, iv, limit, body, exit)

	g.cur = exit
}

// genWhile lowers "DO WHILE" in rotated form, duplicating the
// (side-effect-free) condition at the bottom so the body is the loop
// header, for the same reason as genDo.
func (g *gen) genWhile(s *ast.WhileStmt) {
	body := g.f.NewBlock()
	latch := g.f.NewBlock()
	exit := g.f.NewBlock()
	g.genCond(s.Cond, body, exit) // guard
	g.loops = append(g.loops, loopCtx{exit: exit, latch: latch})
	g.cur = body
	g.genStmts(s.Body)
	g.br(latch)
	g.loops = g.loops[:len(g.loops)-1]
	g.cur = latch
	g.genCond(s.Cond, body, exit)
	g.cur = exit
}

// genCond lowers a condition with short-circuit control flow.
func (g *gen) genCond(e ast.Expr, t, f *ir.Block) {
	switch e := e.(type) {
	case *ast.BinExpr:
		switch {
		case e.Op == ast.OpAnd:
			mid := g.f.NewBlock()
			g.genCond(e.L, mid, f)
			g.cur = mid
			g.genCond(e.R, t, f)
			return
		case e.Op == ast.OpOr:
			mid := g.f.NewBlock()
			g.genCond(e.L, t, mid)
			g.cur = mid
			g.genCond(e.R, t, f)
			return
		case e.Op.IsRelational():
			lt := g.ui.TypeOf(e.L)
			rt := g.ui.TypeOf(e.R)
			typ := ast.TypeInt
			if lt == ast.TypeReal || rt == ast.TypeReal {
				typ = ast.TypeReal
			}
			a := g.genExprAs(e.L, typ)
			b := g.genExprAs(e.R, typ)
			g.brIf(clsOf(typ), relCmp(e.Op), a, b, t, f)
			return
		}
	case *ast.UnExpr:
		if e.Op == ast.OpNot {
			g.genCond(e.X, f, t)
			return
		}
	case *ast.IntLit:
		if e.Val != 0 {
			g.br(t)
		} else {
			g.br(f)
		}
		return
	}
	// General integer expression: nonzero is true.
	v := g.genExprAs(e, ast.TypeInt)
	zero := g.newTemp(ir.ClassInt)
	g.emit(ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0})
	g.brIf(ir.ClassInt, ir.CmpNE, v, zero, t, f)
}

func relCmp(op ast.BinOp) ir.Cmp {
	switch op {
	case ast.OpLT:
		return ir.CmpLT
	case ast.OpLE:
		return ir.CmpLE
	case ast.OpGT:
		return ir.CmpGT
	case ast.OpGE:
		return ir.CmpGE
	case ast.OpEQ:
		return ir.CmpEQ
	default:
		return ir.CmpNE
	}
}

func (g *gen) newTemp(c ir.Class) ir.Reg { return g.f.NewReg(c) }

// genExprAs evaluates e and converts the result to the given type.
func (g *gen) genExprAs(e ast.Expr, t ast.Type) ir.Reg {
	r, rt := g.genExpr(e)
	return g.convert(r, rt, t)
}

func (g *gen) convert(r ir.Reg, from, to ast.Type) ir.Reg {
	if from == to || to == ast.TypeNone || from == ast.TypeNone {
		return r
	}
	if to == ast.TypeReal {
		d := g.newTemp(ir.ClassFloat)
		g.emit(ir.Instr{Op: ir.OpItoF, Dst: d, A: r, B: ir.NoReg, C: ir.NoReg})
		return d
	}
	d := g.newTemp(ir.ClassInt)
	g.emit(ir.Instr{Op: ir.OpFtoI, Dst: d, A: r, B: ir.NoReg, C: ir.NoReg})
	return d
}

// genExpr evaluates e, returning the result register and its type.
func (g *gen) genExpr(e ast.Expr) (ir.Reg, ast.Type) {
	switch e := e.(type) {
	case *ast.IntLit:
		r := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: e.Val})
		return r, ast.TypeInt
	case *ast.RealLit:
		r := g.newTemp(ir.ClassFloat)
		g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, FImm: e.Val})
		return r, ast.TypeReal
	case *ast.VarRef:
		sym := g.ui.Sym(e.Name)
		if len(e.Indexes) > 0 {
			return g.genArrayLoad(e.Name, e.Indexes, e.Pos), sym.Type
		}
		return g.scalarReg(e.Name), sym.Type
	case *ast.UnExpr:
		return g.genUnary(e)
	case *ast.BinExpr:
		return g.genBinary(e)
	case *ast.CallExpr:
		switch g.ui.CallKind[e] {
		case sem.CallArray:
			sym := g.ui.Sym(e.Name)
			return g.genArrayLoad(e.Name, e.Args, e.Pos), sym.Type
		case sem.CallIntrinsic:
			return g.genIntrinsic(e)
		default:
			sig := g.info.Sigs[e.Name]
			dst := g.newTemp(clsOf(sig.Ret))
			g.genCall(dst, e.Name, e.Args, e.Pos)
			return dst, sig.Ret
		}
	}
	g.errorf(e.ExprPos(), "irgen: unhandled expression")
	r := g.newTemp(ir.ClassInt)
	g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	return r, ast.TypeInt
}

func (g *gen) genUnary(e *ast.UnExpr) (ir.Reg, ast.Type) {
	if e.Op == ast.OpNot {
		// .NOT. x  ==  1 - x  for 0/1 conditions.
		x := g.genExprAs(e.X, ast.TypeInt)
		one := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpConst, Dst: one, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1})
		d := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpSub, Dst: d, A: one, B: x, C: ir.NoReg})
		return d, ast.TypeInt
	}
	x, t := g.genExpr(e.X)
	if t == ast.TypeReal {
		d := g.newTemp(ir.ClassFloat)
		g.emit(ir.Instr{Op: ir.OpFNeg, Dst: d, A: x, B: ir.NoReg, C: ir.NoReg})
		return d, t
	}
	d := g.newTemp(ir.ClassInt)
	g.emit(ir.Instr{Op: ir.OpNeg, Dst: d, A: x, B: ir.NoReg, C: ir.NoReg})
	return d, t
}

func (g *gen) genBinary(e *ast.BinExpr) (ir.Reg, ast.Type) {
	switch {
	case e.Op.IsRelational():
		// Relational in value position: materialize 0/1 via a small
		// diamond.
		lt, rt := g.ui.TypeOf(e.L), g.ui.TypeOf(e.R)
		typ := ast.TypeInt
		if lt == ast.TypeReal || rt == ast.TypeReal {
			typ = ast.TypeReal
		}
		a := g.genExprAs(e.L, typ)
		b := g.genExprAs(e.R, typ)
		d := g.newTemp(ir.ClassInt)
		tB := g.f.NewBlock()
		fB := g.f.NewBlock()
		join := g.f.NewBlock()
		g.brIf(clsOf(typ), relCmp(e.Op), a, b, tB, fB)
		g.cur = tB
		g.emit(ir.Instr{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1})
		g.br(join)
		g.cur = fB
		g.emit(ir.Instr{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0})
		g.br(join)
		g.cur = join
		return d, ast.TypeInt
	case e.Op.IsLogical():
		a := g.genExprAs(e.L, ast.TypeInt)
		b := g.genExprAs(e.R, ast.TypeInt)
		d := g.newTemp(ir.ClassInt)
		if e.Op == ast.OpAnd {
			// a AND b == min(a,b) for 0/1 values.
			g.emit(ir.Instr{Op: ir.OpIMin, Dst: d, A: a, B: b, C: ir.NoReg})
		} else {
			g.emit(ir.Instr{Op: ir.OpIMax, Dst: d, A: a, B: b, C: ir.NoReg})
		}
		return d, ast.TypeInt
	case e.Op == ast.OpPow:
		return g.genPow(e)
	}
	lt, rt := g.ui.TypeOf(e.L), g.ui.TypeOf(e.R)
	typ := ast.TypeInt
	if lt == ast.TypeReal || rt == ast.TypeReal {
		typ = ast.TypeReal
	}
	a := g.genExprAs(e.L, typ)
	b := g.genExprAs(e.R, typ)
	var op ir.Op
	if typ == ast.TypeReal {
		switch e.Op {
		case ast.OpAdd:
			op = ir.OpFAdd
		case ast.OpSub:
			op = ir.OpFSub
		case ast.OpMul:
			op = ir.OpFMul
		default:
			op = ir.OpFDiv
		}
	} else {
		switch e.Op {
		case ast.OpAdd:
			op = ir.OpAdd
		case ast.OpSub:
			op = ir.OpSub
		case ast.OpMul:
			op = ir.OpMul
		default:
			op = ir.OpDiv
		}
	}
	d := g.newTemp(clsOf(typ))
	g.emit(ir.Instr{Op: op, Dst: d, A: a, B: b, C: ir.NoReg})
	return d, typ
}

func (g *gen) genPow(e *ast.BinExpr) (ir.Reg, ast.Type) {
	lt, rt := g.ui.TypeOf(e.L), g.ui.TypeOf(e.R)
	// x**2 and x**1 expand to multiplies, as any 1980s code
	// generator would do.
	if ilit, ok := e.R.(*ast.IntLit); ok && ilit.Val >= 1 && ilit.Val <= 3 {
		x, t := g.genExpr(e.L)
		mul := ir.OpMul
		if t == ast.TypeReal {
			mul = ir.OpFMul
		}
		acc := x
		for i := int64(1); i < ilit.Val; i++ {
			d := g.newTemp(clsOf(t))
			g.emit(ir.Instr{Op: mul, Dst: d, A: acc, B: x, C: ir.NoReg})
			acc = d
		}
		return acc, t
	}
	if lt == ast.TypeInt && rt == ast.TypeInt {
		a := g.genExprAs(e.L, ast.TypeInt)
		b := g.genExprAs(e.R, ast.TypeInt)
		d := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpIPow, Dst: d, A: a, B: b, C: ir.NoReg})
		return d, ast.TypeInt
	}
	a := g.genExprAs(e.L, ast.TypeReal)
	b := g.genExprAs(e.R, ast.TypeReal)
	d := g.newTemp(ir.ClassFloat)
	g.emit(ir.Instr{Op: ir.OpFPow, Dst: d, A: a, B: b, C: ir.NoReg})
	return d, ast.TypeReal
}

func (g *gen) genIntrinsic(e *ast.CallExpr) (ir.Reg, ast.Type) {
	in := g.ui.Intrinsic[e]
	retT := g.ui.TypeOf(e)
	un := func(op ir.Op, argT ast.Type) (ir.Reg, ast.Type) {
		a := g.genExprAs(e.Args[0], argT)
		d := g.newTemp(clsOf(retT))
		g.emit(ir.Instr{Op: op, Dst: d, A: a, B: ir.NoReg, C: ir.NoReg})
		return d, retT
	}
	bin := func(op ir.Op, t ast.Type) (ir.Reg, ast.Type) {
		a := g.genExprAs(e.Args[0], t)
		b := g.genExprAs(e.Args[1], t)
		d := g.newTemp(clsOf(t))
		g.emit(ir.Instr{Op: op, Dst: d, A: a, B: b, C: ir.NoReg})
		return d, t
	}
	switch in {
	case sem.IntrAbs:
		if retT == ast.TypeReal {
			return un(ir.OpFAbs, ast.TypeReal)
		}
		return un(ir.OpIAbs, ast.TypeInt)
	case sem.IntrSqrt:
		return un(ir.OpFSqrt, ast.TypeReal)
	case sem.IntrExp:
		return un(ir.OpFExp, ast.TypeReal)
	case sem.IntrLog:
		return un(ir.OpFLog, ast.TypeReal)
	case sem.IntrSin:
		return un(ir.OpFSin, ast.TypeReal)
	case sem.IntrCos:
		return un(ir.OpFCos, ast.TypeReal)
	case sem.IntrMod:
		if retT == ast.TypeReal {
			return bin(ir.OpFMod, ast.TypeReal)
		}
		return bin(ir.OpMod, ast.TypeInt)
	case sem.IntrSign:
		if retT == ast.TypeReal {
			return bin(ir.OpFSign, ast.TypeReal)
		}
		return bin(ir.OpISign, ast.TypeInt)
	case sem.IntrMin, sem.IntrMax:
		op := ir.OpIMin
		if in == sem.IntrMax {
			op = ir.OpIMax
		}
		if retT == ast.TypeReal {
			if in == sem.IntrMax {
				op = ir.OpFMax
			} else {
				op = ir.OpFMin
			}
		}
		acc := g.genExprAs(e.Args[0], retT)
		for _, arg := range e.Args[1:] {
			b := g.genExprAs(arg, retT)
			d := g.newTemp(clsOf(retT))
			g.emit(ir.Instr{Op: op, Dst: d, A: acc, B: b, C: ir.NoReg})
			acc = d
		}
		return acc, retT
	case sem.IntrInt:
		a, t := g.genExpr(e.Args[0])
		return g.convert(a, t, ast.TypeInt), ast.TypeInt
	case sem.IntrFloat:
		a, t := g.genExpr(e.Args[0])
		return g.convert(a, t, ast.TypeReal), ast.TypeReal
	}
	g.errorf(e.Pos, "irgen: unhandled intrinsic %s", e.Name)
	r := g.newTemp(ir.ClassInt)
	g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	return r, ast.TypeInt
}

// genAddr computes the effective address of an array element as
// (base, index, imm) suitable for OpLoad/OpStore: the address is the
// sum of the non-NoReg registers plus imm.
//
// FORTRAN arrays are 1-based and column-major:
//
//	A(i)   -> base + i - 1
//	A(i,j) -> base + (i-1) + (j-1)*ld   (ld = leading dimension)
func (g *gen) genAddr(name string, indexes []ast.Expr, pos source.Pos) (base, index ir.Reg, imm int64) {
	sym := g.ui.Sym(name)
	var ofs ir.Reg
	imm = -1
	if len(indexes) >= 1 {
		ofs = g.genExprAs(indexes[0], ast.TypeInt)
	}
	if len(indexes) == 2 {
		ld := sym.Dims[0]
		j := g.genExprAs(indexes[1], ast.TypeInt)
		var jld ir.Reg
		switch {
		case ld.Name != "":
			// Adjustable leading dimension: (j-1)*ld.
			jm1 := g.newTemp(ir.ClassInt)
			g.emit(ir.Instr{Op: ir.OpAddI, Dst: jm1, A: j, B: ir.NoReg, C: ir.NoReg, Imm: -1})
			jld = g.newTemp(ir.ClassInt)
			g.emit(ir.Instr{Op: ir.OpMul, Dst: jld, A: jm1, B: g.scalarReg(ld.Name), C: ir.NoReg})
		default:
			// Constant leading dimension: j*ld, folding -ld into imm.
			jld = g.newTemp(ir.ClassInt)
			g.emit(ir.Instr{Op: ir.OpMulI, Dst: jld, A: j, B: ir.NoReg, C: ir.NoReg, Imm: ld.Const})
			imm -= ld.Const
		}
		sum := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpAdd, Dst: sum, A: ofs, B: jld, C: ir.NoReg})
		ofs = sum
	}
	if baseReg, ok := g.arrayReg[name]; ok {
		return baseReg, ofs, imm
	}
	if baseAddr, ok := g.arrayBase[name]; ok {
		return ofs, ir.NoReg, imm + baseAddr
	}
	g.errorf(pos, "irgen: %s has no storage", name)
	return ir.NoReg, ofs, imm
}

func (g *gen) genArrayLoad(name string, indexes []ast.Expr, pos source.Pos) ir.Reg {
	sym := g.ui.Sym(name)
	base, index, imm := g.genAddr(name, indexes, pos)
	d := g.newTemp(clsOf(sym.Type))
	g.emit(ir.Instr{Op: ir.OpLoad, Dst: d, A: ir.NoReg, B: base, C: index, Imm: imm})
	return d
}

// genCall lowers CALL statements and function-call expressions.
// Scalar arguments are passed by value (converted to the parameter
// type); array arguments pass the address of the array or of the
// referenced element.
func (g *gen) genCall(dst ir.Reg, name string, args []ast.Expr, pos source.Pos) {
	sig := g.info.Sigs[name]
	if sig == nil {
		g.errorf(pos, "irgen: unknown callee %s", name)
		return
	}
	regs := make([]ir.Reg, 0, len(args))
	for i, arg := range args {
		if i >= len(sig.Params) {
			break
		}
		ps := sig.Params[i]
		if ps.IsArray {
			regs = append(regs, g.genArrayArg(arg, pos))
			continue
		}
		regs = append(regs, g.genExprAs(arg, ps.Type))
	}
	g.emit(ir.Instr{Op: ir.OpCall, Dst: dst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: name, Args: regs})
}

// genArrayArg materializes the address of an array (or array
// element) into an integer register.
func (g *gen) genArrayArg(arg ast.Expr, pos source.Pos) ir.Reg {
	var name string
	var indexes []ast.Expr
	switch a := arg.(type) {
	case *ast.VarRef:
		name, indexes = a.Name, a.Indexes
	case *ast.CallExpr:
		name, indexes = a.Name, a.Args
	default:
		g.errorf(pos, "irgen: bad array argument")
		return g.newTemp(ir.ClassInt)
	}
	if len(indexes) == 0 {
		// Whole array: its base address.
		if baseReg, ok := g.arrayReg[name]; ok {
			return baseReg
		}
		base := g.arrayBase[name]
		d := g.newTemp(ir.ClassInt)
		g.emit(ir.Instr{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: base})
		return d
	}
	// Element address: fold base+index+imm into one register.
	base, index, imm := g.genAddr(name, indexes, pos)
	d := g.newTemp(ir.ClassInt)
	switch {
	case base != ir.NoReg && index != ir.NoReg:
		g.emit(ir.Instr{Op: ir.OpAdd, Dst: d, A: base, B: index, C: ir.NoReg})
		if imm != 0 {
			d2 := g.newTemp(ir.ClassInt)
			g.emit(ir.Instr{Op: ir.OpAddI, Dst: d2, A: d, B: ir.NoReg, C: ir.NoReg, Imm: imm})
			d = d2
		}
	case base != ir.NoReg:
		g.emit(ir.Instr{Op: ir.OpAddI, Dst: d, A: base, B: ir.NoReg, C: ir.NoReg, Imm: imm})
	default:
		g.emit(ir.Instr{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: imm})
	}
	return d
}
