// api.go is the /v1 request surface: the typed AllocRequest decoded
// from a JSON body or from legacy query parameters by one shared
// parser, and the structured error envelope every non-2xx response
// carries. Keeping both forms behind one struct is what lets the
// deprecated /alloc route stay a thin alias over the /v1 handler.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"regalloc"
	"regalloc/internal/color"
)

// Machine-readable error codes, mirrored from the library's typed
// Options.Validate errors where one exists. Codes are API surface:
// clients switch on them, so they only ever grow.
const (
	codeMethodNotAllowed      = "method_not_allowed"
	codeBodyTooLarge          = "body_too_large"
	codeBadBody               = "bad_body"
	codeEmptyBody             = "empty_body"
	codeBadRequest            = "bad_request"
	codeBadK                  = "bad_k"
	codeBadHeuristic          = "bad_heuristic"
	codeBadMetric             = "bad_metric"
	codeBadMachine            = "bad_machine"
	codeConflictingSpillModes = "conflicting_spill_modes"
	codeBadWorkers            = "bad_workers"
	codeCompileFailed         = "compile_failed"
	codeBadGraph              = "bad_graph"
	codeUnknownUnit           = "unknown_unit"
	codeBatchTooLarge         = "batch_too_large"
	codeAdmissionTimeout      = "admission_timeout"
	codeDeadlineExceeded      = "deadline_exceeded"
	codeUnavailable           = "unavailable"
	codeInternal              = "internal"
)

// apiError is one failure, carried as an error value through the
// request path and rendered as the envelope
// {"error": {"code", "message", "detail"}} on the wire.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

func (e *apiError) Error() string {
	if e.Detail != "" {
		return e.Message + ": " + e.Detail
	}
	return e.Message
}

// failf builds an apiError with a formatted message.
func failf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// failErr builds an apiError whose detail is the underlying error.
func failErr(status int, code, msg string, err error) *apiError {
	e := failf(status, code, "%s", msg)
	if err != nil {
		e.Detail = err.Error()
	}
	return e
}

// optionsFailure maps an Options parse/validation error to its typed
// code via errors.Is, defaulting to bad_request.
func optionsFailure(err error) *apiError {
	code := codeBadRequest
	switch {
	case errors.Is(err, regalloc.ErrBadK):
		code = codeBadK
	case errors.Is(err, regalloc.ErrBadHeuristic):
		code = codeBadHeuristic
	case errors.Is(err, regalloc.ErrBadMetric):
		code = codeBadMetric
	case errors.Is(err, regalloc.ErrBadMachine):
		code = codeBadMachine
	case errors.Is(err, regalloc.ErrConflictingSpillModes):
		code = codeConflictingSpillModes
	case errors.Is(err, regalloc.ErrBadWorkers):
		code = codeBadWorkers
	}
	return failErr(http.StatusBadRequest, code, "bad options", err)
}

// writeError renders the envelope. Every non-2xx body the service
// produces goes through here.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if e.Status == http.StatusTooManyRequests {
		// Admission pressure is transient by definition; tell clients
		// when to come back.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(struct {
		Error *apiError `json:"error"`
	}{e})
}

// AllocRequest is one allocation request, decodable from a JSON body
// or from legacy query parameters (one shared parser; see decode).
// Pointer fields distinguish "unset, keep the paper's default" from
// an explicit value.
type AllocRequest struct {
	// Input forces the payload kind ("src" or "ig"); empty sniffs by
	// the .ig node-count directive.
	Input string `json:"input,omitempty"`
	// Source is the payload: mini-FORTRAN source or .ig graph text.
	// In the legacy form this is the raw request body.
	Source string `json:"source,omitempty"`
	// Unit picks one routine of a source program (default: all).
	Unit string `json:"unit,omitempty"`
	// Colors includes the per-register assignment in the reply.
	Colors bool `json:"colors,omitempty"`

	Heuristic string `json:"heuristic,omitempty"`
	// Machine names a register-file model ("rtpc"), resized to the
	// request's kint/kfloat: precolored argument/return registers,
	// caller-saved call clobbers, and convention bindings constrain
	// the allocation, and the resolved model is echoed in the reply.
	Machine      string `json:"machine,omitempty"`
	KInt         *int   `json:"kint,omitempty"`
	KFloat       *int   `json:"kfloat,omitempty"`
	Metric       string `json:"metric,omitempty"`
	Coalesce     *bool  `json:"coalesce,omitempty"`
	Conservative *bool  `json:"conservative,omitempty"`
	Remat        *bool  `json:"remat,omitempty"`
	Split        *bool  `json:"split,omitempty"`
	Workers      *int   `json:"workers,omitempty"`
	MaxPasses    *int   `json:"maxpasses,omitempty"`

	// Seed drives the pcolor engine on the graph path
	// (heuristic=pcolor); ignored otherwise.
	Seed *uint64 `json:"seed,omitempty"`

	// Portfolio races the strategy portfolio instead of a single
	// configuration: "all", a comma-separated candidate subset, or a
	// truthy/falsy flag. PMode, PBudget, and PSeeds tune the race.
	Portfolio string `json:"portfolio,omitempty"`
	PMode     string `json:"pmode,omitempty"`
	PBudget   string `json:"pbudget,omitempty"`
	PSeeds    string `json:"pseeds,omitempty"`

	// NoCache bypasses the result cache for this request (the entry
	// is neither read nor written).
	NoCache bool `json:"nocache,omitempty"`
}

// decodeAllocRequest builds the request from an HTTP body: a JSON
// object (Content-Type application/json, or a body starting with
// '{') decodes directly with unknown fields rejected; anything else
// is the legacy form — the body is the payload and every knob comes
// from query parameters.
func decodeAllocRequest(r *http.Request, body []byte) (*AllocRequest, *apiError) {
	trimmed := bytes.TrimSpace(body)
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") || (len(trimmed) > 0 && trimmed[0] == '{') {
		req := &AllocRequest{}
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			return nil, failErr(http.StatusBadRequest, codeBadBody, "decoding JSON request", err)
		}
		// Trailing garbage after the object is a malformed request,
		// not a second message.
		if dec.More() {
			return nil, failf(http.StatusBadRequest, codeBadBody, "trailing data after JSON request object")
		}
		return req, nil
	}
	req, fail := requestFromParams(r.URL.Query())
	if fail != nil {
		return nil, fail
	}
	req.Source = string(body)
	return req, nil
}

// requestFromParams is the legacy-parameter half of the shared
// parser: every /v1 JSON field has a same-named query parameter.
func requestFromParams(q url.Values) (*AllocRequest, *apiError) {
	req := &AllocRequest{
		Input:     q.Get("input"),
		Unit:      q.Get("unit"),
		Heuristic: q.Get("heuristic"),
		Machine:   q.Get("machine"),
		Metric:    q.Get("metric"),
		Portfolio: q.Get("portfolio"),
		PMode:     q.Get("pmode"),
		PBudget:   q.Get("pbudget"),
		PSeeds:    q.Get("pseeds"),
	}
	for _, p := range []struct {
		name string
		dst  **int
	}{
		{"kint", &req.KInt}, {"kfloat", &req.KFloat},
		{"workers", &req.Workers}, {"maxpasses", &req.MaxPasses},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, failErr(http.StatusBadRequest, codeBadRequest, p.name, err)
			}
			*p.dst = &n
		}
	}
	for _, p := range []struct {
		name string
		dst  **bool
	}{
		{"coalesce", &req.Coalesce}, {"conservative", &req.Conservative},
		{"remat", &req.Remat}, {"split", &req.Split},
	} {
		if v := q.Get(p.name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, failErr(http.StatusBadRequest, codeBadRequest, p.name, err)
			}
			*p.dst = &b
		}
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, failErr(http.StatusBadRequest, codeBadRequest, "seed", err)
		}
		req.Seed = &seed
	}
	if v := q.Get("colors"); v != "" {
		b, err := strconv.ParseBool(v)
		// Tolerate the historical loose form (?colors=junk meant
		// false) but accept only clean booleans going forward.
		if err != nil {
			return nil, failErr(http.StatusBadRequest, codeBadRequest, "colors", err)
		}
		req.Colors = b
	}
	if v := q.Get("nocache"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, failErr(http.StatusBadRequest, codeBadRequest, "nocache", err)
		}
		req.NoCache = b
	}
	return req, nil
}

// options resolves the request's allocator configuration: unset
// fields keep the paper's defaults, set fields are parsed and the
// whole result validated (typed failures, see optionsFailure).
func (req *AllocRequest) options() (regalloc.Options, *apiError) {
	opt := regalloc.DefaultOptions()
	var err error
	// The graph path handles "pcolor" itself; the option parser only
	// sees the library's heuristics.
	if req.Heuristic != "" && req.Heuristic != "pcolor" {
		opt.Heuristic, err = color.ParseHeuristic(req.Heuristic)
		if err != nil {
			return opt, failErr(http.StatusBadRequest, codeBadHeuristic, "heuristic", err)
		}
	}
	if req.Metric != "" {
		opt.Metric, err = parseMetric(req.Metric)
		if err != nil {
			return opt, failErr(http.StatusBadRequest, codeBadMetric, "metric", err)
		}
	}
	if req.KInt != nil {
		opt.KInt = *req.KInt
	}
	if req.KFloat != nil {
		opt.KFloat = *req.KFloat
	}
	if req.Workers != nil {
		opt.Workers = *req.Workers
	}
	if req.MaxPasses != nil {
		opt.MaxPasses = *req.MaxPasses
	}
	if req.Coalesce != nil {
		opt.Coalesce = *req.Coalesce
	}
	if req.Conservative != nil {
		opt.ConservativeCoalesce = *req.Conservative
	}
	if req.Remat != nil {
		opt.Rematerialize = *req.Remat
	}
	if req.Split != nil {
		opt.Split = *req.Split
	}
	// Resolve the machine model after K so a resized request gets a
	// convention derived at its own register-file size (Validate
	// demands the two agree).
	if req.Machine != "" {
		switch req.Machine {
		case "rtpc", "rt/pc":
			m := regalloc.RTPC().WithGPR(opt.KInt).WithFPR(opt.KFloat)
			opt.Machine = regalloc.MachineFor(m)
		default:
			return opt, failf(http.StatusBadRequest, codeBadMachine,
				"unknown machine %q (want rtpc)", req.Machine)
		}
	}
	if err := opt.Validate(); err != nil {
		return opt, optionsFailure(err)
	}
	return opt, nil
}

// inputKind resolves the payload kind: forced by Input, else sniffed
// by the .ig node-count directive.
func (req *AllocRequest) inputKind() (string, *apiError) {
	switch req.Input {
	case "src", "ig":
		return req.Input, nil
	case "":
		if igFirstLine.MatchString(strings.TrimSpace(req.Source)) {
			return "ig", nil
		}
		return "src", nil
	}
	return "", failf(http.StatusBadRequest, codeBadRequest, "unknown input kind %q (want src or ig)", req.Input)
}

// portfolioSpec normalizes the Portfolio field: "" means no race, a
// truthy flag means the full default set, a falsy flag means no
// race, anything else is a candidate subset (validated later).
func (req *AllocRequest) portfolioSpec() string {
	spec := req.Portfolio
	if v, err := strconv.ParseBool(spec); err == nil {
		if !v {
			return ""
		}
		return "all"
	}
	return spec
}

func parseMetric(s string) (color.Metric, error) {
	switch s {
	case "costdegree", "cost/degree", "cost-over-degree":
		return color.CostOverDegree, nil
	case "cost":
		return color.CostOnly, nil
	case "degree":
		return color.DegreeOnly, nil
	}
	return 0, fmt.Errorf("unknown metric %q (want costdegree, cost, or degree)", s)
}
