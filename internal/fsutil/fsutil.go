// Package fsutil holds the one filesystem idiom every CLI output
// path in this repo must share: a file that carries results (traces,
// metrics, benchmark reports) is synced and closed with errors
// checked, because ENOSPC and quota errors routinely surface only at
// fsync or close — dropping them ships a silently truncated file.
package fsutil

import (
	"fmt"
	"os"
)

// SyncClose fsyncs then closes f, returning the first error. It is
// the uniform close path for every result-carrying file the CLIs
// write; use it instead of a bare f.Close() (and never in a defer
// whose error would be dropped).
func SyncClose(f *os.File) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", f.Name(), err)
	}
	return nil
}
