package experiments

import (
	"fmt"

	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

// A DriverFunc runs one program's representative dynamic workload on
// an engine and returns a result digest. The digest must be
// identical across engines (simulator vs reference interpreter) and
// across allocators (Chaitin vs Briggs): register allocation must
// not change observable behaviour.
type DriverFunc func(e Engine) (uint64, error)

// Driver couples a workload with its dynamic scenario.
type Driver struct {
	Workload workloads.Workload
	Run      DriverFunc
}

// Drivers returns the dynamic scenario for every Figure 5 program
// plus quicksort. CEDETA has no driver: the paper reports "n/a" for
// its dynamic column.
func Drivers() []Driver {
	return []Driver{
		{Workload: workloads.SVD(), Run: runSVD},
		{Workload: workloads.LINPACK(), Run: runLinpack},
		{Workload: workloads.Simplex(), Run: runSimplex},
		{Workload: workloads.Euler(), Run: runEuler},
		{Workload: workloads.Quicksort(), Run: func(e Engine) (uint64, error) { return runQuicksort(e, 20000) }},
	}
}

func ints(vals ...int64) []vm.Value {
	out := make([]vm.Value, len(vals))
	for i, v := range vals {
		out[i] = vm.Int(v)
	}
	return out
}

// runSVD decomposes a deterministic 20x15 matrix.
func runSVD(e Engine) (uint64, error) {
	const (
		nm, m, n = 20, 20, 15
		aBase    = int64(0)
		wBase    = int64(1000)
		uBase    = int64(2000)
		vBase    = int64(3000)
		ierrBase = int64(4000)
		rv1Base  = int64(4100)
	)
	r := &lcg{s: 7}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			e.StoreFloat(aBase+int64(i)+int64(j)*nm, r.float())
		}
	}
	args := ints(nm, m, n, aBase, wBase, uBase, vBase, ierrBase, rv1Base)
	if _, err := e.Call("SVD", args...); err != nil {
		return 0, err
	}
	var d digest
	d.addInt(e.LoadInt(ierrBase))
	for i := 0; i < n; i++ {
		d.addFloat(e.LoadFloat(wBase + int64(i)))
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			d.addFloat(e.LoadFloat(uBase + int64(i) + int64(j)*nm))
		}
	}
	return d.sum(), nil
}

// runLinpack generates, factors, and solves a 40x40 system, then
// exercises DMXPY and the Level-1 routines directly.
func runLinpack(e Engine) (uint64, error) {
	const (
		lda, n  = 50, 40
		aBase   = int64(0)
		bBase   = int64(3000)
		ipvt    = int64(4000)
		info    = int64(4200)
		yBase   = int64(5000)
		xBase   = int64(6000)
		matBase = int64(10000)
		n1, n2  = 40, 33
	)
	if _, err := e.Call("MATGEN", ints(aBase, lda, n, bBase)...); err != nil {
		return 0, check("MATGEN", err)
	}
	if _, err := e.Call("DGEFA", ints(aBase, lda, n, ipvt, info)...); err != nil {
		return 0, check("DGEFA", err)
	}
	if e.LoadInt(info) != 0 {
		return 0, fmt.Errorf("DGEFA: matrix singular at %d", e.LoadInt(info))
	}
	if _, err := e.Call("DGESL", ints(aBase, lda, n, ipvt, bBase, 0)...); err != nil {
		return 0, check("DGESL", err)
	}
	// DMXPY on a fresh deterministic system.
	r := &lcg{s: 99}
	for i := int64(0); i < n1; i++ {
		e.StoreFloat(yBase+i, r.float())
	}
	for j := int64(0); j < n2; j++ {
		e.StoreFloat(xBase+j, r.float())
		for i := int64(0); i < n1; i++ {
			e.StoreFloat(matBase+i+j*lda, r.float())
		}
	}
	if _, err := e.Call("DMXPY", ints(n1, yBase, n2, lda, xBase, matBase)...); err != nil {
		return 0, check("DMXPY", err)
	}
	// Level-1 BLAS and EPSLON, both increment paths.
	dot, err := e.Call("DDOT", ints(n1, yBase, 1, yBase, 1)...)
	if err != nil {
		return 0, check("DDOT", err)
	}
	if _, err := e.Call("DAXPY", []vm.Value{vm.Int(n1 / 2), vm.Float(0.5), vm.Int(yBase), vm.Int(2), vm.Int(xBase), vm.Int(1)}...); err != nil {
		return 0, check("DAXPY", err)
	}
	if _, err := e.Call("DSCAL", []vm.Value{vm.Int(n1), vm.Float(1.01), vm.Int(yBase), vm.Int(1)}...); err != nil {
		return 0, check("DSCAL", err)
	}
	imax, err := e.Call("IDAMAX", ints(n1, yBase, 1)...)
	if err != nil {
		return 0, check("IDAMAX", err)
	}
	eps, err := e.Call("EPSLON", []vm.Value{vm.Float(1.0)}...)
	if err != nil {
		return 0, check("EPSLON", err)
	}
	var d digest
	d.addFloat(dot.F)
	d.addInt(imax.I)
	d.addFloat(eps.F * 1e18)
	for i := int64(0); i < n; i++ {
		d.addFloat(e.LoadFloat(bBase + i))
	}
	for i := int64(0); i < n1; i++ {
		d.addFloat(e.LoadFloat(yBase + i))
	}
	return d.sum(), nil
}

// runSimplex minimizes an 8-dimensional chained Rosenbrock function.
func runSimplex(e Engine) (uint64, error) {
	const (
		lds, n = 10, 8
		np1    = n + 1
		sBase  = int64(0)
		srBase = int64(200)
		seBase = int64(400)
		fvBase = int64(600)
		frBase = int64(700)
		feBase = int64(800)
		iter   = int64(900)
	)
	// Initial simplex: a perturbed point near the valley.
	for j := 0; j < np1; j++ {
		for i := 0; i < n; i++ {
			v := -1.2
			if i%2 == 1 {
				v = 1.0
			}
			if j == i+1 {
				v += 0.5
			}
			e.StoreFloat(sBase+int64(i)+int64(j)*lds, v)
		}
	}
	args := []vm.Value{
		vm.Int(sBase), vm.Int(lds), vm.Int(n), vm.Int(150), vm.Float(1e-6),
		vm.Int(srBase), vm.Int(seBase), vm.Int(fvBase), vm.Int(frBase), vm.Int(feBase), vm.Int(iter),
	}
	if _, err := e.Call("SIMPLEX", args...); err != nil {
		return 0, err
	}
	var d digest
	d.addInt(e.LoadInt(iter))
	for j := 0; j < np1; j++ {
		d.addFloat(e.LoadFloat(fvBase + int64(j)))
		for i := 0; i < n; i++ {
			d.addFloat(e.LoadFloat(sBase + int64(i) + int64(j)*lds))
		}
	}
	return d.sum(), nil
}

// runEuler initializes a 64-cell shock tube and advances it 10
// steps, exercising every routine.
func runEuler(e Engine) (uint64, error) {
	const (
		ld, n  = 80, 64
		nc, np = 16, 32
		xBase  = int64(0)
		uBase  = int64(100)
		dBase  = int64(400)
		wBase  = int64(700)
		fBase  = int64(1000)
		uhBase = int64(1300)
		fhBase = int64(1600)
		cBase  = int64(1900)
		pBase  = int64(2000)
		smax   = int64(2100)
		dfBase = int64(2200)
		dwBase = int64(2500)
		xrBase = int64(3000)
		xiBase = int64(3100)
		duBase = int64(3200)
		chBase = int64(3300)
		cwBase = int64(3400)
	)
	gamma := vm.Float(1.4)
	dt := vm.Float(0.001)
	dx := vm.Float(1.0 / 63.0)
	if _, err := e.Call("INIT", vm.Int(xBase), vm.Int(uBase), vm.Int(dBase), vm.Int(cBase),
		vm.Int(pBase), vm.Int(ld), vm.Int(n), vm.Int(nc), vm.Int(np), gamma, dt, dx); err != nil {
		return 0, check("INIT", err)
	}
	if _, err := e.Call("INPUT", vm.Int(pBase), vm.Int(np), vm.Int(uBase), vm.Int(ld), vm.Int(n), gamma); err != nil {
		return 0, check("INPUT", err)
	}
	if _, err := e.Call("SHOCK", vm.Int(dBase), vm.Int(n)); err != nil {
		return 0, check("SHOCK", err)
	}
	for step := 0; step < 10; step++ {
		if _, err := e.Call("CODE", vm.Int(uBase), vm.Int(fBase), vm.Int(cBase), vm.Int(ld), vm.Int(n), gamma, vm.Int(smax)); err != nil {
			return 0, check("CODE", err)
		}
		if _, err := e.Call("CODE", vm.Int(uBase), vm.Int(fhBase), vm.Int(cBase), vm.Int(ld), vm.Int(n), gamma, vm.Int(smax)); err != nil {
			return 0, check("CODE/half", err)
		}
		if _, err := e.Call("FINDIF", vm.Int(uBase), vm.Int(uhBase), vm.Int(fBase), vm.Int(fhBase),
			vm.Int(ld), vm.Int(n), dt, dx, vm.Float(0.8)); err != nil {
			return 0, check("FINDIF", err)
		}
		if _, err := e.Call("DISSIP", vm.Int(uBase), vm.Int(dBase), vm.Int(wBase),
			vm.Int(ld), vm.Int(n), vm.Float(0.25), vm.Float(0.015625), dt, dx); err != nil {
			return 0, check("DISSIP", err)
		}
		if _, err := e.Call("BNDRY", vm.Int(uBase), vm.Int(ld), vm.Int(n), vm.Int(0)); err != nil {
			return 0, check("BNDRY", err)
		}
	}
	if _, err := e.Call("DIFFR", vm.Int(uBase), vm.Int(fBase), vm.Int(dfBase), vm.Int(dwBase),
		vm.Int(ld), vm.Int(n), vm.Float(1e-6)); err != nil {
		return 0, check("DIFFR", err)
	}
	if _, err := e.Call("DERIV", vm.Int(uBase), vm.Int(duBase), vm.Int(n), dx); err != nil {
		return 0, check("DERIV", err)
	}
	// Spectral probe of the density field.
	for i := int64(0); i < 32; i++ {
		e.StoreFloat(xrBase+i, e.LoadFloat(uBase+i))
		e.StoreFloat(xiBase+i, 0)
	}
	if _, err := e.Call("FFTB", vm.Int(xrBase), vm.Int(xiBase), vm.Int(32), vm.Int(5)); err != nil {
		return 0, check("FFTB", err)
	}
	if _, err := e.Call("CHEB", vm.Int(chBase), vm.Int(8), vm.Float(0.0), vm.Float(1.0), vm.Int(cwBase)); err != nil {
		return 0, check("CHEB", err)
	}
	var d digest
	for k := int64(0); k < 3; k++ {
		for i := int64(0); i < n; i++ {
			d.addFloat(e.LoadFloat(uBase + i + k*ld))
		}
	}
	for i := int64(0); i < 32; i++ {
		d.addFloat(e.LoadFloat(xrBase + i))
		d.addFloat(e.LoadFloat(xiBase + i))
	}
	for i := int64(0); i < 8; i++ {
		d.addFloat(e.LoadFloat(chBase + i))
	}
	return d.sum(), nil
}

// runQuicksort sorts n deterministic pseudo-random integers and
// verifies the result is a non-decreasing permutation.
func runQuicksort(e Engine, n int64) (uint64, error) {
	const base = int64(0)
	r := &lcg{s: 3}
	var sum int64
	for i := int64(0); i < n; i++ {
		v := r.intn(1000000)
		e.StoreInt(base+i, v)
		sum += v
	}
	if _, err := e.Call("QSORT", vm.Int(base), vm.Int(n)); err != nil {
		return 0, err
	}
	var after int64
	var d digest
	prev := int64(-1)
	for i := int64(0); i < n; i++ {
		v := e.LoadInt(base + i)
		if v < prev {
			return 0, fmt.Errorf("quicksort: out of order at %d: %d < %d", i, v, prev)
		}
		prev = v
		after += v
		d.addInt(v)
	}
	if after != sum {
		return 0, fmt.Errorf("quicksort: element sum changed (%d -> %d)", sum, after)
	}
	return d.sum(), nil
}

// RunQuicksortN exposes the quicksort driver with a configurable
// element count for the Figure 6 study.
func RunQuicksortN(e Engine, n int64) (uint64, error) { return runQuicksort(e, n) }
