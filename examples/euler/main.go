// Euler: runs the EULER shock-tube workload as a real simulation —
// initialize a 1-D tube, advance it with the two-step Lax–Wendroff
// scheme plus artificial dissipation, and render the density profile
// as ASCII art. The whole physics loop executes as register-allocated
// machine code on the simulated RT/PC; the example prints the cycle
// split between the two allocators.
//
// Run with: go run ./examples/euler [steps]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"regalloc"
	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

const (
	ld, n  = 80, 64
	nc, np = 16, 32
	xBase  = int64(0)
	uBase  = int64(100)
	dBase  = int64(400)
	wBase  = int64(700)
	fBase  = int64(1000)
	uhBase = int64(1300)
	fhBase = int64(1600)
	cBase  = int64(1900)
	pBase  = int64(2000)
	smax   = int64(2100)
)

func main() {
	steps := 40
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad step count %q", os.Args[1])
		}
		steps = v
	}
	prog, err := regalloc.Compile(workloads.Euler().Source)
	if err != nil {
		log.Fatal(err)
	}

	var cycles [2]uint64
	var density []float64
	for i, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		code, _, err := prog.Assemble(regalloc.RTPC(), opt)
		if err != nil {
			log.Fatal(err)
		}
		m := regalloc.NewVM(code, prog.MemWords())
		run(m, steps)
		cycles[i] = m.Cycles
		if h == regalloc.Briggs {
			density = make([]float64, n)
			for j := 0; j < n; j++ {
				density[j] = m.LoadFloat(uBase + int64(j))
			}
		}
	}

	fmt.Printf("shock tube, %d cells, %d Lax–Wendroff steps\n\n", n, steps)
	fmt.Print(render(density))
	fmt.Printf("\nsimulated cycles: chaitin %d, briggs %d (%.2f%% better)\n",
		cycles[0], cycles[1], 100*float64(cycles[0]-cycles[1])/float64(cycles[0]))
}

func run(m *vm.VM, steps int) {
	gamma := vm.Float(1.4)
	dt := vm.Float(0.002)
	dx := vm.Float(1.0 / float64(n-1))
	call := func(name string, args ...vm.Value) {
		if _, err := m.Call(name, args...); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	call("INIT", vm.Int(xBase), vm.Int(uBase), vm.Int(dBase), vm.Int(cBase),
		vm.Int(pBase), vm.Int(ld), vm.Int(n), vm.Int(nc), vm.Int(np), gamma, dt, dx)
	call("INPUT", vm.Int(pBase), vm.Int(np), vm.Int(uBase), vm.Int(ld), vm.Int(n), gamma)
	for s := 0; s < steps; s++ {
		call("CODE", vm.Int(uBase), vm.Int(fBase), vm.Int(cBase), vm.Int(ld), vm.Int(n), gamma, vm.Int(smax))
		call("CODE", vm.Int(uBase), vm.Int(fhBase), vm.Int(cBase), vm.Int(ld), vm.Int(n), gamma, vm.Int(smax))
		call("FINDIF", vm.Int(uBase), vm.Int(uhBase), vm.Int(fBase), vm.Int(fhBase),
			vm.Int(ld), vm.Int(n), dt, dx, vm.Float(0.85))
		call("DISSIP", vm.Int(uBase), vm.Int(dBase), vm.Int(wBase),
			vm.Int(ld), vm.Int(n), vm.Float(0.3), vm.Float(0.02), dt, dx)
		call("BNDRY", vm.Int(uBase), vm.Int(ld), vm.Int(n), vm.Int(0))
	}
}

// render draws the density field, one column per cell.
func render(density []float64) string {
	const rows = 12
	lo, hi := density[0], density[0]
	for _, v := range density {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for r := rows; r >= 1; r-- {
		threshold := lo + (hi-lo)*float64(r)/float64(rows)
		fmt.Fprintf(&b, "%8.3f |", threshold)
		for _, v := range density {
			if v >= threshold-1e-12 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("         +" + strings.Repeat("-", len(density)) + "  density\n")
	return b.String()
}
