package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/iotest"
	"time"

	"regalloc/internal/obs/promtext"
)

const testSource = `
      SUBROUTINE SAXPYISH(N,A,X,Y)
      REAL A,X(*),Y(*)
      REAL T1,T2,T3,T4
      INTEGER I,N
      DO I = 1,N-3,4
         T1 = A*X(I)
         T2 = A*X(I+1)
         T3 = A*X(I+2)
         T4 = A*X(I+3)
         Y(I) = Y(I) + T1
         Y(I+1) = Y(I+1) + T2
         Y(I+2) = Y(I+2) + T3
         Y(I+3) = Y(I+3) + T4
      ENDDO
      RETURN
      END
`

const testGraph = `n 4
e 0 1
e 1 2
e 2 3
e 3 0
c 0 5
`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(4)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAlloc(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestAllocSource(t *testing.T) {
	_, ts := newTestServer(t)
	code, data := postAlloc(t, ts, "/alloc?heuristic=briggs&kint=8&kfloat=4", testSource)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if resp.Input != "src" || len(resp.Units) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	u := resp.Units[0]
	if u.Unit != "SAXPYISH" || u.LiveRanges == 0 || u.Passes == 0 || u.PaletteInt == 0 {
		t.Fatalf("unit = %+v", u)
	}
	if u.Colors != nil {
		t.Fatal("colors included without ?colors=1")
	}

	code, data = postAlloc(t, ts, "/alloc?colors=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var withColors allocResponse
	if err := json.Unmarshal(data, &withColors); err != nil {
		t.Fatal(err)
	}
	if len(withColors.Units[0].Colors) == 0 {
		t.Fatal("?colors=1 returned no assignment")
	}
}

func TestAllocGraphSniffedAndExplicit(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/alloc?kint=2", "/alloc?input=ig&kint=2"} {
		code, data := postAlloc(t, ts, path, testGraph)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, code, data)
		}
		var resp graphResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		// The 4-cycle with k=2 is the paper's Figure 3: briggs
		// colors it with zero spills.
		if resp.Input != "ig" || resp.Nodes != 4 || resp.Edges != 4 || len(resp.Spilled) != 0 {
			t.Fatalf("resp = %+v", resp)
		}
	}
	// Chaitin on the same graph must spill (the pessimistic half of
	// Figure 3).
	code, data := postAlloc(t, ts, "/alloc?kint=2&heuristic=chaitin", testGraph)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp graphResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Spilled) == 0 {
		t.Fatal("chaitin k=2 on a 4-cycle did not spill")
	}
}

func TestAllocGraphPColor(t *testing.T) {
	_, ts := newTestServer(t)
	code, data := postAlloc(t, ts, "/alloc?heuristic=pcolor&workers=2&seed=7&colors=1", testGraph)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp graphResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Heuristic != "pcolor" || resp.Rounds == 0 || resp.ColorsInt == 0 || len(resp.Colors) != 4 {
		t.Fatalf("resp = %+v", resp)
	}
}

// errorEnvelope decodes the structured error reply every non-2xx
// carries.
func errorEnvelope(t *testing.T, data []byte) *apiError {
	t.Helper()
	var e struct {
		Error *apiError `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Error == nil || e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error reply not a structured envelope: %s", data)
	}
	return e.Error
}

func TestAllocErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		path, body string
		want       int
		wantCode   string
	}{
		{"/alloc", "", http.StatusBadRequest, "empty_body"},
		{"/alloc", "NOT FORTRAN AT ALL ((", http.StatusBadRequest, "compile_failed"},
		{"/alloc?kint=0", testSource, http.StatusBadRequest, "bad_k"},
		{"/alloc?heuristic=bogus", testSource, http.StatusBadRequest, "bad_heuristic"},
		{"/alloc?metric=bogus", testSource, http.StatusBadRequest, "bad_metric"},
		{"/alloc?input=bogus", testSource, http.StatusBadRequest, "bad_request"},
		{"/alloc?unit=MISSING", testSource, http.StatusBadRequest, "unknown_unit"},
		{"/alloc?input=ig", "n x\n", http.StatusBadRequest, "bad_graph"},
	}
	for _, tc := range cases {
		code, data := postAlloc(t, ts, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, code, tc.want, data)
		}
		if e := errorEnvelope(t, data); e.Code != tc.wantCode {
			t.Errorf("%s: error code %q, want %q (%s)", tc.path, e.Code, tc.wantCode, data)
		}
	}
	resp, err := http.Get(ts.URL + "/alloc")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /alloc: status %d, want 405", resp.StatusCode)
	}
	if e := errorEnvelope(t, data); e.Code != "method_not_allowed" {
		t.Errorf("GET /alloc: error code %q", e.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Drive some work through both input kinds, concurrently, then
	// scrape.
	// nocache=1 keeps the counting semantics under test: with the
	// result cache on, repeats would be hits and record nothing.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postAlloc(t, ts, "/alloc?kint=8&nocache=1", testSource)
			postAlloc(t, ts, "/alloc?input=ig&kint=2&nocache=1", testGraph)
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if err := promtext.Lint(data); err != nil {
		t.Fatalf("/metrics fails Lint: %v\n%s", err, data)
	}
	for _, want := range []string{
		"regalloc_runs_total 16",
		`regalloc_unit_runs_total{unit="SAXPYISH"} 8`,
		`regalloc_unit_runs_total{unit="graph"} 8`,
		"regalloc_events_total{", // live trace counters from the MetricsSink observer
		"allocd_ready 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHealthReadyAndDrain(t *testing.T) {
	s, ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	s.beginShutdown()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d, want 503", resp.StatusCode)
	}
	// Liveness stays green while draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

// TestAllocTimeout locks the -alloc-timeout contract: a deadline
// that expires while the service is healthy is backpressure, 429
// with Retry-After — the same request succeeds on a quieter instant —
// not the drain path's 503.
func TestAllocTimeout(t *testing.T) {
	s := newServer(4)
	s.allocTimeout = time.Nanosecond
	req := httptest.NewRequest(http.MethodPost, "/alloc", strings.NewReader(testSource))
	rec := httptest.NewRecorder()
	s.handleAlloc(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("expired -alloc-timeout: status %d, want 429\n%s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if e := errorEnvelope(t, rec.Body.Bytes()); e.Code != "admission_timeout" && e.Code != "deadline_exceeded" {
		t.Fatalf("timeout error code %q", e.Code)
	}

	// A generous deadline changes nothing.
	s.allocTimeout = time.Minute
	req = httptest.NewRequest(http.MethodPost, "/alloc", strings.NewReader(testSource))
	rec = httptest.NewRecorder()
	s.handleAlloc(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ample -alloc-timeout: status %d, want 200\n%s", rec.Code, rec.Body)
	}
}

// TestAllocPortfolio drives the ?portfolio= path: full default race,
// a named subset, and the race report in the reply.
func TestAllocPortfolio(t *testing.T) {
	_, ts := newTestServer(t)
	code, data := postAlloc(t, ts, "/alloc?portfolio=1&kint=8&kfloat=4&colors=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(resp.Units) != 1 || resp.Units[0].Portfolio == nil {
		t.Fatalf("resp = %+v", resp)
	}
	u := resp.Units[0]
	p := u.Portfolio
	// Default set: 7 heuristic variants (chaitin, briggs, briggs/cost,
	// briggs/degree, mb, ssa, irc) + 3 pcolor seeds + 1 Jones–Plassmann
	// entrant.
	if len(p.Candidates) != 11 {
		t.Fatalf("candidates = %d, want 11: %+v", len(p.Candidates), p)
	}
	if p.Winner == "" || p.Mode != "race-to-best" {
		t.Fatalf("portfolio = %+v", p)
	}
	finished := 0
	winnerCost := -1.0
	for _, c := range p.Candidates {
		if c.Status == "finished" {
			finished++
		}
		if c.Name == p.Winner {
			winnerCost = c.SpillCost
		}
	}
	if finished == 0 || winnerCost < 0 {
		t.Fatalf("no finisher or missing winner row: %+v", p)
	}
	for _, c := range p.Candidates {
		if c.Status == "finished" && c.SpillCost < winnerCost {
			t.Fatalf("candidate %s (cost %v) beat winner %s (cost %v)", c.Name, c.SpillCost, p.Winner, winnerCost)
		}
	}
	if len(u.Colors) == 0 {
		t.Fatal("?colors=1 returned no assignment")
	}

	// Named subset with a custom seed list and mode.
	code, data = postAlloc(t, ts, "/alloc?portfolio=briggs,chaitin,pcolor/s9&pseeds=9&pmode=first-good", testSource)
	if code != http.StatusOK {
		t.Fatalf("subset: status %d: %s", code, data)
	}
	resp = allocResponse{}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	p = resp.Units[0].Portfolio
	if p == nil || len(p.Candidates) != 3 || p.Mode != "first-good" {
		t.Fatalf("subset portfolio = %+v", p)
	}

	// The registry now carries portfolio families, Lint-clean.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mdata, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := promtext.Lint(mdata); err != nil {
		t.Fatalf("/metrics fails Lint: %v\n%s", err, mdata)
	}
	for _, want := range []string{
		"regalloc_portfolio_races_total 2",
		"regalloc_portfolio_wins_total{strategy=",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAllocPortfolioErrors locks the 400s for a malformed race spec.
func TestAllocPortfolioErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{
		"/alloc?portfolio=bogus-strategy",
		"/alloc?portfolio=1&pmode=bogus",
		"/alloc?portfolio=1&pbudget=bogus",
		"/alloc?portfolio=1&pseeds=notanumber",
		"/alloc?portfolio=1&unit=MISSING",
	} {
		code, data := postAlloc(t, ts, path, testSource)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", path, code, data)
		}
	}
}

// TestAllocPortfolioMaxInflightOne is the admission deadlock guard:
// the request releases its own slot before racing, so candidates can
// be admitted one at a time even when -max-inflight is 1.
func TestAllocPortfolioMaxInflightOne(t *testing.T) {
	s := newServer(1)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	code, data := postAlloc(t, ts, "/alloc?portfolio=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	p := resp.Units[0].Portfolio
	if p == nil || p.Winner == "" {
		t.Fatalf("portfolio = %+v", p)
	}
	if len(s.sem) != 0 {
		t.Fatalf("semaphore not drained after the race: %d slots held", len(s.sem))
	}
}

// TestAllocErrorStatuses locks the error classification the review
// tightened: a cancelled request is 503 (not a client-input 400), an
// oversized body is 413, and a short body read is 400.
func TestAllocErrorStatuses(t *testing.T) {
	s := newServer(4)

	// Cancelled context: whether it dies queued or inside
	// AllocateAllContext, the answer is 503.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/alloc", strings.NewReader(testSource)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleAlloc(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request: status %d, want 503\n%s", rec.Code, rec.Body)
	}

	// Oversized body: 413.
	req = httptest.NewRequest(http.MethodPost, "/alloc", strings.NewReader(strings.Repeat("x", maxBodyBytes+1)))
	rec = httptest.NewRecorder()
	s.handleAlloc(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413\n%s", rec.Code, rec.Body)
	}

	// Body read error that is not a size overflow: 400, not 413.
	req = httptest.NewRequest(http.MethodPost, "/alloc", io.MultiReader(strings.NewReader("abc"), iotest.ErrReader(errors.New("peer reset"))))
	rec = httptest.NewRecorder()
	s.handleAlloc(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken body read: status %d, want 400\n%s", rec.Code, rec.Body)
	}
}
