package spill_test

import (
	"math"
	"testing"

	"regalloc/internal/cfg"
	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
	"regalloc/internal/spill"
)

// constLoop builds: b0: c = 3.5 (const); x = 0.0; br b1
// b1: x = x + c ; brif x lt c -> b1 b2 ; b2: ret x
func constLoop() (*ir.Func, ir.Reg, ir.Reg) {
	f := &ir.Func{Name: "K"}
	c := f.NewReg(ir.ClassFloat)
	x := f.NewReg(ir.ClassFloat)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: c, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, FImm: 3.5},
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, FImm: 0},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpFAdd, Dst: x, A: x, B: c, C: ir.NoReg},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: x, B: c, C: ir.NoReg, Cmp: ir.CmpLT, Cls: ir.ClassFloat},
	}
	b1.Succs = []int{1, 2}
	b2.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	cfg.Analyze(f)
	return f, c, x
}

func TestRematDetection(t *testing.T) {
	f, c, x := constLoop()
	ok, vals := spill.Remat(f)
	if !ok[c] || vals[c].FImm != 3.5 || vals[c].Cls != ir.ClassFloat {
		t.Fatalf("constant range not detected: ok=%v val=%+v", ok[c], vals[c])
	}
	// x has a const def AND an fadd def: not rematerializable.
	if ok[x] {
		t.Fatal("multiply-defined range wrongly rematerializable")
	}
}

func TestRematDistinctConstants(t *testing.T) {
	f := &ir.Func{Name: "D"}
	y := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	z := f.NewReg(ir.ClassInt)
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: z, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: z, B: z, C: ir.NoReg, Cmp: ir.CmpEQ},
	}
	b0.Succs = []int{1, 2}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: y, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b1.Succs = []int{3}
	b2.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: y, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b2.Succs = []int{3}
	b3.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: y, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	ok, _ := spill.Remat(f)
	if ok[y] {
		t.Fatal("range with two different constant values wrongly rematerializable")
	}
}

func TestRematCostsCheaper(t *testing.T) {
	f, c, _ := constLoop()
	ok, _ := spill.Remat(f)
	plain := spill.Costs(f, spill.DefaultCostParams())
	withR := spill.CostsRemat(f, spill.DefaultCostParams(), ok)
	if !(withR[c] < plain[c]) {
		t.Fatalf("remat cost %g not cheaper than plain %g", withR[c], plain[c])
	}
	// Non-remat registers keep their plain cost, and spill temps stay
	// infinite.
	tmp := f.NewSpillTemp(ir.ClassInt)
	ok2, _ := spill.Remat(f)
	costs := spill.CostsRemat(f, spill.DefaultCostParams(), ok2)
	if !math.IsInf(costs[tmp], 1) {
		t.Fatal("spill temp lost its infinite cost under remat")
	}
}

func TestRematInsertCode(t *testing.T) {
	f, c, _ := constLoop()
	ok, vals := spill.Remat(f)
	st := spill.InsertCodeRemat(f, []ir.Reg{c}, ok, vals)
	if st.Slots != 0 || st.Stores != 0 {
		t.Fatalf("remat range should use no slot/store: %+v", st)
	}
	if st.Remats == 0 {
		t.Fatal("no constant recomputations inserted")
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// The original constant definition of c is gone.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Def() == c {
				t.Fatal("rematerialized definition not removed")
			}
		}
	}
	// Semantics preserved.
	p := ir.NewProgram(0)
	p.Add(f)
	v, err := irinterp.New(p, 64).Call("K")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 3.5 {
		t.Fatalf("got %g, want 3.5", v.F)
	}
}

func TestRematMixedWithPlainSpill(t *testing.T) {
	f, c, x := constLoop()
	ok, vals := spill.Remat(f)
	st := spill.InsertCodeRemat(f, []ir.Reg{c, x}, ok, vals)
	if st.Slots != 1 || st.Remats == 0 || st.Loads == 0 {
		t.Fatalf("mixed spill stats: %+v", st)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	p := ir.NewProgram(0)
	p.Add(f)
	v, err := irinterp.New(p, 1<<15).Call("K")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 3.5 {
		t.Fatalf("got %g, want 3.5", v.F)
	}
}
