package regalloc_test

import (
	"context"
	"errors"
	"testing"

	"regalloc"
	"regalloc/internal/alloc"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/portfolio"
	"regalloc/internal/vm"
)

// The execution-equivalence oracle: a fuzzgen program is compiled
// once, executed on the reference IR interpreter (pre-allocation
// semantics), then register-allocated, lowered, and executed on the
// machine simulator; the two final array images must digest to the
// same value, and every per-unit assignment must survive
// alloc.VerifyAssignment (the program-level oracle that catches
// graph-construction bugs color.Verify cannot see).

const fuzzIABase, fuzzRABase = int64(0), int64(100)

// fuzzSeedArrays writes the deterministic initial array images both
// executions start from.
func fuzzSeedArrays(storeInt func(int64, int64), storeFloat func(int64, float64)) {
	for i := int64(0); i < fuzzgen.ArraySize; i++ {
		storeInt(fuzzIABase+i, (i*7+3)%23-11)
		storeFloat(fuzzRABase+i, float64(i)*0.375-4.0)
	}
}

// fuzzDigest folds the final array images into one value. Floats are
// quantized so the comparison tolerates nothing beyond formatting —
// the VM computes in the same float64 arithmetic as the interpreter.
func fuzzDigest(loadInt func(int64) int64, loadFloat func(int64) float64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) {
		h = h*1099511628211 ^ uint64(v)
	}
	for i := int64(0); i < fuzzgen.ArraySize; i++ {
		mix(loadInt(fuzzIABase + i))
		mix(int64(loadFloat(fuzzRABase+i) * 4096))
	}
	return h
}

// FuzzAllocateExecutes drives generated programs end to end through
// Allocate+Assemble and demands execution equivalence between the
// input IR (irinterp) and the allocated machine code (vm), across
// both paper heuristics and a register budget derived from the fuzz
// input. Any divergence — wrong answer, improper assignment, or an
// unexpected compile/run failure on a generator-guaranteed-valid
// program — is a crash.
func FuzzAllocateExecutes(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(7), uint64(1))
	f.Add(uint64(42), uint64(2))
	f.Add(uint64(1000003), uint64(5))
	f.Add(uint64(23), uint64(4)) // odd seed+kraw: machine-model leg, k=12
	f.Add(uint64(31), uint64(6)) // odd seed+kraw: machine-model leg, k=8
	f.Fuzz(func(t *testing.T, seed, kraw uint64) {
		// Register budgets below 8 are not a supported target shape
		// (spill lowering needs scratch headroom), so map the fuzz
		// input onto {8, 12, 16}.
		k := []int{8, 12, 16}[kraw%3]
		src := fuzzgen.Generate(seed, fuzzgen.Config{})
		prog, err := regalloc.Compile(src)
		if err != nil {
			t.Fatalf("generator produced an uncompilable program (seed %d):\n%s\n%v", seed, src, err)
		}

		it := irinterp.New(prog.IR, 1<<22)
		fuzzSeedArrays(it.StoreInt, it.StoreFloat)
		if _, err := it.Call("FZ", irinterp.Int(fuzzIABase), irinterp.Int(fuzzRABase), irinterp.Int(5)); err != nil {
			t.Fatalf("seed %d: reference interpreter failed: %v\n%s", seed, err, src)
		}
		want := fuzzDigest(it.LoadInt, it.LoadFloat)

		for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs, regalloc.SSA, regalloc.IRC} {
			opt := regalloc.DefaultOptions()
			opt.Heuristic = h
			opt.KInt = k
			m := regalloc.RTPC().WithGPR(k)
			code, results, err := prog.Assemble(m, opt)
			if h == regalloc.SSA && errors.Is(err, regalloc.ErrIrreducible) {
				// A generated call reads more distinct same-class
				// values than the budget holds; no allocator fits
				// this unit, so the SSA leg has nothing to check.
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s k=%d: assemble: %v\n%s", seed, h, k, err, src)
			}
			for name, res := range results {
				if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
					t.Fatalf("seed %d %s k=%d %s: assignment oracle: %v\n%s", seed, h, k, name, err, src)
				}
			}
			machine := regalloc.NewVM(code, prog.MemWords())
			fuzzSeedArrays(machine.StoreInt, machine.StoreFloat)
			if _, err := machine.Call("FZ", vm.Int(fuzzIABase), vm.Int(fuzzRABase), vm.Int(5)); err != nil {
				t.Fatalf("seed %d %s k=%d: vm: %v\n%s", seed, h, k, err, src)
			}
			if got := fuzzDigest(machine.LoadInt, machine.LoadFloat); got != want {
				t.Fatalf("seed %d %s k=%d: allocated code diverged from the input IR\n%s", seed, h, k, src)
			}
		}

		// Machine-model leg (half the corpus, keyed off the fuzz
		// input): allocate under the register-file constraints —
		// FZ's parameters bind to precolored argument registers,
		// values crossing generated flow prefer callee-saved colors —
		// and demand both the stronger machine oracle and the same
		// execution digest. Runs IRC (which additionally coalesces the
		// convention bindings) and Briggs (the plain Figure 4 cycle
		// under precolored pressure).
		if (seed+kraw)%2 == 1 {
			m := regalloc.RTPC().WithGPR(k)
			model := regalloc.MachineFor(m)
			for _, h := range []regalloc.Heuristic{regalloc.Briggs, regalloc.IRC} {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = h
				opt.KInt = k
				opt.Machine = model
				code, results, err := prog.Assemble(m, opt)
				if err != nil {
					t.Fatalf("seed %d %s machine k=%d: assemble: %v\n%s", seed, h, k, err, src)
				}
				for name, res := range results {
					if err := alloc.VerifyAssignmentMachine(res.Func, res.Colors, model); err != nil {
						t.Fatalf("seed %d %s machine k=%d %s: machine oracle: %v\n%s", seed, h, k, name, err, src)
					}
				}
				machine := regalloc.NewVM(code, prog.MemWords())
				fuzzSeedArrays(machine.StoreInt, machine.StoreFloat)
				if _, err := machine.Call("FZ", vm.Int(fuzzIABase), vm.Int(fuzzRABase), vm.Int(5)); err != nil {
					t.Fatalf("seed %d %s machine k=%d: vm: %v\n%s", seed, h, k, err, src)
				}
				if got := fuzzDigest(machine.LoadInt, machine.LoadFloat); got != want {
					t.Fatalf("seed %d %s machine k=%d: allocated code diverged from the input IR\n%s", seed, h, k, src)
				}
			}
		}

		// Portfolio leg (half the corpus, keyed off the fuzz input):
		// race the full default candidate set per unit and demand the
		// winning code pass the same execution-digest oracle — the
		// cheapest verified result must still be a *correct* result.
		if (seed^kraw)%2 == 0 {
			opt := regalloc.DefaultOptions()
			opt.KInt = k
			m := regalloc.RTPC().WithGPR(k)
			cands := regalloc.DefaultPortfolio(opt, 1)
			code, results, err := prog.AssemblePortfolio(context.Background(), m, cands, regalloc.PortfolioConfig{})
			if err != nil {
				t.Fatalf("seed %d portfolio k=%d: assemble: %v\n%s", seed, k, err, src)
			}
			for name, pr := range results {
				if err := alloc.VerifyAssignment(pr.Res.Func, pr.Res.Colors); err != nil {
					t.Fatalf("seed %d portfolio k=%d %s: assignment oracle: %v\n%s", seed, k, name, err, src)
				}
				win := pr.Outcomes[pr.Winner]
				for _, o := range pr.Outcomes {
					if o.Status == portfolio.Finished && o.SpillCostMilli < win.SpillCostMilli {
						t.Fatalf("seed %d portfolio k=%d %s: candidate %s (cost %d) beat the selected winner %s (cost %d)",
							seed, k, name, o.Name, o.SpillCostMilli, win.Name, win.SpillCostMilli)
					}
				}
			}
			machine := regalloc.NewVM(code, prog.MemWords())
			fuzzSeedArrays(machine.StoreInt, machine.StoreFloat)
			if _, err := machine.Call("FZ", vm.Int(fuzzIABase), vm.Int(fuzzRABase), vm.Int(5)); err != nil {
				t.Fatalf("seed %d portfolio k=%d: vm: %v\n%s", seed, k, err, src)
			}
			if got := fuzzDigest(machine.LoadInt, machine.LoadFloat); got != want {
				t.Fatalf("seed %d portfolio k=%d: portfolio winner's code diverged from the input IR\n%s", seed, k, src)
			}
		}
	})
}
