package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"regalloc"
	"regalloc/internal/obs"
	"regalloc/internal/ssa"
	"regalloc/internal/workloads"
)

// SSARow is one routine under one register-file size: the SSA
// allocator's construction and spill figures next to the Chaitin and
// Briggs results on the same unit.
type SSARow struct {
	Program string
	Routine string
	KInt    int
	KFloat  int

	// SSA construction shape.
	Phis       int
	CopyProps  int
	SplitEdges int

	// Pressure after pre-spilling (the exact color count used).
	MaxLiveInt   int
	MaxLiveFloat int

	Rounds      int // pre-spill rounds
	Spilled     int
	CostMilli   int64
	Copies      int // phi-lowering moves
	CycleBreaks int
	SlotBounces int

	ChaitinSpilled   int
	ChaitinCostMilli int64
	BriggsSpilled    int
	BriggsCostMilli  int64

	// Irreducible marks units whose operand pressure no spilling can
	// fit (a call reading more distinct values of one class than K);
	// the Figure 4 allocators fail these units the same way.
	Irreducible bool
}

// SSAStudyResult is the SSA-form chordal allocator study.
type SSAStudyResult struct {
	Rows []SSARow
}

// SSAStudy runs the SSA-form chordal allocator over every routine of
// the Figure 5 corpus at the paper's machine size and under halved
// register files, reporting construction shape (phis, propagated
// copies, split edges), the exact post-spill MAXLIVE it colors with,
// and its spill totals next to Chaitin's and Briggs's on the same
// units. Runs feed the package observer.
func SSAStudy() (*SSAStudyResult, error) {
	out := &SSAStudyResult{}
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("ssa study: compile %s: %w", w.Program, err)
		}
		for _, routine := range w.Routines {
			for _, kk := range [][2]int{{16, 8}, {8, 4}} {
				f := prog.Func(routine)
				if f == nil {
					return nil, fmt.Errorf("ssa study: %s: no routine %s", w.Program, routine)
				}
				row := SSARow{Program: w.Program, Routine: routine, KInt: kk[0], KFloat: kk[1]}
				opt := regalloc.DefaultOptions()
				opt.KInt, opt.KFloat = kk[0], kk[1]
				tr := obs.New(observer, routine)
				sres, err := ssa.Allocate(context.Background(), f.Clone(), opt.K(), opt.CostParams, tr)
				if errors.Is(err, ssa.ErrIrreducible) {
					row.Irreducible = true
					out.Rows = append(out.Rows, row)
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("ssa study: %s/%s at (%d,%d): %w", w.Program, routine, kk[0], kk[1], err)
				}
				st := &sres.Stats
				row.Phis = st.Phis
				row.CopyProps = st.CopyProps
				row.SplitEdges = st.SplitEdges
				row.MaxLiveInt = st.MaxLiveInt
				row.MaxLiveFloat = st.MaxLiveFloat
				row.Rounds = len(st.Rounds)
				row.Spilled = st.TotalSpilled()
				row.CostMilli = int64(math.Round(st.TotalSpillCost() * 1000))
				row.Copies = st.Copies
				row.CycleBreaks = st.CycleBreaks
				row.SlotBounces = st.SlotBounces
				for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
					o := opt
					o.Heuristic = h
					o.Observer = observer
					res, err := prog.Allocate(routine, o)
					if err != nil {
						// The Figure 4 cycle hits the same operand-
						// pressure wall ("a spill temporary must itself
						// spill"); report the SSA side alone.
						continue
					}
					if h == regalloc.Chaitin {
						row.ChaitinSpilled = res.TotalSpilled()
						row.ChaitinCostMilli = int64(math.Round(res.TotalSpillCost() * 1000))
					} else {
						row.BriggsSpilled = res.TotalSpilled()
						row.BriggsCostMilli = int64(math.Round(res.TotalSpillCost() * 1000))
					}
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// String renders the study table.
func (r *SSAStudyResult) String() string {
	var b strings.Builder
	b.WriteString("SSA-form chordal allocation over the Figure 5 corpus\n")
	fmt.Fprintf(&b, "%-8s %-8s %7s | %4s %5s %5s | %7s %6s | %6s %9s | %9s %9s\n",
		"program", "routine", "k", "phis", "cprop", "split", "maxlive", "rounds", "spills", "cost", "chaitin", "briggs")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, row := range r.Rows {
		k := fmt.Sprintf("(%d,%d)", row.KInt, row.KFloat)
		if row.Irreducible {
			fmt.Fprintf(&b, "%-8s %-8s %7s | operand pressure irreducible at this K (Figure 4 allocators fail the same unit)\n",
				row.Program, row.Routine, k)
			continue
		}
		ml := fmt.Sprintf("(%d,%d)", row.MaxLiveInt, row.MaxLiveFloat)
		fmt.Fprintf(&b, "%-8s %-8s %7s | %4d %5d %5d | %7s %6d | %6d %9.3f | %9.3f %9.3f\n",
			row.Program, row.Routine, k, row.Phis, row.CopyProps, row.SplitEdges,
			ml, row.Rounds, row.Spilled, float64(row.CostMilli)/1000,
			float64(row.ChaitinCostMilli)/1000, float64(row.BriggsCostMilli)/1000)
	}
	b.WriteString("cost columns are spill-cost units; maxlive is the exact per-class color count the greedy colorer used\n")
	return b.String()
}
