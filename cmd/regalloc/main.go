// Command regalloc colors a standalone interference graph, so the
// heuristics can be compared outside the compiler (e.g. on graphs
// from other tools or on generated stress graphs).
//
// Usage:
//
//	regalloc -k 4 graph.ig           color a graph file
//	regalloc -k 8 -random 200,0.3,7  color G(200, 0.3) with seed 7
//	regalloc -k 16 -svdlike          color the paper's SVD pressure pattern
//
// Graph file format (text): one directive per line.
//
//	n <nodes>
//	e <a> <b>        interference edge (0-based node numbers)
//	c <a> <cost>     spill cost (default 1)
//	# comment
//
// For each heuristic the tool prints nodes spilled and, with -v, the
// full assignment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

func main() {
	k := flag.Int("k", 8, "number of colors (registers)")
	random := flag.String("random", "", "generate G(n,p): \"n,p,seed\"")
	svdlike := flag.Bool("svdlike", false, "generate the paper's SVD pressure pattern")
	verbose := flag.Bool("v", false, "print the full color assignment")
	flag.Parse()

	var g *ig.Graph
	var costs []float64
	var err error
	switch {
	case *random != "":
		g, costs, err = parseRandom(*random)
		fail(err)
	case *svdlike:
		g, costs = graphgen.SVDLike(10, 4, 3, 10, 8, 42)
	case flag.NArg() == 1:
		g, costs, err = readGraph(flag.Arg(0))
		fail(err)
	default:
		fmt.Fprintln(os.Stderr, "usage: regalloc [-k N] (graph.ig | -random n,p,seed | -svdlike)")
		os.Exit(2)
	}

	kf := func(ir.Class) int { return *k }
	fmt.Printf("graph: %d nodes, %d edges, k = %d\n", g.NumNodes(), g.NumEdges(), *k)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		sr := color.Simplify(g, costs, kf, h, color.CostOverDegree)
		var spilled []int32
		var colors []int16
		if h == color.Chaitin && len(sr.SpillMarked) > 0 {
			spilled = sr.SpillMarked
		} else {
			colors, spilled = color.Select(g, sr.Stack, kf, h != color.Chaitin)
		}
		cost := 0.0
		for _, n := range spilled {
			cost += costs[n]
		}
		fmt.Printf("%-12s spilled %3d node(s), cost %10.0f, scan work %d\n",
			h.String()+":", len(spilled), cost, sr.ScanSteps)
		if *verbose && colors != nil {
			fmt.Printf("  colors: %v\n", colors)
		}
	}
}

func parseRandom(spec string) (*ig.Graph, []float64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return nil, nil, fmt.Errorf("bad -random spec %q (want n,p,seed)", spec)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, nil, err
	}
	p, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, nil, err
	}
	seed, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return nil, nil, err
	}
	g, costs := graphgen.Random(n, p, seed)
	return g, costs, nil
}

func readGraph(path string) (*ig.Graph, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, costs, err := graphgen.ReadGraph(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, costs, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "regalloc:", err)
		os.Exit(1)
	}
}
