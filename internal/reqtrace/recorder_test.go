package reqtrace

import (
	"fmt"
	"sync"
	"testing"
)

func rec(id string, dur int64, isErr bool) RequestRecord {
	status := 200
	if isErr {
		status = 500
	}
	return RequestRecord{TraceID: id, DurNS: dur, Status: status, Error: isErr}
}

// TestRecorderKeepsSlowest locks the tail-sampling contract: with the
// success pool full, only a strictly slower request displaces the
// current fastest resident.
func TestRecorderKeepsSlowest(t *testing.T) {
	r := NewRecorder(3, 4)
	for i := 1; i <= 10; i++ {
		r.Add(rec(fmt.Sprintf("t%d", i), int64(i*1000), false))
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	for i, want := range []string{"t10", "t9", "t8"} {
		if snap[i].TraceID != want {
			t.Errorf("snap[%d] = %s, want %s (slowest first)", i, snap[i].TraceID, want)
		}
	}
	// A fast request cannot displace a slower resident.
	r.Add(rec("fast", 1, false))
	if _, ok := r.Find("fast"); ok {
		t.Error("fast success displaced a slower resident")
	}
}

// TestRecorderErrorsOutliveFastSuccesses is the eviction-priority
// satellite: errors have their own pool, so no flood of quick
// successes can push an errored request out.
func TestRecorderErrorsOutliveFastSuccesses(t *testing.T) {
	r := NewRecorder(2, 4)
	r.Add(rec("err1", 5, true))
	r.Add(rec("err2", 5, true))
	for i := 0; i < 1000; i++ {
		r.Add(rec(fmt.Sprintf("ok%d", i), int64(1000000+i), false))
	}
	for _, id := range []string{"err1", "err2"} {
		if _, ok := r.Find(id); !ok {
			t.Errorf("error %s evicted by successes", id)
		}
	}
	// Errors beyond the ring evict oldest-error-first, never successes.
	for i := 3; i <= 7; i++ {
		r.Add(rec(fmt.Sprintf("err%d", i), 5, true))
	}
	if _, ok := r.Find("err1"); ok {
		t.Error("oldest error not evicted by newer errors")
	}
	for _, id := range []string{"err4", "err5", "err6", "err7"} {
		if _, ok := r.Find(id); !ok {
			t.Errorf("recent error %s missing", id)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 6 {
		t.Fatalf("retained %d, want 6 (4 errors + 2 successes)", len(snap))
	}
	// Errors lead, newest first.
	for i, want := range []string{"err7", "err6", "err5", "err4"} {
		if snap[i].TraceID != want {
			t.Errorf("snap[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
}

// TestRecorderConcurrent hammers Add and Snapshot from many
// goroutines; run under -race in CI, the pass criterion is simply no
// race and a full pool afterwards.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(rec(fmt.Sprintf("g%d-%d", g, i), int64(g*1000+i), i%5 == 0))
				if i%10 == 0 {
					r.Snapshot()
					r.Find(fmt.Sprintf("g%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 32 {
		t.Fatalf("retained %d, want 32", r.Len())
	}
}
