// Command bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	bench -figure 5          # Figure 5: static spills + dynamic gains
//	bench -figure 6          # Figure 6: the quicksort register study
//	bench -figure 7          # Figure 7: allocator phase CPU times
//	bench -figure ablations  # design-choice studies (DESIGN.md §7)
//	bench -figure integer    # the §3.2 integer-kernel extension
//	bench -figure passes     # §3.3 convergence of the Figure 4 cycle
//	bench -figure all        # everything
//	bench -figure 6 -n 200000
package main

import (
	"flag"
	"fmt"
	"os"

	"regalloc/internal/experiments"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 5, 6, 7, ablations, integer, passes, or all")
	n := flag.Int64("n", 200000, "quicksort element count for figure 6")
	flag.Parse()

	run5 := *figure == "5" || *figure == "all"
	run6 := *figure == "6" || *figure == "all"
	run7 := *figure == "7" || *figure == "all"
	runAb := *figure == "ablations" || *figure == "all"
	runInt := *figure == "integer" || *figure == "all"
	runPass := *figure == "passes" || *figure == "all"
	if !run5 && !run6 && !run7 && !runAb && !runInt && !runPass {
		fmt.Fprintf(os.Stderr, "bench: unknown figure %q (want 5, 6, 7, or all)\n", *figure)
		os.Exit(2)
	}

	if run5 {
		fmt.Println("=== Figure 5: register allocation improvements ===")
		res, err := experiments.Figure5()
		fail(err)
		fmt.Println(res)
	}
	if run6 {
		fmt.Println("=== Figure 6: quicksort study ===")
		res, err := experiments.Figure6(*n)
		fail(err)
		fmt.Println(res)
	}
	if run7 {
		fmt.Println("=== Figure 7: CPU time for allocator phases ===")
		res, err := experiments.Figure7()
		fail(err)
		fmt.Println(res)
	}
	if runAb {
		fmt.Println("=== Ablations (beyond the paper; see DESIGN.md §7) ===")
		res, err := experiments.Ablations()
		fail(err)
		fmt.Println(res)
	}
	if runInt {
		fmt.Println("=== Integer kernels (the further study §3.2 asks for) ===")
		res, err := experiments.IntegerStudy()
		fail(err)
		fmt.Println(res)
	}
	if runPass {
		fmt.Println("=== Convergence (§3.3: passes around the Figure 4 cycle) ===")
		res, err := experiments.PassStudy()
		fail(err)
		fmt.Println(res)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
