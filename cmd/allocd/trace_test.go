package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"regalloc/internal/reqtrace"
)

// knownTraceparent is the W3C spec's example header; tests send it so
// every assertion below can grep for its trace ID.
const (
	knownTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	knownTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// postTraced POSTs body with a traceparent header and returns the
// status, response body, and response traceparent.
func postTraced(t *testing.T, ts *httptest.Server, path, body, traceparent string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("traceparent")
}

// debugRequests fetches and decodes /debug/requests.
func debugRequests(t *testing.T, ts *httptest.Server) []reqtrace.RequestRecord {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: status %d", resp.StatusCode)
	}
	var out struct {
		Requests []reqtrace.RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Requests
}

func findRecord(recs []reqtrace.RequestRecord, traceID string) *reqtrace.RequestRecord {
	for i := range recs {
		if recs[i].TraceID == traceID {
			return &recs[i]
		}
	}
	return nil
}

// spansNamed returns the record's spans whose name has the prefix.
func spansNamed(rec *reqtrace.RequestRecord, prefix string) []reqtrace.Span {
	var out []reqtrace.Span
	for _, sp := range rec.Spans {
		if strings.HasPrefix(sp.Name, prefix) {
			out = append(out, sp)
		}
	}
	return out
}

// TestTraceCausalChain is the tentpole's acceptance test: one request
// with a known traceparent must be traceable end to end — the
// response continues the trace, /debug/requests holds its span tree
// (cache outcome and allocator phases whose durations reconcile
// exactly with the response's phase_ns), the /metrics latency
// histogram carries the trace ID as an exemplar, and the access log
// line names the same trace.
func TestTraceCausalChain(t *testing.T) {
	s, ts := newTestServer(t)
	logPath := filepath.Join(t.TempDir(), "access.log")
	al, err := newAccessLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s.access = al

	code, data, tp := postTraced(t, ts, "/v1/alloc?heuristic=briggs&kint=4&kfloat=4&unit=SAXPYISH", testSource, knownTraceparent)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}

	// The response continues the client's trace under a fresh span.
	sc, err := reqtrace.Parse(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if sc.TraceID.String() != knownTraceID {
		t.Fatalf("response trace id = %s, want %s", sc.TraceID, knownTraceID)
	}
	if sc.SpanID.String() == "00f067aa0ba902b7" {
		t.Fatal("server reused the client's span id instead of minting a child")
	}

	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Units) != 1 {
		t.Fatalf("units = %d, want 1", len(resp.Units))
	}
	var wantPhaseNS int64
	for _, ns := range resp.Units[0].PhaseNS {
		wantPhaseNS += ns
	}

	// The flight recorder holds the full span tree for that trace ID.
	rec := findRecord(debugRequests(t, ts), knownTraceID)
	if rec == nil {
		t.Fatal("/debug/requests has no record for the request's trace id")
	}
	if rec.Status != http.StatusOK || rec.Error {
		t.Fatalf("record = %+v", rec)
	}
	if got := rec.Annotation("unit"); got != "SAXPYISH" {
		t.Errorf("unit annotation = %q", got)
	}
	if got := rec.Annotation("heuristic"); got != "briggs" {
		t.Errorf("heuristic annotation = %q", got)
	}
	if got := rec.Annotation("cache"); got != "miss" {
		t.Errorf("cache annotation = %q, want miss (first request)", got)
	}
	lookups := spansNamed(rec, "cache:lookup")
	if len(lookups) != 1 {
		t.Fatalf("cache:lookup spans = %d, want 1", len(lookups))
	}
	allocs := spansNamed(rec, "alloc:SAXPYISH")
	if len(allocs) != 1 {
		t.Fatalf("alloc:SAXPYISH spans = %d, want 1", len(allocs))
	}

	// Per-phase spans reconcile exactly with the response's phase_ns:
	// both are derived from the same integer PassStats durations.
	var gotPhaseNS int64
	for _, sp := range spansNamed(rec, "phase:") {
		if sp.Parent != allocs[0].ID {
			t.Errorf("phase span %s not parented to the alloc span", sp.Name)
		}
		gotPhaseNS += sp.DurNS
	}
	if gotPhaseNS != wantPhaseNS {
		t.Fatalf("summed phase spans = %dns, response phase_ns = %dns (must reconcile exactly)", gotPhaseNS, wantPhaseNS)
	}
	if allocs[0].DurNS != wantPhaseNS {
		t.Fatalf("alloc span = %dns, want %dns (sum of its phases)", allocs[0].DurNS, wantPhaseNS)
	}

	// The latency histogram carries the trace ID as an exemplar.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	wantExemplar := `# {trace_id="` + knownTraceID + `"}`
	var exemplarOnBucket bool
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "allocd_request_duration_seconds_bucket") && strings.Contains(line, wantExemplar) {
			exemplarOnBucket = true
			break
		}
	}
	if !exemplarOnBucket {
		t.Fatal("/metrics latency histogram has no exemplar with the request's trace id")
	}

	// The access log line joins the same trace to the request outcome.
	if err := s.access.Close(); err != nil {
		t.Fatal(err)
	}
	s.access = nil
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var entry accessEntry
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(logData)), "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, logData)
	}
	if entry.TraceID != knownTraceID {
		t.Errorf("access log trace_id = %q, want %q", entry.TraceID, knownTraceID)
	}
	if entry.Unit != "SAXPYISH" || entry.Heuristic != "briggs" || entry.Cache != "miss" {
		t.Errorf("access log entry = %+v", entry)
	}
	if entry.Status != http.StatusOK || entry.DurNS <= 0 {
		t.Errorf("access log outcome = %+v", entry)
	}
}

// TestTracePortfolioCandidates asserts the race is visible in the
// trace: one candidate:* span per started strategy, exactly one
// annotated winner, and the winner's allocator phases hanging off its
// candidate span.
func TestTracePortfolioCandidates(t *testing.T) {
	_, ts := newTestServer(t)
	code, data, _ := postTraced(t, ts, "/v1/alloc?portfolio=chaitin,briggs&kint=4&kfloat=4", testSource, knownTraceparent)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	rec := findRecord(debugRequests(t, ts), knownTraceID)
	if rec == nil {
		t.Fatal("no record for the portfolio request's trace id")
	}
	cands := spansNamed(rec, "candidate:")
	if len(cands) != 2 {
		t.Fatalf("candidate spans = %d, want 2", len(cands))
	}
	attr := func(sp reqtrace.Span, key string) string {
		for _, a := range sp.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	winners := 0
	byID := map[uint32]reqtrace.Span{}
	for _, sp := range cands {
		byID[sp.ID] = sp
		if attr(sp, "winner") == "true" {
			winners++
		}
		if attr(sp, "status") != "finished" {
			t.Errorf("candidate %s status = %q", sp.Name, attr(sp, "status"))
		}
	}
	if winners != 1 {
		t.Fatalf("winner-annotated candidates = %d, want exactly 1", winners)
	}
	// Each finished candidate ran an allocation under its own span.
	allocSpans := spansNamed(rec, "alloc:SAXPYISH")
	if len(allocSpans) != 2 {
		t.Fatalf("alloc spans = %d, want 2 (one per candidate)", len(allocSpans))
	}
	for _, sp := range allocSpans {
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("alloc span parented to %d, not a candidate span", sp.Parent)
		}
	}
	if rec.Annotation("heuristic") != "portfolio" || rec.Annotation("cache") != "bypass" {
		t.Errorf("annotations = %v", rec.Annots)
	}
}

// TestTraceMintedWithoutHeader: a client that sends no traceparent
// still gets a valid one back, and the request is recorded under it.
func TestTraceMintedWithoutHeader(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, tp := postTraced(t, ts, "/v1/alloc?heuristic=briggs&kint=8", testSource, "")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sc, err := reqtrace.Parse(tp)
	if err != nil {
		t.Fatalf("minted traceparent %q: %v", tp, err)
	}
	if findRecord(debugRequests(t, ts), sc.TraceID.String()) == nil {
		t.Fatal("minted trace not in /debug/requests")
	}
}

// TestTraceErrorRetained: an errored request (bad source) must be
// retained by the flight recorder regardless of how fast it failed —
// the error pool is disjoint from the slow-success pool.
func TestTraceErrorRetained(t *testing.T) {
	_, ts := newTestServer(t)
	// Warm the success pool so retention of the error is not a
	// fits-anyway artifact.
	for i := 0; i < 3; i++ {
		postTraced(t, ts, "/v1/alloc?heuristic=briggs&kint=8", testSource, "")
	}
	code, _, tp := postTraced(t, ts, "/v1/alloc", "      GARBAGE THAT DOES NOT COMPILE", knownTraceparent)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	sc, err := reqtrace.Parse(tp)
	if err != nil || sc.TraceID.String() != knownTraceID {
		t.Fatalf("error response traceparent = %q (%v)", tp, err)
	}
	rec := findRecord(debugRequests(t, ts), knownTraceID)
	if rec == nil {
		t.Fatal("errored request not retained")
	}
	if !rec.Error || rec.Status != http.StatusBadRequest {
		t.Fatalf("record = %+v", rec)
	}
}

// TestAccessLogDrain is the drain-durability satellite: a request
// in flight when shutdown begins still gets its access-log line, and
// Close flushes it to disk before the process would exit.
func TestAccessLogDrain(t *testing.T) {
	s, ts := newTestServer(t)
	logPath := filepath.Join(t.TempDir(), "access.log")
	al, err := newAccessLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s.access = al

	done := make(chan string, 1)
	go func() {
		_, _, tp := postTraced(t, ts, "/v1/alloc?heuristic=briggs&kint=4", testSource, "")
		sc, _ := reqtrace.Parse(tp)
		done <- sc.TraceID.String()
	}()
	// Begin the drain while the request may still be in flight; the
	// handler finishes (Shutdown semantics: in-flight requests are
	// served) and writes its line before Close flushes.
	s.beginShutdown()
	traceID := <-done

	if err := s.access.Close(); err != nil {
		t.Fatal(err)
	}
	s.access = nil
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logData), traceID) {
		t.Fatalf("access log after drain missing the in-flight request's line (trace %s):\n%s", traceID, logData)
	}
}

// TestTraceNoGoroutineLeak: the tracing layer (recorder, traces,
// access log) spawns no goroutines of its own; after the server
// closes, the goroutine count returns to its baseline.
func TestTraceNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := newServer(4)
	ts := httptest.NewServer(s.routes())
	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/alloc?heuristic=briggs&kint=4", strings.NewReader(testSource))
		req.Header.Set("traceparent", knownTraceparent)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d at baseline, %d after shutdown", baseline, runtime.NumGoroutine())
}
