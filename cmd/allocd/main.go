// Command allocd serves the register allocator over HTTP: a small
// production-shaped service wrapping the library, with the full
// export surface a fleet expects.
//
//	allocd -addr :8080
//
// Endpoints (see docs/API.md for the full contract):
//
//	POST /v1/alloc       allocate a mini-FORTRAN source or color a
//	                     .ig interference graph. Two request forms,
//	                     one parser: a JSON object ({"source": ...,
//	                     "heuristic": ..., "kint": ...}) or the legacy
//	                     form — the raw payload as the body with
//	                     same-named query parameters. The payload kind
//	                     is sniffed, or forced with input=src|ig.
//	                     Knobs mirror the library's Options:
//	                     heuristic, kint, kfloat, metric, coalesce,
//	                     conservative, remat, split, workers,
//	                     maxpasses; plus unit=NAME to pick one
//	                     routine, colors to include the assignment,
//	                     and for heuristic=pcolor the seed and workers
//	                     of the parallel engine. portfolio (a flag or
//	                     a comma-separated candidate list) races the
//	                     strategy portfolio per routine; pmode,
//	                     pbudget, and pseeds tune the race.
//	                     Identical requests are served from a
//	                     content-addressed result cache (singleflight:
//	                     concurrent identical requests run one
//	                     allocation); the X-Cache reply header says
//	                     miss, hit, or shared, and nocache opts a
//	                     request out. Non-2xx replies carry
//	                     {"error": {"code", "message", "detail"}}.
//	POST /v1/alloc/batch many allocation requests in one call,
//	                     admitted against -max-inflight once: a JSON
//	                     array of request objects, or an NDJSON
//	                     stream (replied to in kind, streaming). Each
//	                     item succeeds or fails independently.
//	POST /alloc          deprecated alias for /v1/alloc (same
//	                     handler; answers with a Deprecation header).
//	GET  /metrics        Prometheus text exposition: the run
//	                     registry (spills, palettes, per-phase
//	                     latency histograms), live trace-counter
//	                     totals, result-cache counters
//	                     (regalloc_cache_{hits,misses,evictions}_total
//	                     and hit/fill latency histograms), and
//	                     service gauges.
//	GET  /healthz        liveness (always ok while the process runs).
//	GET  /readyz         readiness (503 once draining begins).
//	GET  /debug/requests the flight recorder: full span trees of the
//	                     slowest and every errored recent request,
//	                     looked up by the trace_id a response's
//	                     traceparent header, an access-log line, or a
//	                     /metrics exemplar carries.
//	GET  /debug/pprof/   the standard Go profiler endpoints.
//
// Tracing: allocation routes accept a W3C traceparent header and
// continue that trace (minting one otherwise); the response's
// traceparent names the server's span. With -access-log PATH the
// service writes one JSON line per allocation request (trace_id,
// unit, heuristic, cache outcome, status, duration, spill cost); the
// file is flushed and fsynced after the drain completes, so the last
// in-flight request's line survives the exit. See
// docs/OBSERVABILITY.md for the full story.
//
// Admission: -max-inflight bounds concurrently served allocations;
// excess requests queue. A queued request that hits -alloc-timeout
// while the service is healthy is answered 429 with Retry-After —
// the same request succeeds on a quieter instant — while drain and
// client cancellation answer 503.
//
// On SIGTERM or SIGINT the service stops advertising readiness,
// drains in-flight requests for -drain at most, then exits 0; a
// second signal aborts immediately.
//
// Example:
//
//	curl -sS -X POST --data-binary @examples/saxpyish.f \
//	  'localhost:8080/v1/alloc?heuristic=briggs&kint=8'
//	curl -sS localhost:8080/metrics | grep regalloc_cache_hits_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"regalloc/internal/rescache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrently served allocation requests (others queue)")
	allocTimeout := flag.Duration("alloc-timeout", 0, "per-request allocation deadline, queueing included (0 disables); expiry answers 429 while healthy, 503 draining")
	cacheEntries := flag.Int("cache-entries", defaultCacheEntries, "result-cache entry bound (0 unbounded, negative disables the cache)")
	cacheBytes := flag.Int64("cache-bytes", defaultCacheBytes, "result-cache byte bound (0 unbounded, negative disables the cache)")
	accessLogPath := flag.String("access-log", "", "write one JSON line per allocation request to this file (empty disables)")
	flag.Parse()

	s := newServer(*maxInflight)
	s.allocTimeout = *allocTimeout
	if *cacheEntries < 0 || *cacheBytes < 0 {
		s.cache = nil
	} else {
		s.cache = rescache.New(*cacheEntries, *cacheBytes)
	}
	if *accessLogPath != "" {
		al, err := newAccessLog(*accessLogPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allocd: access log:", err)
			os.Exit(1)
		}
		s.access = al
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "allocd: listening on %s (max-inflight %d)\n", *addr, *maxInflight)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or a fatal
		// accept error; either way the service is dead.
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "allocd: %s: draining for up to %s\n", sig, *drain)
		s.beginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "allocd: second signal, aborting")
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.access.Close()
			fmt.Fprintln(os.Stderr, "allocd: shutdown:", err)
			os.Exit(1)
		}
		// The drain is complete: every in-flight request has written
		// its access-log line, so flush and fsync before exiting.
		if err := s.access.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "allocd: access log close:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "allocd: drained, exiting")
	}
}
