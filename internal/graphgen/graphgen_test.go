package graphgen_test

import (
	"bytes"
	"strings"
	"testing"

	"regalloc/internal/graphgen"
)

func TestRandomDeterministic(t *testing.T) {
	a, costsA := graphgen.Random(50, 0.2, 7)
	b, costsB := graphgen.Random(50, 0.2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range costsA {
		if costsA[i] != costsB[i] {
			t.Fatal("same seed produced different costs")
		}
	}
	c, _ := graphgen.Random(50, 0.2, 8)
	if a.NumEdges() == c.NumEdges() {
		t.Log("different seeds happened to coincide in edge count (fine), checking adjacency")
		same := true
		for n := int32(0); n < 50 && same; n++ {
			if len(a.Neighbors(n)) != len(c.Neighbors(n)) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRandomDensity(t *testing.T) {
	g, _ := graphgen.Random(100, 0.5, 3)
	maxEdges := 100 * 99 / 2
	got := float64(g.NumEdges()) / float64(maxEdges)
	if got < 0.4 || got > 0.6 {
		t.Fatalf("density %g too far from 0.5", got)
	}
}

func TestTwoClassEdgesSameClassOnly(t *testing.T) {
	g, _ := graphgen.TwoClass(60, 0.5, 5)
	for a := int32(0); a < 60; a++ {
		for _, b := range g.Neighbors(a) {
			if g.Class(a) != g.Class(b) {
				t.Fatal("cross-class edge present")
			}
		}
	}
}

func TestCycleShape(t *testing.T) {
	g, costs := graphgen.Cycle(4)
	if g.NumEdges() != 4 {
		t.Fatalf("C4 has %d edges", g.NumEdges())
	}
	for n := int32(0); n < 4; n++ {
		if g.Degree(n) != 2 {
			t.Fatalf("C4 node degree %d", g.Degree(n))
		}
		if costs[n] != costs[0] {
			t.Fatal("paper example needs equal costs")
		}
	}
}

func TestSVDLikeStructure(t *testing.T) {
	nLong, nCopy, nCliques, cs, ov := 10, 4, 3, 10, 8
	g, costs := graphgen.SVDLike(nLong, nCopy, nCliques, cs, ov, 1)
	if g.NumNodes() != nLong+nCopy+nCliques*cs {
		t.Fatal("node count")
	}
	// Long ranges: degree = (nLong-1) + nCopy + all clique members.
	wantLong := nLong - 1 + nCopy + nCliques*cs
	if got := g.Degree(0); got != wantLong {
		t.Fatalf("long-range degree %d, want %d", got, wantLong)
	}
	// Copy nodes are cheap, nests expensive, longs most expensive.
	if costs[nLong] > costs[nLong+nCopy] {
		t.Fatal("copy nodes must be cheaper than nest nodes")
	}
	if costs[0] < costs[nLong+nCopy] {
		t.Fatal("long ranges must be the most expensive")
	}
	// Copy node degree includes the overlap into the first nest.
	wantCopy := nLong + (nCopy - 1) + ov
	if got := g.Degree(int32(nLong)); got != wantCopy {
		t.Fatalf("copy-node degree %d, want %d", got, wantCopy)
	}
}

func TestRNG(t *testing.T) {
	r := graphgen.NewRNG(0) // remapped, must not be all zeros
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.Intn(10)] = true
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %g", f)
		}
	}
	if len(seen) < 5 {
		t.Fatal("Intn not covering its range")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g, costs := graphgen.Random(40, 0.2, 9)
	var buf bytes.Buffer
	if err := graphgen.WriteGraph(&buf, g, costs); err != nil {
		t.Fatal(err)
	}
	g2, costs2, err := graphgen.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", g2, g)
	}
	for a := int32(0); a < 40; a++ {
		for _, b := range g.Neighbors(a) {
			if !g2.Interfere(a, b) {
				t.Fatalf("edge %d-%d lost", a, b)
			}
		}
	}
	for i := range costs {
		if costs[i] != costs2[i] {
			t.Fatalf("cost[%d] changed: %g vs %g", i, costs2[i], costs[i])
		}
	}
}

// TestReadGraphErrors covers every malformed-input path of the .ig
// parser, one named case per rejection rule.
func TestReadGraphErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr string // substring of the error message
	}{
		{"empty input", "", "no 'n' directive"},
		{"truncated header", "n\n", "malformed"},
		{"truncated header with edges", "n\ne 0 1\n", "malformed"},
		{"bad node count", "n two\n", "bad node count"},
		{"negative node count", "n -4\n", "bad node count"},
		{"node count exceeds limit", "n 99999999\n", "exceeds limit"},
		{"duplicate n directive", "n 2\nn 3\n", "duplicate n"},
		{"edge before n", "e 0 1\n", "malformed edge"},
		{"malformed edge arity", "n 2\ne 0\n", "malformed edge"},
		{"bad edge endpoint high", "n 2\ne 0 5\n", "edge out of range"},
		{"bad edge endpoint negative", "n 2\ne -1 0\n", "edge out of range"},
		{"bad edge endpoint text", "n 2\ne a b\n", "edge out of range"},
		{"self edge", "n 2\ne 1 1\n", "self edge"},
		{"duplicate edge", "n 3\ne 0 1\ne 0 1\n", "duplicate edge"},
		{"duplicate edge reversed", "n 3\ne 0 1\ne 1 0\n", "duplicate edge"},
		{"cost before n", "c 0 1\n", "malformed cost"},
		{"malformed cost arity", "n 2\nc 0\n", "malformed cost"},
		{"cost out of range", "n 2\nc 9 1.5\n", "cost out of range"},
		{"cost not a number", "n 2\nc 0 cheap\n", "cost out of range"},
		{"negative cost", "n 2\nc 0 -5\n", "negative cost"},
		{"nan cost", "n 2\nc 0 NaN\n", "negative cost"},
		{"unknown directive", "n 2\nz 1 2\n", "unknown directive"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, _, err := graphgen.ReadGraph(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("no error for %q", c.input)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	// Comments, blank lines, and repeated cost directives are fine.
	ok := "# hello\n\nn 3\ne 0 1\nc 1 9\nc 1 2.5\n"
	g, costs, err := graphgen.ReadGraph(strings.NewReader(ok))
	if err != nil || g.NumEdges() != 1 || costs[1] != 2.5 || costs[0] != 1 {
		t.Fatalf("good input rejected: %v", err)
	}
}
