package workloads

// eulerSource is a 1-D simulation of shock wave propagation (the
// paper's EULER program): conservative Euler equations advanced with
// a two-step Lax–Wendroff scheme plus blended artificial
// dissipation, with setup, spectral-analysis, and boundary routines.
// Routine sizes track Figure 5's profile: SHOCK and DERIV are tiny,
// CODE/CHEB/FINDIF/FFTB mid-sized, INPUT/DIFFR/DISSIP large, and
// INIT a long run of assignments and simply-nested loops. DISSIP
// deliberately has the SVD shape — long-lived coefficient scalars
// defined up front, a small copy loop, then large nests — which is
// why it shows the biggest old-vs-new spill gap in the paper (69%).
const eulerSource = `
      SUBROUTINE SHOCK(U,N)
C     shock-tube initial data for a scalar profile
      REAL U(*)
      INTEGER I,N,NH
      NH = N/2
      DO I = 1,NH
         U(I) = 1.0
      ENDDO
      DO I = NH+1,N
         U(I) = 0.125
      ENDDO
      RETURN
      END

      SUBROUTINE DERIV(U,DU,N,DX)
C     central first differences
      REAL U(*),DU(*),DX,H2
      INTEGER I,N
      H2 = 2.0*DX
      DU(1) = (U(2) - U(1))/DX
      DO I = 2,N-1
         DU(I) = (U(I+1) - U(I-1))/H2
      ENDDO
      DU(N) = (U(N) - U(N-1))/DX
      RETURN
      END

      SUBROUTINE CODE(U,F,C,LD,N,GAMMA,SMAX)
C     conservative fluxes, sound speed, and the maximum wave speed
      REAL U(LD,*),F(LD,*),C(*),GAMMA,SMAX(*)
      REAL RHO,RU,E,VEL,PRES,G1,CS,S1,S2,S3,SM,PFLOOR
      INTEGER I,LD,N
      G1 = GAMMA - 1.0
      PFLOOR = 0.0000000001
      SM = 0.0
      DO I = 1,N
         RHO = U(I,1)
         RU = U(I,2)
         E = U(I,3)
         VEL = RU/RHO
         PRES = G1*(E - 0.5*RU*VEL)
         IF (PRES .LT. PFLOOR) PRES = PFLOOR
         CS = SQRT(GAMMA*PRES/RHO)
         C(I) = CS
         F(I,1) = RU
         F(I,2) = RU*VEL + PRES
         F(I,3) = VEL*(E + PRES)
         S1 = ABS(VEL - CS)
         S2 = ABS(VEL)
         S3 = ABS(VEL + CS)
         SM = MAX(SM,S1,S2,S3)
      ENDDO
      SMAX(1) = SM
      RETURN
      END

      SUBROUTINE CHEB(C,NC,A,B,F)
C     chebyshev expansion coefficients of exp on [a,b]
      REAL C(*),F(*),A,B,BMA,BPA,PI,Y,SUM,FAC,ARG
      INTEGER J,K,NC
      PI = 3.14159265358979
      BMA = 0.5*(B - A)
      BPA = 0.5*(B + A)
      DO K = 1,NC
         Y = COS(PI*(FLOAT(K) - 0.5)/FLOAT(NC))
         F(K) = EXP(Y*BMA + BPA)
      ENDDO
      FAC = 2.0/FLOAT(NC)
      DO J = 1,NC
         SUM = 0.0
         DO K = 1,NC
            ARG = PI*(FLOAT(J) - 1.0)*(FLOAT(K) - 0.5)/FLOAT(NC)
            SUM = SUM + F(K)*COS(ARG)
         ENDDO
         C(J) = FAC*SUM
      ENDDO
      RETURN
      END

      SUBROUTINE FINDIF(U,UH,F,FH,LD,N,DT,DX,THETA)
C     two-step lax-wendroff update with a theta-blended correction
      REAL U(LD,*),UH(LD,*),F(LD,*),FH(LD,*),DT,DX,THETA
      REAL R,HALFR,CORR,BLEND,OLD,NEW
      INTEGER I,K,LD,N
      R = DT/DX
      HALFR = 0.5*R
      BLEND = 1.0 - THETA
C     predictor: provisional values at the half points
      DO K = 1,3
         DO I = 1,N-1
            UH(I,K) = 0.5*(U(I,K) + U(I+1,K)) - &
               HALFR*(F(I+1,K) - F(I,K))
         ENDDO
      ENDDO
C     corrector: difference the half-point fluxes
      DO K = 1,3
         DO I = 2,N-1
            CORR = R*(FH(I,K) - FH(I-1,K))
            OLD = U(I,K)
            NEW = OLD - CORR
            U(I,K) = THETA*NEW + BLEND*(OLD - HALFR*(F(I+1,K) - F(I-1,K)))
         ENDDO
      ENDDO
      RETURN
      END

      SUBROUTINE FFTB(XR,XI,N,M)
C     radix-2 decimation-in-time fft, n = 2**m
      REAL XR(*),XI(*),TR,TI,UR,UI,WR,WI,ANG,PI
      INTEGER N,M,I,J,K,L,LE,LE1,IP
      PI = 3.14159265358979
C     bit-reversal permutation
      J = 1
      DO I = 1,N-1
         IF (I .LT. J) THEN
            TR = XR(J)
            TI = XI(J)
            XR(J) = XR(I)
            XI(J) = XI(I)
            XR(I) = TR
            XI(I) = TI
         ENDIF
         K = N/2
         DO WHILE (K .LT. J)
            J = J - K
            K = K/2
         ENDDO
         J = J + K
      ENDDO
C     butterfly stages
      DO L = 1,M
         LE = 2**L
         LE1 = LE/2
         UR = 1.0
         UI = 0.0
         ANG = PI/FLOAT(LE1)
         WR = COS(ANG)
         WI = -SIN(ANG)
         DO J = 1,LE1
            I = J
            DO WHILE (I .LE. N)
               IP = I + LE1
               TR = XR(IP)*UR - XI(IP)*UI
               TI = XR(IP)*UI + XI(IP)*UR
               XR(IP) = XR(I) - TR
               XI(IP) = XI(I) - TI
               XR(I) = XR(I) + TR
               XI(I) = XI(I) + TI
               I = I + LE
            ENDDO
            TR = UR*WR - UI*WI
            UI = UR*WI + UI*WR
            UR = TR
         ENDDO
      ENDDO
      RETURN
      END

      SUBROUTINE BNDRY(U,LD,N,IBC)
C     boundary conditions: transmissive (ibc=0) or reflective
      REAL U(LD,*)
      INTEGER LD,N,IBC,K
      IF (IBC .EQ. 0) THEN
         DO K = 1,3
            U(1,K) = U(2,K)
            U(N,K) = U(N-1,K)
         ENDDO
      ELSE
         U(1,1) = U(2,1)
         U(1,2) = -U(2,2)
         U(1,3) = U(2,3)
         U(N,1) = U(N-1,1)
         U(N,2) = -U(N-1,2)
         U(N,3) = U(N-1,3)
      ENDIF
      RETURN
      END

      SUBROUTINE INPUT(P,NP,U,LD,N,GAMMA)
C     problem setup: physical parameters and a smoothed shock-tube
C     state in conservative variables
      REAL P(*),U(LD,*),GAMMA
      REAL RHOL,RHOR,PL,PR,UL,UR,G1,XFRAC,SMOOTH,RHO,PRES,VEL,W
      INTEGER I,K,LD,N,NP
      RHOL = 1.0
      RHOR = 0.125
      PL = 1.0
      PR = 0.1
      UL = 0.0
      UR = 0.0
      G1 = GAMMA - 1.0
C     parameter table
      P(1) = GAMMA
      P(2) = RHOL
      P(3) = RHOR
      P(4) = PL
      P(5) = PR
      P(6) = UL
      P(7) = UR
      P(8) = G1
      DO I = 9,NP
         P(I) = P(I-1)*0.5 + FLOAT(I)*0.0625
      ENDDO
C     smoothed initial profile
      DO I = 1,N
         XFRAC = (FLOAT(I) - 0.5)/FLOAT(N)
         SMOOTH = 1.0/(1.0 + EXP(80.0*(XFRAC - 0.5)))
         RHO = RHOR + (RHOL - RHOR)*SMOOTH
         PRES = PR + (PL - PR)*SMOOTH
         VEL = UR + (UL - UR)*SMOOTH
         W = RHO*VEL
         U(I,1) = RHO
         U(I,2) = W
         U(I,3) = PRES/G1 + 0.5*W*VEL
      ENDDO
C     zero any remaining components defensively
      DO K = 1,3
         U(1,K) = U(1,K)
      ENDDO
      RETURN
      END

      SUBROUTINE DIFFR(U,F,DF,DW,LD,N,EPS)
C     limited flux differences plus a characteristic-style blend
      REAL U(LD,*),F(LD,*),DF(LD,*),DW(LD,*),EPS
      REAL DL,DR,AL,AR,SL,SR,SLOPE,T,WL,WR,WC,RHO,RHOL,RHOR
      INTEGER I,K,LD,N
C     minmod-limited flux slopes
      DO K = 1,3
         DF(1,K) = F(2,K) - F(1,K)
         DO I = 2,N-1
            DL = F(I,K) - F(I-1,K)
            DR = F(I+1,K) - F(I,K)
            AL = ABS(DL)
            AR = ABS(DR)
            SL = SIGN(1.0,DL)
            SR = SIGN(1.0,DR)
            SLOPE = 0.5*(SL + SR)*MIN(AL,AR)
            T = DR - DL
            IF (ABS(T) .LT. EPS) THEN
               DF(I,K) = SLOPE
            ELSE
               DF(I,K) = SLOPE + EPS*T
            ENDIF
         ENDDO
         DF(N,K) = F(N,K) - F(N-1,K)
      ENDDO
C     density-weighted blend of the limited differences
      DO K = 1,3
         DW(1,K) = DF(1,K)
         DO I = 2,N-1
            RHOL = U(I-1,1)
            RHO = U(I,1)
            RHOR = U(I+1,1)
            WL = RHOL/(RHOL + RHO)
            WR = RHOR/(RHOR + RHO)
            WC = 1.0 - 0.5*(WL + WR)
            DW(I,K) = WC*DF(I,K) + 0.5*(WL*DF(I-1,K) + WR*DF(I+1,K))
         ENDDO
         DW(N,K) = DF(N,K)
      ENDDO
      RETURN
      END

      SUBROUTINE DISSIP(U,D,W,LD,N,C2,C4,DT,DX)
C     blended second/fourth-difference artificial dissipation.
C     structure matches SVD (Figure 1): long-lived coefficients set
C     up first, then a small copy loop, then three large nests.
      REAL U(LD,*),D(LD,*),W(LD,*)
      REAL C2,C4,DT,DX,R,E2,E4,A1,A2,A3,B1,B2,B3,S,T,P,Q
      INTEGER I,K,LD,N
C     initialization: coefficients live across every later nest
      R = DT/DX
      E2 = C2*R
      E4 = C4*R
      A1 = 1.0 - E2
      A2 = 0.5*E2
      A3 = 0.25*E2
      B1 = 1.0 - E4
      B2 = 0.5*E4
      B3 = 0.125*E4
C     the small copy loop
      DO K = 1,3
         DO I = 1,N
            W(I,K) = U(I,K)
         ENDDO
      ENDDO
C     second differences
      DO K = 1,3
         DO I = 2,N-1
            S = W(I+1,K) - 2.0*W(I,K) + W(I-1,K)
            D(I,K) = A1*D(I,K) + A2*S + A3*ABS(S)
         ENDDO
      ENDDO
C     fourth differences
      DO K = 1,3
         DO I = 3,N-2
            P = W(I+2,K) - 4.0*W(I+1,K) + 6.0*W(I,K) - &
               4.0*W(I-1,K) + W(I-2,K)
            Q = W(I+1,K) - W(I-1,K)
            T = B2*P - B3*Q
            D(I,K) = B1*D(I,K) - T
         ENDDO
      ENDDO
C     apply the dissipation
      DO K = 1,3
         DO I = 3,N-2
            U(I,K) = U(I,K) + E2*D(I,K) - E4*(D(I+1,K) - D(I-1,K))
         ENDDO
      ENDDO
      RETURN
      END

      SUBROUTINE INIT(X,U,D,C,P,LD,N,NC,NP,GAMMA,DT,DX)
C     initialize all simulation data: a long series of assignment
C     statements and simply nested loops (the paper notes INIT has a
C     relatively simple interference graph with low spill costs)
      REAL X(*),U(LD,*),D(LD,*),C(*),P(*),GAMMA,DT,DX
      REAL XL,XRR,H,T1,T2,T3,T4,T5,T6,T7,T8
      REAL Q1,Q2,Q3,Q4,Q5,Q6,Q7,Q8
      INTEGER I,K,LD,N,NC,NP
C     grid
      XL = 0.0
      XRR = 1.0
      H = (XRR - XL)/FLOAT(N - 1)
      DO I = 1,N
         X(I) = XL + FLOAT(I - 1)*H
      ENDDO
C     scalar coefficient setup, a long straight-line stretch
      T1 = GAMMA - 1.0
      T2 = GAMMA + 1.0
      T3 = T2/(2.0*GAMMA)
      T4 = T1/(2.0*GAMMA)
      T5 = 1.0/T1
      T6 = 2.0/T1
      T7 = SQRT(GAMMA)
      T8 = 1.0/T7
      Q1 = DT/DX
      Q2 = 0.5*Q1
      Q3 = Q1*Q1
      Q4 = 0.5*Q3
      Q5 = Q2*T1
      Q6 = Q4*T2
      Q7 = T3*Q1
      Q8 = T4*Q1
      P(1) = T1
      P(2) = T2
      P(3) = T3
      P(4) = T4
      P(5) = T5
      P(6) = T6
      P(7) = T7
      P(8) = T8
      P(9) = Q1
      P(10) = Q2
      P(11) = Q3
      P(12) = Q4
      P(13) = Q5
      P(14) = Q6
      P(15) = Q7
      P(16) = Q8
      DO I = 17,NP
         P(I) = 0.0
      ENDDO
C     state arrays
      DO K = 1,3
         DO I = 1,N
            U(I,K) = 0.0
            D(I,K) = 0.0
         ENDDO
      ENDDO
      DO I = 1,N
         IF (X(I) .LT. 0.5) THEN
            U(I,1) = 1.0
            U(I,3) = T5
         ELSE
            U(I,1) = 0.125
            U(I,3) = 0.1*T5
         ENDIF
      ENDDO
C     probe table: chebyshev-like nodes scaled by the coefficients
      DO I = 1,NC
         C(I) = COS(3.14159265358979*(FLOAT(I) - 0.5)/FLOAT(NC))
      ENDDO
      DO I = 1,NC
         C(I) = C(I)*Q2 + T8
      ENDDO
      RETURN
      END
`
