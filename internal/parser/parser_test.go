package parser_test

import (
	"strings"
	"testing"

	"regalloc/internal/ast"
	"regalloc/internal/parser"
)

func parseOne(t *testing.T, src string) *ast.Unit {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Units) != 1 {
		t.Fatalf("want 1 unit, got %d", len(prog.Units))
	}
	return prog.Units[0]
}

func TestSubroutineHeader(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(A,B,N)
      RETURN
      END
`)
	if u.Kind != ast.KindSubroutine || u.Name != "FOO" {
		t.Fatalf("got %v %q", u.Kind, u.Name)
	}
	if len(u.Params) != 3 || u.Params[0] != "A" || u.Params[2] != "N" {
		t.Fatalf("params: %v", u.Params)
	}
}

func TestFunctionHeaders(t *testing.T) {
	cases := []struct {
		src string
		ret ast.Type
	}{
		{"      REAL FUNCTION F(X)\n      F = X\n      END\n", ast.TypeReal},
		{"      INTEGER FUNCTION F(X)\n      F = X\n      END\n", ast.TypeInt},
		{"      DOUBLE PRECISION FUNCTION F(X)\n      F = X\n      END\n", ast.TypeReal},
		{"      FUNCTION F(X)\n      F = X\n      END\n", ast.TypeNone},
	}
	for _, c := range cases {
		u := parseOne(t, c.src)
		if u.Kind != ast.KindFunction || u.RetType != c.ret {
			t.Errorf("%q: kind %v ret %v", strings.SplitN(c.src, "\n", 2)[0], u.Kind, u.RetType)
		}
	}
}

func TestDeclarations(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(A,LDA)
      REAL A(LDA,*),X
      INTEGER I,STACK(64)
      RETURN
      END
`)
	if len(u.Decls) != 4 {
		t.Fatalf("want 4 decls, got %d", len(u.Decls))
	}
	a := u.Decls[0]
	if a.Name != "A" || len(a.Dims) != 2 || a.Dims[0].Name != "LDA" || !a.Dims[1].Star {
		t.Fatalf("A decl: %+v", a)
	}
	st := u.Decls[3]
	if st.Name != "STACK" || len(st.Dims) != 1 || st.Dims[0].Const != 64 {
		t.Fatalf("STACK decl: %+v", st)
	}
}

func TestDoLoopForms(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      DO I = 1,N
         X = X + 1.0
      ENDDO
      DO J = N,1,-2
         X = X - 1.0
      ENDDO
      DO WHILE (X .GT. 0.0)
         X = X - 1.0
      ENDDO
      END
`)
	if len(u.Body) != 3 {
		t.Fatalf("want 3 statements, got %d", len(u.Body))
	}
	d1, ok := u.Body[0].(*ast.DoStmt)
	if !ok || d1.Var != "I" || d1.Step != 1 {
		t.Fatalf("first loop: %+v", u.Body[0])
	}
	d2 := u.Body[1].(*ast.DoStmt)
	if d2.Step != -2 {
		t.Fatalf("second loop step = %d", d2.Step)
	}
	if _, ok := u.Body[2].(*ast.WhileStmt); !ok {
		t.Fatalf("third statement not a while: %T", u.Body[2])
	}
}

func TestIfForms(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      IF (N .GT. 0) X = 1.0
      IF (N .GT. 0) THEN
         X = 1.0
      ELSE
         X = 2.0
      ENDIF
      IF (N .EQ. 1) THEN
         X = 1.0
      ELSEIF (N .EQ. 2) THEN
         X = 2.0
      ELSE IF (N .EQ. 3) THEN
         X = 3.0
      ELSE
         X = 4.0
      ENDIF
      END
`)
	if len(u.Body) != 3 {
		t.Fatalf("want 3 statements, got %d", len(u.Body))
	}
	logical := u.Body[0].(*ast.IfStmt)
	if len(logical.Then) != 1 || logical.Else != nil {
		t.Fatalf("logical IF: %+v", logical)
	}
	chain := u.Body[2].(*ast.IfStmt)
	depth := 0
	for chain != nil {
		depth++
		if len(chain.Else) == 1 {
			if nested, ok := chain.Else[0].(*ast.IfStmt); ok {
				chain = nested
				continue
			}
		}
		break
	}
	if depth != 3 {
		t.Fatalf("ELSEIF chain depth = %d, want 3", depth)
	}
}

func TestExprPrecedence(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      X = A + B*C**2 - D/E
      END
`)
	asg := u.Body[0].(*ast.AssignStmt)
	got := ast.Sprint(asg.RHS)
	want := "((A+(B*(C**2)))-(D/E))"
	if got != want {
		t.Fatalf("precedence: got %s, want %s", got, want)
	}
}

func TestUnaryAndPower(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      X = -A**2
      Y = (-A)**2
      END
`)
	// FORTRAN: -A**2 is -(A**2).
	if got := ast.Sprint(u.Body[0].(*ast.AssignStmt).RHS); got != "(-(A**2))" {
		t.Fatalf("-A**2 parsed as %s", got)
	}
	if got := ast.Sprint(u.Body[1].(*ast.AssignStmt).RHS); got != "((-A)**2)" {
		t.Fatalf("(-A)**2 parsed as %s", got)
	}
}

func TestLogicalOperators(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      IF (A .LT. B .AND. .NOT. C .GT. D .OR. E .EQ. F) X = 1
      END
`)
	cond := u.Body[0].(*ast.IfStmt).Cond
	got := ast.Sprint(cond)
	want := "(((A.LT.B).AND.(.NOT.(C.GT.D))).OR.(E.EQ.F))"
	if got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestCallStatement(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(A,N)
      REAL A(*)
      CALL BAR(N,A,A(2),1.5)
      CALL BAZ
      RETURN
      END
`)
	call := u.Body[0].(*ast.CallStmt)
	if call.Name != "BAR" || len(call.Args) != 4 {
		t.Fatalf("call: %+v", call)
	}
	baz := u.Body[1].(*ast.CallStmt)
	if baz.Name != "BAZ" || len(baz.Args) != 0 {
		t.Fatalf("baz: %+v", baz)
	}
}

func TestStatementLabelsIgnored(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
   10 CONTINUE
      X = 1.0
      END
`)
	if len(u.Body) != 2 {
		t.Fatalf("want 2 statements, got %d", len(u.Body))
	}
}

func TestMultipleUnits(t *testing.T) {
	prog, err := parser.Parse(`
      SUBROUTINE A(X)
      RETURN
      END
      REAL FUNCTION B(X)
      B = X
      RETURN
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 2 || prog.Unit("A") == nil || prog.Unit("B") == nil {
		t.Fatalf("units: %v", prog.Units)
	}
}

func TestExitCycle(t *testing.T) {
	u := parseOne(t, `
      SUBROUTINE FOO(N)
      DO I = 1,N
         IF (I .EQ. 3) CYCLE
         IF (I .EQ. 5) EXIT
         X = X + 1.0
      ENDDO
      END
`)
	loop := u.Body[0].(*ast.DoStmt)
	if len(loop.Body) != 3 {
		t.Fatalf("loop body: %d statements", len(loop.Body))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"      X = 1\n",      // statement outside a unit
		"      SUBROUTINE\n", // missing name
		"      SUBROUTINE F(N)\n      GOTO 10\n      END\n",                   // GOTO unsupported
		"      SUBROUTINE F(N)\n      DO I = 1,N,0\n      ENDDO\n      END\n", // zero step
		"      SUBROUTINE F(N)\n      IF (X .GT. 0) THEN\n      END\n",        // unterminated IF
	}
	for _, src := range bad {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestParserRobustness: arbitrary byte soup must produce errors or a
// tree, never a panic or a hang.
func TestParserRobustness(t *testing.T) {
	pieces := []string{
		"SUBROUTINE", "FUNCTION", "DO", "ENDDO", "IF", "THEN", "ELSE",
		"(", ")", ",", "=", "+", "**", ".LT.", ".AND.", "1.5E", "X",
		"END", "\n", "CALL", "REAL", "A(", "*", "&", "!", "C ", ".",
	}
	rng := uint64(1)
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		n := int(rng%37) + 1
		for i := 0; i < n; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			sb.WriteString(pieces[rng%uint64(len(pieces))])
			if rng%3 == 0 {
				sb.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", sb.String(), r)
				}
			}()
			parser.Parse(sb.String()) //nolint:errcheck // errors are fine; panics are not
		}()
	}
}
