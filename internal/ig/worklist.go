package ig

import "regalloc/internal/ir"

// Worklist is the Matula–Beck degree-bucket structure (§2.2 of the
// paper): an array N where N[i] heads a doubly-linked list of the
// remaining nodes with exactly i remaining neighbors. Finding a
// minimum-degree node is a forward scan of N; removing a node moves
// each neighbor down one bucket. The paper's refinement — after
// removing a node from N[i], resume scanning at N[i-1] — is
// implemented by tracking the lowest bucket that may be non-empty.
//
// A Worklist covers the nodes of a single register class; the two
// classes form disjoint subgraphs and are simplified independently.
type Worklist struct {
	g       *Graph
	cls     ir.Class
	in      []bool  // node belongs to this worklist's class
	removed []bool  // node has been removed (simplified or spilled)
	degree  []int32 // current degree among remaining nodes

	head       []int32 // bucket heads by degree; -1 = empty
	next, prev []int32 // intrusive list links; -1 = none

	remaining int
	scanFrom  int32 // lowest possibly-non-empty bucket

	// ScanSteps counts bucket cells inspected, to verify the
	// linear-work bound (total scan work <= |V| + 2|E|).
	ScanSteps int
}

// NewWorklist builds the bucket structure for the nodes of class cls
// in g.
func NewWorklist(g *Graph, cls ir.Class) *Worklist {
	w := &Worklist{}
	w.Init(g, cls)
	return w
}

// Init (re)builds the bucket structure for the nodes of class cls in
// g, reusing the worklist's backing slices when they are big enough.
// A Worklist held in per-pass scratch (color.Scratch) is re-Inited
// every pass, so the steady-state simplification phase allocates
// nothing.
func (w *Worklist) Init(g *Graph, cls ir.Class) {
	w.InitPre(g, cls, nil)
}

// InitPre is Init over a graph with precolored nodes: a node with
// pre[n] >= 0 stays out of the worklist entirely — it is never
// returned by MinDegreeNode, never counted in Remaining, and (being
// never Removed) its contribution to every neighbor's degree never
// decays, which is exactly the "infinite degree" treatment precolored
// nodes need during simplification. A nil pre is the plain Init.
func (w *Worklist) InitPre(g *Graph, cls ir.Class, pre []int16) {
	n := g.NumNodes()
	w.g = g
	w.cls = cls
	w.remaining = 0
	w.scanFrom = 0
	w.ScanSteps = 0
	w.in = growBool(w.in, n)
	w.removed = growBool(w.removed, n)
	w.degree = growInt32(w.degree, n)
	w.head = growInt32(w.head, n+1)
	w.next = growInt32(w.next, n)
	w.prev = growInt32(w.prev, n)
	for i := range w.head {
		w.head[i] = -1
	}
	for i := 0; i < n; i++ {
		w.next[i] = -1
		w.prev[i] = -1
		w.in[i] = false
		w.removed[i] = false
		if g.Class(int32(i)) != cls {
			continue
		}
		if pre != nil && pre[i] >= 0 {
			continue
		}
		w.in[i] = true
		w.degree[i] = int32(g.Degree(int32(i)))
		w.pushBucket(int32(i))
		w.remaining++
	}
}

// growBool returns a length-n slice reusing s's backing array when it
// is big enough (contents are unspecified; callers reset them).
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Remaining returns the number of nodes not yet removed.
func (w *Worklist) Remaining() int { return w.remaining }

// Degree returns the current degree of node a among remaining nodes.
func (w *Worklist) Degree(a int32) int32 { return w.degree[a] }

// Removed reports whether a has been removed.
func (w *Worklist) Removed(a int32) bool { return w.removed[a] }

// InClass reports whether a belongs to this worklist's class. With
// Removed it lets hot loops enumerate remaining nodes directly,
// without the closure ForEachRemaining costs per call.
func (w *Worklist) InClass(a int32) bool { return w.in[a] }

// NumNodes returns the node count of the underlying graph.
func (w *Worklist) NumNodes() int { return len(w.in) }

func (w *Worklist) pushBucket(a int32) {
	d := w.degree[a]
	h := w.head[d]
	w.next[a] = h
	w.prev[a] = -1
	if h >= 0 {
		w.prev[h] = a
	}
	w.head[d] = a
}

func (w *Worklist) unlink(a int32) {
	d := w.degree[a]
	if w.prev[a] >= 0 {
		w.next[w.prev[a]] = w.next[a]
	} else {
		w.head[d] = w.next[a]
	}
	if w.next[a] >= 0 {
		w.prev[w.next[a]] = w.prev[a]
	}
	w.next[a] = -1
	w.prev[a] = -1
}

// Remove deletes node a from the graph view: a leaves its bucket and
// each remaining neighbor of a's class moves down one bucket.
func (w *Worklist) Remove(a int32) {
	if w.removed[a] || !w.in[a] {
		panic("ig: Remove of absent node")
	}
	w.unlink(a)
	w.removed[a] = true
	w.remaining--
	for _, nb := range w.g.Neighbors(a) {
		if w.removed[nb] || !w.in[nb] {
			continue
		}
		w.unlink(nb)
		w.degree[nb]--
		w.pushBucket(nb)
		if w.degree[nb] < w.scanFrom {
			w.scanFrom = w.degree[nb]
		}
	}
}

// MinDegreeNode returns a remaining node of minimum degree, or -1
// when the worklist is empty. Nodes in a bucket are returned in
// last-in-first-out order; determinism follows from the fixed
// construction order.
//
// scanFrom is always >= 0: it starts at zero and only ever moves
// down to a neighbor's decremented degree, and degrees are
// non-negative. The resume-at-scanFrom refinement is what gives the
// Matula–Beck bound of at most |V| + 2|E| bucket cells inspected
// over a full simplification (each Remove lowers scanFrom by at most
// deg(node) in total), which TestScanWorkBound pins.
func (w *Worklist) MinDegreeNode() int32 {
	if w.remaining == 0 {
		return -1
	}
	for d := w.scanFrom; int(d) < len(w.head); d++ {
		w.ScanSteps++
		if h := w.head[d]; h >= 0 {
			w.scanFrom = d
			return h
		}
	}
	return -1
}

// ForEachRemaining calls f for every node still in the worklist, in
// increasing node order (the deterministic tie-break of the paper's
// footnote 4).
func (w *Worklist) ForEachRemaining(f func(a int32)) {
	for i := range w.in {
		if w.in[i] && !w.removed[i] {
			f(int32(i))
		}
	}
}
