package ssa

import (
	"regalloc/internal/bitset"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// Liveness holds phi-aware per-block live sets. The convention is
// Hack's: a phi's destination is live-in to the phi's block (all
// destinations of one block are simultaneously live at its entry),
// a phi's argument is live-out of the corresponding predecessor, and
// neither is live across the edge itself — which is what keeps
// MAXLIVE equal to the interference graph's clique number.
type Liveness struct {
	In  []*bitset.Set
	Out []*bitset.Set
}

// Analysis is the coloring view of an SSA function: liveness, the
// interference graph, the per-class pressure maxima, and the
// definitions in dominance order (a reverse perfect elimination
// order of the chordal graph).
type Analysis struct {
	Live    *Liveness
	G       *ig.Graph
	MaxLive [ir.NumClasses]int
	Order   []ir.Reg
}

// computeLiveness runs the phi-aware backward fixpoint.
func computeLiveness(s *Func) *Liveness {
	f := s.F
	n := len(f.Blocks)
	nr := f.NumRegs()
	lv := &Liveness{In: make([]*bitset.Set, n), Out: make([]*bitset.Set, n)}

	use := make([]*bitset.Set, n)
	def := make([]*bitset.Set, n)
	phiDef := make([]*bitset.Set, n)
	// argsOut[p] lists the phi arguments flowing out of block p into
	// its successor's phis; fixed once the side table is fixed.
	argsOut := make([][]ir.Reg, n)

	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		u := bitset.New(nr)
		d := bitset.New(nr)
		pd := bitset.New(nr)
		for _, ph := range s.Phis[b.ID] {
			pd.Add(int(ph.Dst))
			d.Add(int(ph.Dst))
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.AppendUses(ubuf[:0])
			for _, r := range ubuf {
				if !d.Has(int(r)) {
					u.Add(int(r))
				}
			}
			if dst := in.Def(); dst != ir.NoReg {
				d.Add(int(dst))
			}
		}
		use[b.ID] = u
		def[b.ID] = d
		phiDef[b.ID] = pd
		lv.In[b.ID] = bitset.New(nr)
		lv.Out[b.ID] = bitset.New(nr)
	}
	for _, b := range f.Blocks {
		for j, p := range b.Preds {
			for _, ph := range s.Phis[b.ID] {
				if a := ph.Args[j]; a != ir.NoReg {
					argsOut[p] = append(argsOut[p], a)
				}
			}
		}
	}

	tmp := bitset.New(nr)
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b.ID]
			for _, sid := range b.Succs {
				// live across the edge: the successor's live-in minus
				// its phi defs...
				tmp.CopyFrom(lv.In[sid])
				tmp.Subtract(phiDef[sid])
				if out.Union(tmp) {
					changed = true
				}
			}
			// ...plus the phi arguments this block feeds.
			for _, a := range argsOut[b.ID] {
				if !out.Has(int(a)) {
					out.Add(int(a))
					changed = true
				}
			}
			// in = phiDefs ∪ use ∪ (out − def)
			tmp.CopyFrom(out)
			tmp.Subtract(def[b.ID])
			tmp.Union(use[b.ID])
			tmp.Union(phiDef[b.ID])
			if !tmp.Equal(lv.In[b.ID]) {
				lv.In[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return lv
}

// Analyze computes liveness, builds the interference graph, records
// the per-class pressure maxima (MAXLIVE), and lays out the
// definitions in dominance order. Interference edges connect each
// definition to the values live after it — with no move exception:
// SSA values are distinct, and the chordality argument needs the
// plain def-versus-live rule.
func Analyze(s *Func) *Analysis {
	f := s.F
	nr := f.NumRegs()
	classes := make([]ir.Class, nr)
	for r := 0; r < nr; r++ {
		classes[r] = f.RegClass(ir.Reg(r))
	}
	a := &Analysis{Live: computeLiveness(s), G: ig.New(classes)}

	var cnt [ir.NumClasses]int
	bump := func() {
		for c := 0; c < ir.NumClasses; c++ {
			if cnt[c] > a.MaxLive[c] {
				a.MaxLive[c] = cnt[c]
			}
		}
	}
	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		live := a.Live.Out[b.ID].Copy()
		cnt[ir.ClassInt], cnt[ir.ClassFloat] = 0, 0
		live.ForEach(func(r int) { cnt[classes[r]]++ })
		bump() // block exit (includes outgoing phi arguments)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				live.ForEach(func(l int) {
					if ir.Reg(l) != d {
						a.G.AddEdge(int32(d), int32(l))
					}
				})
				if live.Has(int(d)) {
					live.Remove(int(d))
					cnt[classes[d]]--
				} else {
					// A dead definition still occupies a register at
					// its definition point: the clique there is d plus
					// everything live after the instruction.
					cnt[classes[d]]++
					bump()
					cnt[classes[d]]--
				}
			}
			ubuf = in.AppendUses(ubuf[:0])
			for _, u := range ubuf {
				if !live.Has(int(u)) {
					live.Add(int(u))
					cnt[classes[u]]++
				}
			}
			bump() // point just before instruction i
		}
		// Block entry: the phi destinations are all defined here,
		// simultaneously — they interfere with each other and with
		// everything live into the block body.
		phis := s.Phis[b.ID]
		for i := range phis {
			d := phis[i].Dst
			live.ForEach(func(l int) {
				if ir.Reg(l) != d {
					a.G.AddEdge(int32(d), int32(l))
				}
			})
			for j := i + 1; j < len(phis); j++ {
				a.G.AddEdge(int32(d), int32(phis[j].Dst))
			}
		}
		if len(phis) > 0 {
			for i := range phis {
				if d := phis[i].Dst; !live.Has(int(d)) {
					cnt[classes[d]]++
				}
			}
			bump()
		}
	}
	a.G.Finalize()
	a.Order = domOrder(s)
	return a
}

// domOrder lists every definition in dominance preorder: blocks in
// dominator-tree preorder (children by reverse postorder), and
// within a block the phi destinations first, then instruction
// definitions in program order. The reverse of this order is a
// perfect elimination order of the SSA interference graph.
func domOrder(s *Func) []ir.Reg {
	var order []ir.Reg
	var walk func(b int)
	walk = func(b int) {
		for i := range s.Phis[b] {
			order = append(order, s.Phis[b][i].Dst)
		}
		for i := range s.F.Blocks[b].Instrs {
			if d := s.F.Blocks[b].Instrs[i].Def(); d != ir.NoReg {
				order = append(order, d)
			}
		}
		for _, k := range s.Kids[b] {
			walk(k)
		}
	}
	walk(0)
	return order
}
