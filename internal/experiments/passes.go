package experiments

import (
	"fmt"
	"strings"

	"regalloc"
	"regalloc/internal/workloads"
)

// §3.3 of the paper discusses how many times the
// build–simplify–color–spill cycle repeats: "the process seems to
// converge very rapidly; a typical large routine might spill fifty
// live ranges during the first pass, but only two live ranges during
// the second ... We have never observed either method needing more
// than three passes", and notes the methods can differ by one pass
// in either direction (their DMXPY: new took 3 where old took 2).
// PassStudy measures that across the whole suite.

// PassRow records one routine's pass behaviour.
type PassRow struct {
	Program   string
	Routine   string
	OldPasses int
	NewPasses int
	// Per-pass spill counts, demonstrating the rapid decay.
	OldSpills []int
	NewSpills []int
}

// PassStudyResult is the suite-wide convergence table.
type PassStudyResult struct {
	Rows []PassRow
}

// PassStudy allocates every routine with both heuristics and
// collects pass counts and per-pass spill decays.
func PassStudy() (*PassStudyResult, error) {
	out := &PassStudyResult{}
	for _, w := range append(workloads.All(), workloads.Quicksort(), workloads.IntegerKernels()) {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, err
		}
		for _, rt := range w.Routines {
			row := PassRow{Program: w.Program, Routine: rt}
			for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
				opt := defaultOptions()
				opt.Heuristic = h
				res, err := prog.Allocate(rt, opt)
				if err != nil {
					return nil, fmt.Errorf("%s/%s %s: %w", w.Program, rt, h, err)
				}
				var spills []int
				for _, p := range res.Passes {
					spills = append(spills, p.Spilled)
				}
				if h == regalloc.Chaitin {
					row.OldPasses = len(res.Passes)
					row.OldSpills = spills
				} else {
					row.NewPasses = len(res.Passes)
					row.NewSpills = spills
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// MaxPasses returns the largest pass count either heuristic needed.
func (r *PassStudyResult) MaxPasses() int {
	max := 0
	for _, row := range r.Rows {
		if row.OldPasses > max {
			max = row.OldPasses
		}
		if row.NewPasses > max {
			max = row.NewPasses
		}
	}
	return max
}

// String renders the convergence table; routines that finish in one
// pass (no spills) are summarized rather than listed.
func (r *PassStudyResult) String() string {
	var b strings.Builder
	b.WriteString("build-simplify-color-spill convergence (per-pass spill counts)\n")
	fmt.Fprintf(&b, "%-8s %-10s | %-6s %-20s | %-6s %-20s\n",
		"program", "routine", "passes", "old spills by pass", "passes", "new spills by pass")
	onePass := 0
	for _, row := range r.Rows {
		if row.OldPasses == 1 && row.NewPasses == 1 {
			onePass++
			continue
		}
		fmt.Fprintf(&b, "%-8s %-10s | %-6d %-20s | %-6d %-20s\n",
			row.Program, row.Routine,
			row.OldPasses, fmt.Sprint(row.OldSpills),
			row.NewPasses, fmt.Sprint(row.NewSpills))
	}
	fmt.Fprintf(&b, "(%d routines allocate in a single spill-free pass)\n", onePass)
	fmt.Fprintf(&b, "maximum passes observed: %d (the paper observed at most 3)\n", r.MaxPasses())
	return b.String()
}
