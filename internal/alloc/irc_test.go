package alloc_test

import (
	"errors"
	"testing"

	"regalloc/internal/alloc"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
)

// callSrc has a value (S) live across every call to G, so allocating
// it under a machine model must avoid the caller-saved registers.
const callSrc = `
      REAL FUNCTION G(X)
      REAL X
      G = X * 2.0 + 1.0
      RETURN
      END
      SUBROUTINE TOP(A,N)
      REAL A(*)
      INTEGER I,N
      REAL S
      S = 0.0
      DO I = 1,N
         S = S + G(A(I))
      ENDDO
      A(1) = S
      RETURN
      END
`

func TestIRCAllocatesCleanly(t *testing.T) {
	prog := compile(t, pressureSrc)
	opt := alloc.DefaultOptions()
	opt.Heuristic = color.IRC
	res, err := alloc.Run(prog.Func("HOT"), opt)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < res.Func.NumRegs(); r++ {
		c := res.Colors[r]
		if c < 0 {
			t.Fatalf("register %d uncolored", r)
		}
		k := opt.KInt
		if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat {
			k = opt.KFloat
		}
		if int(c) >= k {
			t.Fatalf("color %d out of range", c)
		}
	}
	if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestIRCConvergesUnderPressure(t *testing.T) {
	prog := compile(t, pressureSrc)
	opt := alloc.DefaultOptions()
	opt.Heuristic = color.IRC
	opt.KFloat = 4 // 12 long-lived floats cannot fit in 4 registers
	res, err := alloc.Run(prog.Func("HOT"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilled() == 0 {
		t.Fatal("expected spills with 4 float registers")
	}
	if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestMachineConstrainedHeuristics runs every Figure 4 family plus
// IRC under the RT/PC machine model on a unit with calls, and checks
// the machine oracle on each result: in-range colors and no
// call-crossing value in a caller-saved register.
func TestMachineConstrainedHeuristics(t *testing.T) {
	prog := compile(t, callSrc)
	m := machine.RTPC()
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck, color.IRC} {
		opt := alloc.DefaultOptions()
		opt.Heuristic = h
		opt.Machine = m
		res, err := alloc.Run(prog.Func("TOP"), opt)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if err := alloc.VerifyAssignmentMachine(res.Func, res.Colors, m); err != nil {
			t.Fatalf("%s: %v", h, err)
		}
	}
}

// TestIRCEliminatesConventionMoves: under the machine model the
// convention bindings coalesce, and the result stays verifiable after
// the rewrite deleted the moves it merged.
func TestIRCMachineAllocates(t *testing.T) {
	prog := compile(t, callSrc)
	m := machine.RTPC()
	opt := alloc.DefaultOptions()
	opt.Heuristic = color.IRC
	opt.Machine = m
	for _, unit := range []string{"G", "TOP"} {
		res, err := alloc.Run(prog.Func(unit), opt)
		if err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
		if err := alloc.VerifyAssignmentMachine(res.Func, res.Colors, m); err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
	}
}

func TestMachineOptionValidation(t *testing.T) {
	prog := compile(t, pressureSrc)
	f := prog.Func("HOT")

	mismatch := alloc.DefaultOptions()
	mismatch.Machine = machine.ForK(8, 4) // disagrees with KInt=16/KFloat=8
	if _, err := alloc.Run(f, mismatch); !errors.Is(err, alloc.ErrBadMachine) {
		t.Fatalf("K mismatch: got %v, want ErrBadMachine", err)
	}

	pcolorOpt := alloc.DefaultOptions()
	pcolorOpt.Machine = machine.RTPC()
	pcolorOpt.UsePColor = true
	if _, err := alloc.Run(f, pcolorOpt); !errors.Is(err, alloc.ErrBadMachine) {
		t.Fatalf("UsePColor: got %v, want ErrBadMachine", err)
	}

	ssaOpt := alloc.DefaultOptions()
	ssaOpt.Machine = machine.RTPC()
	ssaOpt.Heuristic = color.SSA
	if _, err := alloc.Run(f, ssaOpt); !errors.Is(err, alloc.ErrBadMachine) {
		t.Fatalf("SSA: got %v, want ErrBadMachine", err)
	}

	ok := alloc.DefaultOptions()
	ok.Machine = machine.RTPC()
	if _, err := alloc.Run(f, ok); err != nil {
		t.Fatalf("valid machine options rejected: %v", err)
	}
}

// TestVerifyAssignmentMachineCatches: a hand-broken coloring that
// parks a call-crossing value in a caller-saved register must fail
// the machine oracle even though the plain oracle accepts it.
func TestVerifyAssignmentMachineCatches(t *testing.T) {
	prog := compile(t, callSrc)
	m := machine.RTPC()
	opt := alloc.DefaultOptions()
	opt.Heuristic = color.Briggs
	opt.Machine = m
	res, err := alloc.Run(prog.Func("TOP"), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Find a float register live across a call (S's web) and move it
	// into a caller-saved register not used by any other float range.
	broken := append([]int16(nil), res.Colors...)
	victim := -1
	for r := 0; r < res.Func.NumRegs(); r++ {
		if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat && broken[r] >= 0 &&
			!m.IsCallerSaved(ir.ClassFloat, broken[r]) {
			victim = r
			break
		}
	}
	if victim < 0 {
		t.Skip("no callee-saved float range to break")
	}
	inUse := make(map[int16]bool)
	for r := 0; r < res.Func.NumRegs(); r++ {
		if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat && broken[r] >= 0 {
			inUse[broken[r]] = true
		}
	}
	free := int16(-1)
	for c := int16(0); int(c) < m.CallerSaved[ir.ClassFloat]; c++ {
		if !inUse[c] {
			free = c
			break
		}
	}
	if free < 0 {
		t.Skip("float caller-saved registers all occupied")
	}
	broken[victim] = free
	if err := alloc.VerifyAssignment(res.Func, broken); err != nil {
		t.Fatalf("plain oracle should accept the recolored range: %v", err)
	}
	if err := alloc.VerifyAssignmentMachine(res.Func, broken, m); err == nil {
		t.Fatal("machine oracle missed a call-crossing caller-saved assignment")
	}
}
