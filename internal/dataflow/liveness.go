// Package dataflow implements the bit-vector dataflow analyses the
// allocator depends on: live-variable analysis (which builds the
// interference graph) and reaching definitions (which builds webs in
// the renumbering pass).
package dataflow

import (
	"regalloc/internal/bitset"
	"regalloc/internal/ir"
)

// Liveness holds per-block live-in/live-out sets over virtual
// registers.
type Liveness struct {
	In  []*bitset.Set // indexed by block ID
	Out []*bitset.Set
}

// ComputeLiveness runs backward iterative live-variable analysis.
func ComputeLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	nr := f.NumRegs()
	use := make([]*bitset.Set, n)
	def := make([]*bitset.Set, n)
	lv := &Liveness{In: make([]*bitset.Set, n), Out: make([]*bitset.Set, n)}

	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		u := bitset.New(nr)
		d := bitset.New(nr)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.AppendUses(ubuf[:0])
			for _, r := range ubuf {
				if !d.Has(int(r)) {
					u.Add(int(r))
				}
			}
			if dst := in.Def(); dst != ir.NoReg {
				d.Add(int(dst))
			}
		}
		use[b.ID] = u
		def[b.ID] = d
		lv.In[b.ID] = bitset.New(nr)
		lv.Out[b.ID] = bitset.New(nr)
	}

	// Iterate to fixpoint; processing blocks in reverse order makes
	// the backward problem converge in very few passes for reducible
	// flow graphs.
	tmp := bitset.New(nr)
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b.ID]
			for _, s := range b.Succs {
				if out.Union(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.CopyFrom(out)
			tmp.Subtract(def[b.ID])
			tmp.Union(use[b.ID])
			if !tmp.Equal(lv.In[b.ID]) {
				lv.In[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return lv
}

// LiveAcross walks block b backward from its last instruction,
// calling visit with the live set *after* each instruction (i.e. the
// set of registers whose current values are needed later). The
// callback must not retain the set. This is the traversal the
// interference-graph builder uses.
func (lv *Liveness) LiveAcross(f *ir.Func, b *ir.Block, visit func(i int, in *ir.Instr, liveAfter *bitset.Set)) {
	lv.LiveAcrossRange(f, b, 0, len(b.Instrs), nil, visit)
}

// LiveAcrossRange is LiveAcross restricted to instructions [lo, hi)
// of b. liveAtHi must be the set live after instruction hi-1 (as
// LiveAtCuts computes it); nil means hi is the end of the block and
// the walk starts from the block's live-out. The set is copied, not
// mutated. Splitting a block into ranges at cut points and walking
// each range with its LiveAtCuts set visits exactly the states the
// full LiveAcross walk would — this is what lets the parallel
// interference-graph build cut inside the huge straight-line blocks
// of generated code instead of sharding on block boundaries only.
func (lv *Liveness) LiveAcrossRange(f *ir.Func, b *ir.Block, lo, hi int, liveAtHi *bitset.Set, visit func(i int, in *ir.Instr, liveAfter *bitset.Set)) {
	if liveAtHi == nil {
		liveAtHi = lv.Out[b.ID]
	}
	live := liveAtHi.Copy()
	var ubuf []ir.Reg
	for i := hi - 1; i >= lo; i-- {
		in := &b.Instrs[i]
		visit(i, in, live)
		if dst := in.Def(); dst != ir.NoReg {
			live.Remove(int(dst))
		}
		ubuf = in.AppendUses(ubuf[:0])
		for _, r := range ubuf {
			live.Add(int(r))
		}
	}
}

// LiveAtCuts returns, for each cut index (ascending, each in
// (0, len(b.Instrs))), the set live after instruction cut-1 of b —
// the state the backward LiveAcross walk holds when it is about to
// visit instruction cut-1. One backward sweep serves all cuts; the
// sweep only transfers the live set (no per-live-register work), so
// it is far cheaper than the enumeration walk it seeds.
func (lv *Liveness) LiveAtCuts(f *ir.Func, b *ir.Block, cuts []int) []*bitset.Set {
	out := make([]*bitset.Set, len(cuts))
	live := lv.Out[b.ID].Copy()
	var ubuf []ir.Reg
	next := len(cuts) - 1
	for i := len(b.Instrs) - 1; i >= 0 && next >= 0; i-- {
		if cuts[next] == i+1 {
			out[next] = live.Copy()
			next--
			if next < 0 {
				break
			}
		}
		in := &b.Instrs[i]
		if dst := in.Def(); dst != ir.NoReg {
			live.Remove(int(dst))
		}
		ubuf = in.AppendUses(ubuf[:0])
		for _, r := range ubuf {
			live.Add(int(r))
		}
	}
	return out
}
