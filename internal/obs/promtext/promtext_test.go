package promtext

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"regalloc/internal/obs"
)

func sampleSnapshot() obs.RegistrySnapshot {
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		s := obs.RunSummary{
			Unit:           []string{"SVD", "DQRDC", `we"ird\name`}[i%3],
			Passes:         1 + i%2,
			Spills:         i % 5,
			SpillCostMilli: obs.SpillCostMilli(float64(i) * 2.5),
			CoalescedMoves: i % 3,
			PaletteInt:     1 + i%12,
			PaletteFloat:   i % 6,
			TotalNS:        int64(1500 * (i + 1)),
		}
		s.PhaseNS[obs.PhaseBuild] = int64(900 * (i + 1))
		s.PhaseNS[obs.PhaseSimplify] = int64(300 * (i + 1))
		reg.Record(s)
	}
	reg.Record(obs.RunSummary{Unit: "SVD", Error: true})
	reg.Record(obs.RunSummary{Unit: "graph", PColorRounds: 3, PColorConflicts: 17, PaletteInt: 9})
	return reg.Snapshot()
}

func TestWriteLints(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("Write output fails Lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"regalloc_runs_total 42",
		"regalloc_run_errors_total 1",
		"regalloc_pcolor_conflicts_total 17",
		`regalloc_unit_runs_total{unit="SVD"} 15`,
		`regalloc_unit_runs_total{unit="we\"ird\\name"} 13`,
		`regalloc_phase_duration_seconds_bucket{phase="build",le="+Inf"} 40`,
		`regalloc_phase_duration_seconds_count{phase="spill"} 0`,
		"regalloc_run_duration_seconds_count 40",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	snap := sampleSnapshot()
	var a, b bytes.Buffer
	if err := Write(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of one snapshot differ")
	}
}

func TestWriteMetricsLints(t *testing.T) {
	ms := obs.NewMetricsSink()
	ms.Emit(obs.Event{Kind: obs.KindCounter, Phase: obs.PhaseBuild, Name: "graph.nodes", Value: 11})
	ms.Emit(obs.Event{Kind: obs.KindCounter, Phase: obs.PhaseSpill, Name: "spill.ranges", Value: 2})
	ms.Emit(obs.Event{Kind: obs.KindSpillDecision, Cost: 4})
	ms.Emit(obs.Event{Kind: obs.KindColorReuse})
	ms.Emit(obs.Event{Kind: obs.KindSpanEnd, Phase: obs.PhaseBuild, Dur: time.Millisecond})
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, ms.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("WriteMetrics output fails Lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		`regalloc_events_total{phase="build",name="graph.nodes"} 11`,
		"regalloc_spill_decisions_total 1",
		"regalloc_color_reuses_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":        "some_metric 3\n",
		"bad value":      "# TYPE m counter\nm three\n",
		"bad type":       "# TYPE m histogramish\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"no inf bucket":  "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"bad label":      "# TYPE m counter\nm{le=x} 3\n",
		"negative ctr":   "# TYPE m counter\nm -1\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, in)
		}
	}
	good := "# HELP m helpful\n# TYPE m counter\nm{unit=\"a b\"} 3\n"
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("Lint rejected valid input: %v", err)
	}
}

func TestWriteCacheLints(t *testing.T) {
	s := obs.CacheStats{
		Hits:       17,
		Misses:     5,
		Shared:     3,
		Abandoned:  4,
		Evictions:  2,
		Entries:    3,
		Bytes:      4096,
		MaxEntries: 1024,
		MaxBytes:   1 << 20,
	}
	s.HitLatency.Observe(3 * time.Microsecond)
	s.HitLatency.Observe(40 * time.Microsecond)
	s.FillLatency.Observe(12 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteCache(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("WriteCache output fails Lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"regalloc_cache_hits_total 17",
		"regalloc_cache_misses_total 5",
		"regalloc_cache_singleflight_shared_total 3",
		"regalloc_cache_abandoned_waits_total 4",
		"regalloc_cache_evictions_total 2",
		"regalloc_cache_entries 3",
		"regalloc_cache_bytes 4096",
		"regalloc_cache_hit_duration_seconds_count 2",
		"regalloc_cache_fill_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// Deterministic byte-for-byte across repeated renders.
	var again bytes.Buffer
	if err := WriteCache(&again, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteCache output not deterministic")
	}
}
