package ast_test

import (
	"testing"

	"regalloc/internal/ast"
	"regalloc/internal/parser"
)

func TestSprint(t *testing.T) {
	src := `
      SUBROUTINE S(A,N)
      REAL A(*)
      X = -A(I+1)*2.0 + MAX(B,C)
      END
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Units[0].Body[0].(*ast.AssignStmt).RHS
	got := ast.Sprint(rhs)
	want := "(((-A((I+1)))*2)+MAX(B,C))"
	if got != want {
		t.Fatalf("Sprint = %s, want %s", got, want)
	}
}

func TestTypeString(t *testing.T) {
	if ast.TypeInt.String() != "INTEGER" || ast.TypeReal.String() != "REAL" || ast.TypeNone.String() != "NONE" {
		t.Fatal("Type.String spellings")
	}
}

func TestDimString(t *testing.T) {
	cases := map[string]ast.Dim{
		"10":  {Const: 10},
		"*":   {Star: true},
		"LDA": {Name: "LDA"},
	}
	for want, d := range cases {
		if d.String() != want {
			t.Errorf("Dim %+v prints %q, want %q", d, d.String(), want)
		}
	}
}

func TestBinOpPredicates(t *testing.T) {
	if !ast.OpLT.IsRelational() || !ast.OpNE.IsRelational() || ast.OpAdd.IsRelational() {
		t.Fatal("IsRelational")
	}
	if !ast.OpAnd.IsLogical() || !ast.OpOr.IsLogical() || ast.OpEQ.IsLogical() {
		t.Fatal("IsLogical")
	}
	if ast.OpPow.String() != "**" || ast.OpAnd.String() != ".AND." {
		t.Fatal("BinOp.String")
	}
}

func TestProgramUnitLookup(t *testing.T) {
	prog, err := parser.Parse(`
      SUBROUTINE A(N)
      RETURN
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Unit("A") == nil || prog.Unit("B") != nil {
		t.Fatal("Unit lookup")
	}
}

func TestStmtPositions(t *testing.T) {
	prog, err := parser.Parse(`
      SUBROUTINE A(N)
      X = 1.0
      RETURN
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.Units[0].Body {
		if !s.StmtPos().IsValid() {
			t.Fatalf("%T has no position", s)
		}
	}
}
