// Package target models the simulated machine: the register files,
// the instruction encoding size, and the cycle cost of each
// operation. It stands in for the paper's IBM RT/PC (§5 of
// DESIGN.md): a 32-bit RISC-ish machine with 16 general-purpose and
// 8 floating-point registers. The static model here is what both the
// assembler (object size) and the simulator (dynamic cycle counts)
// charge against, so Figure 5's static and dynamic columns share one
// source of truth.
package target

import "regalloc/internal/ir"

// Machine describes one target configuration. The register-file
// sizes are the allocator's color counts; the quicksort study
// (Figure 6) shrinks NumGPR below the RT/PC's 16 to raise pressure.
type Machine struct {
	Name   string
	NumGPR int // general-purpose (integer) registers
	NumFPR int // floating-point registers
}

// RTPC returns the paper's machine: 16 GPRs and 8 FPRs.
func RTPC() Machine { return Machine{Name: "rt/pc", NumGPR: 16, NumFPR: 8} }

// K returns the number of registers available to the class.
func (m Machine) K(c ir.Class) int {
	if c == ir.ClassFloat {
		return m.NumFPR
	}
	return m.NumGPR
}

// WithGPR returns a copy of m with the general-purpose file resized
// (the Figure 6 register study).
func (m Machine) WithGPR(n int) Machine {
	m.NumGPR = n
	return m
}

// WithFPR returns a copy of m with the floating-point file resized.
func (m Machine) WithFPR(n int) Machine {
	m.NumFPR = n
	return m
}

// BytesPerInstr is the fixed encoding width of one instruction; the
// "object size" columns are instruction counts times this.
const BytesPerInstr = 4

// CallOverhead is the fixed cycle cost charged for a call: linkage,
// prologue, and epilogue on the simulated machine.
const CallOverhead uint64 = 8

// TakenBranchExtra is the extra cycle a taken branch costs (the
// "taken +1" of the DESIGN.md cycle model); the simulator adds it on
// top of Cycles(OpBr/OpBrIf) when the branch actually redirects.
const TakenBranchExtra uint64 = 1

// Cycles returns the cycle cost of executing op once, per the cycle
// model in DESIGN.md §4: integer ALU 1, load/store 2, FP add-class 2,
// FP multiply 4, FP divide and the long intrinsics 17, branch 1 (+1
// taken, charged by the simulator), call CallOverhead.
func Cycles(op ir.Op) uint64 {
	switch op {
	case ir.OpLoad, ir.OpStore, ir.OpSpillLoad, ir.OpSpillStore:
		return 2
	case ir.OpFAdd, ir.OpFSub, ir.OpFNeg, ir.OpFMin, ir.OpFMax,
		ir.OpFAbs, ir.OpFSign, ir.OpItoF, ir.OpFtoI:
		return 2
	case ir.OpFMul:
		return 4
	case ir.OpFDiv, ir.OpFSqrt, ir.OpFExp, ir.OpFLog, ir.OpFSin,
		ir.OpFCos, ir.OpFMod, ir.OpFPow:
		return 17
	case ir.OpCall:
		return CallOverhead
	default:
		// Integer ALU, moves, constants, branches, returns: 1.
		return 1
	}
}
