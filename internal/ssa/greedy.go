package ssa

import (
	"fmt"

	"regalloc/internal/color"
)

// Color greedily assigns each definition, in dominance order, the
// lowest color unused by its already-colored interference
// neighbors. Dominance order is the reverse of a perfect elimination
// order of the chordal SSA interference graph, so this is optimal:
// it uses exactly MAXLIVE colors per class, and after pre-spilling
// (MAXLIVE ≤ K) it cannot fail. Registers that are never defined
// (pre-rename husks) keep color.NoColor; no instruction mentions
// them.
func Color(s *Func, a *Analysis, k color.K) ([]int16, error) {
	f := s.F
	colors := make([]int16, f.NumRegs())
	for i := range colors {
		colors[i] = color.NoColor
	}
	var used []bool
	for _, r := range a.Order {
		kn := k(f.RegClass(r))
		if cap(used) < kn {
			used = make([]bool, kn)
		}
		used = used[:kn]
		for i := range used {
			used[i] = false
		}
		for _, nb := range a.G.Neighbors(int32(r)) {
			if c := colors[nb]; c != color.NoColor && int(c) < kn {
				used[c] = true
			}
		}
		c := color.NoColor
		for j := 0; j < kn; j++ {
			if !used[j] {
				c = int16(j)
				break
			}
		}
		if c == color.NoColor {
			return nil, fmt.Errorf("ssa: %s: v%d found no free color among %d %s registers after pre-spilling",
				f.Name, r, kn, f.RegClass(r))
		}
		colors[r] = c
	}
	return colors, nil
}
