package graphgen_test

import (
	"bytes"
	"strings"
	"testing"

	"regalloc/internal/graphgen"
)

// FuzzReadGraph hammers the .ig parser with arbitrary text: it must
// never panic, and whatever it accepts must satisfy the format's
// invariants and survive a write/read round trip with an identical
// shape.
func FuzzReadGraph(f *testing.F) {
	f.Add("n 3\ne 0 1\nc 1 2.5\n")
	f.Add("# comment\n\nn 2\ne 1 0\n")
	f.Add("n 0\n")
	f.Add("n 4\ne 0 1\ne 2 3\nc 0 0.5\nc 3 100\n")
	f.Add("n 2\ne 0 0\n")
	f.Add("e 0 1\n")
	f.Add("n 2\ne 0 1\ne 0 1\n")
	f.Add("n 1\nc 0 -3\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, costs, err := graphgen.ReadGraph(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics and bad accepts are not
		}
		if len(costs) != g.NumNodes() {
			t.Fatalf("%d costs for %d nodes", len(costs), g.NumNodes())
		}
		for i, c := range costs {
			if !(c >= 0) {
				t.Fatalf("accepted negative or NaN cost %g at node %d", c, i)
			}
		}
		var buf bytes.Buffer
		if err := graphgen.WriteGraph(&buf, g, costs); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, costs2, err := graphgen.ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip rejected our own output: %v\n%q", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v -> %v", g, g2)
		}
		for a := int32(0); a < int32(g.NumNodes()); a++ {
			for _, b := range g.Neighbors(a) {
				if !g2.Interfere(a, b) {
					t.Fatalf("round trip lost edge %d-%d", a, b)
				}
			}
		}
		for i := range costs {
			if costs[i] != costs2[i] {
				t.Fatalf("round trip changed cost[%d]: %g -> %g", i, costs[i], costs2[i])
			}
		}
	})
}
