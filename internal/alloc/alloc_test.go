package alloc_test

import (
	"strings"
	"testing"

	"regalloc/internal/alloc"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

const pressureSrc = `
      SUBROUTINE HOT(A,B,N)
      REAL A(*),B(*)
      REAL T1,T2,T3,T4,T5,T6,T7,T8,T9,TA,TB,TC
      INTEGER I,N
      T1 = A(1)
      T2 = A(2)
      T3 = A(3)
      T4 = A(4)
      T5 = A(5)
      T6 = A(6)
      T7 = A(7)
      T8 = A(8)
      T9 = A(9)
      TA = A(10)
      TB = A(11)
      TC = A(12)
      DO I = 1,N
         B(I) = T1 + T2*T3 + T4*T5 + T6*T7 + T8*T9 + TA*TB + TC
      ENDDO
      B(1) = T1 + T2 + T3 + T4 + T5 + T6 + T7 + T8 + T9 + TA + TB + TC
      RETURN
      END
`

func TestAllocatesCleanly(t *testing.T) {
	prog := compile(t, pressureSrc)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		opt := alloc.DefaultOptions()
		opt.Heuristic = h
		res, err := alloc.Run(prog.Func("HOT"), opt)
		if err != nil {
			// Matula–Beck is the paper's cost-blind comparator
			// (§2.3: such an allocator "would produce arbitrary
			// allocations — possibly terrible"); under pressure its
			// ordering may strand a spill temporary, which the
			// driver reports rather than looping. That is expected.
			if h == color.MatulaBeck && strings.Contains(err.Error(), "spill temporary") {
				continue
			}
			t.Fatalf("%s: %v", h, err)
		}
		// Every register colored, within its class bound.
		for r := 0; r < res.Func.NumRegs(); r++ {
			c := res.Colors[r]
			if c < 0 {
				t.Fatalf("%s: register %d uncolored", h, r)
			}
			k := opt.KInt
			if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat {
				k = opt.KFloat
			}
			if int(c) >= k {
				t.Fatalf("%s: color %d out of range", h, c)
			}
		}
	}
}

func TestPressureForcesSpills(t *testing.T) {
	prog := compile(t, pressureSrc)
	opt := alloc.DefaultOptions()
	opt.KFloat = 4 // 12 long-lived floats cannot fit in 4 registers
	res, err := alloc.Run(prog.Func("HOT"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilled() == 0 {
		t.Fatal("expected spills with 4 float registers")
	}
	if res.Passes[len(res.Passes)-1].Spilled != 0 {
		t.Fatal("final pass must be spill-free")
	}
	if res.FirstPassSpilled() != res.Passes[0].Spilled {
		t.Fatal("FirstPassSpilled accessor inconsistent")
	}
	if res.FirstPassSpillCost() <= 0 || res.TotalSpillCost() < res.FirstPassSpillCost() {
		t.Fatal("spill cost accounting inconsistent")
	}
	if res.LiveRanges() != res.Passes[0].LiveRanges {
		t.Fatal("LiveRanges accessor inconsistent")
	}
	if res.TotalTime() <= 0 {
		t.Fatal("phase times not recorded")
	}
}

func TestOriginalFunctionUntouched(t *testing.T) {
	prog := compile(t, pressureSrc)
	f := prog.Func("HOT")
	before := f.NumRegs()
	beforeInstrs := f.NumInstrs()
	opt := alloc.DefaultOptions()
	opt.KFloat = 4
	if _, err := alloc.Run(f, opt); err != nil {
		t.Fatal(err)
	}
	if f.NumRegs() != before || f.NumInstrs() != beforeInstrs {
		t.Fatal("alloc.Run mutated its input function")
	}
}

func TestBriggsNeverWorseEndToEnd(t *testing.T) {
	prog := compile(t, pressureSrc)
	for _, kf := range []int{3, 4, 5, 6, 8} {
		optC := alloc.DefaultOptions()
		optC.Heuristic = color.Chaitin
		optC.KFloat = kf
		cRes, err := alloc.Run(prog.Func("HOT"), optC)
		if err != nil {
			t.Fatalf("kf=%d chaitin: %v", kf, err)
		}
		optB := optC
		optB.Heuristic = color.Briggs
		bRes, err := alloc.Run(prog.Func("HOT"), optB)
		if err != nil {
			t.Fatalf("kf=%d briggs: %v", kf, err)
		}
		if bRes.FirstPassSpilled() > cRes.FirstPassSpilled() {
			t.Errorf("kf=%d: briggs first-pass spills %d > chaitin %d",
				kf, bRes.FirstPassSpilled(), cRes.FirstPassSpilled())
		}
	}
}

func TestTooFewRegistersFails(t *testing.T) {
	prog := compile(t, pressureSrc)
	opt := alloc.DefaultOptions()
	opt.KInt = 0
	if _, err := alloc.Run(prog.Func("HOT"), opt); err == nil {
		t.Fatal("expected an error with zero registers")
	}
	opt = alloc.DefaultOptions()
	opt.KFloat = 1 // an fadd of two distinct values cannot fit
	_, err := alloc.Run(prog.Func("HOT"), opt)
	if err == nil {
		t.Fatal("expected an error with one float register")
	}
	if !strings.Contains(err.Error(), "cannot hold one instruction") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestCoalesceOption(t *testing.T) {
	prog := compile(t, pressureSrc)
	on := alloc.DefaultOptions()
	off := alloc.DefaultOptions()
	off.Coalesce = false
	resOn, err := alloc.Run(prog.Func("HOT"), on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := alloc.Run(prog.Func("HOT"), off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Passes[0].CoalescedMoves == 0 {
		t.Fatal("coalescing found nothing in copy-heavy code")
	}
	if resOff.Passes[0].CoalescedMoves != 0 {
		t.Fatal("coalescing ran while disabled")
	}
	// Coalescing removes copies: fewer instructions in the final
	// function.
	if resOn.Func.NumInstrs() >= resOff.Func.NumInstrs() {
		t.Fatal("coalescing did not shrink the code")
	}
}

func TestMetricsConverge(t *testing.T) {
	prog := compile(t, pressureSrc)
	for _, m := range []color.Metric{color.CostOverDegree, color.CostOnly, color.DegreeOnly} {
		opt := alloc.DefaultOptions()
		opt.KFloat = 4
		opt.Metric = m
		if _, err := alloc.Run(prog.Func("HOT"), opt); err != nil {
			t.Fatalf("metric %d: %v", m, err)
		}
	}
}

func TestChaitinSkipsColorOnSpillPass(t *testing.T) {
	prog := compile(t, pressureSrc)
	opt := alloc.DefaultOptions()
	opt.Heuristic = color.Chaitin
	opt.KFloat = 4
	res, err := alloc.Run(prog.Func("HOT"), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Passes {
		last := i == len(res.Passes)-1
		if !last && p.Spilled > 0 && p.Color != 0 {
			t.Fatal("Chaitin must not run the color phase on a spilling pass")
		}
		if last && p.Color == 0 {
			t.Fatal("final pass must include coloring")
		}
	}
}

// TestRematerializeOption: with Chaitin's never-killed refinement
// enabled, constant-valued ranges spill without stores or slots, and
// the allocation still verifies.
func TestRematerializeOption(t *testing.T) {
	// Force pressure among long-lived float constants.
	src := `
      SUBROUTINE KONST(A,N)
      REAL A(*)
      REAL C1,C2,C3,C4,C5,C6
      INTEGER I,N
      C1 = 1.5
      C2 = 2.5
      C3 = 3.5
      C4 = 4.5
      C5 = 5.5
      C6 = 6.5
      DO I = 1,N
         A(I) = A(I)*C1 + C2 + A(I)*C3 + C4 + A(I)*C5 + C6
      ENDDO
      RETURN
      END
`
	prog := compile(t, src)
	opt := alloc.DefaultOptions()
	opt.KFloat = 3
	opt.Rematerialize = true
	res, err := alloc.Run(prog.Func("KONST"), opt)
	if err != nil {
		t.Fatal(err)
	}
	remats := 0
	for _, p := range res.Passes {
		remats += p.Remats
	}
	if remats == 0 {
		t.Fatal("no constant recomputations under pressure")
	}
	// Compare against the non-remat run: remat must not spill a more
	// expensive set (it only cheapens candidates).
	optOff := opt
	optOff.Rematerialize = false
	resOff, err := alloc.Run(prog.Func("KONST"), optOff)
	if err != nil {
		t.Fatal(err)
	}
	if res.Func.NumSlots > resOff.Func.NumSlots {
		t.Fatalf("remat used more memory slots (%d > %d)", res.Func.NumSlots, resOff.Func.NumSlots)
	}
}

// TestVerifyAssignment: the independent (liveness-based) checker
// passes every real allocation and catches a manufactured clash.
func TestVerifyAssignment(t *testing.T) {
	prog := compile(t, pressureSrc)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs} {
		for _, kf := range []int{3, 4, 8} {
			opt := alloc.DefaultOptions()
			opt.Heuristic = h
			opt.KFloat = kf
			res, err := alloc.Run(prog.Func("HOT"), opt)
			if err != nil {
				t.Fatalf("%s kf=%d: %v", h, kf, err)
			}
			if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
				t.Fatalf("%s kf=%d: %v", h, kf, err)
			}
			// Corrupt the assignment: force two simultaneously-live
			// float ranges into one register and expect a complaint.
			bad := append([]int16(nil), res.Colors...)
			clobbered := false
			for r := 0; r < res.Func.NumRegs() && !clobbered; r++ {
				if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat && bad[r] != 0 {
					bad[r] = 0
					if alloc.VerifyAssignment(res.Func, bad) != nil {
						clobbered = true
					}
					bad[r] = res.Colors[r]
				}
			}
			if !clobbered {
				t.Fatalf("%s kf=%d: no corruption detected by the verifier", h, kf)
			}
		}
	}
}
