package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// jsonEvent is the wire form of an Event: flat, lower-case keys,
// optional fields omitted, duration in nanoseconds.
type jsonEvent struct {
	TS     string  `json:"ts"`
	Kind   string  `json:"kind"`
	Unit   string  `json:"unit,omitempty"`
	Pass   int     `json:"pass"`
	Phase  string  `json:"phase,omitempty"`
	DurNS  int64   `json:"dur_ns,omitempty"`
	Name   string  `json:"name,omitempty"`
	Value  int64   `json:"value,omitempty"`
	Node   int32   `json:"node,omitempty"`
	Degree int32   `json:"degree,omitempty"`
	Cost   float64 `json:"cost,omitempty"`
	Metric float64 `json:"metric,omitempty"`
	Color  int16   `json:"color,omitempty"`
	InUse  int     `json:"in_use_colors,omitempty"`
}

// JSONSink writes one JSON object per event per line — the trace
// format behind cmd/regalloc -trace and cmd/bench -trace. It is safe
// for concurrent use.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONSink returns a JSONSink writing to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit writes e as one JSON line.
func (s *JSONSink) Emit(e Event) {
	je := jsonEvent{
		TS:   e.Time.Format(time.RFC3339Nano),
		Kind: e.Kind.String(),
		Unit: e.Unit,
		Pass: e.Pass,
	}
	switch e.Kind {
	case KindSpanBegin:
		je.Phase = e.Phase.String()
	case KindSpanEnd:
		je.Phase = e.Phase.String()
		je.DurNS = e.Dur.Nanoseconds()
	case KindCounter:
		je.Phase = e.Phase.String()
		je.Name = e.Name
		je.Value = e.Value
	case KindSpillDecision:
		je.Phase = e.Phase.String()
		je.Node = e.Node
		je.Degree = e.Degree
		je.Cost = e.Cost
		je.Metric = e.Metric
	case KindColorReuse:
		je.Phase = e.Phase.String()
		je.Node = e.Node
		je.Degree = e.Degree
		je.Color = e.Color
		je.InUse = e.InUseColors
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Tracing stays best-effort per event (the allocator never stops
	// for a sick trace file), but the first failure is remembered so
	// the CLI can exit nonzero instead of shipping a silently
	// truncated trace.
	if err := s.enc.Encode(je); err != nil && s.err == nil {
		s.err = err
	}
}

// Err returns the first write error Emit encountered, if any. A
// trace consumer should check it after the run: ENOSPC and friends
// often surface mid-stream, not at file close.
func (s *JSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TextSink writes one human-readable line per event. It is safe for
// concurrent use.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes e as a log line.
func (s *TextSink) Emit(e Event) {
	var detail string
	switch e.Kind {
	case KindSpanBegin:
		detail = fmt.Sprintf("phase=%s", e.Phase)
	case KindSpanEnd:
		detail = fmt.Sprintf("phase=%s dur=%s", e.Phase, e.Dur)
	case KindCounter:
		detail = fmt.Sprintf("phase=%s %s=%d", e.Phase, e.Name, e.Value)
	case KindSpillDecision:
		detail = fmt.Sprintf("node=%d degree=%d cost=%g metric=%g", e.Node, e.Degree, e.Cost, e.Metric)
	case KindColorReuse:
		detail = fmt.Sprintf("node=%d degree=%d in_use=%d color=%d", e.Node, e.Degree, e.InUseColors, e.Color)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "[%s pass=%d] %s %s\n", e.Unit, e.Pass, e.Kind, detail)
}

// histBuckets are decade upper bounds for phase-duration histograms,
// from 1µs to 1s; a final implicit bucket catches the rest.
var histBuckets = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// Histogram aggregates durations into decade buckets.
type Histogram struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Buckets [len(histBuckets) + 1]int64 // Buckets[i]: d <= histBuckets[i]; last: larger
}

func (h *Histogram) observe(d time.Duration) {
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	for i, ub := range histBuckets {
		if d <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(histBuckets)]++
}

// Mean returns the average observed duration.
func (h Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// MetricsSink aggregates the event stream in process: counter totals
// keyed "phase/name", per-phase duration histograms, spill-decision
// totals, and color-reuse totals. It is safe for concurrent use.
type MetricsSink struct {
	mu        sync.Mutex
	counters  map[string]int64
	durations [NumPhases]Histogram
	spills    int64
	spillCost float64
	reuses    int64
}

// NewMetricsSink returns an empty MetricsSink.
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{counters: make(map[string]int64)}
}

// Emit folds e into the aggregates.
func (s *MetricsSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case KindSpanEnd:
		if int(e.Phase) < NumPhases {
			s.durations[e.Phase].observe(e.Dur)
		}
	case KindCounter:
		s.counters[e.Phase.String()+"/"+e.Name] += e.Value
	case KindSpillDecision:
		s.spills++
		s.spillCost += e.Cost
	case KindColorReuse:
		s.reuses++
	}
}

// Metrics is a point-in-time copy of a MetricsSink's aggregates.
type Metrics struct {
	Counters       map[string]int64     // "phase/name" -> summed value
	Durations      map[string]Histogram // phase name -> histogram
	SpillDecisions int64                // simplify stuck-choices observed
	SpillCost      float64              // summed cost of those choices
	ColorReuses    int64                // optimistic wins observed
}

// Snapshot returns a consistent copy of the current aggregates.
func (s *MetricsSink) Snapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Counters:       make(map[string]int64, len(s.counters)),
		Durations:      make(map[string]Histogram, NumPhases),
		SpillDecisions: s.spills,
		SpillCost:      s.spillCost,
		ColorReuses:    s.reuses,
	}
	for k, v := range s.counters {
		m.Counters[k] = v
	}
	for p := 0; p < NumPhases; p++ {
		if s.durations[p].Count > 0 {
			m.Durations[Phase(p).String()] = s.durations[p]
		}
	}
	return m
}

// String renders the aggregates as a summary table.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase durations:\n")
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		h, ok := m.Durations[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-9s spans %5d  total %12s  mean %10s  max %10s\n",
			name, h.Count, h.Sum, h.Mean(), h.Max)
	}
	keys := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-28s %12d\n", k, m.Counters[k])
		}
	}
	fmt.Fprintf(&b, "spill decisions: %d (summed cost %.0f)\n", m.SpillDecisions, m.SpillCost)
	fmt.Fprintf(&b, "optimistic color reuses: %d\n", m.ColorReuses)
	return b.String()
}
