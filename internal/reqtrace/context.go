package reqtrace

import "context"

// scope is what a context carries: the trace plus the span the
// carrier is nested under (the parent for spans recorded downstream).
type scope struct {
	t      *Trace
	parent uint32
}

type scopeKey struct{}

// ContextWith returns ctx carrying t with parent as the enclosing
// span. A nil t returns ctx unchanged, keeping the untraced path free
// of context allocation.
func ContextWith(ctx context.Context, t *Trace, parent uint32) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope{t: t, parent: parent})
}

// FromContext extracts the trace and enclosing span ID, or (nil, 0)
// when ctx carries none — the single lookup instrumentation sites pay
// on the untraced path.
func FromContext(ctx context.Context) (*Trace, uint32) {
	if s, ok := ctx.Value(scopeKey{}).(scope); ok {
		return s.t, s.parent
	}
	return nil, 0
}
