package experiments

import (
	"fmt"
	"strings"
	"time"

	"regalloc"
	"regalloc/internal/workloads"
)

// Fig7Routine holds both heuristics' per-pass phase times for one
// routine.
type Fig7Routine struct {
	Name string
	Old  *regalloc.Result
	New  *regalloc.Result
}

// Figure7Result is the phase-time table for the paper's four large
// routines.
type Figure7Result struct {
	Routines []Fig7Routine
}

// Figure7 regenerates the paper's Figure 7: per-pass CPU time spent
// in the Build, Simplify, Color, and Spill phases for DQRDC, SVD,
// GRADNT, and HSSIAN under both heuristics, with the per-pass
// spilled-register counts the paper shows in parentheses.
// Times are wall-clock on the host (the paper used a 60 Hz clock on
// its hardware; the *ratios* — simplify and color tiny next to
// build, the optimistic color phase nearly free — are the claims).
func Figure7() (*Figure7Result, error) {
	out := &Figure7Result{}
	type src struct{ program, routine string }
	wanted := []src{
		{"CEDETA", "DQRDC"},
		{"SVD", "SVD"},
		{"CEDETA", "GRADNT"},
		{"CEDETA", "HSSIAN"},
	}
	compiled := make(map[string]*regalloc.Program)
	for _, w := range workloads.All() {
		if w.Program == "CEDETA" || w.Program == "SVD" {
			p, err := regalloc.Compile(w.Source)
			if err != nil {
				return nil, fmt.Errorf("figure7: compile %s: %w", w.Program, err)
			}
			compiled[w.Program] = p
		}
	}
	for _, s := range wanted {
		prog := compiled[s.program]
		oldOpt := defaultOptions()
		oldOpt.Heuristic = regalloc.Chaitin
		oldRes, err := prog.Allocate(s.routine, oldOpt)
		if err != nil {
			return nil, fmt.Errorf("figure7: %s chaitin: %w", s.routine, err)
		}
		newOpt := defaultOptions()
		newOpt.Heuristic = regalloc.Briggs
		newRes, err := prog.Allocate(s.routine, newOpt)
		if err != nil {
			return nil, fmt.Errorf("figure7: %s briggs: %w", s.routine, err)
		}
		out.Routines = append(out.Routines, Fig7Routine{Name: s.routine, Old: oldRes, New: newRes})
	}
	return out, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// String renders the per-pass phase table (times in milliseconds).
func (r *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("CPU time for allocator phases (milliseconds; (n) = registers spilled)\n\n")
	fmt.Fprintf(&b, "%-10s", "Phase")
	for _, rt := range r.Routines {
		fmt.Fprintf(&b, " | %10s %10s", rt.Name+"/Old", "New")
	}
	b.WriteString("\n" + strings.Repeat("-", 10+len(r.Routines)*25) + "\n")

	maxPasses := 0
	for _, rt := range r.Routines {
		if len(rt.Old.Passes) > maxPasses {
			maxPasses = len(rt.Old.Passes)
		}
		if len(rt.New.Passes) > maxPasses {
			maxPasses = len(rt.New.Passes)
		}
	}
	phase := func(get func(p int, res *regalloc.Result) string, label string, p int) {
		fmt.Fprintf(&b, "%-10s", label)
		for _, rt := range r.Routines {
			fmt.Fprintf(&b, " | %10s %10s", get(p, rt.Old), get(p, rt.New))
		}
		b.WriteString("\n")
	}
	for p := 0; p < maxPasses; p++ {
		phase(func(p int, res *regalloc.Result) string {
			if p >= len(res.Passes) {
				return ""
			}
			return ms(res.Passes[p].Build)
		}, "Build", p)
		phase(func(p int, res *regalloc.Result) string {
			if p >= len(res.Passes) {
				return ""
			}
			return ms(res.Passes[p].Simplify)
		}, "Simplify", p)
		phase(func(p int, res *regalloc.Result) string {
			if p >= len(res.Passes) {
				return ""
			}
			if res.Passes[p].Color == 0 && res.Passes[p].Spilled > 0 && res.Options.Heuristic == regalloc.Chaitin {
				return "" // Chaitin skips coloring on spilling passes
			}
			return ms(res.Passes[p].Color)
		}, "Color", p)
		phase(func(p int, res *regalloc.Result) string {
			if p >= len(res.Passes) {
				return ""
			}
			if res.Passes[p].Spilled == 0 {
				return ""
			}
			return fmt.Sprintf("(%d) %s", res.Passes[p].Spilled, ms(res.Passes[p].Spill))
		}, "Spill", p)
	}
	fmt.Fprintf(&b, "%-10s", "Total")
	for _, rt := range r.Routines {
		fmt.Fprintf(&b, " | %10s %10s", ms(rt.Old.TotalTime()), ms(rt.New.TotalTime()))
	}
	b.WriteString("\n")
	return b.String()
}
