package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regalloc"
	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/obs/promtext"
	"regalloc/internal/pcolor"
	"regalloc/internal/portfolio"
)

// server is the allocd state: the run registry and live-event
// aggregate behind /metrics, plus the admission semaphore bounding
// concurrent /alloc work. Handlers are safe for concurrent use.
type server struct {
	reg     *obs.Registry
	metrics *obs.MetricsSink
	sem     chan struct{} // admission: one slot per in-flight /alloc
	ready   atomic.Bool
	started time.Time

	// allocTimeout, when > 0, caps each /alloc request wall-clock
	// (queueing for admission included). Expiry surfaces through the
	// ordinary context-cancellation paths, so the client sees 503.
	allocTimeout time.Duration
}

func newServer(maxInflight int) *server {
	if maxInflight < 1 {
		maxInflight = 1
	}
	s := &server{
		reg:     obs.NewRegistry(),
		metrics: obs.NewMetricsSink(),
		sem:     make(chan struct{}, maxInflight),
		started: time.Now(),
	}
	s.ready.Store(true)
	return s
}

// routes mounts the full handler set on a fresh mux. pprof is
// mounted explicitly (rather than via the package's DefaultServeMux
// side effect) so the service owns every route it serves.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alloc", s.handleAlloc)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// beginShutdown flips readiness off so load balancers drain the
// instance before Shutdown closes the listener.
func (s *server) beginShutdown() { s.ready.Store(false) }

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics renders both metric families. The two snapshots are
// taken one after the other, not atomically, so a single scrape can
// catch a run in one family but not yet the other; the skew is one
// in-flight request and self-corrects by the next scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := promtext.Write(w, s.reg.Snapshot()); err != nil {
		return // client went away; nothing sensible to do
	}
	if err := promtext.WriteMetrics(w, s.metrics.Snapshot()); err != nil {
		return
	}
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(w, "# HELP allocd_inflight_requests Allocation requests currently admitted.\n# TYPE allocd_inflight_requests gauge\nallocd_inflight_requests %d\n", len(s.sem))
	fmt.Fprintf(w, "# HELP allocd_ready Whether the instance is accepting traffic.\n# TYPE allocd_ready gauge\nallocd_ready %d\n", ready)
	fmt.Fprintf(w, "# HELP allocd_uptime_seconds Seconds since the service started.\n# TYPE allocd_uptime_seconds gauge\nallocd_uptime_seconds %d\n", int64(time.Since(s.started).Seconds()))
}

// httpError is the JSON error envelope every failure returns.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds the request body: mini-FORTRAN sources and .ig
// graphs are small; anything larger is a mistake or abuse.
const maxBodyBytes = 8 << 20

// igFirstLine recognizes a .ig graph body by its mandatory leading
// node-count directive.
var igFirstLine = regexp.MustCompile(`^n\s+\d+`)

func (s *server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a mini-FORTRAN source or .ig graph body")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		// Only an actual size overflow is 413; other read failures
		// (disconnects, transport errors) are the client's 400.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		} else {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		httpError(w, http.StatusBadRequest, "empty body: POST a mini-FORTRAN source or .ig graph")
		return
	}

	// Per-request deadline (-alloc-timeout): layered under the
	// client's own context so whichever expires first cancels the
	// work, and both surface as the same 503.
	if s.allocTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.allocTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	// Admission: one semaphore slot per in-flight allocation, so a
	// burst queues instead of oversubscribing the host (each request
	// may itself fan out opt.Workers goroutines). A client that gives
	// up while queued is released by its request context. The slot is
	// released through a once-guarded closure because the portfolio
	// path hands it back early: there each racing candidate is
	// admitted against the same semaphore individually, and holding
	// the request's own slot across the race would deadlock at
	// -max-inflight=1.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", r.Context().Err())
		return
	}
	release := sync.OnceFunc(func() { <-s.sem })
	defer release()

	input := r.URL.Query().Get("input")
	if input == "" {
		if igFirstLine.MatchString(strings.TrimSpace(string(body))) {
			input = "ig"
		} else {
			input = "src"
		}
	}
	switch input {
	case "src":
		s.allocSource(w, r, string(body), release)
	case "ig":
		s.allocGraph(w, r, body)
	default:
		httpError(w, http.StatusBadRequest, "unknown input kind %q (want src or ig)", input)
	}
}

// optionsFromQuery builds an alloc Options from query parameters,
// mirroring the library's Options field by field. Unset parameters
// keep the paper's defaults.
func optionsFromQuery(q map[string][]string) (regalloc.Options, error) {
	opt := regalloc.DefaultOptions()
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var err error
	if v := get("heuristic"); v != "" {
		opt.Heuristic, err = color.ParseHeuristic(v)
		if err != nil {
			return opt, err
		}
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"kint", &opt.KInt}, {"kfloat", &opt.KFloat}, {"workers", &opt.Workers}, {"maxpasses", &opt.MaxPasses}} {
		if v := get(p.name); v != "" {
			*p.dst, err = strconv.Atoi(v)
			if err != nil {
				return opt, fmt.Errorf("%s: %v", p.name, err)
			}
		}
	}
	for _, p := range []struct {
		name string
		dst  *bool
	}{{"coalesce", &opt.Coalesce}, {"conservative", &opt.ConservativeCoalesce}, {"remat", &opt.Rematerialize}, {"split", &opt.Split}} {
		if v := get(p.name); v != "" {
			*p.dst, err = strconv.ParseBool(v)
			if err != nil {
				return opt, fmt.Errorf("%s: %v", p.name, err)
			}
		}
	}
	if v := get("metric"); v != "" {
		opt.Metric, err = parseMetric(v)
		if err != nil {
			return opt, err
		}
	}
	return opt, nil
}

func parseMetric(s string) (color.Metric, error) {
	switch s {
	case "costdegree", "cost/degree", "cost-over-degree":
		return color.CostOverDegree, nil
	case "cost":
		return color.CostOnly, nil
	case "degree":
		return color.DegreeOnly, nil
	}
	return 0, fmt.Errorf("unknown metric %q (want costdegree, cost, or degree)", s)
}

// unitResponse is one routine's allocation in the /alloc reply.
type unitResponse struct {
	Unit         string           `json:"unit"`
	LiveRanges   int              `json:"live_ranges"`
	Edges        int              `json:"edges"`
	Passes       int              `json:"passes"`
	Spilled      int              `json:"spilled"`
	SpillCost    float64          `json:"spill_cost"`
	PaletteInt   int              `json:"palette_int"`
	PaletteFloat int              `json:"palette_float"`
	TotalNS      int64            `json:"total_ns"`
	PhaseNS      map[string]int64 `json:"phase_ns"`
	Colors       []int16          `json:"colors,omitempty"`

	// Portfolio carries the race report when ?portfolio= raced this
	// unit; the flat fields above then describe the winner.
	Portfolio *portfolioResponse `json:"portfolio,omitempty"`
}

// portfolioResponse is one unit's race report in the /alloc reply.
type portfolioResponse struct {
	Mode       string                       `json:"mode"`
	Winner     string                       `json:"winner"`
	WinMargin  float64                      `json:"win_margin"`
	Candidates []portfolioCandidateResponse `json:"candidates"`
}

// portfolioCandidateResponse is one strategy's outcome in a race.
type portfolioCandidateResponse struct {
	Name      string  `json:"name"`
	Status    string  `json:"status"`
	Spills    int     `json:"spills"`
	SpillCost float64 `json:"spill_cost"`
	NS        int64   `json:"ns"`
	Error     string  `json:"error,omitempty"`
}

type allocResponse struct {
	Input        string         `json:"input"`
	Units        []unitResponse `json:"units"`
	SpilledTotal int            `json:"spilled_total"`
	SpillCost    float64        `json:"spill_cost_total"`
	TotalNS      int64          `json:"total_ns"`
}

// allocSource compiles a mini-FORTRAN body and allocates its
// routines (all of them, or just ?unit=NAME) on the bounded worker
// pool, recording one RunSummary per routine. With ?portfolio= it
// races the strategy portfolio per routine instead; release is the
// once-guarded return of the request's own admission slot, which the
// portfolio path hands back early (see handleAlloc).
func (s *server) allocSource(w http.ResponseWriter, r *http.Request, src string, release func()) {
	opt, err := optionsFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	opt.Observer = s.metrics
	if err := opt.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	prog, err := regalloc.Compile(src)
	if err != nil {
		s.reg.Record(obs.RunSummary{Unit: "(compile)", Error: true})
		httpError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}

	spec := r.URL.Query().Get("portfolio")
	if v, err := strconv.ParseBool(spec); err == nil {
		if !v {
			spec = "" // portfolio=0: the plain single-strategy path
		} else {
			spec = "all" // truthy flag: full default candidate set
		}
	}
	if spec != "" {
		s.allocPortfolio(w, r, prog, opt, spec, release)
		return
	}

	wantUnit := r.URL.Query().Get("unit")
	var results map[string]*regalloc.Result
	if wantUnit != "" {
		res, err := prog.Allocate(wantUnit, opt)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: wantUnit, Error: true})
			httpError(w, http.StatusBadRequest, "allocate %s: %v", wantUnit, err)
			return
		}
		results = map[string]*regalloc.Result{wantUnit: res}
	} else {
		results, err = prog.AllocateAllContext(r.Context(), opt)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: "(program)", Error: true})
			// A cancellation or deadline is not a client input error;
			// answer 503 like the queued-cancellation path above.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				httpError(w, http.StatusServiceUnavailable, "allocate: %v", err)
			} else {
				httpError(w, http.StatusBadRequest, "allocate: %v", err)
			}
			return
		}
	}

	includeColors := boolParam(r, "colors")
	resp := allocResponse{Input: "src"}
	for _, name := range prog.Functions() {
		res, ok := results[name]
		if !ok {
			continue
		}
		sum := regalloc.Summarize(name, res)
		s.reg.Record(sum)
		u := unitResponse{
			Unit:         name,
			LiveRanges:   sum.LiveRanges,
			Edges:        sum.Edges,
			Passes:       sum.Passes,
			Spilled:      sum.Spills,
			SpillCost:    float64(sum.SpillCostMilli) / 1000,
			PaletteInt:   sum.PaletteInt,
			PaletteFloat: sum.PaletteFloat,
			TotalNS:      sum.TotalNS,
			PhaseNS:      phaseNSMap(sum),
		}
		if includeColors {
			u.Colors = res.Colors
		}
		resp.Units = append(resp.Units, u)
		resp.SpilledTotal += sum.Spills
		resp.SpillCost += float64(sum.SpillCostMilli) / 1000
		resp.TotalNS += sum.TotalNS
	}
	writeJSON(w, resp)
}

// allocPortfolio races the strategy portfolio for each requested
// routine and replies with the winner plus the full race report. spec
// is "all" or a comma-separated candidate-name subset; ?pmode=,
// ?pbudget=, and ?pseeds= tune the race. The request's own admission
// slot is handed back up front and each racing candidate acquires its
// own instead, so a race counts against -max-inflight exactly as many
// slots as it has strategies in flight — and cannot deadlock at
// -max-inflight=1.
func (s *server) allocPortfolio(w http.ResponseWriter, r *http.Request, prog *regalloc.Program, opt regalloc.Options, spec string, release func()) {
	q := r.URL.Query()
	seeds := portfolio.DefaultSeeds
	if v := q.Get("pseeds"); v != "" {
		seeds = nil
		for _, f := range strings.Split(v, ",") {
			seed, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "pseeds: %v", err)
				return
			}
			seeds = append(seeds, seed)
		}
	}
	cands := regalloc.DefaultPortfolio(opt, seeds...)
	if spec != "all" {
		byName := make(map[string]regalloc.PortfolioCandidate, len(cands))
		names := make([]string, 0, len(cands))
		for _, c := range cands {
			byName[c.Name] = c
			names = append(names, c.Name)
		}
		var picked []regalloc.PortfolioCandidate
		for _, f := range strings.Split(spec, ",") {
			name := strings.TrimSpace(f)
			c, ok := byName[name]
			if !ok {
				httpError(w, http.StatusBadRequest, "portfolio: unknown candidate %q (have %s)", name, strings.Join(names, ", "))
				return
			}
			picked = append(picked, c)
		}
		cands = picked
	}

	cfg := regalloc.PortfolioConfig{Observer: s.metrics}
	var err error
	if v := q.Get("pmode"); v != "" {
		if cfg.Mode, err = portfolio.ParseMode(v); err != nil {
			httpError(w, http.StatusBadRequest, "pmode: %v", err)
			return
		}
	}
	if v := q.Get("pbudget"); v != "" {
		if cfg.Budget, err = time.ParseDuration(v); err != nil {
			httpError(w, http.StatusBadRequest, "pbudget: %v", err)
			return
		}
	}
	// Per-candidate admission against the service semaphore: a
	// candidate queued for a slot gives up when the request context
	// (or the race budget) is done, which cancels that candidate, not
	// the race.
	cfg.Acquire = func(ctx context.Context) error {
		select {
		case s.sem <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	cfg.Release = func() { <-s.sem }
	release()

	units := prog.Functions()
	if wantUnit := q.Get("unit"); wantUnit != "" {
		units = []string{wantUnit}
	}
	includeColors := boolParam(r, "colors")
	resp := allocResponse{Input: "src"}
	for _, name := range units {
		pr, err := prog.AllocatePortfolio(r.Context(), name, cands, cfg)
		if err != nil {
			s.reg.Record(obs.RunSummary{Unit: name, Error: true})
			// A race that died to the deadline or a client disconnect
			// is the service's 503, like every other cancellation; a
			// bad unit name or candidate set is the client's 400.
			if r.Context().Err() != nil {
				httpError(w, http.StatusServiceUnavailable, "portfolio %s: %v", name, err)
			} else {
				httpError(w, http.StatusBadRequest, "portfolio %s: %v", name, err)
			}
			return
		}
		sum := regalloc.SummarizePortfolio(name, pr)
		s.reg.Record(sum)
		u := unitResponse{
			Unit:         name,
			LiveRanges:   sum.LiveRanges,
			Edges:        sum.Edges,
			Passes:       sum.Passes,
			Spilled:      sum.Spills,
			SpillCost:    float64(sum.SpillCostMilli) / 1000,
			PaletteInt:   sum.PaletteInt,
			PaletteFloat: sum.PaletteFloat,
			TotalNS:      sum.TotalNS,
			PhaseNS:      phaseNSMap(sum),
		}
		win := pr.Outcomes[pr.Winner]
		p := &portfolioResponse{
			Mode:      pr.Mode.String(),
			Winner:    win.Name,
			WinMargin: float64(pr.WinMarginMilli) / 1000,
		}
		for _, o := range pr.Outcomes {
			pc := portfolioCandidateResponse{
				Name:      o.Name,
				Status:    o.Status.String(),
				Spills:    o.Spills,
				SpillCost: float64(o.SpillCostMilli) / 1000,
				NS:        o.Duration.Nanoseconds(),
			}
			if o.Err != nil {
				pc.Error = o.Err.Error()
			}
			p.Candidates = append(p.Candidates, pc)
		}
		u.Portfolio = p
		if includeColors {
			u.Colors = pr.Res.Colors
		}
		resp.Units = append(resp.Units, u)
		resp.SpilledTotal += sum.Spills
		resp.SpillCost += float64(sum.SpillCostMilli) / 1000
		resp.TotalNS += sum.TotalNS
	}
	writeJSON(w, resp)
}

// graphResponse is the /alloc reply for an interference-graph body.
type graphResponse struct {
	Input     string  `json:"input"`
	Heuristic string  `json:"heuristic"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Spilled   []int32 `json:"spilled"`
	SpillCost float64 `json:"spill_cost"`
	Colors    []int16 `json:"colors,omitempty"`

	// pcolor only:
	Workers     int `json:"workers,omitempty"`
	Rounds      int `json:"rounds,omitempty"`
	Conflicts   int `json:"conflicts,omitempty"`
	Recolored   int `json:"recolored,omitempty"`
	ColorsInt   int `json:"colors_int,omitempty"`
	ColorsFloat int `json:"colors_float,omitempty"`
}

// allocGraph colors a standalone .ig graph body under one heuristic
// (chaitin, briggs, mb, or the speculative parallel engine with
// ?heuristic=pcolor).
func (s *server) allocGraph(w http.ResponseWriter, r *http.Request, body []byte) {
	g, costs, err := graphgen.ReadGraph(strings.NewReader(string(body)))
	if err != nil {
		s.reg.Record(obs.RunSummary{Unit: "(graph)", Error: true})
		httpError(w, http.StatusBadRequest, "parse graph: %v", err)
		return
	}
	name := r.URL.Query().Get("unit")
	if name == "" {
		name = "graph"
	}
	hname := r.URL.Query().Get("heuristic")
	if hname == "" {
		hname = "briggs"
	}
	includeColors := boolParam(r, "colors")

	if hname == "pcolor" {
		workers, seed := 0, uint64(1)
		if v := r.URL.Query().Get("workers"); v != "" {
			if workers, err = strconv.Atoi(v); err != nil {
				httpError(w, http.StatusBadRequest, "workers: %v", err)
				return
			}
		}
		if v := r.URL.Query().Get("seed"); v != "" {
			if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
				httpError(w, http.StatusBadRequest, "seed: %v", err)
				return
			}
		}
		t0 := time.Now()
		colors, st := pcolor.Color(g, pcolor.Options{Workers: workers, Seed: seed})
		dur := time.Since(t0)
		if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
			s.reg.Record(obs.RunSummary{Unit: name, Error: true})
			httpError(w, http.StatusInternalServerError, "pcolor verify: %v", err)
			return
		}
		sum := obs.RunSummary{
			Unit:            name,
			LiveRanges:      g.NumNodes(),
			Edges:           g.NumEdges(),
			PaletteInt:      st.ColorsInt,
			PaletteFloat:    st.ColorsFloat,
			PColorRounds:    st.Rounds,
			PColorConflicts: st.Conflicts,
			TotalNS:         dur.Nanoseconds(),
		}
		sum.PhaseNS[obs.PhaseColor] = dur.Nanoseconds()
		s.reg.Record(sum)
		resp := graphResponse{
			Input: "ig", Heuristic: "pcolor", Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Spilled: []int32{}, Workers: st.Workers, Rounds: st.Rounds,
			Conflicts: st.Conflicts, Recolored: st.Recolored,
			ColorsInt: st.ColorsInt, ColorsFloat: st.ColorsFloat,
		}
		if includeColors {
			resp.Colors = colors
		}
		writeJSON(w, resp)
		return
	}

	h, err := color.ParseHeuristic(hname)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := optionsFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	kf := func(c ir.Class) int {
		if c == ir.ClassInt {
			return opt.KInt
		}
		return opt.KFloat
	}
	tr := obs.New(s.metrics, name)
	t0 := time.Now()
	tr.BeginPhase(obs.PhaseSimplify)
	sr := color.SimplifyTraced(g, costs, kf, h, opt.Metric, tr)
	simplifyDur := time.Since(t0)
	tr.EndPhase(obs.PhaseSimplify, simplifyDur)
	var spilled []int32
	var colors []int16
	var colorDur time.Duration
	if h == color.Chaitin && len(sr.SpillMarked) > 0 {
		spilled = sr.SpillMarked
	} else {
		tc := time.Now()
		tr.BeginPhase(obs.PhaseColor)
		colors, spilled = color.SelectTraced(g, sr, kf, h != color.Chaitin, tr)
		colorDur = time.Since(tc)
		tr.EndPhase(obs.PhaseColor, colorDur)
	}
	dur := time.Since(t0)
	cost := 0.0
	for _, n := range spilled {
		cost += costs[n]
	}
	sum := obs.RunSummary{
		Unit:           name,
		LiveRanges:     g.NumNodes(),
		Edges:          g.NumEdges(),
		Spills:         len(spilled),
		SpillCostMilli: obs.SpillCostMilli(cost),
		TotalNS:        dur.Nanoseconds(),
	}
	if colors != nil {
		var maxInt, maxFloat int16 = -1, -1
		for n, c := range colors {
			if c < 0 {
				continue
			}
			if g.Class(int32(n)) == ir.ClassFloat {
				if c > maxFloat {
					maxFloat = c
				}
			} else if c > maxInt {
				maxInt = c
			}
		}
		sum.PaletteInt = int(maxInt) + 1
		sum.PaletteFloat = int(maxFloat) + 1
	}
	sum.PhaseNS[obs.PhaseSimplify] = simplifyDur.Nanoseconds()
	sum.PhaseNS[obs.PhaseColor] = colorDur.Nanoseconds()
	s.reg.Record(sum)

	if spilled == nil {
		spilled = []int32{}
	}
	resp := graphResponse{
		Input: "ig", Heuristic: h.String(), Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Spilled: spilled, SpillCost: cost,
	}
	if includeColors {
		resp.Colors = colors
	}
	writeJSON(w, resp)
}

func boolParam(r *http.Request, name string) bool {
	v, err := strconv.ParseBool(r.URL.Query().Get(name))
	return err == nil && v
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// phaseNSMap renders a RunSummary's phase array with phase names as
// keys, for the JSON reply.
func phaseNSMap(s obs.RunSummary) map[string]int64 {
	m := make(map[string]int64, obs.NumPhases)
	for p := 0; p < obs.NumPhases; p++ {
		if s.PhaseNS[p] > 0 {
			m[obs.Phase(p).String()] = s.PhaseNS[p]
		}
	}
	return m
}
