package obs

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramObserve(t *testing.T) {
	var h LatencyHistogram
	for _, d := range []time.Duration{500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond, time.Millisecond, time.Minute} {
		h.Observe(d)
	}
	if h.Count != 5 {
		t.Fatalf("count = %d, want 5", h.Count)
	}
	if h.MaxNS != time.Minute.Nanoseconds() {
		t.Fatalf("max = %d, want 1min", h.MaxNS)
	}
	// 500ns and 1µs land in the first bucket (<= 1µs), 3µs in the
	// 5µs bucket, 1ms in the 1ms bucket, 1min in the overflow.
	if h.Buckets[0] != 2 || h.Buckets[2] != 1 || h.Buckets[9] != 1 || h.Buckets[NumLatencyBuckets] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	var sum int64
	for _, n := range h.Buckets {
		sum += n
	}
	if sum != h.Count {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count)
	}
}

func TestLatencyHistogramQuantile(t *testing.T) {
	var h LatencyHistogram
	// 100 observations spread evenly through the 10–20µs bucket.
	for i := 0; i < 100; i++ {
		h.Observe(10*time.Microsecond + time.Duration(i)*100*time.Nanosecond)
	}
	for _, tc := range []struct {
		q      float64
		lo, hi time.Duration
	}{
		{0.50, 10 * time.Microsecond, 20 * time.Microsecond},
		{0.99, 10 * time.Microsecond, 20 * time.Microsecond},
		{1.00, 10 * time.Microsecond, 20 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("q%.2f = %s, want within [%s, %s]", tc.q, got, tc.lo, tc.hi)
		}
	}
	if got := h.Quantile(1.0); got > time.Duration(h.MaxNS) {
		t.Errorf("q1.0 = %s exceeds max %s", got, time.Duration(h.MaxNS))
	}
	var empty LatencyHistogram
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile nonzero")
	}
	// The overflow bucket reports the observed max, not an invented
	// upper bound.
	var over LatencyHistogram
	over.Observe(time.Minute)
	if got := over.Quantile(0.99); got != time.Minute {
		t.Errorf("overflow q99 = %s, want 1m", got)
	}
}

func TestLatencyHistogramMerge(t *testing.T) {
	var a, b, both LatencyHistogram
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		a.Observe(d)
		both.Observe(d)
	}
	for i := 0; i < 70; i++ {
		d := time.Duration(i) * 113 * time.Microsecond
		b.Observe(d)
		both.Observe(d)
	}
	a.Merge(b)
	if a != both {
		t.Fatalf("merge mismatch:\n got %+v\nwant %+v", a, both)
	}
}

// TestRegistryConcurrent hammers one Registry from GOMAXPROCS
// goroutines and asserts every total reconciles exactly with the sum
// of the recorded summaries — the integer-accumulation contract that
// makes the Registry's numbers trustworthy under concurrency.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := RunSummary{
					Unit:           fmt.Sprintf("unit-%d", w%4),
					Passes:         1 + i%3,
					Spills:         i % 7,
					SpillCostMilli: SpillCostMilli(float64(i%7) * 1.5),
					CoalescedMoves: i % 5,
					PaletteInt:     1 + (w+i)%16,
					PaletteFloat:   (w + i) % 8,
					TotalNS:        int64(1000 + i),
				}
				s.PhaseNS[PhaseBuild] = int64(100 + i)
				s.PhaseNS[PhaseColor] = int64(10 + i%50)
				if i%11 == 0 {
					s = RunSummary{Unit: s.Unit, Error: true}
				}
				reg.Record(s)
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	n := int64(workers * perWorker)
	if snap.Runs != n {
		t.Fatalf("runs = %d, want %d", snap.Runs, n)
	}

	// Replay the same deterministic schedule single-threaded and
	// compare every aggregate exactly.
	want := NewRegistry()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			s := RunSummary{
				Unit:           fmt.Sprintf("unit-%d", w%4),
				Passes:         1 + i%3,
				Spills:         i % 7,
				SpillCostMilli: SpillCostMilli(float64(i%7) * 1.5),
				CoalescedMoves: i % 5,
				PaletteInt:     1 + (w+i)%16,
				PaletteFloat:   (w + i) % 8,
				TotalNS:        int64(1000 + i),
			}
			s.PhaseNS[PhaseBuild] = int64(100 + i)
			s.PhaseNS[PhaseColor] = int64(10 + i%50)
			if i%11 == 0 {
				s = RunSummary{Unit: s.Unit, Error: true}
			}
			want.Record(s)
		}
	}
	ws := want.Snapshot()
	if snap.Errors != ws.Errors || snap.Passes != ws.Passes || snap.Spills != ws.Spills ||
		snap.SpillCostMilli != ws.SpillCostMilli || snap.CoalescedMoves != ws.CoalescedMoves ||
		snap.PaletteIntMax != ws.PaletteIntMax || snap.PaletteFloatMax != ws.PaletteFloatMax {
		t.Fatalf("totals diverge:\n got %+v\nwant %+v", snap, ws)
	}
	if snap.Phase != ws.Phase || snap.Total != ws.Total {
		t.Fatalf("histograms diverge")
	}
	for u, c := range ws.UnitRuns {
		if snap.UnitRuns[u] != c {
			t.Fatalf("unit %s: %d runs, want %d", u, snap.UnitRuns[u], c)
		}
	}
	if snap.String() != ws.String() {
		t.Fatalf("String not deterministic for equal snapshots")
	}
}

// TestRegistrySnapshotIsolated checks a snapshot is a copy: mutating
// the registry afterwards must not change it.
func TestRegistrySnapshotIsolated(t *testing.T) {
	reg := NewRegistry()
	reg.Record(RunSummary{Unit: "a", Spills: 3, TotalNS: 5000})
	snap := reg.Snapshot()
	reg.Record(RunSummary{Unit: "a", Spills: 9, TotalNS: 9000})
	if snap.Spills != 3 || snap.UnitRuns["a"] != 1 || snap.Total.Count != 1 {
		t.Fatalf("snapshot mutated by later Record: %+v", snap)
	}
}

// TestMetricsStringDeterministic locks the sorted-key contract of the
// Metrics text dump: two sinks fed the same events in different
// orders print identically.
func TestMetricsStringDeterministic(t *testing.T) {
	events := []Event{
		{Kind: KindCounter, Phase: PhaseBuild, Name: "graph.nodes", Value: 10},
		{Kind: KindCounter, Phase: PhaseSpill, Name: "spill.ranges", Value: 2},
		{Kind: KindCounter, Phase: PhaseBuild, Name: "graph.edges", Value: 40},
		{Kind: KindCounter, Phase: PhaseSimplify, Name: "simplify.scan_steps", Value: 7},
		{Kind: KindSpanEnd, Phase: PhaseBuild, Dur: time.Millisecond},
	}
	a, b := NewMetricsSink(), NewMetricsSink()
	for _, e := range events {
		a.Emit(e)
	}
	for i := len(events) - 1; i >= 0; i-- {
		b.Emit(events[i])
	}
	if got, want := a.Snapshot().String(), b.Snapshot().String(); got != want {
		t.Fatalf("dump depends on emission order:\n%s\nvs\n%s", got, want)
	}
}

// TestRegistryUnitKeyCap locks the cardinality bound: once MaxUnitKeys
// distinct unit names are tracked, further new names fold into
// OverflowUnit, while runs_total still reconciles with the per-unit sum.
func TestRegistryUnitKeyCap(t *testing.T) {
	reg := NewRegistry()
	total := MaxUnitKeys + 100
	for i := 0; i < total; i++ {
		reg.Record(RunSummary{Unit: fmt.Sprintf("u%04d", i)})
	}
	reg.Record(RunSummary{Unit: "u0000"}) // existing keys still count directly
	snap := reg.Snapshot()
	if len(snap.UnitRuns) != MaxUnitKeys+1 {
		t.Fatalf("tracked %d unit keys, want cap %d + overflow", len(snap.UnitRuns), MaxUnitKeys)
	}
	if got := snap.UnitRuns[OverflowUnit]; got != 100 {
		t.Fatalf("overflow bucket = %d, want 100", got)
	}
	if got := snap.UnitRuns["u0000"]; got != 2 {
		t.Fatalf("existing key after cap = %d, want 2", got)
	}
	var sum int64
	for _, n := range snap.UnitRuns {
		sum += n
	}
	if sum != snap.Runs {
		t.Fatalf("unit runs sum %d != runs_total %d", sum, snap.Runs)
	}
}
