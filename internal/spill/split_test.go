package spill_test

import (
	"testing"

	"regalloc/internal/cfg"
	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
	"regalloc/internal/spill"
)

// useLoop builds a function where x is defined before a loop and
// only used inside it — the profitable splitting case:
//
//	b0: x=7; i=0; br b1(guard-free loop, pre-formed)
//	b1: i = i + x ; brif i < 100 -> b1 b2
//	b2: ret i
func useLoop() (*ir.Func, ir.Reg) {
	f := &ir.Func{Name: "UL"}
	x := f.NewReg(ir.ClassInt)
	i := f.NewReg(ir.ClassInt)
	lim := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 7},
		{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpConst, Dst: lim, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 100},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: i, A: i, B: x, C: ir.NoReg},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: i, B: lim, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b1.Succs = []int{1, 2}
	b2.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: i, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	return f, x
}

func runUL(t *testing.T, f *ir.Func) int64 {
	t.Helper()
	p := ir.NewProgram(0)
	p.Add(f)
	v, err := irinterp.New(p, 1<<15).Call("UL")
	if err != nil {
		t.Fatal(err)
	}
	return v.I
}

func TestSplitHoistsReloadToPreheader(t *testing.T) {
	f, x := useLoop()
	f.StaticBase = 512
	want := runUL(t, f.Clone())
	info := cfg.Analyze(f)
	st := spill.InsertCodeSplit(f, []ir.Reg{x}, info)
	if st.SplitLoads != 1 {
		t.Fatalf("split loads = %d, want 1", st.SplitLoads)
	}
	if st.Loads != 0 {
		t.Fatalf("per-use reloads = %d, want 0 (the loop use shares the preheader load)", st.Loads)
	}
	if st.Stores != 1 {
		t.Fatalf("stores = %d, want 1 (one def of x)", st.Stores)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// The loop body must contain no spill loads at all.
	for i := range f.Blocks[1].Instrs {
		if f.Blocks[1].Instrs[i].Op == ir.OpSpillLoad {
			t.Fatal("reload left inside the loop body")
		}
	}
	// A new preheader block exists with the load.
	if len(f.Blocks) != 4 {
		t.Fatalf("expected one preheader block, blocks = %d", len(f.Blocks))
	}
	if got := runUL(t, f); got != want {
		t.Fatalf("splitting changed the result: %d, want %d", got, want)
	}
	// The new subrange carries the split flag.
	found := false
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegFlags(ir.Reg(r))&ir.FlagSplitTemp != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("split temp not flagged")
	}
}

// TestSplitFallsBackOnDefs: a range defined inside the loop must use
// per-use reloads (the preheader copy would go stale).
func TestSplitFallsBackOnDefs(t *testing.T) {
	f, _ := useLoop()
	f.StaticBase = 512
	want := runUL(t, f.Clone())
	i := ir.Reg(1) // the accumulator: defined and used in the loop
	info := cfg.Analyze(f)
	st := spill.InsertCodeSplit(f, []ir.Reg{i}, info)
	if st.SplitLoads != 0 {
		t.Fatal("must not split a range defined in the loop")
	}
	if st.Loads == 0 || st.Stores == 0 {
		t.Fatalf("expected everywhere-spill fallback: %+v", st)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	if got := runUL(t, f); got != want {
		t.Fatalf("result changed: %d, want %d", got, want)
	}
}

// TestSplitTempNotResplit: a range flagged FlagSplitTemp spills
// everywhere on a second spill, guaranteeing convergence.
func TestSplitTempNotResplit(t *testing.T) {
	f, x := useLoop()
	f.StaticBase = 512
	f.SetRegFlags(x, ir.FlagSplitTemp)
	info := cfg.Analyze(f)
	st := spill.InsertCodeSplit(f, []ir.Reg{x}, info)
	if st.SplitLoads != 0 {
		t.Fatal("re-split a split temp")
	}
	if st.Loads == 0 {
		t.Fatal("expected everywhere reloads")
	}
}

// TestSplitNestedLoops: a use in an inner def-free loop gets the
// inner loop's temp, loaded in the inner preheader (inside the outer
// loop), staying current across outer-loop redefinitions.
func TestSplitNestedLoops(t *testing.T) {
	// b0: x=1; j=0 ; br b1
	// b1(outer): x = x+1 ; k=0 ; br b2
	// b2(inner): j = j + x ; k=k+1; brif k < 3 -> b2 b3
	// b3: brif x < 5 -> b1 b4
	// b4: ret j
	f := &ir.Func{Name: "UL"}
	x := f.NewReg(ir.ClassInt)
	j := f.NewReg(ir.ClassInt)
	k := f.NewReg(ir.ClassInt)
	three := f.NewReg(ir.ClassInt)
	five := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpConst, Dst: j, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpConst, Dst: three, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 3},
		{Op: ir.OpConst, Dst: five, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 5},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpAddI, Dst: x, A: x, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpConst, Dst: k, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b1.Succs = []int{2}
	b2.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: j, A: j, B: x, C: ir.NoReg},
		{Op: ir.OpAddI, Dst: k, A: k, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: k, B: three, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b2.Succs = []int{2, 3}
	b3.Instrs = []ir.Instr{
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: x, B: five, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b3.Succs = []int{1, 4}
	b4.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: j, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	f.StaticBase = 512

	want := runUL(t, f.Clone())
	info := cfg.Analyze(f)
	st := spill.InsertCodeSplit(f, []ir.Reg{x}, info)
	// x is defined in the outer loop (no outer split) but not in the
	// inner loop: one split load in the inner preheader.
	if st.SplitLoads != 1 {
		t.Fatalf("split loads = %d, want 1 (inner loop only)", st.SplitLoads)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	if got := runUL(t, f); got != want {
		t.Fatalf("result changed: %d, want %d", got, want)
	}
}
