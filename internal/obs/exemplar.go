package obs

import (
	"sync"
	"time"
)

// Exemplar is one trace-linked sample attached to a histogram bucket:
// the observed value in seconds, the trace that produced it, and when
// it was taken (unix seconds). OpenMetrics renders it after the
// bucket count as `# {trace_id="..."} value timestamp`.
type Exemplar struct {
	TraceID string
	Value   float64 // seconds
	TS      float64 // unix seconds
}

// ExemplarHistogram is a LatencyHistogram that additionally keeps the
// most recent trace-linked exemplar per bucket, turning the service's
// latency histogram into an entry point for trace lookup: a scrape
// shows which trace last landed in the p99 bucket, and /debug/requests
// has the span tree for it. Unlike LatencyHistogram it carries its
// own lock — it is written on the request path and read by the
// scrape handler concurrently.
type ExemplarHistogram struct {
	mu        sync.Mutex
	hist      LatencyHistogram
	exemplars [NumLatencyBuckets + 1]Exemplar
}

// Observe counts one duration and, when traceID is non-empty, records
// it as the bucket's exemplar (last writer wins — recency is the
// useful property for debugging).
func (h *ExemplarHistogram) Observe(d time.Duration, traceID string, at time.Time) {
	idx := NumLatencyBuckets
	for i, ub := range LatencyBuckets {
		if d <= ub {
			idx = i
			break
		}
	}
	h.mu.Lock()
	h.hist.Count++
	h.hist.SumNS += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > h.hist.MaxNS {
		h.hist.MaxNS = ns
	}
	h.hist.Buckets[idx]++
	if traceID != "" {
		h.exemplars[idx] = Exemplar{
			TraceID: traceID,
			Value:   d.Seconds(),
			TS:      float64(at.UnixNano()) / 1e9,
		}
	}
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the counts and the per-bucket
// exemplars (zero-valued entries mean the bucket has none yet).
func (h *ExemplarHistogram) Snapshot() (LatencyHistogram, [NumLatencyBuckets + 1]Exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist, h.exemplars
}
