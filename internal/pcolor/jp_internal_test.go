package pcolor

import (
	"testing"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// jpGraph builds a mixed-class random graph of n nodes with average
// degree ~2m.
func jpGraph(n, m int, seed uint64) *ig.Graph {
	classes := make([]ir.Class, n)
	for i := range classes {
		if i%5 == 4 {
			classes[i] = ir.ClassFloat
		}
	}
	g := ig.New(classes)
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := 0; i < m*n; i++ {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		r := s * 0x2545F4914F6CDD1D
		g.AddEdge(int32(r%uint64(n)), int32((r>>20)%uint64(n)))
	}
	return g
}

// greedyOracle is the one-line sequential model Jones–Plassmann must
// reproduce: walk the permutation in order, give each node the lowest
// color unused by its already-colored neighbors.
func greedyOracle(g *ig.Graph, seed uint64) []int16 {
	sc := new(scratch)
	perm := sc.permutation(g, seed)
	colors := make([]int16, g.NumNodes())
	for i := range colors {
		colors[i] = color.NoColor
	}
	for _, v := range perm {
		deg := g.Degree(v)
		used := make([]bool, deg+2)
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 && int(c) < len(used) {
				used[c] = true
			}
		}
		for c := range used {
			if !used[c] {
				colors[v] = int16(c)
				break
			}
		}
	}
	return colors
}

// TestJonesPlassmannMatchesGreedyOracle is the JP correctness
// contract: for every worker count the parallel independent-set
// rounds must produce exactly the sequential greedy coloring in
// permutation order — not merely a proper coloring of similar size.
func TestJonesPlassmannMatchesGreedyOracle(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 1}, {2, 1}, {50, 2}, {400, 3}, {1000, 4}} {
		for _, seed := range []uint64{1, 7, 42} {
			want := greedyOracle(jpGraph(tc.n, tc.m, seed), seed)
			for _, workers := range []int{1, 2, 3, 8, 64} {
				g := jpGraph(tc.n, tc.m, seed)
				got, st := Color(g, Options{Workers: workers, Seed: seed, Algo: JonesPlassmann})
				if err := color.Verify(g, got, KFor(st)); err != nil {
					t.Fatalf("n=%d seed=%d workers=%d: %v", tc.n, seed, workers, err)
				}
				if st.Conflicts != 0 || st.Recolored != 0 {
					t.Fatalf("n=%d seed=%d workers=%d: JP reported conflicts=%d recolored=%d, want 0",
						tc.n, seed, workers, st.Conflicts, st.Recolored)
				}
				for v := range got {
					if got[v] != want[v] {
						t.Fatalf("n=%d seed=%d workers=%d: node %d colored %d, oracle says %d",
							tc.n, seed, workers, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestJonesPlassmannWorkerIndependent pins the stronger determinism
// JP buys over the speculative engine: the coloring AND the round
// count depend on Seed alone, not on Workers (round structure is the
// rank DAG's level structure, fixed by the permutation).
func TestJonesPlassmannWorkerIndependent(t *testing.T) {
	g := jpGraph(600, 4, 3)
	base, bst := Color(g, Options{Workers: 1, Seed: 3, Algo: JonesPlassmann})
	for _, workers := range []int{2, 5, 16} {
		got, st := Color(g, Options{Workers: workers, Seed: 3, Algo: JonesPlassmann})
		if st.Rounds != bst.Rounds {
			t.Fatalf("workers=%d: %d rounds, workers=1 took %d", workers, st.Rounds, bst.Rounds)
		}
		for v := range got {
			if got[v] != base[v] {
				t.Fatalf("workers=%d: node %d colored %d, workers=1 gave %d", workers, v, got[v], base[v])
			}
		}
	}
}

// TestJonesPlassmannSlack holds JP to the same palette bound as the
// speculative engine: within Slack of the sequential smallest-last
// baseline on random graphs.
func TestJonesPlassmannSlack(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		g := jpGraph(800, 5, seed)
		_, seq := Sequential(g)
		_, st := Color(g, Options{Workers: 4, Seed: seed, Algo: JonesPlassmann})
		for _, cls := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
			want := seq.Colors(cls)
			if got := st.Colors(cls); got > want+Slack(want) {
				t.Fatalf("seed=%d class %v: JP used %d colors, sequential %d (+ slack %d)",
					seed, cls, got, want, Slack(want))
			}
		}
	}
}

// TestAlgoString pins the flag spellings.
func TestAlgoString(t *testing.T) {
	if Speculative.String() != "speculative" || JonesPlassmann.String() != "jp" {
		t.Fatalf("Algo names changed: %q, %q", Speculative, JonesPlassmann)
	}
}
