// report.go is the bench-json document allocload emits: schema
// regalloc-bench/10, which carries the loadtest section added in /6,
// the /7 error_latency split (transport failures quantified apart
// from service latency), and the /9 trace linkage — the trace IDs of
// the slowest and errored requests plus their flight-recorder span
// trees, fetched back from allocd after the run. The section's shape
// mirrors cmd/bench's latency quantiles so the two reports diff with
// the same tooling.
package main

import (
	"regalloc/internal/obs"
)

// quantiles summarizes one obs.LatencyHistogram the same way
// cmd/bench does: percentile estimates by linear interpolation
// within the fixed 1-2-5 buckets, clamped to the observed maximum.
type quantiles struct {
	Count  int64 `json:"count"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

func quantilesOf(h obs.LatencyHistogram) quantiles {
	return quantiles{
		Count:  h.Count,
		P50NS:  h.Quantile(0.50).Nanoseconds(),
		P95NS:  h.Quantile(0.95).Nanoseconds(),
		P99NS:  h.Quantile(0.99).Nanoseconds(),
		MeanNS: h.Mean().Nanoseconds(),
		MaxNS:  h.MaxNS,
	}
}

type corpusSummary struct {
	Items   int `json:"items"`
	Sources int `json:"sources"`
	Graphs  int `json:"graphs"`
	Fuzzed  int `json:"fuzzed"`
}

type cacheSummary struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Shared  int64   `json:"shared"`
	HitRate float64 `json:"hit_rate"`
}

// loadtestSection is the regalloc-bench/6 addition: one load run's
// aggregate view of the service.
type loadtestSection struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"` // closed or open
	DurationNS  int64   `json:"duration_ns"`
	Concurrency int     `json:"concurrency"`
	RateRPS     float64 `json:"rate_rps,omitempty"`

	Corpus corpusSummary `json:"corpus"`

	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	ErrorRate  float64 `json:"error_rate"`
	Dropped    int64   `json:"dropped,omitempty"` // open loop: ticks shed at the outstanding-request bound
	Throughput float64 `json:"throughput_rps"`

	// Latency covers only requests the service answered; transport
	// failures (connect errors, client timeouts) land in ErrorLatency
	// instead, so an outage cannot skew — or hide behind — the
	// SLO-facing p99.
	Latency      quantiles        `json:"latency"`
	ErrorLatency *quantiles       `json:"error_latency,omitempty"`
	Statuses     map[string]int64 `json:"statuses"`
	Cache        cacheSummary     `json:"cache"`

	// SlowTraceIDs names the slowest successfully answered requests,
	// slowest first; ErrorTraceIDs the first errored replies. Both are
	// lookup keys into allocd's flight recorder (GET /debug/requests),
	// its access log, and its /metrics exemplars; Traces carries what
	// the flight recorder still held for them when the run ended. New
	// in regalloc-bench/9.
	SlowTraceIDs  []string       `json:"slow_trace_ids"`
	ErrorTraceIDs []string       `json:"error_trace_ids,omitempty"`
	Traces        []traceSummary `json:"traces,omitempty"`
}

// traceSummary is one flight-recorder record fetched back from the
// target after the run: the span-tree evidence behind a
// slow_trace_ids or error_trace_ids entry.
type traceSummary struct {
	TraceID   string `json:"trace_id"`
	DurNS     int64  `json:"dur_ns"`
	Status    int    `json:"status"`
	Spans     int    `json:"spans"`
	Unit      string `json:"unit,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	Cache     string `json:"cache,omitempty"`
	Error     bool   `json:"error,omitempty"`
}

// report is the bench-json envelope. allocload emits only the
// loadtest section; the shared schema string and history keep it
// diffable and archivable alongside cmd/bench's reports.
type report struct {
	Schema        string           `json:"schema"`
	SchemaHistory []string         `json:"schema_history"`
	Loadtest      *loadtestSection `json:"loadtest"`
}

// benchSchema and benchSchemaHistory are the shared bench-json
// lineage; cmd/bench carries the same strings.
const benchSchema = "regalloc-bench/10"

func benchSchemaHistory() []string {
	return []string{
		"regalloc-bench/3: runs, graphs, pcolor, build_improvement_pct",
		"regalloc-bench/4: adds phase_latency + run_latency (p50/p95/p99 over every rep); all /3 fields unchanged",
		"regalloc-bench/5: adds portfolio (one race per figure-7 routine: winner, margin, per-candidate table); all /4 fields unchanged",
		"regalloc-bench/6: adds loadtest (latency percentiles, error rate, cache hit rate from cmd/allocload against a running allocd); all /5 fields unchanged",
		"regalloc-bench/7: adds scale (10^5+-node power-law/mesh coloring per engine and worker count) and loadtest.error_latency in allocload reports; all /6 fields unchanged",
		"regalloc-bench/8: adds ssa (SSA-form chordal allocator over every figure-5 routine at (16,8) and (8,4), with Chaitin/Briggs costs on the same units); all /7 fields unchanged",
		"regalloc-bench/9: adds loadtest.slow_trace_ids/error_trace_ids/traces (trace IDs of the slowest and errored requests, with their flight-recorder records fetched from allocd's /debug/requests); all /8 fields unchanged",
		"regalloc-bench/10: adds irc (iterated register coalescing vs the Briggs conservative pre-pass: surviving copies per figure-5 routine) and irc_eliminated_pct; all /9 fields unchanged",
	}
}

func newReport(lt *loadtestSection) *report {
	return &report{
		Schema:        benchSchema,
		SchemaHistory: benchSchemaHistory(),
		Loadtest:      lt,
	}
}
