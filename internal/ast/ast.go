// Package ast defines the abstract syntax tree for the mini-FORTRAN
// dialect. The tree is deliberately small: program units, typed
// declarations, structured statements, and expressions. Semantic
// information (types, symbols) lives in package sem.
package ast

import (
	"fmt"
	"strings"

	"regalloc/internal/source"
)

// Type is a scalar data type. The dialect has the two register
// classes the paper's target machine provides: INTEGER values live
// in general-purpose registers, REAL values in floating-point
// registers.
type Type int

const (
	// TypeNone marks "no type" (e.g. a SUBROUTINE result).
	TypeNone Type = iota
	// TypeInt is INTEGER.
	TypeInt
	// TypeReal is REAL (DOUBLE PRECISION is an alias).
	TypeReal
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	}
	return "NONE"
}

// Program is a collection of program units (subroutines/functions).
type Program struct {
	Units []*Unit
}

// Unit finds a unit by (upper-case) name, or nil.
func (p *Program) Unit(name string) *Unit {
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// UnitKind distinguishes subroutines from functions.
type UnitKind int

const (
	// KindSubroutine is a SUBROUTINE unit (no return value).
	KindSubroutine UnitKind = iota
	// KindFunction is a FUNCTION unit returning a scalar.
	KindFunction
)

// Unit is a single SUBROUTINE or FUNCTION.
type Unit struct {
	Kind    UnitKind
	Name    string
	RetType Type // for functions; TypeNone for subroutines
	Params  []string
	Decls   []*Decl
	Body    []Stmt
	Pos     source.Pos
}

// Dim is one declared array extent: a constant, a '*' (assumed size,
// legal only as the last dimension of a parameter array), or the
// name of an integer parameter (an "adjustable" dimension, as in
// LINPACK's A(LDA,*)).
type Dim struct {
	Const int64
	Name  string // adjustable dimension; empty if Const or Star
	Star  bool
}

func (d Dim) String() string {
	switch {
	case d.Star:
		return "*"
	case d.Name != "":
		return d.Name
	}
	return fmt.Sprintf("%d", d.Const)
}

// Decl declares one name with an explicit type, optionally an array.
type Decl struct {
	Type Type
	Name string
	Dims []Dim
	Pos  source.Pos
}

// IsArray reports whether the declaration has dimensions.
func (d *Decl) IsArray() bool { return len(d.Dims) > 0 }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() source.Pos
}

// AssignStmt is "lhs = rhs". When the LHS names the enclosing
// function, it sets the return value.
type AssignStmt struct {
	LHS *VarRef
	RHS Expr
	Pos source.Pos
}

// IfStmt is a block IF/ELSEIF/ELSE/ENDIF or a logical IF (single
// statement Then, no Else).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil; ELSEIF chains nest here
	Pos  source.Pos
}

// DoStmt is "DO var = from, to [, step] ... ENDDO". Step must be a
// (possibly negated) integer constant so the direction of the loop
// is known at compile time; it defaults to 1.
type DoStmt struct {
	Var  string
	From Expr
	To   Expr
	Step int64
	Body []Stmt
	Pos  source.Pos
}

// WhileStmt is "DO WHILE (cond) ... ENDDO".
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  source.Pos
}

// CallStmt is "CALL name(args)".
type CallStmt struct {
	Name string
	Args []Expr
	Pos  source.Pos
}

// ReturnStmt is "RETURN".
type ReturnStmt struct{ Pos source.Pos }

// ExitStmt is "EXIT" (leave innermost loop).
type ExitStmt struct{ Pos source.Pos }

// CycleStmt is "CYCLE" (next iteration of innermost loop).
type CycleStmt struct{ Pos source.Pos }

// ContinueStmt is "CONTINUE" (a no-op).
type ContinueStmt struct{ Pos source.Pos }

func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*DoStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*CallStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()   {}
func (*ExitStmt) stmtNode()     {}
func (*CycleStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// StmtPos returns the statement's source position.
func (s *AssignStmt) StmtPos() source.Pos   { return s.Pos }
func (s *IfStmt) StmtPos() source.Pos       { return s.Pos }
func (s *DoStmt) StmtPos() source.Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() source.Pos    { return s.Pos }
func (s *CallStmt) StmtPos() source.Pos     { return s.Pos }
func (s *ReturnStmt) StmtPos() source.Pos   { return s.Pos }
func (s *ExitStmt) StmtPos() source.Pos     { return s.Pos }
func (s *CycleStmt) StmtPos() source.Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() source.Pos { return s.Pos }

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() source.Pos
}

// IntLit is an integer constant.
type IntLit struct {
	Val int64
	Pos source.Pos
}

// RealLit is a real constant.
type RealLit struct {
	Val float64
	Pos source.Pos
}

// VarRef is a scalar reference (no indexes) or an array element
// reference (one or two indexes).
type VarRef struct {
	Name    string
	Indexes []Expr
	Pos     source.Pos
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "**", ".LT.", ".LE.", ".GT.", ".GE.", ".EQ.", ".NE.", ".AND.", ".OR."}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsRelational reports whether op compares values.
func (op BinOp) IsRelational() bool { return op >= OpLT && op <= OpNE }

// IsLogical reports whether op combines conditions.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  source.Pos
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // -x
	OpNot             // .NOT. x
)

// UnExpr is a unary operation.
type UnExpr struct {
	Op  UnOp
	X   Expr
	Pos source.Pos
}

// CallExpr is a function or intrinsic application. The parser cannot
// always distinguish F(I) from an array reference A(I); it produces
// VarRef for known-array shapes and CallExpr otherwise, and sem
// reclassifies as needed.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  source.Pos
}

func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*VarRef) exprNode()   {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}
func (*CallExpr) exprNode() {}

// ExprPos returns the expression's source position.
func (e *IntLit) ExprPos() source.Pos   { return e.Pos }
func (e *RealLit) ExprPos() source.Pos  { return e.Pos }
func (e *VarRef) ExprPos() source.Pos   { return e.Pos }
func (e *BinExpr) ExprPos() source.Pos  { return e.Pos }
func (e *UnExpr) ExprPos() source.Pos   { return e.Pos }
func (e *CallExpr) ExprPos() source.Pos { return e.Pos }

// Sprint renders an expression in source-like form, for diagnostics
// and tests.
func Sprint(e Expr) string {
	var b strings.Builder
	sprintExpr(&b, e)
	return b.String()
}

func sprintExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", e.Val)
	case *RealLit:
		fmt.Fprintf(b, "%g", e.Val)
	case *VarRef:
		b.WriteString(e.Name)
		if len(e.Indexes) > 0 {
			b.WriteByte('(')
			for i, ix := range e.Indexes {
				if i > 0 {
					b.WriteByte(',')
				}
				sprintExpr(b, ix)
			}
			b.WriteByte(')')
		}
	case *BinExpr:
		b.WriteByte('(')
		sprintExpr(b, e.L)
		b.WriteString(e.Op.String())
		sprintExpr(b, e.R)
		b.WriteByte(')')
	case *UnExpr:
		if e.Op == OpNeg {
			b.WriteString("(-")
		} else {
			b.WriteString("(.NOT.")
		}
		sprintExpr(b, e.X)
		b.WriteByte(')')
	case *CallExpr:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			sprintExpr(b, a)
		}
		b.WriteByte(')')
	}
}
