// Package portfolio is the heuristic-portfolio racing engine: it
// takes one compilation unit and a candidate set of allocator
// strategies (each a full alloc.Options variant — pessimistic
// Chaitin, optimistic Briggs, spill-metric and ordering variants, and
// the speculative pcolor engine under several seeds), runs them
// concurrently on a bounded worker pool under a shared deadline, and
// keeps the cheapest independently verified result.
//
// The paper's core observation motivates it: heuristic *choice*
// changes what spills, per procedure, and no single heuristic wins on
// every unit. Racing a battery of strategies and keeping the best —
// the move Das et al.'s hybrid allocator and Abu-Khzam & Chahine's
// re-seeded restarts both make — buys the per-unit minimum at the
// price of bounded extra compute.
//
// # Selection order
//
// The winner is chosen among candidates that finished AND passed the
// assignment oracle (alloc.VerifyAssignment, which recomputes
// liveness from scratch; alloc.Run has already re-verified each
// coloring against its own graph with color.Verify), by:
//
//  1. lowest total spill cost, compared in fixed-point milli units
//     (float ties would be scheduling-dependent; integers are not),
//  2. then fewest spilled live ranges,
//  3. then lowest candidate index.
//
// Because every started candidate is joined before selection and the
// comparison key is totally ordered, the winner is a pure function of
// the candidate outcomes — goroutine finish order cannot change it.
//
// # Budget semantics
//
// The context (plus the optional Config.Budget deadline) bounds the
// *start* of new work: a single-unit allocation has no preemption
// point, so candidates already in flight run to completion and are
// recorded as finishers, while candidates not yet started when the
// budget expires are marked cancelled without ever spawning a
// goroutine. Race always joins in-flight work before returning, so no
// goroutine — and no buffered observer event — outlives the call.
//
// In RaceToBest mode every candidate the budget admits runs to
// completion, so a fixed (candidates, budget-that-admits-all, seeds)
// triple always yields the same winner. In FirstGood mode the first
// verified zero-spill finisher cancels the stragglers; that trades
// winner determinism (a lower-indexed candidate may be cancelled
// before it can post its own zero-spill result) for latency, which is
// the point of the mode.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"regalloc/internal/alloc"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
	"regalloc/internal/reqtrace"
)

// Mode selects the race's stopping rule.
type Mode int

const (
	// RaceToBest runs every candidate the budget admits to completion
	// and selects the cheapest verified result. Fully deterministic
	// for a fixed candidate set when the budget admits all of them.
	RaceToBest Mode = iota
	// FirstGood cancels candidates not yet started as soon as one
	// verified zero-spill result lands; in-flight candidates still
	// run to completion and compete in selection.
	FirstGood
)

func (m Mode) String() string {
	switch m {
	case RaceToBest:
		return "race-to-best"
	case FirstGood:
		return "first-good"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the CLI/query spelling of a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "race", "race-to-best", "best":
		return RaceToBest, nil
	case "first-good", "firstgood", "first":
		return FirstGood, nil
	}
	return 0, fmt.Errorf("portfolio: unknown mode %q (want race-to-best or first-good)", s)
}

// Candidate is one strategy in the race: a label and the full
// allocator configuration it runs under. The Observer field of Opt is
// ignored — the engine wires each candidate its own child sink (see
// Config.Observer) so concurrent candidates cannot interleave events
// on a shared sink.
type Candidate struct {
	Name string
	Opt  alloc.Options
}

// Config tunes one race.
type Config struct {
	// Mode is the stopping rule (default RaceToBest).
	Mode Mode
	// Workers bounds how many candidates run concurrently; <= 0 means
	// GOMAXPROCS. It is independent of each candidate's own
	// Opt.Workers / Opt.PColorWorkers.
	Workers int
	// Budget, when > 0, is a wall-clock deadline for starting new
	// candidates, layered onto the caller's context. See the package
	// comment for the exact semantics.
	Budget time.Duration
	// Observer, when non-nil, receives the race's event stream: each
	// candidate's allocator events re-attributed to the unit name
	// "UNIT#candidate" (its own Perfetto track in traceevent), plus
	// the portfolio.* counters summarizing the race. Candidate events
	// are buffered in per-candidate child sinks while the race runs
	// and flushed in candidate order after the join, so the stream
	// seen by Observer is deterministic and single-goroutine.
	Observer obs.Sink
	// Acquire and Release, when both non-nil, gate each candidate
	// start against an external admission limiter (cmd/allocd counts
	// candidates against its -max-inflight semaphore this way).
	// Acquire blocks until a slot frees or its context is done — its
	// error cancels that candidate, not the race; Release returns the
	// slot when the candidate's goroutine exits.
	Acquire func(context.Context) error
	Release func()
}

// Status classifies one candidate's outcome.
type Status int

const (
	// Finished: ran to completion and passed verification.
	Finished Status = iota
	// Cancelled: the budget, context, or first-good cutoff expired
	// before the candidate started.
	Cancelled
	// Errored: the allocator returned an error or the result failed
	// the assignment oracle.
	Errored
)

func (s Status) String() string {
	switch s {
	case Finished:
		return "finished"
	case Cancelled:
		return "cancelled"
	case Errored:
		return "errored"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Outcome is one candidate's record in the race report.
type Outcome struct {
	Name   string
	Index  int
	Status Status
	Err    error // Errored only

	Spills         int
	SpillCostMilli int64
	Passes         int
	Duration       time.Duration

	// Result is the candidate's full allocation; kept for every
	// finisher so differential tooling can compare losers against the
	// winner. Nil unless Status == Finished.
	Result *alloc.Result
}

// Result is a completed race.
type Result struct {
	// Winner indexes Outcomes; Res is Outcomes[Winner].Result.
	Winner int
	Res    *alloc.Result
	// WinMarginMilli is the cheapest losing finisher's spill cost
	// minus the winner's, in fixed-point milli units (0 when the
	// winner is the only finisher).
	WinMarginMilli int64
	Mode           Mode
	Outcomes       []Outcome
}

// Counts tallies the outcome statuses (started is finished+errored).
func (r *Result) Counts() (started, finished, cancelled, errored int) {
	for _, o := range r.Outcomes {
		switch o.Status {
		case Finished:
			finished++
		case Cancelled:
			cancelled++
		case Errored:
			errored++
		}
	}
	return finished + errored, finished, cancelled, errored
}

// ErrNoCandidates reports an empty candidate set.
var ErrNoCandidates = errors.New("portfolio: no candidates")

// ErrNoWinner reports that no candidate finished and verified; it
// wraps the context error (budget exhausted before anything started)
// or the first candidate error when every started candidate failed.
var ErrNoWinner = errors.New("portfolio: no candidate finished")

// captureSink buffers one candidate's allocator events, re-stamped
// with the candidate-qualified unit name. Buffering (instead of
// forwarding live) is what keeps concurrent candidates from
// interleaving on the parent sink: the race flushes every capture
// sequentially, in candidate order, after joining all goroutines.
type captureSink struct {
	mu     sync.Mutex
	unit   string
	events []obs.Event
}

func (c *captureSink) Emit(e obs.Event) {
	e.Unit = c.unit
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// flush forwards the buffered events to parent. Called after the
// candidate's goroutine has been joined, so no lock is contended; the
// lock is still taken to keep the race detector's model exact.
func (c *captureSink) flush(parent obs.Sink) {
	c.mu.Lock()
	events := c.events
	c.events = nil
	c.mu.Unlock()
	for _, e := range events {
		parent.Emit(e)
	}
}

// summarize folds a finished allocation into the selection key.
func summarize(res *alloc.Result) (spills int, costMilli int64) {
	var cost float64
	for _, p := range res.Passes {
		spills += p.Spilled
		cost += p.SpillCost
	}
	return spills, obs.SpillCostMilli(cost)
}

// Race runs the candidate strategies against f and returns the
// race report with the cheapest verified result selected as winner.
// Candidate options are validated up front (the typed alloc errors),
// so a misconfigured candidate fails the whole race loudly instead of
// silently losing it.
func Race(ctx context.Context, f *ir.Func, cands []Candidate, cfg Config) (*Result, error) {
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	for i := range cands {
		if err := cands[i].Opt.Validate(); err != nil {
			return nil, fmt.Errorf("portfolio: candidate %d (%s): %w", i, cands[i].Name, err)
		}
	}
	if cfg.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Budget)
		defer cancel()
	}
	// raceCtx is what the first-good cutoff cancels; the budget and
	// the caller's context flow into it.
	raceCtx, stopStragglers := context.WithCancel(ctx)
	defer stopStragglers()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	// One child span per started candidate; the winner's span is
	// annotated after selection. Candidate allocations run on a
	// context derived from Background — not raceCtx — so the budget's
	// start-of-work-only semantics survive the tracing: a cutoff still
	// cannot preempt an in-flight candidate.
	rt, raceParent := reqtrace.FromContext(ctx)
	spanIDs := make([]uint32, len(cands))

	outcomes := make([]Outcome, len(cands))
	captures := make([]*captureSink, len(cands))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range cands {
		outcomes[i] = Outcome{Name: c.Name, Index: i, Status: Cancelled}
		// A done context always wins the race against a free worker
		// slot (mirrors regalloc's allocUnits).
		if raceCtx.Err() != nil {
			continue
		}
		select {
		case <-raceCtx.Done():
			continue
		case sem <- struct{}{}:
		}
		// Re-check after winning the slot: when a finisher frees its
		// slot right after triggering the first-good cutoff, both
		// select cases are ready and the choice is random — this check
		// makes "a done context wins" deterministic.
		if raceCtx.Err() != nil {
			<-sem
			continue
		}
		if cfg.Acquire != nil && cfg.Release != nil {
			if err := cfg.Acquire(raceCtx); err != nil {
				<-sem
				continue // cancelled while queued for admission
			}
		}
		if cfg.Observer != nil {
			captures[i] = &captureSink{unit: f.Name + "#" + c.Name}
		}
		wg.Add(1)
		go func(i int, c Candidate) {
			defer wg.Done()
			defer func() { <-sem }()
			if cfg.Release != nil && cfg.Acquire != nil {
				defer cfg.Release()
			}
			opt := c.Opt
			opt.Observer = nil
			if captures[i] != nil {
				opt.Observer = captures[i]
			}
			candID, endCand := rt.StartSpan(raceParent, "candidate:"+c.Name)
			spanIDs[i] = candID
			candCtx := reqtrace.ContextWith(context.Background(), rt, candID)
			t0 := time.Now()
			res, err := alloc.RunContext(candCtx, f, opt)
			d := time.Since(t0)
			if err == nil {
				err = alloc.VerifyAssignment(res.Func, res.Colors)
			}
			if err != nil {
				endCand(reqtrace.Attr{Key: "status", Value: "errored"},
					reqtrace.Attr{Key: "error", Value: err.Error()})
				outcomes[i] = Outcome{Name: c.Name, Index: i, Status: Errored, Err: err, Duration: d}
				return
			}
			spills, costMilli := summarize(res)
			endCand(reqtrace.Attr{Key: "status", Value: "finished"},
				reqtrace.Attr{Key: "spills", Value: strconv.Itoa(spills)},
				reqtrace.Attr{Key: "spill_cost_milli", Value: strconv.FormatInt(costMilli, 10)})
			outcomes[i] = Outcome{
				Name: c.Name, Index: i, Status: Finished,
				Spills: spills, SpillCostMilli: costMilli,
				Passes: len(res.Passes), Duration: d, Result: res,
			}
			if cfg.Mode == FirstGood && spills == 0 {
				stopStragglers()
			}
		}(i, c)
	}
	wg.Wait()

	// Flush candidate events in index order: the parent sink sees one
	// deterministic, single-goroutine stream.
	if cfg.Observer != nil {
		for _, cs := range captures {
			if cs != nil {
				cs.flush(cfg.Observer)
			}
		}
	}

	winner := -1
	for i := range outcomes {
		if outcomes[i].Status != Finished {
			continue
		}
		if winner < 0 || less(&outcomes[i], &outcomes[winner]) {
			winner = i
		}
	}
	if winner < 0 {
		var firstErr error
		for i := range outcomes {
			if outcomes[i].Err != nil {
				firstErr = outcomes[i].Err
				break
			}
		}
		switch {
		case firstErr != nil:
			return nil, fmt.Errorf("%w: %s: first failure: %v", ErrNoWinner, f.Name, firstErr)
		case ctx.Err() != nil:
			return nil, fmt.Errorf("%w: %s: %v", ErrNoWinner, f.Name, ctx.Err())
		default:
			return nil, fmt.Errorf("%w: %s", ErrNoWinner, f.Name)
		}
	}
	rt.AddAttr(spanIDs[winner], "winner", "true")
	r := &Result{Winner: winner, Res: outcomes[winner].Result, Mode: cfg.Mode, Outcomes: outcomes}
	margin := int64(-1)
	for i := range outcomes {
		if i == winner || outcomes[i].Status != Finished {
			continue
		}
		if d := outcomes[i].SpillCostMilli - outcomes[winner].SpillCostMilli; margin < 0 || d < margin {
			margin = d
		}
	}
	if margin > 0 {
		r.WinMarginMilli = margin
	}
	emitCounters(cfg.Observer, f.Name, r)
	return r, nil
}

// less is the selection order: (spill cost milli, spills, index),
// all ascending. Both outcomes must be Finished.
func less(a, b *Outcome) bool {
	if a.SpillCostMilli != b.SpillCostMilli {
		return a.SpillCostMilli < b.SpillCostMilli
	}
	if a.Spills != b.Spills {
		return a.Spills < b.Spills
	}
	return a.Index < b.Index
}

// emitCounters publishes the race summary on the parent sink, under
// the unqualified unit name (the per-candidate streams carry the
// qualified ones).
func emitCounters(sink obs.Sink, unit string, r *Result) {
	tr := obs.New(sink, unit)
	if !tr.Enabled() {
		return
	}
	started, finished, cancelled, errored := r.Counts()
	tr.Counter(obs.PhaseColor, "portfolio.candidates", int64(len(r.Outcomes)))
	tr.Counter(obs.PhaseColor, "portfolio.started", int64(started))
	tr.Counter(obs.PhaseColor, "portfolio.finished", int64(finished))
	tr.Counter(obs.PhaseColor, "portfolio.cancelled", int64(cancelled))
	tr.Counter(obs.PhaseColor, "portfolio.errored", int64(errored))
	tr.Counter(obs.PhaseColor, "portfolio.winner_index", int64(r.Winner))
	tr.Counter(obs.PhaseColor, "portfolio.win_margin_milli", r.WinMarginMilli)
}

// Default returns the standard candidate set derived from base: the
// two paper heuristics under the default cost/degree metric, the two
// alternative spill metrics under Briggs, the cost-blind smallest-
// last ordering, the SSA-form chordal allocator, iterated register
// coalescing, and the speculative pcolor engine once per seed
// (workers pinned to the machine-independent default so the race is
// reproducible across hosts). base supplies everything else (K,
// coalescing, spill modes, Workers); base.Heuristic, base.Metric and
// the pcolor fields are overridden per candidate.
func Default(base alloc.Options, pcolorSeeds ...uint64) []Candidate {
	base.Observer = nil
	base.UsePColor = false
	mk := func(name string, mut func(*alloc.Options)) Candidate {
		opt := base
		mut(&opt)
		return Candidate{Name: name, Opt: opt}
	}
	cands := []Candidate{
		mk("briggs", func(o *alloc.Options) { o.Heuristic = color.Briggs; o.Metric = color.CostOverDegree }),
		mk("chaitin", func(o *alloc.Options) { o.Heuristic = color.Chaitin; o.Metric = color.CostOverDegree }),
		mk("briggs/cost", func(o *alloc.Options) { o.Heuristic = color.Briggs; o.Metric = color.CostOnly }),
		mk("briggs/degree", func(o *alloc.Options) { o.Heuristic = color.Briggs; o.Metric = color.DegreeOnly }),
		mk("mb", func(o *alloc.Options) { o.Heuristic = color.MatulaBeck; o.Metric = color.CostOverDegree }),
		mk("ssa", func(o *alloc.Options) { o.Heuristic = color.SSA; o.Metric = color.CostOverDegree }),
		mk("irc", func(o *alloc.Options) { o.Heuristic = color.IRC; o.Metric = color.CostOverDegree }),
	}
	for _, seed := range pcolorSeeds {
		cands = append(cands, mk(fmt.Sprintf("pcolor/s%d", seed), func(o *alloc.Options) {
			o.UsePColor = true
			o.PColorSeed = seed
			o.PColorWorkers = alloc.DefaultPColorWorkers
		}))
	}
	// One Jones–Plassmann entrant on the first seed: its spill set
	// depends on the seed alone (worker count only changes wall
	// time), so a single candidate covers the family.
	if len(pcolorSeeds) > 0 {
		seed := pcolorSeeds[0]
		cands = append(cands, mk(fmt.Sprintf("pcolor/jp/s%d", seed), func(o *alloc.Options) {
			o.UsePColor = true
			o.PColorSeed = seed
			o.PColorWorkers = alloc.DefaultPColorWorkers
			o.PColorAlgo = pcolor.JonesPlassmann
		}))
	}
	return cands
}

// DefaultSeeds is the pcolor seed set Default-based portfolios use
// when the caller doesn't pick their own.
var DefaultSeeds = []uint64{1, 7, 42}
