// Package cachekey computes content-addressed digests for allocator
// inputs and configurations, the keys under which internal/rescache
// stores completed allocations. The design goal is a *canonical*
// form on both axes:
//
//   - Equivalent inputs collide. A mini-FORTRAN source is digested
//     through its compiled IR listing, so formatting, comments, and
//     even variable renamings that lower to the same IR share a key.
//     A .ig graph is digested through a sorted-edge canonical form,
//     so the same graph serialized in any edge order shares a key.
//   - Different configurations do not. The Options fingerprint
//     covers every field that can change an allocation result —
//     heuristic, register budgets, spill metric and cost parameters,
//     coalescing and spill-code modes, pass bound, and the pcolor
//     (seed, workers) pair when the speculative engine is on.
//
// Fields that provably cannot change the result are excluded:
// Options.Workers only shards the graph build (documented and tested
// byte-identical to sequential) and sizes the whole-program worker
// pool, and Options.Observer only watches. Excluding them is what
// makes a warm cache survive clients that tune concurrency knobs.
//
// Every digest is domain-separated (a fixed tag is hashed first) and
// every field is type-and-length tagged, so concatenation ambiguity
// cannot alias two different inputs onto one key.
package cachekey

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"regalloc/internal/alloc"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// Key is a content digest. Keys are comparable and usable as map
// keys.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates tagged fields into a digest. The zero value is
// not ready; use New.
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// New returns a Hasher domain-separated by tag.
func New(tag string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(tag)
	return h
}

func (h *Hasher) tagged(tag byte, payload []byte) {
	h.buf[0] = tag
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(len(payload)))
	h.h.Write(h.buf[:9])
	h.h.Write(payload)
}

// Str hashes a length-tagged string field.
func (h *Hasher) Str(s string) { h.tagged('s', []byte(s)) }

// Bytes hashes a length-tagged byte field.
func (h *Hasher) Bytes(b []byte) { h.tagged('b', b) }

// Int hashes an integer field.
func (h *Hasher) Int(v int64) {
	h.buf[0] = 'i'
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(v))
	h.h.Write(h.buf[:9])
}

// Uint hashes an unsigned integer field.
func (h *Hasher) Uint(v uint64) {
	h.buf[0] = 'u'
	binary.LittleEndian.PutUint64(h.buf[1:9], v)
	h.h.Write(h.buf[:9])
}

// Bool hashes a boolean field.
func (h *Hasher) Bool(v bool) {
	h.buf[0] = 'B'
	h.buf[1] = 0
	if v {
		h.buf[1] = 1
	}
	h.h.Write(h.buf[:2])
}

// Float hashes a float field by its IEEE 754 bit pattern.
func (h *Hasher) Float(v float64) {
	h.buf[0] = 'f'
	binary.LittleEndian.PutUint64(h.buf[1:9], math.Float64bits(v))
	h.h.Write(h.buf[:9])
}

// Key finalizes the digest. The Hasher must not be reused after.
func (h *Hasher) Key() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Options fingerprints every result-affecting configuration field.
// Workers and Observer are deliberately excluded (see the package
// comment); MaxPasses and PColorWorkers are resolved to their
// documented defaults first so an explicit default and an unset zero
// collide.
func Options(opt alloc.Options) Key {
	h := New("regalloc/options/1")
	h.Int(int64(opt.Heuristic))
	h.Int(int64(opt.KInt))
	h.Int(int64(opt.KFloat))
	h.Int(int64(opt.Metric))
	h.Bool(opt.Coalesce)
	h.Bool(opt.ConservativeCoalesce)
	h.Float(opt.CostParams.DepthBase)
	h.Float(opt.CostParams.MemOpWeight)
	h.Bool(opt.Rematerialize)
	h.Bool(opt.Split)
	maxPasses := opt.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64 // alloc.Run's documented default
	}
	h.Int(int64(maxPasses))
	h.Bool(opt.UsePColor)
	if opt.UsePColor {
		// Only under the speculative engine do the seed and worker
		// count determine the coloring; hashing them when the engine
		// is off would split keys that allocate identically.
		h.Uint(opt.PColorSeed)
		workers := opt.PColorWorkers
		if workers <= 0 {
			workers = alloc.DefaultPColorWorkers
		}
		h.Int(int64(workers))
	}
	h.Bool(opt.Machine != nil)
	if m := opt.Machine; m != nil {
		// The model changes both the graph (precolored nodes, clobber
		// edges) and the move set, so every constraint-bearing field
		// is part of the key; the name alone would let two models with
		// the same label collide.
		h.Str(m.Name)
		for c := 0; c < len(m.NumRegs); c++ {
			h.Int(int64(m.NumRegs[c]))
			h.Int(int64(m.CallerSaved[c]))
			h.Int(int64(m.RetReg[c]))
			h.Int(int64(len(m.ArgRegs[c])))
			for _, r := range m.ArgRegs[c] {
				h.Int(int64(r))
			}
		}
	}
	return h.Key()
}

// Func digests one unit's IR through its canonical listing
// (ir.Fprint), the same text a human reads when debugging. Any two
// sources lowering to that listing collide, which is the point.
func Func(f *ir.Func) Key {
	h := New("regalloc/ir/1")
	hashFunc(h, f)
	return h.Key()
}

// Program digests a whole program as the ordered sequence of its
// unit listings.
func Program(funcs []*ir.Func) Key {
	h := New("regalloc/ir-program/1")
	h.Int(int64(len(funcs)))
	for _, f := range funcs {
		hashFunc(h, f)
	}
	return h.Key()
}

func hashFunc(h *Hasher, f *ir.Func) {
	h.Str(f.Name)
	h.Int(int64(f.NumRegs()))
	for r := ir.Reg(0); int(r) < f.NumRegs(); r++ {
		h.Int(int64(f.RegClass(r)))
	}
	h.Int(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.Int(int64(b.ID))
		h.Int(int64(b.Depth))
		h.Int(int64(len(b.Instrs)))
		for i := range b.Instrs {
			h.Str(ir.SprintInstr(f, &b.Instrs[i], b))
		}
	}
}

// Graph digests a standalone interference graph plus its spill costs
// in a canonical form: node count, per-node classes, the edge set
// sorted as (min, max) pairs, and the cost vector. Insertion order
// never reaches the hash, so any serialization of the same graph
// collides.
func Graph(g *ig.Graph, costs []float64) Key {
	h := New("regalloc/ig/1")
	n := g.NumNodes()
	h.Int(int64(n))
	for a := int32(0); a < int32(n); a++ {
		h.Int(int64(g.Class(a)))
	}
	edges := make([][2]int32, 0, g.NumEdges())
	for a := int32(0); a < int32(n); a++ {
		for _, b := range g.Neighbors(a) {
			if b > a {
				edges = append(edges, [2]int32{a, b})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	h.Int(int64(len(edges)))
	for _, e := range edges {
		h.Int(int64(e[0]))
		h.Int(int64(e[1]))
	}
	h.Int(int64(len(costs)))
	for _, c := range costs {
		h.Float(c)
	}
	return h.Key()
}

// Combine derives a request key from component digests under a fresh
// domain tag — e.g. (input digest, options digest, response shape).
func Combine(tag string, keys ...Key) Key {
	h := New(tag)
	for _, k := range keys {
		h.Bytes(k[:])
	}
	return h.Key()
}
