package alloc

import (
	"fmt"

	"regalloc/internal/bitset"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
)

// VerifyAssignment independently checks a finished allocation: it
// recomputes liveness from scratch and confirms that no two
// simultaneously-live registers of the same class share a physical
// register. Unlike color.Verify — which checks that the assignment
// properly colors the *interference graph* — this checks the
// assignment against the *program*, so it also catches bugs in graph
// construction itself (a missed edge makes color.Verify pass and
// VerifyAssignment fail).
//
// The one permitted sharing mirrors the builder's move exception: at
// "dst = move src", dst may occupy src's register, because they hold
// the same value at that point.
func VerifyAssignment(f *ir.Func, colors []int16) error {
	if len(colors) < f.NumRegs() {
		return fmt.Errorf("verify: %s: %d colors for %d registers", f.Name, len(colors), f.NumRegs())
	}
	lv := dataflow.ComputeLiveness(f)
	var fail error
	for _, b := range f.Blocks {
		lv.LiveAcross(f, b, func(i int, in *ir.Instr, liveAfter *bitset.Set) {
			if fail != nil {
				return
			}
			d := in.Def()
			if d == ir.NoReg {
				return
			}
			if colors[d] < 0 {
				fail = fmt.Errorf("verify: %s: b%d[%d]: defined register v%d has no color", f.Name, b.ID, i, d)
				return
			}
			moveSrc := ir.NoReg
			if in.IsMove() {
				moveSrc = in.A
			}
			liveAfter.ForEach(func(l int) {
				if fail != nil || ir.Reg(l) == d || ir.Reg(l) == moveSrc {
					return
				}
				if f.RegClass(ir.Reg(l)) != f.RegClass(d) {
					return
				}
				if colors[l] == colors[d] {
					fail = fmt.Errorf(
						"verify: %s: b%d[%d]: v%d and live v%d share %s register %d",
						f.Name, b.ID, i, d, l, f.RegClass(d), colors[d])
				}
			})
		})
		if fail != nil {
			return fail
		}
	}
	return nil
}

// VerifyAssignmentMachine is VerifyAssignment plus the machine-model
// constraints: every color stays inside its class's register file,
// and no value live across a call occupies a caller-saved register
// (the callee is free to clobber it). Like VerifyAssignment it works
// from the program, not the graph, so it catches a missing clobber
// edge in graph construction as readily as a coloring bug.
func VerifyAssignmentMachine(f *ir.Func, colors []int16, m *machine.Model) error {
	if err := VerifyAssignment(f, colors); err != nil {
		return err
	}
	for r := 0; r < f.NumRegs(); r++ {
		c := colors[r]
		if c < 0 {
			continue // never defined; VerifyAssignment vetted the rest
		}
		if cls := f.RegClass(ir.Reg(r)); int(c) >= m.K(cls) {
			return fmt.Errorf("verify: %s: v%d colored %d, outside the %d-register %s file",
				f.Name, r, c, m.K(cls), cls)
		}
	}
	lv := dataflow.ComputeLiveness(f)
	var fail error
	for _, b := range f.Blocks {
		lv.LiveAcross(f, b, func(i int, in *ir.Instr, liveAfter *bitset.Set) {
			if fail != nil || in.Op != ir.OpCall {
				return
			}
			liveAfter.ForEach(func(l int) {
				if fail != nil || ir.Reg(l) == in.Dst {
					return
				}
				cls := f.RegClass(ir.Reg(l))
				if c := colors[l]; c >= 0 && m.IsCallerSaved(cls, c) {
					fail = fmt.Errorf(
						"verify: %s: b%d[%d]: v%d lives across the call in caller-saved %s register %d",
						f.Name, b.ID, i, l, cls, c)
				}
			})
		})
		if fail != nil {
			return fail
		}
	}
	return nil
}
