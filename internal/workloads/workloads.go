// Package workloads holds the mini-FORTRAN sources of the paper's
// benchmark suite (Figure 5): SVD, LINPACK, SIMPLEX, EULER, and
// CEDETA, plus the non-recursive quicksort of the Figure 6 study.
//
// Each routine reproduces the control structure the paper describes
// or that the historical source had — SVD's small array-copy loop
// followed by three large nests (Figure 1), DMXPY's sixteen-way
// unrolled update loop (§3.1), the BLAS cleanup/unrolled loops, the
// Wirth non-recursive quicksort (§3.2) — because the allocator
// effects under study are driven by exactly that structure: long
// live ranges crossing loop nests, and loop-depth-weighted spill
// costs. See DESIGN.md §5 for the substitution rationale.
package workloads

import "fmt"

// Workload is one benchmark program: a set of routines compiled
// together.
type Workload struct {
	// Program is the name used in Figure 5 ("SVD", "LINPACK", ...).
	Program string
	// Source is the mini-FORTRAN source of every routine.
	Source string
	// Routines lists the units in the order Figure 5 reports them.
	Routines []string
}

// All returns the five Figure 5 programs, in the paper's order.
func All() []Workload {
	return []Workload{
		SVD(),
		LINPACK(),
		Simplex(),
		Euler(),
		Cedeta(),
	}
}

// ByName returns the workload with the given program name, searching
// the Figure 5 suite plus the quicksort and integer-kernel studies.
func ByName(name string) (Workload, error) {
	for _, w := range append(All(), Quicksort(), IntegerKernels()) {
		if w.Program == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown program %q", name)
}

// SVD returns the singular-value-decomposition workload (one large
// routine, after Forsythe, Malcolm & Moler; structured per the
// paper's Figure 1).
func SVD() Workload {
	return Workload{Program: "SVD", Source: svdSource, Routines: []string{"SVD"}}
}

// LINPACK returns the LINPACK workload (Dongarra's benchmark
// routines, in Figure 5's order).
func LINPACK() Workload {
	return Workload{
		Program: "LINPACK",
		Source:  linpackSource,
		Routines: []string{
			"EPSLON", "DSCAL", "IDAMAX", "DDOT", "DAXPY",
			"MATGEN", "DGEFA", "DGESL", "DMXPY",
		},
	}
}

// Simplex returns the parallel multi-directional simplex search
// workload (after Torczon).
func Simplex() Workload {
	return Workload{
		Program:  "SIMPLEX",
		Source:   simplexSource,
		Routines: []string{"VALUE", "CONVERGE", "CONSTRUCT", "SIMPLEX"},
	}
}

// Euler returns the 1-D shock-wave propagation workload.
func Euler() Workload {
	return Workload{
		Program: "EULER",
		Source:  eulerSource,
		Routines: []string{
			"SHOCK", "DERIV", "CODE", "CHEB", "FINDIF", "FFTB",
			"BNDRY", "INPUT", "DIFFR", "DISSIP", "INIT",
		},
	}
}

// Cedeta returns the Celis–Dennis–Tapia equality-constrained
// minimization workload: the DQRDC factorization plus the two very
// large generated routines GRADNT and HSSIAN.
func Cedeta() Workload {
	return Workload{
		Program:  "CEDETA",
		Source:   dqrdcSource + gradntSource() + hssianSource(),
		Routines: []string{"DQRDC", "GRADNT", "HSSIAN"},
	}
}

// Quicksort returns the §3.2 integer workload: Wirth's non-recursive
// quicksort with median-of-three pivoting and an insertion-sort
// finish.
func Quicksort() Workload {
	return Workload{Program: "QSORT", Source: qsortSource, Routines: []string{"QSORT"}}
}
