// Graphs: the coloring heuristics on standalone interference graphs,
// away from the compiler — where does optimistic coloring's benefit
// live? Sweeps random G(n,p) graphs across densities and prints
// Chaitin-vs-Briggs spill counts (compare the paper's §3.2: "greater
// improvement ... in highly constrained situations"), then shows the
// paper's SVD pressure pattern (§1.2) as a graph.
//
// Run with: go run ./examples/graphs
package main

import (
	"fmt"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

func spills(g *ig.Graph, costs []float64, k int, h color.Heuristic) (int, float64) {
	kf := func(ir.Class) int { return k }
	sr := color.Simplify(g, costs, kf, h, color.CostOverDegree)
	var spilled []int32
	if h == color.Chaitin && len(sr.SpillMarked) > 0 {
		spilled = sr.SpillMarked
	} else {
		_, spilled = color.Select(g, sr.Stack, kf, h != color.Chaitin)
	}
	total := 0.0
	for _, n := range spilled {
		total += costs[n]
	}
	return len(spilled), total
}

func main() {
	const n, k, seeds = 150, 8, 20
	fmt.Printf("random G(%d, p) graphs, k = %d colors, %d seeds per density\n\n", n, k, seeds)
	fmt.Printf("%6s | %8s %8s | %s\n", "p", "chaitin", "briggs", "ranges optimism rescued")
	for _, p := range []float64{0.04, 0.08, 0.12, 0.16, 0.20, 0.30, 0.40} {
		var c, b int
		for seed := uint64(1); seed <= seeds; seed++ {
			g, costs := graphgen.Random(n, p, seed*3)
			cs, _ := spills(g, costs, k, color.Chaitin)
			bs, _ := spills(g, costs, k, color.Briggs)
			c += cs
			b += bs
		}
		bar := ""
		for i := 0; i < (c-b)/40; i++ {
			bar += "#"
		}
		fmt.Printf("%6.2f | %8d %8d | %s\n", p, c, b, bar)
	}

	fmt.Println("\nthe paper's SVD pressure pattern (long ranges + cheap copy loop + dense nests):")
	g, costs := graphgen.SVDLike(10, 4, 3, 10, 8, 42)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		count, cost := spills(g, costs, 16, h)
		fmt.Printf("  %-12s spills %2d ranges, estimated cost %8.0f\n", h, count, cost)
	}
	fmt.Println("\nnote the cost-blind smallest-last ordering: competitive counts, terrible costs (§2.3).")
}
