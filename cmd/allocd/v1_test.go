// v1_test.go locks the /v1 API contract: one parser behind two
// request forms, the structured error envelope, the batch endpoint's
// independent per-item failures, and the result cache's observable
// guarantees (byte-identical hits, singleflight collapse).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// postJSON sends a JSON-form /v1 request and returns status, body,
// and the X-Cache header.
func postJSON(t *testing.T, ts *httptest.Server, path string, req any) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Cache")
}

// TestV1JSONQueryParity is the shared-parser guarantee: the JSON
// body form and the legacy query form of the same request produce
// byte-identical responses (the second is a cache hit of the first,
// which is only possible if both resolve to the same canonical
// request).
func TestV1JSONQueryParity(t *testing.T) {
	_, ts := newTestServer(t)
	code, legacy := postAlloc(t, ts, "/v1/alloc?heuristic=briggs&kint=8&kfloat=4&colors=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("legacy form: status %d: %s", code, legacy)
	}
	kint, kfloat := 8, 4
	code, jsonBody, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{
		Source: testSource, Heuristic: "briggs", KInt: &kint, KFloat: &kfloat, Colors: true,
	})
	if code != http.StatusOK {
		t.Fatalf("JSON form: status %d: %s", code, jsonBody)
	}
	if !bytes.Equal(legacy, jsonBody) {
		t.Fatalf("forms disagree:\nlegacy: %s\njson:   %s", legacy, jsonBody)
	}
	if cache != "hit" {
		t.Fatalf("JSON form after identical legacy form: X-Cache %q, want hit", cache)
	}

	// The graph path has the same parity.
	code, legacy = postAlloc(t, ts, "/v1/alloc?input=ig&kint=2", testGraph)
	if code != http.StatusOK {
		t.Fatalf("legacy graph: status %d: %s", code, legacy)
	}
	k2 := 2
	code, jsonBody, _ = postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testGraph, Input: "ig", KInt: &k2})
	if code != http.StatusOK {
		t.Fatalf("JSON graph: status %d: %s", code, jsonBody)
	}
	if !bytes.Equal(legacy, jsonBody) {
		t.Fatalf("graph forms disagree:\nlegacy: %s\njson:   %s", legacy, jsonBody)
	}
}

// TestV1ErrorEnvelopeCodes locks the JSON-form failure codes.
func TestV1ErrorEnvelopeCodes(t *testing.T) {
	_, ts := newTestServer(t)
	zero := 0
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"malformed JSON", `{"source": `, "bad_body"},
		{"unknown field", `{"source": "X", "bogus": 1}`, "bad_body"},
		{"trailing garbage", `{"source": "X"} extra`, "bad_body"},
		{"empty source", `{}`, "empty_body"},
		{"portfolio on graph", fmt.Sprintf(`{"source": %q, "input": "ig", "portfolio": "all"}`, testGraph), "bad_request"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/alloc", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
		if e := errorEnvelope(t, data); e.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, e.Code, tc.wantCode, data)
		}
	}
	// Typed option errors surface with their own codes in the JSON
	// form too.
	code, data, _ := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource, KInt: &zero})
	if code != http.StatusBadRequest {
		t.Fatalf("kint=0: status %d", code)
	}
	if e := errorEnvelope(t, data); e.Code != "bad_k" {
		t.Fatalf("kint=0: code %q, want bad_k", e.Code)
	}
}

// TestV1CacheHitByteIdentical is the acceptance witness: a repeated
// identical POST is served from the cache (X-Cache hit, the hit
// counter moves in /metrics) and the body is byte-identical to the
// cold miss.
func TestV1CacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	code, cold, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource})
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("cold: status %d, X-Cache %q", code, cache)
	}
	code, warm, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource})
	if code != http.StatusOK || cache != "hit" {
		t.Fatalf("warm: status %d, X-Cache %q", code, cache)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("hit not byte-identical:\ncold: %s\nwarm: %s", cold, warm)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"regalloc_cache_hits_total 1",
		"regalloc_cache_misses_total 1",
		"regalloc_cache_hit_duration_seconds_count 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestV1CacheNormalizesSource goes one step past byte-equality of
// the request: two sources that differ only in comments and
// formatting digest to the same canonical IR, so the second is a hit.
func TestV1CacheNormalizesSource(t *testing.T) {
	_, ts := newTestServer(t)
	commented := strings.Replace(testSource, "      RETURN",
		"C     A COMMENT THE LEXER DROPS\n      RETURN", 1)
	if commented == testSource {
		t.Fatal("fixture edit did not apply")
	}
	code, cold, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource})
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("cold: status %d, X-Cache %q", code, cache)
	}
	code, warm, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: commented})
	if code != http.StatusOK {
		t.Fatalf("commented: status %d: %s", code, warm)
	}
	if cache != "hit" {
		t.Fatalf("comment-only variant: X-Cache %q, want hit", cache)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("normalized variant not byte-identical")
	}
}

// TestV1NoCacheBypass: nocache requests neither read nor warm the
// cache.
func TestV1NoCacheBypass(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 2; i++ {
		_, _, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource, NoCache: true})
		if cache != "miss" {
			t.Fatalf("nocache post %d: X-Cache %q, want miss", i, cache)
		}
	}
}

// TestV1SingleflightCollapse: N concurrent identical POSTs run one
// allocation. The witness is the cache counters: exactly one miss
// (the flight leader), every other request a hit or shared.
func TestV1SingleflightCollapse(t *testing.T) {
	s, ts := newTestServer(t)
	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, data, _ := postJSON(t, ts, "/v1/alloc", &AllocRequest{Source: testSource, Colors: true})
			if code != http.StatusOK {
				t.Errorf("post %d: status %d: %s", i, code, data)
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	st := s.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one allocation for %d requests); stats %+v", st.Misses, n, st)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits+shared = %d, want %d; stats %+v", st.Hits+st.Shared, n-1, st)
	}
}

// TestV1DifferentConfigsMiss: the options fingerprint keeps requests
// that differ in any result-relevant knob apart.
func TestV1DifferentConfigsMiss(t *testing.T) {
	_, ts := newTestServer(t)
	k8, k4 := 8, 4
	reqs := []*AllocRequest{
		{Source: testSource},
		{Source: testSource, Heuristic: "chaitin"},
		{Source: testSource, KInt: &k8},
		{Source: testSource, KInt: &k8, KFloat: &k4},
		{Source: testSource, Colors: true},
	}
	for i, r := range reqs {
		code, data, cache := postJSON(t, ts, "/v1/alloc", r)
		if code != http.StatusOK {
			t.Fatalf("req %d: status %d: %s", i, code, data)
		}
		if cache != "miss" {
			t.Fatalf("req %d: X-Cache %q, want miss (distinct config)", i, cache)
		}
	}
}

// TestBatchArray drives the JSON-array form: independent per-item
// status, one bad item failing alone, and cache reuse across items.
func TestBatchArray(t *testing.T) {
	_, ts := newTestServer(t)
	items := []*AllocRequest{
		{Source: testSource},
		{Source: "NOT FORTRAN (("},
		{Source: testGraph},
		{Source: testSource}, // identical to item 0: a hit
		{Source: testSource, Portfolio: "all"},
	}
	code, data, _ := postJSON(t, ts, "/v1/alloc/batch", items)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp batchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if resp.OK != 3 || resp.Failed != 2 || len(resp.Items) != 5 {
		t.Fatalf("ok=%d failed=%d items=%d, want 3/2/5\n%s", resp.OK, resp.Failed, len(resp.Items), data)
	}
	wantStatus := []int{200, 400, 200, 200, 400}
	wantCache := []string{"miss", "", "miss", "hit", ""}
	for i, it := range resp.Items {
		if it.Index != i || it.Status != wantStatus[i] {
			t.Errorf("item %d: index=%d status=%d, want status %d", i, it.Index, it.Status, wantStatus[i])
		}
		if it.Cache != wantCache[i] {
			t.Errorf("item %d: cache %q, want %q", i, it.Cache, wantCache[i])
		}
	}
	if resp.Items[1].Error == nil || resp.Items[1].Error.Code != "compile_failed" {
		t.Errorf("item 1 error = %+v, want compile_failed", resp.Items[1].Error)
	}
	if resp.Items[4].Error == nil || resp.Items[4].Error.Code != "bad_request" {
		t.Errorf("item 4 error = %+v, want bad_request (portfolio rejected in batches)", resp.Items[4].Error)
	}
	// Item results are full single-request bodies.
	var u allocResponse
	if err := json.Unmarshal(resp.Items[0].Result, &u); err != nil || len(u.Units) != 1 || u.Units[0].Unit != "SAXPYISH" {
		t.Fatalf("item 0 result: %v\n%s", err, resp.Items[0].Result)
	}
	var g graphResponse
	if err := json.Unmarshal(resp.Items[2].Result, &g); err != nil || g.Nodes != 4 {
		t.Fatalf("item 2 result: %v\n%s", err, resp.Items[2].Result)
	}
}

// TestBatchNDJSON drives the streaming form: NDJSON in, NDJSON out,
// one result line per item.
func TestBatchNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(&AllocRequest{Source: testSource})
	enc.Encode(&AllocRequest{Source: "BROKEN"})
	enc.Encode(&AllocRequest{Source: testGraph, Input: "ig"})
	resp, err := http.Post(ts.URL+"/v1/alloc/batch", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var items []batchItem
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var it batchItem
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("line not a batch item: %v\n%s", err, sc.Text())
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	for i, wantStatus := range []int{200, 400, 200} {
		if items[i].Index != i || items[i].Status != wantStatus {
			t.Errorf("item %d: index=%d status=%d, want status %d", i, items[i].Index, items[i].Status, wantStatus)
		}
	}
}

// batchRecorder is a ResponseWriter for driving handleBatch directly:
// it counts body writes, can fail them (a client that hung up), and
// can run a hook after each write (to cancel the request mid-stream).
type batchRecorder struct {
	header  http.Header
	writes  int
	err     error
	onWrite func()
}

func (w *batchRecorder) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *batchRecorder) WriteHeader(int) {}

func (w *batchRecorder) Write(p []byte) (int, error) {
	w.writes++
	if w.onWrite != nil {
		w.onWrite()
	}
	if w.err != nil {
		return 0, w.err
	}
	return len(p), nil
}

func ndjsonBatchBody(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		if err := enc.Encode(&AllocRequest{Source: testGraph, Input: "ig"}); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// TestBatchNDJSONStopsOnWriteError: once a reply line fails to write,
// the stream loop must stop instead of running every remaining item
// through the allocator for a client that already hung up.
func TestBatchNDJSONStopsOnWriteError(t *testing.T) {
	s := newServer(4)
	w := &batchRecorder{err: errors.New("broken pipe")}
	r := httptest.NewRequest(http.MethodPost, "/v1/alloc/batch", ndjsonBatchBody(t, 8))
	s.handleBatch(w, r)
	if w.writes != 1 {
		t.Fatalf("handler attempted %d writes after the first failed, want 1", w.writes)
	}
}

// TestBatchNDJSONStopsOnCancel: request-context cancellation between
// reply lines ends the stream.
func TestBatchNDJSONStopsOnCancel(t *testing.T) {
	s := newServer(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &batchRecorder{onWrite: cancel}
	r := httptest.NewRequest(http.MethodPost, "/v1/alloc/batch", ndjsonBatchBody(t, 8)).WithContext(ctx)
	s.handleBatch(w, r)
	if w.writes != 1 {
		t.Fatalf("handler wrote %d lines after cancellation on the first, want 1", w.writes)
	}
}

// TestBatchErrors locks the batch-level failures (which, unlike item
// failures, fail the whole request).
func TestBatchErrors(t *testing.T) {
	_, ts := newTestServer(t)
	big := make([]*AllocRequest, maxBatchItems+1)
	for i := range big {
		big[i] = &AllocRequest{Source: testGraph}
	}
	code, data, _ := postJSON(t, ts, "/v1/alloc/batch", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d: %s", code, data)
	}
	if e := errorEnvelope(t, data); e.Code != "batch_too_large" {
		t.Fatalf("oversized batch: code %q", e.Code)
	}
	for name, body := range map[string]string{
		"empty body":   "",
		"empty array":  "[]",
		"malformed":    "[{]",
		"broken line":  `{"source": "X"}` + "\n{broken",
		"not requests": `[42]`,
	} {
		resp, err := http.Post(ts.URL+"/v1/alloc/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// "not requests" fails per-item (the array itself is valid);
		// everything else fails the batch.
		if name == "not requests" {
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d, want 200 with a failed item (%s)", name, resp.StatusCode, data)
			}
			var br batchResponse
			if err := json.Unmarshal(data, &br); err != nil || br.Failed != 1 {
				t.Errorf("%s: %v %s", name, err, data)
			}
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
		}
	}
}

// TestDeprecatedAliasHeaders: /alloc still works but advertises its
// successor; /v1/alloc does not carry the deprecation marker.
func TestDeprecatedAliasHeaders(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/alloc", "text/plain", strings.NewReader(testGraph))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/alloc: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/alloc missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/alloc") || !strings.Contains(link, "successor-version") {
		t.Errorf("/alloc Link header %q", link)
	}

	resp, err = http.Post(ts.URL+"/v1/alloc", "text/plain", strings.NewReader(testGraph))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/alloc carries a Deprecation header")
	}
}

// TestV1SSAHeuristic: the SSA-form chordal allocator is reachable
// through the service with heuristic=ssa on source payloads, and a
// bare interference graph — which carries no dominance order for the
// greedy colorer — is rejected with the typed heuristic error.
func TestV1SSAHeuristic(t *testing.T) {
	_, ts := newTestServer(t)
	code, data := postAlloc(t, ts, "/v1/alloc?heuristic=ssa&kint=8&kfloat=4&colors=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("source + ssa: status %d: %s", code, data)
	}
	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if resp.Input != "src" || len(resp.Units) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	u := resp.Units[0]
	if u.Unit != "SAXPYISH" || u.LiveRanges == 0 || len(u.Colors) == 0 {
		t.Fatalf("unit = %+v", u)
	}

	// The JSON form resolves to the same canonical request: byte
	// parity plus a cache hit, like the briggs case in
	// TestV1JSONQueryParity.
	kint, kfloat := 8, 4
	jcode, jsonBody, cache := postJSON(t, ts, "/v1/alloc", &AllocRequest{
		Source: testSource, Heuristic: "ssa", KInt: &kint, KFloat: &kfloat, Colors: true,
	})
	if jcode != http.StatusOK {
		t.Fatalf("JSON form: status %d: %s", jcode, jsonBody)
	}
	if !bytes.Equal(data, jsonBody) {
		t.Fatalf("forms disagree:\nlegacy: %s\njson:   %s", data, jsonBody)
	}
	if cache != "hit" {
		t.Fatalf("X-Cache %q, want hit", cache)
	}

	code, data = postAlloc(t, ts, "/v1/alloc?input=ig&heuristic=ssa&kint=2", testGraph)
	if code != http.StatusBadRequest {
		t.Fatalf("graph + ssa: status %d, want 400: %s", code, data)
	}
	if e := errorEnvelope(t, data); e.Code != "bad_heuristic" {
		t.Fatalf("graph + ssa: code %q, want bad_heuristic (%s)", e.Code, data)
	}
}

// TestV1IRCHeuristic: the third allocator family over /v1 —
// heuristic=irc allocates source programs, and a bad heuristic's
// error detail enumerates the accepted spellings, irc included.
func TestV1IRCHeuristic(t *testing.T) {
	_, ts := newTestServer(t)
	code, data := postAlloc(t, ts, "/v1/alloc?heuristic=irc&kint=8&kfloat=4&colors=1", testSource)
	if code != http.StatusOK {
		t.Fatalf("source + irc: status %d: %s", code, data)
	}
	var resp allocResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if resp.Input != "src" || len(resp.Units) != 1 || resp.Units[0].Unit != "SAXPYISH" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Machine != nil {
		t.Fatalf("no machine requested, response echoes %+v", resp.Machine)
	}

	code, data = postAlloc(t, ts, "/v1/alloc?heuristic=bogus", testSource)
	if code != http.StatusBadRequest {
		t.Fatalf("bogus heuristic: status %d, want 400: %s", code, data)
	}
	e := errorEnvelope(t, data)
	if e.Code != "bad_heuristic" {
		t.Fatalf("code %q, want bad_heuristic (%s)", e.Code, data)
	}
	for _, name := range []string{"chaitin", "briggs", "mb", "ssa", "irc"} {
		if !strings.Contains(e.Detail, name) {
			t.Errorf("error detail %q does not list %q", e.Detail, name)
		}
	}

	code, data = postAlloc(t, ts, "/v1/alloc?input=ig&heuristic=irc&kint=2", testGraph)
	if code != http.StatusBadRequest {
		t.Fatalf("graph + irc: status %d, want 400: %s", code, data)
	}
	if e := errorEnvelope(t, data); e.Code != "bad_heuristic" {
		t.Fatalf("graph + irc: code %q, want bad_heuristic (%s)", e.Code, data)
	}
}

// TestV1MachineModel: machine=rtpc constrains the allocation and the
// resolved register-file model — per-class K, caller-saved split,
// convention bindings — is echoed in the reply, resized to the
// request's budgets.
func TestV1MachineModel(t *testing.T) {
	_, ts := newTestServer(t)
	for _, h := range []string{"briggs", "irc"} {
		code, data := postAlloc(t, ts, "/v1/alloc?heuristic="+h+"&machine=rtpc&kint=12&kfloat=8&colors=1", testSource)
		if code != http.StatusOK {
			t.Fatalf("%s + machine: status %d: %s", h, code, data)
		}
		var resp allocResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, data)
		}
		m := resp.Machine
		if m == nil || len(m.Classes) != 2 {
			t.Fatalf("%s: machine echo = %+v", h, m)
		}
		gpr, fpr := m.Classes[0], m.Classes[1]
		if gpr.K != 12 || gpr.CallerSaved != 6 || len(gpr.ArgRegs) != 4 || gpr.RetReg != 0 {
			t.Fatalf("%s: gpr echo = %+v", h, gpr)
		}
		if fpr.K != 8 || fpr.CallerSaved != 4 || len(fpr.ArgRegs) != 4 || fpr.RetReg != 0 {
			t.Fatalf("%s: fpr echo = %+v", h, fpr)
		}
	}

	// Unknown model names and graph payloads both fail typed.
	code, data := postAlloc(t, ts, "/v1/alloc?machine=vax", testSource)
	if code != http.StatusBadRequest {
		t.Fatalf("bad machine: status %d: %s", code, data)
	}
	if e := errorEnvelope(t, data); e.Code != "bad_machine" {
		t.Fatalf("bad machine: code %q (%s)", e.Code, data)
	}
	code, data = postAlloc(t, ts, "/v1/alloc?input=ig&machine=rtpc&kint=2", testGraph)
	if code != http.StatusBadRequest {
		t.Fatalf("graph + machine: status %d: %s", code, data)
	}
	if e := errorEnvelope(t, data); e.Code != "bad_machine" {
		t.Fatalf("graph + machine: code %q (%s)", e.Code, data)
	}
}
