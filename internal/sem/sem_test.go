package sem_test

import (
	"strings"
	"testing"

	"regalloc/internal/ast"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

func check(t *testing.T, src string) (*ast.Program, *sem.Info) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, info
}

func checkFails(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = sem.Check(prog)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestImplicitTyping(t *testing.T) {
	cases := map[string]ast.Type{
		"I": ast.TypeInt, "J": ast.TypeInt, "K": ast.TypeInt,
		"L": ast.TypeInt, "M": ast.TypeInt, "N": ast.TypeInt,
		"A": ast.TypeReal, "H": ast.TypeReal, "O": ast.TypeReal,
		"X": ast.TypeReal, "Z": ast.TypeReal, "IVAL": ast.TypeInt,
		"XVAL": ast.TypeReal,
	}
	for name, want := range cases {
		if got := sem.ImplicitType(name); got != want {
			t.Errorf("ImplicitType(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSymbolResolution(t *testing.T) {
	_, info := check(t, `
      SUBROUTINE FOO(A,N)
      REAL A(*)
      X = A(1)
      I = N + 1
      END
`)
	ui := info.Units["FOO"]
	if ui == nil {
		t.Fatal("no unit info")
	}
	a := ui.Sym("A")
	if a == nil || a.Kind != sem.SymParam || !a.IsArray() || a.Type != ast.TypeReal {
		t.Fatalf("A: %+v", a)
	}
	x := ui.Sym("X")
	if x == nil || x.Kind != sem.SymLocal || x.Type != ast.TypeReal {
		t.Fatalf("X: %+v", x)
	}
	i := ui.Sym("I")
	if i == nil || i.Type != ast.TypeInt {
		t.Fatalf("I: %+v", i)
	}
}

func TestFunctionReturnSymbol(t *testing.T) {
	_, info := check(t, `
      REAL FUNCTION F(X)
      F = X + 1.0
      END
`)
	f := info.Units["F"].Sym("F")
	if f == nil || f.Kind != sem.SymRet || f.Type != ast.TypeReal {
		t.Fatalf("F: %+v", f)
	}
	sig := info.Sigs["F"]
	if sig.Ret != ast.TypeReal || len(sig.Params) != 1 {
		t.Fatalf("sig: %+v", sig)
	}
}

func TestImplicitFunctionReturn(t *testing.T) {
	_, info := check(t, `
      FUNCTION IDX(N)
      IDX = N
      END
`)
	if info.Sigs["IDX"].Ret != ast.TypeInt {
		t.Fatal("IDX should implicitly return INTEGER")
	}
}

func TestArrayRefDisambiguation(t *testing.T) {
	prog, info := check(t, `
      REAL FUNCTION F(X)
      F = X
      END
      SUBROUTINE FOO(A,N)
      REAL A(*)
      Y = A(N) + F(A(1))
      END
`)
	ui := info.Units["FOO"]
	asg := prog.Unit("FOO").Body[0].(*ast.AssignStmt)
	bin := asg.RHS.(*ast.BinExpr)
	aref := bin.L.(*ast.CallExpr)
	if ui.CallKind[aref] != sem.CallArray {
		t.Fatalf("A(N) classified as %v", ui.CallKind[aref])
	}
	fcall := bin.R.(*ast.CallExpr)
	if ui.CallKind[fcall] != sem.CallUser {
		t.Fatalf("F(...) classified as %v", ui.CallKind[fcall])
	}
}

func TestIntrinsics(t *testing.T) {
	prog, info := check(t, `
      SUBROUTINE FOO(N)
      X = SQRT(ABS(Y)) + DMAX1(Y,Z)
      I = MOD(N,5) + MAX0(N,3)
      END
`)
	_ = prog
	ui := info.Units["FOO"]
	found := 0
	for _, in := range ui.Intrinsic {
		switch in {
		case sem.IntrSqrt, sem.IntrAbs, sem.IntrMax, sem.IntrMod:
			found++
		}
	}
	if found < 4 {
		t.Fatalf("found %d intrinsics, want >= 4 (incl. aliases)", found)
	}
}

func TestIntrinsicLookup(t *testing.T) {
	for name, want := range map[string]sem.Intrinsic{
		"DSQRT": sem.IntrSqrt, "IABS": sem.IntrAbs, "AMIN1": sem.IntrMin,
		"FLOAT": sem.IntrFloat, "IDINT": sem.IntrInt, "DSIGN": sem.IntrSign,
	} {
		got, ok := sem.LookupIntrinsic(name)
		if !ok || got != want {
			t.Errorf("LookupIntrinsic(%s) = %v %v", name, got, ok)
		}
	}
	if _, ok := sem.LookupIntrinsic("FROB"); ok {
		t.Error("FROB should not resolve")
	}
}

func TestExprTypes(t *testing.T) {
	prog, info := check(t, `
      SUBROUTINE FOO(N)
      X = N + 1.5
      I = N/2
      END
`)
	ui := info.Units["FOO"]
	mixed := prog.Unit("FOO").Body[0].(*ast.AssignStmt).RHS
	if ui.TypeOf(mixed) != ast.TypeReal {
		t.Fatal("INTEGER + REAL should be REAL")
	}
	div := prog.Unit("FOO").Body[1].(*ast.AssignStmt).RHS
	if ui.TypeOf(div) != ast.TypeInt {
		t.Fatal("INTEGER / INTEGER should be INTEGER")
	}
}

func TestErrors(t *testing.T) {
	checkFails(t, `
      SUBROUTINE FOO(N)
      X = A(1)
      END
`, "unknown function or array")

	checkFails(t, `
      SUBROUTINE FOO(N)
      REAL A(10)
      X = A(1,2)
      END
`, "indexed with 2")

	checkFails(t, `
      SUBROUTINE FOO(N)
      REAL A(10)
      A = 1.0
      END
`, "without indexes")

	checkFails(t, `
      SUBROUTINE FOO(N)
      DO X = 1,N
      ENDDO
      END
`, "must be INTEGER")

	checkFails(t, `
      SUBROUTINE FOO(N)
      CALL NOPE(N)
      END
`, "unknown subroutine")

	checkFails(t, `
      SUBROUTINE FOO(N)
      REAL A(*)
      END
`, "only legal for parameters")

	checkFails(t, `
      SUBROUTINE FOO(A,B)
      REAL A(*), B
      CALL BAR(B)
      RETURN
      END
      SUBROUTINE BAR(X)
      REAL X(*)
      RETURN
      END
`, "is not an array")

	checkFails(t, `
      SUBROUTINE FOO(N)
      X = SQRT(1.0, 2.0)
      END
`, "expects 1 argument")

	checkFails(t, `
      SUBROUTINE FOO(N)
      RETURN
      END
      SUBROUTINE FOO(M)
      RETURN
      END
`, "duplicate unit")
}

func TestCallArgCountMismatch(t *testing.T) {
	checkFails(t, `
      SUBROUTINE FOO(N)
      CALL BAR(N, N)
      RETURN
      END
      SUBROUTINE BAR(X)
      RETURN
      END
`, "expects 1 argument")
}

func TestFunctionCalledAsSubroutine(t *testing.T) {
	checkFails(t, `
      REAL FUNCTION F(X)
      F = X
      END
      SUBROUTINE FOO(N)
      CALL F(1.0)
      END
`, "is a FUNCTION")
}

func TestAdjustableDimensionRules(t *testing.T) {
	// LDA must be an integer scalar parameter.
	checkFails(t, `
      SUBROUTINE FOO(A)
      REAL A(LDA,*)
      END
`, "must be a scalar parameter")

	check(t, `
      SUBROUTINE FOO(A,LDA)
      REAL A(LDA,*)
      X = A(1,1)
      END
`)
}
