// Package coalesce implements Chaitin-style aggressive copy
// coalescing: any register-to-register move whose source and
// destination do not interfere is eliminated by merging the two live
// ranges, and the build/coalesce step repeats until no move can be
// removed (the inner loop of the paper's Figure 4 "build" box).
//
// This is the pre-pass flavor of coalescing: each move is tested once
// (aggressively, or conservatively under Options.ConservativeCoalesce)
// against the full-pressure interference graph before any
// simplification happens. The complementary approach — retesting
// every move as simplification lowers its neighborhood's degrees —
// lives in internal/irc, the George–Appel iterated-register-coalescing
// worklist machine that the irc heuristic runs as a terminal round on
// top of this pre-pass.
package coalesce

import (
	"regalloc/internal/dataflow"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Stats summarizes one coalescing run for the caller's accounting.
type Stats struct {
	// Moves is the total number of copies eliminated.
	Moves int
	// Rounds is the number of build/coalesce rounds run (always at
	// least one; the last round merges nothing).
	Rounds int
	// LivenessRuns counts the liveness recomputations forced by
	// merging rounds: the round that reaches fixpoint reuses the
	// liveness it was handed, so a function with no coalescable
	// moves costs zero recomputations.
	LivenessRuns int
}

// Run coalesces moves in f until fixpoint, rewriting registers and
// deleting the eliminated copies. It returns the number of moves
// removed and the interference graph of the final program, which the
// caller may reuse.
//
// Moves involving a spill temporary are never coalesced: merging a
// reload temporary back into a long-lived range would undo the spill
// and could keep the allocator from converging.
func Run(f *ir.Func) (int, *ig.Graph) {
	st, g := RunWithLiveness(f, dataflow.ComputeLiveness(f), nil, 1, nil)
	return st.Moves, finalGraph(f, g, nil)
}

// RunTraced is Run with an observability tracer: each build/coalesce
// round emits counters for the moves examined and merged, which is
// finer-grained than the total Run returns (the fixpoint loop's
// convergence is visible round by round). A nil tracer makes it
// identical to Run.
func RunTraced(f *ir.Func, tr *obs.Tracer) (int, *ig.Graph) {
	st, g := RunWithLiveness(f, dataflow.ComputeLiveness(f), nil, 1, tr)
	return st.Moves, finalGraph(f, g, tr)
}

// RunConservativeTraced is RunConservative with an observability
// tracer; see RunTraced.
func RunConservativeTraced(f *ir.Func, k func(ir.Class) int, tr *obs.Tracer) (int, *ig.Graph) {
	st, g := RunWithLiveness(f, dataflow.ComputeLiveness(f), k, 1, tr)
	return st.Moves, finalGraph(f, g, tr)
}

// finalGraph upholds the convenience entry points' contract of always
// returning a graph: when RunWithLiveness skipped the final build
// (because merged moves force the caller to renumber and rebuild
// anyway), build one for the rewritten function here.
func finalGraph(f *ir.Func, g *ig.Graph, tr *obs.Tracer) *ig.Graph {
	if g == nil {
		g = ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 1, tr)
	}
	return g
}

// RunConservative coalesces with the Briggs conservative test that
// the same authors published five years after this paper
// ("Improvements to Graph Coloring Register Allocation", TOPLAS
// 1994): a move is merged only when the combined node would have
// fewer than k neighbors of significant degree (degree >= k for
// their class), which guarantees the merge can never turn a
// colorable graph into a spilling one. Included as an ablation — the
// paper's own allocator coalesces aggressively.
func RunConservative(f *ir.Func, k func(ir.Class) int) (int, *ig.Graph) {
	st, g := RunWithLiveness(f, dataflow.ComputeLiveness(f), k, 1, nil)
	return st.Moves, finalGraph(f, g, nil)
}

// interferer is the one question a coalescing round asks of the
// interference relation.
type interferer interface {
	Interfere(a, b int32) bool
}

// RunWithLiveness is the allocator's cache-aware entry point: lv must
// be a current liveness for f, which the first build/coalesce round
// reuses instead of recomputing. Liveness is revalidated only when a
// round actually merged moves (the rewrite renames registers, so the
// cached sets go stale); the common converged round costs no dataflow
// at all. conservativeK, when non-nil, switches to the Briggs
// conservative test; workers > 1 shards the graph builds (see
// ig.BuildWithLiveness).
//
// The returned graph is non-nil only when no move was merged: a
// convergence-without-merges round's graph still describes f exactly,
// so the caller can color on it directly. After any merge, f has been
// rewritten and the caller must renumber before building the graph it
// will color on — returning one here would only be thrown away, so
// none is built. (The aggressive rounds after the first never build
// full graphs at all: they only need membership queries, which the
// much cheaper ig.BuildMatrix answers. Conservative rounds always
// need full graphs — the Briggs test reads neighbor lists.)
func RunWithLiveness(f *ir.Func, lv *dataflow.Liveness, conservativeK func(ir.Class) int, workers int, tr *obs.Tracer) (Stats, *ig.Graph) {
	var st Stats
	for {
		var q interferer
		var g *ig.Graph
		if conservativeK != nil || st.Rounds == 0 {
			// The first round's graph doubles as the return value when
			// the function has no coalescable moves — the overwhelmingly
			// common case on every pass after the first.
			g = ig.BuildWithLiveness(f, lv, workers, tr)
			q = g
		} else {
			q = ig.BuildMatrix(f, lv, workers, tr)
		}
		examined := 0
		parent := make([]ir.Reg, f.NumRegs())
		for i := range parent {
			parent[i] = ir.Reg(i)
		}
		var find func(ir.Reg) ir.Reg
		find = func(x ir.Reg) ir.Reg {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}

		merged := 0
		touched := make([]bool, f.NumRegs())
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if !in.IsMove() || in.A == ir.NoReg {
					continue
				}
				dst, src := in.Dst, in.A
				if dst == src {
					continue
				}
				examined++
				// Only coalesce pairs untouched in this round: the
				// static graph g cannot answer interference queries
				// about a range merged moments ago (its true
				// neighbor set is already larger than g records).
				// Chained copies are picked up by the next
				// build/coalesce round.
				if touched[dst] || touched[src] {
					continue
				}
				if f.RegClass(dst) != f.RegClass(src) {
					continue
				}
				if f.RegFlags(dst)&ir.FlagSpillTemp != 0 || f.RegFlags(src)&ir.FlagSpillTemp != 0 {
					continue
				}
				if q.Interfere(int32(dst), int32(src)) {
					continue
				}
				if conservativeK != nil && !briggsTest(g, f, dst, src, conservativeK) {
					continue
				}
				touched[dst] = true
				touched[src] = true
				// Merge into the smaller id for determinism.
				if src < dst {
					dst, src = src, dst
				}
				parent[src] = dst
				merged++
			}
		}
		if tr.Enabled() {
			tr.Counter(obs.PhaseCoalesce, "coalesce.examined", int64(examined))
			tr.Counter(obs.PhaseCoalesce, "coalesce.merged", int64(merged))
		}
		st.Rounds++
		if merged == 0 {
			if tr.Enabled() {
				tr.Counter(obs.PhaseCoalesce, "coalesce.rounds", int64(st.Rounds))
			}
			if st.Moves > 0 {
				g = nil // f was rewritten; see the contract above
			}
			return st, g
		}
		st.Moves += merged
		rewrite(f, find)
		// The rewrite renamed registers, invalidating lv; the next
		// round needs fresh sets.
		lv = dataflow.ComputeLiveness(f)
		st.LivenessRuns++
	}
}

// briggsTest is the conservative-coalescing criterion: merging dst
// and src is safe when the combined node has fewer than k neighbors
// of significant degree. A neighbor adjacent to both ends loses one
// edge in the merge, so its effective degree drops by one.
func briggsTest(g *ig.Graph, f *ir.Func, dst, src ir.Reg, kOf func(ir.Class) int) bool {
	k := kOf(f.RegClass(dst))
	deg := make(map[int32]int)
	for _, nb := range g.Neighbors(int32(dst)) {
		deg[nb] = g.Degree(nb)
	}
	for _, nb := range g.Neighbors(int32(src)) {
		if _, common := deg[nb]; common {
			deg[nb] = g.Degree(nb) - 1
		} else {
			deg[nb] = g.Degree(nb)
		}
	}
	delete(deg, int32(dst))
	delete(deg, int32(src))
	significant := 0
	for _, d := range deg {
		if d >= k {
			significant++
		}
	}
	return significant < k
}

// rewrite renames every operand to its representative and deletes
// moves that became self-copies.
func rewrite(f *ir.Func, find func(ir.Reg) ir.Reg) {
	ren := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return find(r)
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			in.Dst = ren(in.Dst)
			in.A = ren(in.A)
			in.B = ren(in.B)
			in.C = ren(in.C)
			for j, a := range in.Args {
				in.Args[j] = ren(a)
			}
			if in.IsMove() && in.Dst == in.A {
				continue // coalesced copy disappears
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	for i, p := range f.Params {
		f.Params[i] = ren(p)
	}
}
