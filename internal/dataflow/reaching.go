package dataflow

import (
	"regalloc/internal/bitset"
	"regalloc/internal/ir"
)

// DefSite identifies one definition occurrence: instruction Index of
// block Block defines register Reg. The renumbering pass also
// fabricates one "entry" def site (Block = 0, Index = -1) for any
// register with an upward-exposed use at function entry, so every
// use has at least one reaching definition.
type DefSite struct {
	Block int
	Index int // -1 for a fabricated entry definition
	Reg   ir.Reg
}

// Reaching is the result of reaching-definitions analysis.
type Reaching struct {
	Sites  []DefSite     // all def sites, in discovery order
	ByReg  [][]int       // def-site indices per register
	In     []*bitset.Set // per block: sites reaching block entry
	numReg int
}

// ComputeReaching runs forward iterative reaching-definitions
// analysis over def sites.
func ComputeReaching(f *ir.Func) *Reaching {
	nr := f.NumRegs()
	r := &Reaching{ByReg: make([][]int, nr), numReg: nr}

	// Enumerate def sites. Fabricated entry defs come first so that
	// uses of never-defined registers (possible for uninitialized
	// scalars) still resolve.
	liveIn := ComputeLiveness(f).In[0]
	defined := make([]bool, nr)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				defined[d] = true
			}
		}
	}
	for reg := 0; reg < nr; reg++ {
		if liveIn.Has(reg) || !defined[reg] {
			r.addSite(DefSite{Block: 0, Index: -1, Reg: ir.Reg(reg)})
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				r.addSite(DefSite{Block: b.ID, Index: i, Reg: d})
			}
		}
	}

	ns := len(r.Sites)
	gen := make([]*bitset.Set, len(f.Blocks))
	kill := make([]*bitset.Set, len(f.Blocks))
	r.In = make([]*bitset.Set, len(f.Blocks))
	out := make([]*bitset.Set, len(f.Blocks))
	for _, b := range f.Blocks {
		gen[b.ID] = bitset.New(ns)
		kill[b.ID] = bitset.New(ns)
		r.In[b.ID] = bitset.New(ns)
		out[b.ID] = bitset.New(ns)
	}

	// Per-block gen/kill: the last def of a register in the block
	// generates; every def kills all other sites of that register.
	for _, b := range f.Blocks {
		last := make(map[ir.Reg]int)
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				last[d] = i
			}
		}
		for si, s := range r.Sites {
			if s.Block != b.ID {
				continue
			}
			li, ok := last[s.Reg]
			isLast := ok && (s.Index == li || (s.Index == -1 && false))
			if s.Index == -1 {
				// Entry pseudo-def generates only if block 0 has no
				// real def of the register.
				isLast = b.ID == 0 && !ok
			}
			if isLast {
				gen[b.ID].Add(si)
			}
			// Kill every other site of the same register.
			if s.Index >= 0 || b.ID == 0 {
				for _, other := range r.ByReg[s.Reg] {
					if other != si {
						kill[b.ID].Add(other)
					}
				}
			}
		}
	}

	// Entry pseudo-defs reach block 0's entry.
	for si, s := range r.Sites {
		if s.Index == -1 {
			r.In[0].Add(si)
		}
	}

	tmp := bitset.New(ns)
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			in := r.In[b.ID]
			for _, p := range b.Preds {
				if in.Union(out[p]) {
					changed = true
				}
			}
			// out = gen ∪ (in − kill)
			tmp.CopyFrom(in)
			tmp.Subtract(kill[b.ID])
			tmp.Union(gen[b.ID])
			if !tmp.Equal(out[b.ID]) {
				out[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return r
}

func (r *Reaching) addSite(s DefSite) {
	idx := len(r.Sites)
	r.Sites = append(r.Sites, s)
	r.ByReg[s.Reg] = append(r.ByReg[s.Reg], idx)
}

// WalkUses traverses block b forward, maintaining the set of def
// sites that reach each instruction. For every register use it calls
// visit with the indices (into Sites) of the defs of that register
// that reach the use. The slice passed to visit is reused.
func (r *Reaching) WalkUses(f *ir.Func, b *ir.Block, visit func(i int, in *ir.Instr, use ir.Reg, reachingDefs []int)) {
	cur := r.In[b.ID].Copy()
	var ubuf []ir.Reg
	var dbuf []int
	for i := range b.Instrs {
		in := &b.Instrs[i]
		ubuf = in.AppendUses(ubuf[:0])
		for _, u := range ubuf {
			dbuf = dbuf[:0]
			for _, si := range r.ByReg[u] {
				if cur.Has(si) {
					dbuf = append(dbuf, si)
				}
			}
			visit(i, in, u, dbuf)
		}
		if d := in.Def(); d != ir.NoReg {
			for _, si := range r.ByReg[d] {
				cur.Remove(si)
			}
			// Find this instruction's own site and add it.
			for _, si := range r.ByReg[d] {
				s := r.Sites[si]
				if s.Block == b.ID && s.Index == i {
					cur.Add(si)
					break
				}
			}
		}
	}
}
