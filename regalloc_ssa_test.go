package regalloc_test

import (
	"testing"

	"regalloc"
	"regalloc/internal/ir"
	"regalloc/internal/ssa"
	"regalloc/internal/workloads"
)

// TestSSANeverWorseThanChaitinWhenPressureFits is the differential
// equivalence table: on every corpus unit whose post-construction
// MAXLIVE already fits the register file, the SSA allocator's
// decoupled spill phase must stay idle — zero spills, so its spill
// cost is trivially no worse than Chaitin's on the same unit — and
// any unit the Chaitin allocator keeps zero-spill must stay
// zero-spill under SSA.
func TestSSANeverWorseThanChaitinWhenPressureFits(t *testing.T) {
	all := append(workloads.All(), workloads.Quicksort(), workloads.IntegerKernels())
	for _, w := range all {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			t.Fatalf("compile %s: %v", w.Program, err)
		}
		for _, routine := range w.Routines {
			for _, kk := range [][2]int{{16, 8}, {8, 4}} {
				f := prog.Func(routine)
				if f == nil {
					t.Fatalf("%s: no routine %s", w.Program, routine)
				}
				s, err := ssa.Construct(f.Clone())
				if err != nil {
					t.Fatalf("%s/%s: construct: %v", w.Program, routine, err)
				}
				a := ssa.Analyze(s)
				fits := a.MaxLive[ir.ClassInt] <= kk[0] && a.MaxLive[ir.ClassFloat] <= kk[1]

				opt := regalloc.DefaultOptions()
				opt.KInt, opt.KFloat = kk[0], kk[1]
				opt.Heuristic = regalloc.SSA
				sres, serr := prog.Allocate(routine, opt)

				opt.Heuristic = regalloc.Chaitin
				cres, cerr := prog.Allocate(routine, opt)

				if fits {
					if serr != nil {
						t.Fatalf("%s/%s at k=%v: MAXLIVE fits yet SSA failed: %v", w.Program, routine, kk, serr)
					}
					if n := sres.TotalSpilled(); n != 0 {
						t.Errorf("%s/%s at k=%v: MAXLIVE fits yet SSA spilled %d values", w.Program, routine, kk, n)
					}
					if cerr == nil && sres.TotalSpillCost() > cres.TotalSpillCost() {
						t.Errorf("%s/%s at k=%v: SSA spill cost %.3f exceeds Chaitin's %.3f",
							w.Program, routine, kk, sres.TotalSpillCost(), cres.TotalSpillCost())
					}
				}
				if cerr == nil && cres.TotalSpilled() == 0 {
					if serr != nil {
						t.Fatalf("%s/%s at k=%v: Chaitin is zero-spill yet SSA failed: %v", w.Program, routine, kk, serr)
					}
					if n := sres.TotalSpilled(); n != 0 {
						t.Errorf("%s/%s at k=%v: Chaitin is zero-spill yet SSA spilled %d values", w.Program, routine, kk, n)
					}
				}
			}
		}
	}
}
