package alloc

import (
	"context"
	"fmt"
	"time"

	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/ssa"
)

// runSSA dispatches opt.Heuristic == color.SSA to the SSA-form
// chordal allocator (internal/ssa) and maps its phase statistics onto
// the Figure 4 pass shape the rest of the system reports: one
// PassStats per pre-spill round carrying that round's spill work, and
// a final pass carrying the build and coloring times. The result is
// re-checked with the program-level verifier before it is returned —
// the SSA path skips color.Verify's graph check (its coloring is
// optimal by construction, and lowering adds scratch registers the
// analysis graph never saw), so the stronger oracle runs instead.
func runSSA(ctx context.Context, f *ir.Func, opt Options) (*Result, error) {
	work := f.Clone()
	tr := obs.New(opt.Observer, f.Name)
	runStart := time.Now()
	sres, err := ssa.Allocate(ctx, work, opt.K(), opt.CostParams, tr)
	if err != nil {
		return nil, err
	}
	if err := VerifyAssignment(sres.Func, sres.Colors); err != nil {
		return nil, fmt.Errorf("alloc: %s: ssa: %w", f.Name, err)
	}
	res := &Result{Options: opt, Func: sres.Func, Colors: sres.Colors}
	st := &sres.Stats
	for _, rd := range st.Rounds {
		res.Passes = append(res.Passes, PassStats{
			Spilled:        rd.Spilled,
			SpillCost:      rd.SpillCost,
			LoadsInserted:  rd.Loads,
			StoresInserted: rd.Stores,
			LiveRanges:     st.LiveRanges,
			Edges:          st.Edges,
		})
	}
	res.Passes = append(res.Passes, PassStats{
		Color:      st.Color + st.Lower,
		LiveRanges: st.LiveRanges,
		Edges:      st.Edges,
	})
	res.Passes[0].Build = st.Build
	res.Passes[0].Spill = st.Spill
	recordPassSpans(ctx, f.Name, opt, res.Passes, runStart)
	return res, nil
}
