package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
)

// ScaleRow is one (topology, algorithm, workers) cell of the scale
// study: generation and coloring wall time on a 10^5..10^7-node
// graph.
type ScaleRow struct {
	Topology  string // "powerlaw" or "mesh"
	Nodes     int
	Edges     int
	Algo      string // "speculative" or "jp"
	Workers   int
	GenNS     int64
	ColorNS   int64
	Rounds    int
	Conflicts int
	Colors    int // int-class palette (the scale graphs are single-class)
}

// ScaleStudyResult is the full table.
type ScaleStudyResult struct {
	GoMaxProcs int
	Rows       []ScaleRow
}

// ScaleStudy colors the scale tier: a Barabási–Albert power-law
// graph and a 2D mesh of ~nodes nodes each (the two extreme degree
// profiles large interference problems exhibit), under both parallel
// engines at 1 worker and at GOMAXPROCS. Graphs this size are what
// the CSR adjacency backbone is for; the study is the repo's
// standing evidence that a million-node graph colors in seconds.
// nodes <= 0 defaults to 100,000.
func ScaleStudy(nodes int) (*ScaleStudyResult, error) {
	if nodes <= 0 {
		nodes = 100_000
	}
	reps := 2
	if nodes > 250_000 {
		reps = 1
	}
	side := int(math.Sqrt(float64(nodes)))
	if side < 1 {
		side = 1
	}

	type spec struct {
		topology string
		g        *ig.Graph
		genNS    int64
	}
	var specs []spec
	{
		t0 := time.Now()
		g, _ := graphgen.PowerLaw(nodes, 4, 1)
		specs = append(specs, spec{"powerlaw", g, time.Since(t0).Nanoseconds()})
	}
	{
		t0 := time.Now()
		g, _ := graphgen.Mesh(side, side)
		specs = append(specs, spec{"mesh", g, time.Since(t0).Nanoseconds()})
	}

	out := &ScaleStudyResult{GoMaxProcs: runtime.GOMAXPROCS(0)}
	workerCounts := []int{1}
	if gmp := runtime.GOMAXPROCS(0); gmp > 1 {
		workerCounts = append(workerCounts, gmp)
	}
	for _, s := range specs {
		for _, algo := range []pcolor.Algo{pcolor.Speculative, pcolor.JonesPlassmann} {
			for _, workers := range workerCounts {
				tr := obs.New(observer, fmt.Sprintf("scale:%s:%s", s.topology, algo))
				var best int64
				var st *pcolor.Stats
				var colors []int16
				for r := 0; r < reps; r++ {
					t0 := time.Now()
					colors, st = pcolor.Color(s.g, pcolor.Options{Workers: workers, Seed: 1, Algo: algo, Tracer: tr})
					if ns := time.Since(t0).Nanoseconds(); best == 0 || ns < best {
						best = ns
					}
				}
				if err := color.Verify(s.g, colors, pcolor.KFor(st)); err != nil {
					return nil, fmt.Errorf("scale study: %s %s workers=%d: %w", s.topology, algo, workers, err)
				}
				out.Rows = append(out.Rows, ScaleRow{
					Topology:  s.topology,
					Nodes:     s.g.NumNodes(),
					Edges:     s.g.NumEdges(),
					Algo:      algo.String(),
					Workers:   st.Workers,
					GenNS:     s.genNS,
					ColorNS:   best,
					Rounds:    st.Rounds,
					Conflicts: st.Conflicts,
					Colors:    st.ColorsInt,
				})
			}
		}
	}
	return out, nil
}

// String renders the study table.
func (r *ScaleStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale tier: CSR build + parallel coloring (GOMAXPROCS=%d)\n", r.GoMaxProcs)
	fmt.Fprintf(&b, "%-9s | %8s %9s | %-11s %2s | %6s %9s %6s | %10s %10s\n",
		"topology", "nodes", "edges", "algo", "w", "rounds", "conflicts", "colors", "gen", "color")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s | %8d %9d | %-11s %2d | %6d %9d %6d | %10s %10s\n",
			row.Topology, row.Nodes, row.Edges, row.Algo, row.Workers,
			row.Rounds, row.Conflicts, row.Colors,
			time.Duration(row.GenNS), time.Duration(row.ColorNS))
	}
	b.WriteString("gen is one-time graph construction; color is best-rep wall clock; jp rounds/colors are worker-independent\n")
	return b.String()
}
