// Command ccvm loads a binary object file produced by `fcc -o` and
// runs a function on the simulated machine, reporting the result and
// the cycle count — the deploy-side half of the toolchain.
//
// Usage:
//
//	ccvm prog.obj FUNC arg...
//
// Arguments are parsed as integers unless they contain '.' or 'e',
// in which case they are floats. Integer arguments frequently are
// memory addresses (array bases); use -fill to deterministically
// fill a region with pseudo-random integers first and -dump to print
// a region afterwards:
//
//	fcc -o qs.obj qsort.f
//	ccvm -fill 0:200000 -dump 0:10 qs.obj QSORT 0 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"regalloc/internal/encode"
	"regalloc/internal/vm"
)

func main() {
	fill := flag.String("fill", "", "fill memory words \"start:count\" with deterministic pseudo-random integers")
	dump := flag.String("dump", "", "after the run, print memory words \"start:count\" as integers")
	dumpF := flag.String("dumpf", "", "after the run, print memory words \"start:count\" as floats")
	mem := flag.Int("mem", 1<<22, "memory size in words")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: ccvm [flags] prog.obj FUNC [args...]")
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	fail(err)
	prog, err := encode.DecodeProgram(data)
	fail(err)
	m := vm.New(prog, *mem)

	if *fill != "" {
		start, count, err := parseRange(*fill)
		fail(err)
		seed := uint64(0x9E3779B97F4A7C15)
		for i := int64(0); i < count; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			m.StoreInt(start+i, int64(seed>>40))
		}
	}

	var args []vm.Value
	for _, s := range flag.Args()[2:] {
		args = append(args, parseArg(s))
	}
	ret, err := m.Call(flag.Arg(1), args...)
	fail(err)

	fmt.Printf("cycles: %d\n", m.Cycles)
	if ret.Cls == 0 && ret.I == 0 && ret.F == 0 {
		fmt.Println("result: (subroutine)")
	} else if ret.Cls == 1 {
		fmt.Printf("result: %g\n", ret.F)
	} else {
		fmt.Printf("result: %d\n", ret.I)
	}

	if *dump != "" {
		start, count, err := parseRange(*dump)
		fail(err)
		for i := int64(0); i < count; i++ {
			fmt.Printf("m[%d] = %d\n", start+i, m.LoadInt(start+i))
		}
	}
	if *dumpF != "" {
		start, count, err := parseRange(*dumpF)
		fail(err)
		for i := int64(0); i < count; i++ {
			fmt.Printf("m[%d] = %g\n", start+i, m.LoadFloat(start+i))
		}
	}
}

func parseRange(s string) (start, count int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q (want start:count)", s)
	}
	start, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	count, err = strconv.ParseInt(parts[1], 10, 64)
	return start, count, err
}

func parseArg(s string) vm.Value {
	if strings.ContainsAny(s, ".eE") {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return vm.Float(f)
		}
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return vm.Int(i)
	}
	fmt.Fprintf(os.Stderr, "ccvm: bad argument %q\n", s)
	os.Exit(2)
	return vm.Value{}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccvm:", err)
		os.Exit(1)
	}
}
