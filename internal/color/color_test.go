package color_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

func kAll(k int) color.K { return func(ir.Class) int { return k } }

// simplifyAndSelect runs the full heuristic and returns the colors
// and the set of spilled nodes.
func simplifyAndSelect(g *ig.Graph, cost []float64, k int, h color.Heuristic) ([]int16, []int32) {
	sr := color.Simplify(g, cost, kAll(k), h, color.CostOverDegree)
	if h == color.Chaitin && len(sr.SpillMarked) > 0 {
		return nil, sr.SpillMarked
	}
	colors, uncolored := color.Select(g, sr.Stack, kAll(k), h != color.Chaitin)
	return colors, uncolored
}

// TestFigure2 reproduces the paper's Figure 2: a five-node graph
// that simplification 3-colors with no spilling under every
// heuristic. The graph is the classic example: a triangle {b, d, e}
// with pendant structure on a and c.
func TestFigure2(t *testing.T) {
	const a, b, c, d, e = 0, 1, 2, 3, 4
	classes := make([]ir.Class, 5)
	costs := []float64{100, 100, 100, 100, 100}
	edges := [][2]int32{{a, b}, {a, d}, {b, c}, {b, d}, {b, e}, {c, e}, {d, e}}
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		g := ig.New(classes)
		for _, ed := range edges {
			g.AddEdge(ed[0], ed[1])
		}
		colors, spilled := simplifyAndSelect(g, costs, 3, h)
		if len(spilled) != 0 {
			t.Fatalf("%s: spilled %v on a 3-colorable graph with k=3", h, spilled)
		}
		if err := color.Verify(g, colors, kAll(3)); err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		for n := int32(0); n < 5; n++ {
			if colors[n] == color.NoColor {
				t.Fatalf("%s: node %d left uncolored", h, n)
			}
		}
	}
}

// TestFigure3 reproduces the paper's Figure 3: the 4-cycle
// w-x-y-z-w needs only two colors, but with k=2 Chaitin's heuristic
// immediately gets stuck (every node has degree 2) and spills, while
// the optimistic heuristic 2-colors it.
func TestFigure3(t *testing.T) {
	g, costs := graphgen.Cycle(4)

	// Chaitin spills (the paper: "we have to insert spill code,
	// rebuild the interference graph, and try again").
	sr := color.Simplify(g, costs, kAll(2), color.Chaitin, color.CostOverDegree)
	if len(sr.SpillMarked) == 0 {
		t.Fatal("chaitin: expected a spill on C4 with k=2")
	}

	// Briggs colors it with no spills.
	colors, uncolored := simplifyAndSelect(g, costs, 2, color.Briggs)
	if len(uncolored) != 0 {
		t.Fatalf("briggs: spilled %v on the 2-colorable C4 with k=2", uncolored)
	}
	if err := color.Verify(g, colors, kAll(2)); err != nil {
		t.Fatalf("briggs: %v", err)
	}

	// Matula–Beck also colors it (same optimistic select).
	colors, uncolored = simplifyAndSelect(g, costs, 2, color.MatulaBeck)
	if len(uncolored) != 0 {
		t.Fatalf("matula-beck: spilled %v on C4 with k=2", uncolored)
	}
	if err := color.Verify(g, colors, kAll(2)); err != nil {
		t.Fatalf("matula-beck: %v", err)
	}
}

// TestOddCycleSpills checks the other direction: C5 with k=2 is NOT
// 2-colorable, so even the optimistic heuristic must spill — but
// exactly one node.
func TestOddCycleSpills(t *testing.T) {
	g, costs := graphgen.Cycle(5)
	_, uncolored := simplifyAndSelect(g, costs, 2, color.Briggs)
	if len(uncolored) != 1 {
		t.Fatalf("briggs on C5, k=2: spilled %d nodes, want exactly 1", len(uncolored))
	}
}

// TestValidColoring is the fundamental safety property on random
// graphs: whatever is colored is properly colored, for all three
// heuristics, across densities and k.
func TestValidColoring(t *testing.T) {
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		for _, p := range []float64{0.02, 0.1, 0.3, 0.7} {
			for _, k := range []int{2, 4, 8, 16} {
				for seed := uint64(1); seed <= 5; seed++ {
					g, costs := graphgen.Random(60, p, seed*7+uint64(k))
					colors, _ := simplifyAndSelect(g, costs, k, h)
					if h == color.Chaitin && colors == nil {
						continue // spilled without coloring; nothing to verify
					}
					if err := color.Verify(g, colors, kAll(k)); err != nil {
						t.Fatalf("%s p=%g k=%d seed=%d: %v", h, p, k, seed, err)
					}
				}
			}
		}
	}
}

// TestBriggsNeverSpillsMore is the paper's dominance claim (§2.3):
// on any single pass, the optimistic heuristic spills a subset of
// what Chaitin's heuristic spills — never more nodes. Verified by
// testing/quick over random graphs.
func TestBriggsNeverSpillsMore(t *testing.T) {
	prop := func(seed uint64, pRaw uint8, kRaw uint8) bool {
		p := 0.02 + float64(pRaw%80)/100.0
		k := 2 + int(kRaw%15)
		g, costs := graphgen.Random(50, p, seed)
		chaitinSR := color.Simplify(g, costs, kAll(k), color.Chaitin, color.CostOverDegree)
		_, briggsSpills := simplifyAndSelect(g, costs, k, color.Briggs)

		// Count: Briggs never spills more…
		if len(briggsSpills) > len(chaitinSR.SpillMarked) {
			return false
		}
		// …and in fact spills a subset of the same nodes.
		marked := make(map[int32]bool)
		for _, n := range chaitinSR.SpillMarked {
			marked[n] = true
		}
		for _, n := range briggsSpills {
			if !marked[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIdenticalWhenNoSpills: when Chaitin colors a graph without
// spilling, the optimistic heuristic produces the *identical*
// assignment (§2.2: "If Chaitin's method colors the graph without
// inserting spill code, our method will, too" — and with shared
// tie-breaking, the very same colors).
func TestIdenticalWhenNoSpills(t *testing.T) {
	checked := 0
	for seed := uint64(1); seed <= 60; seed++ {
		g, costs := graphgen.Random(40, 0.1, seed)
		sr := color.Simplify(g, costs, kAll(8), color.Chaitin, color.CostOverDegree)
		if len(sr.SpillMarked) > 0 {
			continue
		}
		cOld, _ := color.Select(g, sr.Stack, kAll(8), false)
		cNew, un := simplifyAndSelect(g, costs, 8, color.Briggs)
		if len(un) != 0 {
			t.Fatalf("seed %d: briggs spilled where chaitin did not", seed)
		}
		for n := range cOld {
			if cOld[n] != cNew[n] {
				t.Fatalf("seed %d: node %d colored %d (old) vs %d (new)", seed, n, cOld[n], cNew[n])
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("too few spill-free instances (%d); adjust graph density", checked)
	}
}

// TestSVDLikePattern reproduces the paper's §1.2/§3 narrative on a
// synthetic graph with the SVD pressure pattern: Chaitin spills the
// cheap copy-loop ranges (pointlessly) plus more, while the
// optimistic allocator spills strictly less.
func TestSVDLikePattern(t *testing.T) {
	g, costs := graphgen.SVDLike(10, 4, 3, 10, 8, 42)
	k := 16
	chaitinSR := color.Simplify(g, costs, kAll(k), color.Chaitin, color.CostOverDegree)
	_, briggsSpills := simplifyAndSelect(g, costs, k, color.Briggs)
	if len(chaitinSR.SpillMarked) == 0 {
		t.Fatal("expected Chaitin to spill on the SVD-like graph")
	}
	if len(briggsSpills) >= len(chaitinSR.SpillMarked) {
		t.Fatalf("optimistic coloring should beat Chaitin here: briggs %d vs chaitin %d",
			len(briggsSpills), len(chaitinSR.SpillMarked))
	}
}

// TestTwoClassIndependence: with both register classes present,
// coloring respects each class's own k.
func TestTwoClassIndependence(t *testing.T) {
	g, costs := graphgen.TwoClass(80, 0.4, 11)
	k := color.NumColors(16, 8)
	sr := color.Simplify(g, costs, k, color.Briggs, color.CostOverDegree)
	colors, _ := color.Select(g, sr.Stack, k, true)
	if err := color.Verify(g, colors, k); err != nil {
		t.Fatal(err)
	}
}

// TestMetrics exercises the ablation metrics: all still produce
// valid colorings.
func TestMetrics(t *testing.T) {
	for _, m := range []color.Metric{color.CostOverDegree, color.CostOnly, color.DegreeOnly} {
		g, costs := graphgen.Random(60, 0.4, 5)
		sr := color.Simplify(g, costs, kAll(6), color.Briggs, m)
		colors, _ := color.Select(g, sr.Stack, kAll(6), true)
		if err := color.Verify(g, colors, kAll(6)); err != nil {
			t.Fatalf("metric %d: %v", m, err)
		}
	}
}

// TestChooseSpillPrefersCheap: with the cost/degree metric, an
// infinite-cost node is never chosen while a finite one remains.
func TestChooseSpillPrefersCheap(t *testing.T) {
	classes := make([]ir.Class, 4)
	g := ig.New(classes)
	for a := int32(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(a, b)
		}
	}
	costs := []float64{math.Inf(1), math.Inf(1), 5, math.Inf(1)}
	sr := color.Simplify(g, costs, kAll(2), color.Chaitin, color.CostOverDegree)
	if len(sr.SpillMarked) == 0 || sr.SpillMarked[0] != 2 {
		t.Fatalf("expected node 2 (the only finite-cost node) to be the first spill, got %v", sr.SpillMarked)
	}
}

// TestParseHeuristic covers the name parser: every accepted spelling
// resolves, and a rejected one names all the legal values, so a
// typo'd -heuristic (or allocd query) tells the caller what to type
// instead.
func TestParseHeuristic(t *testing.T) {
	cases := []struct {
		in   string
		want color.Heuristic
	}{
		{"chaitin", color.Chaitin}, {"old", color.Chaitin},
		{"briggs", color.Briggs}, {"new", color.Briggs}, {"optimistic", color.Briggs},
		{"matula-beck", color.MatulaBeck}, {"mb", color.MatulaBeck}, {"smallest-last", color.MatulaBeck},
		{"ssa", color.SSA}, {"chordal", color.SSA},
		{"irc", color.IRC}, {"iterated", color.IRC},
	}
	for _, tc := range cases {
		got, err := color.ParseHeuristic(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseHeuristic(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"nope", "", "BRIGGS", "george"} {
		_, err := color.ParseHeuristic(bad)
		if err == nil {
			t.Errorf("ParseHeuristic(%q) should fail", bad)
			continue
		}
		// The error must enumerate the accepted values — every legal
		// spelling appears in the message.
		for _, tc := range cases {
			if !strings.Contains(err.Error(), tc.in) {
				t.Errorf("ParseHeuristic(%q) error %q does not mention accepted spelling %q", bad, err, tc.in)
			}
		}
	}
}

// TestSimplifySelectPrecolored: nodes with fixed colors never enter
// the stack or the spill set, and selection colors the ordinary nodes
// around them.
func TestSimplifySelectPrecolored(t *testing.T) {
	// v0 and v1 are ordinary; p2 (color 0) and p3 (color 1) are
	// precolored. Edges: v0–p2, v1–p3. With k=2 and lowest-first
	// selection the assignment is forced around the fixed colors:
	// v0=1, v1=0.
	g := ig.New([]ir.Class{ir.ClassInt, ir.ClassInt, ir.ClassInt, ir.ClassInt})
	pre := []int16{-1, -1, 0, 1}
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cost := []float64{1, 1}
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		var sc color.Scratch
		sr := color.SimplifyPreInto(&sc, g, pre, cost, kAll(2), h, color.CostOverDegree, nil)
		for _, n := range sr.Stack {
			if n >= 2 {
				t.Fatalf("%s: precolored node %d was stacked", h, n)
			}
		}
		if len(sr.SpillMarked) > 0 {
			t.Fatalf("%s: spilled %v on a colorable graph", h, sr.SpillMarked)
		}
		colors, uncolored := color.SelectPreInto(&sc, g, pre, sr, kAll(2), h != color.Chaitin, nil)
		if len(uncolored) > 0 {
			t.Fatalf("%s: uncolored %v", h, uncolored)
		}
		if colors[0] != 1 || colors[1] != 0 {
			t.Fatalf("%s: colors = %v, want v0=1 v1=0", h, colors[:2])
		}
		if colors[2] != 0 || colors[3] != 1 {
			t.Fatalf("%s: precolored nodes moved: %v", h, colors[2:])
		}
	}
}

// TestMatulaBeckIgnoresCost: smallest-last ordering never consults
// costs, so two different cost vectors give the same stack.
func TestMatulaBeckIgnoresCost(t *testing.T) {
	g, costs := graphgen.Random(50, 0.3, 9)
	costs2 := make([]float64, len(costs))
	for i := range costs2 {
		costs2[i] = costs[len(costs)-1-i]
	}
	a := color.Simplify(g, costs, kAll(4), color.MatulaBeck, color.CostOverDegree)
	b := color.Simplify(g, costs2, kAll(4), color.MatulaBeck, color.CostOverDegree)
	if len(a.Stack) != len(b.Stack) {
		t.Fatal("stack lengths differ")
	}
	for i := range a.Stack {
		if a.Stack[i] != b.Stack[i] {
			t.Fatalf("stacks differ at %d", i)
		}
	}
	if len(a.SpillMarked) != 0 {
		t.Fatal("matula-beck must not mark spills in simplify")
	}
}
