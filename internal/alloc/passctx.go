package alloc

import (
	"regalloc/internal/cfg"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// passCtx is the per-pass analysis cache. One trip around the Figure
// 4 cycle needs live-variable analysis (graph build, coalescing) and
// CFG/loop analysis (spill-cost depths, split insertion); before
// this cache the driver recomputed liveness at every coalesce round
// plus once more for the post-coalesce rebuild, and ran cfg.Analyze
// twice per pass in split mode. passCtx computes each analysis
// exactly once when the pass starts and re-derives liveness only at
// the points that genuinely invalidate it (a renumbering after a
// successful coalesce). The run counts are published as build-phase
// counters so tests — and trace consumers — can hold the allocator
// to the one-analysis-per-pass contract.
type passCtx struct {
	lv   *dataflow.Liveness
	info *cfg.Info

	livenessRuns int
	cfgRuns      int
}

// newPassCtx analyzes work once: liveness for the pass's graph
// builds and CFG/loop nesting for its cost estimates and (in split
// mode) its spill insertion. Renumbering must already have happened —
// liveness is per-register and a renumber would stale it. Block
// depths are stamped as a side effect of cfg.Analyze and stay valid
// for the whole pass: nothing before spill insertion adds or removes
// blocks.
func newPassCtx(work *ir.Func) *passCtx {
	pc := &passCtx{}
	pc.refreshLiveness(work)
	pc.info = cfg.Analyze(work)
	pc.cfgRuns++
	return pc
}

// refreshLiveness recomputes the liveness sets after a rewrite that
// renamed registers (the post-coalesce renumber).
func (pc *passCtx) refreshLiveness(work *ir.Func) {
	pc.lv = dataflow.ComputeLiveness(work)
	pc.livenessRuns++
}

// emitCounters publishes the pass's analysis-run totals. On the
// non-coalescing path both must be exactly 1; coalescing adds one
// liveness run per merging round plus one for the post-coalesce
// renumber.
func (pc *passCtx) emitCounters(tr *obs.Tracer) {
	if !tr.Enabled() {
		return
	}
	tr.Counter(obs.PhaseBuild, "analysis.liveness_runs", int64(pc.livenessRuns))
	tr.Counter(obs.PhaseBuild, "analysis.cfg_runs", int64(pc.cfgRuns))
}
