* A small unrolled SAXPY-style loop in the mini-FORTRAN dialect the
* allocator front end accepts. Four temporaries carried across the
* unrolled body give the interference graph enough pressure that the
* default k=8 forces one spill-and-retry trip around the Figure 4
* cycle — small, but every allocator phase runs.
*
* Try it against the CLI or the allocd service:
*
*   regalloc -src examples/saxpyish.f
*   curl --data-binary @examples/saxpyish.f 'localhost:8080/alloc?kint=8'
      SUBROUTINE SAXPYISH(N,A,X,Y)
      REAL A,X(*),Y(*)
      REAL T1,T2,T3,T4
      INTEGER I,N
      DO I = 1,N-3,4
         T1 = A*X(I)
         T2 = A*X(I+1)
         T3 = A*X(I+2)
         T4 = A*X(I+3)
         Y(I) = Y(I) + T1
         Y(I+1) = Y(I+1) + T2
         Y(I+2) = Y(I+2) + T3
         Y(I+3) = Y(I+3) + T4
      ENDDO
      RETURN
      END
