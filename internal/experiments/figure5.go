package experiments

import (
	"fmt"
	"strings"

	"regalloc"
	"regalloc/internal/asm"
	"regalloc/internal/workloads"
)

// Fig5Row is one routine's line of Figure 5.
type Fig5Row struct {
	Program    string
	Routine    string
	ObjectSize int // bytes, compiled with the new heuristic
	LiveRanges int
	SpilledOld int
	SpilledNew int
	SpillPct   float64
	CostOld    float64
	CostNew    float64
	CostPct    float64
}

// Fig5Program groups a program's rows with its dynamic improvement.
type Fig5Program struct {
	Program    string
	Rows       []Fig5Row
	HasDynamic bool
	CyclesOld  uint64
	CyclesNew  uint64
	DynamicPct float64
}

// Figure5Result is the full table.
type Figure5Result struct {
	Programs []Fig5Program
}

// Figure5 regenerates the paper's Figure 5: for every routine of the
// five benchmark programs, the number of live ranges, the live
// ranges spilled and their estimated cost under Chaitin's heuristic
// (Old) and the optimistic heuristic (New), and per program the
// measured dynamic improvement on the simulator.
func Figure5() (*Figure5Result, error) {
	out := &Figure5Result{}
	machine := regalloc.RTPC()
	drivers := make(map[string]DriverFunc)
	for _, d := range Drivers() {
		drivers[d.Workload.Program] = d.Run
	}
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("figure5: compile %s: %w", w.Program, err)
		}
		pr := Fig5Program{Program: w.Program}
		for _, routine := range w.Routines {
			row, err := staticRow(prog, w.Program, routine, machine)
			if err != nil {
				return nil, err
			}
			pr.Rows = append(pr.Rows, row)
		}
		if run, ok := drivers[w.Program]; ok {
			old, new_, err := dynamicPair(prog, machine, run)
			if err != nil {
				return nil, fmt.Errorf("figure5: dynamic %s: %w", w.Program, err)
			}
			pr.HasDynamic = true
			pr.CyclesOld = old
			pr.CyclesNew = new_
			pr.DynamicPct = pct(float64(old), float64(new_))
		}
		out.Programs = append(out.Programs, pr)
	}
	return out, nil
}

// staticRow allocates one routine under both heuristics.
func staticRow(prog *regalloc.Program, program, routine string, m regalloc.Machine) (Fig5Row, error) {
	row := Fig5Row{Program: program, Routine: routine}
	oldOpt := defaultOptions()
	oldOpt.Heuristic = regalloc.Chaitin
	oldRes, err := prog.Allocate(routine, oldOpt)
	if err != nil {
		return row, fmt.Errorf("figure5: %s (chaitin): %w", routine, err)
	}
	newOpt := defaultOptions()
	newOpt.Heuristic = regalloc.Briggs
	newRes, err := prog.Allocate(routine, newOpt)
	if err != nil {
		return row, fmt.Errorf("figure5: %s (briggs): %w", routine, err)
	}
	lowered, err := asm.Lower(newRes.Func, newRes.Colors, m)
	if err != nil {
		return row, fmt.Errorf("figure5: %s: %w", routine, err)
	}
	row.ObjectSize = lowered.ObjectSize()
	row.LiveRanges = newRes.LiveRanges()
	row.SpilledOld = oldRes.FirstPassSpilled()
	row.SpilledNew = newRes.FirstPassSpilled()
	row.SpillPct = pct(float64(row.SpilledOld), float64(row.SpilledNew))
	row.CostOld = oldRes.FirstPassSpillCost()
	row.CostNew = newRes.FirstPassSpillCost()
	row.CostPct = pct(row.CostOld, row.CostNew)
	return row, nil
}

// dynamicPair runs the program's driver compiled with each heuristic
// and checks that both produce identical results.
func dynamicPair(prog *regalloc.Program, m regalloc.Machine, run DriverFunc) (old, new_ uint64, err error) {
	oldEng, err := NewVMEngine(prog, regalloc.Chaitin, m)
	if err != nil {
		return 0, 0, err
	}
	oldDigest, err := run(oldEng)
	if err != nil {
		return 0, 0, fmt.Errorf("chaitin run: %w", err)
	}
	newEng, err := NewVMEngine(prog, regalloc.Briggs, m)
	if err != nil {
		return 0, 0, err
	}
	newDigest, err := run(newEng)
	if err != nil {
		return 0, 0, fmt.Errorf("briggs run: %w", err)
	}
	if oldDigest != newDigest {
		return 0, 0, fmt.Errorf("allocators disagree on program results (%x vs %x)", oldDigest, newDigest)
	}
	return oldEng.M.Cycles, newEng.M.Cycles, nil
}

// pct is the paper's improvement percentage: how much smaller new is
// than old, as a percentage of old (0 when old is 0).
func pct(old, new_ float64) float64 {
	if old == 0 {
		return 0
	}
	return (old - new_) / old * 100
}

// String renders the table in the paper's layout.
func (r *Figure5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %8s %6s | %5s %5s %5s | %10s %10s %5s | %8s\n",
		"Program", "Routine", "ObjSize", "Live",
		"Old", "New", "Pct",
		"Old", "New", "Pct", "Dyn.Pct")
	fmt.Fprintf(&b, "%-8s %-10s %8s %6s | %17s | %27s |\n",
		"", "", "(bytes)", "Ranges", "Registers Spilled", "Spill Cost")
	b.WriteString(strings.Repeat("-", 108) + "\n")
	for _, p := range r.Programs {
		for i, row := range p.Rows {
			dyn := ""
			if i == 0 {
				if p.HasDynamic {
					dyn = fmt.Sprintf("%.2f", p.DynamicPct)
				} else {
					dyn = "n/a"
				}
			}
			name := ""
			if i == 0 {
				name = p.Program
			}
			fmt.Fprintf(&b, "%-8s %-10s %8d %6d | %5d %5d %5.0f | %10.0f %10.0f %5.0f | %8s\n",
				name, row.Routine, row.ObjectSize, row.LiveRanges,
				row.SpilledOld, row.SpilledNew, row.SpillPct,
				row.CostOld, row.CostNew, row.CostPct, dyn)
		}
	}
	return b.String()
}
