package token_test

import (
	"testing"

	"regalloc/internal/token"
)

func TestLookup(t *testing.T) {
	if token.Lookup("SUBROUTINE") != token.SUBROUTINE {
		t.Fatal("SUBROUTINE not a keyword")
	}
	if token.Lookup("ENDDO") != token.ENDDO {
		t.Fatal("ENDDO not a keyword")
	}
	if token.Lookup("XYZZY") != token.IDENT {
		t.Fatal("XYZZY should be an identifier")
	}
}

func TestDotted(t *testing.T) {
	for s, want := range map[string]token.Kind{
		"LT": token.LT, "LE": token.LE, "GT": token.GT, "GE": token.GE,
		"EQ": token.EQ, "NE": token.NE, "AND": token.AND, "OR": token.OR,
		"NOT": token.NOT,
	} {
		got, ok := token.Dotted(s)
		if !ok || got != want {
			t.Errorf("Dotted(%s) = %v, %v", s, got, ok)
		}
	}
	if _, ok := token.Dotted("XOR"); ok {
		t.Error("XOR should not be a dotted operator")
	}
}

func TestStringAndIsKeyword(t *testing.T) {
	if token.DO.String() != "DO" || token.PLUS.String() != "+" || token.LT.String() != ".LT." {
		t.Fatal("String() spellings wrong")
	}
	if !token.DO.IsKeyword() || token.IDENT.IsKeyword() || token.PLUS.IsKeyword() {
		t.Fatal("IsKeyword wrong")
	}
}
