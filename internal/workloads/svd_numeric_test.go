package workloads_test

import (
	"math"
	"testing"

	"regalloc"
	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

// TestSVDNumericallyCorrect runs the compiled, register-allocated
// SVD on the simulator against the 12x8 Hilbert matrix and verifies
// the decomposition properties: A = U·diag(W)·Vᵀ to machine
// precision, orthonormal U columns and V, and the known largest
// singular value. This exercises the entire pipeline — lexer,
// parser, sem, irgen, optimizer, allocator, spill code, lowering,
// and simulator — with a result that is wrong unless every stage is
// right.
func TestSVDNumericallyCorrect(t *testing.T) {
	prog, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		code, _, err := prog.Assemble(regalloc.RTPC(), opt)
		if err != nil {
			t.Fatalf("%s: assemble: %v", h, err)
		}
		m := regalloc.NewVM(code, prog.MemWords())
		const nm, mm, n = 12, 12, 8
		const aBase, wBase, uBase, vBase, ierr, rv1 = 0, 1000, 2000, 3000, 4000, 4100
		a := make([][]float64, mm)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for j := 1; j <= n; j++ {
			for i := 1; i <= mm; i++ {
				v := 1.0 / float64(i+j-1)
				a[i-1][j-1] = v
				m.StoreFloat(aBase+int64(i-1)+int64(j-1)*nm, v)
			}
		}
		if _, err := m.Call("SVD", vm.Int(nm), vm.Int(mm), vm.Int(n), vm.Int(aBase),
			vm.Int(wBase), vm.Int(uBase), vm.Int(vBase), vm.Int(ierr), vm.Int(rv1)); err != nil {
			t.Fatalf("%s: run: %v", h, err)
		}
		if got := m.LoadInt(ierr); got != 0 {
			t.Fatalf("%s: SVD did not converge (ierr=%d)", h, got)
		}

		u := func(i, k int) float64 { return m.LoadFloat(uBase + int64(i) + int64(k)*nm) }
		v := func(j, k int) float64 { return m.LoadFloat(vBase + int64(j) + int64(k)*nm) }
		w := func(k int) float64 { return m.LoadFloat(wBase + int64(k)) }

		// Reconstruction.
		for i := 0; i < mm; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += u(i, k) * w(k) * v(j, k)
				}
				if math.Abs(s-a[i][j]) > 1e-12 {
					t.Fatalf("%s: reconstruction error %g at (%d,%d)", h, math.Abs(s-a[i][j]), i, j)
				}
			}
		}
		// Orthonormality of V and of U's columns.
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				sv, su := 0.0, 0.0
				for k := 0; k < n; k++ {
					sv += v(k, x) * v(k, y)
				}
				for k := 0; k < mm; k++ {
					su += u(k, x) * u(k, y)
				}
				want := 0.0
				if x == y {
					want = 1.0
				}
				if math.Abs(sv-want) > 1e-10 {
					t.Fatalf("%s: V not orthogonal: (VᵀV)[%d][%d] = %g", h, x, y, sv)
				}
				if math.Abs(su-want) > 1e-10 {
					t.Fatalf("%s: U columns not orthonormal: (UᵀU)[%d][%d] = %g", h, x, y, su)
				}
			}
		}
		// Largest singular value of the 12x8 Hilbert section.
		sigma := 0.0
		for k := 0; k < n; k++ {
			if w(k) > sigma {
				sigma = w(k)
			}
		}
		if math.Abs(sigma-1.7419424942615882) > 1e-9 {
			t.Fatalf("%s: sigma_max = %.12f, want 1.741942494262", h, sigma)
		}
	}
}
