// Package lexer tokenizes mini-FORTRAN source text.
//
// The dialect is free-form: statements end at a newline (emitted as
// token.EOL), a trailing '&' continues a statement onto the next
// line, and comments run from 'C ' or '*' in column one — or from
// '!' anywhere — to end of line. Keywords and identifiers are
// case-insensitive and are canonicalized to upper case.
package lexer

import (
	"strconv"
	"strings"

	"regalloc/internal/source"
	"regalloc/internal/token"
)

// Token is a lexed token with its position and literal text.
type Token struct {
	Kind token.Kind
	Lit  string // canonical (upper-case) text for IDENT, raw text for constants
	Int  int64  // value for INTCONST
	Real float64
	Pos  source.Pos
}

// Lexer scans mini-FORTRAN source into tokens.
type Lexer struct {
	src      string
	off      int // byte offset of next rune
	line     int
	col      int
	bol      bool // at beginning of line (for 'C'/'*' comments)
	pendEOL  bool // a statement is open; emit EOL at next newline
	errs     source.ErrorList
	lastKind token.Kind
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, bol: true}
}

// Errors returns diagnostics accumulated while scanning.
func (l *Lexer) Errors() source.ErrorList { return l.errs }

func (l *Lexer) pos() source.Pos { return source.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipToEOL() {
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

// Next returns the next token. At end of input it returns EOF
// forever; an EOL is synthesized before EOF if a statement is open.
func (l *Lexer) Next() Token {
	for {
		if l.off >= len(l.src) {
			if l.pendEOL {
				l.pendEOL = false
				return l.emit(Token{Kind: token.EOL, Pos: l.pos()})
			}
			return l.emit(Token{Kind: token.EOF, Pos: l.pos()})
		}
		c := l.peek()
		switch {
		case c == '\n':
			p := l.pos()
			l.advance()
			l.bol = true
			if l.pendEOL {
				l.pendEOL = false
				return l.emit(Token{Kind: token.EOL, Pos: p})
			}
			continue
		case c == ' ' || c == '\t' || c == '\r':
			// Leading blanks move us past column one: a 'C' later
			// on the line is an identifier ("C = G/H"), never a
			// comment marker.
			l.advance()
			l.bol = false
			continue
		case c == '!':
			l.skipToEOL()
			continue
		case l.bol && (c == '*' || ((c == 'C' || c == 'c') && isCommentLine(l.src[l.off:]))):
			l.skipToEOL()
			continue
		}
		l.bol = false
		return l.scanToken()
	}
}

// isCommentLine reports whether a line beginning with 'C' is a
// classic FORTRAN comment: "C" followed by a space or end of line
// (so identifiers like "CALL" at column one still lex normally).
func isCommentLine(rest string) bool {
	if len(rest) == 1 {
		return true
	}
	return rest[1] == ' ' || rest[1] == '\t' || rest[1] == '\n' || rest[1] == '\r'
}

func (l *Lexer) emit(t Token) Token {
	l.lastKind = t.Kind
	return t
}

func (l *Lexer) scanToken() Token {
	p := l.pos()
	c := l.peek()
	switch {
	case isLetter(c):
		return l.emit(l.scanWord(p))
	case isDigit(c):
		return l.emit(l.scanNumber(p))
	case c == '.':
		// Could be a dotted operator (.LT.) or a real constant (.5).
		if isDigit(l.peek2()) {
			return l.emit(l.scanNumber(p))
		}
		if isLetter(l.peek2()) {
			return l.emit(l.scanDotted(p))
		}
	}
	l.advance()
	l.pendEOL = true
	mk := func(k token.Kind) Token { return l.emit(Token{Kind: k, Pos: p, Lit: k.String()}) }
	switch c {
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		if l.peek() == '*' {
			l.advance()
			return mk(token.POW)
		}
		return mk(token.STAR)
	case '/':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NE)
		}
		return mk(token.SLASH)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case ',':
		return mk(token.COMMA)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '&':
		// Continuation: suppress the next EOL.
		l.pendEOL = false
		l.skipNewline()
		return l.Next()
	}
	l.errs.Add(p, "illegal character %q", string(c))
	return Token{Kind: token.ILLEGAL, Pos: p, Lit: string(c)}
}

func (l *Lexer) skipNewline() {
	for l.off < len(l.src) {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '\n' {
			l.advance()
			l.bol = true
		}
		return
	}
}

func (l *Lexer) scanWord(p source.Pos) Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	up := strings.ToUpper(l.src[start:l.off])
	l.pendEOL = true
	kind := token.Lookup(up)
	return Token{Kind: kind, Lit: up, Pos: p}
}

func (l *Lexer) scanDotted(p source.Pos) Token {
	l.advance() // '.'
	start := l.off
	for l.off < len(l.src) && isLetter(l.peek()) {
		l.advance()
	}
	word := strings.ToUpper(l.src[start:l.off])
	if l.peek() != '.' {
		l.errs.Add(p, "malformed dotted operator .%s", word)
		return Token{Kind: token.ILLEGAL, Pos: p, Lit: "." + word}
	}
	l.advance() // closing '.'
	l.pendEOL = true
	if k, ok := token.Dotted(word); ok {
		return Token{Kind: k, Lit: k.String(), Pos: p}
	}
	// .TRUE./.FALSE. are accepted as integer constants 1/0 for
	// convenience; the dialect has no LOGICAL type.
	switch word {
	case "TRUE":
		return Token{Kind: token.INTCONST, Lit: ".TRUE.", Int: 1, Pos: p}
	case "FALSE":
		return Token{Kind: token.INTCONST, Lit: ".FALSE.", Int: 0, Pos: p}
	}
	l.errs.Add(p, "unknown dotted operator .%s.", word)
	return Token{Kind: token.ILLEGAL, Pos: p, Lit: "." + word + "."}
}

func (l *Lexer) scanNumber(p source.Pos) Token {
	start := l.off
	isReal := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && !l.dottedOpFollows() {
		isReal = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'E' || c == 'e' || c == 'D' || c == 'd' {
		// Exponent must be followed by digits or a signed digit run.
		save := l.off
		mark := *l
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isReal = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			*l = mark
			_ = save
		}
	}
	lit := l.src[start:l.off]
	l.pendEOL = true
	if isReal {
		v, err := strconv.ParseFloat(normalizeExp(lit), 64)
		if err != nil {
			l.errs.Add(p, "bad real constant %q", lit)
		}
		return Token{Kind: token.REALCONST, Lit: lit, Real: v, Pos: p}
	}
	v, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		l.errs.Add(p, "bad integer constant %q", lit)
	}
	return Token{Kind: token.INTCONST, Lit: lit, Int: v, Pos: p}
}

// dottedOpFollows reports whether the '.' at the current offset
// begins a dotted operator such as ".LT." rather than a decimal
// point (e.g. in "1.LT.2").
func (l *Lexer) dottedOpFollows() bool {
	i := l.off + 1
	start := i
	for i < len(l.src) && isLetter(l.src[i]) {
		i++
	}
	if i == start || i >= len(l.src) || l.src[i] != '.' {
		return false
	}
	_, ok := token.Dotted(strings.ToUpper(l.src[start:i]))
	return ok
}

func normalizeExp(lit string) string {
	lit = strings.ReplaceAll(lit, "D", "E")
	return strings.ReplaceAll(lit, "d", "e")
}

func isLetter(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
