package regalloc_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"regalloc"
	"regalloc/internal/color"
	"regalloc/internal/dataflow"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/ig"
	"regalloc/internal/liverange"
	"regalloc/internal/spill"
	"regalloc/internal/workloads"
)

// decodeCounters returns counters[pass][name] summed from a JSON
// trace. Duplicate emissions of a per-pass counter are a bug the
// caller can catch by checking counts[pass][name].
func decodeCounters(t *testing.T, buf *bytes.Buffer) (values map[int]map[string]int64, counts map[int]map[string]int) {
	t.Helper()
	values = map[int]map[string]int64{}
	counts = map[int]map[string]int{}
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev traceLine
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		if ev.Kind != "counter" {
			continue
		}
		if values[ev.Pass] == nil {
			values[ev.Pass] = map[string]int64{}
			counts[ev.Pass] = map[string]int{}
		}
		values[ev.Pass][ev.Name] += ev.Value
		counts[ev.Pass][ev.Name]++
	}
	return values, counts
}

// TestAnalysisRunsOncePerPass is the witness for the pass-level
// analysis cache: with coalescing off, every pass must compute
// liveness exactly once and run the CFG analysis exactly once — the
// counters the passCtx publishes make the contract checkable from the
// outside instead of relying on code inspection.
func TestAnalysisRunsOncePerPass(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []bool{false, true} {
		var buf bytes.Buffer
		opt := regalloc.DefaultOptions()
		opt.Coalesce = false
		opt.Split = split
		opt.KInt = 4 // force several passes
		opt.Observer = regalloc.NewJSONSink(&buf)
		res, err := prog.Allocate("PRESS", opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Passes) < 2 {
			t.Fatal("test premise broken: PRESS at KInt=4 should need several passes")
		}
		values, counts := decodeCounters(t, &buf)
		for pass := range res.Passes {
			for _, name := range []string{"analysis.liveness_runs", "analysis.cfg_runs"} {
				if got := values[pass][name]; got != 1 {
					t.Errorf("split=%v pass %d: %s = %d, want exactly 1", split, pass, name, got)
				}
				if n := counts[pass][name]; n != 1 {
					t.Errorf("split=%v pass %d: %s emitted %d times", split, pass, name, n)
				}
			}
		}
	}
}

// TestAnalysisCacheUnderCoalescing: coalescing rounds legitimately
// recompute liveness (each merge rewrites registers), but the CFG
// analysis must still run exactly once per pass — merges never touch
// blocks. This pins the fix for the double cfg.Analyze in split mode.
func TestAnalysisCacheUnderCoalescing(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opt := regalloc.DefaultOptions()
	opt.Split = true
	opt.KInt = 4
	opt.Observer = regalloc.NewJSONSink(&buf)
	res, err := prog.Allocate("PRESS", opt)
	if err != nil {
		t.Fatal(err)
	}
	values, _ := decodeCounters(t, &buf)
	for pass := range res.Passes {
		if got := values[pass]["analysis.cfg_runs"]; got != 1 {
			t.Errorf("pass %d: analysis.cfg_runs = %d, want exactly 1", pass, got)
		}
		if got := values[pass]["analysis.liveness_runs"]; got < 1 {
			t.Errorf("pass %d: analysis.liveness_runs = %d, want >= 1", pass, got)
		}
	}
}

// fuzzCorpus compiles a deterministic set of fuzz-generated routines.
func fuzzCorpus(t *testing.T, n int) []*regalloc.Program {
	t.Helper()
	var progs []*regalloc.Program
	for seed := uint64(1); len(progs) < n; seed++ {
		src := fuzzgen.Generate(seed, fuzzgen.Config{MaxStmts: 40, MaxDepth: 3})
		prog, err := regalloc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		progs = append(progs, prog)
	}
	return progs
}

// TestBriggsSpillsSubsetOfChaitin is the paper's central claim as a
// differential property: on the same first-pass graph and costs, the
// nodes the optimistic heuristic actually spills are a subset of the
// nodes Chaitin's pessimistic rule marks — optimism can only rescue
// marked nodes, never create new spills.
func TestBriggsSpillsSubsetOfChaitin(t *testing.T) {
	kf := color.NumColors(4, 4) // small files so the corpus spills
	for i, prog := range fuzzCorpus(t, 25) {
		f := prog.Func("FZ").Clone()
		liverange.Renumber(f)
		lv := dataflow.ComputeLiveness(f)
		g := ig.BuildWithLiveness(f, lv, 1, nil)
		costs := spill.Costs(f, spill.DefaultCostParams())

		chaitin := color.Simplify(g, costs, kf, color.Chaitin, color.CostOverDegree)
		marked := map[int32]bool{}
		for _, n := range chaitin.SpillMarked {
			marked[n] = true
		}

		briggs := color.Simplify(g, costs, kf, color.Briggs, color.CostOverDegree)
		_, uncolored := color.Select(g, briggs.Stack, kf, true)
		for _, n := range uncolored {
			if !marked[n] {
				t.Errorf("corpus %d: Briggs spilled v%d which Chaitin never marked", i, n)
			}
		}
		if len(uncolored) > len(chaitin.SpillMarked) {
			t.Errorf("corpus %d: Briggs spilled %d > Chaitin's %d",
				i, len(uncolored), len(chaitin.SpillMarked))
		}
	}
}

// TestWorkersEquivalence: the sharded graph build merges
// deterministically, so Workers must never change an allocation —
// same colors, same per-pass statistics — on fuzzed routines and on
// the paper's SVD workload. (On a single-CPU machine the build caps
// its shard count and the property holds trivially; on multicore CI
// this exercises the real parallel path, and the internal ig tests
// force the sharded path regardless.)
func TestWorkersEquivalence(t *testing.T) {
	check := func(t *testing.T, prog *regalloc.Program, name string) {
		t.Helper()
		opt := regalloc.DefaultOptions()
		opt.KInt, opt.KFloat = 8, 4 // pressure enough to spill somewhere
		base, err := prog.Allocate(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 4
		par, err := prog.Allocate(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Colors) != len(par.Colors) {
			t.Fatalf("%s: color vector lengths differ: %d vs %d", name, len(base.Colors), len(par.Colors))
		}
		for i := range base.Colors {
			if base.Colors[i] != par.Colors[i] {
				t.Fatalf("%s: color of v%d differs: %d vs %d", name, i, base.Colors[i], par.Colors[i])
			}
		}
		if len(base.Passes) != len(par.Passes) {
			t.Fatalf("%s: pass counts differ: %d vs %d", name, len(base.Passes), len(par.Passes))
		}
		for i := range base.Passes {
			a, b := base.Passes[i], par.Passes[i]
			a.Build, a.Simplify, a.Color, a.Spill = 0, 0, 0, 0
			b.Build, b.Simplify, b.Color, b.Spill = 0, 0, 0, 0
			if a != b {
				t.Fatalf("%s: pass %d stats differ:\n w1 %+v\n w4 %+v", name, i, a, b)
			}
		}
	}
	for _, prog := range fuzzCorpus(t, 10) {
		check(t, prog, "FZ")
	}
	svd, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		t.Fatal(err)
	}
	check(t, svd, "SVD")
}
