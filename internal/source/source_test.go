package source_test

import (
	"strings"
	"testing"

	"regalloc/internal/source"
)

func TestPos(t *testing.T) {
	p := source.Pos{Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Fatalf("pos: %v", p)
	}
	var zero source.Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Fatal("zero pos should be invalid")
	}
}

func TestErrorFormatting(t *testing.T) {
	e := source.Errorf(source.Pos{Line: 2, Col: 1}, "bad %s", "thing")
	if e.Error() != "2:1: bad thing" {
		t.Fatalf("got %q", e.Error())
	}
	e2 := &source.Error{Msg: "no position"}
	if e2.Error() != "no position" {
		t.Fatalf("got %q", e2.Error())
	}
}

func TestErrorList(t *testing.T) {
	var l source.ErrorList
	if l.Err() != nil {
		t.Fatal("empty list should be nil error")
	}
	l.Add(source.Pos{Line: 1, Col: 1}, "first")
	l.Add(source.Pos{Line: 2, Col: 2}, "second")
	err := l.Err()
	if err == nil {
		t.Fatal("non-empty list must be an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "first") || !strings.Contains(msg, "second") {
		t.Fatalf("joined message: %q", msg)
	}
	if !strings.Contains(msg, "\n") {
		t.Fatal("messages should be newline separated")
	}
}
