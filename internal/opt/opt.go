// Package opt implements the machine-independent optimizations the
// paper's compiler (the IRⁿ optimizer, PL.8-style) performed before
// register allocation: local common-subexpression elimination and
// loop-invariant code motion.
//
// These passes matter to the reproduction because they are what
// creates the paper's characteristic live-range structure. Hoisting
// loop-invariant address arithmetic and limit computations produces
// exactly the "dozen long live ranges extending from the
// initialization portion ... into the large loop nests" that make
// SVD over-spill under Chaitin's heuristic (§1.2). Without an
// optimizer, a naive code generator produces only short-lived
// temporaries and the pressure pattern the paper studies never
// forms.
package opt

import (
	"regalloc/internal/cfg"
	"regalloc/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	CSERemoved int // instructions removed by local value numbering
	Hoisted    int // instructions moved to loop preheaders
	DeadGone   int // dead instructions eliminated
}

// Run applies local CSE, loop-invariant code motion, and dead-code
// elimination, in place. It returns statistics.
func Run(f *ir.Func) Stats {
	var st Stats
	st.CSERemoved = LocalCSE(f)
	st.Hoisted = LICM(f)
	// Hoisting exposes more common subexpressions in the preheaders.
	st.CSERemoved += LocalCSE(f)
	st.DeadGone = DeadCodeElim(f)
	return st
}

// pure reports whether an opcode computes a value from its operands
// with no side effects and no possibility of a runtime fault, so it
// may be removed (CSE) or executed speculatively (LICM). Integer
// divide and modulo are excluded: hoisting one past a loop guard
// could introduce a division-by-zero fault the original program did
// not have.
func pure(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpItoF, ir.OpFtoI,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpNeg,
		ir.OpIMin, ir.OpIMax, ir.OpIAbs, ir.OpISign,
		ir.OpAddI, ir.OpMulI,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpFMin, ir.OpFMax, ir.OpFAbs, ir.OpFSign:
		return true
	}
	return false
}

// exprKey identifies a pure computation for value numbering. The
// result class disambiguates e.g. integer "const 0" from float
// "const 0.0", whose operand fields coincide.
type exprKey struct {
	op   ir.Op
	cls  ir.Class
	a, b ir.Reg
	imm  int64
	fimm float64
}

// LocalCSE performs value numbering within each basic block: when a
// pure computation repeats with operands that have not been
// redefined since, later occurrences become copies of the first
// result. (The copies are then usually coalesced away by the
// allocator's build phase, leaving one longer-lived value — the
// point of the exercise.) Returns the number of replaced
// computations.
func LocalCSE(f *ir.Func) int {
	replaced := 0
	// defCount distinguishes single-assignment temporaries from
	// mutable user variables; only single-def registers are safe
	// table entries and operands without version tracking.
	defCount := countDefs(f)

	for _, b := range f.Blocks {
		avail := make(map[exprKey]ir.Reg)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Def()
			if !pure(in.Op) || d == ir.NoReg || defCount[d] != 1 {
				continue
			}
			if (in.A != ir.NoReg && defCount[in.A] != 1) ||
				(in.B != ir.NoReg && defCount[in.B] != 1) {
				continue
			}
			k := exprKey{op: in.Op, cls: f.RegClass(d), a: in.A, b: in.B, imm: in.Imm, fimm: in.FImm}
			if prev, ok := avail[k]; ok {
				*in = ir.Instr{Op: ir.OpMove, Dst: d, A: prev, B: ir.NoReg, C: ir.NoReg}
				replaced++
				continue
			}
			avail[k] = d
		}
	}
	return replaced
}

// LICM hoists loop-invariant pure computations to loop preheaders,
// innermost loops first. A computation is hoisted when it is pure,
// its destination has exactly one definition in the whole function,
// and its operands have no definitions inside the loop. Returns the
// number of instructions moved.
func LICM(f *ir.Func) int {
	hoisted := 0
	// One loop is hoisted per CFG analysis: inserting a preheader
	// adds a block inside any enclosing loop, so the loop inventory
	// must be recomputed before touching another loop. Iterate to
	// fixpoint (the cap is a safety net far above any real function).
	for pass := 0; pass < 512; pass++ {
		info := cfg.Analyze(f)
		loops := innermostFirst(info)
		moved := 0
		for _, l := range loops {
			moved += hoistLoop(f, info, l)
			if moved > 0 {
				break // CFG changed; re-analyze
			}
		}
		hoisted += moved
		if moved == 0 {
			break
		}
	}
	return hoisted
}

// innermostFirst orders loops by decreasing header depth so inner
// loops hoist first.
func innermostFirst(info *cfg.Info) []cfg.Loop {
	loops := append([]cfg.Loop(nil), info.Loops...)
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0 && info.Depth[loops[j].Header] > info.Depth[loops[j-1].Header]; j-- {
			loops[j], loops[j-1] = loops[j-1], loops[j]
		}
	}
	return loops
}

// memRegion identifies the storage an OpLoad/OpStore touches, for
// the FORTRAN aliasing rule: distinct dummy-argument arrays (distinct
// parameter base registers) do not alias each other or this
// function's static storage; everything else is one conservative
// "static" region.
type memRegion struct {
	param bool
	base  ir.Reg
}

func accessRegion(f *ir.Func, in *ir.Instr) memRegion {
	if in.B != ir.NoReg {
		for _, p := range f.Params {
			if p == in.B {
				return memRegion{param: true, base: in.B}
			}
		}
	}
	return memRegion{}
}

func hoistLoop(f *ir.Func, info *cfg.Info, l cfg.Loop) int {
	inLoop := make(map[int]bool, len(l.Blocks))
	for _, b := range l.Blocks {
		inLoop[b] = true
	}
	// Registers defined inside the loop, calls, stores, and the
	// loop's exit-source blocks.
	definedIn := make(map[ir.Reg]bool)
	hasCall := false
	storedRegions := make(map[memRegion]bool)
	var exitSources []int
	for _, bid := range l.Blocks {
		b := f.Blocks[bid]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				definedIn[d] = true
			}
			switch in.Op {
			case ir.OpCall:
				hasCall = true
			case ir.OpStore, ir.OpSpillStore:
				storedRegions[accessRegion(f, in)] = true
			}
		}
		for _, s := range b.Succs {
			if !inLoop[s] {
				exitSources = append(exitSources, bid)
				break
			}
		}
	}
	defCount := countDefs(f)

	// loadHoistable applies the extra conditions for memory reads:
	// the load's block must execute on every trip through the loop
	// (it dominates every exit source, so entering the loop implies
	// executing it — making the hoisted load identical to the load
	// the first iteration would issue), and nothing in the loop may
	// write the load's region. A call could write anything.
	loadHoistable := func(bid int, in *ir.Instr) bool {
		if hasCall {
			return false
		}
		if storedRegions[accessRegion(f, in)] {
			return false
		}
		for _, es := range exitSources {
			if !info.Dominates(bid, es) {
				return false
			}
		}
		return true
	}

	// Collect hoistable instructions to fixpoint: an instruction
	// whose operands stop being "defined in loop" once a producer is
	// hoisted becomes hoistable too.
	type site struct{ block, index int }
	var order []site
	chosen := make(map[site]bool)
	for changed := true; changed; {
		changed = false
		for _, bid := range l.Blocks {
			instrs := f.Blocks[bid].Instrs
			for i := range instrs {
				in := &instrs[i]
				d := in.Def()
				s := site{bid, i}
				if chosen[s] || d == ir.NoReg || defCount[d] != 1 {
					continue
				}
				switch {
				case pure(in.Op):
					// fine
				case in.Op == ir.OpLoad:
					if !loadHoistable(bid, in) {
						continue
					}
				default:
					continue
				}
				if (in.A != ir.NoReg && definedIn[in.A]) ||
					(in.B != ir.NoReg && definedIn[in.B]) ||
					(in.C != ir.NoReg && definedIn[in.C]) {
					continue
				}
				chosen[s] = true
				order = append(order, s)
				delete(definedIn, d)
				changed = true
			}
		}
	}
	if len(order) == 0 {
		return 0
	}

	// Build the preheader and splice the hoisted instructions into
	// it in their original relative order (operands before users is
	// guaranteed because a producer became hoistable no later than
	// its consumers, and order respects discovery).
	pre := cfg.InsertPreheader(f, inLoop, l.Header)
	var lifted []ir.Instr
	remove := make(map[int]map[int]bool) // block -> instr index set
	for _, s := range order {
		lifted = append(lifted, f.Blocks[s.block].Instrs[s.index])
		if remove[s.block] == nil {
			remove[s.block] = make(map[int]bool)
		}
		remove[s.block][s.index] = true
	}
	for bid, idxs := range remove {
		b := f.Blocks[bid]
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if !idxs[i] {
				out = append(out, b.Instrs[i])
			}
		}
		b.Instrs = out
	}
	// Preheader ends in a branch to the header; insert before it.
	term := pre.Instrs[len(pre.Instrs)-1]
	pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1], lifted...)
	pre.Instrs = append(pre.Instrs, term)
	return len(lifted)
}

func countDefs(f *ir.Func) []int {
	counts := make([]int, f.NumRegs())
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				counts[d]++
			}
		}
	}
	return counts
}
