package workloads

// svdSource is a port of the singular value decomposition from
// Forsythe, Malcolm & Moler (the paper's SVD test case). Its shape
// is the paper's Figure 1: after brief initialization comes a small
// doubly-nested array-copy loop (copying A into U, with loop indices
// and limits I, J, M, N), followed by three large, complex loop
// nests — Householder bidiagonalization, accumulation of the right
// and left transformations, and the shifted-QR diagonalization.
// A dozen scalar live ranges (G, SCALE, ANORM, C, F, H, S, X, Y, Z,
// L, MN, ...) extend from the early code through the later nests,
// which is precisely the pressure pattern that makes Chaitin's
// heuristic over-spill the copy loop's indices (§1.2).
//
// GOTO-based control (convergence tests, cancellation) is rewritten
// with structured DO WHILE / EXIT and integer flags; IERR becomes a
// length-1 array because the dialect passes scalars by value.
const svdSource = `
      SUBROUTINE SVD(NM,M,N,A,W,U,V,IERR,RV1)
      INTEGER NM,M,N,IERR(*)
      REAL A(NM,*),W(*),U(NM,*),V(NM,*),RV1(*)
      INTEGER I,J,K,L,L1,I1,K1,KK,LL,MN,ITS,ICONV,LFND
      REAL C,F,G,H,S,X,Y,Z,SCALE,ANORM
      IERR(1) = 0
C
C     the small doubly-nested array copy loop (Figure 1)
      DO I = 1,M
         DO J = 1,N
            U(I,J) = A(I,J)
         ENDDO
      ENDDO
C
C     Householder reduction to bidiagonal form (first large nest)
      G = 0.0
      SCALE = 0.0
      ANORM = 0.0
      L = 1
      DO I = 1,N
         L = I + 1
         RV1(I) = SCALE*G
         G = 0.0
         S = 0.0
         SCALE = 0.0
         IF (I .LE. M) THEN
            DO K = I,M
               SCALE = SCALE + ABS(U(K,I))
            ENDDO
            IF (SCALE .NE. 0.0) THEN
               DO K = I,M
                  U(K,I) = U(K,I)/SCALE
                  S = S + U(K,I)*U(K,I)
               ENDDO
               F = U(I,I)
               G = -SIGN(SQRT(S),F)
               H = F*G - S
               U(I,I) = F - G
               IF (I .NE. N) THEN
                  DO J = L,N
                     S = 0.0
                     DO K = I,M
                        S = S + U(K,I)*U(K,J)
                     ENDDO
                     F = S/H
                     DO K = I,M
                        U(K,J) = U(K,J) + F*U(K,I)
                     ENDDO
                  ENDDO
               ENDIF
               DO K = I,M
                  U(K,I) = SCALE*U(K,I)
               ENDDO
            ENDIF
         ENDIF
         W(I) = SCALE*G
         G = 0.0
         S = 0.0
         SCALE = 0.0
         IF (I .LE. M .AND. I .NE. N) THEN
            DO K = L,N
               SCALE = SCALE + ABS(U(I,K))
            ENDDO
            IF (SCALE .NE. 0.0) THEN
               DO K = L,N
                  U(I,K) = U(I,K)/SCALE
                  S = S + U(I,K)*U(I,K)
               ENDDO
               F = U(I,L)
               G = -SIGN(SQRT(S),F)
               H = F*G - S
               U(I,L) = F - G
               DO K = L,N
                  RV1(K) = U(I,K)/H
               ENDDO
               IF (I .NE. M) THEN
                  DO J = L,M
                     S = 0.0
                     DO K = L,N
                        S = S + U(J,K)*U(I,K)
                     ENDDO
                     DO K = L,N
                        U(J,K) = U(J,K) + S*RV1(K)
                     ENDDO
                  ENDDO
               ENDIF
               DO K = L,N
                  U(I,K) = SCALE*U(I,K)
               ENDDO
            ENDIF
         ENDIF
         ANORM = MAX(ANORM, ABS(W(I)) + ABS(RV1(I)))
      ENDDO
C
C     accumulation of right-hand transformations (second large nest)
      DO I1 = 1,N
         I = N + 1 - I1
         IF (I .NE. N) THEN
            IF (G .NE. 0.0) THEN
C              double division avoids possible underflow
               DO J = L,N
                  V(J,I) = (U(I,J)/U(I,L))/G
               ENDDO
               DO J = L,N
                  S = 0.0
                  DO K = L,N
                     S = S + U(I,K)*V(K,J)
                  ENDDO
                  DO K = L,N
                     V(K,J) = V(K,J) + S*V(K,I)
                  ENDDO
               ENDDO
            ENDIF
            DO J = L,N
               V(I,J) = 0.0
               V(J,I) = 0.0
            ENDDO
         ENDIF
         V(I,I) = 1.0
         G = RV1(I)
         L = I
      ENDDO
C
C     accumulation of left-hand transformations
      MN = N
      IF (M .LT. N) MN = M
      DO I1 = 1,MN
         I = MN + 1 - I1
         L = I + 1
         G = W(I)
         IF (I .NE. N) THEN
            DO J = L,N
               U(I,J) = 0.0
            ENDDO
         ENDIF
         IF (G .NE. 0.0) THEN
            IF (I .NE. MN) THEN
               DO J = L,N
                  S = 0.0
                  DO K = L,M
                     S = S + U(K,I)*U(K,J)
                  ENDDO
C                 double division avoids possible underflow
                  F = (S/U(I,I))/G
                  DO K = I,M
                     U(K,J) = U(K,J) + F*U(K,I)
                  ENDDO
               ENDDO
            ENDIF
            DO J = I,M
               U(J,I) = U(J,I)/G
            ENDDO
         ELSE
            DO J = I,M
               U(J,I) = 0.0
            ENDDO
         ENDIF
         U(I,I) = U(I,I) + 1.0
      ENDDO
C
C     diagonalization of the bidiagonal form (third large nest)
      DO KK = 1,N
         K1 = N - KK
         K = K1 + 1
         ITS = 0
         ICONV = 0
         DO WHILE (ICONV .EQ. 0)
C           test for splitting: rv1(1) is always zero, so the scan
C           must find a split point
            LFND = 0
            L = K
            L1 = L - 1
            DO LL = 1,K
               L = K + 1 - LL
               L1 = L - 1
               IF (ABS(RV1(L)) + ANORM .EQ. ANORM) THEN
                  LFND = 1
                  EXIT
               ENDIF
               IF (L1 .GE. 1) THEN
                  IF (ABS(W(L1)) + ANORM .EQ. ANORM) THEN
                     LFND = 0
                     EXIT
                  ENDIF
               ENDIF
            ENDDO
            IF (LFND .EQ. 0) THEN
C              cancellation of rv1(l) if l greater than 1
               C = 0.0
               S = 1.0
               DO I = L,K
                  F = S*RV1(I)
                  RV1(I) = C*RV1(I)
                  IF (ABS(F) + ANORM .EQ. ANORM) EXIT
                  G = W(I)
                  H = SQRT(F*F + G*G)
                  W(I) = H
                  C = G/H
                  S = -F/H
                  DO J = 1,M
                     Y = U(J,L1)
                     Z = U(J,I)
                     U(J,L1) = Y*C + Z*S
                     U(J,I) = -Y*S + Z*C
                  ENDDO
               ENDDO
            ENDIF
C           test for convergence
            Z = W(K)
            IF (L .EQ. K) THEN
C              convergence: make the singular value non-negative
               IF (Z .LT. 0.0) THEN
                  W(K) = -Z
                  DO J = 1,N
                     V(J,K) = -V(J,K)
                  ENDDO
               ENDIF
               ICONV = 1
            ELSE
               ITS = ITS + 1
               IF (ITS .GT. 30) THEN
C                 no convergence after 30 iterations
                  IERR(1) = K
                  ICONV = 1
               ELSE
C                 shift from bottom 2 by 2 minor
                  X = W(L)
                  Y = W(K1)
                  G = RV1(K1)
                  H = RV1(K)
                  F = ((Y - Z)*(Y + Z) + (G - H)*(G + H))/(2.0*H*Y)
                  G = SQRT(F*F + 1.0)
                  F = ((X - Z)*(X + Z) + H*(Y/(F + SIGN(G,F)) - H))/X
C                 next qr transformation
                  C = 1.0
                  S = 1.0
                  DO I1 = L,K1
                     I = I1 + 1
                     G = RV1(I)
                     Y = W(I)
                     H = S*G
                     G = C*G
                     Z = SQRT(F*F + H*H)
                     RV1(I1) = Z
                     C = F/Z
                     S = H/Z
                     F = X*C + G*S
                     G = -X*S + G*C
                     H = Y*S
                     Y = Y*C
                     DO J = 1,N
                        X = V(J,I1)
                        Z = V(J,I)
                        V(J,I1) = X*C + Z*S
                        V(J,I) = -X*S + Z*C
                     ENDDO
                     Z = SQRT(F*F + H*H)
                     W(I1) = Z
C                    rotation can be arbitrary if z is zero
                     IF (Z .NE. 0.0) THEN
                        C = F/Z
                        S = H/Z
                     ENDIF
                     F = C*G + S*Y
                     X = -S*G + C*Y
                     DO J = 1,M
                        Y = U(J,I1)
                        Z = U(J,I)
                        U(J,I1) = Y*C + Z*S
                        U(J,I) = -Y*S + Z*C
                     ENDDO
                  ENDDO
                  RV1(L) = 0.0
                  RV1(K) = F
                  W(K) = X
               ENDIF
            ENDIF
         ENDDO
      ENDDO
      RETURN
      END
`
