package fuzzgen_test

import (
	"testing"

	"regalloc"
	"regalloc/internal/alloc"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/vm"
)

// seedMemory writes the deterministic initial array images.
func seedArrays(storeInt func(int64, int64), storeFloat func(int64, float64), iaBase, raBase int64) {
	for i := int64(0); i < fuzzgen.ArraySize; i++ {
		storeInt(iaBase+i, (i*7+3)%23-11)
		storeFloat(raBase+i, float64(i)*0.375-4.0)
	}
}

// digestArrays folds the final array images into one value.
func digestArrays(loadInt func(int64) int64, loadFloat func(int64) float64, iaBase, raBase int64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) {
		h = h*1099511628211 ^ uint64(v)
	}
	for i := int64(0); i < fuzzgen.ArraySize; i++ {
		mix(loadInt(iaBase + i))
		mix(int64(loadFloat(raBase+i) * 4096))
	}
	return h
}

const iaBase, raBase = int64(0), int64(100)

// TestDifferential generates random programs and demands that the
// reference interpreter and the allocated machine code agree, across
// heuristics and register counts. This is the allocator's fuzzing
// net: every seed is a fresh program shape.
func TestDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 1; seed <= seeds; seed++ {
		src := fuzzgen.Generate(uint64(seed), fuzzgen.Config{})
		prog, err := regalloc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile failed:\n%s\n%v", seed, src, err)
		}
		// Reference result.
		it := irinterp.New(prog.IR, 1<<22)
		seedArrays(it.StoreInt, it.StoreFloat, iaBase, raBase)
		if _, err := it.Call("FZ", irinterp.Int(iaBase), irinterp.Int(raBase), irinterp.Int(5)); err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		want := digestArrays(it.LoadInt, it.LoadFloat, iaBase, raBase)

		for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
			for _, k := range []int{16, 8} {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = h
				opt.KInt = k
				m := regalloc.RTPC().WithGPR(k)
				code, results, err := prog.Assemble(m, opt)
				if err != nil {
					t.Fatalf("seed %d %s k=%d: assemble: %v\n%s", seed, h, k, err, src)
				}
				for name, res := range results {
					if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
						t.Fatalf("seed %d %s k=%d %s: %v\n%s", seed, h, k, name, err, src)
					}
				}
				machine := regalloc.NewVM(code, prog.MemWords())
				seedArrays(machine.StoreInt, machine.StoreFloat, iaBase, raBase)
				if _, err := machine.Call("FZ", vm.Int(iaBase), vm.Int(raBase), vm.Int(5)); err != nil {
					t.Fatalf("seed %d %s k=%d: run: %v\n%s", seed, h, k, err, src)
				}
				got := digestArrays(machine.LoadInt, machine.LoadFloat, iaBase, raBase)
				if got != want {
					t.Fatalf("seed %d %s k=%d: allocated code diverged from the reference\n%s", seed, h, k, src)
				}
			}
		}
	}
}

// TestDifferentialWithVariants repeats a smaller sweep with the
// optimizer off and with remat/split spilling on.
func TestDifferentialWithVariants(t *testing.T) {
	for seed := 100; seed < 120; seed++ {
		src := fuzzgen.Generate(uint64(seed), fuzzgen.Config{})
		ref, err := regalloc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		it := irinterp.New(ref.IR, 1<<22)
		seedArrays(it.StoreInt, it.StoreFloat, iaBase, raBase)
		if _, err := it.Call("FZ", irinterp.Int(iaBase), irinterp.Int(raBase), irinterp.Int(5)); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		want := digestArrays(it.LoadInt, it.LoadFloat, iaBase, raBase)

		type variant struct {
			name string
			prog func() (*regalloc.Program, error)
			mut  func(*regalloc.Options)
		}
		variants := []variant{
			{"noopt", func() (*regalloc.Program, error) { return regalloc.CompileNoOpt(src) }, func(*regalloc.Options) {}},
			{"remat", func() (*regalloc.Program, error) { return regalloc.Compile(src) }, func(o *regalloc.Options) { o.Rematerialize = true }},
			{"split", func() (*regalloc.Program, error) { return regalloc.Compile(src) }, func(o *regalloc.Options) { o.Split = true }},
		}
		for _, v := range variants {
			prog, err := v.prog()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			opt := regalloc.DefaultOptions()
			opt.KInt = 8
			v.mut(&opt)
			m := regalloc.RTPC().WithGPR(8)
			code, _, err := prog.Assemble(m, opt)
			if err != nil {
				t.Fatalf("seed %d %s: assemble: %v", seed, v.name, err)
			}
			machine := regalloc.NewVM(code, prog.MemWords())
			seedArrays(machine.StoreInt, machine.StoreFloat, iaBase, raBase)
			if _, err := machine.Call("FZ", vm.Int(iaBase), vm.Int(raBase), vm.Int(5)); err != nil {
				t.Fatalf("seed %d %s: run: %v\n%s", seed, v.name, err, src)
			}
			if got := digestArrays(machine.LoadInt, machine.LoadFloat, iaBase, raBase); got != want {
				t.Fatalf("seed %d %s: diverged\n%s", seed, v.name, src)
			}
		}
	}
}

// TestGenerateDeterministic: the same (seed, config) pair must yield
// a byte-identical program every time — fuzz corpus entries under
// testdata/fuzz encode only the seed, so reproducing a crash depends
// on the generator never drifting. Swept across seeds and configs,
// with repeated interleaved calls to catch any hidden shared state.
func TestGenerateDeterministic(t *testing.T) {
	configs := []fuzzgen.Config{
		{}, // defaults
		{MaxStmts: 4, MaxDepth: 1},
		{MaxStmts: 40, MaxDepth: 4},
	}
	for _, cfg := range configs {
		distinct := make(map[string]uint64)
		for seed := uint64(1); seed <= 50; seed++ {
			a := fuzzgen.Generate(seed, cfg)
			// Interleave an unrelated generation to prove there is no
			// cross-call state.
			fuzzgen.Generate(seed+1000, cfg)
			if b := fuzzgen.Generate(seed, cfg); a != b {
				t.Fatalf("cfg %+v seed %d: generation not byte-identical", cfg, seed)
			}
			if prev, dup := distinct[a]; dup {
				t.Fatalf("cfg %+v: seeds %d and %d produced identical programs", cfg, prev, seed)
			}
			distinct[a] = seed
		}
	}
}
