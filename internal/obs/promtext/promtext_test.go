package promtext

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"regalloc/internal/obs"
)

func sampleSnapshot() obs.RegistrySnapshot {
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		s := obs.RunSummary{
			Unit:           []string{"SVD", "DQRDC", `we"ird\name`}[i%3],
			Passes:         1 + i%2,
			Spills:         i % 5,
			SpillCostMilli: obs.SpillCostMilli(float64(i) * 2.5),
			CoalescedMoves: i % 3,
			PaletteInt:     1 + i%12,
			PaletteFloat:   i % 6,
			TotalNS:        int64(1500 * (i + 1)),
		}
		s.PhaseNS[obs.PhaseBuild] = int64(900 * (i + 1))
		s.PhaseNS[obs.PhaseSimplify] = int64(300 * (i + 1))
		reg.Record(s)
	}
	reg.Record(obs.RunSummary{Unit: "SVD", Error: true})
	reg.Record(obs.RunSummary{Unit: "graph", PColorRounds: 3, PColorConflicts: 17, PaletteInt: 9})
	return reg.Snapshot()
}

func TestWriteLints(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("Write output fails Lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"regalloc_runs_total 42",
		"regalloc_run_errors_total 1",
		"regalloc_pcolor_conflicts_total 17",
		`regalloc_unit_runs_total{unit="SVD"} 15`,
		`regalloc_unit_runs_total{unit="we\"ird\\name"} 13`,
		`regalloc_phase_duration_seconds_bucket{phase="build",le="+Inf"} 40`,
		`regalloc_phase_duration_seconds_count{phase="spill"} 0`,
		"regalloc_run_duration_seconds_count 40",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	snap := sampleSnapshot()
	var a, b bytes.Buffer
	if err := Write(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of one snapshot differ")
	}
}

func TestWriteMetricsLints(t *testing.T) {
	ms := obs.NewMetricsSink()
	ms.Emit(obs.Event{Kind: obs.KindCounter, Phase: obs.PhaseBuild, Name: "graph.nodes", Value: 11})
	ms.Emit(obs.Event{Kind: obs.KindCounter, Phase: obs.PhaseSpill, Name: "spill.ranges", Value: 2})
	ms.Emit(obs.Event{Kind: obs.KindSpillDecision, Cost: 4})
	ms.Emit(obs.Event{Kind: obs.KindColorReuse})
	ms.Emit(obs.Event{Kind: obs.KindSpanEnd, Phase: obs.PhaseBuild, Dur: time.Millisecond})
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, ms.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("WriteMetrics output fails Lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		`regalloc_events_total{phase="build",name="graph.nodes"} 11`,
		"regalloc_spill_decisions_total 1",
		"regalloc_color_reuses_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":        "some_metric 3\n",
		"bad value":      "# TYPE m counter\nm three\n",
		"bad type":       "# TYPE m histogramish\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"no inf bucket":  "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"bad label":      "# TYPE m counter\nm{le=x} 3\n",
		"negative ctr":   "# TYPE m counter\nm -1\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, in)
		}
	}
	good := "# HELP m helpful\n# TYPE m counter\nm{unit=\"a b\"} 3\n"
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("Lint rejected valid input: %v", err)
	}
}

func TestWriteExemplarHistogramLints(t *testing.T) {
	var h obs.ExemplarHistogram
	at := time.Unix(1700000000, 500000000)
	h.Observe(3*time.Microsecond, "4bf92f3577b34da6a3ce929d0e0e4736", at)
	h.Observe(12*time.Millisecond, "00f067aa0ba902b700f067aa0ba902b7", at)
	h.Observe(40*time.Second, "aaaabbbbccccddddaaaabbbbccccdddd", at) // overflow bucket
	h.Observe(2*time.Microsecond, "", at)                             // untraced: counted, no exemplar

	var buf bytes.Buffer
	if err := WriteExemplarHistogram(&buf, "allocd_request_duration_seconds", "Request wall time.", &h); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("WriteExemplarHistogram output fails Lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`allocd_request_duration_seconds_bucket{le="5e-06"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 3e-06 1.7000000005e+09`,
		`# {trace_id="00f067aa0ba902b700f067aa0ba902b7"} 0.012`,
		`allocd_request_duration_seconds_bucket{le="+Inf"} 4 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"}`,
		"allocd_request_duration_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}

	// Deterministic across renders of the same state.
	var again bytes.Buffer
	if err := WriteExemplarHistogram(&again, "allocd_request_duration_seconds", "Request wall time.", &h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteExemplarHistogram output not deterministic")
	}
}

// TestLintExemplars is the exemplar accept/reject table: the syntax
// WriteExemplarHistogram emits must pass, every malformation and
// every misplacement (exemplars belong on _bucket lines only) must
// fail.
func TestLintExemplars(t *testing.T) {
	const head = "# TYPE h histogram\n"
	const tail = "h_sum 1\nh_count 3\n"
	accept := map[string]string{
		"bucket exemplar": head +
			"h_bucket{le=\"1\"} 3 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 0.5 1.7e+09\n" +
			"h_bucket{le=\"+Inf\"} 3\n" + tail,
		"exemplar without timestamp": head +
			"h_bucket{le=\"1\"} 3 # {trace_id=\"abc\"} 0.5\n" +
			"h_bucket{le=\"+Inf\"} 3\n" + tail,
		"exemplar with empty labelset": head +
			"h_bucket{le=\"1\"} 3 # {} 0.5\n" +
			"h_bucket{le=\"+Inf\"} 3\n" + tail,
		"exemplar on every bucket": head +
			"h_bucket{le=\"1\"} 1 # {trace_id=\"a\"} 0.9 1.7e+09\n" +
			"h_bucket{le=\"2\"} 2 # {trace_id=\"b\"} 1.5 1.7e+09\n" +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"c\"} 9 1.7e+09\n" + tail,
	}
	reject := map[string]string{
		"exemplar on counter": "# TYPE m counter\nm 3 # {trace_id=\"a\"} 0.5\n",
		"exemplar on sum": head +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1 # {trace_id=\"a\"} 0.5\nh_count 3\n",
		"exemplar on count": head +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3 # {trace_id=\"a\"} 0.5\n",
		"exemplar missing labelset": head +
			"h_bucket{le=\"+Inf\"} 3 # 0.5\n" + tail,
		"exemplar missing value": head +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"a\"}\n" + tail,
		"exemplar bad value": head +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"a\"} fast\n" + tail,
		"exemplar bad timestamp": head +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"a\"} 0.5 noon\n" + tail,
		"exemplar trailing junk": head +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"a\"} 0.5 1.7e+09 extra\n" + tail,
		"exemplar bad label name": head +
			"h_bucket{le=\"+Inf\"} 3 # {9id=\"a\"} 0.5\n" + tail,
		"exemplar unterminated labels": head +
			"h_bucket{le=\"+Inf\"} 3 # {trace_id=\"a\" 0.5\n" + tail,
	}
	for name, in := range accept {
		if err := Lint([]byte(in)); err != nil {
			t.Errorf("%s: Lint rejected valid input: %v", name, err)
		}
	}
	for name, in := range reject {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, in)
		}
	}
}

func TestWriteCacheLints(t *testing.T) {
	s := obs.CacheStats{
		Hits:       17,
		Misses:     5,
		Shared:     3,
		Abandoned:  4,
		Evictions:  2,
		Entries:    3,
		Bytes:      4096,
		MaxEntries: 1024,
		MaxBytes:   1 << 20,
	}
	s.HitLatency.Observe(3 * time.Microsecond)
	s.HitLatency.Observe(40 * time.Microsecond)
	s.FillLatency.Observe(12 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteCache(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("WriteCache output fails Lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"regalloc_cache_hits_total 17",
		"regalloc_cache_misses_total 5",
		"regalloc_cache_singleflight_shared_total 3",
		"regalloc_cache_abandoned_waits_total 4",
		"regalloc_cache_evictions_total 2",
		"regalloc_cache_entries 3",
		"regalloc_cache_bytes 4096",
		"regalloc_cache_hit_duration_seconds_count 2",
		"regalloc_cache_fill_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// Deterministic byte-for-byte across repeated renders.
	var again bytes.Buffer
	if err := WriteCache(&again, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteCache output not deterministic")
	}
}
