package cfg_test

import (
	"testing"

	"regalloc/internal/cfg"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

// buildFunc assembles a Func from a block adjacency list; every
// block gets a minimal terminator matching its successor count.
func buildFunc(succs [][]int) *ir.Func {
	f := &ir.Func{Name: "T"}
	r1 := f.NewReg(ir.ClassInt)
	r2 := f.NewReg(ir.ClassInt)
	for range succs {
		f.NewBlock()
	}
	for i, ss := range succs {
		b := f.Blocks[i]
		b.Succs = append(b.Succs, ss...)
		switch len(ss) {
		case 0:
			b.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
		case 1:
			b.Instrs = []ir.Instr{{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
		default:
			b.Instrs = []ir.Instr{{Op: ir.OpBrIf, Dst: ir.NoReg, A: r1, B: r2, C: ir.NoReg}}
		}
	}
	f.RecomputePreds()
	return f
}

func TestDiamondDominators(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3
	f := buildFunc([][]int{{1, 2}, {3}, {3}, {}})
	info := cfg.Analyze(f)
	if info.IDom[1] != 0 || info.IDom[2] != 0 || info.IDom[3] != 0 {
		t.Fatalf("idoms: %v", info.IDom)
	}
	if !info.Dominates(0, 3) || info.Dominates(1, 3) || info.Dominates(2, 3) {
		t.Fatal("dominance of the join is wrong")
	}
	if len(info.Loops) != 0 {
		t.Fatalf("no loops expected, got %v", info.Loops)
	}
}

func TestSimpleLoop(t *testing.T) {
	// 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit)
	f := buildFunc([][]int{{1}, {2, 3}, {1}, {}})
	info := cfg.Analyze(f)
	if len(info.Loops) != 1 {
		t.Fatalf("loops: %v", info.Loops)
	}
	l := info.Loops[0]
	if l.Header != 1 || len(l.Blocks) != 2 {
		t.Fatalf("loop: %+v", l)
	}
	wantDepth := []int{0, 1, 1, 0}
	for i, d := range wantDepth {
		if info.Depth[i] != d {
			t.Fatalf("depth[%d] = %d, want %d", i, info.Depth[i], d)
		}
	}
	// Analyze stamps the blocks too.
	if f.Blocks[2].Depth != 1 {
		t.Fatal("block depth not stamped")
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2 ; 2 -> 4(latch) -> 1 ; 1 -> 5
	f := buildFunc([][]int{{1}, {2, 5}, {3, 4}, {2}, {1}, {}})
	info := cfg.Analyze(f)
	if len(info.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(info.Loops))
	}
	if info.Depth[3] != 2 || info.Depth[2] != 2 || info.Depth[4] != 1 || info.Depth[1] != 1 {
		t.Fatalf("depths: %v", info.Depth)
	}
}

func TestUnreachableBlocks(t *testing.T) {
	// Block 2 is unreachable.
	f := buildFunc([][]int{{1}, {}, {1}})
	info := cfg.Analyze(f)
	if info.RPONum[2] != -1 {
		t.Fatal("unreachable block got an RPO number")
	}
	if info.Dominates(2, 1) || info.Dominates(1, 2) {
		t.Fatal("unreachable blocks must not participate in dominance")
	}
}

func TestMultipleBackEdgesOneHeader(t *testing.T) {
	// Two latches into the same header form ONE loop.
	// 0 -> 1 -> 2 -> {1, 3}; 3 -> {1, 4}
	f := buildFunc([][]int{{1}, {2}, {1, 3}, {1, 4}, {}})
	info := cfg.Analyze(f)
	if len(info.Loops) != 1 {
		t.Fatalf("want 1 merged loop, got %d", len(info.Loops))
	}
	if info.Depth[1] != 1 || info.Depth[2] != 1 || info.Depth[3] != 1 {
		t.Fatalf("depths: %v", info.Depth)
	}
}

// refDominates is the textbook oracle: v dominates w iff removing v
// from the graph makes w unreachable from entry (and reachable
// before). Quadratic, fine for the table graphs.
func refDominates(succs [][]int, v, w int) bool {
	reach := func(skip int) []bool {
		seen := make([]bool, len(succs))
		if skip == 0 {
			return seen
		}
		var walk func(int)
		walk = func(b int) {
			if b == skip || seen[b] {
				return
			}
			seen[b] = true
			for _, s := range succs[b] {
				walk(s)
			}
		}
		walk(0)
		return seen
	}
	if !reach(-1)[w] {
		return false // unreachable blocks dominate nothing and are dominated by nothing
	}
	return v == w || !reach(v)[w]
}

// TestDominatorTable cross-checks Analyze against the removal oracle
// on the CFG shapes that historically break dominator algorithms:
// single-block functions, self-loops, unreachable subgraphs (including
// unreachable cycles), and irreducible loops entered from two sides.
func TestDominatorTable(t *testing.T) {
	cases := []struct {
		name  string
		succs [][]int
		// wantIDom[b] = expected immediate dominator (-1 unreachable).
		wantIDom []int
		loops    int
	}{
		{
			name:     "single block",
			succs:    [][]int{{}},
			wantIDom: []int{0},
			loops:    0,
		},
		{
			name:     "self loop",
			succs:    [][]int{{1}, {1, 2}, {}},
			wantIDom: []int{0, 0, 1},
			loops:    1,
		},
		{
			name:     "self loop on entry",
			succs:    [][]int{{0, 1}, {}},
			wantIDom: []int{0, 0},
			loops:    1,
		},
		{
			name: "irreducible: two entries into a cycle",
			// 0 branches to 1 and 2; 1 <-> 2 form a cycle neither
			// dominates, so the retreating edge is not a back edge
			// and no natural loop is reported.
			succs:    [][]int{{1, 2}, {2, 3}, {1, 3}, {}},
			wantIDom: []int{0, 0, 0, 0},
			loops:    0,
		},
		{
			name: "unreachable cycle",
			// 2 and 3 cycle but nothing reaches them.
			succs:    [][]int{{1}, {}, {3}, {2}},
			wantIDom: []int{0, 0, -1, -1},
			loops:    0,
		},
		{
			name: "unreachable block with edge into live code",
			// 2 jumps into the live chain; its edge must not
			// perturb the dominance of reachable blocks.
			succs:    [][]int{{1}, {}, {1}},
			wantIDom: []int{0, 0, -1},
			loops:    0,
		},
		{
			name: "nested loop sharing a latch chain",
			// 0 -> 1 -> 2 -> 3 -> 2, 3 -> 1, 1 -> 4
			succs:    [][]int{{1}, {2, 4}, {3}, {2, 1}, {}},
			wantIDom: []int{0, 0, 1, 2, 1},
			loops:    2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := buildFunc(tc.succs)
			info := cfg.Analyze(f)
			for b, want := range tc.wantIDom {
				if info.IDom[b] != want {
					t.Errorf("IDom[%d] = %d, want %d (all: %v)", b, info.IDom[b], want, info.IDom)
				}
			}
			if len(info.Loops) != tc.loops {
				t.Errorf("loops = %d, want %d (%+v)", len(info.Loops), tc.loops, info.Loops)
			}
			n := len(tc.succs)
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					got := info.Dominates(v, w)
					want := refDominates(tc.succs, v, w)
					if got != want {
						t.Errorf("Dominates(%d,%d) = %v, oracle says %v", v, w, got, want)
					}
				}
			}
		})
	}
}

// TestCompiledLoopDepths checks depth assignment on real compiled
// code with a triple nest.
func TestCompiledLoopDepths(t *testing.T) {
	src := `
      SUBROUTINE TRIPLE(A,N)
      REAL A(*)
      INTEGER I,J,K,N
      DO I = 1,N
         DO J = 1,N
            DO K = 1,N
               A(K) = A(K) + 1.0
            ENDDO
         ENDDO
      ENDDO
      END
`
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("TRIPLE")
	cfg.Analyze(f)
	maxDepth := 0
	for _, b := range f.Blocks {
		if b.Depth > maxDepth {
			maxDepth = b.Depth
		}
	}
	if maxDepth != 3 {
		t.Fatalf("max loop depth = %d, want 3", maxDepth)
	}
}
