// Quickstart: compile a small FORTRAN routine, allocate registers
// with Chaitin's heuristic and with the paper's optimistic
// heuristic, and print what each did. Also demonstrates the paper's
// Figure 3 directly on an interference graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regalloc"
	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ir"
)

const source = `
      SUBROUTINE SAXPYISH(N,A,X,Y)
C     y = y + a*x, with a deliberately register-hungry inner loop
      REAL A,X(*),Y(*)
      REAL T1,T2,T3,T4
      INTEGER I,N
      DO I = 1,N-3,4
         T1 = A*X(I)
         T2 = A*X(I+1)
         T3 = A*X(I+2)
         T4 = A*X(I+3)
         Y(I) = Y(I) + T1
         Y(I+1) = Y(I+1) + T2
         Y(I+2) = Y(I+2) + T3
         Y(I+3) = Y(I+3) + T4
      ENDDO
      RETURN
      END
`

func main() {
	prog, err := regalloc.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		res, err := prog.Allocate("SAXPYISH", opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s live ranges=%3d  spilled=%d  passes=%d  graph edges=%d\n",
			h.String()+":", res.LiveRanges(), res.TotalSpilled(), len(res.Passes), res.Passes[0].Edges)
	}

	// The paper's Figure 3: a 4-cycle needs two colors, but with
	// k = 2 Chaitin's simplification is immediately stuck (every
	// node has degree 2) and must spill. Deferring the decision to
	// the select phase colors it.
	fmt.Println("\nFigure 3 (4-cycle, k = 2):")
	g, costs := graphgen.Cycle(4)
	k := func(ir.Class) int { return 2 }

	sr := color.Simplify(g, costs, k, color.Chaitin, color.CostOverDegree)
	fmt.Printf("  chaitin: marks %d node(s) for spilling during simplify\n", len(sr.SpillMarked))

	sr = color.Simplify(g, costs, k, color.Briggs, color.CostOverDegree)
	colors, uncolored := color.Select(g, sr.Stack, k, true)
	fmt.Printf("  briggs:  spills %d; coloring = %v\n", len(uncolored), colors)
}
