// Package traceevent renders an obs event stream as Chrome
// trace-event JSON — the "JSON Array Format" with B/E duration
// events — which ui.perfetto.dev and chrome://tracing open directly.
// Each allocation unit becomes one named thread row, so a
// whole-program Assemble shows its units side by side with the
// Figure 4 phases nested within each (coalesce inside build, exactly
// as the allocator runs them); counters become counter tracks and
// spill/reuse decisions become instant events on the unit's row.
//
// The sink buffers events in memory and serializes on demand: CLI
// traces are bounded (one event per phase boundary, counter, and
// decision), and buffering lets the writer normalize timestamps to
// the earliest event so the trace always starts at t=0.
package traceevent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"regalloc/internal/obs"
)

// Sink collects obs events for later serialization. It is safe for
// concurrent use; a nil *Sink passed through obs.Multi is dropped
// there, so callers can wire it unconditionally.
type Sink struct {
	mu     sync.Mutex
	events []obs.Event
}

// New returns an empty Sink.
func New() *Sink { return &Sink{} }

// Emit buffers e.
func (s *Sink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Len reports how many events are buffered.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// traceEvent is one element of the traceEvents array. ts and dur are
// microseconds (the format's unit); float64 keeps nanosecond
// precision.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON serializes the buffered events. Units are assigned
// thread ids in order of first appearance and named via thread_name
// metadata; timestamps are rebased so the earliest event is t=0.
func (s *Sink) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	events := make([]obs.Event, len(s.events))
	copy(events, s.events)
	s.mu.Unlock()

	var t0 time.Time
	for _, e := range events {
		if t0.IsZero() || e.Time.Before(t0) {
			t0 = e.Time
		}
	}
	ts := func(e obs.Event) float64 {
		return float64(e.Time.Sub(t0).Nanoseconds()) / 1e3
	}

	tids := map[string]int{}
	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	tidFor := func(unit string) int {
		if id, ok := tids[unit]; ok {
			return id
		}
		id := len(tids) + 1
		tids[unit] = id
		name := unit
		if name == "" {
			name = "(unnamed)"
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": name},
		})
		return id
	}

	for _, e := range events {
		tid := tidFor(e.Unit)
		switch e.Kind {
		case obs.KindSpanBegin:
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: e.Phase.String(), Cat: "phase", Ph: "B", TS: ts(e), PID: 1, TID: tid,
				Args: map[string]any{"pass": e.Pass},
			})
		case obs.KindSpanEnd:
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: e.Phase.String(), Cat: "phase", Ph: "E", TS: ts(e), PID: 1, TID: tid,
			})
		case obs.KindCounter:
			// One counter track per unit+name; the phase stays as a
			// category so filtering works.
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: e.Unit + "/" + e.Name, Cat: e.Phase.String(), Ph: "C", TS: ts(e), PID: 1, TID: tid,
				Args: map[string]any{e.Name: e.Value},
			})
		case obs.KindSpillDecision:
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: fmt.Sprintf("spill n%d", e.Node), Cat: "spill_decision", Ph: "i", TS: ts(e), PID: 1, TID: tid, S: "t",
				Args: map[string]any{"node": e.Node, "degree": e.Degree, "cost": e.Cost, "metric": e.Metric},
			})
		case obs.KindColorReuse:
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: fmt.Sprintf("reuse n%d", e.Node), Cat: "color_reuse", Ph: "i", TS: ts(e), PID: 1, TID: tid, S: "t",
				Args: map[string]any{"node": e.Node, "degree": e.Degree, "color": e.Color, "in_use_colors": e.InUseColors},
			})
		}
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
