package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the aggregation half of the observability layer: where
// sinks.go folds a *live event stream* into counters, the Registry
// accumulates *completed runs* — one RunSummary per Allocate/Assemble
// call — across the lifetime of a process, so a long-running service
// (cmd/allocd) or a benchmark sweep (cmd/bench -bench-json) can
// answer "what has this allocator done so far" without replaying
// traces. Exporters render a Snapshot: internal/obs/promtext in
// Prometheus text exposition format, cmd/bench in its JSON schema.

// LatencyBuckets is the fixed upper-bound ladder (a 1-2-5 series from
// 1µs to 10s) shared by every LatencyHistogram. Fixed buckets make
// histograms mergeable across runs, processes, and scrapes — the
// property Prometheus histograms are built on — at the price of
// interpolated (rather than exact) percentiles.
var LatencyBuckets = [NumLatencyBuckets]time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second,
}

// NumLatencyBuckets is len(LatencyBuckets); LatencyHistogram carries
// one extra overflow bucket beyond it.
const NumLatencyBuckets = 22

// LatencyHistogram counts durations into the fixed LatencyBuckets
// ladder. The zero value is ready to use. It is a plain value type;
// the Registry provides the locking.
type LatencyHistogram struct {
	Count   int64
	SumNS   int64
	MaxNS   int64
	Buckets [NumLatencyBuckets + 1]int64 // Buckets[i]: d <= LatencyBuckets[i]; last: larger
}

// Observe counts one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
	for i, ub := range LatencyBuckets {
		if d <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[NumLatencyBuckets]++
}

// Merge adds o's observations into h (bucket-wise; this is why the
// ladder is fixed).
func (h *LatencyHistogram) Merge(o LatencyHistogram) {
	h.Count += o.Count
	h.SumNS += o.SumNS
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed duration.
func (h LatencyHistogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes from the exported
// buckets, so dashboards and in-process numbers agree. The estimate
// is clamped to the observed maximum (exact for the overflow bucket).
func (h LatencyHistogram) Quantile(q float64) time.Duration {
	if h.Count == 0 || math.IsNaN(q) || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	var cum int64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = LatencyBuckets[i-1].Nanoseconds()
		}
		if i < NumLatencyBuckets {
			hi = LatencyBuckets[i].Nanoseconds()
		} else {
			hi = h.MaxNS
		}
		est := lo + int64(float64(hi-lo)*float64(rank-cum)/float64(n))
		if est > h.MaxNS {
			est = h.MaxNS
		}
		return time.Duration(est)
	}
	return time.Duration(h.MaxNS)
}

// RunSummary condenses one completed run — an Allocate/Assemble unit
// or a standalone (p)coloring — into the fields the Registry
// accumulates. Callers fill only what applies: a pcolor run has no
// passes, an allocator run has no PColorRounds. SpillCost is carried
// in fixed-point milli units (matching the spill.cost_milli trace
// counter) so concurrent accumulation stays exact: integer addition
// commutes, float addition does not.
type RunSummary struct {
	Unit  string // routine or graph name ("" aggregates namelessly)
	Error bool   // the run failed; only Unit is meaningful

	Passes         int   // trips around the Figure 4 cycle
	LiveRanges     int   // first-pass graph nodes
	Edges          int   // first-pass graph edges
	Spills         int   // live ranges spilled, all passes
	SpillCostMilli int64 // 1000 × summed estimated spill cost, rounded
	CoalescedMoves int   // copies removed, all passes

	PaletteInt   int // distinct int colors actually used
	PaletteFloat int // distinct float colors actually used

	PColorRounds    int // speculative rounds (pcolor runs)
	PColorConflicts int // boundary conflicts detected (pcolor runs)

	// Portfolio-race fields, filled only for runs that went through
	// the racing engine (internal/portfolio); PortfolioWinner == ""
	// marks a plain run. Candidate counts follow the engine's
	// statuses: started = finished + errored, cancelled candidates
	// never ran.
	PortfolioCandidates  int    // candidates in the race
	PortfolioStarted     int    // candidates that began running
	PortfolioFinished    int    // candidates that finished and verified
	PortfolioCancelled   int    // candidates cut off before starting
	PortfolioWinner      string // winning strategy name
	PortfolioMarginMilli int64  // cheapest loser minus winner, milli spill cost
	// PortfolioEntrants lists every candidate strategy in the race,
	// winners and losers alike. Record seeds a zero wins counter for
	// each, so the wins_total label set is the candidate list, not the
	// winner history: a strategy that never wins (say, a newly added
	// family) still exports wins_total{strategy="..."} 0 instead of
	// silently missing — absent series skew any win-rate computed from
	// the scrape.
	PortfolioEntrants []string

	PhaseNS [NumPhases]int64 // summed wall time per phase
	TotalNS int64            // summed wall time, whole run
}

// SpillCostMilli converts a float spill cost to the fixed-point
// representation RunSummary carries.
func SpillCostMilli(cost float64) int64 { return int64(math.Round(cost * 1000)) }

// Registry accumulates RunSummary records. It is safe for concurrent
// use from any number of goroutines; totals reconcile exactly with
// the per-run records regardless of interleaving (every accumulated
// quantity is an integer). The zero value is NOT ready; use
// NewRegistry.
type Registry struct {
	mu        sync.Mutex
	runs      int64
	errors    int64
	passes    int64
	spills    int64
	costMilli int64
	moves     int64
	pcRounds  int64
	pcConfl   int64

	pfRaces      int64
	pfCandidates int64
	pfStarted    int64
	pfFinished   int64
	pfCancelled  int64
	pfMargin     int64

	palIntMax   int
	palFloatMax int

	unitRuns map[string]int64
	pfWins   map[string]int64

	phase [NumPhases]LatencyHistogram
	total LatencyHistogram
}

// MaxUnitKeys bounds the distinct per-unit keys a Registry tracks.
// Unit names reach allocd from untrusted clients (?unit= and routine
// names in POSTed sources); without a cap each new name would add a
// map entry and a /metrics series for the life of the process. Runs
// beyond the cap fold into OverflowUnit, so regalloc_runs_total still
// reconciles with the sum over regalloc_unit_runs_total.
const MaxUnitKeys = 1024

// OverflowUnit is the bucket absorbing runs whose unit name arrives
// after MaxUnitKeys distinct names are already tracked.
const OverflowUnit = "(other)"

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{unitRuns: make(map[string]int64), pfWins: make(map[string]int64)}
}

// Record folds one run into the aggregates. Safe for concurrent use.
func (r *Registry) Record(s RunSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	unit := s.Unit
	if _, ok := r.unitRuns[unit]; !ok && len(r.unitRuns) >= MaxUnitKeys {
		unit = OverflowUnit
	}
	r.unitRuns[unit]++
	if s.Error {
		r.errors++
		return
	}
	r.passes += int64(s.Passes)
	r.spills += int64(s.Spills)
	r.costMilli += s.SpillCostMilli
	r.moves += int64(s.CoalescedMoves)
	r.pcRounds += int64(s.PColorRounds)
	r.pcConfl += int64(s.PColorConflicts)
	if s.PortfolioWinner != "" {
		r.pfRaces++
		r.pfCandidates += int64(s.PortfolioCandidates)
		r.pfStarted += int64(s.PortfolioStarted)
		r.pfFinished += int64(s.PortfolioFinished)
		r.pfCancelled += int64(s.PortfolioCancelled)
		r.pfMargin += s.PortfolioMarginMilli
		for _, name := range s.PortfolioEntrants {
			if _, ok := r.pfWins[name]; !ok && len(r.pfWins) < MaxUnitKeys {
				r.pfWins[name] = 0
			}
		}
		win := s.PortfolioWinner
		if _, ok := r.pfWins[win]; !ok && len(r.pfWins) >= MaxUnitKeys {
			win = OverflowUnit
		}
		r.pfWins[win]++
	}
	if s.PaletteInt > r.palIntMax {
		r.palIntMax = s.PaletteInt
	}
	if s.PaletteFloat > r.palFloatMax {
		r.palFloatMax = s.PaletteFloat
	}
	for p := 0; p < NumPhases; p++ {
		if s.PhaseNS[p] > 0 {
			r.phase[p].Observe(time.Duration(s.PhaseNS[p]))
		}
	}
	if s.TotalNS > 0 {
		r.total.Observe(time.Duration(s.TotalNS))
	}
}

// RegistrySnapshot is a consistent point-in-time copy of a Registry,
// the unit exporters consume.
type RegistrySnapshot struct {
	Runs           int64
	Errors         int64
	Passes         int64
	Spills         int64
	SpillCostMilli int64
	CoalescedMoves int64

	PColorRounds    int64
	PColorConflicts int64

	PortfolioRaces       int64
	PortfolioCandidates  int64
	PortfolioStarted     int64
	PortfolioFinished    int64
	PortfolioCancelled   int64
	PortfolioMarginMilli int64

	PaletteIntMax   int
	PaletteFloatMax int

	UnitRuns map[string]int64
	// PortfolioWins counts races won per strategy name.
	PortfolioWins map[string]int64

	Phase [NumPhases]LatencyHistogram // indexed by Phase; zero Count when unobserved
	Total LatencyHistogram
}

// Snapshot returns a consistent copy of the aggregates.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := RegistrySnapshot{
		Runs:            r.runs,
		Errors:          r.errors,
		Passes:          r.passes,
		Spills:          r.spills,
		SpillCostMilli:  r.costMilli,
		CoalescedMoves:  r.moves,
		PColorRounds:    r.pcRounds,
		PColorConflicts: r.pcConfl,

		PortfolioRaces:       r.pfRaces,
		PortfolioCandidates:  r.pfCandidates,
		PortfolioStarted:     r.pfStarted,
		PortfolioFinished:    r.pfFinished,
		PortfolioCancelled:   r.pfCancelled,
		PortfolioMarginMilli: r.pfMargin,

		PaletteIntMax:   r.palIntMax,
		PaletteFloatMax: r.palFloatMax,
		UnitRuns:        make(map[string]int64, len(r.unitRuns)),
		PortfolioWins:   make(map[string]int64, len(r.pfWins)),
		Phase:           r.phase,
		Total:           r.total,
	}
	for k, v := range r.unitRuns {
		snap.UnitRuns[k] = v
	}
	for k, v := range r.pfWins {
		snap.PortfolioWins[k] = v
	}
	return snap
}

// SpillCost returns the accumulated spill cost in float form.
func (s RegistrySnapshot) SpillCost() float64 { return float64(s.SpillCostMilli) / 1000 }

// String renders the snapshot as a deterministic summary table: map
// keys are sorted, so identical snapshots always print identically
// (the same contract Metrics.String keeps for counter dumps).
func (s RegistrySnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runs: %d (%d failed), passes: %d\n", s.Runs, s.Errors, s.Passes)
	fmt.Fprintf(&b, "spills: %d (summed cost %.3f), coalesced moves: %d\n", s.Spills, s.SpillCost(), s.CoalescedMoves)
	if s.PColorRounds > 0 || s.PColorConflicts > 0 {
		fmt.Fprintf(&b, "pcolor: %d round(s), %d conflict(s)\n", s.PColorRounds, s.PColorConflicts)
	}
	if s.PortfolioRaces > 0 {
		fmt.Fprintf(&b, "portfolio: %d race(s), %d candidate(s) (%d finished, %d cancelled), summed win margin %.3f\n",
			s.PortfolioRaces, s.PortfolioCandidates, s.PortfolioFinished, s.PortfolioCancelled,
			float64(s.PortfolioMarginMilli)/1000)
		wins := make([]string, 0, len(s.PortfolioWins))
		for w := range s.PortfolioWins {
			wins = append(wins, w)
		}
		sort.Strings(wins)
		for _, w := range wins {
			fmt.Fprintf(&b, "  won by %-20s %6d race(s)\n", w, s.PortfolioWins[w])
		}
	}
	fmt.Fprintf(&b, "palette max: %d int, %d float\n", s.PaletteIntMax, s.PaletteFloatMax)
	for p := 0; p < NumPhases; p++ {
		h := s.Phase[p]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-9s spans %5d  p50 %10s  p95 %10s  p99 %10s  max %10s\n",
			Phase(p).String(), h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), time.Duration(h.MaxNS))
	}
	if s.Total.Count > 0 {
		fmt.Fprintf(&b, "  %-9s runs  %5d  p50 %10s  p95 %10s  p99 %10s  max %10s\n",
			"total", s.Total.Count, s.Total.Quantile(0.50), s.Total.Quantile(0.95), s.Total.Quantile(0.99), time.Duration(s.Total.MaxNS))
	}
	units := make([]string, 0, len(s.UnitRuns))
	for u := range s.UnitRuns {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		name := u
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "  unit %-20s %6d run(s)\n", name, s.UnitRuns[u])
	}
	return b.String()
}
