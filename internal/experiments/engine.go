// Package experiments regenerates the paper's evaluation: Figure 5
// (static spill improvements and dynamic gains across five
// programs), Figure 6 (the quicksort register-set study), and
// Figure 7 (CPU time per allocator phase). Each figure has a
// function returning a typed table plus a formatter that prints rows
// shaped like the paper's.
package experiments

import (
	"fmt"

	"regalloc"
	"regalloc/internal/irinterp"
	"regalloc/internal/vm"
)

// Engine abstracts the two execution backends — the cycle-counting
// simulator (vm) and the reference IR interpreter (irinterp) — so a
// single driver script produces both the dynamic measurements and
// the ground-truth results they are validated against.
type Engine interface {
	Call(name string, args ...vm.Value) (vm.Value, error)
	LoadInt(addr int64) int64
	StoreInt(addr, v int64)
	LoadFloat(addr int64) float64
	StoreFloat(addr int64, v float64)
}

// VMEngine adapts *vm.VM.
type VMEngine struct{ M *vm.VM }

// Call runs a function on the simulator.
func (e VMEngine) Call(name string, args ...vm.Value) (vm.Value, error) {
	return e.M.Call(name, args...)
}

// LoadInt reads an integer word.
func (e VMEngine) LoadInt(a int64) int64 { return e.M.LoadInt(a) }

// StoreInt writes an integer word.
func (e VMEngine) StoreInt(a, v int64) { e.M.StoreInt(a, v) }

// LoadFloat reads a float word.
func (e VMEngine) LoadFloat(a int64) float64 { return e.M.LoadFloat(a) }

// StoreFloat writes a float word.
func (e VMEngine) StoreFloat(a int64, v float64) { e.M.StoreFloat(a, v) }

// InterpEngine adapts *irinterp.Interp.
type InterpEngine struct{ I *irinterp.Interp }

// Call runs a function on the reference interpreter.
func (e InterpEngine) Call(name string, args ...vm.Value) (vm.Value, error) {
	conv := make([]irinterp.Value, len(args))
	for i, a := range args {
		conv[i] = irinterp.Value{Cls: a.Cls, I: a.I, F: a.F}
	}
	r, err := e.I.Call(name, conv...)
	return vm.Value{Cls: r.Cls, I: r.I, F: r.F}, err
}

// LoadInt reads an integer word.
func (e InterpEngine) LoadInt(a int64) int64 { return e.I.LoadInt(a) }

// StoreInt writes an integer word.
func (e InterpEngine) StoreInt(a, v int64) { e.I.StoreInt(a, v) }

// LoadFloat reads a float word.
func (e InterpEngine) LoadFloat(a int64) float64 { return e.I.LoadFloat(a) }

// StoreFloat writes a float word.
func (e InterpEngine) StoreFloat(a int64, v float64) { e.I.StoreFloat(a, v) }

// NewVMEngine assembles prog with the given heuristic on the paper's
// machine and returns a simulator engine.
func NewVMEngine(prog *regalloc.Program, h regalloc.Heuristic, m regalloc.Machine) (VMEngine, error) {
	opt := defaultOptions()
	opt.Heuristic = h
	code, _, err := prog.Assemble(m, opt)
	if err != nil {
		return VMEngine{}, err
	}
	return VMEngine{M: regalloc.NewVM(code, prog.MemWords())}, nil
}

// NewInterpEngine returns the reference engine for prog.
func NewInterpEngine(prog *regalloc.Program) InterpEngine {
	return InterpEngine{I: prog.NewInterp(prog.MemWords())}
}

// lcg is the deterministic generator drivers use for input data.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

func (r *lcg) float() float64 { return float64(r.next()%2000000)/1000000.0 - 1.0 }

func (r *lcg) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// digest accumulates a simple order-sensitive checksum for
// cross-engine result comparison.
type digest struct{ h uint64 }

func (d *digest) addInt(v int64) { d.h = d.h*1099511628211 ^ uint64(v) }

func (d *digest) addFloat(v float64) {
	// Quantize so the two engines (identical arithmetic) agree and
	// tiny formatting differences cannot creep in.
	d.addInt(int64(v * 1e6))
}

func (d *digest) sum() uint64 { return d.h }

// check fails with a labeled error when err is non-nil.
func check(label string, err error) error {
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	return nil
}

// NewVMEngineWith assembles prog with fully custom options on m.
func NewVMEngineWith(prog *regalloc.Program, m regalloc.Machine, opt regalloc.Options) (VMEngine, error) {
	code, _, err := prog.Assemble(m, opt)
	if err != nil {
		return VMEngine{}, err
	}
	return VMEngine{M: regalloc.NewVM(code, prog.MemWords())}, nil
}
