package workloads

// qsortSource is the §3.2 integer workload: the non-recursive
// quicksort of Wirth ("Algorithms + Data Structures = Programs"),
// with the explicit partition stack, extended with median-of-three
// pivot selection and an insertion-sort finish for short partitions
// — the standard production refinements, which also give the
// allocator realistically many simultaneously-live integer values.
const qsortSource = `
      SUBROUTINE QSORT(A,N)
C     non-recursive quicksort (after Wirth), integer keys
      INTEGER A(*),N
      INTEGER STACKL(64),STACKR(64)
      INTEGER S,L,R,I,J,X,W,MID,CUT
      CUT = 12
      S = 1
      STACKL(1) = 1
      STACKR(1) = N
      DO WHILE (S .GT. 0)
         L = STACKL(S)
         R = STACKR(S)
         S = S - 1
         DO WHILE (R - L .GE. CUT)
C           median-of-three pivot: order A(L), A(MID), A(R)
            MID = (L + R)/2
            IF (A(MID) .LT. A(L)) THEN
               W = A(MID)
               A(MID) = A(L)
               A(L) = W
            ENDIF
            IF (A(R) .LT. A(L)) THEN
               W = A(R)
               A(R) = A(L)
               A(L) = W
            ENDIF
            IF (A(R) .LT. A(MID)) THEN
               W = A(R)
               A(R) = A(MID)
               A(MID) = W
            ENDIF
            X = A(MID)
C           partition
            I = L
            J = R
            DO WHILE (I .LE. J)
               DO WHILE (A(I) .LT. X)
                  I = I + 1
               ENDDO
               DO WHILE (X .LT. A(J))
                  J = J - 1
               ENDDO
               IF (I .LE. J) THEN
                  W = A(I)
                  A(I) = A(J)
                  A(J) = W
                  I = I + 1
                  J = J - 1
               ENDIF
            ENDDO
C           push the larger part, iterate on the smaller
            IF (J - L .LT. R - I) THEN
               IF (I .LT. R) THEN
                  S = S + 1
                  STACKL(S) = I
                  STACKR(S) = R
               ENDIF
               R = J
            ELSE
               IF (L .LT. J) THEN
                  S = S + 1
                  STACKL(S) = L
                  STACKR(S) = J
               ENDIF
               L = I
            ENDIF
         ENDDO
C        insertion sort for the short remainder
         DO I = L+1,R
            X = A(I)
            J = I - 1
            DO WHILE (J .GE. L)
               IF (A(J) .LE. X) EXIT
               A(J+1) = A(J)
               J = J - 1
            ENDDO
            A(J+1) = X
         ENDDO
      ENDDO
      RETURN
      END
`
