package graphgen

import (
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// The scale tier: generators sized for 10^5–10^7 node graphs, the
// regime where the CSR adjacency backbone and the parallel coloring
// engines earn their keep. Both feed ig.NewSized an exact or
// near-exact edge count so the flat edge set and the edge log are
// allocated once, and both are fully deterministic — PowerLaw from
// its seed, Mesh from its dimensions alone.

// PowerLaw returns a Barabási–Albert preferential-attachment graph:
// an (m+1)-clique nucleus, then each new node attaches to m distinct
// existing nodes chosen with probability proportional to current
// degree (the repeated-endpoints trick: sampling a uniform slot of
// the edge-endpoint log IS degree-proportional sampling). The degree
// distribution follows a power law, giving the hub-and-spoke shape
// of call-graph-sized interference problems: a few very hot ranges
// touching everything, a long tail of locals. Costs are
// pseudo-random in [1, 1000).
//
// All nodes are ClassInt. The result has exactly
// m(m+1)/2 + (n-m-1)*m edges.
func PowerLaw(n, m int, seed uint64) (*ig.Graph, []float64) {
	if n < 1 {
		n = 1
	}
	if m < 1 {
		m = 1
	}
	if m >= n && n > 1 {
		m = n - 1
	}
	rng := NewRNG(seed)
	classes := make([]ir.Class, n)
	g := ig.NewSized(classes, m*n)

	nuc := m + 1
	if nuc > n {
		nuc = n
	}
	// Endpoint log: every edge contributes both ends, so a uniform
	// draw from ends lands on node v with probability deg(v)/2E.
	ends := make([]int32, 0, 2*m*n)
	for a := 0; a < nuc; a++ {
		for b := a + 1; b < nuc; b++ {
			g.AddEdge(int32(a), int32(b))
			ends = append(ends, int32(a), int32(b))
		}
	}
	for v := nuc; v < n; v++ {
		for added := 0; added < m; added++ {
			t := ends[rng.Intn(len(ends))]
			// Distinct-target retry: a draw that hits v itself (its
			// earlier edges this round are already in ends) or an
			// existing neighbor re-samples a few times, then walks
			// forward deterministically — at least m distinct targets
			// always exist, so the walk terminates.
			for tries := 0; t == int32(v) || g.Interfere(int32(v), t); tries++ {
				if tries < 8 {
					t = ends[rng.Intn(len(ends))]
				} else {
					t = (t + 1) % int32(v)
				}
			}
			g.AddEdge(int32(v), t)
			ends = append(ends, int32(v), t)
		}
	}
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + float64(rng.Intn(999))
	}
	return g, costs
}

// Mesh returns the w×h 4-neighbor grid graph — the interference
// shape of stencil loops and blocked numeric kernels: uniformly low
// degree, huge diameter, trivially 4-colorable. It is the
// antagonist of PowerLaw in the scale bench: same node count,
// opposite degree profile. Costs rise toward the grid center
// (deterministically, no RNG), mimicking loop-depth weighting.
//
// All nodes are ClassInt. The result has exactly 2wh - w - h edges.
func Mesh(w, h int) (*ig.Graph, []float64) {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	n := w * h
	classes := make([]ir.Class, n)
	g := ig.NewSized(classes, 2*n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int32(y*w + x)
			if x+1 < w {
				g.AddEdge(v, v+1)
			}
			if y+1 < h {
				g.AddEdge(v, v+int32(w))
			}
		}
	}
	costs := make([]float64, n)
	for y := 0; y < h; y++ {
		dy := y
		if h-1-y < dy {
			dy = h - 1 - y
		}
		for x := 0; x < w; x++ {
			dx := x
			if w-1-x < dx {
				dx = w - 1 - x
			}
			d := dx
			if dy < d {
				d = dy
			}
			costs[y*w+x] = float64(1 + 10*d)
		}
	}
	return g, costs
}
