// Package source defines positions and diagnostics shared by the
// mini-FORTRAN front end (lexer, parser, semantic analysis).
package source

import (
	"fmt"
	"strings"
)

// Pos is a line/column position in a source file. Lines and columns
// are 1-based; the zero Pos means "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Error is a diagnostic attached to a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// Errorf constructs an *Error with a formatted message.
func Errorf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ErrorList accumulates diagnostics. Its Error method joins them with
// newlines, so a list can be returned directly as an error value.
type ErrorList []*Error

// Add appends a formatted diagnostic to the list.
func (l *ErrorList) Add(pos Pos, format string, args ...interface{}) {
	*l = append(*l, Errorf(pos, format, args...))
}

// Err returns the list as an error, or nil if it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	b.WriteString(l[0].Error())
	for _, e := range l[1:] {
		b.WriteByte('\n')
		b.WriteString(e.Error())
	}
	return b.String()
}
