package dataflow_test

import (
	"testing"

	"regalloc/internal/bitset"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
)

// straightLine builds: b0: a=1; b=a+a; ret b
func straightLine() (*ir.Func, ir.Reg, ir.Reg) {
	f := &ir.Func{Name: "T"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpAdd, Dst: b, A: a, B: a, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f, a, b
}

func TestLivenessStraightLine(t *testing.T) {
	f, a, b := straightLine()
	lv := dataflow.ComputeLiveness(f)
	if !lv.In[0].Empty() {
		t.Fatalf("live-in of entry should be empty, got %v", lv.In[0])
	}
	if !lv.Out[0].Empty() {
		t.Fatalf("live-out of exit block should be empty")
	}
	_ = a
	_ = b
}

// loopFunc builds a loop where x is defined before the loop and used
// inside it, so x is live around the back edge.
func loopFunc() (*ir.Func, ir.Reg, ir.Reg) {
	f := &ir.Func{Name: "L"}
	x := f.NewReg(ir.ClassInt)
	i := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock() // x=10; i=0; br b1
	b1 := f.NewBlock() // i = i+x; brif i lt x -> b1, b2
	b2 := f.NewBlock() // ret
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 10},
		{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: i, A: i, B: x, C: ir.NoReg},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: i, B: x, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b1.Succs = []int{1, 2}
	b2.Instrs = []ir.Instr{
		{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f, x, i
}

func TestLivenessAroundLoop(t *testing.T) {
	f, x, i := loopFunc()
	lv := dataflow.ComputeLiveness(f)
	if !lv.In[1].Has(int(x)) || !lv.In[1].Has(int(i)) {
		t.Fatalf("x and i must be live into the loop header: %v", lv.In[1])
	}
	if !lv.Out[1].Has(int(x)) {
		t.Fatal("x must be live out of the latch (used next iteration)")
	}
	if lv.Out[2].Has(int(x)) || lv.Out[2].Has(int(i)) {
		t.Fatal("nothing is live out of the exit")
	}
}

// TestLiveAcross checks the backward per-instruction traversal: the
// set passed at each instruction is what is live *after* it.
func TestLiveAcross(t *testing.T) {
	f, a, b := straightLine()
	lv := dataflow.ComputeLiveness(f)
	lv.LiveAcross(f, f.Blocks[0], func(i int, in *ir.Instr, live *bitset.Set) {
		switch i {
		case 0: // after "a = 1": a is live (used by the add)
			if !live.Has(int(a)) || live.Has(int(b)) {
				t.Fatalf("after const: %v", live)
			}
		case 1: // after "b = a+a": only b lives (ret uses it)
			if live.Has(int(a)) || !live.Has(int(b)) {
				t.Fatalf("after add: %v", live)
			}
		case 2: // after ret: nothing
			if !live.Empty() {
				t.Fatalf("after ret: %v", live)
			}
		}
	})
}

func TestReachingDefsAndWalkUses(t *testing.T) {
	// b0: x=1 ; brif -> b1 b2
	// b1: x=2 ; br b3
	// b2: br b3 (x=1 flows through)
	// b3: y=x ; ret
	f := &ir.Func{Name: "R"}
	x := f.NewReg(ir.ClassInt)
	y := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: c, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: c, B: c, C: ir.NoReg, Cmp: ir.CmpEQ},
	}
	b0.Succs = []int{1, 2}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b1.Succs = []int{3}
	b2.Instrs = []ir.Instr{{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
	b2.Succs = []int{3}
	b3.Instrs = []ir.Instr{
		{Op: ir.OpMove, Dst: y, A: x, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: y, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()

	r := dataflow.ComputeReaching(f)
	// The use of x in b3 must see BOTH defs (b0 and b1).
	sawUseOfX := 0
	r.WalkUses(f, f.Blocks[3], func(i int, in *ir.Instr, use ir.Reg, ds []int) {
		if use == x {
			sawUseOfX++
			if len(ds) != 2 {
				t.Fatalf("use of x reached by %d defs, want 2", len(ds))
			}
			for _, si := range ds {
				if r.Sites[si].Reg != x {
					t.Fatal("reaching site for wrong register")
				}
			}
		}
	})
	if sawUseOfX != 1 {
		t.Fatalf("saw %d uses of x in b3", sawUseOfX)
	}
	// Inside b1, the use... there is none; but a use of x at b1's
	// entry would see only the b0 def. Verify via In sets: the b1
	// entry set must contain exactly one def of x.
	count := 0
	for _, si := range r.ByReg[x] {
		if r.In[1].Has(si) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("defs of x reaching b1 entry = %d, want 1", count)
	}
}

// TestEntryPseudoDefs: a register read before any definition gets a
// fabricated entry def site so renumbering always finds a web.
func TestEntryPseudoDefs(t *testing.T) {
	f := &ir.Func{Name: "U"}
	x := f.NewReg(ir.ClassInt)
	y := f.NewReg(ir.ClassInt)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpMove, Dst: y, A: x, B: ir.NoReg, C: ir.NoReg}, // x used, never defined
		{Op: ir.OpRet, Dst: ir.NoReg, A: y, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	r := dataflow.ComputeReaching(f)
	found := false
	for _, s := range r.Sites {
		if s.Reg == x && s.Index == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no entry pseudo-def for the undefined register")
	}
	r.WalkUses(f, f.Blocks[0], func(i int, in *ir.Instr, use ir.Reg, ds []int) {
		if use == x && len(ds) == 0 {
			t.Fatal("use of undefined register has no reaching def")
		}
	})
}
