package vm_test

import (
	"math"
	"strings"
	"testing"

	"regalloc/internal/asm"
	"regalloc/internal/ir"
	"regalloc/internal/target"
	"regalloc/internal/vm"
)

// buildFunc assembles a one-function program directly in machine
// form (no compiler involved), to unit-test the simulator's opcode
// semantics and cycle accounting.
func buildFunc(name string, paramCls []ir.Class, hasRet bool, retCls ir.Class, code []asm.Instr) *asm.Program {
	p := asm.NewProgram()
	p.Add(&asm.Func{
		Name:     name,
		Code:     code,
		Machine:  target.RTPC(),
		HasRet:   hasRet,
		RetCls:   retCls,
		ParamCls: paramCls,
	})
	return p
}

func instr(op ir.Op, dst, a, b int16) asm.Instr {
	return asm.Instr{Op: op, Dst: dst, A: a, B: b, C: asm.NoReg, T1: -1}
}

func TestIntArithmetic(t *testing.T) {
	// f(x, y) = (x+y)*2 - x/y + x mod y
	prog := buildFunc("F", []ir.Class{ir.ClassInt, ir.ClassInt}, true, ir.ClassInt, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
		{Op: ir.OpParam, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 1, T1: -1},
		instr(ir.OpAdd, 2, 0, 1),
		{Op: ir.OpMulI, Dst: 2, A: 2, B: asm.NoReg, C: asm.NoReg, Imm: 2, T1: -1},
		instr(ir.OpDiv, 3, 0, 1),
		instr(ir.OpSub, 2, 2, 3),
		instr(ir.OpMod, 3, 0, 1),
		instr(ir.OpAdd, 2, 2, 3),
		{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
	})
	m := vm.New(prog, 1024)
	v, err := m.Call("F", vm.Int(17), vm.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	want := (17+5)*2 - 17/5 + 17%5
	if v.I != int64(want) {
		t.Fatalf("got %d, want %d", v.I, want)
	}
	if m.Cycles == 0 {
		t.Fatal("no cycles counted")
	}
}

func TestFloatOps(t *testing.T) {
	prog := buildFunc("F", []ir.Class{ir.ClassFloat}, true, ir.ClassFloat, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, Cls: ir.ClassFloat, T1: -1},
		instr(ir.OpFSqrt, 1, 0, asm.NoReg),
		instr(ir.OpFMul, 1, 1, 1),
		instr(ir.OpFSub, 2, 1, 0),
		instr(ir.OpFAbs, 2, 2, asm.NoReg),
		{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassFloat, T1: -1},
	})
	m := vm.New(prog, 1024)
	v, err := m.Call("F", vm.Float(7.25))
	if err != nil {
		t.Fatal(err)
	}
	// |sqrt(x)^2 - x| should be ~0.
	if v.F > 1e-12 {
		t.Fatalf("got %g", v.F)
	}
}

func TestMemoryAndBranches(t *testing.T) {
	// Sum memory[0..n) with a loop.
	prog := buildFunc("SUM", []ir.Class{ir.ClassInt}, true, ir.ClassInt, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},                        // 0: n
		{Op: ir.OpConst, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},                        // 1: i = 0
		{Op: ir.OpConst, Dst: 2, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},                        // 2: s = 0
		{Op: ir.OpBrIf, Dst: asm.NoReg, A: 1, B: 0, C: asm.NoReg, Cmp: ir.CmpGE, Cls: ir.ClassInt, T0: 8, T1: -1}, // 3: i >= n -> done
		{Op: ir.OpLoad, Dst: 3, A: asm.NoReg, B: 1, C: asm.NoReg, Cls: ir.ClassInt, T1: -1},                       // 4: t = m[i]
		{Op: ir.OpAdd, Dst: 2, A: 2, B: 3, C: asm.NoReg, T1: -1},                                                  // 5
		{Op: ir.OpAddI, Dst: 1, A: 1, B: asm.NoReg, C: asm.NoReg, Imm: 1, T1: -1},                                 // 6
		{Op: ir.OpBr, Dst: asm.NoReg, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, T0: 3, T1: -1},                    // 7
		{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},               // 8
	})
	m := vm.New(prog, 1024)
	for i := int64(0); i < 10; i++ {
		m.StoreInt(i, i*i)
	}
	v, err := m.Call("SUM", vm.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 285 {
		t.Fatalf("got %d, want 285", v.I)
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	prog := buildFunc("BAD", nil, false, ir.ClassInt, []asm.Instr{
		{Op: ir.OpConst, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: -5, T1: -1},
		{Op: ir.OpLoad, Dst: 1, A: asm.NoReg, B: 0, C: asm.NoReg, Cls: ir.ClassInt, T1: -1},
		{Op: ir.OpRet, Dst: asm.NoReg, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, T1: -1},
	})
	m := vm.New(prog, 64)
	_, err := m.Call("BAD")
	if err == nil || !strings.Contains(err.Error(), "address") {
		t.Fatalf("want address fault, got %v", err)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	prog := buildFunc("DIV", []ir.Class{ir.ClassInt}, true, ir.ClassInt, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
		{Op: ir.OpConst, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
		instr(ir.OpDiv, 2, 0, 1),
		{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
	})
	m := vm.New(prog, 64)
	if _, err := m.Call("DIV", vm.Int(5)); err == nil {
		t.Fatal("integer division by zero must fault")
	}
}

func TestFloatDivisionByZeroIsIEEE(t *testing.T) {
	prog := buildFunc("FDIV", []ir.Class{ir.ClassFloat}, true, ir.ClassFloat, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, Cls: ir.ClassFloat, T1: -1},
		{Op: ir.OpConst, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, FImm: 0, Cls: ir.ClassFloat, T1: -1},
		instr(ir.OpFDiv, 2, 0, 1),
		{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassFloat, T1: -1},
	})
	m := vm.New(prog, 64)
	v, err := m.Call("FDIV", vm.Float(1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v.F, 1) {
		t.Fatalf("1/0.0 = %g, want +Inf", v.F)
	}
}

func TestCycleLimit(t *testing.T) {
	prog := buildFunc("SPIN", nil, false, ir.ClassInt, []asm.Instr{
		{Op: ir.OpBr, Dst: asm.NoReg, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, T0: 0, T1: -1},
	})
	m := vm.New(prog, 64)
	m.MaxCycles = 1000
	if _, err := m.Call("SPIN"); err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Fatalf("want cycle-limit fault, got %v", err)
	}
}

func TestCallsAndReturnValues(t *testing.T) {
	p := asm.NewProgram()
	p.Add(&asm.Func{
		Name: "TWICE", Machine: target.RTPC(), HasRet: true, RetCls: ir.ClassInt,
		ParamCls: []ir.Class{ir.ClassInt},
		Code: []asm.Instr{
			{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
			{Op: ir.OpMulI, Dst: 0, A: 0, B: asm.NoReg, C: asm.NoReg, Imm: 2, T1: -1},
			{Op: ir.OpRet, Dst: asm.NoReg, A: 0, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
		},
	})
	p.Add(&asm.Func{
		Name: "MAIN", Machine: target.RTPC(), HasRet: true, RetCls: ir.ClassInt,
		ParamCls: []ir.Class{ir.ClassInt},
		Code: []asm.Instr{
			{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
			{Op: ir.OpCall, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Callee: "TWICE",
				Args: []asm.ArgRef{{R: 0, Cls: ir.ClassInt}}, Cls: ir.ClassInt, T1: -1},
			{Op: ir.OpRet, Dst: asm.NoReg, A: 1, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
		},
	})
	m := vm.New(p, 64)
	v, err := m.Call("MAIN", vm.Int(21))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Fatalf("got %d", v.I)
	}
	// Calls cost at least the fixed overhead.
	if m.Cycles < target.CallOverhead {
		t.Fatal("call overhead not charged")
	}
}

func TestUnknownFunction(t *testing.T) {
	m := vm.New(asm.NewProgram(), 64)
	if _, err := m.Call("NOPE"); err == nil {
		t.Fatal("expected error for unknown function")
	}
}

func TestArgCountChecked(t *testing.T) {
	prog := buildFunc("F", []ir.Class{ir.ClassInt}, false, ir.ClassInt, []asm.Instr{
		{Op: ir.OpRet, Dst: asm.NoReg, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, T1: -1},
	})
	m := vm.New(prog, 64)
	if _, err := m.Call("F"); err == nil {
		t.Fatal("expected arg-count error")
	}
}

func TestIntrinsicOps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b float64
		want float64
	}{
		{ir.OpFMin, 2, 3, 2},
		{ir.OpFMax, 2, 3, 3},
		{ir.OpFSign, 5, -1, -5},
		{ir.OpFSign, -5, 1, 5},
		{ir.OpFMod, 7.5, 2, 1.5},
		{ir.OpFPow, 2, 10, 1024},
	}
	for _, c := range cases {
		prog := buildFunc("F", []ir.Class{ir.ClassFloat, ir.ClassFloat}, true, ir.ClassFloat, []asm.Instr{
			{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, Cls: ir.ClassFloat, T1: -1},
			{Op: ir.OpParam, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 1, Cls: ir.ClassFloat, T1: -1},
			instr(c.op, 2, 0, 1),
			{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassFloat, T1: -1},
		})
		m := vm.New(prog, 64)
		v, err := m.Call("F", vm.Float(c.a), vm.Float(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if v.F != c.want {
			t.Fatalf("%v(%g,%g) = %g, want %g", c.op, c.a, c.b, v.F, c.want)
		}
	}
}

func TestISignAndIPow(t *testing.T) {
	cases := []struct {
		op      ir.Op
		a, b, w int64
	}{
		{ir.OpISign, 4, -2, -4},
		{ir.OpISign, -4, 2, 4},
		{ir.OpIPow, 3, 4, 81},
		{ir.OpIPow, 2, 0, 1},
		{ir.OpIPow, 5, -1, 0},
		{ir.OpIPow, -1, -3, -1},
		{ir.OpIMin, -7, 3, -7},
		{ir.OpIMax, -7, 3, 3},
	}
	for _, c := range cases {
		prog := buildFunc("F", []ir.Class{ir.ClassInt, ir.ClassInt}, true, ir.ClassInt, []asm.Instr{
			{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
			{Op: ir.OpParam, Dst: 1, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 1, T1: -1},
			instr(c.op, 2, 0, 1),
			{Op: ir.OpRet, Dst: asm.NoReg, A: 2, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
		})
		m := vm.New(prog, 64)
		v, err := m.Call("F", vm.Int(c.a), vm.Int(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != c.w {
			t.Fatalf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, v.I, c.w)
		}
	}
}

func TestTrace(t *testing.T) {
	prog := buildFunc("F", []ir.Class{ir.ClassInt}, true, ir.ClassInt, []asm.Instr{
		{Op: ir.OpParam, Dst: 0, A: asm.NoReg, B: asm.NoReg, C: asm.NoReg, Imm: 0, T1: -1},
		{Op: ir.OpAddI, Dst: 0, A: 0, B: asm.NoReg, C: asm.NoReg, Imm: 1, T1: -1},
		{Op: ir.OpRet, Dst: asm.NoReg, A: 0, B: asm.NoReg, C: asm.NoReg, ACls: ir.ClassInt, T1: -1},
	})
	m := vm.New(prog, 64)
	var buf strings.Builder
	m.Trace = &buf
	if _, err := m.Call("F", vm.Int(1)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "F:1\taddi r0, r0, 1") || !strings.Contains(out, "F:2\tret r0") {
		t.Fatalf("trace output:\n%s", out)
	}
}
