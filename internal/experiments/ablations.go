package experiments

import (
	"fmt"
	"strings"

	"regalloc"
	"regalloc/internal/asm"
	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ir"
	"regalloc/internal/spill"
	"regalloc/internal/workloads"
)

// AblationResult holds the design-choice studies DESIGN.md §7 calls
// out: the spill-choice metric, coalescing, the depth weight in the
// cost estimator, where optimistic coloring's benefit concentrates
// as graphs get denser, and Chaitin's never-killed-value
// rematerialization refinement.
type AblationResult struct {
	Metric   []MetricRow
	Coalesce []CoalesceRow
	Depth    []DepthRow
	Density  []DensityRow
	Remat    []RematRow
	Split    []SplitRow
}

// SplitRow compares spill-everywhere against live-range splitting
// (§4 future work) on a register-starved dynamic run.
type SplitRow struct {
	Scenario     string
	CyclesEvery  uint64
	CyclesSplit  uint64
	SplitReloads int
}

// RematRow compares spilling with and without constant
// rematerialization.
type RematRow struct {
	Routine    string
	Off        Outcome
	On         Outcome
	OffSlots   int64
	OnSlots    int64
	OnRematOps int
}

// MetricRow compares spill-choice metrics on one routine (§2.3's
// "final refinement": cost/degree vs alternatives, plus the
// cost-blind Matula–Beck ordering).
type MetricRow struct {
	Routine        string
	CostOverDegree Outcome
	CostOnly       Outcome
	DegreeOnly     Outcome
	MatulaBeck     Outcome // cost-blind comparator; may fail
}

// Outcome is one allocator configuration's result.
type Outcome struct {
	OK        bool
	Spilled   int
	SpillCost float64
}

// CoalesceRow compares coalescing modes: the paper's aggressive
// coalescing, the Briggs-1994 conservative test, and none.
type CoalesceRow struct {
	Routine            string
	OnSpilled          int
	OnObjectSize       int
	OffSpilled         int
	OffObjectSize      int
	OnCoalescedMoves   int
	ConsSpilled        int
	ConsObjectSize     int
	ConsCoalescedMoves int
}

// DepthRow compares loop-depth weights in the cost estimator.
type DepthRow struct {
	Routine    string
	Base10     Outcome
	Base2      Outcome
	DeepRanges bool
}

// DensityRow shows Chaitin vs Briggs spills on random graphs of
// growing density (the §3.2 claim: optimism helps most in highly
// constrained situations).
type DensityRow struct {
	P              float64
	ChaitinSpilled int
	BriggsSpilled  int
}

// ablationRoutines are the pressured routines worth ablating.
var ablationRoutines = []struct{ program, routine string }{
	{"SVD", "SVD"},
	{"EULER", "DISSIP"},
	{"LINPACK", "DMXPY"},
	{"SIMPLEX", "SIMPLEX"},
}

// Ablations runs the design-choice studies.
func Ablations() (*AblationResult, error) {
	res := &AblationResult{}
	progs := make(map[string]*regalloc.Program)
	for _, w := range workloads.All() {
		p, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, err
		}
		progs[w.Program] = p
	}

	runWith := func(prog *regalloc.Program, routine string, mutate func(*regalloc.Options)) Outcome {
		opt := defaultOptions()
		mutate(&opt)
		r, err := prog.Allocate(routine, opt)
		if err != nil {
			return Outcome{OK: false}
		}
		return Outcome{OK: true, Spilled: r.FirstPassSpilled(), SpillCost: r.FirstPassSpillCost()}
	}

	// 1. Spill-choice metric.
	for _, ar := range ablationRoutines {
		prog := progs[ar.program]
		row := MetricRow{Routine: ar.routine}
		row.CostOverDegree = runWith(prog, ar.routine, func(o *regalloc.Options) { o.Metric = color.CostOverDegree })
		row.CostOnly = runWith(prog, ar.routine, func(o *regalloc.Options) { o.Metric = color.CostOnly })
		row.DegreeOnly = runWith(prog, ar.routine, func(o *regalloc.Options) { o.Metric = color.DegreeOnly })
		row.MatulaBeck = runWith(prog, ar.routine, func(o *regalloc.Options) { o.Heuristic = regalloc.MatulaBeck })
		res.Metric = append(res.Metric, row)
	}

	// 2. Coalescing on/off.
	machine := regalloc.RTPC()
	for _, ar := range ablationRoutines {
		prog := progs[ar.program]
		row := CoalesceRow{Routine: ar.routine}
		for _, mode := range []string{"aggressive", "conservative", "off"} {
			opt := defaultOptions()
			opt.Coalesce = mode != "off"
			opt.ConservativeCoalesce = mode == "conservative"
			r, err := prog.Allocate(ar.routine, opt)
			if err != nil {
				return nil, err
			}
			lowered, err := asm.Lower(r.Func, r.Colors, machine)
			if err != nil {
				return nil, err
			}
			switch mode {
			case "aggressive":
				row.OnSpilled = r.FirstPassSpilled()
				row.OnObjectSize = lowered.ObjectSize()
				row.OnCoalescedMoves = r.Passes[0].CoalescedMoves
			case "conservative":
				row.ConsSpilled = r.FirstPassSpilled()
				row.ConsObjectSize = lowered.ObjectSize()
				row.ConsCoalescedMoves = r.Passes[0].CoalescedMoves
			default:
				row.OffSpilled = r.FirstPassSpilled()
				row.OffObjectSize = lowered.ObjectSize()
			}
		}
		res.Coalesce = append(res.Coalesce, row)
	}

	// 3. Depth weighting.
	for _, ar := range ablationRoutines {
		prog := progs[ar.program]
		row := DepthRow{Routine: ar.routine}
		row.Base10 = runWith(prog, ar.routine, func(o *regalloc.Options) {
			o.CostParams = spill.CostParams{DepthBase: 10, MemOpWeight: 2}
		})
		row.Base2 = runWith(prog, ar.routine, func(o *regalloc.Options) {
			o.CostParams = spill.CostParams{DepthBase: 2, MemOpWeight: 2}
		})
		res.Depth = append(res.Depth, row)
	}

	// 4. Rematerialization of never-killed (constant) values.
	for _, ar := range ablationRoutines {
		prog := progs[ar.program]
		row := RematRow{Routine: ar.routine}
		for _, on := range []bool{false, true} {
			opt := defaultOptions()
			opt.Rematerialize = on
			r, err := prog.Allocate(ar.routine, opt)
			if err != nil {
				return nil, err
			}
			o := Outcome{OK: true, Spilled: r.FirstPassSpilled(), SpillCost: r.FirstPassSpillCost()}
			if on {
				row.On = o
				row.OnSlots = r.Func.NumSlots
				for _, p := range r.Passes {
					row.OnRematOps += p.Remats
				}
			} else {
				row.Off = o
				row.OffSlots = r.Func.NumSlots
			}
		}
		res.Remat = append(res.Remat, row)
	}

	// 5. Live-range splitting vs spill-everywhere, measured
	// dynamically where spilling actually bites: quicksort and the
	// integer kernels on starved register files.
	splitScenarios := []struct {
		name string
		w    workloads.Workload
		run  DriverFunc
		k    int
	}{
		{"QSORT/k8", workloads.Quicksort(), func(e Engine) (uint64, error) { return RunQuicksortN(e, 50000) }, 8},
		{"INTKERN/k6", workloads.IntegerKernels(), runIntegerKernels, 6},
	}
	for _, sc := range splitScenarios {
		prog, err := regalloc.Compile(sc.w.Source)
		if err != nil {
			return nil, err
		}
		row := SplitRow{Scenario: sc.name}
		var digests [2]uint64
		for i, split := range []bool{false, true} {
			opt := defaultOptions()
			opt.Split = split
			opt.KInt = sc.k
			m := regalloc.RTPC().WithGPR(sc.k)
			code, results, err := prog.Assemble(m, opt)
			if err != nil {
				return nil, fmt.Errorf("%s split=%v: %w", sc.name, split, err)
			}
			eng := VMEngine{M: regalloc.NewVM(code, prog.MemWords())}
			digests[i], err = sc.run(eng)
			if err != nil {
				return nil, fmt.Errorf("%s split=%v: %w", sc.name, split, err)
			}
			if split {
				row.CyclesSplit = eng.M.Cycles
				for _, r := range results {
					for _, p := range r.Passes {
						row.SplitReloads += p.SplitLoads
					}
				}
			} else {
				row.CyclesEvery = eng.M.Cycles
			}
		}
		if digests[0] != digests[1] {
			return nil, fmt.Errorf("%s: splitting changed program results", sc.name)
		}
		res.Split = append(res.Split, row)
	}

	// 6. Optimism vs density on random graphs (k = 8, 120 nodes,
	// averaged over seeds).
	kf := func(ir.Class) int { return 8 }
	for _, p := range []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30} {
		var chaitin, briggs int
		for seed := uint64(1); seed <= 10; seed++ {
			g, costs := graphgen.Random(120, p, seed)
			sr := color.Simplify(g, costs, kf, color.Chaitin, color.CostOverDegree)
			chaitin += len(sr.SpillMarked)
			sr = color.Simplify(g, costs, kf, color.Briggs, color.CostOverDegree)
			_, un := color.Select(g, sr.Stack, kf, true)
			briggs += len(un)
		}
		res.Density = append(res.Density, DensityRow{P: p, ChaitinSpilled: chaitin, BriggsSpilled: briggs})
	}
	return res, nil
}

func (o Outcome) String() string {
	if !o.OK {
		return "fails"
	}
	return fmt.Sprintf("%d/%.0f", o.Spilled, o.SpillCost)
}

// String renders the ablation report.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("ablation 1: spill-choice metric (spilled ranges / estimated cost, first pass)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %16s\n", "routine", "cost/degree", "cost only", "degree only", "matula-beck")
	for _, row := range r.Metric {
		fmt.Fprintf(&b, "%-10s %14s %14s %14s %16s\n", row.Routine,
			row.CostOverDegree, row.CostOnly, row.DegreeOnly, row.MatulaBeck)
	}
	b.WriteString("\nablation 2: coalescing — aggressive (paper) vs conservative (Briggs 1994) vs off\n")
	fmt.Fprintf(&b, "%-10s | %7s %6s %6s | %7s %6s %6s | %7s %6s\n", "routine",
		"ag:spl", "size", "moves", "co:spl", "size", "moves", "off:spl", "size")
	for _, row := range r.Coalesce {
		fmt.Fprintf(&b, "%-10s | %7d %6d %6d | %7d %6d %6d | %7d %6d\n", row.Routine,
			row.OnSpilled, row.OnObjectSize, row.OnCoalescedMoves,
			row.ConsSpilled, row.ConsObjectSize, row.ConsCoalescedMoves,
			row.OffSpilled, row.OffObjectSize)
	}
	b.WriteString("\nablation 3: loop-depth cost weight (spilled / cost)\n")
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "routine", "base 10 (paper)", "base 2")
	for _, row := range r.Depth {
		fmt.Fprintf(&b, "%-10s %16s %16s\n", row.Routine, row.Base10, row.Base2)
	}
	b.WriteString("\nablation 4: constant rematerialization (spilled/cost; memory slots; const reloads)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s %10s %8s\n", "routine", "off", "on", "slots off", "slots on", "remats")
	for _, row := range r.Remat {
		fmt.Fprintf(&b, "%-10s %14s %14s %10d %10d %8d\n", row.Routine,
			row.Off, row.On, row.OffSlots, row.OnSlots, row.OnRematOps)
	}
	b.WriteString("\nablation 5: live-range splitting vs spill-everywhere (simulated cycles)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %6s %8s\n", "scenario", "everywhere", "split", "pct", "reloads")
	for _, row := range r.Split {
		fmt.Fprintf(&b, "%-12s %14d %14d %6.1f %8d\n", row.Scenario,
			row.CyclesEvery, row.CyclesSplit,
			pct(float64(row.CyclesEvery), float64(row.CyclesSplit)), row.SplitReloads)
	}
	b.WriteString("\nablation 6: optimism vs graph density (total spills over 10 seeds, n=120, k=8)\n")
	fmt.Fprintf(&b, "%6s %9s %8s %6s\n", "p", "chaitin", "briggs", "saved")
	for _, row := range r.Density {
		fmt.Fprintf(&b, "%6.2f %9d %8d %6d\n", row.P, row.ChaitinSpilled, row.BriggsSpilled,
			row.ChaitinSpilled-row.BriggsSpilled)
	}
	return b.String()
}
