// Benchmarks regenerating the paper's tables and figures, plus
// micro-benchmarks of the allocator phases. One benchmark per
// table/figure (see DESIGN.md §3):
//
//	BenchmarkFigure3            — the 4-cycle example graph
//	BenchmarkFigure5Allocate    — static allocation of the full suite
//	BenchmarkFigure5Dynamic     — the simulated dynamic runs
//	BenchmarkFigure6Quicksort   — the register-set study
//	BenchmarkFigure7Phases      — phase times on the four big routines
//
// Run with: go test -bench=. -benchmem
package regalloc_test

import (
	"testing"

	"regalloc"
	"regalloc/internal/alloc"
	"regalloc/internal/coalesce"
	"regalloc/internal/color"
	"regalloc/internal/dataflow"
	"regalloc/internal/experiments"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/liverange"
	"regalloc/internal/workloads"
)

// BenchmarkFigure3 colors the paper's Figure 3 example (C4 with two
// colors) under both heuristics.
func BenchmarkFigure3(b *testing.B) {
	g, costs := graphgen.Cycle(4)
	k := func(ir.Class) int { return 2 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := color.Simplify(g, costs, k, color.Briggs, color.CostOverDegree)
		color.Select(g, sr.Stack, k, true)
	}
}

// BenchmarkFigure5Allocate performs the static half of Figure 5:
// allocating every routine of every program with both heuristics on
// the paper's machine.
func BenchmarkFigure5Allocate(b *testing.B) {
	type unit struct {
		prog *regalloc.Program
		name string
	}
	var units []unit
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range w.Routines {
			units = append(units, unit{prog, r})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = h
				if _, err := u.prog.Allocate(u.name, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFigure5Dynamic runs each program's dynamic scenario on
// the simulator (code compiled with the new heuristic).
func BenchmarkFigure5Dynamic(b *testing.B) {
	for _, d := range experiments.Drivers() {
		d := d
		b.Run(d.Workload.Program, func(b *testing.B) {
			prog, err := regalloc.Compile(d.Workload.Source)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := experiments.NewVMEngine(prog, regalloc.Briggs, regalloc.RTPC())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Run(eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6Quicksort sorts on the simulator at the most
// constrained register count of the Figure 6 study.
func BenchmarkFigure6Quicksort(b *testing.B) {
	prog, err := regalloc.Compile(workloads.Quicksort().Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{16, 8} {
		k := k
		b.Run(map[int]string{16: "k16", 8: "k8"}[k], func(b *testing.B) {
			eng, err := experiments.NewVMEngine(prog, regalloc.Briggs, regalloc.RTPC().WithGPR(k))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunQuicksortN(eng, 20000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure7Phases allocates the paper's four large routines,
// the measurement behind the phase-time table.
func BenchmarkFigure7Phases(b *testing.B) {
	svd, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		b.Fatal(err)
	}
	ced, err := regalloc.Compile(workloads.Cedeta().Source)
	if err != nil {
		b.Fatal(err)
	}
	units := []struct {
		prog *regalloc.Program
		name string
	}{
		{ced, "DQRDC"}, {svd, "SVD"}, {ced, "GRADNT"}, {ced, "HSSIAN"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = h
				if _, err := u.prog.Allocate(u.name, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// --- phase micro-benchmarks on the largest routine ---

func svdFunc(b *testing.B) *ir.Func {
	prog, err := regalloc.Compile(workloads.SVD().Source)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Func("SVD")
}

func BenchmarkRenumber(b *testing.B) {
	f := svdFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := f.Clone()
		liverange.Renumber(g)
	}
}

func BenchmarkLiveness(b *testing.B) {
	f := svdFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataflow.ComputeLiveness(f)
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	f := svdFunc(b)
	work := f.Clone()
	liverange.Renumber(work)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ig.Build(work)
	}
}

func BenchmarkCoalesce(b *testing.B) {
	f := svdFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := f.Clone()
		liverange.Renumber(work)
		coalesce.Run(work)
	}
}

// BenchmarkSimplifySelect measures the heart of the paper: simplify
// + select on a large random graph, per heuristic.
func BenchmarkSimplifySelect(b *testing.B) {
	g, costs := graphgen.Random(2000, 0.01, 1)
	k := func(ir.Class) int { return 16 }
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		h := h
		b.Run(h.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sr := color.Simplify(g, costs, k, h, color.CostOverDegree)
				if h != color.Chaitin || len(sr.SpillMarked) == 0 {
					color.Select(g, sr.Stack, k, h != color.Chaitin)
				}
			}
		})
	}
}

// BenchmarkFullAllocSVD measures one complete Figure 4 cycle set on
// the paper's central routine.
func BenchmarkFullAllocSVD(b *testing.B) {
	f := svdFunc(b)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs} {
		h := h
		b.Run(h.String(), func(b *testing.B) {
			opt := alloc.DefaultOptions()
			opt.Heuristic = h
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Run(f, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures the front end on the whole LINPACK
// source.
func BenchmarkCompile(b *testing.B) {
	src := workloads.LINPACK().Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regalloc.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
