package traceevent

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"regalloc/internal/obs"
)

// decoded mirrors traceEvent for reading the output back.
type decoded struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type decodedFile struct {
	TraceEvents     []decoded `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// emitRun feeds sink one synthetic two-phase pass (coalesce nested
// in build) through a real Tracer, for two units.
func emitRun(sink obs.Sink) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for u, unit := range []string{"ALPHA", "BETA"} {
		t := base.Add(time.Duration(u) * 10 * time.Millisecond)
		clock := func() time.Time { t = t.Add(time.Millisecond); return t }
		tr := obs.NewWithClock(sink, unit, clock)
		tr.BeginPhase(obs.PhaseBuild)
		tr.BeginPhase(obs.PhaseCoalesce)
		tr.Counter(obs.PhaseCoalesce, "coalesce.moves", 3)
		tr.EndPhase(obs.PhaseCoalesce, 2*time.Millisecond)
		tr.EndPhase(obs.PhaseBuild, 5*time.Millisecond)
		tr.BeginPhase(obs.PhaseSimplify)
		tr.SpillDecision(7, 9, 40, 4.4)
		tr.EndPhase(obs.PhaseSimplify, time.Millisecond)
		tr.BeginPhase(obs.PhaseColor)
		tr.ColorReuse(7, 9, 2, 1)
		tr.EndPhase(obs.PhaseColor, time.Millisecond)
	}
}

func TestWriteJSONValidAndBalanced(t *testing.T) {
	sink := New()
	emitRun(sink)
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var f decodedFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no events")
	}

	threadNames := map[int]string{}
	depth := map[int]int{}                 // tid -> open B spans
	buildWindow := map[int][2]float64{}    // tid -> [B,E] ts of build
	coalesceWindow := map[int][2]float64{} // tid -> [B,E] ts of coalesce
	counts := map[string]int{}
	for _, e := range f.TraceEvents {
		if e.TS < 0 {
			t.Fatalf("negative ts in %+v", e)
		}
		counts[e.Ph]++
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.TID] = e.Args["name"].(string)
			}
		case "B":
			depth[e.TID]++
			if e.Name == "build" {
				buildWindow[e.TID] = [2]float64{e.TS, -1}
			}
			if e.Name == "coalesce" {
				coalesceWindow[e.TID] = [2]float64{e.TS, -1}
			}
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("E without matching B on tid %d", e.TID)
			}
			if e.Name == "build" {
				w := buildWindow[e.TID]
				w[1] = e.TS
				buildWindow[e.TID] = w
			}
			if e.Name == "coalesce" {
				w := coalesceWindow[e.TID]
				w[1] = e.TS
				coalesceWindow[e.TID] = w
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed B span(s)", tid, d)
		}
	}
	if counts["B"] != counts["E"] {
		t.Errorf("B/E mismatch: %d vs %d", counts["B"], counts["E"])
	}
	if counts["C"] != 2 || counts["i"] != 4 {
		t.Errorf("counter/instant counts = %d/%d, want 2/4", counts["C"], counts["i"])
	}
	if len(threadNames) != 2 {
		t.Fatalf("thread names = %v, want 2 units", threadNames)
	}
	// The nested coalesce span must sit strictly inside its unit's
	// build span — the property that makes the Perfetto view show
	// the paper's "coalesce inside build" structure.
	for tid, cw := range coalesceWindow {
		bw := buildWindow[tid]
		if !(bw[0] <= cw[0] && cw[1] <= bw[1] && cw[1] >= cw[0]) {
			t.Errorf("tid %d: coalesce [%g,%g] not nested in build [%g,%g]", tid, cw[0], cw[1], bw[0], bw[1])
		}
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f decodedFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if f.TraceEvents == nil {
		t.Fatal("traceEvents must be an array, not null")
	}
}

func TestMultiDropsNilSink(t *testing.T) {
	var s *Sink
	if got := obs.Multi(s); got != nil {
		t.Fatal("typed-nil *Sink not dropped by obs.Multi")
	}
}
