package workloads

// linpackSource ports the LINPACK benchmark routines (Dongarra,
// Bunch, Moler & Stewart) to the mini-FORTRAN dialect. The ports
// keep the historically significant structure — the unrolled-by-4/5
// BLAS loops, DGEFA/DGESL's column-oriented elimination calling the
// Level-1 BLAS on column sections, and DMXPY's sixteen-fold unrolled
// update (quoted in the paper's §3.1) — with GOTO-based control
// rewritten as structured DO WHILE / EXIT, since the dialect has no
// GOTO. Output scalar arguments (INFO) become length-1 arrays
// because the dialect passes scalars by value.
const linpackSource = `
C     LINPACK benchmark routines (mini-FORTRAN port).

      REAL FUNCTION EPSLON (X)
      REAL X
      REAL A,B,C,EPS
      A = 4.0/3.0
      EPS = 0.0
      DO WHILE (EPS .EQ. 0.0)
         B = A - 1.0
         C = B + B + B
         EPS = ABS(C - 1.0)
      ENDDO
      EPSLON = EPS*ABS(X)
      RETURN
      END

      SUBROUTINE DSCAL(N,DA,DX,INCX)
      REAL DA,DX(*)
      INTEGER I,INCX,M,MP1,N,NINCX
      IF (N .LE. 0) RETURN
      IF (INCX .NE. 1) THEN
C        code for increment not equal to 1
         NINCX = N*INCX
         I = 1
         DO WHILE (I .LE. NINCX)
            DX(I) = DA*DX(I)
            I = I + INCX
         ENDDO
         RETURN
      ENDIF
C     code for increment equal to 1: clean-up loop
      M = MOD(N,5)
      IF (M .NE. 0) THEN
         DO I = 1,M
            DX(I) = DA*DX(I)
         ENDDO
         IF (N .LT. 5) RETURN
      ENDIF
      MP1 = M + 1
      DO I = MP1,N,5
         DX(I) = DA*DX(I)
         DX(I+1) = DA*DX(I+1)
         DX(I+2) = DA*DX(I+2)
         DX(I+3) = DA*DX(I+3)
         DX(I+4) = DA*DX(I+4)
      ENDDO
      RETURN
      END

      INTEGER FUNCTION IDAMAX(N,DX,INCX)
      REAL DX(*),DMAX
      INTEGER I,INCX,IX,N
      IDAMAX = 0
      IF (N .LT. 1) RETURN
      IDAMAX = 1
      IF (N .EQ. 1) RETURN
      IF (INCX .NE. 1) THEN
C        code for increment not equal to 1
         IX = 1
         DMAX = ABS(DX(1))
         IX = IX + INCX
         DO I = 2,N
            IF (ABS(DX(IX)) .GT. DMAX) THEN
               IDAMAX = I
               DMAX = ABS(DX(IX))
            ENDIF
            IX = IX + INCX
         ENDDO
         RETURN
      ENDIF
C     code for increment equal to 1
      DMAX = ABS(DX(1))
      DO I = 2,N
         IF (ABS(DX(I)) .GT. DMAX) THEN
            IDAMAX = I
            DMAX = ABS(DX(I))
         ENDIF
      ENDDO
      RETURN
      END

      REAL FUNCTION DDOT(N,DX,INCX,DY,INCY)
      REAL DX(*),DY(*),DTEMP
      INTEGER I,INCX,INCY,IX,IY,M,MP1,N
      DDOT = 0.0
      DTEMP = 0.0
      IF (N .LE. 0) RETURN
      IF (INCX .NE. 1 .OR. INCY .NE. 1) THEN
C        code for unequal increments or nonunit increments
         IX = 1
         IY = 1
         IF (INCX .LT. 0) IX = (-N+1)*INCX + 1
         IF (INCY .LT. 0) IY = (-N+1)*INCY + 1
         DO I = 1,N
            DTEMP = DTEMP + DX(IX)*DY(IY)
            IX = IX + INCX
            IY = IY + INCY
         ENDDO
         DDOT = DTEMP
         RETURN
      ENDIF
C     code for both increments equal to 1: clean-up loop
      M = MOD(N,5)
      IF (M .NE. 0) THEN
         DO I = 1,M
            DTEMP = DTEMP + DX(I)*DY(I)
         ENDDO
         IF (N .LT. 5) THEN
            DDOT = DTEMP
            RETURN
         ENDIF
      ENDIF
      MP1 = M + 1
      DO I = MP1,N,5
         DTEMP = DTEMP + DX(I)*DY(I) + DX(I+1)*DY(I+1) + &
            DX(I+2)*DY(I+2) + DX(I+3)*DY(I+3) + DX(I+4)*DY(I+4)
      ENDDO
      DDOT = DTEMP
      RETURN
      END

      SUBROUTINE DAXPY(N,DA,DX,INCX,DY,INCY)
      REAL DX(*),DY(*),DA
      INTEGER I,INCX,INCY,IX,IY,M,MP1,N
      IF (N .LE. 0) RETURN
      IF (DA .EQ. 0.0) RETURN
      IF (INCX .NE. 1 .OR. INCY .NE. 1) THEN
C        code for unequal increments or nonunit increments
         IX = 1
         IY = 1
         IF (INCX .LT. 0) IX = (-N+1)*INCX + 1
         IF (INCY .LT. 0) IY = (-N+1)*INCY + 1
         DO I = 1,N
            DY(IY) = DY(IY) + DA*DX(IX)
            IX = IX + INCX
            IY = IY + INCY
         ENDDO
         RETURN
      ENDIF
C     code for both increments equal to 1: clean-up loop
      M = MOD(N,4)
      IF (M .NE. 0) THEN
         DO I = 1,M
            DY(I) = DY(I) + DA*DX(I)
         ENDDO
         IF (N .LT. 4) RETURN
      ENDIF
      MP1 = M + 1
      DO I = MP1,N,4
         DY(I) = DY(I) + DA*DX(I)
         DY(I+1) = DY(I+1) + DA*DX(I+1)
         DY(I+2) = DY(I+2) + DA*DX(I+2)
         DY(I+3) = DY(I+3) + DA*DX(I+3)
      ENDDO
      RETURN
      END

      SUBROUTINE MATGEN(A,LDA,N,B)
      REAL A(LDA,*),B(*)
      REAL VAL,NORMA
      INTEGER INIT,I,J,LDA,N
      INIT = 1325
      NORMA = 0.0
      DO J = 1,N
         DO I = 1,N
            INIT = MOD(3125*INIT,65536)
            VAL = (FLOAT(INIT) - 32768.0)/16384.0
            A(I,J) = VAL
            IF (VAL .GT. NORMA) NORMA = VAL
         ENDDO
      ENDDO
      DO I = 1,N
         B(I) = 0.0
      ENDDO
      DO J = 1,N
         DO I = 1,N
            B(I) = B(I) + A(I,J)
         ENDDO
      ENDDO
      RETURN
      END

      SUBROUTINE DGEFA(A,LDA,N,IPVT,INFO)
C     factors a real matrix by gaussian elimination
      REAL A(LDA,*),T
      INTEGER IPVT(*),INFO(*)
      INTEGER J,K,KP1,L,NM1,LDA,N
      INFO(1) = 0
      NM1 = N - 1
      IF (NM1 .GE. 1) THEN
         DO K = 1,NM1
            KP1 = K + 1
C           find l = pivot index
            L = IDAMAX(N-K+1,A(K,K),1) + K - 1
            IPVT(K) = L
C           zero pivot implies this column already triangularized
            IF (A(L,K) .NE. 0.0) THEN
C              interchange if necessary
               IF (L .NE. K) THEN
                  T = A(L,K)
                  A(L,K) = A(K,K)
                  A(K,K) = T
               ENDIF
C              compute multipliers
               T = -1.0/A(K,K)
               CALL DSCAL(N-K,T,A(K+1,K),1)
C              row elimination with column indexing
               DO J = KP1,N
                  T = A(L,J)
                  IF (L .NE. K) THEN
                     A(L,J) = A(K,J)
                     A(K,J) = T
                  ENDIF
                  CALL DAXPY(N-K,T,A(K+1,K),1,A(K+1,J),1)
               ENDDO
            ELSE
               INFO(1) = K
            ENDIF
         ENDDO
      ENDIF
      IPVT(N) = N
      IF (A(N,N) .EQ. 0.0) INFO(1) = N
      RETURN
      END

      SUBROUTINE DGESL(A,LDA,N,IPVT,B,JOB)
C     solves the real system a*x = b or trans(a)*x = b
      REAL A(LDA,*),B(*),T
      INTEGER IPVT(*),JOB,K,KB,L,NM1,LDA,N
      NM1 = N - 1
      IF (JOB .EQ. 0) THEN
C        job = 0 , solve  a * x = b ; first solve l*y = b
         IF (NM1 .GE. 1) THEN
            DO K = 1,NM1
               L = IPVT(K)
               T = B(L)
               IF (L .NE. K) THEN
                  B(L) = B(K)
                  B(K) = T
               ENDIF
               CALL DAXPY(N-K,T,A(K+1,K),1,B(K+1),1)
            ENDDO
         ENDIF
C        now solve  u*x = y
         DO KB = 1,N
            K = N + 1 - KB
            B(K) = B(K)/A(K,K)
            T = -B(K)
            CALL DAXPY(K-1,T,A(1,K),1,B(1),1)
         ENDDO
         RETURN
      ENDIF
C     job = nonzero, solve  trans(a) * x = b ; first solve trans(u)*y = b
      DO K = 1,N
         T = DDOT(K-1,A(1,K),1,B(1),1)
         B(K) = (B(K) - T)/A(K,K)
      ENDDO
C     now solve trans(l)*x = y
      IF (NM1 .GE. 1) THEN
         DO KB = 1,NM1
            K = N - KB
            B(K) = B(K) + DDOT(N-K,A(K+1,K),1,B(K+1),1)
            L = IPVT(K)
            IF (L .NE. K) THEN
               T = B(L)
               B(L) = B(K)
               B(K) = T
            ENDIF
         ENDDO
      ENDIF
      RETURN
      END

      SUBROUTINE DMXPY(N1,Y,N2,LDM,X,M)
C     multiply matrix m times vector x and add the result to vector y
C     (the sixteen-fold unrolled version discussed in the paper, 3.1)
      REAL Y(*),X(*),M(LDM,*)
      INTEGER N1,N2,LDM,I,J,JMIN
C     cleanup odd vector
      J = MOD(N2,2)
      IF (J .GE. 1) THEN
         DO I = 1,N1
            Y(I) = (Y(I)) + X(J)*M(I,J)
         ENDDO
      ENDIF
C     cleanup odd group of two vectors
      J = MOD(N2,4)
      IF (J .GE. 2) THEN
         DO I = 1,N1
            Y(I) = ( (Y(I)) + X(J-1)*M(I,J-1)) + X(J)*M(I,J)
         ENDDO
      ENDIF
C     cleanup odd group of four vectors
      J = MOD(N2,8)
      IF (J .GE. 4) THEN
         DO I = 1,N1
            Y(I) = ((( (Y(I)) &
               + X(J-3)*M(I,J-3)) + X(J-2)*M(I,J-2)) &
               + X(J-1)*M(I,J-1)) + X(J)*M(I,J)
         ENDDO
      ENDIF
C     cleanup odd group of eight vectors
      J = MOD(N2,16)
      IF (J .GE. 8) THEN
         DO I = 1,N1
            Y(I) = ((((((( (Y(I)) &
               + X(J-7)*M(I,J-7)) + X(J-6)*M(I,J-6)) &
               + X(J-5)*M(I,J-5)) + X(J-4)*M(I,J-4)) &
               + X(J-3)*M(I,J-3)) + X(J-2)*M(I,J-2)) &
               + X(J-1)*M(I,J-1)) + X(J)*M(I,J)
         ENDDO
      ENDIF
C     main loop - groups of sixteen vectors
      JMIN = J + 16
      DO J = JMIN,N2,16
         DO I = 1,N1
            Y(I) = ((((((((((((((( (Y(I)) &
               + X(J-15)*M(I,J-15)) + X(J-14)*M(I,J-14)) &
               + X(J-13)*M(I,J-13)) + X(J-12)*M(I,J-12)) &
               + X(J-11)*M(I,J-11)) + X(J-10)*M(I,J-10)) &
               + X(J-9)*M(I,J-9)) + X(J-8)*M(I,J-8)) &
               + X(J-7)*M(I,J-7)) + X(J-6)*M(I,J-6)) &
               + X(J-5)*M(I,J-5)) + X(J-4)*M(I,J-4)) &
               + X(J-3)*M(I,J-3)) + X(J-2)*M(I,J-2)) &
               + X(J-1)*M(I,J-1)) + X(J)*M(I,J)
         ENDDO
      ENDDO
      RETURN
      END
`
