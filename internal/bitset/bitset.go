// Package bitset provides a dense bit set used by the dataflow
// analyses (liveness, reaching definitions) that feed the register
// allocator. Sets are fixed-capacity; all elements must be in
// [0, n) where n is the capacity given to New.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to create a set with room for n elements.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity of the set.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of o. The sets must have
// the same capacity.
func (s *Set) CopyFrom(o *Set) {
	s.check(o)
	copy(s.words, o.words)
}

// Union adds every element of o to s and reports whether s changed.
func (s *Set) Union(o *Set) bool {
	s.check(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect removes from s every element not in o.
func (s *Set) Intersect(o *Set) {
	s.check(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Subtract removes from s every element of o.
func (s *Set) Subtract(o *Set) {
	s.check(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	s.check(o)
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for each element of the set in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Next returns the smallest element >= i, or -1 if there is none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Elems returns the elements of the set in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}
