package workloads

import (
	"fmt"
	"strings"
)

// dqrdcSource is a self-contained port of LINPACK's DQRDC
// (Householder QR decomposition, without column pivoting, BLAS calls
// inlined as loops), the factorization the Celis–Dennis–Tapia code
// relies on.
const dqrdcSource = `
      SUBROUTINE DQRDC(X,LDX,N,P,QRAUX,WORK)
C     householder qr decomposition of an n-by-p matrix
      REAL X(LDX,*),QRAUX(*),WORK(*)
      REAL NRMXL,T,S
      INTEGER I,J,L,LP1,LUP,LDX,N,P
      LUP = MIN(N,P)
      DO L = 1,LUP
C        compute the householder transformation for column l
         S = 0.0
         DO I = L,N
            S = S + X(I,L)*X(I,L)
         ENDDO
         WORK(L) = S
         NRMXL = SQRT(S)
         IF (NRMXL .NE. 0.0) THEN
            IF (X(L,L) .NE. 0.0) NRMXL = SIGN(NRMXL,X(L,L))
            T = 1.0/NRMXL
            DO I = L,N
               X(I,L) = T*X(I,L)
            ENDDO
            X(L,L) = 1.0 + X(L,L)
C           apply the transformation to the remaining columns,
C           updating the norms
            LP1 = L + 1
            IF (P .GE. LP1) THEN
               DO J = LP1,P
                  S = 0.0
                  DO I = L,N
                     S = S + X(I,L)*X(I,J)
                  ENDDO
                  T = -S/X(L,L)
                  DO I = L,N
                     X(I,J) = X(I,J) + T*X(I,L)
                  ENDDO
               ENDDO
            ENDIF
C           save the transformation
            QRAUX(L) = X(L,L)
            X(L,L) = -NRMXL
         ELSE
            QRAUX(L) = 0.0
         ENDIF
      ENDDO
      RETURN
      END
`

// cedetaRNG is a tiny deterministic linear congruential generator
// used to lay out the generated objective's term structure. The
// sources must be reproducible run to run, so no external randomness
// is involved.
type cedetaRNG struct{ state uint32 }

func (r *cedetaRNG) next() uint32 {
	r.state = r.state*1664525 + 1013904223
	return r.state >> 8
}

func (r *cedetaRNG) intn(n int) int { return int(r.next()) % n }

// cedetaN is the number of optimization variables the generated
// routines assume (callers must pass N = cedetaN).
const cedetaN = 30

// CedetaN exposes the generated routines' variable count for
// drivers.
const CedetaN = cedetaN

// gradntSource generates GRADNT, the gradient of a large synthetic
// equality-constrained objective: thirty straight-line term blocks,
// each contributing to the gradient vector and to one of 24
// accumulator scalars that stay live across the entire routine.
// The result matches the profile Figure 5 reports for GRADNT
// (~1,300 live ranges, many spills, but *low* spill costs, because
// nearly all references sit at loop depth zero).
func gradntSource() string {
	var b strings.Builder
	b.WriteString(`
      SUBROUTINE GRADNT(X,G,W,N)
C     gradient of the cedeta synthetic objective (generated code)
      REAL X(*),G(*),W(*)
      REAL TA,TB,TC,TD
`)
	writeAccumDecls(&b, 24)
	b.WriteString(`      INTEGER I,N
`)
	for k := 1; k <= 24; k++ {
		fmt.Fprintf(&b, "      S%d = 0.0\n", k)
	}
	b.WriteString(`      DO I = 1,N
         G(I) = 0.0
      ENDDO
`)
	rng := &cedetaRNG{state: 12345}
	for blk := 0; blk < 30; blk++ {
		i1 := 1 + rng.intn(cedetaN)
		i2 := 1 + rng.intn(cedetaN)
		i3 := 1 + rng.intn(cedetaN)
		c1 := float64(1+rng.intn(16)) / 8.0
		c2 := float64(1+rng.intn(16)) / 16.0
		acc := 1 + blk%24
		fmt.Fprintf(&b, "C     term %d\n", blk+1)
		fmt.Fprintf(&b, "      TA = X(%d) - %.4f\n", i1, c1)
		fmt.Fprintf(&b, "      TB = X(%d)*X(%d)\n", i2, i3)
		fmt.Fprintf(&b, "      TC = TA*TB + %.4f\n", c2)
		fmt.Fprintf(&b, "      TD = TC + TC\n")
		fmt.Fprintf(&b, "      S%d = S%d + TC*TC\n", acc, acc)
		fmt.Fprintf(&b, "      G(%d) = G(%d) + TD*TB\n", i1, i1)
		fmt.Fprintf(&b, "      G(%d) = G(%d) + TD*TA*X(%d)\n", i2, i2, i3)
		fmt.Fprintf(&b, "      G(%d) = G(%d) + TD*TA*X(%d)\n", i3, i3, i2)
	}
	// The accumulators are all consumed here, keeping each live from
	// its first block to the end of the routine.
	for k := 1; k <= 24; k++ {
		fmt.Fprintf(&b, "      W(%d) = S%d\n", k, k)
	}
	b.WriteString(`      TA = 0.0
      DO I = 1,24
         TA = TA + W(I)
      ENDDO
      DO I = 1,N
         G(I) = G(I) + 0.000001*TA
      ENDDO
      RETURN
      END
`)
	return b.String()
}

// hssianSource generates HSSIAN, the Hessian counterpart of GRADNT:
// straight-line blocks updating a symmetric matrix (two-dimensional
// addressing makes each block heavier than GRADNT's), again with 24
// whole-routine accumulators, plus a final symmetrization nest.
func hssianSource() string {
	var b strings.Builder
	b.WriteString(`
      SUBROUTINE HSSIAN(X,H,LDH,W,N)
C     hessian of the cedeta synthetic objective (generated code)
      REAL X(*),H(LDH,*),W(*)
      REAL TA,TB,TC,TD,TE
`)
	writeAccumDecls(&b, 24)
	b.WriteString(`      INTEGER I,J,LDH,N
      DO J = 1,N
         DO I = 1,N
            H(I,J) = 0.0
         ENDDO
      ENDDO
`)
	for k := 1; k <= 24; k++ {
		fmt.Fprintf(&b, "      S%d = 0.0\n", k)
	}
	rng := &cedetaRNG{state: 98765}
	for blk := 0; blk < 26; blk++ {
		i1 := 1 + rng.intn(cedetaN)
		i2 := 1 + rng.intn(cedetaN)
		i3 := 1 + rng.intn(cedetaN)
		c1 := float64(1+rng.intn(32)) / 16.0
		c2 := float64(1+rng.intn(8)) / 4.0
		acc := 1 + blk%24
		fmt.Fprintf(&b, "C     term %d\n", blk+1)
		fmt.Fprintf(&b, "      TA = X(%d)*X(%d) - %.4f\n", i1, i2, c1)
		fmt.Fprintf(&b, "      TB = TA + X(%d)\n", i3)
		fmt.Fprintf(&b, "      TC = TB*TA\n")
		fmt.Fprintf(&b, "      TD = TB - TA*%.4f\n", c2)
		fmt.Fprintf(&b, "      TE = TC + TD\n")
		fmt.Fprintf(&b, "      S%d = S%d + TE\n", acc, acc)
		fmt.Fprintf(&b, "      H(%d,%d) = H(%d,%d) + TC\n", i1, i2, i1, i2)
		fmt.Fprintf(&b, "      H(%d,%d) = H(%d,%d) + TD\n", i2, i3, i2, i3)
		fmt.Fprintf(&b, "      H(%d,%d) = H(%d,%d) + TE*%.4f\n", i1, i3, i1, i3, c2)
	}
	for k := 1; k <= 24; k++ {
		fmt.Fprintf(&b, "      W(%d) = S%d\n", k, k)
	}
	b.WriteString(`C     symmetrize
      DO J = 1,N
         DO I = 1,J
            TA = 0.5*(H(I,J) + H(J,I))
            H(I,J) = TA
            H(J,I) = TA
         ENDDO
      ENDDO
      RETURN
      END
`)
	return b.String()
}

// writeAccumDecls declares the REAL accumulators S1..Sn.
func writeAccumDecls(b *strings.Builder, n int) {
	b.WriteString("      REAL ")
	for k := 1; k <= n; k++ {
		if k > 1 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, "S%d", k)
	}
	b.WriteString("\n")
}
