package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"regalloc/internal/color"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
)

// PColorRow is one graph of the speculative-coloring study: the
// sequential smallest-last baseline against the parallel engine at
// one worker count.
type PColorRow struct {
	Graph     string
	Nodes     int
	Edges     int
	Workers   int
	SeqColors int
	ParColors int
	Rounds    int
	Conflicts int
	Recolored int
	SeqNS     int64
	ParNS     int64
	Speedup   float64
}

// PColorStudyResult is the full table.
type PColorStudyResult struct {
	GoMaxProcs int
	Rows       []PColorRow
}

// PColorStudy compares the speculative parallel colorer against the
// sequential smallest-last heuristic on the standalone graphgen
// corpus — the parallel extension of the paper's Figure 6 standalone
// coloring study, following the Rokos–Gorman–Kelly blueprint from
// PAPERS.md. Each graph is colored sequentially and then with the
// engine at 1 worker and at GOMAXPROCS workers; the rows report
// palette sizes, rounds, conflict and recolor work, and wall-clock
// times (best of three). Runs feed the package observer, so -trace
// surfaces the per-round iteration counters.
func PColorStudy() (*PColorStudyResult, error) {
	type spec struct {
		name string
		g    *ig.Graph
	}
	var specs []spec
	{
		g, _ := graphgen.Random(4000, 0.004, 11)
		specs = append(specs, spec{"random-4000-0.004", g})
	}
	{
		g, _ := graphgen.Random(12000, 0.0015, 12)
		specs = append(specs, spec{"random-12000-0.0015", g})
	}
	{
		g, _ := graphgen.TwoClass(3000, 0.006, 13)
		specs = append(specs, spec{"twoclass-3000-0.006", g})
	}
	{
		g, _ := graphgen.SVDLike(60, 40, 8, 12, 3, 14)
		specs = append(specs, spec{"svdlike-60x40", g})
	}

	out := &PColorStudyResult{GoMaxProcs: runtime.GOMAXPROCS(0)}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1]
	}
	const reps = 3
	for _, s := range specs {
		var seqNS int64
		var seq *pcolor.Stats
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			_, st := pcolor.Sequential(s.g)
			if ns := time.Since(t0).Nanoseconds(); seqNS == 0 || ns < seqNS {
				seqNS = ns
			}
			seq = st
		}
		for _, workers := range workerCounts {
			tr := obs.New(observer, "pcolor:"+s.name)
			var parNS int64
			var st *pcolor.Stats
			var colors []int16
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				colors, st = pcolor.Color(s.g, pcolor.Options{Workers: workers, Seed: 1, Tracer: tr})
				if ns := time.Since(t0).Nanoseconds(); parNS == 0 || ns < parNS {
					parNS = ns
				}
			}
			if err := color.Verify(s.g, colors, pcolor.KFor(st)); err != nil {
				return nil, fmt.Errorf("pcolor study: %s workers=%d: %w", s.name, workers, err)
			}
			out.Rows = append(out.Rows, PColorRow{
				Graph:     s.name,
				Nodes:     s.g.NumNodes(),
				Edges:     s.g.NumEdges(),
				Workers:   workers,
				SeqColors: seq.ColorsInt + seq.ColorsFloat,
				ParColors: st.ColorsInt + st.ColorsFloat,
				Rounds:    st.Rounds,
				Conflicts: st.Conflicts,
				Recolored: st.Recolored,
				SeqNS:     seqNS,
				ParNS:     parNS,
				Speedup:   float64(seqNS) / float64(parNS),
			})
		}
	}
	return out, nil
}

// String renders the study table.
func (r *PColorStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "speculative parallel coloring vs sequential smallest-last (GOMAXPROCS=%d)\n", r.GoMaxProcs)
	fmt.Fprintf(&b, "%-22s | %7s %8s | %2s | %6s %6s | %6s %9s %9s | %10s %10s %7s\n",
		"graph", "nodes", "edges", "w", "seq", "par", "rounds", "conflicts", "recolored", "seq", "par", "speedup")
	b.WriteString(strings.Repeat("-", 132) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s | %7d %8d | %2d | %6d %6d | %6d %9d %9d | %10s %10s %6.2fx\n",
			row.Graph, row.Nodes, row.Edges, row.Workers,
			row.SeqColors, row.ParColors,
			row.Rounds, row.Conflicts, row.Recolored,
			time.Duration(row.SeqNS), time.Duration(row.ParNS), row.Speedup)
	}
	b.WriteString("colors are summed over the int and float classes; times are best-of-3 wall clock\n")
	return b.String()
}
