package opt_test

import (
	"testing"

	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/opt"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestLocalCSE(t *testing.T) {
	prog := compile(t, `
      REAL FUNCTION F(X,Y)
      F = (X + Y)*(X + Y)
      END
`)
	f := prog.Func("F")
	adds := countOps(f, ir.OpFAdd)
	if adds != 2 {
		t.Fatalf("expected 2 fadds before CSE, got %d", adds)
	}
	removed := opt.LocalCSE(f)
	if removed == 0 {
		t.Fatal("CSE removed nothing")
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// After CSE one fadd becomes a move.
	if countOps(f, ir.OpFAdd) != 1 {
		t.Fatalf("fadds after CSE: %d", countOps(f, ir.OpFAdd))
	}
}

func TestCSEDoesNotCrossRedefinition(t *testing.T) {
	// X changes between the two X+Y computations; they must both
	// survive. X and Y are parameters (single def)... so force a
	// redefinition through a local.
	prog := compile(t, `
      REAL FUNCTION F(X,Y)
      REAL A,B,T
      T = X
      A = T + Y
      T = T*2.0
      B = T + Y
      F = A + B
      END
`)
	f := prog.Func("F")
	before := countOps(f, ir.OpFAdd)
	opt.LocalCSE(f)
	// A+B's add may not merge with anything; both T+Y adds must
	// survive (T is multiply-defined, so not a CSE candidate).
	if got := countOps(f, ir.OpFAdd); got != before {
		t.Fatalf("CSE removed an add across a redefinition (%d -> %d)", before, got)
	}
}

func TestLICMHoistsInvariantArithmetic(t *testing.T) {
	prog := compile(t, `
      SUBROUTINE F(A,N,C)
      REAL A(*),C,T
      INTEGER I,N
      DO I = 1,N
         T = C*2.0 + 1.0
         A(I) = T
      ENDDO
      END
`)
	f := prog.Func("F")
	hoisted := opt.LICM(f)
	if hoisted == 0 {
		t.Fatal("LICM hoisted nothing")
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
}

func TestLICMLoadHoisting(t *testing.T) {
	// X(J) is invariant in the I loop and X is never stored: the
	// load must be hoisted. Y is stored, so Y loads must stay.
	prog := compile(t, `
      SUBROUTINE F(X,Y,N,J)
      REAL X(*),Y(*)
      INTEGER I,J,N
      DO I = 1,N
         Y(I) = Y(I) + X(J)
      ENDDO
      END
`)
	f := prog.Func("F")
	opt.LICM(f)
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// After hoisting, the loop body (the block with depth 1 holding
	// the store) must contain exactly one load (Y(I)); X(J)'s load
	// sits in the preheader at depth 0.
	loadsAtDepth1 := 0
	for _, b := range f.Blocks {
		if b.Depth >= 1 {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLoad {
					loadsAtDepth1++
				}
			}
		}
	}
	if loadsAtDepth1 != 1 {
		t.Fatalf("loads left in loop = %d, want 1 (X(J) hoisted, Y(I) kept)", loadsAtDepth1)
	}
}

func TestLICMNoLoadHoistWithAliasedStore(t *testing.T) {
	// The loop stores to X itself: X(J) must NOT be hoisted.
	prog := compile(t, `
      SUBROUTINE F(X,N,J)
      REAL X(*)
      INTEGER I,J,N
      DO I = 1,N
         X(I) = X(I) + X(J)
      ENDDO
      END
`)
	f := prog.Func("F")
	opt.LICM(f)
	loadsAtDepth1 := 0
	for _, b := range f.Blocks {
		if b.Depth >= 1 {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLoad {
					loadsAtDepth1++
				}
			}
		}
	}
	if loadsAtDepth1 != 2 {
		t.Fatalf("loads left in loop = %d, want 2 (no hoisting past the aliased store)", loadsAtDepth1)
	}
}

func TestLICMNoLoadHoistPastCall(t *testing.T) {
	prog := compile(t, `
      SUBROUTINE G(X)
      REAL X(*)
      X(1) = 0.0
      END
      SUBROUTINE F(X,Y,N,J)
      REAL X(*),Y(*)
      INTEGER I,J,N
      DO I = 1,N
         Y(I) = X(J)
         CALL G(X)
      ENDDO
      END
`)
	f := prog.Func("F")
	opt.LICM(f)
	for _, b := range f.Blocks {
		if b.Depth == 0 {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLoad {
					t.Fatal("load hoisted out of a loop containing a call")
				}
			}
		}
	}
}

func TestLICMConditionalLoadNotHoisted(t *testing.T) {
	// The X(J) load executes only on some iterations; its block does
	// not dominate the loop's exit test, so it must stay put.
	prog := compile(t, `
      SUBROUTINE F(X,Y,N,J)
      REAL X(*),Y(*)
      INTEGER I,J,N
      DO I = 1,N
         IF (Y(I) .GT. 0.0) THEN
            Y(I) = X(J)
         ENDIF
      ENDDO
      END
`)
	f := prog.Func("F")
	opt.LICM(f)
	for _, b := range f.Blocks {
		if b.Depth == 0 {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLoad {
					t.Fatal("conditionally-executed load was hoisted")
				}
			}
		}
	}
}

// TestOptPreservesSemantics runs a battery of programs optimized and
// unoptimized and compares results on the reference interpreter.
func TestOptPreservesSemantics(t *testing.T) {
	sources := []struct {
		name string
		src  string
		args []irinterp.Value
	}{
		{"DOTLOOP", `
      REAL FUNCTION F(N)
      REAL A(64),B(64),S
      INTEGER I,J,N
      DO I = 1,N
         A(I) = FLOAT(I)*0.5
         B(I) = FLOAT(N - I)
      ENDDO
      S = 0.0
      DO J = 1,3
         DO I = 1,N
            S = S + A(I)*B(I)*FLOAT(J)
         ENDDO
      ENDDO
      F = S
      END
`, []irinterp.Value{irinterp.Int(40)}},
		{"ZEROTRIP", `
      REAL FUNCTION F(N)
      REAL A(8),S
      INTEGER I,N
      A(1) = 5.0
      S = 1.0
      DO I = 1,N
         S = S + A(I)
      ENDDO
      F = S
      END
`, []irinterp.Value{irinterp.Int(0)}},
		{"CONDSUM", `
      REAL FUNCTION F(N)
      REAL S
      INTEGER I,N
      S = 0.0
      DO I = 1,N
         IF (MOD(I,3) .EQ. 0) THEN
            S = S + FLOAT(I)*2.0
         ELSE
            S = S - 1.0
         ENDIF
      ENDDO
      F = S
      END
`, []irinterp.Value{irinterp.Int(20)}},
	}
	for _, c := range sources {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func(optimize bool) float64 {
				prog := compile(t, c.src)
				if optimize {
					for _, f := range prog.Funcs {
						opt.Run(f)
						if err := ir.Validate(f); err != nil {
							t.Fatal(err)
						}
					}
				}
				v, err := irinterp.New(prog, 1<<22).Call("F", c.args...)
				if err != nil {
					t.Fatal(err)
				}
				return v.F
			}
			plain := run(false)
			optimized := run(true)
			if plain != optimized {
				t.Fatalf("optimizer changed result: %g vs %g", optimized, plain)
			}
		})
	}
}

func TestRunStats(t *testing.T) {
	prog := compile(t, `
      SUBROUTINE F(A,N,C)
      REAL A(*),C
      INTEGER I,N
      DO I = 1,N
         A(I) = (C + 1.0)*(C + 1.0)
      ENDDO
      END
`)
	st := opt.Run(prog.Func("F"))
	if st.CSERemoved == 0 || st.Hoisted == 0 {
		t.Fatalf("stats: %+v (both passes should fire here)", st)
	}
}

func TestDeadCodeElim(t *testing.T) {
	prog := compile(t, `
      REAL FUNCTION F(X,Y)
      REAL DEAD1,DEAD2
      DEAD1 = X*Y + 3.0
      DEAD2 = DEAD1*2.0
      F = X + Y
      END
`)
	f := prog.Func("F")
	removed := opt.DeadCodeElim(f)
	if removed == 0 {
		t.Fatal("dead chain not removed")
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// Nothing multiplies anymore.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpFMul {
				t.Fatal("dead multiply survived")
			}
		}
	}
	// Second run is a fixpoint.
	if opt.DeadCodeElim(f) != 0 {
		t.Fatal("DCE not idempotent")
	}
}

func TestDCEKeepsStoresCallsAndDivs(t *testing.T) {
	prog := compile(t, `
      SUBROUTINE G(A)
      REAL A(*)
      A(2) = 1.0
      END
      REAL FUNCTION F(A,I,J)
      REAL A(*)
      INTEGER I,J,DEADQ
      DEADQ = I/J
      A(1) = 2.0
      CALL G(A)
      F = A(1)
      END
`)
	f := prog.Func("F")
	opt.DeadCodeElim(f)
	var sawStore, sawCall, sawDiv bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpStore:
				sawStore = true
			case ir.OpCall:
				sawCall = true
			case ir.OpDiv:
				sawDiv = true
			}
		}
	}
	if !sawStore || !sawCall {
		t.Fatal("DCE removed an effectful instruction")
	}
	if !sawDiv {
		t.Fatal("DCE removed a potentially-trapping integer divide")
	}
}
