package experiments

import (
	"fmt"
	"strings"

	"regalloc"
	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

// The paper closes §3.2 wanting "to collect more data on the
// effectiveness of our allocator for smaller register sets" and "a
// more diverse set of non-floating point programs". IntegerStudy is
// that experiment: four integer kernels (sieve, hashing, checksum,
// gcd) swept over the Figure 6 register counts.

// IntRow is one (routine, register-count) cell.
type IntRow struct {
	Routine    string
	K          int
	SpilledOld int
	SpilledNew int
	CyclesOld  uint64
	CyclesNew  uint64
}

// IntegerStudyResult is the full sweep.
type IntegerStudyResult struct {
	Rows []IntRow
}

// runIntegerKernels drives all four kernels and returns a combined
// digest (it doubles as the semantics check for this workload).
func runIntegerKernels(e Engine) (uint64, error) {
	const (
		flags = int64(0) // 4000 words
		count = int64(5000)
		keys  = int64(6000) // 512 keys
		table = int64(8000) // 1021 slots
		hits  = int64(10000)
		data  = int64(11000) // 512 words
		crc   = int64(12000)
		ga    = int64(13000) // 256 pairs
		gb    = int64(14000)
		gg    = int64(15000)
	)
	r := &lcg{s: 41}
	if _, err := e.Call("SIEVE", vm.Int(flags), vm.Int(4000), vm.Int(count)); err != nil {
		return 0, check("SIEVE", err)
	}
	for i := int64(0); i < 512; i++ {
		e.StoreInt(keys+i, 1+r.intn(1<<30))
		e.StoreInt(data+i, r.intn(1<<16))
	}
	if _, err := e.Call("HASH", vm.Int(keys), vm.Int(512), vm.Int(table), vm.Int(1021), vm.Int(hits)); err != nil {
		return 0, check("HASH", err)
	}
	if _, err := e.Call("CRCS", vm.Int(data), vm.Int(512), vm.Int(crc)); err != nil {
		return 0, check("CRCS", err)
	}
	for i := int64(0); i < 256; i++ {
		e.StoreInt(ga+i, 1+r.intn(100000))
		e.StoreInt(gb+i, 1+r.intn(100000))
	}
	if _, err := e.Call("GCDS", vm.Int(ga), vm.Int(gb), vm.Int(gg), vm.Int(256)); err != nil {
		return 0, check("GCDS", err)
	}
	var d digest
	d.addInt(e.LoadInt(count))
	d.addInt(e.LoadInt(hits))
	d.addInt(e.LoadInt(crc))
	for i := int64(0); i < 256; i++ {
		d.addInt(e.LoadInt(gg + i))
	}
	// Spot-check invariants, not just digests: every key inserted
	// must be found, and pi(4000) = 550.
	if e.LoadInt(hits) != 512 {
		return 0, fmt.Errorf("HASH lost keys: %d/512 found", e.LoadInt(hits))
	}
	if e.LoadInt(count) != 550 {
		return 0, fmt.Errorf("SIEVE: pi(4000) = %d, want 550", e.LoadInt(count))
	}
	return d.sum(), nil
}

// RunIntegerKernels exposes the driver for tests.
func RunIntegerKernels(e Engine) (uint64, error) { return runIntegerKernels(e) }

// IntegerStudy compiles the integer kernels at each register count
// under both heuristics, verifying both produce identical results.
func IntegerStudy() (*IntegerStudyResult, error) {
	w := workloads.IntegerKernels()
	prog, err := regalloc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	out := &IntegerStudyResult{}
	for _, k := range []int{16, 12, 10, 8, 6} {
		machine := regalloc.RTPC().WithGPR(k)
		spills := make(map[regalloc.Heuristic]map[string]int)
		cycles := make(map[regalloc.Heuristic]uint64)
		digests := make(map[regalloc.Heuristic]uint64)
		for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
			spills[h] = make(map[string]int)
			for _, rt := range w.Routines {
				opt := defaultOptions()
				opt.Heuristic = h
				opt.KInt = k
				res, err := prog.Allocate(rt, opt)
				if err != nil {
					return nil, fmt.Errorf("k=%d %s %s: %w", k, h, rt, err)
				}
				spills[h][rt] = res.FirstPassSpilled()
			}
			eng, err := NewVMEngine(prog, h, machine)
			if err != nil {
				return nil, err
			}
			digests[h], err = runIntegerKernels(eng)
			if err != nil {
				return nil, fmt.Errorf("k=%d %s: %w", k, h, err)
			}
			cycles[h] = eng.M.Cycles
		}
		if digests[regalloc.Chaitin] != digests[regalloc.Briggs] {
			return nil, fmt.Errorf("k=%d: heuristics disagree on kernel results", k)
		}
		for _, rt := range w.Routines {
			out.Rows = append(out.Rows, IntRow{
				Routine:    rt,
				K:          k,
				SpilledOld: spills[regalloc.Chaitin][rt],
				SpilledNew: spills[regalloc.Briggs][rt],
				CyclesOld:  cycles[regalloc.Chaitin],
				CyclesNew:  cycles[regalloc.Briggs],
			})
		}
	}
	return out, nil
}

// String renders the sweep, one block per register count.
func (r *IntegerStudyResult) String() string {
	var b strings.Builder
	b.WriteString("integer kernels across register counts (extension of Figure 6; see EXPERIMENTS.md)\n")
	fmt.Fprintf(&b, "%4s | %-8s %9s %9s | %14s %14s %5s\n",
		"regs", "routine", "old spill", "new spill", "old cycles", "new cycles", "pct")
	b.WriteString(strings.Repeat("-", 80) + "\n")
	lastK := -1
	for _, row := range r.Rows {
		kCol := ""
		cyc := ""
		if row.K != lastK {
			kCol = fmt.Sprintf("%d", row.K)
			cyc = fmt.Sprintf("%14d %14d %5.1f", row.CyclesOld, row.CyclesNew,
				pct(float64(row.CyclesOld), float64(row.CyclesNew)))
			lastK = row.K
		}
		fmt.Fprintf(&b, "%4s | %-8s %9d %9d | %s\n",
			kCol, row.Routine, row.SpilledOld, row.SpilledNew, cyc)
	}
	return b.String()
}
