// load.go is the driver: closed- or open-loop request generation
// against /v1/alloc, latency observation on the repo's fixed-bucket
// histogram, client-side cache accounting from the X-Cache reply
// header, and per-request W3C trace identities — every request
// carries a minted traceparent, and the trace IDs of the slowest and
// errored requests are kept so the report (and a failing SLO gate)
// can point straight into allocd's flight recorder.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"regalloc/internal/graphgen"
	"regalloc/internal/obs"
	"regalloc/internal/reqtrace"
)

// How many trace IDs the collector retains: enough to hand an
// operator the whole pathological tail, few enough that the report
// and the gate's failure message stay readable.
const (
	maxSlowTraces  = 8
	maxErrorTraces = 8
)

// slowTrace is one retained (trace ID, duration) pair.
type slowTrace struct {
	TraceID string
	DurNS   int64
}

type loadConfig struct {
	Addr     string
	Duration time.Duration
	Conc     int
	Rate     float64 // requests/sec; 0 means closed loop
	Corpus   *corpus
	Seed     uint64
}

// collector aggregates results from all in-flight workers.
type collector struct {
	mu       sync.Mutex
	lat      obs.LatencyHistogram // service replies only (any HTTP status)
	errLat   obs.LatencyHistogram // transport failures (status 0)
	requests int64
	errors   int64
	statuses map[int]int64
	cache    map[string]int64 // X-Cache value -> count

	// slow holds the top-maxSlowTraces successfully answered requests
	// by duration (sorted slowest first); errTraces the trace IDs of
	// the first maxErrorTraces non-2xx replies. Transport failures
	// carry no trace ID — the server may never have seen the request,
	// so its ID would dangle in the flight recorder.
	slow      []slowTrace
	errTraces []string
}

func newCollector() *collector {
	return &collector{statuses: map[int]int64{}, cache: map[string]int64{}}
}

func (c *collector) observe(status int, xcache, traceID string, d time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if traceID != "" {
		if failed {
			if len(c.errTraces) < maxErrorTraces {
				c.errTraces = append(c.errTraces, traceID)
			}
		} else {
			c.noteSlow(traceID, d.Nanoseconds())
		}
	}
	if status == 0 {
		// Transport failure: the duration is the client's timeout or
		// connect path, not service latency. Folding a batch of
		// 30-second client timeouts into the same histogram the SLO
		// gate reads would let a brief outage masquerade as a tail
		// regression (or, worse, mask one); they are tracked apart
		// and reported as error_latency.
		c.errLat.Observe(d)
	} else {
		c.lat.Observe(d)
	}
	c.statuses[status]++
	if failed {
		c.errors++
	}
	if xcache != "" {
		c.cache[xcache]++
	}
}

// noteSlow inserts one successful request into the slowest-first list,
// keeping at most maxSlowTraces entries. Caller holds c.mu.
func (c *collector) noteSlow(traceID string, ns int64) {
	i := sort.Search(len(c.slow), func(i int) bool { return c.slow[i].DurNS < ns })
	if i >= maxSlowTraces {
		return
	}
	c.slow = append(c.slow, slowTrace{})
	copy(c.slow[i+1:], c.slow[i:])
	c.slow[i] = slowTrace{TraceID: traceID, DurNS: ns}
	if len(c.slow) > maxSlowTraces {
		c.slow = c.slow[:maxSlowTraces]
	}
}

// runLoad drives the configured load shape until the duration
// elapses and aggregates the results into the loadtest section.
func runLoad(cfg loadConfig) (*loadtestSection, error) {
	if len(cfg.Corpus.Items) == 0 {
		return nil, fmt.Errorf("empty corpus")
	}
	if cfg.Conc < 1 {
		cfg.Conc = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Fail fast if the target isn't there: a typo'd -addr should be
	// one clear error, not -duration seconds of connection refusals
	// counted as 100%% error rate.
	resp, err := client.Get(cfg.Addr + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("target %s not reachable: %w", cfg.Addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	col := newCollector()
	deadline := time.Now().Add(cfg.Duration)
	mode := "closed"

	// Each worker walks the corpus from a different seeded offset so
	// concurrent workers do not march through it in lockstep (which
	// would turn every round into a singleflight pileup on one key and
	// starve the rest of the cache).
	rng := graphgen.NewRNG(cfg.Seed)
	offsets := make([]int, cfg.Conc)
	for i := range offsets {
		offsets[i] = rng.Intn(len(cfg.Corpus.Items))
	}

	if cfg.Rate > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		var wg sync.WaitGroup
		// The worker pool bounds outstanding requests: a true open
		// loop with an unbounded queue would let a stalled server
		// accumulate goroutines without limit. Ticks that find no free
		// worker are counted as dropped (the queueing-delay signal an
		// open loop exists to expose).
		slots := make(chan struct{}, cfg.Conc*4)
		var dropped int64
		var droppedMu sync.Mutex
		// Pace off absolute fire times (start + tick*interval), not
		// sleep-after-work: sleeping the full interval after each
		// tick's bookkeeping adds that bookkeeping — plus the OS sleep
		// overshoot — to every gap, so the achieved rate drifts below
		// the requested one and the drift compounds over the run. An
		// absolute schedule self-corrects: a late tick fires at once
		// and the next target time is unchanged.
		start := time.Now()
		for tick := 0; ; tick++ {
			next := start.Add(time.Duration(tick) * interval)
			if next.After(deadline) {
				break
			}
			time.Sleep(time.Until(next))
			// Tick t belongs to virtual worker t%Conc, which walks the
			// corpus from its own seeded offset just like the closed
			// loop's workers. A single cursor from item 0 would replay
			// the corpus prefix in request order every run and turn the
			// cache study into a pileup on the first few keys.
			v := tick % cfg.Conc
			item := cfg.Corpus.Items[(offsets[v]+tick/cfg.Conc)%len(cfg.Corpus.Items)]
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func(it corpusItem) {
					defer wg.Done()
					defer func() { <-slots }()
					fire(client, cfg.Addr, it, col)
				}(item)
			default:
				droppedMu.Lock()
				dropped++
				droppedMu.Unlock()
			}
		}
		wg.Wait()
		return finish(client, cfg, mode, col, dropped), nil
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := offsets[w]
			for time.Now().Before(deadline) {
				fire(client, cfg.Addr, cfg.Corpus.Items[i%len(cfg.Corpus.Items)], col)
				i++
			}
		}(w)
	}
	wg.Wait()
	return finish(client, cfg, mode, col, 0), nil
}

// finish summarizes the run, then pulls the span trees for the
// retained trace IDs back from the service's flight recorder.
func finish(client *http.Client, cfg loadConfig, mode string, col *collector, dropped int64) *loadtestSection {
	lt := summarize(cfg, mode, col, dropped)
	ids := append(append([]string{}, lt.SlowTraceIDs...), lt.ErrorTraceIDs...)
	lt.Traces = fetchTraces(client, cfg.Addr, ids)
	return lt
}

// fire sends one request and records its outcome. Any non-2xx or
// transport failure counts as an error: the corpus is all valid
// requests, so the service owns every failure. Every request is
// minted a W3C trace identity and carries it as a traceparent header;
// allocd continues that trace, so the IDs the collector retains for
// the slowest and errored requests look up full span trees in the
// service's flight recorder.
func fire(client *http.Client, addr string, item corpusItem, col *collector) {
	sc := reqtrace.Mint()
	req, err := http.NewRequest(http.MethodPost, addr+"/v1/alloc", bytes.NewReader(item.Body))
	if err != nil {
		col.observe(0, "", "", 0, true)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Header())
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		col.observe(0, "", "", time.Since(t0), true)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	col.observe(resp.StatusCode, resp.Header.Get("X-Cache"), sc.TraceID.String(), time.Since(t0),
		resp.StatusCode < 200 || resp.StatusCode > 299)
}

// fetchTraces asks the target's flight recorder (GET /debug/requests)
// for the records behind the retained trace IDs, slowest first.
// Best-effort: against an allocd predating the endpoint — or once the
// recorder has evicted a record — the summary list is simply shorter,
// and the IDs themselves still join the access log and the /metrics
// exemplars.
func fetchTraces(client *http.Client, addr string, ids []string) []traceSummary {
	if len(ids) == 0 {
		return nil
	}
	resp, err := client.Get(addr + "/debug/requests")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var body struct {
		Requests []reqtrace.RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []traceSummary
	for _, rec := range body.Requests {
		if !want[rec.TraceID] {
			continue
		}
		out = append(out, traceSummary{
			TraceID:   rec.TraceID,
			DurNS:     rec.DurNS,
			Status:    rec.Status,
			Spans:     len(rec.Spans),
			Unit:      rec.Annotation("unit"),
			Heuristic: rec.Annotation("heuristic"),
			Cache:     rec.Annotation("cache"),
			Error:     rec.Error,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DurNS > out[j].DurNS })
	return out
}

func summarize(cfg loadConfig, mode string, col *collector, dropped int64) *loadtestSection {
	col.mu.Lock()
	defer col.mu.Unlock()
	lt := &loadtestSection{
		Target:      cfg.Addr,
		Mode:        mode,
		DurationNS:  cfg.Duration.Nanoseconds(),
		Concurrency: cfg.Conc,
		RateRPS:     cfg.Rate,
		Corpus: corpusSummary{
			Items:   len(cfg.Corpus.Items),
			Sources: cfg.Corpus.Sources,
			Graphs:  cfg.Corpus.Graphs,
			Fuzzed:  cfg.Corpus.Fuzzed,
		},
		Requests: col.requests,
		Errors:   col.errors,
		Dropped:  dropped,
		Latency:  quantilesOf(col.lat),
		Statuses: map[string]int64{},
		Cache:    cacheSummary{},
		Throughput: func() float64 {
			if cfg.Duration <= 0 {
				return 0
			}
			return float64(col.requests) / cfg.Duration.Seconds()
		}(),
	}
	if col.requests > 0 {
		lt.ErrorRate = float64(col.errors) / float64(col.requests)
	}
	if col.errLat.Count > 0 {
		q := quantilesOf(col.errLat)
		lt.ErrorLatency = &q
	}
	for code, n := range col.statuses {
		lt.Statuses[fmt.Sprintf("%d", code)] = n
	}
	lt.SlowTraceIDs = make([]string, 0, len(col.slow))
	for _, s := range col.slow {
		lt.SlowTraceIDs = append(lt.SlowTraceIDs, s.TraceID)
	}
	lt.ErrorTraceIDs = col.errTraces
	lt.Cache.Hits = col.cache["hit"]
	lt.Cache.Misses = col.cache["miss"]
	lt.Cache.Shared = col.cache["shared"]
	if served := lt.Cache.Hits + lt.Cache.Misses + lt.Cache.Shared; served > 0 {
		lt.Cache.HitRate = float64(lt.Cache.Hits+lt.Cache.Shared) / float64(served)
	}
	return lt
}

// sortedStatusCodes is used by tests to render deterministic output.
func sortedStatusCodes(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
