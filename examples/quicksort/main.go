// Quicksort: the paper's §3.2 study. Compiles the non-recursive
// quicksort and runs it on the simulator with the allocator
// restricted to 16, 14, 12, 10, and 8 general-purpose registers,
// comparing both heuristics — a miniature of the paper's Figure 6.
//
// Run with: go run ./examples/quicksort [n]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"regalloc"
	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

func main() {
	n := int64(50000)
	if len(os.Args) > 1 {
		v, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad element count %q", os.Args[1])
		}
		n = v
	}
	prog, err := regalloc.Compile(workloads.Quicksort().Source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorting %d integers on the simulated machine\n\n", n)
	fmt.Printf("%4s | %18s | %18s\n", "regs", "chaitin (cycles)", "briggs (cycles)")
	for _, k := range []int{16, 14, 12, 10, 8} {
		fmt.Printf("%4d |", k)
		for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
			opt := regalloc.DefaultOptions()
			opt.Heuristic = h
			machineDesc := regalloc.RTPC().WithGPR(k)
			code, _, err := prog.Assemble(machineDesc, opt)
			if err != nil {
				log.Fatal(err)
			}
			m := regalloc.NewVM(code, prog.MemWords())
			seed := uint64(12345)
			for i := int64(0); i < n; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				m.StoreInt(i, int64(seed>>40))
			}
			if _, err := m.Call("QSORT", vm.Int(0), vm.Int(n)); err != nil {
				log.Fatal(err)
			}
			for i := int64(1); i < n; i++ {
				if m.LoadInt(i) < m.LoadInt(i-1) {
					log.Fatalf("k=%d %s: output not sorted at %d", k, h, i)
				}
			}
			fmt.Printf(" %18d |", m.Cycles)
		}
		fmt.Println()
	}
}
