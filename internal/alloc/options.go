package alloc

import (
	"errors"
	"fmt"

	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
	"regalloc/internal/spill"
)

// Typed option errors, matched with errors.Is. The root regalloc
// package re-exports them so callers never import internal/alloc.
var (
	// ErrBadK reports a register count below 1 in either class.
	ErrBadK = errors.New("register counts must be at least 1 per class")
	// ErrBadHeuristic reports an out-of-range Heuristic value.
	ErrBadHeuristic = errors.New("unknown coloring heuristic")
	// ErrBadMetric reports an out-of-range spill Metric value.
	ErrBadMetric = errors.New("unknown spill metric")
	// ErrConflictingSpillModes reports Split and Rematerialize both
	// set; the two spill-code strategies are mutually exclusive.
	ErrConflictingSpillModes = errors.New("Split and Rematerialize are mutually exclusive")
	// ErrBadWorkers reports a negative Workers bound.
	ErrBadWorkers = errors.New("Workers must be >= 0")
	// ErrBadPColorAlgo reports an out-of-range PColorAlgo value.
	ErrBadPColorAlgo = errors.New("unknown pcolor algorithm")
	// ErrBadMachine reports a Machine model that fails its own
	// Validate, disagrees with KInt/KFloat, or is combined with an
	// allocation mode that cannot honor precolored constraints
	// (UsePColor, or the SSA chordal allocator).
	ErrBadMachine = errors.New("invalid machine model configuration")
)

// Options configures a run of the allocator.
type Options struct {
	Heuristic color.Heuristic
	// KInt and KFloat are the available general-purpose and
	// floating-point register counts (the RT/PC has 16 and 8).
	KInt   int
	KFloat int
	// Metric is the spill-choice figure of merit (default
	// cost/degree, Chaitin's).
	Metric color.Metric
	// Coalesce enables copy coalescing in the build phase.
	Coalesce bool
	// ConservativeCoalesce switches from the paper's aggressive
	// coalescing to the Briggs conservative test (TOPLAS 1994): only
	// merge when the combined range provably stays colorable. Off by
	// default (the paper's baseline); included for the ablation.
	ConservativeCoalesce bool
	// CostParams tunes the spill-cost estimator.
	CostParams spill.CostParams
	// Rematerialize enables Chaitin's never-killed-value refinement:
	// constant-valued ranges are recomputed at each use instead of
	// being stored and reloaded, and their spill cost drops
	// accordingly. Off by default (the paper's baseline).
	Rematerialize bool
	// Split enables live-range splitting when spilling (the paper's
	// §4 future work): a range used but not defined in a loop is
	// reloaded once in the loop preheader instead of before every
	// use. Off by default (the paper's baseline is spill-everywhere).
	// Setting Split together with Rematerialize is rejected by
	// Validate with ErrConflictingSpillModes.
	Split bool
	// MaxPasses bounds the build–simplify–color–spill iteration;
	// the paper never observed more than three passes. Values <= 0
	// mean the default of 64.
	MaxPasses int
	// Observer, when non-nil, receives the allocator's structured
	// event stream (phase spans, counters, spill decisions,
	// color-reuse witnesses; see package obs). A nil Observer — the
	// default — costs one branch per instrumentation site. Whole-
	// program allocation emits from several goroutines at once, so
	// the Sink must be safe for concurrent use; all sinks in package
	// obs are.
	Observer obs.Sink
	// Workers bounds the worker pool used by whole-program
	// allocation (regalloc.AssembleContext); 0 means GOMAXPROCS.
	// Within a single unit, Workers > 1 additionally shards the
	// interference-graph build across goroutines (see
	// ig.BuildWithLiveness); the effective shard count is capped at
	// GOMAXPROCS and small units stay sequential. The sharded build
	// merges deterministically, so results are byte-identical to
	// Workers <= 1 — only the build wall time changes.
	Workers int
	// UsePColor replaces the sequential simplify/select pair with the
	// speculative parallel first-fit engine (internal/pcolor) inside
	// the Figure 4 cycle: the pass's graph is colored with an
	// unbounded palette, nodes whose first-fit color lands at or
	// beyond the class budget become that pass's spill set (a subset
	// of a proper coloring is proper, so the survivors are a valid
	// partial k-coloring), and a pass whose palette fits the budget
	// terminates the cycle. Heuristic and Metric are ignored in this
	// mode: the engine is cost-blind, ordering by seeded
	// degree-descending permutation. Off by default; the portfolio
	// racer (internal/portfolio) uses it as one strategy family.
	UsePColor bool
	// PColorSeed drives the UsePColor permutation; different seeds
	// explore different first-fit orders (and therefore different
	// spill sets), which is what the portfolio races.
	PColorSeed uint64
	// PColorWorkers is the speculative engine's goroutine count under
	// UsePColor. The (seed, workers) pair fully determines the
	// coloring, so <= 0 means a fixed default of 4 — machine-
	// independent, unlike GOMAXPROCS — keeping allocations
	// reproducible across hosts.
	PColorWorkers int
	// PColorAlgo picks the engine's round structure under UsePColor:
	// pcolor.Speculative (the zero value) or pcolor.JonesPlassmann,
	// whose coloring depends on PColorSeed alone — worker count
	// changes only the wall time, never the spill set.
	PColorAlgo pcolor.Algo
	// Machine, when non-nil, layers a register-file description over
	// the pure k-coloring problem: physical registers enter the
	// interference graph as precolored nodes, values live across calls
	// interfere with the caller-saved registers (so they prefer
	// callee-saved colors), and — under the IRC heuristic — the
	// calling convention's argument/return bindings become coalescing
	// candidates. Per-class counts must agree with KInt/KFloat
	// (Validate rejects a mismatch with ErrBadMachine), and the model
	// is incompatible with UsePColor and the SSA heuristic, neither of
	// which honors precolored constraints. Nil — the default — is the
	// paper's machine-agnostic formulation.
	Machine *machine.Model
}

// DefaultPColorWorkers is the fixed worker count UsePColor resolves
// PColorWorkers <= 0 to. It is deliberately not GOMAXPROCS: the pair
// (PColorSeed, workers) determines the coloring, and a host-dependent
// default would make the same Options spill differently on different
// machines.
const DefaultPColorWorkers = 4

// DefaultOptions returns the paper's configuration: the optimistic
// heuristic on a 16 GPR + 8 FPR machine.
func DefaultOptions() Options {
	return Options{
		Heuristic:  color.Briggs,
		KInt:       16,
		KFloat:     8,
		Metric:     color.CostOverDegree,
		Coalesce:   true,
		CostParams: spill.DefaultCostParams(),
		MaxPasses:  64,
	}
}

// K returns the class-to-color-count function for the options.
func (o Options) K() color.K { return color.NumColors(o.KInt, o.KFloat) }

// Validate checks the options for misuse and returns a typed error
// (ErrBadK, ErrBadHeuristic, ErrBadMetric, ErrConflictingSpillModes,
// ErrBadWorkers, or ErrBadPColorAlgo, all matchable with errors.Is)
// describing the
// first problem found. Run, and the root package's Allocate and
// AssembleContext, call it before doing any work, so misconfiguration
// fails loudly instead of being silently patched up.
func (o Options) Validate() error {
	if o.KInt < 1 || o.KFloat < 1 {
		return fmt.Errorf("alloc: kInt=%d, kFloat=%d: %w", o.KInt, o.KFloat, ErrBadK)
	}
	if o.Heuristic < color.Chaitin || o.Heuristic > color.IRC {
		return fmt.Errorf("alloc: heuristic %d: %w", int(o.Heuristic), ErrBadHeuristic)
	}
	if o.Metric < color.CostOverDegree || o.Metric > color.DegreeOnly {
		return fmt.Errorf("alloc: metric %d: %w", int(o.Metric), ErrBadMetric)
	}
	if o.Split && o.Rematerialize {
		return fmt.Errorf("alloc: %w", ErrConflictingSpillModes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("alloc: workers=%d: %w", o.Workers, ErrBadWorkers)
	}
	if o.PColorAlgo < 0 || o.PColorAlgo >= pcolor.NumAlgos {
		return fmt.Errorf("alloc: pcolor algo %d: %w", int(o.PColorAlgo), ErrBadPColorAlgo)
	}
	if o.Machine != nil {
		if err := o.Machine.Validate(); err != nil {
			return fmt.Errorf("alloc: %v: %w", err, ErrBadMachine)
		}
		if o.Machine.NumRegs[ir.ClassInt] != o.KInt || o.Machine.NumRegs[ir.ClassFloat] != o.KFloat {
			return fmt.Errorf("alloc: machine %s has %d/%d registers but kInt=%d, kFloat=%d: %w",
				o.Machine.Name, o.Machine.NumRegs[ir.ClassInt], o.Machine.NumRegs[ir.ClassFloat],
				o.KInt, o.KFloat, ErrBadMachine)
		}
		if o.UsePColor {
			return fmt.Errorf("alloc: machine model with UsePColor: %w", ErrBadMachine)
		}
		if o.Heuristic == color.SSA {
			return fmt.Errorf("alloc: machine model with the SSA heuristic: %w", ErrBadMachine)
		}
	}
	return nil
}
