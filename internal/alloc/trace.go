package alloc

import (
	"context"
	"strconv"
	"time"

	"regalloc/internal/obs"
	"regalloc/internal/reqtrace"
)

// heuristicLabel names the engine a run used, for span attributes and
// the service access log: the speculative engine shadows Heuristic
// (as it does in the allocator), everything else is the heuristic's
// own name.
func heuristicLabel(opt Options) string {
	if opt.UsePColor {
		return "pcolor"
	}
	return opt.Heuristic.String()
}

// recordPassSpans replays a finished allocation's PassStats as
// request-trace spans: one "alloc:UNIT" span covering the run, with
// one child span per non-zero phase per pass, laid out sequentially
// from start in cycle order (the order the phases actually ran).
// Durations are the exact integer nanoseconds PassStats carries, so a
// request's span tree reconciles with Summarize's RunSummary and the
// registry — the same invariant the obs span stream keeps.
//
// The untraced path (no reqtrace scope in ctx) costs one context
// lookup and returns immediately.
func recordPassSpans(ctx context.Context, unit string, opt Options, passes []PassStats, start time.Time) {
	rt, parent := reqtrace.FromContext(ctx)
	if rt == nil {
		return
	}
	var total time.Duration
	for _, p := range passes {
		total += p.Build + p.Simplify + p.Color + p.Spill
	}
	unitSpan := rt.Record(parent, "alloc:"+unit, start, total,
		reqtrace.Attr{Key: "heuristic", Value: heuristicLabel(opt)},
		reqtrace.Attr{Key: "passes", Value: strconv.Itoa(len(passes))})
	t := start
	for i, p := range passes {
		pass := strconv.Itoa(i)
		for _, ph := range [...]struct {
			phase obs.Phase
			d     time.Duration
		}{
			{obs.PhaseBuild, p.Build},
			{obs.PhaseSimplify, p.Simplify},
			{obs.PhaseColor, p.Color},
			{obs.PhaseSpill, p.Spill},
		} {
			if ph.d <= 0 {
				continue
			}
			rt.Record(unitSpan, "phase:"+ph.phase.String(), t, ph.d,
				reqtrace.Attr{Key: "pass", Value: pass})
			t = t.Add(ph.d)
		}
	}
}
