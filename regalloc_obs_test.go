package regalloc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"regalloc"
	"regalloc/internal/vm"
)

// pressure is a routine with enough simultaneously-live values to
// spill on a small register file, so traces contain spill decisions
// and (under Briggs) color-reuse events.
const pressure = `
      INTEGER FUNCTION PRESS(N)
      INTEGER A,B,C,D,E,F,G,H,I,N
      A = 1
      B = 2
      C = 3
      D = 4
      E = 5
      F = 6
      G = 7
      H = 8
      DO I = 1,N
         A = A + B
         B = B + C
         C = C + D
         D = D + E
         E = E + F
         F = F + G
         G = G + H
         H = H + A
      ENDDO
      PRESS = A + B + C + D + E + F + G + H
      END
`

func TestOptionsValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*regalloc.Options)
		want   error
	}{
		{"zero kint", func(o *regalloc.Options) { o.KInt = 0 }, regalloc.ErrBadK},
		{"negative kfloat", func(o *regalloc.Options) { o.KFloat = -2 }, regalloc.ErrBadK},
		{"bad heuristic", func(o *regalloc.Options) { o.Heuristic = 99 }, regalloc.ErrBadHeuristic},
		{"bad metric", func(o *regalloc.Options) { o.Metric = -1 }, regalloc.ErrBadMetric},
		{"split+remat", func(o *regalloc.Options) { o.Split = true; o.Rematerialize = true }, regalloc.ErrConflictingSpillModes},
		{"negative workers", func(o *regalloc.Options) { o.Workers = -1 }, regalloc.ErrBadWorkers},
	}
	for _, tc := range cases {
		opt := regalloc.DefaultOptions()
		tc.mutate(&opt)
		if err := opt.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := regalloc.DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
}

// TestAllocateValidatesLoudly: misuse surfaces from the public entry
// points as typed errors, not as silent repairs.
func TestAllocateValidatesLoudly(t *testing.T) {
	prog, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	opt := regalloc.DefaultOptions()
	opt.Split = true
	opt.Rematerialize = true
	if _, err := prog.Allocate("FIB", opt); !errors.Is(err, regalloc.ErrConflictingSpillModes) {
		t.Fatalf("Allocate: %v, want ErrConflictingSpillModes", err)
	}
	opt = regalloc.DefaultOptions()
	opt.Workers = -5
	if _, _, err := prog.Assemble(regalloc.RTPC(), opt); !errors.Is(err, regalloc.ErrBadWorkers) {
		t.Fatalf("Assemble: %v, want ErrBadWorkers", err)
	}
}

// TestAssembleContextCancellation: a cancelled context aborts the
// whole-program run with the context's error.
func TestAssembleContextCancellation(t *testing.T) {
	prog, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := prog.AssembleContext(ctx, regalloc.RTPC(), regalloc.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAssembleContextBoundedWorkers: the pool honours Workers and
// still produces the same deterministic output as the default.
func TestAssembleContextBoundedWorkers(t *testing.T) {
	prog, err := regalloc.Compile(demo + pressure)
	if err != nil {
		t.Fatal(err)
	}
	opt := regalloc.DefaultOptions()
	opt.Workers = 1
	code, results, err := prog.AssembleContext(context.Background(), regalloc.RTPC(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || code.Func("FIB") == nil || code.Func("PRESS") == nil {
		t.Fatalf("results: %v", results)
	}
	v, err := regalloc.NewVM(code, prog.MemWords()).Call("FIB", vm.Int(30))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 832040 {
		t.Fatalf("fib(30) = %d", v.I)
	}
}

// traceLine is the decoded wire form of one JSON trace event.
type traceLine struct {
	Kind   string  `json:"kind"`
	Unit   string  `json:"unit"`
	Pass   int     `json:"pass"`
	Phase  string  `json:"phase"`
	DurNS  int64   `json:"dur_ns"`
	Name   string  `json:"name"`
	Value  int64   `json:"value"`
	Node   int32   `json:"node"`
	Cost   float64 `json:"cost"`
	Metric float64 `json:"metric"`
}

// TestJSONTraceReconcilesWithPassStats is the golden-trace test: a
// traced allocation emits exactly one span per executed phase per
// pass, and every span's duration equals the corresponding PassStats
// field, so the live stream and the post-hoc record cannot drift.
func TestJSONTraceReconcilesWithPassStats(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opt := regalloc.DefaultOptions()
	opt.KInt = 4 // force spilling so every phase appears
	opt.Observer = regalloc.NewJSONSink(&buf)
	res, err := prog.Allocate("PRESS", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilled() == 0 {
		t.Fatal("test premise broken: PRESS must spill at KInt=4")
	}

	// spans[pass][phase] = duration; counts detect duplicates.
	spans := map[int]map[string]time.Duration{}
	var decisions int
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev traceLine
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		if ev.Unit != "PRESS" {
			t.Fatalf("wrong unit in %q", ln)
		}
		switch ev.Kind {
		case "span_end":
			if spans[ev.Pass] == nil {
				spans[ev.Pass] = map[string]time.Duration{}
			}
			if _, dup := spans[ev.Pass][ev.Phase]; dup {
				t.Fatalf("duplicate %s span in pass %d", ev.Phase, ev.Pass)
			}
			spans[ev.Pass][ev.Phase] = time.Duration(ev.DurNS)
		case "spill_decision":
			if ev.Cost <= 0 || ev.Metric <= 0 {
				t.Fatalf("spill decision without cost/metric: %q", ln)
			}
			decisions++
		}
	}
	if decisions == 0 {
		t.Fatal("no spill decisions traced despite spilling")
	}
	if len(spans) != len(res.Passes) {
		t.Fatalf("traced %d passes, PassStats has %d", len(spans), len(res.Passes))
	}
	for i, ps := range res.Passes {
		got := spans[i]
		wants := map[string]time.Duration{
			"build":    ps.Build,
			"simplify": ps.Simplify,
			"color":    ps.Color,
			"spill":    ps.Spill,
		}
		for phase, want := range wants {
			if want == 0 {
				continue // phase not executed this pass (e.g. spill on the final one)
			}
			if got[phase] != want {
				t.Errorf("pass %d %s: trace %v, PassStats %v", i, phase, got[phase], want)
			}
		}
		// Coalescing is on by default, so its nested span must exist
		// and fit inside build.
		if d, ok := got["coalesce"]; !ok || d > got["build"] {
			t.Errorf("pass %d: coalesce span missing or larger than build (%v vs %v)", i, d, got["build"])
		}
	}
}

// TestMetricsThroughParallelAssemble: a shared MetricsSink observes
// a whole-program parallel allocation (the -race check for the
// observer path) and its aggregates agree with the per-unit results.
func TestMetricsThroughParallelAssemble(t *testing.T) {
	var src strings.Builder
	src.WriteString(demo)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&src, strings.ReplaceAll(pressure, "PRESS", fmt.Sprintf("PR%d", i)))
	}
	prog, err := regalloc.Compile(src.String())
	if err != nil {
		t.Fatal(err)
	}
	ms := regalloc.NewMetricsSink()
	opt := regalloc.DefaultOptions()
	opt.Observer = ms
	_, results, err := prog.Assemble(regalloc.RTPC().WithGPR(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	var wantSpills int64
	for _, res := range results {
		wantSpills += int64(res.TotalSpilled())
	}
	snap := ms.Snapshot()
	if got := snap.Counters["spill/spill.ranges"]; got != wantSpills {
		t.Fatalf("metrics counted %d spilled ranges, results say %d", got, wantSpills)
	}
	if snap.Counters["build/graph.nodes"] == 0 || snap.Durations["build"].Count == 0 {
		t.Fatalf("missing aggregates: %+v", snap)
	}
	// Every unit ran at least one pass, each emitting one build span.
	if snap.Durations["build"].Count < int64(len(results)) {
		t.Fatalf("build spans %d < units %d", snap.Durations["build"].Count, len(results))
	}
}

// TestObserverOverheadSmokeTest: a nil Observer must not change
// results — same spills, same colors — versus an observed run.
func TestObserverNilVsSinkSameResult(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	opt := regalloc.DefaultOptions()
	opt.KInt = 4
	plain, err := prog.Allocate("PRESS", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Observer = regalloc.NewJSONSink(new(bytes.Buffer))
	traced, err := prog.Allocate("PRESS", opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalSpilled() != traced.TotalSpilled() || len(plain.Passes) != len(traced.Passes) {
		t.Fatalf("observation changed the allocation: %d/%d passes, %d/%d spills",
			len(plain.Passes), len(traced.Passes), plain.TotalSpilled(), traced.TotalSpilled())
	}
	for i, c := range plain.Colors {
		if traced.Colors[i] != c {
			t.Fatalf("color of v%d differs: %d vs %d", i, c, traced.Colors[i])
		}
	}
}
