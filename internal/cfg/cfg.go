// Package cfg computes control-flow analyses over IR functions:
// reverse postorder, immediate dominators (Cooper–Harvey–Kennedy),
// natural loops, and the loop-nesting depth of every block. Nesting
// depth drives the allocator's spill-cost estimates: a reference at
// depth d is weighted by 10^d, following Chaitin.
package cfg

import (
	"sort"

	"regalloc/internal/ir"
)

// Info is the result of Analyze.
type Info struct {
	// RPO is the blocks reachable from entry, in reverse postorder.
	RPO []int
	// RPONum[b] is the position of block b in RPO, or -1 if
	// unreachable.
	RPONum []int
	// IDom[b] is the immediate dominator of block b (entry's is
	// itself); -1 for unreachable blocks.
	IDom []int
	// Depth[b] is the loop-nesting depth of block b (0 = not in any
	// loop).
	Depth []int
	// Loops lists each natural loop found, outermost first among
	// nested loops with the same header merged.
	Loops []Loop
}

// Loop is a natural loop: a header plus the set of blocks that reach
// a back edge without leaving the header's dominance region.
type Loop struct {
	Header int
	Blocks []int
}

// Analyze computes dominators and loop nesting for f, and stamps
// each block's Depth field.
func Analyze(f *ir.Func) *Info {
	n := len(f.Blocks)
	info := &Info{
		RPONum: make([]int, n),
		IDom:   make([]int, n),
		Depth:  make([]int, n),
	}
	for i := range info.RPONum {
		info.RPONum[i] = -1
		info.IDom[i] = -1
	}

	// Depth-first search for postorder.
	post := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	info.RPO = make([]int, len(post))
	for i := range post {
		info.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range info.RPO {
		info.RPONum[b] = i
	}

	info.computeIDom(f)
	info.findLoops(f)

	for _, b := range f.Blocks {
		b.Depth = info.Depth[b.ID]
	}
	return info
}

// computeIDom is the Cooper–Harvey–Kennedy iterative algorithm.
func (info *Info) computeIDom(f *ir.Func) {
	info.IDom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range info.RPO[1:] {
			var newIdom = -1
			for _, p := range f.Blocks[b].Preds {
				if info.RPONum[p] < 0 || info.IDom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = info.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && info.IDom[b] != newIdom {
				info.IDom[b] = newIdom
				changed = true
			}
		}
	}
}

func (info *Info) intersect(a, b int) int {
	for a != b {
		for info.RPONum[a] > info.RPONum[b] {
			a = info.IDom[a]
		}
		for info.RPONum[b] > info.RPONum[a] {
			b = info.IDom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b. Unreachable
// blocks dominate nothing and are dominated by nothing.
func (info *Info) Dominates(a, b int) bool {
	if info.RPONum[a] < 0 || info.RPONum[b] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = info.IDom[b]
	}
}

// InsertPreheader redirects every edge into header from outside the
// loop through a fresh block that branches to the header, and
// returns that block. The caller must re-run Analyze afterwards if
// it needs loop information for the modified graph (the new block
// belongs to every enclosing loop).
func InsertPreheader(f *ir.Func, inLoop map[int]bool, header int) *ir.Block {
	pre := f.NewBlock()
	pre.Instrs = []ir.Instr{{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
	pre.Succs = []int{header}
	for _, b := range f.Blocks {
		if b.ID == pre.ID || inLoop[b.ID] {
			continue
		}
		for si, s := range b.Succs {
			if s == header {
				b.Succs[si] = pre.ID
			}
		}
	}
	f.RecomputePreds()
	return pre
}

// findLoops detects back edges (s -> h where h dominates s), builds
// each natural loop body, and accumulates nesting depth: a block in
// the bodies of d distinct loop headers has depth d.
func (info *Info) findLoops(f *ir.Func) {
	// Gather loop bodies per header so multiple back edges to the
	// same header form one loop.
	bodies := make(map[int]map[int]bool)
	var headers []int
	for _, b := range f.Blocks {
		if info.RPONum[b.ID] < 0 {
			continue
		}
		for _, s := range b.Succs {
			if !info.Dominates(s, b.ID) {
				continue
			}
			body, ok := bodies[s]
			if !ok {
				body = map[int]bool{s: true}
				bodies[s] = body
				headers = append(headers, s)
			}
			// Walk predecessors backward from the latch.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range f.Blocks[x].Preds {
					if info.RPONum[p] >= 0 {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, h := range headers {
		var blocks []int
		for b := range bodies[h] {
			blocks = append(blocks, b)
			info.Depth[b]++
		}
		sort.Ints(blocks) // deterministic order for clients (e.g. LICM)
		info.Loops = append(info.Loops, Loop{Header: h, Blocks: blocks})
	}
}
