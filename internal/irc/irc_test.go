package irc_test

import (
	"testing"

	"regalloc/internal/color"
	"regalloc/internal/dataflow"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/irc"
	"regalloc/internal/machine"
)

func kRTPC(c ir.Class) int {
	if c == ir.ClassInt {
		return 16
	}
	return 8
}

func flatCost(n int) []float64 {
	cost := make([]float64, n)
	for i := range cost {
		cost[i] = 1
	}
	return cost
}

// runPlain colors f with no machine model and verifies the coloring
// against the interference graph it was computed from.
func runPlain(t *testing.T, f *ir.Func, kf func(ir.Class) int) *irc.Result {
	t.Helper()
	g := ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 0, nil)
	mg := ig.WrapPlain(g)
	res := irc.Color(f, mg, flatCost(mg.NumVRegs), kf, color.CostOverDegree, nil)
	checkColors(t, mg, res, kf)
	return res
}

func checkColors(t *testing.T, mg *ig.MachineGraph, res *irc.Result, kf func(ir.Class) int) {
	t.Helper()
	spilled := make(map[int32]bool)
	for _, v := range res.Spilled {
		spilled[v] = true
	}
	for a := int32(0); int(a) < mg.NumNodes(); a++ {
		c := res.Colors[a]
		if int(a) < mg.NumVRegs && c == color.NoColor {
			if !spilled[a] && !aliasSpilled(res, mg, a, spilled) {
				t.Fatalf("vreg %d uncolored but not spilled", a)
			}
			continue
		}
		if c == color.NoColor {
			continue
		}
		if int(c) >= kf(mg.Class(a)) {
			t.Fatalf("node %d: color %d out of range", a, c)
		}
		for b := a + 1; int(b) < mg.NumNodes(); b++ {
			if mg.Interfere(a, b) && res.Colors[b] == c {
				t.Fatalf("nodes %d and %d interfere but share color %d", a, b, c)
			}
		}
	}
}

// aliasSpilled reports whether a coalesced member's web spilled.
func aliasSpilled(res *irc.Result, mg *ig.MachineGraph, a int32, spilled map[int32]bool) bool {
	// members of a spilled web inherit NoColor without joining Spilled.
	for _, v := range res.Spilled {
		if res.Colors[v] == res.Colors[a] { // both NoColor
			_ = v
			return true
		}
	}
	return false
}

// chainFunc builds a copy chain a = const; b = a; c = b; ret c where
// every copy is coalescable.
func chainFunc() *ir.Func {
	f := &ir.Func{Name: "chain"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 7},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpMove, Dst: c, A: b, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f
}

func TestCoalescesCopyChain(t *testing.T) {
	f := chainFunc()
	res := runPlain(t, f, kRTPC)
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v on a trivial chain", res.Spilled)
	}
	if res.CoalescedIR != 2 {
		t.Fatalf("CoalescedIR = %d, want 2", res.CoalescedIR)
	}
	deleted := res.ApplyRewrite(f)
	if deleted != 2 {
		t.Fatalf("ApplyRewrite deleted %d moves, want 2", deleted)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("rewritten function invalid: %v", err)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].IsMove() {
				t.Fatalf("move survived the rewrite: %+v", b.Instrs[i])
			}
		}
	}
}

// TestConstrainedMove: dst and src of a copy are simultaneously live
// afterwards, so the move is constrained and both get distinct colors.
func TestConstrainedMove(t *testing.T) {
	f := &ir.Func{Name: "constrained"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpAdd, Dst: b, A: b, B: b, C: ir.NoReg},
		{Op: ir.OpAdd, Dst: c, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	res := runPlain(t, f, kRTPC)
	if res.CoalescedIR != 0 {
		t.Fatalf("coalesced an interfering move (CoalescedIR=%d)", res.CoalescedIR)
	}
	if res.Constrained == 0 {
		t.Fatal("the a->b move interferes; expected a constrained transition")
	}
	if res.Colors[int32(a)] == res.Colors[int32(b)] {
		t.Fatal("interfering move ends share a color")
	}
}

// TestSpillUnderPressure: more simultaneously live values than
// registers forces a spill, and the spilled node is reported.
func TestSpillUnderPressure(t *testing.T) {
	f := &ir.Func{Name: "pressure"}
	var regs []ir.Reg
	for i := 0; i < 4; i++ {
		regs = append(regs, f.NewReg(ir.ClassInt))
	}
	sum := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	for i, r := range regs {
		blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpConst, Dst: r, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: int64(i)})
	}
	blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpAdd, Dst: sum, A: regs[0], B: regs[1], C: ir.NoReg})
	blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpAdd, Dst: sum, A: sum, B: regs[2], C: ir.NoReg})
	blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpAdd, Dst: sum, A: sum, B: regs[3], C: ir.NoReg})
	blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: sum, B: ir.NoReg, C: ir.NoReg})
	f.RecomputePreds()

	k2 := func(ir.Class) int { return 2 }
	g := ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 0, nil)
	mg := ig.WrapPlain(g)
	res := irc.Color(f, mg, flatCost(mg.NumVRegs), k2, color.CostOverDegree, nil)
	if len(res.Spilled) == 0 {
		t.Fatal("4 values live at once with k=2 must spill")
	}
	checkColors(t, mg, res, k2)
}

// paramRetFunc builds f(p) = p + 1; return — p is an argument and the
// result feeds the return register, so with a machine model both ends
// are convention-bound.
func paramRetFunc() (*ir.Func, ir.Reg, ir.Reg) {
	f := &ir.Func{Name: "inc", HasRet: true, RetCls: ir.ClassInt}
	p := f.NewReg(ir.ClassInt)
	one := f.NewReg(ir.ClassInt)
	r := f.NewReg(ir.ClassInt)
	f.Params = []ir.Reg{p}
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: p, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpConst, Dst: one, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpAdd, Dst: r, A: p, B: one, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: r, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f, p, r
}

// TestMachineBindingsPinColors: under a machine model, the parameter
// coalesces with its argument register (George's test against a
// precolored node) and the returned value with the return register.
func TestMachineBindingsPinColors(t *testing.T) {
	f, p, r := paramRetFunc()
	m := machine.RTPC()
	mg := ig.BuildWithMachine(f, dataflow.ComputeLiveness(f), m, nil)
	res := irc.Color(f, mg, flatCost(mg.NumVRegs), m.K, color.CostOverDegree, nil)
	checkColors(t, mg, res, m.K)
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v", res.Spilled)
	}
	if res.CoalescedMachine < 2 {
		t.Fatalf("CoalescedMachine = %d, want >= 2 (param and ret bindings)", res.CoalescedMachine)
	}
	if got := res.Colors[int32(p)]; got != m.ArgRegs[ir.ClassInt][0] {
		t.Fatalf("param color = %d, want argument register %d", got, m.ArgRegs[ir.ClassInt][0])
	}
	if got := res.Colors[int32(r)]; got != m.RetReg[ir.ClassInt] {
		t.Fatalf("result color = %d, want return register %d", got, m.RetReg[ir.ClassInt])
	}
	// The rewrite keeps virtual names for webs pinned to physical
	// registers and must leave a valid function behind.
	res.ApplyRewrite(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("rewritten function invalid: %v", err)
	}
}

// TestCallCrossingPrefersCalleeSaved: a value live across a call must
// not land in a caller-saved register.
func TestCallCrossingPrefersCalleeSaved(t *testing.T) {
	f := &ir.Func{Name: "cross"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 3},
		{Op: ir.OpCall, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: "g"},
		{Op: ir.OpAdd, Dst: b, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	m := machine.RTPC()
	mg := ig.BuildWithMachine(f, dataflow.ComputeLiveness(f), m, nil)
	res := irc.Color(f, mg, flatCost(mg.NumVRegs), m.K, color.CostOverDegree, nil)
	checkColors(t, mg, res, m.K)
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v", res.Spilled)
	}
	if c := res.Colors[int32(a)]; m.IsCallerSaved(ir.ClassInt, c) {
		t.Fatalf("call-crossing value colored caller-saved r%d", c)
	}
}

// TestSpillTempCoalescePolicy: moves in and out of spill temporaries
// keep their FlagSpillTemp ends out of the default move worklist (a
// later spill round must never be forced to spill a widened
// temporary web), while Opts.CoalesceSpillTemps admits them on a
// terminal round. Either way the copy disappears from the rewritten
// code: if the worklist machine did not merge it, move-biased select
// parks both ends on one color and ApplyRewrite elides it.
func TestSpillTempCoalescePolicy(t *testing.T) {
	mk := func() (*ir.Func, ir.Reg, ir.Reg) {
		f := &ir.Func{Name: "spilltemp"}
		a := f.NewReg(ir.ClassInt)
		tmp := f.NewSpillTemp(ir.ClassInt)
		blk := f.NewBlock()
		blk.Instrs = []ir.Instr{
			{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 5},
			{Op: ir.OpMove, Dst: tmp, A: a, B: ir.NoReg, C: ir.NoReg},
			{Op: ir.OpRet, Dst: ir.NoReg, A: tmp, B: ir.NoReg, C: ir.NoReg},
		}
		f.RecomputePreds()
		return f, a, tmp
	}

	f, _, _ := mk()
	res := runPlain(t, f, kRTPC)
	if res.CoalescedIR != 0 {
		t.Fatalf("default round coalesced a spill-temp move (CoalescedIR=%d)", res.CoalescedIR)
	}
	if deleted := res.ApplyRewrite(f); deleted != 1 {
		t.Fatalf("color elision deleted %d moves, want 1", deleted)
	}

	f, _, _ = mk()
	g := ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 0, nil)
	mg := ig.WrapPlain(g)
	res = irc.ColorWith(f, mg, flatCost(mg.NumVRegs), kRTPC, color.CostOverDegree, nil, irc.Opts{CoalesceSpillTemps: true})
	checkColors(t, mg, res, kRTPC)
	if res.CoalescedIR != 1 {
		t.Fatalf("terminal round left the spill-temp move uncoalesced (CoalescedIR=%d)", res.CoalescedIR)
	}
	if deleted := res.ApplyRewrite(f); deleted != 1 {
		t.Fatalf("rewrite deleted %d moves, want 1", deleted)
	}
}

// TestDeterministic: two runs over the same function produce
// identical colorings and statistics.
func TestDeterministic(t *testing.T) {
	f := chainFunc()
	g1 := ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 0, nil)
	g2 := ig.BuildWithLiveness(f, dataflow.ComputeLiveness(f), 0, nil)
	r1 := irc.Color(f, ig.WrapPlain(g1), flatCost(3), kRTPC, color.CostOverDegree, nil)
	r2 := irc.Color(f, ig.WrapPlain(g2), flatCost(3), kRTPC, color.CostOverDegree, nil)
	if len(r1.Colors) != len(r2.Colors) {
		t.Fatal("color slices differ in length")
	}
	for i := range r1.Colors {
		if r1.Colors[i] != r2.Colors[i] {
			t.Fatalf("node %d: %d vs %d across runs", i, r1.Colors[i], r2.Colors[i])
		}
	}
	if r1.CoalescedIR != r2.CoalescedIR || r1.Frozen != r2.Frozen {
		t.Fatal("statistics differ across runs")
	}
}
