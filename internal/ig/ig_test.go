package ig_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

func TestGraphBasics(t *testing.T) {
	g := ig.New([]ir.Class{ir.ClassInt, ir.ClassInt, ir.ClassFloat})
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(0, 0) // self edge: ignored
	g.AddEdge(0, 2) // cross class: ignored
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if !g.Interfere(0, 1) || !g.Interfere(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.Interfere(0, 2) {
		t.Fatal("cross-class interference recorded")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
}

// TestGraphSymmetryProperty: Interfere(a,b) == Interfere(b,a) and
// degree equals adjacency length on random graphs.
func TestGraphSymmetryProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		g, _ := graphgen.Random(40, 0.25, seed)
		for a := int32(0); a < 40; a++ {
			if g.Degree(a) != len(g.Neighbors(a)) {
				return false
			}
			for _, b := range g.Neighbors(a) {
				if !g.Interfere(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildInterference compiles nothing — it builds a tiny function
// by hand and checks the interference edges are exactly the
// simultaneously-live pairs, with the move-source exception.
func TestBuildInterference(t *testing.T) {
	f := &ir.Func{Name: "B"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpConst, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpAdd, Dst: c, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpAdd, Dst: c, A: c, B: a, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	g := ig.Build(f)
	if !g.Interfere(int32(a), int32(b)) {
		t.Fatal("a and b are simultaneously live; must interfere")
	}
	if !g.Interfere(int32(a), int32(c)) {
		t.Fatal("c is defined while a is live; must interfere")
	}
	if g.Interfere(int32(b), int32(c)) {
		t.Fatal("b dies at the first add; must not interfere with c")
	}
}

// TestMoveSourceException: at "b = move a" with a dead afterward, a
// and b must not interfere (they can share a register — that is the
// whole point of coalescing).
func TestMoveSourceException(t *testing.T) {
	f := &ir.Func{Name: "M"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	g := ig.Build(f)
	if g.Interfere(int32(a), int32(b)) {
		t.Fatal("move dst/src should not interfere")
	}
}

// TestWorklistSmallestLast verifies the Matula–Beck machinery: on
// any graph, repeatedly removing a minimum-degree node yields a
// smallest-last order — every removed node has remaining degree <=
// the minimum degree of what remains at that step; and the total
// bucket-scan work respects the linear bound.
func TestWorklistSmallestLast(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g, _ := graphgen.Random(80, 0.15, seed)
		w := ig.NewWorklist(g, ir.ClassInt)
		prevCheck := func(d int32) bool {
			// every remaining node must have degree >= d... that IS
			// min-degree by construction; verify directly:
			min := int32(1 << 30)
			w.ForEachRemaining(func(a int32) {
				if w.Degree(a) < min {
					min = w.Degree(a)
				}
			})
			return min >= d
		}
		for w.Remaining() > 0 {
			n := w.MinDegreeNode()
			d := w.Degree(n)
			if !prevCheck(d) {
				t.Fatalf("seed %d: node %d with degree %d is not minimum", seed, n, d)
			}
			w.Remove(n)
		}
		// Linear bound: scan work <= |V| + 2|E| plus one pass per
		// node for bucket restarts.
		bound := 2*g.NumEdges() + 2*g.NumNodes()
		if w.ScanSteps > bound {
			t.Fatalf("seed %d: scan steps %d exceed linear bound %d", seed, w.ScanSteps, bound)
		}
	}
}

func TestWorklistDegreeTracking(t *testing.T) {
	// Path 0-1-2: removing the middle node drops both ends to 0.
	g := ig.New(make([]ir.Class, 3))
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	w := ig.NewWorklist(g, ir.ClassInt)
	if w.Degree(1) != 2 {
		t.Fatalf("deg(1) = %d", w.Degree(1))
	}
	w.Remove(1)
	if w.Degree(0) != 0 || w.Degree(2) != 0 {
		t.Fatal("neighbor degrees not decremented")
	}
	if w.Remaining() != 2 {
		t.Fatalf("remaining = %d", w.Remaining())
	}
	if !w.Removed(1) || w.Removed(0) {
		t.Fatal("removed flags wrong")
	}
}

func TestWorklistClassFilter(t *testing.T) {
	classes := []ir.Class{ir.ClassInt, ir.ClassFloat, ir.ClassInt}
	g := ig.New(classes)
	g.AddEdge(0, 2)
	w := ig.NewWorklist(g, ir.ClassFloat)
	if w.Remaining() != 1 {
		t.Fatalf("float worklist remaining = %d, want 1", w.Remaining())
	}
	n := w.MinDegreeNode()
	if n != 1 {
		t.Fatalf("min node = %d, want the float node 1", n)
	}
}

// TestBitMatrixAndHashAgree drives both edge representations (the
// dense triangular bit matrix for small graphs, the hash set above
// the size threshold) and checks they answer identically.
func TestBitMatrixAndHashAgree(t *testing.T) {
	// 3000 nodes forces the hash path; a 120-node subgraph mirrored
	// into a small graph uses the matrix path.
	big := ig.New(make([]ir.Class, 3000))
	small := ig.New(make([]ir.Class, 120))
	rng := uint64(99)
	for i := 0; i < 2000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := int32(rng % 120)
		b := int32((rng >> 20) % 120)
		big.AddEdge(a, b)
		small.AddEdge(a, b)
	}
	if big.NumEdges() != small.NumEdges() {
		t.Fatalf("edge counts diverge: %d vs %d", big.NumEdges(), small.NumEdges())
	}
	for a := int32(0); a < 120; a++ {
		if big.Degree(a) != small.Degree(a) {
			t.Fatalf("degree(%d) diverges", a)
		}
		for b := int32(0); b < 120; b++ {
			if big.Interfere(a, b) != small.Interfere(a, b) {
				t.Fatalf("Interfere(%d,%d) diverges", a, b)
			}
		}
	}
}

// TestScanWorkBound pins the Matula–Beck linear-work guarantee that
// the resume-at-scanFrom refinement provides (and that a reverted
// "reset scanFrom to zero" guard would break): across a full
// simplification the bucket cells inspected stay within |V| + 2|E|.
// The worklist comment in MinDegreeNode points here.
func TestScanWorkBound(t *testing.T) {
	type input struct {
		name string
		g    *ig.Graph
	}
	var inputs []input
	for seed := uint64(1); seed <= 5; seed++ {
		g, _ := graphgen.Random(200, 0.08, seed)
		inputs = append(inputs, input{fmt.Sprintf("random-%d", seed), g})
	}
	for seed := uint64(1); seed <= 3; seed++ {
		g, _ := graphgen.SVDLike(60, 40, 8, 12, 3, seed)
		inputs = append(inputs, input{fmt.Sprintf("svdlike-%d", seed), g})
	}
	{
		g, _ := graphgen.Cycle(300)
		inputs = append(inputs, input{"cycle-300", g})
	}
	for _, in := range inputs {
		w := ig.NewWorklist(in.g, ir.ClassInt)
		nodes := w.Remaining()
		for w.Remaining() > 0 {
			w.Remove(w.MinDegreeNode())
		}
		bound := nodes + 2*in.g.NumEdges()
		if w.ScanSteps > bound {
			t.Errorf("%s: ScanSteps = %d exceeds |V|+2|E| = %d",
				in.name, w.ScanSteps, bound)
		}
	}
}
