// Command allocload drives a running allocd with a mixed corpus —
// the paper's workload programs, generated stress graphs, and fuzzed
// mini-FORTRAN subroutines — and reports latency percentiles, error
// rate, and cache hit rate as the `loadtest` section of a bench-json
// document (schema regalloc-bench/10).
//
// Every request carries a minted W3C traceparent header, so each one
// is a named trace in the target's telemetry. The report keeps the
// trace IDs of the slowest and errored requests (slow_trace_ids,
// error_trace_ids) and fetches their span trees from the target's
// flight recorder (GET /debug/requests) after the run; a failing SLO
// gate prints those IDs, so the evidence behind a tail regression is
// one lookup away rather than a re-run away.
//
//	allocd -addr :8080 &
//	allocload -addr http://localhost:8080 -duration 5s -conc 8 -out load.json
//
// Two load shapes:
//
//   - closed loop (default): -conc workers each keep exactly one
//     request in flight, so offered load adapts to service latency —
//     the right shape for throughput and saturation measurements.
//   - open loop (-rate R): requests start on a fixed R-per-second
//     schedule regardless of completions, the shape that exposes
//     queueing delay under a latency SLO (a closed loop politely
//     slows down with the server and hides it).
//
// The SLO gate: with -baseline FILE the run fails (exit 1) if its
// error rate exceeds -max-error-rate or its p99 exceeds the
// baseline's p99 by more than -max-p99-factor. CI keeps a checked-in
// baseline, so a PR that regresses tail latency fails the gate
// rather than landing quietly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regalloc/internal/fsutil"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the allocd instance to load")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	conc := flag.Int("conc", 8, "closed-loop workers (each keeps one request in flight)")
	rate := flag.Float64("rate", 0, "open-loop request rate per second (0: closed loop)")
	seed := flag.Uint64("seed", 1, "corpus shuffle seed (same seed, same request sequence)")
	out := flag.String("out", "", "write the bench-json report here (default stdout)")
	baselinePath := flag.String("baseline", "", "baseline bench-json report to gate against")
	maxP99 := flag.Float64("max-p99-factor", 5, "fail if p99 exceeds baseline p99 by this factor")
	maxErrRate := flag.Float64("max-error-rate", 0, "fail if the error rate exceeds this fraction")
	flag.Parse()

	corpus, err := buildCorpus(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocload: corpus:", err)
		os.Exit(1)
	}
	lt, err := runLoad(loadConfig{
		Addr:     *addr,
		Duration: *duration,
		Conc:     *conc,
		Rate:     *rate,
		Corpus:   corpus,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocload:", err)
		os.Exit(1)
	}
	report := newReport(lt)

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allocload:", err)
			os.Exit(1)
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "allocload:", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := fsutil.SyncClose(w); err != nil {
			fmt.Fprintln(os.Stderr, "allocload:", err)
			os.Exit(1)
		}
	}

	// The SLO gate runs after the report is safely written, so a
	// failing run still leaves its evidence behind.
	if *baselinePath != "" {
		if err := gate(lt, *baselinePath, *maxP99, *maxErrRate); err != nil {
			fmt.Fprintln(os.Stderr, "allocload: SLO gate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "allocload: SLO gate passed (p99 %s, error rate %.4f, cache hit rate %.2f)\n",
			time.Duration(lt.Latency.P99NS), lt.ErrorRate, lt.Cache.HitRate)
	}
}

// gate checks the run against a baseline report's loadtest section.
func gate(lt *loadtestSection, baselinePath string, maxP99Factor, maxErrRate float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.Loadtest == nil {
		return fmt.Errorf("%s: no loadtest section", baselinePath)
	}
	if lt.ErrorRate > maxErrRate {
		return fmt.Errorf("error rate %.4f exceeds %.4f (%d of %d requests failed)%s",
			lt.ErrorRate, maxErrRate, lt.Errors, lt.Requests,
			traceHint("errored traces", lt.ErrorTraceIDs))
	}
	if baseP99 := base.Loadtest.Latency.P99NS; baseP99 > 0 {
		limit := int64(float64(baseP99) * maxP99Factor)
		if lt.Latency.P99NS > limit {
			return fmt.Errorf("p99 %s exceeds %.1fx baseline p99 %s%s",
				time.Duration(lt.Latency.P99NS), maxP99Factor, time.Duration(baseP99),
				traceHint("slowest traces", lt.SlowTraceIDs))
		}
	}
	return nil
}

// traceHint renders the trace IDs a failing gate hands the operator —
// the lookup keys into the target's /debug/requests flight recorder.
func traceHint(label string, ids []string) string {
	if len(ids) == 0 {
		return ""
	}
	return fmt.Sprintf("; %s: %s", label, strings.Join(ids, " "))
}
