package encode_test

import (
	"reflect"
	"testing"

	"regalloc"
	"regalloc/internal/asm"
	"regalloc/internal/encode"
	"regalloc/internal/experiments"
	"regalloc/internal/workloads"
)

func assemble(t *testing.T, source string) (*regalloc.Program, *asm.Program) {
	t.Helper()
	prog, err := regalloc.Compile(source)
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := prog.Assemble(regalloc.RTPC(), regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog, code
}

// TestRoundTripStructural: decode(encode(p)) reproduces every
// instruction field of every function for the whole benchmark suite.
func TestRoundTripStructural(t *testing.T) {
	for _, w := range append(workloads.All(), workloads.Quicksort(), workloads.IntegerKernels()) {
		w := w
		t.Run(w.Program, func(t *testing.T) {
			_, code := assemble(t, w.Source)
			data, err := encode.EncodeProgram(code)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			back, err := encode.DecodeProgram(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(back.Funcs) != len(code.Funcs) {
				t.Fatalf("func count %d vs %d", len(back.Funcs), len(code.Funcs))
			}
			for i, f := range code.Funcs {
				g := back.Funcs[i]
				if g.Name != f.Name || g.HasRet != f.HasRet || g.RetCls != f.RetCls {
					t.Fatalf("%s: header mismatch", f.Name)
				}
				if g.Machine.NumGPR != f.Machine.NumGPR || g.Machine.NumFPR != f.Machine.NumFPR {
					t.Fatalf("%s: machine mismatch", f.Name)
				}
				if !reflect.DeepEqual(g.ParamCls, f.ParamCls) {
					t.Fatalf("%s: params mismatch", f.Name)
				}
				if len(g.Code) != len(f.Code) {
					t.Fatalf("%s: %d vs %d instructions", f.Name, len(g.Code), len(f.Code))
				}
				for j := range f.Code {
					a, b := f.Code[j], g.Code[j]
					// T1 is always -1 in lowered code and not encoded.
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("%s[%d]: %+v vs %+v", f.Name, j, a, b)
					}
				}
			}
		})
	}
}

// TestRoundTripExecutable: a decoded program runs and produces the
// same results as the original.
func TestRoundTripExecutable(t *testing.T) {
	prog, code := assemble(t, workloads.Quicksort().Source)
	data, err := encode.EncodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	back, err := encode.DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.RunQuicksortN(experiments.VMEngine{M: regalloc.NewVM(code, prog.MemWords())}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiments.RunQuicksortN(experiments.VMEngine{M: regalloc.NewVM(back, prog.MemWords())}, 3000)
	if err != nil {
		t.Fatalf("decoded program failed: %v", err)
	}
	if got != want {
		t.Fatalf("decoded program computed %x, want %x", got, want)
	}
}

// TestDecodeRejectsGarbage: corrupted inputs produce errors, never
// panics.
func TestDecodeRejectsGarbage(t *testing.T) {
	_, code := assemble(t, workloads.Quicksort().Source)
	data, err := encode.EncodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		data[:len(data)/2],
		append([]byte{9, 9, 9, 9}, data[4:]...), // bad magic
	}
	for i, c := range cases {
		if _, err := encode.DecodeProgram(c); err == nil {
			t.Errorf("case %d: corrupted input decoded without error", i)
		}
	}
	// Flipping the version byte must fail cleanly.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if _, err := encode.DecodeProgram(bad); err == nil {
		t.Error("bad version accepted")
	}
	// Trailing garbage detected.
	if _, err := encode.DecodeProgram(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestEncodedDensity: the variable-length object format should beat
// a naive fixed 4-bytes-per-instruction image on real code.
func TestEncodedDensity(t *testing.T) {
	_, code := assemble(t, workloads.SVD().Source)
	data, err := encode.EncodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	instrs := 0
	for _, f := range code.Funcs {
		instrs += len(f.Code)
	}
	perInstr := float64(len(data)) / float64(instrs)
	if perInstr > 8 {
		t.Fatalf("encoding too loose: %.1f bytes/instruction", perInstr)
	}
	t.Logf("encoded %d instructions into %d bytes (%.2f B/instr)", instrs, len(data), perInstr)
}
