// Package ir defines the three-address intermediate representation
// that the register allocator operates on.
//
// A Func is a control-flow graph of basic blocks over an unbounded
// set of virtual registers. Each virtual register belongs to one of
// two classes, matching the paper's target (the IBM RT/PC): integer
// values live in general-purpose registers, floating-point values in
// the coprocessor's floating-point registers. Register allocation
// maps virtual registers of each class onto k physical registers of
// that class, inserting spill code when it cannot.
//
// Memory is a flat array of 64-bit words. Local arrays and spill
// slots are statically allocated (as FORTRAN 77 storage was): each
// function owns a static region [StaticBase, StaticBase+StaticSize)
// for locals followed by its spill slots.
package ir

import (
	"fmt"
	"io"
	"strings"
)

// Class is a register class.
type Class uint8

// Register classes.
const (
	ClassInt   Class = iota // general-purpose (integer) registers
	ClassFloat              // floating-point registers
	NumClasses = 2
)

func (c Class) String() string {
	if c == ClassInt {
		return "int"
	}
	return "flt"
}

// Reg names a virtual register (before allocation) or a physical
// register (after). NoReg marks an absent operand.
type Reg int32

// NoReg is the absent-operand sentinel.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comment shows the reading of each instruction;
// "m[x]" is the word of memory at address x.
const (
	OpNop   Op = iota
	OpParam    // Dst = parameter #Imm (entry-block prologue only)
	OpConst    // Dst = Imm (int) or FImm (float), by class of Dst
	OpMove     // Dst = A
	OpItoF     // Dst(flt) = float(A(int))
	OpFtoI     // Dst(int) = trunc(A(flt))

	// Integer arithmetic: Dst = A op B (OpNeg/OpIAbs use A only).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpIMin
	OpIMax
	OpIAbs
	OpISign // Dst = |A| * sign(B)
	OpIPow  // Dst = A**B (B >= 0)
	OpAddI  // Dst = A + Imm (the target's 16-bit immediate form)
	OpMulI  // Dst = A * Imm

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFMin
	OpFMax
	OpFAbs
	OpFSqrt
	OpFExp
	OpFLog
	OpFSin
	OpFCos
	OpFSign // Dst = |A| * sign(B)
	OpFMod  // Dst = fmod(A, B)
	OpFPow  // Dst = A**B

	// Memory. Effective address = (B) + (C) + Imm, where absent
	// (NoReg) register operands contribute zero. The class of the
	// moved value is the class of Dst (load) or A (store).
	OpLoad  // Dst = m[B + C + Imm]
	OpStore // m[B + C + Imm] = A

	// Spill traffic. Slot numbers are function-local; the backend
	// places slot s at address StaticBase + StaticSize + s.
	OpSpillLoad  // Dst = slot[Imm]
	OpSpillStore // slot[Imm] = A

	// Control transfer. These appear only as a block's final
	// instruction.
	OpBr   // goto Succs[0]
	OpBrIf // if cmp.Cls(A Cmp B) goto Succs[0] else Succs[1]
	OpRet  // return (value in A if present)

	// Call: Dst (optional) = Callee(Args...). The simulator gives
	// each activation its own register file, so a call clobbers no
	// caller registers (see DESIGN.md on calling-convention scope).
	OpCall

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpParam: "param", OpConst: "const", OpMove: "move",
	OpItoF: "itof", OpFtoI: "ftoi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpIMin: "imin", OpIMax: "imax", OpIAbs: "iabs",
	OpISign: "isign", OpIPow: "ipow", OpAddI: "addi", OpMulI: "muli",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFMin: "fmin", OpFMax: "fmax", OpFAbs: "fabs",
	OpFSqrt: "fsqrt", OpFExp: "fexp", OpFLog: "flog", OpFSin: "fsin",
	OpFCos: "fcos", OpFSign: "fsign", OpFMod: "fmod", OpFPow: "fpow",
	OpLoad: "load", OpStore: "store",
	OpSpillLoad: "spld", OpSpillStore: "spst",
	OpBr: "br", OpBrIf: "brif", OpRet: "ret", OpCall: "call",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpBrIf || op == OpRet }

// Cmp is a comparison kind for OpBrIf.
type Cmp uint8

// Comparison kinds.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cmp) String() string { return cmpNames[c] }

// Negate returns the complementary comparison.
func (c Cmp) Negate() Cmp {
	switch c {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	default:
		return CmpLT
	}
}

// Instr is one three-address instruction.
type Instr struct {
	Op      Op
	Dst     Reg // defined register, or NoReg
	A, B, C Reg // operands, NoReg if unused
	Imm     int64
	FImm    float64
	Cmp     Cmp
	Cls     Class // comparison class for OpBrIf
	Callee  string
	Args    []Reg // call arguments
}

// Def returns the register defined by the instruction, or NoReg.
func (in *Instr) Def() Reg { return in.Dst }

// AppendUses appends the registers the instruction reads to buf and
// returns the extended slice.
func (in *Instr) AppendUses(buf []Reg) []Reg {
	for _, r := range [3]Reg{in.A, in.B, in.C} {
		if r != NoReg {
			buf = append(buf, r)
		}
	}
	if in.Op == OpCall {
		buf = append(buf, in.Args...)
	}
	return buf
}

// IsMove reports whether the instruction is a register-to-register
// copy (a coalescing candidate).
func (in *Instr) IsMove() bool { return in.Op == OpMove }

// Flags carries per-register annotations used by the allocator.
type Flags uint8

// Register flags.
const (
	// FlagSpillTemp marks a register introduced by spill code. Such
	// ranges are minimal by construction; they get effectively
	// infinite spill cost so the allocator never re-spills them.
	FlagSpillTemp Flags = 1 << iota
	// FlagSplitTemp marks a loop-long subrange created by the
	// splitting spiller (a reload hoisted to a loop preheader). It
	// keeps a normal spill cost, but if it must spill again it
	// spills everywhere — re-splitting it would recreate the same
	// range forever.
	FlagSplitTemp
)

// Block is a basic block. The final instruction is always a
// terminator (OpBr/OpBrIf/OpRet); Succs holds the IDs of successor
// blocks in branch order.
type Block struct {
	ID     int
	Instrs []Instr
	Succs  []int
	Preds  []int
	Depth  int // loop nesting depth, filled by cfg.Analyze
}

// Func is a function in IR form.
type Func struct {
	Name    string
	Params  []Reg // registers holding incoming parameters, in order
	HasRet  bool
	RetCls  Class
	Blocks  []*Block
	regCls  []Class
	regFlag []Flags

	// Static storage layout (word addresses).
	StaticBase int64 // start of this function's static area
	StaticSize int64 // words of local-array storage
	NumSlots   int64 // spill slots allocated so far
}

// NumRegs returns the number of virtual registers in the function.
func (f *Func) NumRegs() int { return len(f.regCls) }

// NewReg allocates a fresh virtual register of class c.
func (f *Func) NewReg(c Class) Reg {
	f.regCls = append(f.regCls, c)
	f.regFlag = append(f.regFlag, 0)
	return Reg(len(f.regCls) - 1)
}

// NewSpillTemp allocates a fresh register flagged as spill traffic.
func (f *Func) NewSpillTemp(c Class) Reg {
	r := f.NewReg(c)
	f.regFlag[r] |= FlagSpillTemp
	return r
}

// RegClass returns the class of register r.
func (f *Func) RegClass(r Reg) Class { return f.regCls[r] }

// RegFlags returns the flags of register r.
func (f *Func) RegFlags(r Reg) Flags { return f.regFlag[r] }

// SetRegFlags replaces the flags of register r.
func (f *Func) SetRegFlags(r Reg, fl Flags) { f.regFlag[r] = fl }

// ResetRegs discards all registers and installs the given classes
// and flags; used by the renumbering pass.
func (f *Func) ResetRegs(cls []Class, flags []Flags) {
	f.regCls = cls
	f.regFlag = flags
}

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewSlot allocates a fresh spill slot and returns its number.
func (f *Func) NewSlot() int64 {
	s := f.NumSlots
	f.NumSlots++
	return s
}

// SlotAddr returns the absolute word address of spill slot s.
func (f *Func) SlotAddr(s int64) int64 { return f.StaticBase + f.StaticSize + s }

// RecomputePreds rebuilds every block's Preds from Succs.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.ID)
		}
	}
}

// Clone returns a deep copy of f. The allocator works on a clone so
// callers keep the pristine IR for re-running with other heuristics.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:       f.Name,
		Params:     append([]Reg(nil), f.Params...),
		HasRet:     f.HasRet,
		RetCls:     f.RetCls,
		regCls:     append([]Class(nil), f.regCls...),
		regFlag:    append([]Flags(nil), f.regFlag...),
		StaticBase: f.StaticBase,
		StaticSize: f.StaticSize,
		NumSlots:   f.NumSlots,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{
			ID:     b.ID,
			Instrs: make([]Instr, len(b.Instrs)),
			Succs:  append([]int(nil), b.Succs...),
			Preds:  append([]int(nil), b.Preds...),
			Depth:  b.Depth,
		}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if nb.Instrs[j].Args != nil {
				nb.Instrs[j].Args = append([]Reg(nil), nb.Instrs[j].Args...)
			}
		}
		nf.Blocks[i] = nb
	}
	return nf
}

// NumInstrs returns the total instruction count.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Program is a compiled set of functions sharing a static-memory
// layout.
type Program struct {
	Funcs  []*Func
	byName map[string]*Func
	// StaticStart is the first word address used for static data;
	// everything below it is available to drivers for argument
	// arrays. StaticEnd is one past the last allocated static word.
	StaticStart int64
	StaticEnd   int64
}

// NewProgram returns an empty program whose static data starts at
// the given word address.
func NewProgram(staticStart int64) *Program {
	return &Program{byName: make(map[string]*Func), StaticStart: staticStart, StaticEnd: staticStart}
}

// Add appends a function to the program.
func (p *Program) Add(f *Func) {
	p.Funcs = append(p.Funcs, f)
	p.byName[f.Name] = f
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	if p == nil {
		return nil
	}
	return p.byName[name]
}

// regName renders a register for the printer.
func regName(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", r)
}

// Fprint writes a readable listing of f to w.
func Fprint(w io.Writer, f *Func) {
	fmt.Fprintf(w, "func %s (regs=%d, blocks=%d, static=[%d,+%d), slots=%d)\n",
		f.Name, f.NumRegs(), len(f.Blocks), f.StaticBase, f.StaticSize, f.NumSlots)
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "b%d: (depth=%d, preds=%v)\n", b.ID, b.Depth, b.Preds)
		for i := range b.Instrs {
			fmt.Fprintf(w, "\t%s\n", SprintInstr(f, &b.Instrs[i], b))
		}
	}
}

// SprintInstr renders one instruction.
func SprintInstr(f *Func, in *Instr, b *Block) string {
	var s strings.Builder
	switch in.Op {
	case OpParam:
		fmt.Fprintf(&s, "%s = param #%d", regName(in.Dst), in.Imm)
	case OpConst:
		if f != nil && in.Dst != NoReg && f.RegClass(in.Dst) == ClassFloat {
			fmt.Fprintf(&s, "%s = const %g", regName(in.Dst), in.FImm)
		} else {
			fmt.Fprintf(&s, "%s = const %d", regName(in.Dst), in.Imm)
		}
	case OpLoad:
		fmt.Fprintf(&s, "%s = load [%s+%s+%d]", regName(in.Dst), regName(in.B), regName(in.C), in.Imm)
	case OpStore:
		fmt.Fprintf(&s, "store [%s+%s+%d] = %s", regName(in.B), regName(in.C), in.Imm, regName(in.A))
	case OpAddI, OpMulI:
		fmt.Fprintf(&s, "%s = %s %s, %d", regName(in.Dst), in.Op, regName(in.A), in.Imm)
	case OpSpillLoad:
		fmt.Fprintf(&s, "%s = spld slot%d", regName(in.Dst), in.Imm)
	case OpSpillStore:
		fmt.Fprintf(&s, "spst slot%d = %s", in.Imm, regName(in.A))
	case OpBr:
		fmt.Fprintf(&s, "br b%d", in.targetOr(b, 0))
	case OpBrIf:
		fmt.Fprintf(&s, "brif.%s %s %s %s -> b%d b%d", in.Cls, regName(in.A), in.Cmp, regName(in.B),
			in.targetOr(b, 0), in.targetOr(b, 1))
	case OpRet:
		if in.A != NoReg {
			fmt.Fprintf(&s, "ret %s", regName(in.A))
		} else {
			s.WriteString("ret")
		}
	case OpCall:
		if in.Dst != NoReg {
			fmt.Fprintf(&s, "%s = call %s(", regName(in.Dst), in.Callee)
		} else {
			fmt.Fprintf(&s, "call %s(", in.Callee)
		}
		for i, a := range in.Args {
			if i > 0 {
				s.WriteString(", ")
			}
			s.WriteString(regName(a))
		}
		s.WriteString(")")
	default:
		if in.Dst != NoReg {
			fmt.Fprintf(&s, "%s = %s", regName(in.Dst), in.Op)
		} else {
			s.WriteString(in.Op.String())
		}
		for _, r := range [3]Reg{in.A, in.B, in.C} {
			if r != NoReg {
				fmt.Fprintf(&s, " %s", regName(r))
			}
		}
	}
	return s.String()
}

func (in *Instr) targetOr(b *Block, i int) int {
	if b != nil && i < len(b.Succs) {
		return b.Succs[i]
	}
	return -1
}

// Validate checks structural invariants of f: every block ends with
// exactly one terminator (and has no terminator earlier), successor
// counts match the terminator kind, Preds mirror Succs, operand
// register classes are consistent, and all register numbers are in
// range. It returns the first violation found, or nil.
func Validate(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	predCheck := make(map[[2]int]int)
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block %d has ID %d", f.Name, i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: b%d is empty", f.Name, i)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			last := j == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("%s: b%d instr %d: terminator placement", f.Name, i, j)
			}
			if err := f.validateInstr(in, b); err != nil {
				return fmt.Errorf("%s: b%d instr %d (%s): %w", f.Name, i, j, SprintInstr(f, in, b), err)
			}
		}
		want := 0
		switch b.Instrs[len(b.Instrs)-1].Op {
		case OpBr:
			want = 1
		case OpBrIf:
			want = 2
		}
		if len(b.Succs) != want {
			return fmt.Errorf("%s: b%d has %d successors, want %d", f.Name, i, len(b.Succs), want)
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("%s: b%d successor %d out of range", f.Name, i, s)
			}
			predCheck[[2]int{i, s}]++
		}
	}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			if predCheck[[2]int{p, b.ID}] == 0 {
				return fmt.Errorf("%s: b%d lists pred b%d without matching succ", f.Name, b.ID, p)
			}
		}
	}
	return nil
}

func (f *Func) validateInstr(in *Instr, b *Block) error {
	check := func(r Reg, want Class, what string) error {
		if r == NoReg {
			return nil
		}
		if int(r) < 0 || int(r) >= f.NumRegs() {
			return fmt.Errorf("%s register v%d out of range", what, r)
		}
		if f.RegClass(r) != want {
			return fmt.Errorf("%s register v%d has class %s, want %s", what, r, f.RegClass(r), want)
		}
		return nil
	}
	anyClass := func(r Reg) error {
		if r != NoReg && (int(r) < 0 || int(r) >= f.NumRegs()) {
			return fmt.Errorf("register v%d out of range", r)
		}
		return nil
	}
	intOps := func(rs ...Reg) error {
		for _, r := range rs {
			if err := check(r, ClassInt, "operand"); err != nil {
				return err
			}
		}
		return nil
	}
	fltOps := func(rs ...Reg) error {
		for _, r := range rs {
			if err := check(r, ClassFloat, "operand"); err != nil {
				return err
			}
		}
		return nil
	}
	switch in.Op {
	case OpNop, OpParam, OpConst:
		return anyClass(in.Dst)
	case OpMove:
		if err := anyClass(in.Dst); err != nil {
			return err
		}
		if err := anyClass(in.A); err != nil {
			return err
		}
		if in.Dst != NoReg && in.A != NoReg && f.RegClass(in.Dst) != f.RegClass(in.A) {
			return fmt.Errorf("move between classes")
		}
	case OpItoF:
		if err := check(in.Dst, ClassFloat, "dst"); err != nil {
			return err
		}
		return intOps(in.A)
	case OpFtoI:
		if err := check(in.Dst, ClassInt, "dst"); err != nil {
			return err
		}
		return fltOps(in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpIMin, OpIMax, OpISign, OpIPow:
		if err := check(in.Dst, ClassInt, "dst"); err != nil {
			return err
		}
		return intOps(in.A, in.B)
	case OpNeg, OpIAbs, OpAddI, OpMulI:
		if err := check(in.Dst, ClassInt, "dst"); err != nil {
			return err
		}
		return intOps(in.A)
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMin, OpFMax, OpFSign, OpFMod, OpFPow:
		if err := check(in.Dst, ClassFloat, "dst"); err != nil {
			return err
		}
		return fltOps(in.A, in.B)
	case OpFNeg, OpFAbs, OpFSqrt, OpFExp, OpFLog, OpFSin, OpFCos:
		if err := check(in.Dst, ClassFloat, "dst"); err != nil {
			return err
		}
		return fltOps(in.A)
	case OpLoad:
		if err := anyClass(in.Dst); err != nil {
			return err
		}
		return intOps(in.B, in.C)
	case OpStore:
		if err := anyClass(in.A); err != nil {
			return err
		}
		return intOps(in.B, in.C)
	case OpSpillLoad:
		return anyClass(in.Dst)
	case OpSpillStore:
		return anyClass(in.A)
	case OpBr:
		return nil
	case OpBrIf:
		if in.Cls == ClassInt {
			return intOps(in.A, in.B)
		}
		return fltOps(in.A, in.B)
	case OpRet:
		return anyClass(in.A)
	case OpCall:
		if err := anyClass(in.Dst); err != nil {
			return err
		}
		for _, a := range in.Args {
			if err := anyClass(a); err != nil {
				return err
			}
		}
	}
	return nil
}
