package machine

import (
	"testing"

	"regalloc/internal/ir"
	"regalloc/internal/target"
)

func TestRTPCShape(t *testing.T) {
	m := RTPC()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.K(ir.ClassInt) != 16 || m.K(ir.ClassFloat) != 8 {
		t.Fatalf("K = %d/%d, want 16/8", m.K(ir.ClassInt), m.K(ir.ClassFloat))
	}
	if m.CallerSaved[ir.ClassInt] != 8 || m.CallerSaved[ir.ClassFloat] != 4 {
		t.Fatalf("caller-saved = %d/%d, want 8/4", m.CallerSaved[ir.ClassInt], m.CallerSaved[ir.ClassFloat])
	}
	if got := len(m.ArgRegs[ir.ClassInt]); got != 4 {
		t.Fatalf("int arg regs = %d, want 4", got)
	}
	if got := len(m.ArgRegs[ir.ClassFloat]); got != 4 {
		t.Fatalf("float arg regs = %d, want 4", got)
	}
	if m.RetReg[ir.ClassInt] != 0 || m.RetReg[ir.ClassFloat] != 0 {
		t.Fatalf("ret regs = %d/%d, want 0/0", m.RetReg[ir.ClassInt], m.RetReg[ir.ClassFloat])
	}
	if m.NumPrecolored() != 24 {
		t.Fatalf("NumPrecolored = %d, want 24", m.NumPrecolored())
	}
}

func TestCallerSavedIsLowPrefix(t *testing.T) {
	m := RTPC()
	for _, c := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		for r := int16(0); int(r) < m.NumRegs[c]; r++ {
			want := int(r) < m.CallerSaved[c]
			if got := m.IsCallerSaved(c, r); got != want {
				t.Fatalf("IsCallerSaved(%s, %d) = %v, want %v", c, r, got, want)
			}
		}
	}
}

func TestPreNodeMappingRoundTrips(t *testing.T) {
	m := RTPC()
	i := int32(0)
	for _, c := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		for r := int16(0); int(r) < m.NumRegs[c]; r++ {
			if got := m.PreOffset(c) + int32(r); got != i {
				t.Fatalf("PreOffset(%s)+%d = %d, want %d", c, r, got, i)
			}
			gc, gr := m.PreClass(i)
			if gc != c || gr != r {
				t.Fatalf("PreClass(%d) = (%s, %d), want (%s, %d)", i, gc, gr, c, r)
			}
			i++
		}
	}
}

func TestForTargetResized(t *testing.T) {
	// The Figure 6 register study shrinks the GPR file; the derived
	// convention must shrink with it and stay valid.
	for _, k := range []int{4, 6, 8, 12} {
		m := ForTarget(target.RTPC().WithGPR(k))
		if err := m.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if m.K(ir.ClassInt) != k {
			t.Fatalf("k=%d: K = %d", k, m.K(ir.ClassInt))
		}
		if m.CallerSaved[ir.ClassInt] != k/2 {
			t.Fatalf("k=%d: caller-saved = %d, want %d", k, m.CallerSaved[ir.ClassInt], k/2)
		}
		if got := len(m.ArgRegs[ir.ClassInt]); got > k/2 || got > 4 {
			t.Fatalf("k=%d: %d arg regs", k, got)
		}
	}
}

func TestArgRegBounds(t *testing.T) {
	m := RTPC()
	if r := m.ArgReg(ir.ClassInt, 0); r != 0 {
		t.Fatalf("ArgReg(int, 0) = %d, want 0", r)
	}
	if r := m.ArgReg(ir.ClassInt, 99); r != -1 {
		t.Fatalf("ArgReg(int, 99) = %d, want -1", r)
	}
	if r := m.ArgReg(ir.ClassFloat, -1); r != -1 {
		t.Fatalf("ArgReg(flt, -1) = %d, want -1", r)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []*Model{
		{Name: "zero-regs"},
		func() *Model { m := RTPC(); m.CallerSaved[ir.ClassInt] = 99; return m }(),
		func() *Model { m := RTPC(); m.ArgRegs[ir.ClassInt][0] = 40; return m }(),
		func() *Model { m := RTPC(); m.RetReg[ir.ClassFloat] = 8; return m }(),
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("Validate accepted bad model %s", m)
		}
	}
}
