// Package ig implements the interference graph and the degree-bucket
// removal machinery of Matula and Beck that both coloring heuristics
// use for their linear-time simplification scans.
//
// Following Chaitin's implementation notes, the graph keeps a dual
// representation: a hashed edge set for O(1) membership tests
// (standing in for the bit matrix) and per-node adjacency vectors
// for iteration. Nodes are virtual registers; an edge joins two live
// ranges that are simultaneously live. Registers of different
// classes (integer vs floating point) never interfere — they compete
// for different register files.
package ig

import (
	"fmt"

	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// bitMatrixLimit bounds the dense representation: up to this many
// nodes the membership test uses a triangular bit matrix (Chaitin's
// actual data structure — n(n-1)/2 bits is 256 KiB at 2048 nodes);
// beyond it, a hash set of edge keys.
const bitMatrixLimit = 2048

// Graph is an interference graph over n live ranges. Membership
// testing uses Chaitin's dual representation: a (triangular) bit
// matrix for graphs small enough to afford one, a hashed edge set
// otherwise; iteration always uses the adjacency vectors.
type Graph struct {
	n     int
	class []ir.Class
	adj   [][]int32

	nedges int
	bits   []uint64 // triangular bit matrix, nil when hashing
	edges  map[uint64]struct{}
}

// New returns an empty graph whose node classes are given by class.
func New(class []ir.Class) *Graph {
	g := &Graph{
		n:     len(class),
		class: class,
		adj:   make([][]int32, len(class)),
	}
	if g.n <= bitMatrixLimit {
		g.bits = make([]uint64, (g.n*(g.n-1)/2+63)/64)
	} else {
		g.edges = make(map[uint64]struct{})
	}
	return g
}

// triIndex maps an unordered pair (a < b) to its bit position in the
// lower-triangular matrix.
func triIndex(a, b int32) int {
	// row b (b >= 1) starts at b(b-1)/2.
	return int(b)*(int(b)-1)/2 + int(a)
}

// NumNodes returns the number of nodes (live ranges).
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of interference edges.
func (g *Graph) NumEdges() int { return g.nedges }

// Class returns the register class of node a.
func (g *Graph) Class(a int32) ir.Class { return g.class[a] }

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// AddEdge records an interference between a and b. Self-edges and
// cross-class pairs are ignored; duplicate edges are not recorded
// twice.
func (g *Graph) AddEdge(a, b int32) {
	if a == b || g.class[a] != g.class[b] {
		return
	}
	if g.bits != nil {
		if a > b {
			a, b = b, a
		}
		i := triIndex(a, b)
		if g.bits[i/64]&(1<<uint(i%64)) != 0 {
			return
		}
		g.bits[i/64] |= 1 << uint(i%64)
	} else {
		k := edgeKey(a, b)
		if _, dup := g.edges[k]; dup {
			return
		}
		g.edges[k] = struct{}{}
	}
	g.nedges++
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// Interfere reports whether a and b interfere.
func (g *Graph) Interfere(a, b int32) bool {
	if a == b {
		return false
	}
	if g.bits != nil {
		if a > b {
			a, b = b, a
		}
		i := triIndex(a, b)
		return g.bits[i/64]&(1<<uint(i%64)) != 0
	}
	_, ok := g.edges[edgeKey(a, b)]
	return ok
}

// Neighbors returns a's adjacency vector. The caller must not
// modify it.
func (g *Graph) Neighbors(a int32) []int32 { return g.adj[a] }

// Degree returns the full degree of a (ignoring any removals done by
// a Worklist).
func (g *Graph) Degree(a int32) int { return len(g.adj[a]) }

// Build constructs the interference graph of f. A register defined
// at a point interferes with every register (of its class) live
// after that point, except — for a copy instruction — the copy's
// source. That exception is Chaitin's: the move dst/src pair should
// be coalescable, not conflicting, when dst's value is just src's.
func Build(f *ir.Func) *Graph {
	return BuildTraced(f, nil)
}

// BuildTraced is Build with an observability tracer: the finished
// graph's node and edge totals, and the interference-query work done
// while building (edge insertions attempted, including duplicates
// the edge-hash rejected), are emitted as build-phase counters. A
// nil tracer makes it identical to Build.
//
// Both Build and BuildTraced compute liveness from scratch; callers
// holding a current liveness (the allocator's per-pass cache) should
// use BuildWithLiveness.
func BuildTraced(f *ir.Func, tr *obs.Tracer) *Graph {
	return BuildWithLiveness(f, dataflow.ComputeLiveness(f), 1, tr)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("ig.Graph{nodes: %d, edges: %d}", g.n, g.nedges)
}
