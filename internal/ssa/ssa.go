// Package ssa implements the SSA-form register allocator: the
// interference graph of a strict SSA program is chordal, so coloring
// in dominance order is optimal and linear-time, and spilling
// decouples into a separate phase that runs *before* coloring
// (Bouchez, Darte & Rastello, "On the Complexity of Spill Everywhere
// under SSA Form"; Hack's SSA register allocation).
//
// The pipeline is:
//
//  1. Construct: prune unreachable blocks, give upward-exposed
//     registers an explicit zero definition in the entry block (the
//     machine's register files are zero-initialized, so this is
//     semantics-preserving strictness repair), split critical edges,
//     insert pruned phis on the iterated dominance frontier, and
//     rename every definition to a fresh SSA value along the
//     dominator tree. Phis live in a side table — the IR itself has
//     no phi opcode, so Assemble and the VM never see one.
//  2. PreSpill: compute MAXLIVE (the per-class register pressure
//     maximum, which equals the interference graph's clique number)
//     and, while it exceeds K, spill the cheapest live-through
//     values at every over-pressure point, everywhere. After this
//     phase coloring cannot fail.
//  3. Color: greedy lowest-color assignment over the definitions in
//     dominance order — a reverse perfect elimination order of the
//     chordal interference graph — which uses exactly MAXLIVE colors
//     per class.
//  4. Lower: replace each phi by parallel copies at the end of its
//     predecessors, sequentialized by physical location; copy cycles
//     break through a scratch register on a free color when one
//     exists, else through a spill-slot bounce.
//
// The result is ordinary IR plus a total coloring, consumed by the
// same Assemble/VM/VerifyAssignment stack as every other heuristic.
package ssa

import (
	"context"
	"fmt"
	"time"

	"regalloc/internal/cfg"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/spill"
)

// Phi is one phi-function: Dst receives Args[j] when control enters
// the block from its j-th predecessor (Args parallels Block.Preds).
// Var records the pre-SSA register the phi was inserted for.
type Phi struct {
	Var  ir.Reg
	Dst  ir.Reg
	Args []ir.Reg
}

// Func is an IR function in SSA form: the rewritten ir.Func plus the
// phi side table and the dominator-tree shape renaming used.
type Func struct {
	F    *ir.Func
	Info *cfg.Info
	// Phis[b] lists the phis at the head of block b.
	Phis [][]Phi
	// Kids[b] lists b's dominator-tree children in reverse-postorder
	// position, the deterministic walk order used for renaming, the
	// dominance definition order, and therefore the coloring.
	Kids []([]int)

	// Construction statistics.
	ZeroDefs   int // zero-init defs added for upward-exposed registers
	SplitEdges int // critical edges split
	CopyProps  int // moves deleted by renaming-time copy propagation

	// spilledEver marks registers a pre-spill round already sent to
	// memory; later rounds must not pick them again (their residual
	// def-to-store range is minimal, so re-spilling cannot reduce
	// pressure).
	spilledEver map[ir.Reg]bool
}

// NumPhis counts the phis across all blocks.
func (s *Func) NumPhis() int {
	n := 0
	for _, ps := range s.Phis {
		n += len(ps)
	}
	return n
}

// RoundStats records one pre-spill round.
type RoundStats struct {
	MaxLiveInt   int // pressure maxima observed entering the round
	MaxLiveFloat int
	Spilled      int     // values sent to memory this round
	SpillCost    float64 // summed estimated cost of those values
	Loads        int
	Stores       int
}

// Stats summarizes one SSA allocation.
type Stats struct {
	ZeroDefs   int
	SplitEdges int
	CopyProps  int // moves deleted by renaming-time copy propagation
	Phis       int // phis present when coloring ran
	LiveRanges int // SSA values (registers) in the colored function
	Edges      int // interference edges

	// MaxLive after pre-spilling: the exact per-class color count
	// the greedy colorer uses.
	MaxLiveInt   int
	MaxLiveFloat int

	Rounds []RoundStats // pre-spill rounds, in order

	// Lowering.
	Copies      int // parallel-copy moves emitted
	CycleBreaks int // cycles broken via a scratch register
	SlotBounces int // cycles broken via a spill-slot store/load

	Build, Spill, Color, Lower time.Duration
}

// TotalSpilled sums values spilled across pre-spill rounds.
func (st *Stats) TotalSpilled() int {
	n := 0
	for _, r := range st.Rounds {
		n += r.Spilled
	}
	return n
}

// TotalSpillCost sums estimated spill costs across rounds.
func (st *Stats) TotalSpillCost() float64 {
	c := 0.0
	for _, r := range st.Rounds {
		c += r.SpillCost
	}
	return c
}

// Result is a finished SSA allocation: phi-free IR plus a coloring
// covering every defined register.
type Result struct {
	Func   *ir.Func
	Colors []int16
	Stats  Stats
}

// maxPreSpillRounds bounds the pre-spill iteration, mirroring the
// Figure 4 cycle's MaxPasses backstop.
const maxPreSpillRounds = 64

// Allocate runs the full SSA pipeline on f, which it rewrites in
// place (pass a clone to keep the original). k gives the per-class
// color budgets, params the spill-cost estimator settings, and tr an
// optional tracer (obs.New(nil, ...) is a valid no-op). The context
// is checked between pre-spill rounds.
func Allocate(ctx context.Context, f *ir.Func, k color.K, params spill.CostParams, tr *obs.Tracer) (*Result, error) {
	t0 := time.Now()
	tr.BeginPhase(obs.PhaseBuild)
	s, err := Construct(f)
	if err != nil {
		return nil, err
	}
	res := &Result{Func: f}
	res.Stats.ZeroDefs = s.ZeroDefs
	res.Stats.SplitEdges = s.SplitEdges
	res.Stats.CopyProps = s.CopyProps
	res.Stats.Build = time.Since(t0)
	tr.EndPhase(obs.PhaseBuild, res.Stats.Build)

	t0 = time.Now()
	tr.BeginPhase(obs.PhaseSpill)
	a, rounds, err := PreSpill(ctx, s, k, params)
	res.Stats.Rounds = rounds
	if err != nil {
		return nil, err
	}
	res.Stats.Spill = time.Since(t0)
	tr.EndPhase(obs.PhaseSpill, res.Stats.Spill)
	res.Stats.Phis = s.NumPhis()
	res.Stats.LiveRanges = f.NumRegs()
	res.Stats.Edges = a.G.NumEdges()
	res.Stats.MaxLiveInt = a.MaxLive[ir.ClassInt]
	res.Stats.MaxLiveFloat = a.MaxLive[ir.ClassFloat]

	t0 = time.Now()
	tr.BeginPhase(obs.PhaseColor)
	colors, err := Color(s, a, k)
	if err != nil {
		return nil, err
	}
	res.Stats.Color = time.Since(t0)
	tr.EndPhase(obs.PhaseColor, res.Stats.Color)

	// Lowering is its own span: it shares the Color phase bucket (the
	// registry's PhaseNS[Color] stays Color+Lower, matching what the
	// Figure 4 mapping reports as the pass's Color time) but a trace
	// reader sees out-of-SSA copy insertion separately from the greedy
	// coloring walk.
	t1 := time.Now()
	tr.BeginPhase(obs.PhaseColor)
	colors, low, err := Lower(s, a, colors, k)
	if err != nil {
		return nil, err
	}
	res.Stats.Lower = time.Since(t1)
	tr.EndPhase(obs.PhaseColor, res.Stats.Lower)
	res.Stats.Copies = low.Copies
	res.Stats.CycleBreaks = low.CycleBreaks
	res.Stats.SlotBounces = low.SlotBounces
	res.Colors = colors

	if tr.Enabled() {
		tr.Counter(obs.PhaseBuild, "ssa.phis", int64(res.Stats.Phis))
		tr.Counter(obs.PhaseBuild, "ssa.zero_defs", int64(res.Stats.ZeroDefs))
		tr.Counter(obs.PhaseBuild, "ssa.split_edges", int64(res.Stats.SplitEdges))
		tr.Counter(obs.PhaseBuild, "ssa.copy_props", int64(res.Stats.CopyProps))
		tr.Counter(obs.PhaseSpill, "ssa.prespill_rounds", int64(len(res.Stats.Rounds)))
		tr.Counter(obs.PhaseColor, "ssa.maxlive_int", int64(res.Stats.MaxLiveInt))
		tr.Counter(obs.PhaseColor, "ssa.maxlive_float", int64(res.Stats.MaxLiveFloat))
		tr.Counter(obs.PhaseColor, "ssa.copies", int64(res.Stats.Copies))
		tr.Counter(obs.PhaseColor, "ssa.lower_ns", res.Stats.Lower.Nanoseconds())
	}
	return res, nil
}

// errUndefined reports a use the renamer found no reaching
// definition for — impossible in pruned SSA over a zero-init-repaired
// function, so it indicates a construction bug.
func errUndefined(f *ir.Func, r ir.Reg, where string) error {
	return fmt.Errorf("ssa: %s: no reaching definition for v%d at %s", f.Name, r, where)
}
