package irgen_test

import (
	"math"
	"testing"

	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

// lower compiles source to IR without the optimizer.
func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range prog.Funcs {
		if err := ir.Validate(f); err != nil {
			t.Fatalf("invalid IR: %v", err)
		}
	}
	return prog
}

// run lowers and executes a FUNCTION named F with the given values.
func run(t *testing.T, src string, args ...irinterp.Value) irinterp.Value {
	t.Helper()
	prog := lower(t, src)
	it := irinterp.New(prog, 1<<22)
	v, err := it.Call("F", args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func wantF(t *testing.T, src string, want float64, args ...irinterp.Value) {
	t.Helper()
	got := run(t, src, args...)
	if got.Cls != ir.ClassFloat || math.Abs(got.F-want) > 1e-12 {
		t.Fatalf("got %v (%g), want %g", got.Cls, got.F, want)
	}
}

func wantI(t *testing.T, src string, want int64, args ...irinterp.Value) {
	t.Helper()
	got := run(t, src, args...)
	if got.Cls != ir.ClassInt || got.I != want {
		t.Fatalf("got %v (%d), want %d", got.Cls, got.I, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantF(t, `
      REAL FUNCTION F(X,Y)
      F = (X + Y)*(X - Y)/2.0
      END
`, (7.0+3.0)*(7.0-3.0)/2.0, irinterp.Float(7), irinterp.Float(3))

	wantI(t, `
      INTEGER FUNCTION F(I,J)
      F = (I + J)*(I - J)/2 + MOD(I,J)
      END
`, (10+3)*(10-3)/2+10%3, irinterp.Int(10), irinterp.Int(3))
}

func TestPower(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(I)
      F = I**3 + 2**I
      END
`, 5*5*5+32, irinterp.Int(5))
	wantF(t, `
      REAL FUNCTION F(X)
      F = X**2 + X**0.5
      END
`, 16.0+2.0, irinterp.Float(4))
}

func TestConversions(t *testing.T) {
	wantF(t, `
      REAL FUNCTION F(I)
      F = FLOAT(I)/4.0
      END
`, 2.5, irinterp.Int(10))
	wantI(t, `
      INTEGER FUNCTION F(X)
      F = INT(X) + INT(-X)
      END
`, 0, irinterp.Float(2.75)) // truncation toward zero: 2 + (-2)
	wantF(t, `
      REAL FUNCTION F(I)
      F = I + 0.5
      END
`, 7.5, irinterp.Int(7)) // implicit conversion in mixed arithmetic
}

func TestIntrinsics(t *testing.T) {
	wantF(t, `
      REAL FUNCTION F(X,Y)
      F = SQRT(X) + ABS(Y) + SIGN(3.0,Y) + MAX(X,Y,0.5) + MIN(X,Y)
      END
`, 3.0+2.0-3.0+9.0-2.0, irinterp.Float(9), irinterp.Float(-2))
	wantI(t, `
      INTEGER FUNCTION F(I,J)
      F = IABS(J) + ISIGN(2,J) + MAX(I,J) + MIN(I,J,-9)
      END
`, 4-2+3-9, irinterp.Int(3), irinterp.Int(-4))
	wantF(t, `
      REAL FUNCTION F(X)
      F = EXP(LOG(X)) + SIN(0.0) + COS(0.0)
      END
`, 5.0+0.0+1.0, irinterp.Float(5))
}

func TestDoLoop(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(N)
      INTEGER S,I
      S = 0
      DO I = 1,N
         S = S + I
      ENDDO
      F = S
      END
`, 55, irinterp.Int(10))
	// Negative step.
	wantI(t, `
      INTEGER FUNCTION F(N)
      INTEGER S,I
      S = 0
      DO I = N,1,-3
         S = S + I
      ENDDO
      F = S
      END
`, 10+7+4+1, irinterp.Int(10))
	// Zero-trip loop: body must not run; index semantics preserved.
	wantI(t, `
      INTEGER FUNCTION F(N)
      INTEGER S,I
      S = 0
      DO I = 5,N
         S = S + 100
      ENDDO
      F = S
      END
`, 0, irinterp.Int(1))
}

// TestDoLimitEvaluatedOnce: FORTRAN evaluates the loop bound once;
// changing its variable inside the loop must not affect the trip
// count (this is also what creates the "loop limit" live range).
func TestDoLimitEvaluatedOnce(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(N)
      INTEGER S,I
      S = 0
      DO I = 1,N
         S = S + 1
         N = 0
      ENDDO
      F = S
      END
`, 4, irinterp.Int(4))
}

func TestWhileExitCycle(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(N)
      INTEGER S,I
      S = 0
      I = 0
      DO WHILE (I .LT. N)
         I = I + 1
         IF (MOD(I,2) .EQ. 0) CYCLE
         IF (I .GT. 7) EXIT
         S = S + I
      ENDDO
      F = S
      END
`, 1+3+5+7, irinterp.Int(100))
}

func TestNestedLoopsAndArrays(t *testing.T) {
	wantF(t, `
      REAL FUNCTION F(N)
      REAL A(10,10)
      INTEGER I,J,N
      DO I = 1,N
         DO J = 1,N
            A(I,J) = FLOAT(I*10 + J)
         ENDDO
      ENDDO
      F = A(2,3) + A(3,2)
      END
`, 23.0+32.0, irinterp.Int(5))
}

func TestShortCircuit(t *testing.T) {
	// The .AND. right operand would divide by zero if evaluated.
	wantI(t, `
      INTEGER FUNCTION F(I)
      INTEGER J
      J = 0
      IF (I .GT. 0 .AND. 10/I .GT. 1) J = 1
      F = J
      END
`, 0, irinterp.Int(0))
}

func TestRelationalValue(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(I,J)
      F = (I .LT. J) + (I .GT. J)*10 + (I .EQ. J)*100
      END
`, 1, irinterp.Int(1), irinterp.Int(2))
}

func TestFunctionCallAndRecursionDepth(t *testing.T) {
	wantF(t, `
      REAL FUNCTION G(X)
      G = X*2.0
      END
      REAL FUNCTION F(X)
      F = G(X) + G(X + 1.0)
      END
`, 6.0+8.0, irinterp.Float(3))
}

func TestSubroutineArrayArgs(t *testing.T) {
	wantF(t, `
      SUBROUTINE FILL(A,N,V)
      REAL A(*),V
      INTEGER I,N
      DO I = 1,N
         A(I) = V
      ENDDO
      END
      REAL FUNCTION F(N)
      REAL B(20)
      INTEGER N
      CALL FILL(B,N,2.5)
      CALL FILL(B(3),2,7.0)
      F = B(1) + B(3) + B(4) + B(5)
      END
`, 2.5+7.0+7.0+2.5, irinterp.Int(10))
}

func TestAdjustable2DColumnMajor(t *testing.T) {
	wantF(t, `
      SUBROUTINE SETCOL(A,LDA,J,N)
      REAL A(LDA,*)
      INTEGER I,J,LDA,N
      DO I = 1,N
         A(I,J) = FLOAT(100*J + I)
      ENDDO
      END
      REAL FUNCTION F(N)
      REAL M(8,8)
      INTEGER N
      CALL SETCOL(M,8,2,N)
      CALL SETCOL(M,8,3,N)
      F = M(4,2) + M(1,3)
      END
`, 204.0+301.0, irinterp.Int(5))
}

// TestLoopShape checks the inverted-DO lowering documented in
// irgen: a guard branch before the loop and a bottom test, so the
// body block is the loop header.
func TestLoopShape(t *testing.T) {
	prog := lower(t, `
      SUBROUTINE FOO(N)
      INTEGER I,S
      S = 0
      DO I = 1,N
         S = S + I
      ENDDO
      END
`)
	f := prog.Func("FOO")
	brifs := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBrIf {
				brifs++
			}
		}
	}
	if brifs != 2 {
		t.Fatalf("inverted DO should compile to guard + bottom test (2 brif), got %d", brifs)
	}
}

func TestStaticLayout(t *testing.T) {
	prog := lower(t, `
      SUBROUTINE A(N)
      REAL X(100)
      X(1) = 1.0
      END
      SUBROUTINE B(N)
      REAL Y(50,2)
      Y(1,1) = 1.0
      END
`)
	fa, fb := prog.Func("A"), prog.Func("B")
	if fa.StaticSize != 100 || fb.StaticSize != 100 {
		t.Fatalf("static sizes: %d, %d", fa.StaticSize, fb.StaticSize)
	}
	if fb.StaticBase < fa.StaticBase+fa.StaticSize+irgen.SpillReserve {
		t.Fatal("function static areas overlap (no spill headroom)")
	}
	if prog.StaticEnd <= fb.StaticBase {
		t.Fatal("StaticEnd not advanced")
	}
}

func TestParamClasses(t *testing.T) {
	prog := lower(t, `
      SUBROUTINE FOO(A,X,N)
      REAL A(*),X
      INTEGER N
      A(1) = X
      END
`)
	f := prog.Func("FOO")
	if len(f.Params) != 3 {
		t.Fatalf("params: %d", len(f.Params))
	}
	// Array base is an integer (address); X is float; N is int.
	if f.RegClass(f.Params[0]) != ir.ClassInt ||
		f.RegClass(f.Params[1]) != ir.ClassFloat ||
		f.RegClass(f.Params[2]) != ir.ClassInt {
		t.Fatal("parameter register classes wrong")
	}
}

func TestFunctionReturnDefault(t *testing.T) {
	// Falling off END returns the current value of the result
	// variable.
	wantI(t, `
      INTEGER FUNCTION F(N)
      F = N*2
      END
`, 14, irinterp.Int(7))
}

func TestDotProductStyle(t *testing.T) {
	// Unrolled-by-2 loop with cleanup, as the BLAS sources do.
	wantF(t, `
      REAL FUNCTION F(N)
      REAL A(16),B(16),S
      INTEGER I,M,N
      DO I = 1,N
         A(I) = FLOAT(I)
         B(I) = 2.0
      ENDDO
      S = 0.0
      M = MOD(N,2)
      IF (M .NE. 0) S = A(1)*B(1)
      DO I = M+1,N,2
         S = S + A(I)*B(I) + A(I+1)*B(I+1)
      ENDDO
      F = S
      END
`, 2*(1+2+3+4+5+6+7), irinterp.Int(7))
}

func TestUnaryNegAndNot(t *testing.T) {
	wantI(t, `
      INTEGER FUNCTION F(I)
      F = -I + (.NOT. (I .GT. 0))*10
      END
`, -3, irinterp.Int(3))
}
