package obs

import (
	"fmt"
	"strings"
	"time"
)

// CacheStats is a point-in-time snapshot of a result cache
// (internal/rescache), defined here so the exporters (promtext,
// cmd/allocd's /metrics, cmd/allocload's scrape parser) share one
// vocabulary without importing the cache itself. All counters are
// cumulative since process start.
type CacheStats struct {
	Hits      int64 // served from a stored entry
	Misses    int64 // filled by running the allocation
	Shared    int64 // collapsed onto another request's in-flight fill
	Abandoned int64 // waiters whose context expired before the fill finished
	Evictions int64 // entries dropped to respect the capacity bounds

	Entries int   // stored entries right now
	Bytes   int64 // stored value bytes right now

	MaxEntries int   // configured entry bound (0: unbounded)
	MaxBytes   int64 // configured byte bound (0: unbounded)

	// HitLatency observes lookup-to-return time on hits; FillLatency
	// observes the leader's fill duration on misses. Both use the
	// shared fixed-bucket ladder so they merge and export like every
	// other histogram in the system.
	HitLatency  LatencyHistogram
	FillLatency LatencyHistogram
}

// Requests returns the total served lookups the stats cover.
// Abandoned waits are excluded: they left before an answer existed,
// so counting them as served would distort the hit rate both ways.
func (s CacheStats) Requests() int64 { return s.Hits + s.Misses + s.Shared }

// HitRate returns the fraction of lookups that avoided an
// allocation (hits plus singleflight-shared), in [0, 1]; 0 when no
// lookups were made.
func (s CacheStats) HitRate() float64 {
	total := s.Requests()
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// String renders a deterministic one-stop summary (the same contract
// RegistrySnapshot.String keeps).
func (s CacheStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %d hit(s), %d miss(es), %d shared, %d abandoned, %d eviction(s) (hit rate %.3f)\n",
		s.Hits, s.Misses, s.Shared, s.Abandoned, s.Evictions, s.HitRate())
	fmt.Fprintf(&b, "  stored: %d entr(ies), %d byte(s)\n", s.Entries, s.Bytes)
	if s.HitLatency.Count > 0 {
		fmt.Fprintf(&b, "  hit  p50 %10s  p99 %10s  max %10s\n",
			s.HitLatency.Quantile(0.50), s.HitLatency.Quantile(0.99), time.Duration(s.HitLatency.MaxNS))
	}
	if s.FillLatency.Count > 0 {
		fmt.Fprintf(&b, "  fill p50 %10s  p99 %10s  max %10s\n",
			s.FillLatency.Quantile(0.50), s.FillLatency.Quantile(0.99), time.Duration(s.FillLatency.MaxNS))
	}
	return b.String()
}
