// benchjson implements bench -bench-json: a machine-readable phase
// benchmark over the paper's figure-7 routines and the standalone
// graph-coloring stress generators, written as one JSON document so
// CI can archive it and successive PRs can be diffed.
//
// Schema history (readers of older reports keep working — every bump
// is additive, and the history is repeated in the report's
// schema_history field so an archived file explains itself):
//
//	regalloc-bench/3  runs, graphs, pcolor, build_improvement_pct
//	regalloc-bench/4  adds phase_latency and run_latency: p50/p95/p99
//	                  (plus mean/max/count) over EVERY rep of every
//	                  figure-7 allocation, computed from the obs
//	                  registry's fixed-bucket histograms — the "runs"
//	                  entries remain best-of-reps and are unchanged
//	regalloc-bench/5  adds portfolio: one race per figure-7 routine
//	                  over the default strategy set (winner, win
//	                  margin, and the per-candidate outcome table);
//	                  all /4 fields unchanged
//	regalloc-bench/6  adds loadtest: service-level latency
//	                  percentiles, error rate, and cache hit rate,
//	                  emitted by cmd/allocload against a running
//	                  allocd (cmd/bench's own reports carry every /5
//	                  field and omit the section); all /5 fields
//	                  unchanged
//	regalloc-bench/7  adds scale (the 10^5+-node tier: power-law and
//	                  mesh topologies under the speculative and
//	                  Jones–Plassmann engines, per worker count) and,
//	                  in allocload reports, loadtest.error_latency
//	                  (transport-failure latency, tracked apart from
//	                  the SLO-facing success histogram); all /6 fields
//	                  unchanged
//	regalloc-bench/8  adds ssa (the SSA-form chordal allocator over
//	                  every figure-5 routine at (16,8) and (8,4):
//	                  construction shape, post-spill MAXLIVE, spill
//	                  totals, and the Chaitin/Briggs costs on the same
//	                  unit); all /7 fields unchanged
//	regalloc-bench/9  adds, in allocload reports, the trace linkage:
//	                  loadtest.slow_trace_ids and error_trace_ids (the
//	                  trace IDs of the slowest and errored requests,
//	                  the lookup keys into allocd's flight recorder,
//	                  access log, and /metrics exemplars) and
//	                  loadtest.traces (their flight-recorder records,
//	                  fetched back after the run); all /8 fields
//	                  unchanged
//	regalloc-bench/10 adds irc (iterated register coalescing vs the
//	                  Briggs conservative pre-pass: surviving register
//	                  copies per figure-5 routine, with both spill
//	                  costs) and irc_eliminated_pct (the move-heavy
//	                  aggregate); all /9 fields unchanged
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"regalloc"
	"regalloc/internal/color"
	"regalloc/internal/experiments"
	"regalloc/internal/fsutil"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
	"regalloc/internal/workloads"
)

// benchPass is one trip around the Figure 4 cycle, nanoseconds.
type benchPass struct {
	BuildNS    int64 `json:"build_ns"`
	SimplifyNS int64 `json:"simplify_ns"`
	ColorNS    int64 `json:"color_ns"`
	SpillNS    int64 `json:"spill_ns"`
	Spilled    int   `json:"spilled"`
}

// benchRun is the per-pass timing of one routine under one worker
// count (best-of-reps to damp scheduler noise).
type benchRun struct {
	Routine     string      `json:"routine"`
	Workers     int         `json:"workers"`
	Passes      []benchPass `json:"passes"`
	BuildNS     int64       `json:"build_ns_total"`
	TotalNS     int64       `json:"total_ns"`
	LiveRanges  int         `json:"live_ranges"`
	Spilled     int         `json:"spilled_total"`
	PassesCount int         `json:"pass_count"`
}

// benchGraph times simplify+select on a generated stress graph.
type benchGraph struct {
	Name      string `json:"name"`
	Heuristic string `json:"heuristic"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Spilled   int    `json:"spilled"`
	NS        int64  `json:"ns"`
}

// benchPColor compares the speculative parallel colorer against the
// sequential smallest-last heuristic on one large stress graph.
type benchPColor struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Workers   int     `json:"workers"`
	SeqNS     int64   `json:"seq_ns"`
	ParNS     int64   `json:"par_ns"`
	Speedup   float64 `json:"speedup"`
	Rounds    int     `json:"rounds"`
	Conflicts int     `json:"conflicts"`
	SeqColors int     `json:"seq_colors"`
	ParColors int     `json:"par_colors"`
}

// benchScale is one cell of the scale tier (new in regalloc-bench/7):
// parallel coloring wall time on a 10^5-node graph, per topology,
// engine, and worker count.
type benchScale struct {
	Topology  string `json:"topology"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Algo      string `json:"algo"`
	Workers   int    `json:"workers"`
	GenNS     int64  `json:"gen_ns"`
	ColorNS   int64  `json:"color_ns"`
	Rounds    int    `json:"rounds"`
	Conflicts int    `json:"conflicts"`
	Colors    int    `json:"colors"`
}

// benchSSA is one routine under one register-file size in the
// SSA-form chordal allocator study (new in regalloc-bench/8). The
// spill/cost columns are deterministic — they diff cleanly across
// PRs; only durations elsewhere in the report carry machine noise.
type benchSSA struct {
	Program string `json:"program"`
	Routine string `json:"routine"`
	KInt    int    `json:"k_int"`
	KFloat  int    `json:"k_float"`
	// Irreducible marks units whose operand pressure no spilling can
	// fit at this K; all other columns are zero for such rows.
	Irreducible  bool  `json:"irreducible,omitempty"`
	Phis         int   `json:"phis"`
	CopyProps    int   `json:"copy_props"`
	SplitEdges   int   `json:"split_edges"`
	MaxLiveInt   int   `json:"maxlive_int"`
	MaxLiveFloat int   `json:"maxlive_float"`
	Rounds       int   `json:"rounds"`
	Spilled      int   `json:"spilled"`
	CostMilli    int64 `json:"cost_milli"`
	Copies       int   `json:"phi_copies"`
	CycleBreaks  int   `json:"cycle_breaks"`
	SlotBounces  int   `json:"slot_bounces"`
	ChaitinCost  int64 `json:"chaitin_cost_milli"`
	BriggsCost   int64 `json:"briggs_cost_milli"`
}

// benchIRC is one routine of the iterated-register-coalescing study
// (new in regalloc-bench/10): surviving register copies under Briggs
// conservative coalescing versus George-Appel IRC, with both total
// spill costs (equal by construction of the decoupled IRC design).
// Fully deterministic, so it diffs cleanly across PRs.
type benchIRC struct {
	Program     string `json:"program"`
	Routine     string `json:"routine"`
	BriggsMoves int    `json:"briggs_moves"`
	IRCMoves    int    `json:"irc_moves"`
	BriggsCost  int64  `json:"briggs_cost_milli"`
	IRCCost     int64  `json:"irc_cost_milli"`
}

// benchPortfolioCandidate is one strategy's outcome in one routine's
// portfolio race.
type benchPortfolioCandidate struct {
	Name      string `json:"name"`
	Status    string `json:"status"`
	Spills    int    `json:"spills"`
	CostMilli int64  `json:"cost_milli"`
	NS        int64  `json:"ns"`
}

// benchPortfolio is one routine's race over the default strategy
// portfolio. New in regalloc-bench/5.
type benchPortfolio struct {
	Routine     string                    `json:"routine"`
	Mode        string                    `json:"mode"`
	Winner      string                    `json:"winner"`
	Spills      int                       `json:"spills"`
	CostMilli   int64                     `json:"cost_milli"`
	MarginMilli int64                     `json:"win_margin_milli"`
	Candidates  []benchPortfolioCandidate `json:"candidates"`
}

// benchQuantiles summarizes one obs.LatencyHistogram: percentile
// estimates by linear interpolation within the 1-2-5 buckets, clamped
// to the observed maximum.
type benchQuantiles struct {
	Count  int64 `json:"count"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

func quantilesOf(h obs.LatencyHistogram) benchQuantiles {
	return benchQuantiles{
		Count:  h.Count,
		P50NS:  h.Quantile(0.50).Nanoseconds(),
		P95NS:  h.Quantile(0.95).Nanoseconds(),
		P99NS:  h.Quantile(0.99).Nanoseconds(),
		MeanNS: h.Mean().Nanoseconds(),
		MaxNS:  h.MaxNS,
	}
}

type benchReport struct {
	Schema        string             `json:"schema"`
	SchemaHistory []string           `json:"schema_history"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	NumCPU        int                `json:"num_cpu"`
	Reps          int                `json:"reps"`
	Runs          []benchRun         `json:"runs"`
	Graphs        []benchGraph       `json:"graphs"`
	PColor        []benchPColor      `json:"pcolor"`
	BuildPct      map[string]float64 `json:"build_improvement_pct"`
	// PhaseLatency aggregates every rep of every figure-7 allocation
	// (not just the best-of-reps kept in Runs) per Figure 4 phase;
	// RunLatency does the same for whole-allocation wall time. New in
	// regalloc-bench/4.
	PhaseLatency map[string]benchQuantiles `json:"phase_latency"`
	RunLatency   benchQuantiles            `json:"run_latency"`
	// Portfolio races the default strategy set once per figure-7
	// routine: deterministic winner by (milli spill cost, spills,
	// index). New in regalloc-bench/5.
	Portfolio []benchPortfolio `json:"portfolio"`
	// Scale is the 10^5-node tier: CSR-backed graphs at the size
	// where per-node adjacency vectors used to dominate build time.
	// New in regalloc-bench/7.
	Scale []benchScale `json:"scale"`
	// SSA is the SSA-form chordal allocator study: every figure-5
	// routine at (16,8) and (8,4), with the Figure 4 allocators'
	// costs on the same units for comparison. New in
	// regalloc-bench/8.
	SSA []benchSSA `json:"ssa"`
	// IRC is the iterated-register-coalescing study: per-routine
	// surviving copies under the Briggs conservative pre-pass versus
	// IRC's retested worklist, plus the move-heavy aggregate. New in
	// regalloc-bench/10.
	IRC []benchIRC `json:"irc"`
	// IRCEliminatedPct is the share of copies IRC removed from the
	// move-heavy units (>= 4 surviving the pre-pass), in percent.
	IRCEliminatedPct float64 `json:"irc_eliminated_pct"`
	Note             string  `json:"note"`
}

// figure7Routines is the paper's four large routines, the workloads
// whose Build phase dominates allocation time.
func figure7Routines() (map[string]*regalloc.Program, []struct{ program, routine string }, error) {
	wanted := []struct{ program, routine string }{
		{"CEDETA", "DQRDC"},
		{"SVD", "SVD"},
		{"CEDETA", "GRADNT"},
		{"CEDETA", "HSSIAN"},
	}
	compiled := make(map[string]*regalloc.Program)
	for _, w := range workloads.All() {
		if w.Program == "CEDETA" || w.Program == "SVD" {
			p, err := regalloc.Compile(w.Source)
			if err != nil {
				return nil, nil, fmt.Errorf("compile %s: %w", w.Program, err)
			}
			compiled[w.Program] = p
		}
	}
	return compiled, wanted, nil
}

// runBenchJSON writes the benchmark report to path and returns any
// error (the caller exits nonzero on failure, so a CI job that
// uploads the artifact fails loudly instead of archiving nothing).
func runBenchJSON(path string, reps int) error {
	if reps <= 0 {
		reps = 3
	}
	compiled, wanted, err := figure7Routines()
	if err != nil {
		return err
	}
	report := &benchReport{
		Schema: "regalloc-bench/10",
		SchemaHistory: []string{
			"regalloc-bench/3: runs, graphs, pcolor, build_improvement_pct",
			"regalloc-bench/4: adds phase_latency + run_latency (p50/p95/p99 over every rep); all /3 fields unchanged",
			"regalloc-bench/5: adds portfolio (one race per figure-7 routine: winner, margin, per-candidate table); all /4 fields unchanged",
			"regalloc-bench/6: adds loadtest (latency percentiles, error rate, cache hit rate from cmd/allocload against a running allocd); all /5 fields unchanged",
			"regalloc-bench/7: adds scale (10^5+-node power-law/mesh coloring per engine and worker count) and loadtest.error_latency in allocload reports; all /6 fields unchanged",
			"regalloc-bench/8: adds ssa (SSA-form chordal allocator over every figure-5 routine at (16,8) and (8,4), with Chaitin/Briggs costs on the same units); all /7 fields unchanged",
			"regalloc-bench/9: adds loadtest.slow_trace_ids/error_trace_ids/traces (trace IDs of the slowest and errored requests, with their flight-recorder records fetched from allocd's /debug/requests); all /8 fields unchanged",
			"regalloc-bench/10: adds irc (iterated register coalescing vs the Briggs conservative pre-pass: surviving copies per figure-5 routine) and irc_eliminated_pct; all /9 fields unchanged",
		},
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Reps:         reps,
		BuildPct:     map[string]float64{},
		PhaseLatency: map[string]benchQuantiles{},
		Note: "times are best-of-reps wall clock; workers are capped at " +
			"GOMAXPROCS, so on a single-CPU host the workers=4 run takes the " +
			"same sequential path and the improvement reflects machine noise " +
			"only — compare build_improvement_pct against gomaxprocs; " +
			"phase_latency/run_latency aggregate every rep, not the best",
	}

	// Every rep of every allocation below is also recorded here, so
	// the /4 latency quantiles see the full distribution rather than
	// the minimum that Runs keeps.
	reg := regalloc.NewRegistry()

	buildTotals := map[string]map[int]int64{} // routine -> workers -> build ns
	for _, s := range wanted {
		prog := compiled[s.program]
		for _, workers := range []int{1, 4} {
			best := benchRun{Routine: s.routine, Workers: workers}
			for rep := 0; rep < reps; rep++ {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = regalloc.Briggs
				opt.Workers = workers
				res, err := prog.Allocate(s.routine, opt)
				if err != nil {
					return fmt.Errorf("%s workers=%d: %w", s.routine, workers, err)
				}
				reg.Record(regalloc.Summarize(s.routine, res))
				run := benchRun{Routine: s.routine, Workers: workers}
				for _, p := range res.Passes {
					run.Passes = append(run.Passes, benchPass{
						BuildNS:    p.Build.Nanoseconds(),
						SimplifyNS: p.Simplify.Nanoseconds(),
						ColorNS:    p.Color.Nanoseconds(),
						SpillNS:    p.Spill.Nanoseconds(),
						Spilled:    p.Spilled,
					})
					run.BuildNS += p.Build.Nanoseconds()
				}
				run.TotalNS = res.TotalTime().Nanoseconds()
				run.LiveRanges = res.LiveRanges()
				run.Spilled = res.TotalSpilled()
				run.PassesCount = len(res.Passes)
				if best.TotalNS == 0 || run.BuildNS < best.BuildNS {
					best = run
				}
			}
			report.Runs = append(report.Runs, best)
			if buildTotals[s.routine] == nil {
				buildTotals[s.routine] = map[int]int64{}
			}
			buildTotals[s.routine][workers] = best.BuildNS
		}
	}
	for routine, byWorkers := range buildTotals {
		w1, w4 := byWorkers[1], byWorkers[4]
		if w1 > 0 {
			report.BuildPct[routine] = 100 * float64(w1-w4) / float64(w1)
		}
	}

	// Standalone coloring on generated graphs: isolates the
	// simplify/select machinery from the compiler front half.
	type gen struct {
		name  string
		g     *ig.Graph
		costs []float64
	}
	var gens []gen
	{
		g, costs := graphgen.Random(400, 0.08, 11)
		gens = append(gens, gen{"random-400-0.08", g, costs})
	}
	{
		g, costs := graphgen.SVDLike(60, 40, 8, 12, 3, 7)
		gens = append(gens, gen{"svdlike-60x40", g, costs})
	}
	kf := func(ir.Class) int { return 8 }
	for _, ge := range gens {
		for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
			var bestNS int64
			var spilled int
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				sr := color.Simplify(ge.g, ge.costs, kf, h, color.CostOverDegree)
				var sp []int32
				if h == color.Chaitin && len(sr.SpillMarked) > 0 {
					sp = sr.SpillMarked
				} else {
					_, sp = color.Select(ge.g, sr.Stack, kf, h != color.Chaitin)
				}
				ns := time.Since(t0).Nanoseconds()
				if bestNS == 0 || ns < bestNS {
					bestNS = ns
				}
				spilled = len(sp)
			}
			report.Graphs = append(report.Graphs, benchGraph{
				Name:      ge.name,
				Heuristic: h.String(),
				Nodes:     ge.g.NumNodes(),
				Edges:     ge.g.NumEdges(),
				Spilled:   spilled,
				NS:        bestNS,
			})
		}
	}

	// Speculative parallel coloring on large random graphs: the
	// sequential side is the same smallest-last machinery timed
	// above, the parallel side the Rokos-style engine at 1 worker
	// (scheme overhead) and at GOMAXPROCS (the speedup claim: on a
	// host with GOMAXPROCS >= 4 the latter beats sequential wall
	// clock on Random(n >= 20000)).
	for _, spec := range []struct {
		name string
		n    int
		p    float64
		seed uint64
	}{
		{"random-20000-0.0012", 20000, 0.0012, 21},
		{"random-32000-0.0008", 32000, 0.0008, 22},
	} {
		g, _ := graphgen.Random(spec.n, spec.p, spec.seed)
		var seqNS int64
		var seq *pcolor.Stats
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			_, st := pcolor.Sequential(g)
			if ns := time.Since(t0).Nanoseconds(); seqNS == 0 || ns < seqNS {
				seqNS = ns
			}
			seq = st
		}
		workerCounts := []int{1}
		if gmp := runtime.GOMAXPROCS(0); gmp > 1 {
			workerCounts = append(workerCounts, gmp)
		}
		for _, workers := range workerCounts {
			var parNS int64
			var st *pcolor.Stats
			var colors []int16
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				colors, st = pcolor.Color(g, pcolor.Options{Workers: workers, Seed: 1})
				if ns := time.Since(t0).Nanoseconds(); parNS == 0 || ns < parNS {
					parNS = ns
				}
			}
			if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
				return fmt.Errorf("pcolor %s workers=%d: %w", spec.name, workers, err)
			}
			report.PColor = append(report.PColor, benchPColor{
				Name:      spec.name,
				Nodes:     g.NumNodes(),
				Edges:     g.NumEdges(),
				Workers:   st.Workers,
				SeqNS:     seqNS,
				ParNS:     parNS,
				Speedup:   float64(seqNS) / float64(parNS),
				Rounds:    st.Rounds,
				Conflicts: st.Conflicts,
				SeqColors: seq.ColorsInt,
				ParColors: st.ColorsInt,
			})
		}
	}

	// Portfolio races over the figure-7 routines (new in /5): the
	// winner is deterministic — (milli spill cost, spill count,
	// candidate index) — so the winner/cost columns diff cleanly
	// across PRs; only the ns columns carry machine noise.
	cands := regalloc.DefaultPortfolio(regalloc.DefaultOptions())
	for _, s := range wanted {
		pr, err := compiled[s.program].AllocatePortfolio(context.Background(), s.routine, cands, regalloc.PortfolioConfig{})
		if err != nil {
			return fmt.Errorf("portfolio %s: %w", s.routine, err)
		}
		reg.Record(regalloc.SummarizePortfolio(s.routine, pr))
		win := pr.Outcomes[pr.Winner]
		bp := benchPortfolio{
			Routine:     s.routine,
			Mode:        pr.Mode.String(),
			Winner:      win.Name,
			Spills:      win.Spills,
			CostMilli:   win.SpillCostMilli,
			MarginMilli: pr.WinMarginMilli,
		}
		for _, o := range pr.Outcomes {
			bp.Candidates = append(bp.Candidates, benchPortfolioCandidate{
				Name:      o.Name,
				Status:    o.Status.String(),
				Spills:    o.Spills,
				CostMilli: o.SpillCostMilli,
				NS:        o.Duration.Nanoseconds(),
			})
		}
		report.Portfolio = append(report.Portfolio, bp)
	}

	// Scale tier (new in /7): 10^5-node power-law and mesh graphs
	// under both parallel engines. The study sizes itself; CI's
	// scale-smoke job runs the same code standalone with a wall-clock
	// budget.
	scale, err := experiments.ScaleStudy(100_000)
	if err != nil {
		return err
	}
	for _, row := range scale.Rows {
		report.Scale = append(report.Scale, benchScale{
			Topology:  row.Topology,
			Nodes:     row.Nodes,
			Edges:     row.Edges,
			Algo:      row.Algo,
			Workers:   row.Workers,
			GenNS:     row.GenNS,
			ColorNS:   row.ColorNS,
			Rounds:    row.Rounds,
			Conflicts: row.Conflicts,
			Colors:    row.Colors,
		})
	}

	// SSA-form chordal allocator study (new in /8). Deterministic
	// like the portfolio section: spill and cost columns diff cleanly
	// across PRs.
	ssaStudy, err := experiments.SSAStudy()
	if err != nil {
		return err
	}
	for _, row := range ssaStudy.Rows {
		report.SSA = append(report.SSA, benchSSA{
			Program:      row.Program,
			Routine:      row.Routine,
			KInt:         row.KInt,
			KFloat:       row.KFloat,
			Irreducible:  row.Irreducible,
			Phis:         row.Phis,
			CopyProps:    row.CopyProps,
			SplitEdges:   row.SplitEdges,
			MaxLiveInt:   row.MaxLiveInt,
			MaxLiveFloat: row.MaxLiveFloat,
			Rounds:       row.Rounds,
			Spilled:      row.Spilled,
			CostMilli:    row.CostMilli,
			Copies:       row.Copies,
			CycleBreaks:  row.CycleBreaks,
			SlotBounces:  row.SlotBounces,
			ChaitinCost:  row.ChaitinCostMilli,
			BriggsCost:   row.BriggsCostMilli,
		})
	}

	// Iterated-register-coalescing study (new in /10). Deterministic:
	// move and cost columns diff cleanly across PRs.
	ircStudy, err := experiments.IRCStudy()
	if err != nil {
		return err
	}
	for _, row := range ircStudy.Rows {
		report.IRC = append(report.IRC, benchIRC{
			Program:     row.Program,
			Routine:     row.Routine,
			BriggsMoves: row.BriggsMoves,
			IRCMoves:    row.IRCMoves,
			BriggsCost:  row.BriggsCostMilli,
			IRCCost:     row.IRCCostMilli,
		})
	}
	report.IRCEliminatedPct = ircStudy.EliminatedPct()

	snap := reg.Snapshot()
	for p := 0; p < obs.NumPhases; p++ {
		if h := snap.Phase[p]; h.Count > 0 {
			report.PhaseLatency[obs.Phase(p).String()] = quantilesOf(h)
		}
	}
	report.RunLatency = quantilesOf(snap.Total)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	// A dropped fsync/close error here is exactly the
	// silent-truncation bug the -trace path had: the OS may only
	// report a full disk at sync or close.
	return fsutil.SyncClose(f)
}
