// Package regalloc reproduces the register allocator of Briggs,
// Cooper, Kennedy & Torczon, "Coloring Heuristics for Register
// Allocation" (PLDI 1989): a Chaitin-style graph-coloring allocator
// with the paper's optimistic coloring improvement, embedded in a
// complete mini-FORTRAN compiler targeting a simulated RT/PC-like
// machine.
//
// The typical flow is:
//
//	prog, err := regalloc.Compile(source)
//	res, err := prog.Allocate("SVD", regalloc.DefaultOptions())
//
// Result carries everything the paper measures: FirstPassSpilled and
// FirstPassSpillCost (Figure 5's static columns), TotalSpilled and
// TotalSpillCost (all passes), LiveRanges (the first graph's size),
// TotalTime (summed phase times), and the full per-pass PassStats
// slice in Result.Passes (Figure 7's per-phase durations plus graph
// sizes, coalesced moves, scan steps, and inserted spill code).
//
// For dynamic (simulated) measurements:
//
//	machine := regalloc.RTPC()
//	code, _, err := prog.Assemble(machine, opts)
//	m := regalloc.NewVM(code, memWords)
//	m.Call("QSORT", vm.Int(base), vm.Int(n))
//
// # Observability
//
// Setting Options.Observer streams structured events out of the
// allocator while it runs: one span per Figure 4 phase per pass
// (whose durations equal the PassStats record exactly), counters for
// graph sizes, coalescing, scan work and spill code, spill-decision
// events carrying the cost and metric value behind each choice, and
// color-reuse events witnessing each optimistic win over Chaitin's
// pessimism. Three sinks are provided: NewJSONSink (one JSON object
// per line), NewTextSink (log lines), and NewMetricsSink (in-process
// counters + duration histograms); MultiSink combines them.
//
//	ms := regalloc.NewMetricsSink()
//	opt := regalloc.DefaultOptions()
//	opt.Observer = ms
//	res, err := prog.Allocate("SVD", opt)
//	fmt.Print(ms.Snapshot())
//
// Options misuse fails loudly: Allocate, Assemble, and
// AssembleContext validate first and return errors matchable with
// errors.Is against ErrBadK, ErrBadHeuristic, ErrBadMetric,
// ErrConflictingSpillModes, and ErrBadWorkers.
//
// Subpackages under internal/ implement each stage; this package is
// the stable surface.
package regalloc

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"regalloc/internal/alloc"
	"regalloc/internal/asm"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/machine"
	"regalloc/internal/obs"
	"regalloc/internal/opt"
	"regalloc/internal/parser"
	"regalloc/internal/portfolio"
	"regalloc/internal/sem"
	"regalloc/internal/ssa"
	"regalloc/internal/target"
	"regalloc/internal/vm"
)

// Heuristic selects the coloring algorithm. See package
// internal/color for the definitions.
type Heuristic = color.Heuristic

// The three heuristics the paper compares — Chaitin's pessimistic
// coloring ("Old" in the paper's tables), the optimistic coloring of
// Briggs et al. ("New"), and Matula–Beck smallest-last ordering (the
// cost-blind linear-time comparator of §2.2) — plus the SSA-form
// chordal allocator, which replaces the whole Figure 4 cycle with
// construction, pre-spilling, and dominance-order greedy coloring,
// and George–Appel iterated register coalescing (IRC), which fuses
// the coalesce pre-pass into simplification so conservative merges
// retry as the graph shrinks.
const (
	Chaitin    = color.Chaitin
	Briggs     = color.Briggs
	MatulaBeck = color.MatulaBeck
	SSA        = color.SSA
	IRC        = color.IRC
)

// MachineModel describes a register file beyond its plain per-class
// counts (machine.Model re-exported): the caller/callee-saved
// partition and the calling convention's argument and return register
// bindings. Set Options.Machine to allocate under those constraints;
// see MachineRTPC and MachineFor.
type MachineModel = machine.Model

// MachineRTPC returns the register-file model of the paper's RT/PC
// target: 16 general-purpose registers (r0–r7 caller-saved, r0–r3
// arguments, r0 return) and 8 floating-point registers (f0–f3
// caller-saved and arguments, f0 return).
func MachineRTPC() *MachineModel { return machine.RTPC() }

// MachineFor derives a register-file model from a simulated target:
// the low half of each class is caller-saved, the first min(4, half)
// registers carry arguments, and register 0 carries the return value.
func MachineFor(m Machine) *MachineModel { return machine.ForTarget(m) }

// Options configures the allocator; it is alloc.Options re-exported.
type Options = alloc.Options

// Result is a completed allocation; it is alloc.Result re-exported.
type Result = alloc.Result

// PassStats records one trip around the paper's Figure 4 cycle:
// per-phase durations plus the pass's graph size, coalesced moves,
// spills, inserted spill code, and scan work. Result.Passes holds
// one per pass. It is alloc.PassStats re-exported so callers never
// import internal/alloc.
type PassStats = alloc.PassStats

// Typed option errors, re-exported from internal/alloc. Validation
// failures wrap these; match with errors.Is.
var (
	ErrBadK                  = alloc.ErrBadK
	ErrBadHeuristic          = alloc.ErrBadHeuristic
	ErrBadMetric             = alloc.ErrBadMetric
	ErrConflictingSpillModes = alloc.ErrConflictingSpillModes
	ErrBadWorkers            = alloc.ErrBadWorkers
	ErrBadPColorAlgo         = alloc.ErrBadPColorAlgo
	ErrBadMachine            = alloc.ErrBadMachine
)

// ErrIrreducible (ssa.ErrIrreducible re-exported) reports register
// pressure no spilling can reduce: a single instruction reads more
// distinct values of one class than the machine has registers. The
// SSA allocator returns it as a typed error; the Figure 4 allocators
// hit the same wall as "a spill temporary must itself spill".
var ErrIrreducible = ssa.ErrIrreducible

// Observer is the allocator's event-sink interface (obs.Sink
// re-exported): anything with Emit(TraceEvent) can receive the live
// event stream via Options.Observer. Sinks used with Assemble or
// AssembleContext must be safe for concurrent use.
type Observer = obs.Sink

// TraceEvent is one structured observation (obs.Event re-exported):
// a phase span boundary, a counter, a spill decision, or a
// color-reuse witness.
type TraceEvent = obs.Event

// Metrics is a point-in-time aggregate from a MetricsSink.
type Metrics = obs.Metrics

// NewJSONSink returns an Observer writing one JSON object per event
// per line to w — the format cmd/regalloc -trace and cmd/bench
// -trace emit. Check Err after the run when w is a file: per-event
// write failures are remembered there rather than stopping the
// allocator mid-stream.
func NewJSONSink(w io.Writer) *obs.JSONSink { return obs.NewJSONSink(w) }

// NewTextSink returns an Observer writing one human-readable line
// per event to w.
func NewTextSink(w io.Writer) Observer { return obs.NewTextSink(w) }

// NewMetricsSink returns an aggregating Observer; call Snapshot for
// the accumulated counters and per-phase duration histograms.
func NewMetricsSink() *obs.MetricsSink { return obs.NewMetricsSink() }

// MultiSink fans events out to several observers; nil entries are
// dropped.
func MultiSink(sinks ...Observer) Observer { return obs.Multi(sinks...) }

// Registry accumulates per-run summaries across many Allocate and
// Assemble calls (obs.Registry re-exported); see NewRegistry and
// Summarize. Exporters live in internal/obs/promtext (Prometheus
// text) and are served by cmd/allocd's /metrics.
type Registry = obs.Registry

// RunSummary is one completed run's condensed record
// (obs.RunSummary re-exported); Summarize builds one from a Result.
type RunSummary = obs.RunSummary

// NewRegistry returns an empty, thread-safe run registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Summarize condenses a completed allocation into the record a
// Registry accumulates: spill totals (in the same fixed-point milli
// units as the spill.cost_milli trace counter, so registry totals
// reconcile exactly with summed PassStats), palette sizes actually
// used per register class, coalescing totals, and per-phase wall
// time summed across passes.
func Summarize(unit string, res *Result) RunSummary {
	s := RunSummary{Unit: unit, Passes: len(res.Passes)}
	if len(res.Passes) > 0 {
		s.LiveRanges = res.Passes[0].LiveRanges
		s.Edges = res.Passes[0].Edges
	}
	var cost float64
	for _, p := range res.Passes {
		s.Spills += p.Spilled
		cost += p.SpillCost
		s.CoalescedMoves += p.CoalescedMoves
		s.PhaseNS[obs.PhaseBuild] += p.Build.Nanoseconds()
		s.PhaseNS[obs.PhaseSimplify] += p.Simplify.Nanoseconds()
		s.PhaseNS[obs.PhaseColor] += p.Color.Nanoseconds()
		s.PhaseNS[obs.PhaseSpill] += p.Spill.Nanoseconds()
	}
	s.SpillCostMilli = obs.SpillCostMilli(cost)
	s.TotalNS = res.TotalTime().Nanoseconds()
	if res.Func != nil {
		var maxColor int16 = -1
		for _, c := range res.Colors {
			if c > maxColor {
				maxColor = c
			}
		}
		seen := make([]bool, 2*(int(maxColor)+1)) // [class][color]
		for r, c := range res.Colors {
			if c < 0 {
				continue
			}
			cls := 0
			if res.Func.RegClass(ir.Reg(r)) == ir.ClassFloat {
				cls = 1
			}
			if i := cls*(int(maxColor)+1) + int(c); !seen[i] {
				seen[i] = true
				if cls == 1 {
					s.PaletteFloat++
				} else {
					s.PaletteInt++
				}
			}
		}
	}
	return s
}

// PortfolioCandidate is one strategy in a portfolio race
// (portfolio.Candidate re-exported): a label plus the full Options
// variant it runs under.
type PortfolioCandidate = portfolio.Candidate

// PortfolioConfig tunes a race (portfolio.Config re-exported): mode,
// concurrency bound, wall-clock budget, observer.
type PortfolioConfig = portfolio.Config

// PortfolioResult is a completed race (portfolio.Result re-exported):
// the winning allocation plus every candidate's outcome.
type PortfolioResult = portfolio.Result

// PortfolioMode selects the race's stopping rule.
type PortfolioMode = portfolio.Mode

// The two racing modes: run every candidate the budget admits
// (deterministic winner), or cancel stragglers once a verified
// zero-spill result lands (lower latency).
const (
	RaceToBest = portfolio.RaceToBest
	FirstGood  = portfolio.FirstGood
)

// DefaultPortfolio returns the standard candidate set derived from
// base: Chaitin and Briggs under cost/degree, the cost-only and
// degree-only spill metrics, smallest-last ordering, the speculative
// pcolor engine once per seed (portfolio.DefaultSeeds when none are
// given), and one Jones–Plassmann entrant on the first seed.
func DefaultPortfolio(base Options, pcolorSeeds ...uint64) []PortfolioCandidate {
	if len(pcolorSeeds) == 0 {
		pcolorSeeds = portfolio.DefaultSeeds
	}
	return portfolio.Default(base, pcolorSeeds...)
}

// AllocatePortfolio races the candidate strategies for one unit and
// returns the cheapest verified allocation with the full race report:
// per-candidate status, spill cost, and latency, the winner index,
// and the win margin. The winner is selected by (milli spill cost,
// spill count, candidate index), so it is reproducible regardless of
// goroutine finish order; see internal/portfolio for the budget and
// cancellation semantics.
func (p *Program) AllocatePortfolio(ctx context.Context, name string, cands []PortfolioCandidate, cfg PortfolioConfig) (*PortfolioResult, error) {
	f := p.IR.Func(name)
	if f == nil {
		return nil, fmt.Errorf("regalloc: no unit %s", name)
	}
	return portfolio.Race(ctx, f, cands, cfg)
}

// AssemblePortfolio races the candidates for every unit of the
// program and lowers each winner to machine code for m. As with
// AssembleContext, the machine is authoritative for register budgets:
// every candidate's KInt and KFloat are overridden with m.NumGPR and
// m.NumFPR. Units race sequentially (each race parallelizes
// internally under cfg.Workers); cancelling ctx stops the sequence
// with the context's error.
func (p *Program) AssemblePortfolio(ctx context.Context, m Machine, cands []PortfolioCandidate, cfg PortfolioConfig) (*asm.Program, map[string]*PortfolioResult, error) {
	fitted := make([]PortfolioCandidate, len(cands))
	for i, c := range cands {
		c.Opt.KInt = m.NumGPR
		c.Opt.KFloat = m.NumFPR
		fitted[i] = c
	}
	code := asm.NewProgram()
	results := make(map[string]*PortfolioResult, len(p.IR.Funcs))
	for _, f := range p.IR.Funcs {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("regalloc: %s: %w", f.Name, err)
		}
		pr, err := portfolio.Race(ctx, f, fitted, cfg)
		if err != nil {
			return nil, nil, err
		}
		af, err := asm.Lower(pr.Res.Func, pr.Res.Colors, m)
		if err != nil {
			return nil, nil, err
		}
		code.Add(af)
		results[f.Name] = pr
	}
	return code, results, nil
}

// SummarizePortfolio condenses a completed race into the record a
// Registry accumulates: the winner's allocation summary (exactly what
// Summarize builds) plus the race's candidate counts, winner
// strategy, and win margin.
func SummarizePortfolio(unit string, pr *PortfolioResult) RunSummary {
	s := Summarize(unit, pr.Res)
	started, finished, cancelled, _ := pr.Counts()
	s.PortfolioCandidates = len(pr.Outcomes)
	s.PortfolioStarted = started
	s.PortfolioFinished = finished
	s.PortfolioCancelled = cancelled
	s.PortfolioWinner = pr.Outcomes[pr.Winner].Name
	s.PortfolioMarginMilli = pr.WinMarginMilli
	s.PortfolioEntrants = make([]string, len(pr.Outcomes))
	for i, o := range pr.Outcomes {
		s.PortfolioEntrants[i] = o.Name
	}
	return s
}

// Machine describes the simulated target.
type Machine = target.Machine

// RTPC returns the paper's machine: 16 GPRs + 8 FPRs.
func RTPC() Machine { return target.RTPC() }

// DefaultOptions returns the paper's default configuration
// (optimistic heuristic, 16/8 registers, cost/degree spill metric).
func DefaultOptions() Options { return alloc.DefaultOptions() }

// Program is a compiled mini-FORTRAN program, ready for allocation.
type Program struct {
	IR *ir.Program
}

// Compile parses, checks, lowers, and optimizes source. The
// machine-independent optimizer (local CSE + loop-invariant code
// motion) runs by default because the paper's compiler was an
// optimizing compiler and the optimizer's long-lived temporaries are
// what creates the live-range structure the paper studies; use
// CompileNoOpt for the unoptimized ablation.
func Compile(source string) (*Program, error) {
	return compile(source, true)
}

// CompileNoOpt compiles without the machine-independent optimizer.
func CompileNoOpt(source string) (*Program, error) {
	return compile(source, false)
}

func compile(source string, optimize bool) (*Program, error) {
	astProg, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	irProg, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if optimize {
		for _, f := range irProg.Funcs {
			opt.Run(f)
			if err := ir.Validate(f); err != nil {
				return nil, fmt.Errorf("optimize: %w", err)
			}
		}
	}
	return &Program{IR: irProg}, nil
}

// Functions lists the program's unit names in source order.
func (p *Program) Functions() []string {
	names := make([]string, len(p.IR.Funcs))
	for i, f := range p.IR.Funcs {
		names[i] = f.Name
	}
	return names
}

// Func returns the IR of one unit, or nil.
func (p *Program) Func(name string) *ir.Func { return p.IR.Func(name) }

// Allocate runs register allocation for one unit. Options are
// validated first; misuse returns one of the typed errors (ErrBadK,
// ErrConflictingSpillModes, ...).
func (p *Program) Allocate(name string, opt Options) (*Result, error) {
	return p.AllocateContext(context.Background(), name, opt)
}

// AllocateContext is Allocate with cancellation and request-trace
// propagation: ctx is checked at every pass boundary, and a reqtrace
// scope carried by ctx receives the run's per-phase spans.
func (p *Program) AllocateContext(ctx context.Context, name string, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	f := p.IR.Func(name)
	if f == nil {
		return nil, fmt.Errorf("regalloc: no unit %s", name)
	}
	return alloc.RunContext(ctx, f, opt)
}

// AssembleContext allocates every unit with opt and lowers the
// result to machine code for m. Units are independent, so they are
// allocated on a worker pool bounded by opt.Workers (0 means
// GOMAXPROCS); the output is deterministic regardless (unit order
// and every per-unit result are position-fixed). It returns the code
// and the per-unit allocation results.
//
// The machine is authoritative for register budgets: opt.KInt and
// opt.KFloat are set to m.NumGPR and m.NumFPR, because the lowered
// code addresses m's physical register files and a larger budget
// could not be encoded. To color for a budget decoupled from any
// machine, use Allocate. The remaining options are validated before
// any work starts; misuse returns a typed error.
//
// Cancelling ctx stops the run: units not yet started are skipped,
// units in flight stop at their next pass boundary (alloc.RunContext
// checks the context between Figure 4 passes; there is no preemption
// point inside a pass), and the context's error is returned.
func (p *Program) AssembleContext(ctx context.Context, m Machine, opt Options) (*asm.Program, map[string]*Result, error) {
	opt.KInt = m.NumGPR
	opt.KFloat = m.NumFPR
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	slots, err := p.allocUnits(ctx, opt, func(res *Result) (*asm.Func, error) {
		return asm.Lower(res.Func, res.Colors, m)
	})
	if err != nil {
		return nil, nil, err
	}
	code := asm.NewProgram()
	results := make(map[string]*Result, len(p.IR.Funcs))
	for i, f := range p.IR.Funcs {
		code.Add(slots[i].af)
		results[f.Name] = slots[i].res
	}
	return code, results, nil
}

// AllocateAllContext allocates every unit of the program with opt on
// the same bounded worker pool AssembleContext uses, without lowering
// to machine code — so the register budget comes from opt (KInt and
// KFloat as given) rather than from a machine. Options are validated
// first; cancelling ctx skips units not yet started and returns the
// context's error. The result maps unit names to their allocations.
func (p *Program) AllocateAllContext(ctx context.Context, opt Options) (map[string]*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	slots, err := p.allocUnits(ctx, opt, nil)
	if err != nil {
		return nil, err
	}
	results := make(map[string]*Result, len(p.IR.Funcs))
	for i, f := range p.IR.Funcs {
		results[f.Name] = slots[i].res
	}
	return results, nil
}

// allocSlot is one unit's outcome from the shared worker pool.
type allocSlot struct {
	af  *asm.Func
	res *Result
	err error
}

// allocUnits is the worker-pool core shared by AssembleContext and
// AllocateAllContext: allocate every unit with opt on a pool bounded
// by opt.Workers (0 means GOMAXPROCS), optionally post-processing
// each result with lower (nil to skip). The output is deterministic
// regardless of scheduling: unit order and every per-unit result are
// position-fixed. The first error (or the context's) wins.
func (p *Program) allocUnits(ctx context.Context, opt Options, lower func(*Result) (*asm.Func, error)) ([]allocSlot, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	slots := make([]allocSlot, len(p.IR.Funcs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, f := range p.IR.Funcs {
		// Check cancellation before racing it against a free worker
		// slot: a done context always wins.
		if ctx.Err() != nil {
			slots[i].err = fmt.Errorf("regalloc: %s: %w", f.Name, ctx.Err())
			continue
		}
		select {
		case <-ctx.Done():
			slots[i].err = fmt.Errorf("regalloc: %s: %w", f.Name, ctx.Err())
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, f *ir.Func) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := alloc.RunContext(ctx, f, opt)
			if err != nil {
				slots[i].err = fmt.Errorf("regalloc: %s: %w", f.Name, err)
				return
			}
			var af *asm.Func
			if lower != nil {
				af, err = lower(res)
				if err != nil {
					slots[i].err = err
					return
				}
			}
			slots[i] = allocSlot{af: af, res: res}
		}(i, f)
	}
	wg.Wait()
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
	}
	return slots, nil
}

// Assemble is AssembleContext with a background context: allocate
// and lower every unit for m. As documented there, m's register-file
// sizes override opt.KInt and opt.KFloat.
func (p *Program) Assemble(m Machine, opt Options) (*asm.Program, map[string]*Result, error) {
	return p.AssembleContext(context.Background(), m, opt)
}

// MemWords suggests a simulator memory size: enough for the static
// data plus generous headroom for driver-managed arrays below the
// static area.
func (p *Program) MemWords() int {
	n := p.IR.StaticEnd + (1 << 16)
	if n < (1 << 22) {
		n = 1 << 22
	}
	return int(n)
}

// NewVM returns a simulator over assembled code.
func NewVM(code *asm.Program, memWords int) *vm.VM { return vm.New(code, memWords) }

// NewInterp returns the reference IR interpreter for the program.
func (p *Program) NewInterp(memWords int) *irinterp.Interp {
	return irinterp.New(p.IR, memWords)
}
