// Package token defines the lexical tokens of the mini-FORTRAN
// dialect compiled by this reproduction. The dialect is a free-form
// (not column-sensitive) subset of FORTRAN 77 sufficient to express
// the paper's benchmark routines: SUBROUTINE/FUNCTION units, typed
// and implicitly-typed scalars, 1-D and 2-D arrays, DO and DO WHILE
// loops, block IF, CALL, and the usual arithmetic intrinsics.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keywords are case-insensitive in source; the lexer
// canonicalizes identifiers and keywords to upper case.
const (
	ILLEGAL Kind = iota
	EOF
	EOL // end of statement (newline)

	IDENT     // X, DMAX, Y2
	INTCONST  // 42
	REALCONST // 1.0, 2.5E-8

	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	LPAREN // (
	RPAREN // )
	COMMA  // ,
	ASSIGN // =

	LT // .LT. or <
	LE // .LE. or <=
	GT // .GT. or >
	GE // .GE. or >=
	EQ // .EQ. or ==
	NE // .NE. or /=

	AND // .AND.
	OR  // .OR.
	NOT // .NOT.

	keywordStart
	SUBROUTINE
	FUNCTION
	INTEGER
	REAL
	DOUBLE    // DOUBLE PRECISION (treated as REAL)
	PRECISION // second word of DOUBLE PRECISION
	DIMENSION
	DO
	WHILE
	ENDDO
	IF
	THEN
	ELSE
	ELSEIF
	ENDIF
	CALL
	RETURN
	CONTINUE
	EXIT
	CYCLE
	GOTO
	END
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL:    "ILLEGAL",
	EOF:        "EOF",
	EOL:        "EOL",
	IDENT:      "IDENT",
	INTCONST:   "INTCONST",
	REALCONST:  "REALCONST",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	POW:        "**",
	LPAREN:     "(",
	RPAREN:     ")",
	COMMA:      ",",
	ASSIGN:     "=",
	LT:         ".LT.",
	LE:         ".LE.",
	GT:         ".GT.",
	GE:         ".GE.",
	EQ:         ".EQ.",
	NE:         ".NE.",
	AND:        ".AND.",
	OR:         ".OR.",
	NOT:        ".NOT.",
	SUBROUTINE: "SUBROUTINE",
	FUNCTION:   "FUNCTION",
	INTEGER:    "INTEGER",
	REAL:       "REAL",
	DOUBLE:     "DOUBLE",
	PRECISION:  "PRECISION",
	DIMENSION:  "DIMENSION",
	DO:         "DO",
	WHILE:      "WHILE",
	ENDDO:      "ENDDO",
	IF:         "IF",
	THEN:       "THEN",
	ELSE:       "ELSE",
	ELSEIF:     "ELSEIF",
	ENDIF:      "ENDIF",
	CALL:       "CALL",
	RETURN:     "RETURN",
	CONTINUE:   "CONTINUE",
	EXIT:       "EXIT",
	CYCLE:      "CYCLE",
	GOTO:       "GOTO",
	END:        "END",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordStart && k < keywordEnd }

var keywords = map[string]Kind{
	"SUBROUTINE": SUBROUTINE,
	"FUNCTION":   FUNCTION,
	"INTEGER":    INTEGER,
	"REAL":       REAL,
	"DOUBLE":     DOUBLE,
	"PRECISION":  PRECISION,
	"DIMENSION":  DIMENSION,
	"DO":         DO,
	"WHILE":      WHILE,
	"ENDDO":      ENDDO,
	"END DO":     ENDDO,
	"IF":         IF,
	"THEN":       THEN,
	"ELSE":       ELSE,
	"ELSEIF":     ELSEIF,
	"ENDIF":      ENDIF,
	"END IF":     ENDIF,
	"CALL":       CALL,
	"RETURN":     RETURN,
	"CONTINUE":   CONTINUE,
	"EXIT":       EXIT,
	"CYCLE":      CYCLE,
	"GOTO":       GOTO,
	"END":        END,
}

// Lookup maps an upper-cased identifier spelling to its keyword kind,
// or returns IDENT if the spelling is not reserved.
func Lookup(upper string) Kind {
	if k, ok := keywords[upper]; ok {
		return k
	}
	return IDENT
}

// Dotted maps a dotted operator spelling (without the dots, upper
// case) such as "LT" or "AND" to its kind; ok is false if the
// spelling is not a dotted operator.
func Dotted(upper string) (Kind, bool) {
	switch upper {
	case "LT":
		return LT, true
	case "LE":
		return LE, true
	case "GT":
		return GT, true
	case "GE":
		return GE, true
	case "EQ":
		return EQ, true
	case "NE":
		return NE, true
	case "AND":
		return AND, true
	case "OR":
		return OR, true
	case "NOT":
		return NOT, true
	}
	return ILLEGAL, false
}
