// Package alloc drives register allocation: the paper's Figure 4
// cycle of renumber/build/coalesce (the "build" box), simplify,
// color, and spill, repeated until a pass completes with no new
// spills. Each pass's phase CPU times and spill counts are recorded,
// which is exactly the data behind the paper's Figure 7.
package alloc

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"regalloc/internal/coalesce"
	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/liverange"
	"regalloc/internal/obs"
	"regalloc/internal/pcolor"
	"regalloc/internal/spill"
)

// PassStats records one trip around the Figure 4 cycle.
type PassStats struct {
	Build    time.Duration // renumber + graph build + coalesce + costs
	Simplify time.Duration
	Color    time.Duration // zero when Chaitin skips straight to spilling
	Spill    time.Duration // zero on the final (successful) pass

	LiveRanges     int // nodes in this pass's interference graph
	Edges          int
	CoalescedMoves int
	Spilled        int     // live ranges spilled by this pass
	SpillCost      float64 // summed estimated cost of those ranges
	LoadsInserted  int
	StoresInserted int
	Remats         int // reloads replaced by constant recomputation
	SplitLoads     int // preheader reloads shared by whole loops
	ScanSteps      int // bucket-scan work in simplify
}

// Result is a successful allocation.
type Result struct {
	// Func is the allocated function: spill code inserted, registers
	// renumbered to final live ranges.
	Func *ir.Func
	// Colors assigns each register of Func a color in [0, k) of its
	// class; every register is colored.
	Colors []int16
	// Passes holds per-pass statistics, in order.
	Passes []PassStats
	// Options echoes the configuration used.
	Options Options
}

// TotalSpilled sums live ranges spilled across all passes.
func (r *Result) TotalSpilled() int {
	n := 0
	for _, p := range r.Passes {
		n += p.Spilled
	}
	return n
}

// FirstPassSpilled is the number of ranges spilled by the first
// pass — the figure the paper's tables report as "registers spilled".
func (r *Result) FirstPassSpilled() int {
	if len(r.Passes) == 0 {
		return 0
	}
	return r.Passes[0].Spilled
}

// FirstPassSpillCost is the estimated cost of the first pass's
// spills (the paper's "spill cost" column).
func (r *Result) FirstPassSpillCost() float64 {
	if len(r.Passes) == 0 {
		return 0
	}
	return r.Passes[0].SpillCost
}

// TotalSpillCost sums estimated spill costs across passes.
func (r *Result) TotalSpillCost() float64 {
	c := 0.0
	for _, p := range r.Passes {
		c += p.SpillCost
	}
	return c
}

// LiveRanges is the size of the first interference graph (the
// paper's "live ranges" column).
func (r *Result) LiveRanges() int {
	if len(r.Passes) == 0 {
		return 0
	}
	return r.Passes[0].LiveRanges
}

// TotalTime sums all phase times over all passes.
func (r *Result) TotalTime() time.Duration {
	var t time.Duration
	for _, p := range r.Passes {
		t += p.Build + p.Simplify + p.Color + p.Spill
	}
	return t
}

// Run allocates registers for f (on a private clone) and returns the
// result. Options are validated first (see Options.Validate); Run
// then fails if the iteration exceeds MaxPasses or if the machine
// has too few registers to hold a single instruction's operands (a
// spill temporary would itself need spilling). When opt.Observer is
// set, every phase additionally emits structured events (package
// obs) as it runs.
func Run(f *ir.Func, opt Options) (*Result, error) {
	return RunContext(context.Background(), f, opt)
}

// colorScratchPool recycles the per-Run coloring scratch (worklists,
// simplify stacks, color/used buffers) across allocations, so a warm
// service process doing allocation after allocation stops paying the
// scratch allocations entirely.
var colorScratchPool = sync.Pool{New: func() any { return new(color.Scratch) }}

// RunContext is Run with cancellation: the context is checked at
// every pass boundary (the natural preemption point of the Figure 4
// cycle — phases within a pass run to completion), so a cancelled
// service request or an expired portfolio budget stops a multi-pass
// allocation between passes instead of running it to the end. The
// error wraps ctx.Err(), matchable with errors.Is.
func RunContext(ctx context.Context, f *ir.Func, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 64
	}
	if opt.Heuristic == color.SSA && !opt.UsePColor {
		// The SSA heuristic replaces the whole Figure 4 cycle, not
		// just the simplify order. (UsePColor ignores Heuristic, so
		// the speculative engine keeps precedence, as it does for the
		// other heuristics.)
		return runSSA(ctx, f, opt)
	}
	if opt.Heuristic == color.IRC && !opt.UsePColor {
		// Iterated register coalescing replaces the cycle's separate
		// coalesce pre-pass and simplify phase with one worklist
		// machine (same UsePColor precedence as above).
		return runIRC(ctx, f, opt)
	}
	work := f.Clone()
	res := &Result{Options: opt}
	kf := opt.K()
	tr := obs.New(opt.Observer, f.Name)
	runStart := time.Now()

	// One coloring scratch serves every pass of the cycle (and, via
	// the pool, every later Run on this goroutine's path): worklists,
	// stacks, and color buffers are reused, so a steady-state coloring
	// pass allocates nothing. Slices returned by the Into entry points
	// alias the scratch and are only held within the pass that
	// produced them; the final coloring is copied out before release.
	sc := colorScratchPool.Get().(*color.Scratch)
	defer colorScratchPool.Put(sc)

	for pass := 0; pass < opt.MaxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("alloc: %s: cancelled before pass %d: %w", f.Name, pass, err)
		}
		var ps PassStats
		tr.SetPass(pass)

		// Build: renumber into webs, analyze once (liveness + CFG,
		// cached in the pass context), coalesce copies, rebuild the
		// graph, compute spill costs from the stamped loop depths.
		tr.BeginPhase(obs.PhaseBuild)
		t0 := time.Now()
		liverange.Renumber(work)
		pc := newPassCtx(work)
		var g *ig.Graph
		var pre []int16 // precolored colors by node; nil without a machine model
		if opt.Coalesce {
			var ck func(ir.Class) int
			if opt.ConservativeCoalesce {
				ck = kf
			}
			tc := time.Now()
			tr.BeginPhase(obs.PhaseCoalesce)
			cs, cg := coalesce.RunWithLiveness(work, pc.lv, ck, opt.Workers, tr)
			tr.EndPhase(obs.PhaseCoalesce, time.Since(tc))
			ps.CoalescedMoves = cs.Moves
			pc.livenessRuns += cs.LivenessRuns
			g = cg // non-nil exactly when no move merged
			if cs.Moves > 0 {
				// Coalescing rewrote the code (and so returned no
				// graph): renumber the merged webs and rebuild on
				// fresh liveness. The CFG analysis stays valid — no
				// block was touched.
				liverange.Renumber(work)
				pc.refreshLiveness(work)
				g = nil
			}
		}
		if opt.Machine != nil {
			// The machine model extends the graph with precolored
			// register nodes and call-clobber edges; any plain graph
			// the coalescer returned lacks those, so rebuild.
			mg := ig.BuildWithMachine(work, pc.lv, opt.Machine, tr)
			g = mg.Graph
			pre = mg.Pre
		} else if g == nil {
			g = ig.BuildWithLiveness(work, pc.lv, opt.Workers, tr)
		}
		var rematOK []bool
		var rematVals []spill.RematValue
		var costs []float64
		if opt.Rematerialize {
			rematOK, rematVals = spill.Remat(work)
			costs = spill.CostsRemat(work, opt.CostParams, rematOK)
		} else {
			costs = spill.Costs(work, opt.CostParams)
		}
		ps.Build = time.Since(t0)
		ps.LiveRanges = work.NumRegs()
		ps.Edges = g.NumEdges()
		tr.EndPhase(obs.PhaseBuild, ps.Build)
		pc.emitCounters(tr)
		if tr.Enabled() {
			tr.Counter(obs.PhaseBuild, "graph.nodes", int64(ps.LiveRanges))
			tr.Counter(obs.PhaseBuild, "graph.edges", int64(ps.Edges))
			tr.Counter(obs.PhaseBuild, "coalesce.moves", int64(ps.CoalescedMoves))
		}

		var toSpill []int32
		if opt.UsePColor {
			// Speculative engine: color with an unbounded first-fit
			// palette (seeded, deterministic per (seed, workers)), then
			// spill every node whose color landed at or beyond its
			// class budget. The survivors keep their colors — a subset
			// of a proper coloring is proper — so a pass whose palette
			// fits the budget is a finished allocation.
			tr.BeginPhase(obs.PhaseColor)
			t0 = time.Now()
			workers := opt.PColorWorkers
			if workers <= 0 {
				workers = DefaultPColorWorkers
			}
			colors, _ := pcolor.Color(g, pcolor.Options{Workers: workers, Seed: opt.PColorSeed, Algo: opt.PColorAlgo, Tracer: tr})
			var marked []int32
			for v := int32(0); v < int32(len(colors)); v++ {
				if int(colors[v]) >= kf(g.Class(v)) {
					colors[v] = color.NoColor
					marked = append(marked, v)
				}
			}
			// Optimistic rescue, the same move Select makes for spill
			// candidates: with every over-budget node cleared, first-fit
			// each one again against the surviving assignment — spilling
			// one over-budget node often frees a low color for another.
			// Sequential, so the outcome is deterministic. Nodes that
			// still don't fit are the pass's spill set. Spill
			// temporaries go first: they cannot be spilled again, so
			// they must claim a freed color before ordinary ranges
			// (created late, their node numbers sort them last, which is
			// exactly the wrong rescue order for them).
			order := marked
			for _, v := range marked {
				if work.RegFlags(ir.Reg(v))&ir.FlagSpillTemp != 0 {
					order = make([]int32, 0, len(marked))
					for _, w := range marked {
						if work.RegFlags(ir.Reg(w))&ir.FlagSpillTemp != 0 {
							order = append(order, w)
						}
					}
					for _, w := range marked {
						if work.RegFlags(ir.Reg(w))&ir.FlagSpillTemp == 0 {
							order = append(order, w)
						}
					}
					break
				}
			}
			var over []int32
			var used []bool
			for _, v := range order {
				kn := kf(g.Class(v))
				if cap(used) < kn {
					used = make([]bool, kn)
				}
				used = used[:kn]
				for j := range used {
					used[j] = false
				}
				for _, nb := range g.Neighbors(v) {
					if c := colors[nb]; c != color.NoColor && int(c) < kn {
						used[c] = true
					}
				}
				c := color.NoColor
				inUse := 0
				for j := 0; j < kn; j++ {
					if used[j] {
						inUse++
					} else if c == color.NoColor {
						c = int16(j)
					}
				}
				if c == color.NoColor && work.RegFlags(ir.Reg(v))&ir.FlagSpillTemp != 0 {
					// A spill temporary must not spill again. Apply
					// Chaitin's rule in miniature: evict the cheapest
					// ordinary neighbor (spilling it instead) until a
					// color frees up. Evictions target real ranges, so
					// this is also what makes the cost-blind engine
					// reduce pressure and converge; a temporary with only
					// temporary neighbors falls through to the same hard
					// error the sequential path reports.
					for c == color.NoColor {
						w := int32(-1)
						for _, nb := range g.Neighbors(v) {
							cb := colors[nb]
							if cb == color.NoColor || int(cb) >= kn {
								continue
							}
							if work.RegFlags(ir.Reg(nb))&ir.FlagSpillTemp != 0 {
								continue
							}
							if w < 0 || costs[nb] < costs[w] || (costs[nb] == costs[w] && nb < w) {
								w = nb
							}
						}
						if w < 0 {
							break
						}
						tr.SpillDecision(w, int32(g.Degree(w)), costs[w], costs[w])
						colors[w] = color.NoColor
						over = append(over, w)
						for j := range used {
							used[j] = false
						}
						for _, nb := range g.Neighbors(v) {
							if cb := colors[nb]; cb != color.NoColor && int(cb) < kn {
								used[cb] = true
							}
						}
						for j := 0; j < kn; j++ {
							if !used[j] {
								c = int16(j)
								break
							}
						}
					}
				}
				if c == color.NoColor {
					tr.SpillDecision(v, int32(g.Degree(v)), costs[v], float64(g.Degree(v)))
					over = append(over, v)
					continue
				}
				colors[v] = c
				tr.ColorReuse(v, int32(g.Degree(v)), inUse, c)
			}
			ps.Color = time.Since(t0)
			tr.EndPhase(obs.PhaseColor, ps.Color)
			if len(over) == 0 {
				res.Passes = append(res.Passes, ps)
				if err := color.Verify(g, colors, kf); err != nil {
					return nil, fmt.Errorf("alloc: %s: %w", f.Name, err)
				}
				res.Func = work
				res.Colors = colors
				recordPassSpans(ctx, f.Name, opt, res.Passes, runStart)
				return res, nil
			}
			toSpill = over
		} else {
			// Simplify.
			tr.BeginPhase(obs.PhaseSimplify)
			t0 = time.Now()
			sr := color.SimplifyPreInto(sc, g, pre, costs, kf, opt.Heuristic, opt.Metric, tr)
			ps.Simplify = time.Since(t0)
			ps.ScanSteps = sr.ScanSteps
			tr.EndPhase(obs.PhaseSimplify, ps.Simplify)
			tr.Counter(obs.PhaseSimplify, "simplify.scan_steps", int64(ps.ScanSteps))

			if opt.Heuristic == color.Chaitin && len(sr.SpillMarked) > 0 {
				// Chaitin: spill immediately, skip coloring this pass.
				toSpill = sr.SpillMarked
			} else {
				tr.BeginPhase(obs.PhaseColor)
				t0 = time.Now()
				colors, uncolored := color.SelectPreInto(sc, g, pre, sr, kf, opt.Heuristic != color.Chaitin, tr)
				ps.Color = time.Since(t0)
				tr.EndPhase(obs.PhaseColor, ps.Color)
				if len(uncolored) == 0 {
					res.Passes = append(res.Passes, ps)
					if err := color.Verify(g, colors, kf); err != nil {
						return nil, fmt.Errorf("alloc: %s: %w", f.Name, err)
					}
					res.Func = work
					// colors aliases the pooled scratch; the result
					// outlives the pass, so copy it out (precolored
					// node colors stay behind — the program only ever
					// names virtual registers).
					res.Colors = append([]int16(nil), colors[:work.NumRegs()]...)
					if opt.Machine != nil {
						if err := VerifyAssignmentMachine(work, res.Colors, opt.Machine); err != nil {
							return nil, fmt.Errorf("alloc: %s: %w", f.Name, err)
						}
					}
					recordPassSpans(ctx, f.Name, opt, res.Passes, runStart)
					return res, nil
				}
				toSpill = uncolored
			}
		}

		// Spill.
		regs := make([]ir.Reg, len(toSpill))
		for i, n := range toSpill {
			if work.RegFlags(ir.Reg(n))&ir.FlagSpillTemp != 0 {
				return nil, fmt.Errorf("alloc: %s: a spill temporary must itself spill; %d %s registers cannot hold one instruction",
					f.Name, kf(g.Class(n)), g.Class(n))
			}
			regs[i] = ir.Reg(n)
			ps.SpillCost += costs[n]
		}
		ps.Spilled = len(toSpill)
		tr.BeginPhase(obs.PhaseSpill)
		t0 = time.Now()
		var st spill.Stats
		switch {
		case opt.Split:
			// pc.info is still the analysis of work: nothing since the
			// pass started has added or removed a block. (Recomputing
			// here was the second cfg.Analyze per split-mode pass.)
			st = spill.InsertCodeSplit(work, regs, pc.info)
		case opt.Rematerialize:
			st = spill.InsertCodeRemat(work, regs, rematOK, rematVals)
		default:
			st = spill.InsertCode(work, regs)
		}
		ps.Spill = time.Since(t0)
		ps.LoadsInserted = st.Loads
		ps.StoresInserted = st.Stores
		ps.Remats = st.Remats
		ps.SplitLoads = st.SplitLoads
		tr.EndPhase(obs.PhaseSpill, ps.Spill)
		if tr.Enabled() {
			tr.Counter(obs.PhaseSpill, "spill.ranges", int64(ps.Spilled))
			// Fixed-point millicost: cost estimates are fractional
			// (cost/degree metrics, remat discounts), and a plain
			// int64 truncation made trace totals drift from
			// PassStats.SpillCost. value/1000 reconciles exactly to
			// the rounding.
			tr.Counter(obs.PhaseSpill, "spill.cost_milli", int64(math.Round(ps.SpillCost*1000)))
			st.Emit(tr)
		}
		res.Passes = append(res.Passes, ps)
	}
	return nil, fmt.Errorf("alloc: %s: no convergence after %d passes", f.Name, opt.MaxPasses)
}
