// Package graphgen builds interference graphs directly — random
// G(n,p) graphs and structured graphs mimicking the paper's
// workloads — for property tests and for benchmarking the coloring
// heuristics beyond the compiled suite.
package graphgen

import (
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// RNG is a small deterministic generator (xorshift64*), so graph
// corpora are reproducible.
type RNG struct{ s uint64 }

// NewRNG returns a generator; seed 0 is remapped to a fixed odd
// constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Random returns a G(n,p) interference graph over a single register
// class, plus deterministic pseudo-random spill costs in [1, 1000).
func Random(n int, p float64, seed uint64) (*ig.Graph, []float64) {
	rng := NewRNG(seed)
	classes := make([]ir.Class, n)
	g := ig.New(classes)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float() < p {
				g.AddEdge(int32(a), int32(b))
			}
		}
	}
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + float64(rng.Intn(999))
	}
	return g, costs
}

// TwoClass returns a G(n,p) graph whose nodes alternate between the
// integer and float classes (edges only join same-class nodes, as in
// real interference graphs).
func TwoClass(n int, p float64, seed uint64) (*ig.Graph, []float64) {
	rng := NewRNG(seed)
	classes := make([]ir.Class, n)
	for i := range classes {
		if i%2 == 1 {
			classes[i] = ir.ClassFloat
		}
	}
	g := ig.New(classes)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float() < p {
				g.AddEdge(int32(a), int32(b)) // cross-class pairs are ignored by AddEdge
			}
		}
	}
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + float64(rng.Intn(999))
	}
	return g, costs
}

// SVDLike builds the paper's §1.2 pressure pattern directly, with
// k = 16 in mind:
//
//   - nLong long live ranges (pairwise interfering, expensive) — the
//     values carried from initialization across every loop nest;
//   - nCopy cheap "array copy loop" nodes (the indices and limits I,
//     J, M, N of Figure 1) that interfere with the long ranges, with
//     each other, and — through temporal adjacency — with `overlap`
//     members of the first big nest, giving them the high degree and
//     low cost/degree ratio that makes Chaitin's heuristic pick them
//     first when stuck;
//   - nCliques dense nests of cliqueSize expensive nodes, each
//     interfering with every long range.
//
// Spilling the copy nodes does not relieve the nests, so Chaitin's
// pessimistic pass spills them *and* the nest overflow. Optimistic
// coloring reconsiders: the copy nodes are reinserted last, find
// their nest neighbors sharing (or lacking) colors, and are colored
// — the paper's §3 narrative.
func SVDLike(nLong, nCopy, nCliques, cliqueSize, overlap int, seed uint64) (*ig.Graph, []float64) {
	rng := NewRNG(seed)
	n := nLong + nCopy + nCliques*cliqueSize
	classes := make([]ir.Class, n)
	g := ig.New(classes)
	costs := make([]float64, n)

	// Long ranges: pairwise interference and expensive to spill.
	for a := 0; a < nLong; a++ {
		for b := a + 1; b < nLong; b++ {
			g.AddEdge(int32(a), int32(b))
		}
		costs[a] = 50000 + float64(rng.Intn(10000))
	}
	// Copy-loop nodes.
	copyBase := nLong
	for i := 0; i < nCopy; i++ {
		for j := i + 1; j < nCopy; j++ {
			g.AddEdge(int32(copyBase+i), int32(copyBase+j))
		}
		for l := 0; l < nLong; l++ {
			g.AddEdge(int32(copyBase+i), int32(l))
		}
		costs[copyBase+i] = 20 + float64(rng.Intn(10))
	}
	// Nests.
	for c := 0; c < nCliques; c++ {
		base := nLong + nCopy + c*cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				g.AddEdge(int32(base+i), int32(base+j))
			}
			for l := 0; l < nLong; l++ {
				g.AddEdge(int32(base+i), int32(l))
			}
			costs[base+i] = 2000 + float64(rng.Intn(500))
		}
	}
	// Temporal adjacency between the copy loop and the start of the
	// first nest.
	firstNest := nLong + nCopy
	for i := 0; i < nCopy; i++ {
		for j := 0; j < overlap && j < cliqueSize; j++ {
			g.AddEdge(int32(copyBase+i), int32(firstNest+j))
		}
	}
	return g, costs
}

// Cycle returns the n-cycle (Figure 3 of the paper is Cycle(4)).
func Cycle(n int) (*ig.Graph, []float64) {
	classes := make([]ir.Class, n)
	g := ig.New(classes)
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), int32((i+1)%n))
	}
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 100 // equal costs, as in the paper's example
	}
	return g, costs
}
