package reqtrace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	sc := Mint()
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("Mint() = %+v, want valid and sampled", sc)
	}
	h := sc.Header()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("Header() = %q", h)
	}
	got, err := Parse(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestParseKnownVector(t *testing.T) {
	// The W3C spec's own example.
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := Parse(h)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", sc.SpanID)
	}
	if !sc.Sampled {
		t.Error("flags 01 did not parse as sampled")
	}
	if sc.Header() != h {
		t.Errorf("Header() = %q, want %q", sc.Header(), h)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // no flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // 00 with trailing data
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-xyzf2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, err := Parse(h); err == nil {
			t.Errorf("Parse(%q) accepted", h)
		}
	}
}

func TestChildKeepsTraceMintsSpan(t *testing.T) {
	sc := Mint()
	c := sc.Child()
	if c.TraceID != sc.TraceID {
		t.Error("Child changed the trace id")
	}
	if c.SpanID == sc.SpanID {
		t.Error("Child kept the parent span id")
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	id, end := tr.StartSpan(0, "x")
	end()
	if id != 0 {
		t.Errorf("nil StartSpan id = %d", id)
	}
	if got := tr.Record(0, "y", time.Now(), time.Second); got != 0 {
		t.Errorf("nil Record id = %d", got)
	}
	tr.Annotate("k", "v")
	tr.AddAttr(1, "k", "v")
	if s, a := tr.Snapshot(); s != nil || a != nil {
		t.Error("nil Snapshot returned data")
	}
	if tr.SpanContext().Valid() {
		t.Error("nil SpanContext valid")
	}
	// A context without a scope yields the nil trace back.
	if got, parent := FromContext(context.Background()); got != nil || parent != 0 {
		t.Error("FromContext(empty) != (nil, 0)")
	}
	if ctx := ContextWith(context.Background(), nil, 0); ctx != context.Background() {
		t.Error("ContextWith(nil) allocated a context")
	}
}

func TestSpanTreeAndAnnotations(t *testing.T) {
	tr := NewTrace(Mint())
	root, endRoot := tr.StartSpan(0, "request")
	phase := tr.Record(root, "phase:build", tr.Start(), 1500*time.Nanosecond, Attr{Key: "pass", Value: "0"})
	tr.AddAttr(phase, "winner", "true")
	tr.Annotate("unit", "SAXPYISH")
	tr.Annotate("unit", "OTHER") // later write wins
	endRoot(Attr{Key: "status", Value: "200"})

	spans, annots := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "request" || spans[0].Parent != 0 || spans[0].DurNS <= 0 {
		t.Errorf("root = %+v", spans[0])
	}
	if spans[1].Parent != root || spans[1].DurNS != 1500 {
		t.Errorf("child = %+v", spans[1])
	}
	var hasWinner bool
	for _, a := range spans[1].Attrs {
		if a.Key == "winner" {
			hasWinner = true
		}
	}
	if !hasWinner {
		t.Error("AddAttr did not land")
	}
	if len(annots) != 1 || annots[0].Value != "OTHER" {
		t.Errorf("annots = %+v", annots)
	}
	if tr.Annotation("unit") != "OTHER" {
		t.Errorf("Annotation(unit) = %q", tr.Annotation("unit"))
	}

	// Snapshot is a deep copy: mutating it cannot corrupt the trace.
	spans[1].Attrs[0].Value = "mutated"
	again, _ := tr.Snapshot()
	if again[1].Attrs[0].Value == "mutated" {
		t.Error("Snapshot aliases internal attr storage")
	}
}

func TestContextCarriesScope(t *testing.T) {
	tr := NewTrace(Mint())
	root, _ := tr.StartSpan(0, "request")
	ctx := ContextWith(context.Background(), tr, root)
	got, parent := FromContext(ctx)
	if got != tr || parent != root {
		t.Fatalf("FromContext = (%p, %d), want (%p, %d)", got, parent, tr, root)
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(Mint())
	root, endRoot := tr.StartSpan(0, "request")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id, end := tr.StartSpan(root, "candidate")
				tr.AddAttr(id, "i", "x")
				end()
				tr.Record(root, "phase", time.Now(), time.Microsecond)
				tr.Annotate("unit", "U")
			}
		}()
	}
	wg.Wait()
	endRoot()
	spans, _ := tr.Snapshot()
	if want := 1 + 8*100*2; len(spans) != want {
		t.Fatalf("spans = %d, want %d", len(spans), want)
	}
	seen := map[uint32]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// BenchmarkFromContextUntraced measures the entire per-call cost an
// untraced request pays at each instrumentation site: one context
// lookup returning a nil trace, after which every hook is a
// nil-receiver no-op. This is the number behind the "tracing is free
// when unused" claim — it must stay in the low nanoseconds, far under
// 1% of even the fastest allocation.
func BenchmarkFromContextUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, parent := FromContext(ctx)
		if rt != nil || parent != 0 {
			b.Fatal("background context carries a trace")
		}
		// The downstream hooks on the nil receiver, as instrumented
		// code calls them.
		rt.Annotate("unit", "U")
		_ = rt.Record(parent, "phase", time.Time{}, 0)
	}
}

// BenchmarkRecordTraced is the traced-path counterpart: one finished
// span recorded onto a live trace.
func BenchmarkRecordTraced(b *testing.B) {
	tr := NewTrace(Mint())
	root, _ := tr.StartSpan(0, "request")
	ctx := ContextWith(context.Background(), tr, root)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, parent := FromContext(ctx)
		rt.Record(parent, "phase", start, time.Microsecond)
	}
}
