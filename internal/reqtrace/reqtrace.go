// Package reqtrace is the request-scoped tracing layer: W3C
// traceparent identities, an in-memory span tree per request, and a
// tail-sampling flight recorder (recorder.go) that keeps the span
// trees worth debugging — the slowest requests and every errored one.
//
// The design mirrors package obs's nil-safety contract: every method
// on a nil *Trace is a no-op, so instrumentation sites in the
// allocator, the result cache, and the portfolio engine cost one
// ctx.Value lookup plus one nil check when tracing is off. Span IDs
// are small sequential integers local to one Trace (the W3C span ID
// identifies the request as a whole on the wire); the span tree is
// rebuilt from Parent links by consumers.
//
// Timing convention: spans carry start offsets relative to the trace
// start and durations, both in nanoseconds. Phase spans recorded from
// PassStats durations (alloc.RunContext) therefore reconcile exactly
// with the registry and /metrics — the same integer nanoseconds
// appear in all three places.
package reqtrace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identity.
type TraceID [16]byte

// String renders the 32-hex-digit wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero ID (forbidden by the spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is the 8-byte W3C parent/span identity.
type SpanID [8]byte

// String renders the 16-hex-digit wire form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is one parsed or minted traceparent: the trace
// identity, this hop's span identity, and the sampled flag.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both identities are non-zero, the spec's
// minimum for a usable traceparent.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Header renders the version-00 traceparent wire form:
// 00-<trace-id>-<span-id>-<flags>.
func (sc SpanContext) Header() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// Child keeps the trace identity and mints a fresh span identity —
// the move a server makes on an incoming traceparent so its own spans
// are distinguishable from the caller's.
func (sc SpanContext) Child() SpanContext {
	next := sc
	next.SpanID = mintSpanID()
	return next
}

// Parse decodes a version-00 (or forward-compatible higher-version)
// traceparent header. The empty string is not an error to callers
// that treat "no header" separately; it fails Valid instead.
func Parse(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("reqtrace: traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("reqtrace: malformed traceparent %q", h)
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil {
		return sc, fmt.Errorf("reqtrace: bad version in %q", h)
	}
	if ver[0] == 0xff {
		return sc, fmt.Errorf("reqtrace: forbidden version ff")
	}
	if ver[0] == 0 && len(h) != 55 {
		return sc, fmt.Errorf("reqtrace: version 00 traceparent must be 55 bytes, got %d", len(h))
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return sc, fmt.Errorf("reqtrace: bad trace-id in %q", h)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return sc, fmt.Errorf("reqtrace: bad parent-id in %q", h)
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return sc, fmt.Errorf("reqtrace: bad flags in %q", h)
	}
	sc.Sampled = flags[0]&0x01 != 0
	if !sc.Valid() {
		return sc, fmt.Errorf("reqtrace: all-zero trace-id or parent-id in %q", h)
	}
	return sc, nil
}

// Mint returns a fresh sampled SpanContext with random identities.
func Mint() SpanContext {
	var sc SpanContext
	fill(sc.TraceID[:])
	sc.SpanID = mintSpanID()
	sc.Sampled = true
	return sc
}

func mintSpanID() SpanID {
	var id SpanID
	fill(id[:])
	return id
}

// fill draws random bytes, retrying the (never observed in practice)
// all-zero draw the spec forbids.
func fill(b []byte) {
	for {
		if _, err := rand.Read(b); err != nil {
			panic("reqtrace: crypto/rand failed: " + err.Error())
		}
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
}

// Attr is one key/value annotation on a span or a trace.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one operation in a request's tree. IDs are sequential
// uint32s local to the owning Trace; Parent 0 marks a root.
type Span struct {
	ID      uint32 `json:"id"`
	Parent  uint32 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"` // offset from the trace start
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace collects the span tree of one request. Safe for concurrent
// use (portfolio candidates record from racing goroutines). The nil
// *Trace is a valid no-op tracer: every method returns zero values
// and records nothing.
type Trace struct {
	sc    SpanContext
	start time.Time

	mu     sync.Mutex
	nextID uint32
	spans  []Span
	annots []Attr
}

// NewTrace starts an empty trace under sc, clocked from now.
func NewTrace(sc SpanContext) *Trace {
	return &Trace{sc: sc, start: time.Now()}
}

// SpanContext returns the trace's wire identity (zero for nil).
func (t *Trace) SpanContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return t.sc
}

// Start returns the trace's start time (zero for nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan opens a span under parent (0 for a root) and returns its
// ID plus the closer that stamps the duration; extra attributes can
// be attached at close. On a nil Trace the ID is 0 and the closer a
// no-op.
func (t *Trace) StartSpan(parent uint32, name string, attrs ...Attr) (uint32, func(attrs ...Attr)) {
	if t == nil {
		return 0, func(...Attr) {}
	}
	start := time.Now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name,
		StartNS: start.Sub(t.start).Nanoseconds(),
		Attrs:   attrs,
	})
	t.mu.Unlock()
	return id, func(extra ...Attr) {
		d := time.Since(start)
		t.mu.Lock()
		for i := range t.spans {
			if t.spans[i].ID == id {
				t.spans[i].DurNS = d.Nanoseconds()
				t.spans[i].Attrs = append(t.spans[i].Attrs, extra...)
				break
			}
		}
		t.mu.Unlock()
	}
}

// Record adds a completed span measured externally: start is its
// wall-clock start, d its exact duration (for allocator phases, the
// same integer nanoseconds PassStats carries, so the span tree
// reconciles with the registry). Returns the span's ID (0 on nil).
func (t *Trace) Record(parent uint32, name string, start time.Time, d time.Duration, attrs ...Attr) uint32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name,
		StartNS: start.Sub(t.start).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
		Attrs:   attrs,
	})
	t.mu.Unlock()
	return id
}

// AddAttr appends an attribute to an already-recorded span (the
// portfolio engine marks the winner this way after the join).
func (t *Trace) AddAttr(spanID uint32, key, value string) {
	if t == nil || spanID == 0 {
		return
	}
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].ID == spanID {
			t.spans[i].Attrs = append(t.spans[i].Attrs, Attr{Key: key, Value: value})
			break
		}
	}
	t.mu.Unlock()
}

// Annotate attaches a request-level key/value (unit, heuristic,
// cache outcome, spill cost) read back by the access log and the
// flight recorder. Later writes of the same key win.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.annots {
		if t.annots[i].Key == key {
			t.annots[i].Value = value
			t.mu.Unlock()
			return
		}
	}
	t.annots = append(t.annots, Attr{Key: key, Value: value})
	t.mu.Unlock()
}

// Annotation returns the value for key ("" when absent or nil).
func (t *Trace) Annotation(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range t.annots {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Snapshot copies out the spans and annotations recorded so far.
func (t *Trace) Snapshot() (spans []Span, annots []Attr) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans = make([]Span, len(t.spans))
	for i, s := range t.spans {
		s.Attrs = append([]Attr(nil), s.Attrs...)
		spans[i] = s
	}
	annots = append([]Attr(nil), t.annots...)
	return spans, annots
}
