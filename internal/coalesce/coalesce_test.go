package coalesce_test

import (
	"testing"

	"regalloc/internal/coalesce"
	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
)

func countMoves(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].IsMove() {
				n++
			}
		}
	}
	return n
}

func TestCoalescesSimpleCopy(t *testing.T) {
	f := &ir.Func{Name: "C"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 7},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	n, g := coalesce.Run(f)
	if n != 1 {
		t.Fatalf("coalesced %d, want 1", n)
	}
	if countMoves(f) != 0 {
		t.Fatal("copy not deleted")
	}
	if g == nil {
		t.Fatal("no graph returned")
	}
	if f.Blocks[0].Instrs[1].A != a {
		t.Fatal("ret operand not renamed to the representative")
	}
}

func TestRefusesInterferingCopy(t *testing.T) {
	// a = 1 ; b = a ; a = 2 ; ret a+b  — a and b interfere.
	f := &ir.Func{Name: "I"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpAdd, Dst: c, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	n, _ := coalesce.Run(f)
	if n != 0 {
		t.Fatalf("coalesced an interfering pair (%d merges)", n)
	}
	if countMoves(f) != 1 {
		t.Fatal("interfering copy must survive")
	}
}

func TestSpillTempsNotCoalesced(t *testing.T) {
	f := &ir.Func{Name: "S"}
	a := f.NewReg(ir.ClassInt)
	tmp := f.NewSpillTemp(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpSpillLoad, Dst: tmp, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpMove, Dst: a, A: tmp, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: a, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	n, _ := coalesce.Run(f)
	if n != 0 {
		t.Fatal("coalesced a spill temporary")
	}
}

// TestChainedMovesRegression is the regression test for the
// soundness bug found during bring-up: two moves sharing a register
// merged in the same round can unify ranges whose interference the
// round's (stale) graph cannot see. Program:
//
//	v38 = move v126 ; v40 = move v38 ; v126 redefined while v40 live
//
// shaped so the naive double merge produces a wrong answer.
func TestChainedMovesRegression(t *testing.T) {
	build := func() *ir.Func {
		f := &ir.Func{Name: "R"}
		x := f.NewReg(ir.ClassInt) // v126 analogue
		y := f.NewReg(ir.ClassInt) // v38
		z := f.NewReg(ir.ClassInt) // v40
		s := f.NewReg(ir.ClassInt)
		blk := f.NewBlock()
		blk.Instrs = []ir.Instr{
			{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 5},
			{Op: ir.OpMove, Dst: y, A: x, B: ir.NoReg, C: ir.NoReg},
			{Op: ir.OpMove, Dst: z, A: y, B: ir.NoReg, C: ir.NoReg},
			// x redefined while z is live: x-z interfere, but the
			// first-round graph has no y..z merge yet.
			{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 9},
			{Op: ir.OpAdd, Dst: s, A: x, B: z, C: ir.NoReg},
			{Op: ir.OpRet, Dst: ir.NoReg, A: s, B: ir.NoReg, C: ir.NoReg},
		}
		f.RecomputePreds()
		return f
	}
	ref := build()
	p := ir.NewProgram(0)
	p.Add(ref)
	want, err := irinterp.New(p, 64).Call("R")
	if err != nil {
		t.Fatal(err)
	}
	f := build()
	coalesce.Run(f)
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	p2 := ir.NewProgram(0)
	p2.Add(f)
	got, err := irinterp.New(p2, 64).Call("R")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Fatalf("coalescing changed the result: %d, want %d", got.I, want.I)
	}
}

func TestCrossClassNeverCoalesced(t *testing.T) {
	f := &ir.Func{Name: "X"}
	a := f.NewReg(ir.ClassInt)
	x := f.NewReg(ir.ClassFloat)
	blk := f.NewBlock()
	// A conversion is not a move, but build a malformed-looking move
	// guard anyway via distinct classes on a real conversion op.
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpItoF, Dst: x, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	n, _ := coalesce.Run(f)
	if n != 0 {
		t.Fatal("nothing should coalesce here")
	}
}

// TestConservativeRefusesRiskyMerge: with the Briggs test active, a
// merge whose combined node would have >= k significant-degree
// neighbors is refused, while obviously safe merges still happen.
func TestConservativeRefusesRiskyMerge(t *testing.T) {
	kOf := func(ir.Class) int { return 2 }

	// Safe case: isolated copy chain, no neighbors at all.
	f := &ir.Func{Name: "S"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	if n, _ := coalesce.RunConservative(f, kOf); n != 1 {
		t.Fatalf("safe merge refused (%d)", n)
	}

	// Risky case: dst and src each interfere with a different pair
	// of long-lived values, so the merged node would see 4 neighbors
	// of significant degree with k=2.
	g := &ir.Func{Name: "R"}
	w := g.NewReg(ir.ClassInt) // long-lived 1
	x := g.NewReg(ir.ClassInt) // long-lived 2
	y := g.NewReg(ir.ClassInt) // copy source
	z := g.NewReg(ir.ClassInt) // copy dest
	s := g.NewReg(ir.ClassInt)
	blk2 := g.NewBlock()
	blk2.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: w, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpConst, Dst: y, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 3},
		{Op: ir.OpAdd, Dst: s, A: w, B: x, C: ir.NoReg}, // y live across: y-w, y-x edges
		{Op: ir.OpMove, Dst: z, A: y, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpAdd, Dst: s, A: s, B: w, C: ir.NoReg}, // z live across: z-w, z-x(?), z-s
		{Op: ir.OpAdd, Dst: s, A: s, B: x, C: ir.NoReg},
		{Op: ir.OpAdd, Dst: s, A: s, B: z, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: s, B: ir.NoReg, C: ir.NoReg},
	}
	g.RecomputePreds()
	nAgg := func() int {
		c := g.Clone()
		n, _ := coalesce.Run(c)
		return n
	}()
	nCons := func() int {
		c := g.Clone()
		n, _ := coalesce.RunConservative(c, kOf)
		return n
	}()
	if nCons >= nAgg {
		t.Fatalf("conservative (%d) should merge fewer than aggressive (%d) here", nCons, nAgg)
	}
}
