package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeAllocd mimics the service surface the driver touches: /healthz
// and /v1/alloc with an X-Cache header (miss on a body's first
// sighting, hit after — the real cache's observable behaviour).
func fakeAllocd(t *testing.T) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":{"code":"bad_body","message":"bad"}}`))
			return
		}
		mu.Lock()
		hit := seen[req.Source]
		seen[req.Source] = true
		mu.Unlock()
		if hit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCorpusDeterministicAndMixed(t *testing.T) {
	a, err := buildCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("corpus size changed between builds: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if string(a.Items[i].Body) != string(b.Items[i].Body) {
			t.Fatalf("item %d (%s) not deterministic", i, a.Items[i].Name)
		}
	}
	if a.Sources == 0 || a.Graphs == 0 || a.Fuzzed == 0 {
		t.Fatalf("corpus not mixed: %d sources, %d graphs, %d fuzzed", a.Sources, a.Graphs, a.Fuzzed)
	}
	// Every body must be a decodable JSON request with a source.
	for _, it := range a.Items {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.Unmarshal(it.Body, &req); err != nil || req.Source == "" {
			t.Fatalf("item %s: body not a valid request: %v\n%s", it.Name, err, it.Body)
		}
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	ts := fakeAllocd(t)
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 300 * time.Millisecond, Conc: 4, Corpus: corpus, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Mode != "closed" || lt.Requests == 0 {
		t.Fatalf("loadtest = %+v", lt)
	}
	if lt.Errors != 0 || lt.ErrorRate != 0 {
		t.Fatalf("errors against the fake: %d (%s)", lt.Errors, sortedStatusCodes(lt.Statuses))
	}
	if lt.Latency.Count != lt.Requests || lt.Latency.P99NS < lt.Latency.P50NS {
		t.Fatalf("latency = %+v for %d requests", lt.Latency, lt.Requests)
	}
	// The corpus is finite, so a multi-hundred-request run must see
	// repeats — i.e. a nonzero hit rate.
	if lt.Requests > int64(2*len(corpus.Items)) && lt.Cache.HitRate == 0 {
		t.Fatalf("no cache hits over %d requests on a %d-item corpus", lt.Requests, len(corpus.Items))
	}
	if lt.Cache.Misses == 0 {
		t.Fatal("no misses recorded: X-Cache accounting broken")
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	ts := fakeAllocd(t)
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 300 * time.Millisecond, Conc: 4, Rate: 200, Corpus: corpus, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Mode != "open" || lt.RateRPS != 200 {
		t.Fatalf("loadtest = %+v", lt)
	}
	if lt.Requests == 0 || lt.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", lt.Requests, lt.Errors)
	}
}

func TestRunLoadUnreachableTarget(t *testing.T) {
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runLoad(loadConfig{
		Addr: "http://127.0.0.1:1", Duration: time.Second, Conc: 1, Corpus: corpus,
	}); err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("err = %v, want target-unreachable", err)
	}
}

func TestReportShapeAndGate(t *testing.T) {
	lt := &loadtestSection{
		Requests:  100,
		Errors:    0,
		ErrorRate: 0,
		Latency:   quantiles{Count: 100, P50NS: 1e6, P95NS: 5e6, P99NS: 9e6, MaxNS: 2e7},
		Cache:     cacheSummary{Hits: 80, Misses: 20, HitRate: 0.8},
	}
	r := newReport(lt)
	if r.Schema != "regalloc-bench/6" {
		t.Fatalf("schema %q", r.Schema)
	}
	if len(r.SchemaHistory) == 0 || !strings.Contains(r.SchemaHistory[len(r.SchemaHistory)-1], "loadtest") {
		t.Fatalf("schema history %v", r.SchemaHistory)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Same numbers: passes.
	if err := gate(lt, base, 5, 0); err != nil {
		t.Fatalf("gate on identical run: %v", err)
	}
	// Tail blown past the factor: fails.
	worse := *lt
	worse.Latency.P99NS = lt.Latency.P99NS * 50
	if err := gate(&worse, base, 5, 0); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("gate on 50x p99: %v", err)
	}
	// Errors: fails even with a generous p99.
	failed := *lt
	failed.Errors, failed.ErrorRate = 3, 0.03
	if err := gate(&failed, base, 100, 0); err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("gate on errors: %v", err)
	}
	// Missing or sectionless baseline: loud failure, not a silent pass.
	if err := gate(lt, filepath.Join(t.TempDir(), "nope.json"), 5, 0); err == nil {
		t.Fatal("gate passed with a missing baseline")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"schema":"regalloc-bench/6"}`), 0o644)
	if err := gate(lt, empty, 5, 0); err == nil || !strings.Contains(err.Error(), "loadtest") {
		t.Fatalf("gate on sectionless baseline: %v", err)
	}
}
