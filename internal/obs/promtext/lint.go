package promtext

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint checks that data is well-formed Prometheus text exposition
// format (version 0.0.4) and that the histogram invariants scrapers
// depend on hold: every sample belongs to a family with a TYPE
// declaration, bucket counts are cumulative and non-decreasing, and
// each +Inf bucket equals the series count. It returns the first
// problem found, or nil.
//
// This is a validator for output this repo generates, not a full
// scraper: it covers the constructs Write, WriteMetrics and
// WriteExemplarHistogram emit (counters, gauges, histograms, and
// OpenMetrics exemplars on histogram buckets; no timestamps on the
// samples themselves). An exemplar — ` # {labels} value [timestamp]`
// after the sample value — is accepted only on _bucket lines of a
// histogram family, with well-formed label syntax and numeric
// value/timestamp, mirroring the OpenMetrics placement rule.
func Lint(data []byte) error {
	metricName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

	types := map[string]string{} // family -> declared type
	// histogram series state, keyed by family + sorted non-le labels
	type histState struct {
		lastBucket float64
		infBucket  float64
		haveInf    bool
		count      float64
		haveCount  bool
	}
	hists := map[string]*histState{}

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !metricName.MatchString(fields[2]) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing kind", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}

		name, labels, value, ex, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !metricName.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		for _, l := range labels {
			if !labelName.MatchString(l.name) {
				return fmt.Errorf("line %d: bad label name %q", lineNo, l.name)
			}
		}
		if ex != nil {
			for _, l := range ex.labels {
				if !labelName.MatchString(l.name) {
					return fmt.Errorf("line %d: bad exemplar label name %q", lineNo, l.name)
				}
			}
		}

		family, suffix := name, ""
		if _, ok := types[name]; !ok {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, s); base != name && types[base] == "histogram" {
					family, suffix = base, s
					break
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}

		if ex != nil && !(typ == "histogram" && suffix == "_bucket") {
			return fmt.Errorf("line %d: exemplar on non-bucket sample %s", lineNo, name)
		}
		if typ == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram family %s sampled without _bucket/_sum/_count", lineNo, family)
			}
			key, le, haveLE := histKey(family, labels)
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				if !haveLE {
					return fmt.Errorf("line %d: _bucket without le label", lineNo)
				}
				if value < st.lastBucket {
					return fmt.Errorf("line %d: bucket counts not cumulative in %s", lineNo, key)
				}
				st.lastBucket = value
				if le == "+Inf" {
					st.infBucket, st.haveInf = value, true
				}
			case "_count":
				st.count, st.haveCount = value, true
			}
		} else if value < 0 && typ == "counter" {
			return fmt.Errorf("line %d: negative counter %s", lineNo, name)
		}
	}

	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := hists[k]
		if !st.haveInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", k)
		}
		if !st.haveCount {
			return fmt.Errorf("histogram %s: missing _count", k)
		}
		if st.infBucket != st.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", k, st.infBucket, st.count)
		}
	}
	return nil
}

type label struct{ name, value string }

// exemplar is a parsed OpenMetrics exemplar suffix:
// `# {labels} value [timestamp]` after a sample value.
type exemplar struct {
	labels []label
	value  float64
	ts     float64
	hasTS  bool
}

// cutLabelSet scans a `{...}` label set at the start of s (quote- and
// escape-aware) and returns the parsed labels plus the remainder
// after the closing brace. s must start with '{'.
func cutLabelSet(s string) (labels []label, rest string, err error) {
	end := -1
	inQuote, esc := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && inQuote:
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, "", fmt.Errorf("unterminated label set in %q", s)
	}
	labels, err = parseLabels(s[1:end])
	if err != nil {
		return nil, "", err
	}
	return labels, s[end+1:], nil
}

// parseExemplar parses the suffix after "# ": `{labels} value [ts]`.
func parseExemplar(s string) (*exemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("malformed exemplar %q: missing label set", s)
	}
	labels, rest, err := cutLabelSet(s)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed exemplar %q: want value [timestamp]", s)
	}
	ex := &exemplar{labels: labels}
	if ex.value, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if ex.ts, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q: %v", fields[1], err)
		}
		ex.hasTS = true
	}
	return ex, nil
}

// parseSample splits `name{labels} value [# {exemplar...}]` (no
// sample timestamp support). The exemplar return is nil when the line
// carries none.
func parseSample(line string) (name string, labels []label, value float64, ex *exemplar, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, nil, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = cutLabelSet(rest)
		if err != nil {
			return "", nil, 0, nil, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if i := strings.Index(rest, " # "); i >= 0 {
		ex, err = parseExemplar(rest[i+3:])
		if err != nil {
			return "", nil, 0, nil, err
		}
		rest = rest[:i]
	}
	if rest == "" || strings.ContainsRune(rest, ' ') {
		return "", nil, 0, nil, fmt.Errorf("malformed value in %q", line)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, nil, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, value, ex, nil
}

func parseLabels(s string) ([]label, error) {
	var out []label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		i := eq + 2
		var val strings.Builder
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in %q", s)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in %q", s[i], s)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, label{name, val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// histKey builds the series identity for histogram reconciliation:
// the family plus every label except le, sorted.
func histKey(family string, labels []label) (key, le string, haveLE bool) {
	rest := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.name == "le" {
			le, haveLE = l.value, true
			continue
		}
		rest = append(rest, l.name+"="+l.value)
	}
	sort.Strings(rest)
	return family + "{" + strings.Join(rest, ",") + "}", le, haveLE
}
