package reqtrace

import (
	"sort"
	"sync"
	"time"
)

// RequestRecord is one request's flight-recorder entry: identity,
// outcome, the request-level annotations, and the full span tree.
type RequestRecord struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	DurNS   int64     `json:"dur_ns"`
	Status  int       `json:"status"` // HTTP status (0: transport-level failure)
	Error   bool      `json:"error"`
	Annots  []Attr    `json:"annotations,omitempty"`
	Spans   []Span    `json:"spans,omitempty"`
}

// Annotation returns the record's value for key, or "".
func (r *RequestRecord) Annotation(key string) string {
	for _, a := range r.Annots {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Recorder is the tail-sampling flight recorder: it always keeps the
// capSlow slowest successful requests and the capErr most recent
// errored ones (429s, 5xx, ErrIrreducible — anything the caller marks
// Error). A fast success can never evict an error; the two pools are
// disjoint by construction. Safe for concurrent use; Add is one
// short critical section (no allocation beyond the retained record),
// cheap enough to sit on every request.
type Recorder struct {
	mu      sync.Mutex
	capSlow int
	capErr  int
	slow    []RequestRecord // unordered; evicted by minimum DurNS
	errs    []RequestRecord // ring, errNext is the oldest slot
	errNext int
}

// NewRecorder bounds the two pools; caps < 1 are raised to 1.
func NewRecorder(capSlow, capErr int) *Recorder {
	if capSlow < 1 {
		capSlow = 1
	}
	if capErr < 1 {
		capErr = 1
	}
	return &Recorder{capSlow: capSlow, capErr: capErr}
}

// Add offers one completed request. Errored records always land
// (evicting the oldest error once the ring is full); successes land
// while the slow pool has room or the new record is slower than the
// pool's current fastest.
func (r *Recorder) Add(rec RequestRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Error {
		if len(r.errs) < r.capErr {
			r.errs = append(r.errs, rec)
			return
		}
		r.errs[r.errNext] = rec
		r.errNext = (r.errNext + 1) % r.capErr
		return
	}
	if len(r.slow) < r.capSlow {
		r.slow = append(r.slow, rec)
		return
	}
	min := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].DurNS < r.slow[min].DurNS {
			min = i
		}
	}
	if rec.DurNS > r.slow[min].DurNS {
		r.slow[min] = rec
	}
}

// Snapshot returns the retained records, errors first (newest first)
// then successes slowest first — the order a debugger wants to read.
func (r *Recorder) Snapshot() []RequestRecord {
	r.mu.Lock()
	out := make([]RequestRecord, 0, len(r.errs)+len(r.slow))
	// Unroll the ring newest-to-oldest.
	for i := 0; i < len(r.errs); i++ {
		idx := (r.errNext - 1 - i + 2*len(r.errs)) % len(r.errs)
		if len(r.errs) < r.capErr {
			// Ring not yet wrapped: records sit in arrival order.
			idx = len(r.errs) - 1 - i
		}
		out = append(out, r.errs[idx])
	}
	nErrs := len(out)
	out = append(out, r.slow...)
	r.mu.Unlock()
	sort.SliceStable(out[nErrs:], func(i, j int) bool {
		return out[nErrs+i].DurNS > out[nErrs+j].DurNS
	})
	return out
}

// Find returns the retained record for traceID, if any.
func (r *Recorder) Find(traceID string) (RequestRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.errs {
		if r.errs[i].TraceID == traceID {
			return r.errs[i], true
		}
	}
	for i := range r.slow {
		if r.slow[i].TraceID == traceID {
			return r.slow[i], true
		}
	}
	return RequestRecord{}, false
}

// Len reports how many records are retained (for tests).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.errs) + len(r.slow)
}
