package bitset_test

import (
	"testing"
	"testing/quick"

	"regalloc/internal/bitset"
)

func TestBasicOps(t *testing.T) {
	s := bitset.New(200)
	if !s.Empty() || s.Count() != 0 || s.Cap() != 200 {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	for _, i := range []int{0, 63, 64, 199} {
		if !s.Has(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(-1) || s.Has(200) {
		t.Fatal("spurious membership")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("remove failed")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("clear failed")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := bitset.New(130)
	b := bitset.New(130)
	for i := 0; i < 130; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 130; i += 3 {
		b.Add(i)
	}
	u := a.Copy()
	if changed := u.Union(b); !changed {
		t.Fatal("union should change")
	}
	if u.Union(b) {
		t.Fatal("second union should be a no-op")
	}
	inter := a.Copy()
	inter.Intersect(b)
	for i := 0; i < 130; i++ {
		if inter.Has(i) != (i%6 == 0) {
			t.Fatalf("intersect wrong at %d", i)
		}
	}
	diff := a.Copy()
	diff.Subtract(b)
	for i := 0; i < 130; i++ {
		if diff.Has(i) != (i%2 == 0 && i%3 != 0) {
			t.Fatalf("subtract wrong at %d", i)
		}
	}
}

func TestForEachAndNext(t *testing.T) {
	s := bitset.New(300)
	want := []int{3, 64, 65, 127, 128, 256, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v", got)
		}
	}
	// Next walks the same sequence.
	var via []int
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		via = append(via, i)
	}
	if len(via) != len(want) {
		t.Fatalf("Next walk: %v", via)
	}
	if s.Next(300) != -1 || s.Next(-5) != 3 {
		t.Fatal("Next boundary behaviour")
	}
}

func TestEqualCopyFrom(t *testing.T) {
	a := bitset.New(70)
	a.Add(1)
	a.Add(69)
	b := bitset.New(70)
	if a.Equal(b) {
		t.Fatal("unequal sets compare equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom failed")
	}
}

func TestString(t *testing.T) {
	s := bitset.New(10)
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String() = %q", got)
	}
}

// TestAgainstMap drives the bitset against a map-based model with
// random operation sequences.
func TestAgainstMap(t *testing.T) {
	prop := func(ops []uint16) bool {
		const n = 257
		s := bitset.New(n)
		m := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			switch (op / 257) % 3 {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Has(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !m[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	bitset.New(10).Union(bitset.New(20))
}
