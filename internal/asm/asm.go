// Package asm lowers register-allocated IR into linear machine code
// for the simulated target: virtual registers are replaced by their
// assigned physical registers, blocks are laid out sequentially with
// fall-through branches elided, and spill-slot references become
// absolute memory addresses. The linear form is what the simulator
// (package vm) executes and what "object size" measures.
package asm

import (
	"fmt"
	"io"
	"strings"

	"regalloc/internal/ir"
	"regalloc/internal/target"
)

// NoReg marks an absent physical-register operand.
const NoReg int16 = -1

// Instr is one machine instruction. Register fields index the GPR or
// FPR file; which file is implied by the opcode, except for the
// class-generic operations (move, load, store, const, ret, param),
// which carry Cls.
type Instr struct {
	Op      ir.Op
	Dst     int16
	A, B, C int16
	Cls     ir.Class
	ACls    ir.Class // class of A where it may differ (OpStore value, OpRet)
	Imm     int64
	FImm    float64
	Cmp     ir.Cmp
	T0, T1  int32 // branch targets (code indices); T1 = -1 when unused
	Callee  string
	Args    []ArgRef
}

// ArgRef is a call argument: a physical register and its class.
type ArgRef struct {
	R   int16
	Cls ir.Class
}

// Func is an assembled function.
type Func struct {
	Name    string
	Code    []Instr
	Machine target.Machine
	// RetCls is meaningful when HasRet.
	HasRet bool
	RetCls ir.Class
	// ParamCls gives the class of each parameter.
	ParamCls []ir.Class
}

// ObjectSize returns the encoded size of the function in bytes.
func (f *Func) ObjectSize() int { return len(f.Code) * target.BytesPerInstr }

// Program is a set of assembled functions.
type Program struct {
	Funcs  []*Func
	byName map[string]*Func
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{byName: make(map[string]*Func)} }

// Add appends f.
func (p *Program) Add(f *Func) {
	p.Funcs = append(p.Funcs, f)
	p.byName[f.Name] = f
}

// Func looks up a function by name.
func (p *Program) Func(name string) *Func { return p.byName[name] }

// Lower assembles an allocated function. colors is the allocator's
// assignment for f's registers; m supplies the register file sizes
// (used only for sanity checks here).
func Lower(f *ir.Func, colors []int16, m target.Machine) (*Func, error) {
	out := &Func{Name: f.Name, Machine: m, HasRet: f.HasRet, RetCls: f.RetCls}
	for _, p := range f.Params {
		out.ParamCls = append(out.ParamCls, f.RegClass(p))
	}
	phys := func(r ir.Reg) (int16, error) {
		if r == ir.NoReg {
			return NoReg, nil
		}
		c := colors[r]
		if c < 0 {
			return NoReg, fmt.Errorf("asm: %s: register v%d is uncolored", f.Name, r)
		}
		if int(c) >= m.K(f.RegClass(r)) {
			return NoReg, fmt.Errorf("asm: %s: v%d color %d exceeds %s register file", f.Name, r, c, f.RegClass(r))
		}
		return c, nil
	}

	// First pass: emit instructions block by block, collecting
	// block-start indices and branch fixups.
	blockStart := make([]int32, len(f.Blocks))
	type fixup struct {
		instr  int
		t0, t1 int // block IDs; -1 when unused
	}
	var fixups []fixup
	var lowerErr error
	emit := func(in Instr) {
		out.Code = append(out.Code, in)
	}
	reg := func(r ir.Reg) int16 {
		p, err := phys(r)
		if err != nil && lowerErr == nil {
			lowerErr = err
		}
		return p
	}

	for bi, b := range f.Blocks {
		blockStart[bi] = int32(len(out.Code))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpNop:
				// dropped
			case ir.OpBr:
				// Elide a branch to the lexically next block.
				if b.Succs[0] == bi+1 {
					continue
				}
				fixups = append(fixups, fixup{instr: len(out.Code), t0: b.Succs[0], t1: -1})
				emit(Instr{Op: ir.OpBr, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, T1: -1})
			case ir.OpBrIf:
				// brif jumps to the true target; the false edge
				// falls through, with an extra jump if the false
				// block is not next.
				fixups = append(fixups, fixup{instr: len(out.Code), t0: b.Succs[0], t1: -1})
				emit(Instr{
					Op: ir.OpBrIf, Dst: NoReg, A: reg(in.A), B: reg(in.B), C: NoReg,
					Cmp: in.Cmp, Cls: in.Cls, T1: -1,
				})
				if b.Succs[1] != bi+1 {
					fixups = append(fixups, fixup{instr: len(out.Code), t0: b.Succs[1], t1: -1})
					emit(Instr{Op: ir.OpBr, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, T1: -1})
				}
			case ir.OpRet:
				mi := Instr{Op: ir.OpRet, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, T1: -1}
				if in.A != ir.NoReg {
					mi.A = reg(in.A)
					mi.ACls = f.RegClass(in.A)
				}
				emit(mi)
			case ir.OpSpillLoad:
				emit(Instr{
					Op: ir.OpLoad, Dst: reg(in.Dst), A: NoReg, B: NoReg, C: NoReg,
					Cls: f.RegClass(in.Dst), Imm: f.SlotAddr(in.Imm), T1: -1,
				})
			case ir.OpSpillStore:
				emit(Instr{
					Op: ir.OpStore, Dst: NoReg, A: reg(in.A), B: NoReg, C: NoReg,
					Cls: f.RegClass(in.A), ACls: f.RegClass(in.A), Imm: f.SlotAddr(in.Imm), T1: -1,
				})
			case ir.OpCall:
				mi := Instr{Op: ir.OpCall, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Callee: in.Callee, T1: -1}
				if in.Dst != ir.NoReg {
					mi.Dst = reg(in.Dst)
					mi.Cls = f.RegClass(in.Dst)
				}
				for _, a := range in.Args {
					mi.Args = append(mi.Args, ArgRef{R: reg(a), Cls: f.RegClass(a)})
				}
				emit(mi)
			default:
				mi := Instr{
					Op: in.Op, Dst: reg(in.Dst), A: reg(in.A), B: reg(in.B), C: reg(in.C),
					Imm: in.Imm, FImm: in.FImm, T1: -1,
				}
				// Peephole: a copy whose source and destination were
				// colored into the same register is a no-op (it can
				// only arise from moves coalescing declined).
				if in.Op == ir.OpMove && mi.Dst == mi.A {
					continue
				}
				if in.Dst != ir.NoReg {
					mi.Cls = f.RegClass(in.Dst)
				} else if in.A != ir.NoReg {
					mi.Cls = f.RegClass(in.A)
				}
				if in.A != ir.NoReg {
					mi.ACls = f.RegClass(in.A)
				}
				emit(mi)
			}
		}
	}
	if lowerErr != nil {
		return nil, lowerErr
	}
	for _, fx := range fixups {
		out.Code[fx.instr].T0 = blockStart[fx.t0]
		if fx.t1 >= 0 {
			out.Code[fx.instr].T1 = blockStart[fx.t1]
		}
	}
	return out, nil
}

// regStr renders a physical register operand.
func regStr(r int16, cls ir.Class) string {
	if r == NoReg {
		return "_"
	}
	if cls == ir.ClassFloat {
		return fmt.Sprintf("f%d", r)
	}
	return fmt.Sprintf("r%d", r)
}

// Fprint writes a disassembly listing of f.
func Fprint(w io.Writer, f *Func) {
	fmt.Fprintf(w, "%s: (%d instructions, %d bytes)\n", f.Name, len(f.Code), f.ObjectSize())
	for i := range f.Code {
		fmt.Fprintf(w, "%5d\t%s\n", i, f.Code[i].String())
	}
}

// String renders one machine instruction.
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case ir.OpParam:
		fmt.Fprintf(&b, "param %s, #%d", regStr(in.Dst, in.Cls), in.Imm)
	case ir.OpConst:
		if in.Cls == ir.ClassFloat {
			fmt.Fprintf(&b, "fconst %s, %g", regStr(in.Dst, in.Cls), in.FImm)
		} else {
			fmt.Fprintf(&b, "const %s, %d", regStr(in.Dst, in.Cls), in.Imm)
		}
	case ir.OpMove:
		fmt.Fprintf(&b, "move %s, %s", regStr(in.Dst, in.Cls), regStr(in.A, in.Cls))
	case ir.OpLoad:
		fmt.Fprintf(&b, "load.%s %s, [%s+%s+%d]", in.Cls, regStr(in.Dst, in.Cls),
			regStr(in.B, ir.ClassInt), regStr(in.C, ir.ClassInt), in.Imm)
	case ir.OpStore:
		fmt.Fprintf(&b, "store.%s [%s+%s+%d], %s", in.Cls,
			regStr(in.B, ir.ClassInt), regStr(in.C, ir.ClassInt), in.Imm, regStr(in.A, in.Cls))
	case ir.OpBr:
		fmt.Fprintf(&b, "br %d", in.T0)
	case ir.OpBrIf:
		fmt.Fprintf(&b, "brif.%s %s %s %s, %d", in.Cls, regStr(in.A, in.Cls), in.Cmp, regStr(in.B, in.Cls), in.T0)
	case ir.OpRet:
		if in.A != NoReg {
			fmt.Fprintf(&b, "ret %s", regStr(in.A, in.ACls))
		} else {
			b.WriteString("ret")
		}
	case ir.OpCall:
		if in.Dst != NoReg {
			fmt.Fprintf(&b, "call %s, %s(", regStr(in.Dst, in.Cls), in.Callee)
		} else {
			fmt.Fprintf(&b, "call %s(", in.Callee)
		}
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(regStr(a.R, a.Cls))
		}
		b.WriteString(")")
	case ir.OpAddI, ir.OpMulI:
		fmt.Fprintf(&b, "%s %s, %s, %d", in.Op, regStr(in.Dst, ir.ClassInt), regStr(in.A, ir.ClassInt), in.Imm)
	default:
		fmt.Fprintf(&b, "%s %s", in.Op, regStr(in.Dst, in.Cls))
		for _, r := range [3]int16{in.A, in.B, in.C} {
			if r != NoReg {
				fmt.Fprintf(&b, ", %s", regStr(r, in.Cls))
			}
		}
	}
	return b.String()
}
