// batch.go is POST /v1/alloc/batch: many AllocRequests in one HTTP
// request, admitted once. The payload is either a JSON array of
// request objects (replied to as one JSON document) or an NDJSON
// stream of them (replied to as an NDJSON stream, one result line per
// item, flushed as it completes). Items fail independently: each row
// carries its own status, so one bad unit never poisons the batch.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
)

// maxBatchItems caps one batch. The body size cap already bounds the
// total payload; this bounds the number of allocations a single
// admission slot can amortize.
const maxBatchItems = 256

// batchItem is one row of the batch reply.
type batchItem struct {
	Index  int    `json:"index"`
	Status int    `json:"status"`
	Cache  string `json:"cache,omitempty"` // miss, hit, or shared
	// Result is the full single-request response body on success.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the same envelope payload a single request's non-2xx
	// reply carries.
	Error *apiError `json:"error,omitempty"`
}

// batchResponse is the JSON-array reply form.
type batchResponse struct {
	Items  []batchItem `json:"items"`
	OK     int         `json:"ok"`
	Failed int         `json:"failed"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, failf(http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a JSON array or NDJSON stream of allocation requests"))
		return
	}
	body, fail := readBody(w, r)
	if fail != nil {
		writeError(w, fail)
		return
	}
	items, ndjson, fail := decodeBatchItems(body)
	if fail != nil {
		writeError(w, fail)
		return
	}
	if len(items) > maxBatchItems {
		writeError(w, failf(http.StatusRequestEntityTooLarge, codeBatchTooLarge, "%d items exceeds the %d-item batch cap", len(items), maxBatchItems))
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	// One admission slot covers the whole batch — the point of
	// batching is to pay queueing once. Each source item still fans
	// its units across the library's bounded worker pool; the slot
	// bounds how many batches run at once, not how wide one batch
	// runs.
	release, fail := s.admit(ctx)
	if fail != nil {
		writeError(w, fail)
		return
	}
	defer release()

	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for i, raw := range items {
			// A client that hangs up mid-stream turns every further
			// Encode into a wasted allocation: the write fails, but the
			// loop would still run the remaining rows through the
			// allocator at full cost. Stop on the first write error or
			// on request-context cancellation instead of burning the
			// admission slot on results nobody will read.
			if ctx.Err() != nil {
				return
			}
			if err := enc.Encode(s.batchOne(ctx, i, raw)); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}

	resp := batchResponse{Items: make([]batchItem, 0, len(items))}
	for i, raw := range items {
		item := s.batchOne(ctx, i, raw)
		if item.Error != nil {
			resp.Failed++
		} else {
			resp.OK++
		}
		resp.Items = append(resp.Items, item)
	}
	writeJSON(w, resp)
}

// batchOne runs one batch row end to end: decode, validate, and
// serve through the result cache. Failures land in the row, never in
// the batch's own status.
func (s *server) batchOne(ctx context.Context, index int, raw json.RawMessage) batchItem {
	item := batchItem{Index: index}
	req := &AllocRequest{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return item.fail(failErr(http.StatusBadRequest, codeBadBody, "decoding batch item", err))
	}
	if strings.TrimSpace(req.Source) == "" {
		return item.fail(failf(http.StatusBadRequest, codeEmptyBody, "empty source"))
	}
	// The batch holds exactly one admission slot, and a portfolio
	// race needs to re-admit each candidate individually — under the
	// slot the batch already owns that deadlocks at -max-inflight=1.
	// Races stay a single-request feature.
	if req.portfolioSpec() != "" {
		return item.fail(failf(http.StatusBadRequest, codeBadRequest, "portfolio races are not available in batches; POST /v1/alloc instead"))
	}
	kind, fail := req.inputKind()
	if fail != nil {
		return item.fail(fail)
	}
	body, out, fail := s.allocCached(ctx, req, kind)
	if fail != nil {
		return item.fail(fail)
	}
	item.Status = http.StatusOK
	item.Cache = out.String()
	item.Result = json.RawMessage(body)
	return item
}

func (it batchItem) fail(e *apiError) batchItem {
	it.Status = e.Status
	it.Error = e
	return it
}

// decodeBatchItems splits the payload into raw per-item messages,
// reporting whether the NDJSON form was used (the reply mirrors the
// request's form).
func decodeBatchItems(body []byte) ([]json.RawMessage, bool, *apiError) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, false, failf(http.StatusBadRequest, codeEmptyBody, "empty batch: POST a JSON array or NDJSON stream of allocation requests")
	}
	if trimmed[0] == '[' {
		var raw []json.RawMessage
		if err := json.Unmarshal(trimmed, &raw); err != nil {
			return nil, false, failErr(http.StatusBadRequest, codeBadBody, "decoding batch array", err)
		}
		if len(raw) == 0 {
			return nil, false, failf(http.StatusBadRequest, codeEmptyBody, "empty batch array")
		}
		return raw, false, nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var raw []json.RawMessage
	for dec.More() {
		var m json.RawMessage
		if err := dec.Decode(&m); err != nil {
			return nil, true, failErr(http.StatusBadRequest, codeBadBody, "decoding NDJSON batch stream", err)
		}
		raw = append(raw, m)
	}
	if len(raw) == 0 {
		return nil, true, failf(http.StatusBadRequest, codeEmptyBody, "empty NDJSON batch stream")
	}
	return raw, true, nil
}
