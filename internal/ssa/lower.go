package ssa

import (
	"fmt"

	"regalloc/internal/color"
	"regalloc/internal/ir"
)

// LowerStats reports the phi-lowering work.
type LowerStats struct {
	Copies      int // instructions emitted to implement the parallel copies
	CycleBreaks int // copy cycles broken via a scratch register
	SlotBounces int // copy cycles broken via a spill-slot store/load
}

// Lower eliminates the phi side table: for every edge into a phi
// block it emits, at the end of the predecessor (which ends in an
// unconditional branch — critical edges were split), the parallel
// copy moving each argument's location to its destination's
// location. Copies are sequentialized by location: a copy runs only
// when nothing pending still reads its destination location; a cycle
// is broken by saving the blocking location to a scratch register on
// a free color, or — when every color is occupied — bouncing it
// through a fresh spill slot. Returns the coloring extended with any
// scratch registers.
//
// The emitted copies are plain ir.OpMove instructions, deliberately:
// any that survive (same-location copies are already skipped here)
// remain visible to downstream copy elimination, in particular the
// iterated-register-coalescing round (internal/irc), which treats
// every OpMove as a coalesce candidate.
func Lower(s *Func, a *Analysis, colors []int16, k color.K) ([]int16, LowerStats, error) {
	f := s.F
	var st LowerStats
	for _, b := range f.Blocks {
		phis := s.Phis[b.ID]
		if len(phis) == 0 {
			continue
		}
		for j, p := range b.Preds {
			emitted, err := lowerEdge(s, a, &colors, phis, b, j, p, k, &st)
			if err != nil {
				return nil, st, err
			}
			if len(emitted) == 0 {
				continue
			}
			pb := f.Blocks[p]
			term := len(pb.Instrs) - 1
			out := make([]ir.Instr, 0, len(pb.Instrs)+len(emitted))
			out = append(out, pb.Instrs[:term]...)
			out = append(out, emitted...)
			out = append(out, pb.Instrs[term])
			pb.Instrs = out
			st.Copies += len(emitted)
		}
	}
	for i := range s.Phis {
		s.Phis[i] = nil
	}
	return colors, st, nil
}

// edgeCopy is one pending location transfer of the parallel copy.
type edgeCopy struct {
	dst, src       ir.Reg
	dstLoc, srcLoc int   // srcLoc < 0: the value waits in a bounce slot
	slot           int64 // bounce slot, when srcLoc < 0
}

// lowerEdge sequentializes the parallel copy for the edge p -> b
// (b's j-th predecessor) and returns the instruction sequence.
func lowerEdge(s *Func, a *Analysis, colors *[]int16, phis []Phi, b *ir.Block, j, p int, k color.K, st *LowerStats) ([]ir.Instr, error) {
	f := s.F
	var emitted []ir.Instr

	// Occupied colors at the copy point, per class: everything
	// live out of p plus every destination, conservatively — scratch
	// registers must not collide with any of them.
	var occ [ir.NumClasses][]bool
	for c := 0; c < ir.NumClasses; c++ {
		occ[c] = make([]bool, k(ir.Class(c)))
	}
	mark := func(r ir.Reg) {
		cls := f.RegClass(r)
		if c := (*colors)[r]; c != color.NoColor && int(c) < len(occ[cls]) {
			occ[cls][c] = true
		}
	}
	a.Live.Out[p].ForEach(func(r int) { mark(ir.Reg(r)) })

	var pending [ir.NumClasses][]*edgeCopy
	for i := range phis {
		ph := &phis[i]
		dst, src := ph.Dst, ph.Args[j]
		if dst == src {
			continue // the value flows to itself around the loop
		}
		cd, cs := (*colors)[dst], (*colors)[src]
		if cd == color.NoColor || cs == color.NoColor {
			return nil, fmt.Errorf("ssa: %s: phi copy v%d <- v%d has uncolored ends", f.Name, dst, src)
		}
		mark(dst)
		cls := f.RegClass(dst)
		if cd == cs {
			// Same location: the value is already in place, but the
			// destination register must still be defined for the
			// verifier and any later passes; the assembler turns this
			// into a self-move.
			emitted = append(emitted, ir.Instr{Op: ir.OpMove, Dst: dst, A: src, B: ir.NoReg, C: ir.NoReg})
			continue
		}
		pending[cls] = append(pending[cls], &edgeCopy{dst: dst, src: src, dstLoc: int(cd), srcLoc: int(cs)})
	}

	for c := 0; c < ir.NumClasses; c++ {
		cls := ir.Class(c)
		work := pending[c]
		if len(work) == 0 {
			continue
		}
		// srcCount[loc] = pending copies still reading loc.
		srcCount := make(map[int]int)
		for _, cp := range work {
			srcCount[cp.srcLoc]++
		}
		done := make([]bool, len(work))
		remaining := len(work)
		emit := func(i int) {
			cp := work[i]
			if cp.srcLoc < 0 {
				emitted = append(emitted, ir.Instr{Op: ir.OpSpillLoad, Dst: cp.dst, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: cp.slot})
			} else {
				emitted = append(emitted, ir.Instr{Op: ir.OpMove, Dst: cp.dst, A: cp.src, B: ir.NoReg, C: ir.NoReg})
				srcCount[cp.srcLoc]--
			}
			done[i] = true
			remaining--
		}
		for remaining > 0 {
			progress := false
			for i, cp := range work {
				if !done[i] && srcCount[cp.dstLoc] == 0 {
					emit(i)
					progress = true
				}
			}
			if progress {
				continue
			}
			// Every pending destination location is still read by a
			// pending copy: a cycle. Free the lowest blocked
			// destination location by saving its current value — the
			// (unique) register among the pending sources that holds
			// it.
			pick := -1
			for i, cp := range work {
				if !done[i] && (pick < 0 || cp.dstLoc < work[pick].dstLoc) {
					pick = i
				}
			}
			m := work[pick].dstLoc
			var v ir.Reg = ir.NoReg
			for i, cp := range work {
				if !done[i] && cp.srcLoc == m {
					v = cp.src
					break
				}
			}
			if v == ir.NoReg {
				return nil, fmt.Errorf("ssa: %s: copy cycle at b%d pred b%d has no reader of location %d", f.Name, b.ID, p, m)
			}
			free := -1
			for loc := 0; loc < len(occ[c]); loc++ {
				if !occ[c][loc] {
					free = loc
					break
				}
			}
			if free >= 0 {
				t := f.NewReg(cls)
				for len(*colors) < f.NumRegs() {
					*colors = append(*colors, color.NoColor)
				}
				(*colors)[t] = int16(free)
				occ[c][free] = true
				emitted = append(emitted, ir.Instr{Op: ir.OpMove, Dst: t, A: v, B: ir.NoReg, C: ir.NoReg})
				for i, cp := range work {
					if !done[i] && cp.srcLoc == m {
						cp.src = t
						cp.srcLoc = free
						srcCount[free]++
					}
				}
				srcCount[m] = 0
				st.CycleBreaks++
			} else {
				sl := f.NewSlot()
				emitted = append(emitted, ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: v, B: ir.NoReg, C: ir.NoReg, Imm: sl})
				for i, cp := range work {
					if !done[i] && cp.srcLoc == m {
						cp.srcLoc = -1
						cp.slot = sl
					}
				}
				srcCount[m] = 0
				st.SlotBounces++
			}
		}
	}
	return emitted, nil
}
