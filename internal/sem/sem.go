// Package sem performs semantic analysis of mini-FORTRAN programs:
// symbol resolution (with classic I–N implicit typing), expression
// typing, disambiguation of NAME(args) into array references,
// intrinsic applications, or user function calls, and call-signature
// checking. Its output (Info) is consumed by the IR generator.
package sem

import (
	"fmt"

	"regalloc/internal/ast"
	"regalloc/internal/source"
)

// SymKind classifies a symbol within a unit.
type SymKind int

// Symbol kinds.
const (
	SymParam SymKind = iota
	SymLocal
	SymRet // the function-name pseudo-variable holding the return value
)

// Symbol is a resolved name within a unit.
type Symbol struct {
	Name  string
	Kind  SymKind
	Type  ast.Type
	Dims  []ast.Dim // non-empty for arrays
	Index int       // parameter position for SymParam
}

// IsArray reports whether the symbol is an array.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// CallKind classifies a parsed NAME(args) expression.
type CallKind int

// Call kinds.
const (
	CallArray CallKind = iota
	CallIntrinsic
	CallUser
)

// Intrinsic identifies a built-in function. Generic and specific
// FORTRAN names (ABS/IABS/DABS, MAX/MAX0/AMAX1/DMAX1, …) map to the
// same intrinsic; the operand types select the integer or real form.
type Intrinsic int

// Intrinsics.
const (
	IntrAbs Intrinsic = iota
	IntrSqrt
	IntrMod
	IntrMin
	IntrMax
	IntrInt   // truncate real -> integer
	IntrFloat // integer -> real
	IntrSign  // SIGN(a,b): |a| * sign(b)
	IntrExp
	IntrLog
	IntrSin
	IntrCos
)

var intrinsics = map[string]Intrinsic{
	"ABS": IntrAbs, "IABS": IntrAbs, "DABS": IntrAbs,
	"SQRT": IntrSqrt, "DSQRT": IntrSqrt,
	"MOD": IntrMod, "AMOD": IntrMod, "DMOD": IntrMod,
	"MIN": IntrMin, "MIN0": IntrMin, "AMIN1": IntrMin, "DMIN1": IntrMin,
	"MAX": IntrMax, "MAX0": IntrMax, "AMAX1": IntrMax, "DMAX1": IntrMax,
	"INT": IntrInt, "IDINT": IntrInt, "IFIX": IntrInt,
	"FLOAT": IntrFloat, "DBLE": IntrFloat, "DFLOAT": IntrFloat, "SNGL": IntrFloat,
	"SIGN": IntrSign, "ISIGN": IntrSign, "DSIGN": IntrSign,
	"EXP": IntrExp, "DEXP": IntrExp,
	"LOG": IntrLog, "ALOG": IntrLog, "DLOG": IntrLog,
	"SIN": IntrSin, "DSIN": IntrSin,
	"COS": IntrCos, "DCOS": IntrCos,
}

// LookupIntrinsic resolves an intrinsic by (upper-case) name.
func LookupIntrinsic(name string) (Intrinsic, bool) {
	in, ok := intrinsics[name]
	return in, ok
}

// ParamSig describes one formal parameter of a unit.
type ParamSig struct {
	Name    string
	Type    ast.Type
	IsArray bool
}

// Sig is a unit's call signature.
type Sig struct {
	Name   string
	Kind   ast.UnitKind
	Ret    ast.Type
	Params []ParamSig
}

// UnitInfo holds per-unit analysis results.
type UnitInfo struct {
	Unit      *ast.Unit
	Symbols   map[string]*Symbol
	ExprType  map[ast.Expr]ast.Type
	CallKind  map[*ast.CallExpr]CallKind
	Intrinsic map[*ast.CallExpr]Intrinsic
}

// Sym returns the symbol for name, or nil.
func (ui *UnitInfo) Sym(name string) *Symbol { return ui.Symbols[name] }

// TypeOf returns the computed type of an expression.
func (ui *UnitInfo) TypeOf(e ast.Expr) ast.Type { return ui.ExprType[e] }

// Info is the result of analyzing a whole program.
type Info struct {
	Units map[string]*UnitInfo
	Sigs  map[string]*Sig
}

// ImplicitType returns the classic FORTRAN implicit type of a name:
// INTEGER for names starting I through N, REAL otherwise.
func ImplicitType(name string) ast.Type {
	if name == "" {
		return ast.TypeReal
	}
	if c := name[0]; c >= 'I' && c <= 'N' {
		return ast.TypeInt
	}
	return ast.TypeReal
}

// Check analyzes prog and returns the semantic info, or an error
// list describing every problem found.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Units: make(map[string]*UnitInfo),
			Sigs:  make(map[string]*Sig),
		},
	}
	// Pass 1: collect signatures so calls may be forward references.
	for _, u := range prog.Units {
		c.collectSig(u)
	}
	// Pass 2: analyze bodies.
	for _, u := range prog.Units {
		c.checkUnit(u)
	}
	return c.info, c.errs.Err()
}

type checker struct {
	info *Info
	errs source.ErrorList
	// current unit state
	ui   *UnitInfo
	unit *ast.Unit
}

func (c *checker) errorf(pos source.Pos, format string, args ...interface{}) {
	c.errs.Add(pos, format, args...)
}

func (c *checker) collectSig(u *ast.Unit) {
	if _, dup := c.info.Sigs[u.Name]; dup {
		c.errorf(u.Pos, "duplicate unit %s", u.Name)
		return
	}
	sig := &Sig{Name: u.Name, Kind: u.Kind}
	if u.Kind == ast.KindFunction {
		sig.Ret = u.RetType
		if sig.Ret == ast.TypeNone {
			sig.Ret = ImplicitType(u.Name)
		}
	}
	declFor := func(name string) *ast.Decl {
		for _, d := range u.Decls {
			if d.Name == name {
				return d
			}
		}
		return nil
	}
	for _, pname := range u.Params {
		ps := ParamSig{Name: pname, Type: ImplicitType(pname)}
		if d := declFor(pname); d != nil {
			ps.Type = d.Type
			ps.IsArray = d.IsArray()
		}
		sig.Params = append(sig.Params, ps)
	}
	c.info.Sigs[u.Name] = sig
}

func (c *checker) checkUnit(u *ast.Unit) {
	ui := &UnitInfo{
		Unit:      u,
		Symbols:   make(map[string]*Symbol),
		ExprType:  make(map[ast.Expr]ast.Type),
		CallKind:  make(map[*ast.CallExpr]CallKind),
		Intrinsic: make(map[*ast.CallExpr]Intrinsic),
	}
	c.ui = ui
	c.unit = u
	if _, dup := c.info.Units[u.Name]; dup {
		return // already reported in collectSig
	}
	c.info.Units[u.Name] = ui

	// Parameters.
	for i, pname := range u.Params {
		if _, dup := ui.Symbols[pname]; dup {
			c.errorf(u.Pos, "duplicate parameter %s", pname)
			continue
		}
		ui.Symbols[pname] = &Symbol{Name: pname, Kind: SymParam, Type: ImplicitType(pname), Index: i}
	}
	// Declarations refine parameter types or introduce locals.
	for _, d := range u.Decls {
		if sym, ok := ui.Symbols[d.Name]; ok {
			if sym.Kind != SymParam {
				c.errorf(d.Pos, "duplicate declaration of %s", d.Name)
				continue
			}
			sym.Type = d.Type
			sym.Dims = d.Dims
		} else {
			ui.Symbols[d.Name] = &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Dims: d.Dims}
		}
		c.checkDims(d)
	}
	// The function-name return variable.
	if u.Kind == ast.KindFunction {
		ret := c.info.Sigs[u.Name].Ret
		if _, clash := ui.Symbols[u.Name]; clash {
			c.errorf(u.Pos, "function name %s conflicts with a declaration", u.Name)
		} else {
			ui.Symbols[u.Name] = &Symbol{Name: u.Name, Kind: SymRet, Type: ret}
		}
	}
	c.checkStmts(u.Body)
}

// checkDims validates array dimensions: '*' only last and only for
// parameters; adjustable dims must name integer scalar parameters;
// constant dims must be positive; local arrays must be fully
// constant.
func (c *checker) checkDims(d *ast.Decl) {
	if len(d.Dims) == 0 {
		return
	}
	if len(d.Dims) > 2 {
		c.errorf(d.Pos, "%s: at most 2 array dimensions are supported", d.Name)
	}
	isParam := false
	for _, p := range c.unit.Params {
		if p == d.Name {
			isParam = true
		}
	}
	for i, dim := range d.Dims {
		switch {
		case dim.Star:
			if !isParam {
				c.errorf(d.Pos, "%s: '*' dimension is only legal for parameters", d.Name)
			}
			if i != len(d.Dims)-1 {
				c.errorf(d.Pos, "%s: '*' must be the last dimension", d.Name)
			}
		case dim.Name != "":
			if !isParam {
				c.errorf(d.Pos, "%s: adjustable dimension %s is only legal for parameters", d.Name, dim.Name)
			}
			sym := c.ui.Symbols[dim.Name]
			if sym == nil || sym.Kind != SymParam || sym.IsArray() {
				c.errorf(d.Pos, "%s: dimension %s must be a scalar parameter", d.Name, dim.Name)
			} else if sym.Type != ast.TypeInt {
				c.errorf(d.Pos, "%s: dimension %s must be INTEGER", d.Name, dim.Name)
			}
		default:
			if dim.Const <= 0 {
				c.errorf(d.Pos, "%s: array dimension must be positive", d.Name)
			}
		}
	}
}

// lookupOrImplicit resolves name, creating an implicitly-typed local
// on first use (classic FORTRAN behaviour).
func (c *checker) lookupOrImplicit(name string) *Symbol {
	if sym, ok := c.ui.Symbols[name]; ok {
		return sym
	}
	sym := &Symbol{Name: name, Kind: SymLocal, Type: ImplicitType(name)}
	c.ui.Symbols[name] = sym
	return sym
}

func (c *checker) checkStmts(list []ast.Stmt) {
	for _, s := range list {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		lt := c.checkVarRef(s.LHS, true)
		rt := c.checkExpr(s.RHS)
		if lt == ast.TypeNone || rt == ast.TypeNone {
			return
		}
		// Implicit conversion in either direction is allowed.
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmts(s.Then)
		c.checkStmts(s.Else)
	case *ast.DoStmt:
		sym := c.lookupOrImplicit(s.Var)
		if sym.IsArray() {
			c.errorf(s.Pos, "DO variable %s must be scalar", s.Var)
		}
		if sym.Type != ast.TypeInt {
			c.errorf(s.Pos, "DO variable %s must be INTEGER", s.Var)
		}
		c.requireInt(s.From, "DO lower bound")
		c.requireInt(s.To, "DO upper bound")
		c.checkStmts(s.Body)
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.checkStmts(s.Body)
	case *ast.CallStmt:
		sig, ok := c.info.Sigs[s.Name]
		if !ok {
			c.errorf(s.Pos, "CALL of unknown subroutine %s", s.Name)
			for _, a := range s.Args {
				c.checkExpr(a)
			}
			return
		}
		if sig.Kind != ast.KindSubroutine {
			c.errorf(s.Pos, "%s is a FUNCTION; call it in an expression", s.Name)
		}
		c.checkArgs(s.Pos, sig, s.Args)
	case *ast.ReturnStmt, *ast.ExitStmt, *ast.CycleStmt, *ast.ContinueStmt:
		// Loop-nesting validity of EXIT/CYCLE is enforced by irgen,
		// which knows the loop context.
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if t == ast.TypeReal {
		c.errorf(e.ExprPos(), "condition must be logical (a comparison), not REAL arithmetic")
	}
}

func (c *checker) requireInt(e ast.Expr, what string) {
	if t := c.checkExpr(e); t != ast.TypeInt && t != ast.TypeNone {
		c.errorf(e.ExprPos(), "%s must be INTEGER", what)
	}
}

// checkVarRef types a scalar or array-element reference. lhs marks
// assignment targets, where assigning to the function name is legal.
func (c *checker) checkVarRef(v *ast.VarRef, lhs bool) ast.Type {
	sym := c.lookupOrImplicit(v.Name)
	if sym.Kind == SymRet && !lhs {
		// Reading the return variable is permitted (it acts as a local).
		_ = sym
	}
	if len(v.Indexes) > 0 {
		if !sym.IsArray() {
			c.errorf(v.Pos, "%s is not an array", v.Name)
		} else if len(v.Indexes) != len(sym.Dims) {
			c.errorf(v.Pos, "%s has %d dimension(s), indexed with %d", v.Name, len(sym.Dims), len(v.Indexes))
		}
		for _, ix := range v.Indexes {
			c.requireInt(ix, "array index")
		}
	} else if sym.IsArray() {
		c.errorf(v.Pos, "array %s used without indexes", v.Name)
	}
	c.ui.ExprType[v] = sym.Type
	return sym.Type
}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	t := c.typeExpr(e)
	c.ui.ExprType[e] = t
	return t
}

func (c *checker) typeExpr(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.TypeInt
	case *ast.RealLit:
		return ast.TypeReal
	case *ast.VarRef:
		return c.checkVarRef(e, false)
	case *ast.UnExpr:
		xt := c.checkExpr(e.X)
		if e.Op == ast.OpNot && xt == ast.TypeReal {
			c.errorf(e.Pos, ".NOT. applied to REAL value")
		}
		return xt
	case *ast.BinExpr:
		lt := c.checkExpr(e.L)
		rt := c.checkExpr(e.R)
		switch {
		case e.Op.IsRelational():
			return ast.TypeInt // conditions are integer 0/1
		case e.Op.IsLogical():
			if lt == ast.TypeReal || rt == ast.TypeReal {
				c.errorf(e.Pos, "%s applied to REAL value", e.Op)
			}
			return ast.TypeInt
		case e.Op == ast.OpPow:
			if lt == ast.TypeInt && rt == ast.TypeInt {
				return ast.TypeInt
			}
			return ast.TypeReal
		default:
			if lt == ast.TypeReal || rt == ast.TypeReal {
				return ast.TypeReal
			}
			return ast.TypeInt
		}
	case *ast.CallExpr:
		return c.typeCall(e)
	}
	return ast.TypeNone
}

func (c *checker) typeCall(e *ast.CallExpr) ast.Type {
	// NAME(args) is an array reference if NAME is an array symbol.
	if sym, ok := c.ui.Symbols[e.Name]; ok && sym.IsArray() {
		c.ui.CallKind[e] = CallArray
		if len(e.Args) != len(sym.Dims) {
			c.errorf(e.Pos, "%s has %d dimension(s), indexed with %d", e.Name, len(sym.Dims), len(e.Args))
		}
		for _, ix := range e.Args {
			c.requireInt(ix, "array index")
		}
		return sym.Type
	}
	// Intrinsic?
	if in, ok := intrinsics[e.Name]; ok {
		c.ui.CallKind[e] = CallIntrinsic
		c.ui.Intrinsic[e] = in
		return c.typeIntrinsic(e, in)
	}
	// User function?
	if sig, ok := c.info.Sigs[e.Name]; ok {
		if sig.Kind != ast.KindFunction {
			c.errorf(e.Pos, "%s is a SUBROUTINE; use CALL", e.Name)
			return ast.TypeNone
		}
		c.ui.CallKind[e] = CallUser
		c.checkArgs(e.Pos, sig, e.Args)
		return sig.Ret
	}
	c.errorf(e.Pos, "unknown function or array %s", e.Name)
	for _, a := range e.Args {
		c.checkExpr(a)
	}
	return ImplicitType(e.Name)
}

func (c *checker) typeIntrinsic(e *ast.CallExpr, in Intrinsic) ast.Type {
	var ts []ast.Type
	for _, a := range e.Args {
		ts = append(ts, c.checkExpr(a))
	}
	need := func(n int) bool {
		if len(e.Args) != n {
			c.errorf(e.Pos, "%s expects %d argument(s), got %d", e.Name, n, len(e.Args))
			return false
		}
		return true
	}
	promote := func() ast.Type {
		for _, t := range ts {
			if t == ast.TypeReal {
				return ast.TypeReal
			}
		}
		return ast.TypeInt
	}
	switch in {
	case IntrAbs:
		if need(1) {
			return ts[0]
		}
	case IntrSqrt, IntrExp, IntrLog, IntrSin, IntrCos:
		need(1)
		return ast.TypeReal
	case IntrMod:
		if need(2) {
			return promote()
		}
	case IntrMin, IntrMax:
		if len(e.Args) < 2 {
			c.errorf(e.Pos, "%s expects at least 2 arguments", e.Name)
		}
		return promote()
	case IntrInt:
		need(1)
		return ast.TypeInt
	case IntrFloat:
		need(1)
		return ast.TypeReal
	case IntrSign:
		if need(2) {
			return promote()
		}
	}
	return ast.TypeNone
}

// checkArgs validates a call's arguments against the unit signature.
// Scalar parameters are passed by value; array parameters receive
// the address of an array or of an array element.
func (c *checker) checkArgs(pos source.Pos, sig *Sig, args []ast.Expr) {
	if len(args) != len(sig.Params) {
		c.errorf(pos, "%s expects %d argument(s), got %d", sig.Name, len(sig.Params), len(args))
	}
	n := len(args)
	if len(sig.Params) < n {
		n = len(sig.Params)
	}
	for i := 0; i < n; i++ {
		arg := args[i]
		ps := sig.Params[i]
		if ps.IsArray {
			name, elemOK := arrayArgName(arg)
			if !elemOK {
				c.errorf(arg.ExprPos(), "argument %d of %s must be an array or array element", i+1, sig.Name)
				c.checkExpr(arg)
				continue
			}
			sym := c.lookupOrImplicit(name)
			if !sym.IsArray() {
				c.errorf(arg.ExprPos(), "argument %d of %s: %s is not an array", i+1, sig.Name, name)
				continue
			}
			if sym.Type != ps.Type {
				c.errorf(arg.ExprPos(), "argument %d of %s: array element type mismatch (%s vs %s)", i+1, sig.Name, sym.Type, ps.Type)
			}
			// Type the index expressions, if an element reference.
			switch a := arg.(type) {
			case *ast.CallExpr:
				c.ui.CallKind[a] = CallArray
				for _, ix := range a.Args {
					c.requireInt(ix, "array index")
				}
				c.ui.ExprType[a] = sym.Type
			case *ast.VarRef:
				c.ui.ExprType[a] = sym.Type
			}
			continue
		}
		at := c.checkExpr(arg)
		if at != ps.Type && at != ast.TypeNone {
			// Allowed with implicit conversion, like assignment.
			_ = at
		}
	}
}

// arrayArgName extracts the array name from an argument passed to an
// array parameter: either a bare name or NAME(indexes).
func arrayArgName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.VarRef:
		if len(e.Indexes) == 0 {
			return e.Name, true
		}
		return e.Name, true
	case *ast.CallExpr:
		return e.Name, true
	}
	return "", false
}

// Describe returns a short human-readable summary of a unit's
// symbols, used by the compiler driver's -verbose mode.
func (ui *UnitInfo) Describe() string {
	s := fmt.Sprintf("unit %s: %d symbols", ui.Unit.Name, len(ui.Symbols))
	return s
}
