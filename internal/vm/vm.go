// Package vm simulates the target machine: it executes assembled
// programs (package asm) over a flat word-addressed memory, counting
// cycles with the model in package target. The simulator stands in
// for the paper's IBM RT/PC; it produces the dynamic measurements
// (Figure 5's runtime improvement column and Figure 6's quicksort
// running times) deterministically.
package vm

import (
	"fmt"
	"io"
	"math"

	"regalloc/internal/asm"
	"regalloc/internal/ir"
	"regalloc/internal/target"
)

// Value is a scalar argument or result.
type Value struct {
	Cls ir.Class
	I   int64
	F   float64
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Cls: ir.ClassInt, I: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{Cls: ir.ClassFloat, F: v} }

// VM is a simulator instance. Memory is shared across calls, so a
// driver can initialize argument arrays, run, and inspect results.
type VM struct {
	prog *asm.Program
	Mem  []uint64
	// Cycles accumulates across calls; reset with ResetCycles.
	Cycles uint64
	// MaxCycles aborts runaway programs (default 4e9).
	MaxCycles uint64
	// MaxDepth bounds call nesting (default 64).
	MaxDepth int
	// Trace, when set, receives a line per executed instruction —
	// the debugging view of a run. Tracing a long simulation is
	// enormous; use it on small reproductions.
	Trace io.Writer

	depth int
}

// New returns a VM for prog with the given memory size in words.
func New(prog *asm.Program, memWords int) *VM {
	return &VM{prog: prog, Mem: make([]uint64, memWords), MaxCycles: 4e9, MaxDepth: 64}
}

// ResetCycles zeroes the cycle counter.
func (vm *VM) ResetCycles() { vm.Cycles = 0 }

// LoadFloat reads the float at word address a.
func (vm *VM) LoadFloat(a int64) float64 { return math.Float64frombits(vm.Mem[a]) }

// StoreFloat writes the float v at word address a.
func (vm *VM) StoreFloat(a int64, v float64) { vm.Mem[a] = math.Float64bits(v) }

// LoadInt reads the integer at word address a.
func (vm *VM) LoadInt(a int64) int64 { return int64(vm.Mem[a]) }

// StoreInt writes the integer v at word address a.
func (vm *VM) StoreInt(a int64, v int64) { vm.Mem[a] = uint64(v) }

// Call runs the named function with the given arguments and returns
// its result (the zero Value for subroutines).
func (vm *VM) Call(name string, args ...Value) (Value, error) {
	f := vm.prog.Func(name)
	if f == nil {
		return Value{}, fmt.Errorf("vm: no function %s", name)
	}
	if len(args) != len(f.ParamCls) {
		return Value{}, fmt.Errorf("vm: %s expects %d args, got %d", name, len(f.ParamCls), len(args))
	}
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > vm.MaxDepth {
		return Value{}, fmt.Errorf("vm: call depth exceeded at %s", name)
	}
	return vm.run(f, args)
}

func (vm *VM) run(f *asm.Func, args []Value) (Value, error) {
	gpr := make([]int64, f.Machine.NumGPR)
	fpr := make([]float64, f.Machine.NumFPR)
	code := f.Code
	pc := int32(0)

	addr := func(in *asm.Instr) (int64, error) {
		a := in.Imm
		if in.B != asm.NoReg {
			a += gpr[in.B]
		}
		if in.C != asm.NoReg {
			a += gpr[in.C]
		}
		if a < 0 || a >= int64(len(vm.Mem)) {
			return 0, fmt.Errorf("vm: %s pc=%d: address %d out of range", f.Name, pc, a)
		}
		return a, nil
	}

	for {
		if pc < 0 || int(pc) >= len(code) {
			return Value{}, fmt.Errorf("vm: %s: pc %d out of range", f.Name, pc)
		}
		in := &code[pc]
		vm.Cycles += target.Cycles(in.Op)
		if vm.Cycles > vm.MaxCycles {
			return Value{}, fmt.Errorf("vm: cycle limit exceeded in %s", f.Name)
		}
		if vm.Trace != nil {
			fmt.Fprintf(vm.Trace, "%s:%d\t%s\n", f.Name, pc, in.String())
		}
		switch in.Op {
		case ir.OpNop:
		case ir.OpParam:
			v := args[in.Imm]
			if in.Cls == ir.ClassFloat {
				fpr[in.Dst] = v.F
			} else {
				gpr[in.Dst] = v.I
			}
		case ir.OpConst:
			if in.Cls == ir.ClassFloat {
				fpr[in.Dst] = in.FImm
			} else {
				gpr[in.Dst] = in.Imm
			}
		case ir.OpMove:
			if in.Cls == ir.ClassFloat {
				fpr[in.Dst] = fpr[in.A]
			} else {
				gpr[in.Dst] = gpr[in.A]
			}
		case ir.OpItoF:
			fpr[in.Dst] = float64(gpr[in.A])
		case ir.OpFtoI:
			gpr[in.Dst] = int64(fpr[in.A])
		case ir.OpAdd:
			gpr[in.Dst] = gpr[in.A] + gpr[in.B]
		case ir.OpSub:
			gpr[in.Dst] = gpr[in.A] - gpr[in.B]
		case ir.OpMul:
			gpr[in.Dst] = gpr[in.A] * gpr[in.B]
		case ir.OpDiv:
			if gpr[in.B] == 0 {
				return Value{}, fmt.Errorf("vm: %s pc=%d: integer division by zero", f.Name, pc)
			}
			gpr[in.Dst] = gpr[in.A] / gpr[in.B]
		case ir.OpMod:
			if gpr[in.B] == 0 {
				return Value{}, fmt.Errorf("vm: %s pc=%d: MOD by zero", f.Name, pc)
			}
			gpr[in.Dst] = gpr[in.A] % gpr[in.B]
		case ir.OpNeg:
			gpr[in.Dst] = -gpr[in.A]
		case ir.OpIMin:
			gpr[in.Dst] = min64(gpr[in.A], gpr[in.B])
		case ir.OpIMax:
			gpr[in.Dst] = max64(gpr[in.A], gpr[in.B])
		case ir.OpIAbs:
			gpr[in.Dst] = abs64(gpr[in.A])
		case ir.OpISign:
			gpr[in.Dst] = sign64(gpr[in.A], gpr[in.B])
		case ir.OpIPow:
			gpr[in.Dst] = ipow(gpr[in.A], gpr[in.B])
		case ir.OpAddI:
			gpr[in.Dst] = gpr[in.A] + in.Imm
		case ir.OpMulI:
			gpr[in.Dst] = gpr[in.A] * in.Imm
		case ir.OpFAdd:
			fpr[in.Dst] = fpr[in.A] + fpr[in.B]
		case ir.OpFSub:
			fpr[in.Dst] = fpr[in.A] - fpr[in.B]
		case ir.OpFMul:
			fpr[in.Dst] = fpr[in.A] * fpr[in.B]
		case ir.OpFDiv:
			fpr[in.Dst] = fpr[in.A] / fpr[in.B]
		case ir.OpFNeg:
			fpr[in.Dst] = -fpr[in.A]
		case ir.OpFMin:
			fpr[in.Dst] = math.Min(fpr[in.A], fpr[in.B])
		case ir.OpFMax:
			fpr[in.Dst] = math.Max(fpr[in.A], fpr[in.B])
		case ir.OpFAbs:
			fpr[in.Dst] = math.Abs(fpr[in.A])
		case ir.OpFSqrt:
			fpr[in.Dst] = math.Sqrt(fpr[in.A])
		case ir.OpFExp:
			fpr[in.Dst] = math.Exp(fpr[in.A])
		case ir.OpFLog:
			fpr[in.Dst] = math.Log(fpr[in.A])
		case ir.OpFSin:
			fpr[in.Dst] = math.Sin(fpr[in.A])
		case ir.OpFCos:
			fpr[in.Dst] = math.Cos(fpr[in.A])
		case ir.OpFSign:
			fpr[in.Dst] = fsign(fpr[in.A], fpr[in.B])
		case ir.OpFMod:
			fpr[in.Dst] = math.Mod(fpr[in.A], fpr[in.B])
		case ir.OpFPow:
			fpr[in.Dst] = math.Pow(fpr[in.A], fpr[in.B])
		case ir.OpLoad:
			a, err := addr(in)
			if err != nil {
				return Value{}, err
			}
			if in.Cls == ir.ClassFloat {
				fpr[in.Dst] = math.Float64frombits(vm.Mem[a])
			} else {
				gpr[in.Dst] = int64(vm.Mem[a])
			}
		case ir.OpStore:
			a, err := addr(in)
			if err != nil {
				return Value{}, err
			}
			if in.Cls == ir.ClassFloat {
				vm.Mem[a] = math.Float64bits(fpr[in.A])
			} else {
				vm.Mem[a] = uint64(gpr[in.A])
			}
		case ir.OpBr:
			vm.Cycles += target.TakenBranchExtra
			pc = in.T0
			continue
		case ir.OpBrIf:
			var taken bool
			if in.Cls == ir.ClassFloat {
				taken = fcmp(in.Cmp, fpr[in.A], fpr[in.B])
			} else {
				taken = icmp(in.Cmp, gpr[in.A], gpr[in.B])
			}
			if taken {
				vm.Cycles += target.TakenBranchExtra
				pc = in.T0
				continue
			}
		case ir.OpRet:
			if in.A == asm.NoReg {
				return Value{}, nil
			}
			if in.ACls == ir.ClassFloat {
				return Float(fpr[in.A]), nil
			}
			return Int(gpr[in.A]), nil
		case ir.OpCall:
			callArgs := make([]Value, len(in.Args))
			for i, a := range in.Args {
				if a.Cls == ir.ClassFloat {
					callArgs[i] = Float(fpr[a.R])
				} else {
					callArgs[i] = Int(gpr[a.R])
				}
			}
			ret, err := vm.Call(in.Callee, callArgs...)
			if err != nil {
				return Value{}, err
			}
			if in.Dst != asm.NoReg {
				if in.Cls == ir.ClassFloat {
					fpr[in.Dst] = ret.F
				} else {
					gpr[in.Dst] = ret.I
				}
			}
		default:
			return Value{}, fmt.Errorf("vm: %s pc=%d: unexecutable op %s", f.Name, pc, in.Op)
		}
		pc++
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// sign64 is FORTRAN's ISIGN: |a| with the sign of b (b==0 counts as
// positive).
func sign64(a, b int64) int64 {
	if b < 0 {
		return -abs64(a)
	}
	return abs64(a)
}

func fsign(a, b float64) float64 {
	if math.Signbit(b) {
		return -math.Abs(a)
	}
	return math.Abs(a)
}

func ipow(a, b int64) int64 {
	if b < 0 {
		// Integer exponentiation truncates toward zero; only
		// a == ±1 survives a negative exponent.
		switch a {
		case 1:
			return 1
		case -1:
			if b%2 == 0 {
				return 1
			}
			return -1
		default:
			return 0
		}
	}
	r := int64(1)
	for ; b > 0; b-- {
		r *= a
	}
	return r
}

func icmp(c ir.Cmp, a, b int64) bool {
	switch c {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	default:
		return a >= b
	}
}

func fcmp(c ir.Cmp, a, b float64) bool {
	switch c {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	default:
		return a >= b
	}
}
