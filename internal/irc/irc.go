// Package irc implements George–Appel iterated register coalescing:
// the Build/Simplify/Coalesce/Freeze/Spill/Select worklist machine
// ("Iterated Register Coalescing", TOPLAS 1996, as presented in
// Appel's Modern Compiler Implementation). Where the paper's Figure 4
// cycle runs coalescing as a pre-pass over the full-pressure graph,
// IRC interleaves conservative coalescing with simplification: every
// node removed lowers its neighbors' degrees, so moves that fail the
// conservative test early in the phase pass it later, and far more
// copies are eliminated without ever making the graph harder to
// color.
//
// Node and move state transitions follow the classic formulation:
//
//	nodes: initial → simplify/freeze/spill worklist → stack/coalesced
//	moves: worklist → coalesced | constrained | frozen | active (and
//	       active → worklist again when a neighbor's degree decays)
//
// Two conservative tests gate a coalesce. The Briggs test (the
// combined node has fewer than k significant-degree neighbors) is
// used between two ordinary nodes; George's test (every neighbor of
// the ordinary end is insignificant, precolored, or already adjacent
// to the other end) is used when one end is precolored — precolored
// nodes have no adjacency lists, and George's one-sided walk is what
// makes coalescing into physical registers safe. Freeze is the escape
// hatch: when nothing can simplify or coalesce, a low-degree
// move-related node gives up its moves and becomes simplifiable.
// Select colors with move bias: a node whose move partner already
// holds a legal color takes that color, so even moves that were never
// coalesced tend to become register self-copies.
//
// One Color call is one round; the alloc driver (alloc.runIRC) wraps
// it in the usual spill-and-repeat iteration and applies the coalesce
// rewrite on the successful round.
package irc

import (
	"math"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Result is the outcome of one IRC round.
type Result struct {
	// Colors assigns every graph node a color; NoColor marks the
	// spilled. Virtual registers occupy [0, NumVRegs); precolored
	// nodes follow with their fixed colors.
	Colors []int16
	// Spilled lists the virtual registers that received no color;
	// empty means the round succeeded.
	Spilled []int32
	// CoalescedIR counts IR move instructions whose ends were merged.
	CoalescedIR int
	// CoalescedMachine counts calling-convention bindings (argument,
	// return, call-result moves the machine model implies) merged
	// into their physical register.
	CoalescedMachine int
	// Constrained counts moves abandoned because their ends interfere.
	Constrained int
	// Frozen counts moves given up by freeze or spill selection.
	Frozen int

	n         int
	alias     []int32
	coalesced []bool
}

// wl names the worklist (or terminal state) a node currently occupies.
type wl uint8

const (
	wlNone wl = iota
	wlPrecolored
	wlSimplify
	wlFreeze
	wlSpill
	wlStack
	wlCoalesced
)

// moveState is the classic move lifecycle.
type moveState uint8

const (
	mvWorklist moveState = iota // candidate, ready to test
	mvActive                    // not ready; re-enabled when degrees decay
	mvCoalesced
	mvConstrained
	mvFrozen
)

type move struct {
	x, y    int32 // endpoints as graph nodes (x is the destination)
	machine bool  // a convention binding, not an IR instruction
	state   moveState
}

// infiniteDegree is the precolored nodes' degree: large enough that
// no decrement sequence reaches a class budget.
const infiniteDegree = int32(1) << 29

type state struct {
	f      *ir.Func
	g      *ig.MachineGraph
	n      int // virtual registers
	nn     int // total nodes
	kf     func(ir.Class) int
	cost   []float64
	metric color.Metric
	tr     *obs.Tracer
	opts   Opts

	adj    [][]int32 // adjacency lists, virtual registers only
	extra  map[uint64]struct{}
	degree []int32
	alias  []int32

	moves    []move
	moveList [][]int32 // node -> indices into moves

	where      []wl
	simplifyWL []int32
	freezeWL   []int32
	spillWL    []int32
	wlMoves    []int32
	wlMovesAt  int // queue head; entries before it are consumed
	stack      []int32

	r *Result
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Opts tunes one IRC round.
type Opts struct {
	// CoalesceSpillTemps admits moves touching spill and split
	// temporaries as coalesce candidates. Off, the round keeps the
	// pre-pass coalescer's policy — merging a reload temporary back
	// into a long-lived range would undo its spill, which is unsafe
	// while further spill rounds may follow. The driver switches it
	// on for the terminal round over an already-colorable program,
	// where George and Appel's observation applies directly: spill
	// code is itself full of copies, and coalescing the temporaries
	// is what cleans it up.
	CoalesceSpillTemps bool
}

// Color runs one IRC round over a prebuilt (machine-extended)
// interference graph. cost covers the virtual registers; kf is the
// per-class register budget; metric is the spill-choice figure of
// merit shared with the simplify-family heuristics. The graph may be
// a plain one wrapped by ig.WrapPlain, in which case no precolored
// constraints or convention bindings exist and the round is pure
// iterated coalescing.
func Color(f *ir.Func, mg *ig.MachineGraph, cost []float64, kf func(ir.Class) int, metric color.Metric, tr *obs.Tracer) *Result {
	return ColorWith(f, mg, cost, kf, metric, tr, Opts{})
}

// ColorWith is Color with explicit round options.
func ColorWith(f *ir.Func, mg *ig.MachineGraph, cost []float64, kf func(ir.Class) int, metric color.Metric, tr *obs.Tracer, o Opts) *Result {
	s := &state{
		f:      f,
		g:      mg,
		n:      mg.NumVRegs,
		nn:     mg.NumNodes(),
		kf:     kf,
		cost:   append([]float64(nil), cost...),
		metric: metric,
		tr:     tr,
		opts:   o,
		extra:  make(map[uint64]struct{}),
		r:      &Result{},
	}
	s.build()
	s.makeWorklists()
	for {
		switch {
		case s.popSimplify():
		case s.popCoalesce():
		case s.popFreeze():
		case s.popSpill():
		default:
			return s.assignColors()
		}
	}
}

func (s *state) k(a int32) int { return s.kf(s.g.Class(a)) }

func (s *state) precolored(a int32) bool { return int(a) >= s.n }

func (s *state) interfere(a, b int32) bool {
	if s.g.Interfere(a, b) {
		return true
	}
	_, ok := s.extra[edgeKey(a, b)]
	return ok
}

func (s *state) getAlias(a int32) int32 {
	for s.where[a] == wlCoalesced {
		a = s.alias[a]
	}
	return a
}

// build snapshots the graph into mutable adjacency/degree state and
// collects the move candidates: IR copies plus, when a machine model
// is present, the convention bindings.
func (s *state) build() {
	s.adj = make([][]int32, s.n)
	s.degree = make([]int32, s.nn)
	s.alias = make([]int32, s.nn)
	s.where = make([]wl, s.nn)
	s.moveList = make([][]int32, s.nn)
	for v := int32(0); int(v) < s.n; v++ {
		nbs := s.g.Neighbors(v)
		s.adj[v] = append([]int32(nil), nbs...)
		s.degree[v] = int32(len(nbs))
	}
	for p := int32(s.n); int(p) < s.nn; p++ {
		s.degree[p] = infiniteDegree
		s.where[p] = wlPrecolored
	}

	addMove := func(x, y int32, machine bool) {
		if x == y {
			return
		}
		mi := int32(len(s.moves))
		s.moves = append(s.moves, move{x: x, y: y, machine: machine, state: mvWorklist})
		s.moveList[x] = append(s.moveList[x], mi)
		s.moveList[y] = append(s.moveList[y], mi)
		s.wlMoves = append(s.wlMoves, mi)
	}
	// IR copies. The default candidate policy matches package
	// coalesce — spill-traffic registers never coalesce, since merging
	// a reload temporary back into a long-lived range would undo the
	// spill — unless the round opted into terminal spill-temp
	// coalescing (see Opts).
	coalescable := func(r ir.Reg) bool {
		return r != ir.NoReg && (s.f.RegFlags(r) == 0 || s.opts.CoalesceSpillTemps)
	}
	for _, b := range s.f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.IsMove() && coalescable(in.Dst) && coalescable(in.A) {
				addMove(int32(in.Dst), int32(in.A), false)
			}
		}
	}
	// Convention bindings: parameters to argument registers, returned
	// values and call results to the return register, call arguments
	// to their argument registers. Each is a virtual move the backend
	// would insert, so coalescing one pins the range to its physical
	// register and the move never materializes.
	if m := s.g.Model; m != nil {
		var pos [ir.NumClasses]int
		for _, p := range s.f.Params {
			c := s.f.RegClass(p)
			if r := m.ArgReg(c, pos[c]); r >= 0 && coalescable(p) {
				addMove(int32(p), s.g.PreNode(c, r), true)
			}
			pos[c]++
		}
		for _, b := range s.f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpRet:
					if coalescable(in.A) {
						c := s.f.RegClass(in.A)
						if r := m.RetReg[c]; r >= 0 {
							addMove(s.g.PreNode(c, r), int32(in.A), true)
						}
					}
				case ir.OpCall:
					var apos [ir.NumClasses]int
					for _, a := range in.Args {
						c := s.f.RegClass(a)
						if r := m.ArgReg(c, apos[c]); r >= 0 && coalescable(a) {
							addMove(s.g.PreNode(c, r), int32(a), true)
						}
						apos[c]++
					}
					if coalescable(in.Dst) {
						c := s.f.RegClass(in.Dst)
						if r := m.RetReg[c]; r >= 0 {
							addMove(int32(in.Dst), s.g.PreNode(c, r), true)
						}
					}
				}
			}
		}
	}
}

// nodeMoves reports whether node a (a current representative) has any
// move still live (worklist or active).
func (s *state) moveRelated(a int32) bool {
	for _, mi := range s.moveList[a] {
		st := s.moves[mi].state
		if st == mvWorklist || st == mvActive {
			return true
		}
	}
	return false
}

func (s *state) makeWorklists() {
	for v := int32(0); int(v) < s.n; v++ {
		switch {
		case s.degree[v] >= int32(s.k(v)):
			s.where[v] = wlSpill
			s.spillWL = append(s.spillWL, v)
		case s.moveRelated(v):
			s.where[v] = wlFreeze
			s.freezeWL = append(s.freezeWL, v)
		default:
			s.where[v] = wlSimplify
			s.simplifyWL = append(s.simplifyWL, v)
		}
	}
}

// adjacent calls fn for each of a's neighbors still in play (not
// stacked, not coalesced away).
func (s *state) adjacent(a int32, fn func(t int32)) {
	for _, t := range s.adj[a] {
		if w := s.where[t]; w != wlStack && w != wlCoalesced {
			fn(t)
		}
	}
}

func (s *state) enableMovesOf(a int32) {
	for _, mi := range s.moveList[a] {
		if s.moves[mi].state == mvActive {
			s.moves[mi].state = mvWorklist
			s.wlMoves = append(s.wlMoves, mi)
		}
	}
}

func (s *state) decrementDegree(t int32) {
	if s.precolored(t) {
		return
	}
	d := s.degree[t]
	s.degree[t] = d - 1
	if d == int32(s.k(t)) {
		// t just became insignificant: its moves (and its neighbors')
		// may now pass the conservative tests.
		s.enableMovesOf(t)
		s.adjacent(t, s.enableMovesOf)
		if s.where[t] == wlSpill {
			if s.moveRelated(t) {
				s.where[t] = wlFreeze
				s.freezeWL = append(s.freezeWL, t)
			} else {
				s.where[t] = wlSimplify
				s.simplifyWL = append(s.simplifyWL, t)
			}
		}
	}
}

// popSimplify removes one trivially-colorable node and stacks it.
func (s *state) popSimplify() bool {
	for len(s.simplifyWL) > 0 {
		v := s.simplifyWL[len(s.simplifyWL)-1]
		s.simplifyWL = s.simplifyWL[:len(s.simplifyWL)-1]
		if s.where[v] != wlSimplify {
			continue
		}
		s.where[v] = wlStack
		s.stack = append(s.stack, v)
		s.adjacent(v, s.decrementDegree)
		return true
	}
	return false
}

// addWorkList drops a node into the simplify worklist once it is
// neither move-related nor significant.
func (s *state) addWorkList(u int32) {
	if s.precolored(u) {
		return
	}
	if s.where[u] != wlFreeze && s.where[u] != wlSpill {
		return
	}
	if !s.moveRelated(u) && s.degree[u] < int32(s.k(u)) {
		s.where[u] = wlSimplify
		s.simplifyWL = append(s.simplifyWL, u)
	}
}

// georgeOK is George's test for coalescing ordinary v into u (which
// may be precolored): every in-play neighbor t of v must be
// insignificant, precolored, or already a neighbor of u, so merging
// adds no new pressure anywhere.
func (s *state) georgeOK(v, u int32) bool {
	ok := true
	s.adjacent(v, func(t int32) {
		if !ok {
			return
		}
		if s.degree[t] < int32(s.k(t)) || s.precolored(t) || s.interfere(t, u) {
			return
		}
		ok = false
	})
	return ok
}

// briggsOK is the Briggs conservative test on the union neighborhood
// of u and v, with the shared-neighbor refinement: a node adjacent to
// both ends loses an edge in the merge, so its effective degree drops
// by one.
func (s *state) briggsOK(u, v int32) bool {
	k := int32(s.k(u))
	deg := make(map[int32]int32)
	s.adjacent(u, func(t int32) { deg[t] = s.degree[t] })
	s.adjacent(v, func(t int32) {
		if d, common := deg[t]; common {
			deg[t] = d - 1
		} else {
			deg[t] = s.degree[t]
		}
	})
	delete(deg, u)
	delete(deg, v)
	significant := int32(0)
	for _, d := range deg {
		if d >= k {
			significant++
		}
	}
	return significant < k
}

// combine merges v into u after a successful conservative test.
func (s *state) combine(u, v int32) {
	s.where[v] = wlCoalesced
	s.alias[v] = u
	// The merged web carries the combined spill price: without this,
	// a long coalesced range keeps the cost of one member and looks
	// artificially cheap to popSpill.
	if !s.precolored(u) {
		s.cost[u] += s.cost[v]
	}
	s.moveList[u] = append(s.moveList[u], s.moveList[v]...)
	s.enableMovesOf(v)
	s.adjacent(v, func(t int32) {
		s.addEdge(t, u)
		s.decrementDegree(t)
	})
	if s.degree[u] >= int32(s.k(u)) && s.where[u] == wlFreeze {
		s.where[u] = wlSpill
		s.spillWL = append(s.spillWL, u)
	}
}

// addEdge grows the mutable graph during combine: t swaps its edge to
// the vanished v for one to u. Precolored nodes track neither
// adjacency nor degree.
func (s *state) addEdge(t, u int32) {
	if t == u || s.interfere(t, u) {
		return
	}
	s.extra[edgeKey(t, u)] = struct{}{}
	if !s.precolored(t) {
		s.adj[t] = append(s.adj[t], u)
		s.degree[t]++
	}
	if !s.precolored(u) {
		s.adj[u] = append(s.adj[u], t)
		s.degree[u]++
	}
}

// popCoalesce tests one pending move.
func (s *state) popCoalesce() bool {
	for s.wlMovesAt < len(s.wlMoves) {
		mi := s.wlMoves[s.wlMovesAt]
		s.wlMovesAt++
		mv := &s.moves[mi]
		if mv.state != mvWorklist {
			continue
		}
		x, y := s.getAlias(mv.x), s.getAlias(mv.y)
		var u, v int32
		if s.precolored(y) {
			u, v = y, x
		} else {
			u, v = x, y
		}
		switch {
		case u == v:
			mv.state = mvCoalesced
			s.countCoalesced(mv)
			s.addWorkList(u)
		case s.precolored(v) || s.interfere(u, v):
			mv.state = mvConstrained
			s.r.Constrained++
			s.addWorkList(u)
			s.addWorkList(v)
		case (s.precolored(u) && s.georgeOK(v, u)) ||
			(!s.precolored(u) && s.briggsOK(u, v)):
			mv.state = mvCoalesced
			s.countCoalesced(mv)
			s.combine(u, v)
			s.addWorkList(u)
		default:
			mv.state = mvActive
		}
		return true
	}
	return false
}

func (s *state) countCoalesced(mv *move) {
	if mv.machine {
		s.r.CoalescedMachine++
	} else {
		s.r.CoalescedIR++
	}
}

// freezeMoves abandons every live move of u: the partners lose their
// move-related status and may become simplifiable.
func (s *state) freezeMoves(u int32) {
	ua := s.getAlias(u)
	for _, mi := range s.moveList[u] {
		mv := &s.moves[mi]
		if mv.state != mvActive && mv.state != mvWorklist {
			continue
		}
		x, y := s.getAlias(mv.x), s.getAlias(mv.y)
		v := x
		if x == ua {
			v = y
		}
		mv.state = mvFrozen
		s.r.Frozen++
		if !s.precolored(v) && s.where[v] == wlFreeze && !s.moveRelated(v) && s.degree[v] < int32(s.k(v)) {
			s.where[v] = wlSimplify
			s.simplifyWL = append(s.simplifyWL, v)
		}
	}
}

// popFreeze gives up the moves of one low-degree move-related node.
func (s *state) popFreeze() bool {
	for len(s.freezeWL) > 0 {
		u := s.freezeWL[len(s.freezeWL)-1]
		s.freezeWL = s.freezeWL[:len(s.freezeWL)-1]
		if s.where[u] != wlFreeze {
			continue
		}
		s.where[u] = wlSimplify
		s.simplifyWL = append(s.simplifyWL, u)
		s.freezeMoves(u)
		return true
	}
	return false
}

// popSpill picks a spill candidate by the configured metric (spill
// temporaries carry infinite cost, so they are chosen last) and
// pushes it optimistically through simplify, exactly like the Briggs
// path: only select decides whether it actually spills.
func (s *state) popSpill() bool {
	best := int32(-1)
	bestVal := math.Inf(1)
	live := s.spillWL[:0]
	for _, v := range s.spillWL {
		if s.where[v] != wlSpill {
			continue
		}
		live = append(live, v)
		var val float64
		switch s.metric {
		case color.CostOnly:
			val = s.cost[v]
		case color.DegreeOnly:
			val = -float64(s.degree[v])
		default:
			val = s.cost[v] / float64(s.degree[v])
		}
		if best == -1 || val < bestVal {
			best = v
			bestVal = val
		}
	}
	s.spillWL = live
	if best == -1 {
		return false
	}
	s.tr.SpillDecision(best, s.degree[best], s.cost[best], bestVal)
	s.where[best] = wlSimplify
	s.simplifyWL = append(s.simplifyWL, best)
	s.freezeMoves(best)
	return true
}

// assignColors replays the stack with move-biased selection, then
// propagates colors (or spills) to coalesced members.
func (s *state) assignColors() *Result {
	r := s.r
	r.Colors = make([]int16, s.nn)
	for i := range r.Colors {
		r.Colors[i] = color.NoColor
	}
	for p := int32(s.n); int(p) < s.nn; p++ {
		r.Colors[p] = s.g.Pre[p]
	}
	used := make([]bool, 0, 32)
	for len(s.stack) > 0 {
		v := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		kn := s.k(v)
		if cap(used) < kn {
			used = make([]bool, kn)
		}
		used = used[:kn]
		for j := range used {
			used[j] = false
		}
		for _, w := range s.adj[v] {
			if c := r.Colors[s.getAlias(w)]; c != color.NoColor && int(c) < kn {
				used[c] = true
			}
		}
		chosen := color.NoColor
		for j := 0; j < kn; j++ {
			if !used[j] {
				chosen = int16(j)
				break
			}
		}
		if chosen == color.NoColor {
			r.Spilled = append(r.Spilled, v)
			continue
		}
		// Move bias: prefer the lowest legal color a move partner
		// already holds — frozen and constrained moves included, since
		// matching colors still turns the surviving copy into a
		// register self-move.
		bias := color.NoColor
		for _, mi := range s.moveList[v] {
			mv := &s.moves[mi]
			x, y := s.getAlias(mv.x), s.getAlias(mv.y)
			other := x
			if x == v {
				other = y
			}
			if other == v {
				continue
			}
			if c := r.Colors[other]; c != color.NoColor && int(c) < kn && !used[c] {
				if bias == color.NoColor || c < bias {
					bias = c
				}
			}
		}
		if bias != color.NoColor {
			chosen = bias
		}
		r.Colors[v] = chosen
	}
	// Coalesced members inherit their representative's fate.
	for v := int32(0); int(v) < s.n; v++ {
		if s.where[v] == wlCoalesced {
			r.Colors[v] = r.Colors[s.getAlias(v)]
		}
	}
	r.n = s.n
	r.alias = s.alias
	r.coalesced = make([]bool, s.n)
	for v := 0; v < s.n; v++ {
		r.coalesced[v] = s.where[v] == wlCoalesced
	}
	if s.tr.Enabled() {
		s.tr.Counter(obs.PhaseSimplify, "irc.moves_coalesced", int64(r.CoalescedIR))
		s.tr.Counter(obs.PhaseSimplify, "irc.bindings_coalesced", int64(r.CoalescedMachine))
		s.tr.Counter(obs.PhaseSimplify, "irc.moves_frozen", int64(r.Frozen))
		s.tr.Counter(obs.PhaseSimplify, "irc.moves_constrained", int64(r.Constrained))
	}
	return r
}

// resolve follows the alias chain of a virtual register to its
// representative node (a virtual register or a precolored node).
func (r *Result) resolve(v int32) int32 {
	for int(v) < r.n && r.coalesced[v] {
		v = r.alias[v]
	}
	return v
}

// ApplyRewrite renames every coalesced virtual register to its web's
// representative and deletes moves that became self-copies, returning
// the number of deleted instructions. A web merged into a precolored
// node keeps a virtual name (its lowest member — the IR has no
// physical registers), which is sound because all members share the
// precolored node's color and were proven non-interfering.
//
// Beyond the webs the worklist machine merged, the rewrite elides
// every surviving move whose two ends landed on the same color:
// equal colors in a valid coloring prove the ends never interfere,
// so the aggressive merge is sound here, and the copy — a register
// self-move in the final code — disappears with it. Move-biased
// select steers frozen and constrained-adjacent partners onto shared
// colors precisely to feed this step.
//
// Call it only after a successful round (empty Spilled): on a spill
// round the coalesces are discarded with the graph, exactly as the
// driver discards the pre-pass coalesce after a spill.
func (r *Result) ApplyRewrite(f *ir.Func) int {
	if r.n == 0 {
		return 0
	}
	base := make([]int32, r.n)
	for v := int32(0); int(v) < r.n; v++ {
		base[v] = r.resolve(v)
	}
	// Color elision: union webs joined by a same-colored move. A tree
	// holds at most one precolored node (two distinct precolored nodes
	// of one class never share a color), and it becomes the root so
	// canonical naming below sees it; between virtual roots the lower
	// id wins, keeping the rewrite deterministic.
	parent := make(map[int32]int32)
	find := func(a int32) int32 {
		for {
			p, ok := parent[a]
			if !ok {
				return a
			}
			a = p
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.IsMove() || in.Dst == ir.NoReg || in.A == ir.NoReg {
				continue
			}
			ra, rb := find(base[in.Dst]), find(base[in.A])
			if ra == rb || f.RegClass(in.Dst) != f.RegClass(in.A) {
				continue
			}
			if c := r.Colors[ra]; c == color.NoColor || c != r.Colors[rb] {
				continue
			}
			switch {
			case int(ra) >= r.n:
				parent[rb] = ra
			case int(rb) >= r.n:
				parent[ra] = rb
			case ra < rb:
				parent[rb] = ra
			default:
				parent[ra] = rb
			}
		}
	}
	rep := make([]ir.Reg, r.n)
	canon := make(map[int32]ir.Reg)
	for v := int32(0); int(v) < r.n; v++ {
		w := find(base[v])
		if int(w) < r.n {
			rep[v] = ir.Reg(w)
			continue
		}
		if c, ok := canon[w]; ok {
			rep[v] = c
		} else {
			canon[w] = ir.Reg(v) // ascending scan: first member is lowest
			rep[v] = ir.Reg(v)
		}
	}
	ren := func(a ir.Reg) ir.Reg {
		if a == ir.NoReg {
			return ir.NoReg
		}
		return rep[a]
	}
	deleted := 0
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			in.Dst = ren(in.Dst)
			in.A = ren(in.A)
			in.B = ren(in.B)
			in.C = ren(in.C)
			for j, a := range in.Args {
				in.Args[j] = ren(a)
			}
			if in.IsMove() && in.Dst == in.A {
				deleted++
				continue // coalesced copy disappears
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	for i, p := range f.Params {
		f.Params[i] = ren(p)
	}
	return deleted
}
