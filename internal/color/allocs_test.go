package color_test

import (
	"testing"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// allocGraph builds a moderately dense mixed-class graph with some
// spill pressure at the given k, so the pinned pass exercises every
// branch of the hot path: bucket scans, stuck spill choices, and the
// optimistic select with real uncolored nodes.
func allocGraph(n int) (*ig.Graph, []float64) {
	classes := make([]ir.Class, n)
	for i := range classes {
		if i%4 == 3 {
			classes[i] = ir.ClassFloat
		}
	}
	g := ig.New(classes)
	s := uint64(2026)
	for i := 0; i < 8*n; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		g.AddEdge(int32(s%uint64(n)), int32((s>>24)%uint64(n)))
	}
	cost := make([]float64, n)
	for i := range cost {
		cost[i] = float64(1 + i%17)
	}
	return g, cost
}

// TestColoringPassAllocs pins the zero-allocation property of the
// steady-state coloring pass: with a warm Scratch and a nil tracer,
// SimplifyInto + SelectInto on a fixed graph must not allocate at
// all. This is what keeps per-pass cost flat on million-node graphs —
// any regression here (a closure that escapes, a slice rebuilt per
// call) multiplies across the Figure 4 cycle and the portfolio racer.
func TestColoringPassAllocs(t *testing.T) {
	g, cost := allocGraph(600)
	// Finalize the CSR outside the measured region, as BuildWithLiveness
	// does for real graphs.
	_ = g.Neighbors(0)
	sc := new(color.Scratch)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		h := h
		// Warm the scratch so the grow-to-fit paths have run.
		sr := color.SimplifyInto(sc, g, cost, kAll(6), h, color.CostOverDegree, nil)
		color.SelectInto(sc, g, sr, kAll(6), h != color.Chaitin, nil)
		allocs := testing.AllocsPerRun(20, func() {
			sr := color.SimplifyInto(sc, g, cost, kAll(6), h, color.CostOverDegree, nil)
			color.SelectInto(sc, g, sr, kAll(6), h != color.Chaitin, nil)
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state coloring pass allocates %.1f objects/run, want 0", h, allocs)
		}
	}
}

// TestWorklistInitAllocs pins the companion property one layer down:
// re-Initing a warm Worklist on the same graph is allocation-free.
func TestWorklistInitAllocs(t *testing.T) {
	g, _ := allocGraph(400)
	_ = g.Neighbors(0)
	var w ig.Worklist
	w.Init(g, ir.ClassInt)
	allocs := testing.AllocsPerRun(20, func() {
		w.Init(g, ir.ClassInt)
		for {
			n := w.MinDegreeNode()
			if n < 0 {
				break
			}
			w.Remove(n)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Worklist.Init+drain allocates %.1f objects/run, want 0", allocs)
	}
}
