// Package machine describes a concrete register file to the
// allocator: how many registers each class has, which of them a call
// clobbers (caller-saved) and which the callee preserves, and which
// registers the calling convention binds to arguments and return
// values. It is the constraint layer that turns the idealized
// allocator — every color interchangeable, calls clobbering nothing —
// into one that must respect a real machine's conventions.
//
// The simulated machine (internal/target) gives every activation its
// own register file, so these constraints change no program's
// observable behavior; what they change is which assignments the
// allocator may produce. Precolored nodes stand for the physical
// registers themselves: they enter the interference graph with fixed
// colors (ig.BuildWithMachine appends them after the function's
// virtual registers), have effectively infinite degree during
// simplification, and are never spill candidates. Caller-saved
// registers additionally interfere with every range live across a
// call, which is what pushes call-crossing ranges into callee-saved
// colors.
package machine

import (
	"fmt"

	"regalloc/internal/ir"
	"regalloc/internal/target"
)

// Model is a register-file description. Register numbers within a
// class are the allocator's colors: color c of class cls is physical
// register c of that class's file. The caller-saved registers are the
// low-numbered prefix [0, CallerSaved) of each file — a structural
// choice, not just a convention, so "prefer callee-saved for
// call-crossing ranges" falls out of lowest-color-first selection
// plus the clobber interference edges.
type Model struct {
	// Name identifies the configuration ("rt/pc" and its resizings).
	Name string
	// NumRegs is the register-file size per class — the per-class K.
	NumRegs [ir.NumClasses]int
	// CallerSaved is, per class, the count of caller-saved registers:
	// registers [0, CallerSaved) are clobbered by a call, registers
	// [CallerSaved, NumRegs) are preserved by the callee.
	CallerSaved [ir.NumClasses]int
	// ArgRegs lists, per class, the registers that carry incoming
	// arguments of that class, in argument order. Arguments beyond
	// len(ArgRegs) are unbound (stack-passed in a real convention).
	ArgRegs [ir.NumClasses][]int16
	// RetReg is, per class, the register carrying a return value of
	// that class, or -1 when the class has none.
	RetReg [ir.NumClasses]int16
}

// maxArgRegs caps how many registers a convention binds to arguments;
// four matches the RT/PC-era conventions the paper's compiler used.
const maxArgRegs = 4

// ForTarget derives the calling convention for a target machine: the
// low half of each file is caller-saved, the first min(4, half)
// registers carry arguments, and register 0 carries the return value.
// Resized machines (the Figure 6 register study shrinks the GPR file)
// keep the same shape at their new size.
func ForTarget(t target.Machine) *Model {
	m := &Model{Name: t.Name}
	for _, c := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		k := t.K(c)
		m.NumRegs[c] = k
		m.CallerSaved[c] = k / 2
		nArgs := m.CallerSaved[c]
		if nArgs > maxArgRegs {
			nArgs = maxArgRegs
		}
		for r := int16(0); int(r) < nArgs; r++ {
			m.ArgRegs[c] = append(m.ArgRegs[c], r)
		}
		if k > 0 {
			m.RetReg[c] = 0
		} else {
			m.RetReg[c] = -1
		}
	}
	return m
}

// RTPC returns the paper's machine with its derived convention:
// 16 GPRs (r0–r7 caller-saved, r0–r3 arguments, r0 return) and
// 8 FPRs (f0–f3 caller-saved, f0–f3 arguments, f0 return).
func RTPC() *Model { return ForTarget(target.RTPC()) }

// ForK derives the convention for an anonymous machine with the given
// per-class register counts — the constructor for callers that carry
// only Options.KInt/KFloat.
func ForK(kInt, kFloat int) *Model {
	m := ForTarget(target.Machine{Name: fmt.Sprintf("k%d/%d", kInt, kFloat), NumGPR: kInt, NumFPR: kFloat})
	return m
}

// K returns the register count of class c.
func (m *Model) K(c ir.Class) int { return m.NumRegs[c] }

// IsCallerSaved reports whether register r of class c is clobbered by
// a call.
func (m *Model) IsCallerSaved(c ir.Class, r int16) bool {
	return int(r) < m.CallerSaved[c]
}

// NumPrecolored is the total number of precolored nodes the model
// contributes to an interference graph: one per physical register of
// every class.
func (m *Model) NumPrecolored() int {
	n := 0
	for c := 0; c < ir.NumClasses; c++ {
		n += m.NumRegs[c]
	}
	return n
}

// PreOffset is the offset of class c's first precolored node among
// the model's precolored block: class files are laid out in class
// order, so node base+PreOffset(c)+r is register r of class c.
func (m *Model) PreOffset(c ir.Class) int32 {
	off := int32(0)
	for cc := ir.Class(0); cc < c; cc++ {
		off += int32(m.NumRegs[cc])
	}
	return off
}

// PreClass returns the class and register number of the i'th
// precolored node (0 <= i < NumPrecolored).
func (m *Model) PreClass(i int32) (ir.Class, int16) {
	for c := 0; c < ir.NumClasses; c++ {
		if int(i) < m.NumRegs[c] {
			return ir.Class(c), int16(i)
		}
		i -= int32(m.NumRegs[c])
	}
	panic("machine: precolored index out of range")
}

// ArgReg returns the register bound to argument position pos of class
// c, or -1 when the position is unbound.
func (m *Model) ArgReg(c ir.Class, pos int) int16 {
	if pos < 0 || pos >= len(m.ArgRegs[c]) {
		return -1
	}
	return m.ArgRegs[c][pos]
}

// Validate checks the model for internal consistency: positive file
// sizes, the caller-saved split within bounds, and every convention
// register inside its file. Allocator options validation calls it, so
// a hand-built model fails loudly before any graph is built.
func (m *Model) Validate() error {
	for c := 0; c < ir.NumClasses; c++ {
		cls := ir.Class(c)
		if m.NumRegs[c] < 1 {
			return fmt.Errorf("machine %s: class %s has %d registers", m.Name, cls, m.NumRegs[c])
		}
		if m.CallerSaved[c] < 0 || m.CallerSaved[c] > m.NumRegs[c] {
			return fmt.Errorf("machine %s: class %s caller-saved split %d outside [0,%d]",
				m.Name, cls, m.CallerSaved[c], m.NumRegs[c])
		}
		for pos, r := range m.ArgRegs[c] {
			if r < 0 || int(r) >= m.NumRegs[c] {
				return fmt.Errorf("machine %s: class %s argument %d bound to register %d, outside file of %d",
					m.Name, cls, pos, r, m.NumRegs[c])
			}
		}
		if r := m.RetReg[c]; r != -1 && (r < 0 || int(r) >= m.NumRegs[c]) {
			return fmt.Errorf("machine %s: class %s return register %d outside file of %d",
				m.Name, cls, r, m.NumRegs[c])
		}
	}
	return nil
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("machine{%s: %d+%d regs, %d+%d caller-saved, %d+%d arg regs}",
		m.Name, m.NumRegs[ir.ClassInt], m.NumRegs[ir.ClassFloat],
		m.CallerSaved[ir.ClassInt], m.CallerSaved[ir.ClassFloat],
		len(m.ArgRegs[ir.ClassInt]), len(m.ArgRegs[ir.ClassFloat]))
}
