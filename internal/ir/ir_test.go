package ir_test

import (
	"strings"
	"testing"

	"regalloc/internal/ir"
)

func validFunc() *ir.Func {
	f := &ir.Func{Name: "F"}
	a := f.NewReg(ir.ClassInt)
	x := f.NewReg(ir.ClassFloat)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpItoF, Dst: x, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	return f
}

func TestValidateAccepts(t *testing.T) {
	if err := ir.Validate(validFunc()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	// Terminator in the middle.
	f := validFunc()
	f.Blocks[0].Instrs[1] = ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
	if err := ir.Validate(f); err == nil {
		t.Fatal("mid-block terminator accepted")
	}

	// Class mismatch: float op on int register.
	f = validFunc()
	f.Blocks[0].Instrs[1] = ir.Instr{Op: ir.OpFAdd, Dst: 1, A: 0, B: 0, C: ir.NoReg}
	if err := ir.Validate(f); err == nil {
		t.Fatal("class mismatch accepted")
	}

	// Successor count mismatch.
	f = validFunc()
	f.Blocks[0].Succs = []int{1, 1}
	if err := ir.Validate(f); err == nil {
		t.Fatal("bad successor count accepted")
	}

	// Out-of-range register.
	f = validFunc()
	f.Blocks[1].Instrs[0].A = 99
	if err := ir.Validate(f); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := validFunc()
	f.Params = []ir.Reg{0}
	g := f.Clone()
	g.Blocks[0].Instrs[0].Imm = 99
	g.Params[0] = 1
	g.NewReg(ir.ClassInt)
	if f.Blocks[0].Instrs[0].Imm == 99 || f.Params[0] == 1 || f.NumRegs() == g.NumRegs() {
		t.Fatal("Clone shares state with the original")
	}
}

func TestAppendUsesAndDef(t *testing.T) {
	in := ir.Instr{Op: ir.OpAdd, Dst: 2, A: 0, B: 1, C: ir.NoReg}
	uses := in.AppendUses(nil)
	if len(uses) != 2 || uses[0] != 0 || uses[1] != 1 {
		t.Fatalf("uses: %v", uses)
	}
	if in.Def() != 2 {
		t.Fatal("def wrong")
	}
	call := ir.Instr{Op: ir.OpCall, Dst: 3, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Args: []ir.Reg{0, 1, 2}}
	if got := call.AppendUses(nil); len(got) != 3 {
		t.Fatalf("call uses: %v", got)
	}
}

func TestCmpNegate(t *testing.T) {
	pairs := map[ir.Cmp]ir.Cmp{
		ir.CmpEQ: ir.CmpNE, ir.CmpLT: ir.CmpGE, ir.CmpLE: ir.CmpGT,
	}
	for c, n := range pairs {
		if c.Negate() != n || n.Negate() != c {
			t.Fatalf("negate %v", c)
		}
	}
}

func TestSlotAddressing(t *testing.T) {
	f := &ir.Func{Name: "S", StaticBase: 1000, StaticSize: 50}
	s0 := f.NewSlot()
	s1 := f.NewSlot()
	if s0 != 0 || s1 != 1 || f.NumSlots != 2 {
		t.Fatal("slot numbering wrong")
	}
	if f.SlotAddr(s1) != 1051 {
		t.Fatalf("slot addr = %d", f.SlotAddr(s1))
	}
}

func TestPrinter(t *testing.T) {
	f := validFunc()
	var sb strings.Builder
	ir.Fprint(&sb, f)
	out := sb.String()
	for _, want := range []string{"func F", "b0:", "itof", "ret"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestProgramRegistry(t *testing.T) {
	p := ir.NewProgram(4096)
	if p.Func("F") != nil {
		t.Fatal("lookup on empty program")
	}
	f := validFunc()
	p.Add(f)
	if p.Func("F") != f {
		t.Fatal("lookup failed")
	}
	if p.StaticStart != 4096 {
		t.Fatal("static start lost")
	}
}

func TestSpillTempFlag(t *testing.T) {
	f := &ir.Func{Name: "T"}
	r := f.NewSpillTemp(ir.ClassFloat)
	if f.RegFlags(r)&ir.FlagSpillTemp == 0 {
		t.Fatal("flag not set")
	}
	if f.RegClass(r) != ir.ClassFloat {
		t.Fatal("class wrong")
	}
}

// TestSprintInstrAllForms exercises every printer branch.
func TestSprintInstrAllForms(t *testing.T) {
	f := &ir.Func{Name: "P"}
	i0 := f.NewReg(ir.ClassInt)
	i1 := f.NewReg(ir.ClassInt)
	f0 := f.NewReg(ir.ClassFloat)
	b := f.NewBlock()
	b.Succs = []int{0, 0}
	cases := []struct {
		in   ir.Instr
		want string
	}{
		{ir.Instr{Op: ir.OpParam, Dst: i0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2}, "v0 = param #2"},
		{ir.Instr{Op: ir.OpConst, Dst: i0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 7}, "v0 = const 7"},
		{ir.Instr{Op: ir.OpConst, Dst: f0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, FImm: 2.5}, "v2 = const 2.5"},
		{ir.Instr{Op: ir.OpAddI, Dst: i0, A: i1, B: ir.NoReg, C: ir.NoReg, Imm: -3}, "v0 = addi v1, -3"},
		{ir.Instr{Op: ir.OpLoad, Dst: i0, A: ir.NoReg, B: i1, C: ir.NoReg, Imm: 4}, "v0 = load [v1+_+4]"},
		{ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, A: i0, B: i1, C: ir.NoReg, Imm: 4}, "store [v1+_+4] = v0"},
		{ir.Instr{Op: ir.OpSpillLoad, Dst: i0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 3}, "v0 = spld slot3"},
		{ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: i0, B: ir.NoReg, C: ir.NoReg, Imm: 3}, "spst slot3 = v0"},
		{ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}, "br b0"},
		{ir.Instr{Op: ir.OpBrIf, Dst: ir.NoReg, A: i0, B: i1, C: ir.NoReg, Cmp: ir.CmpLE}, "brif.int v0 le v1 -> b0 b0"},
		{ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: i0, B: ir.NoReg, C: ir.NoReg}, "ret v0"},
		{ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}, "ret"},
		{ir.Instr{Op: ir.OpCall, Dst: i0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: "G", Args: []ir.Reg{i1, f0}}, "v0 = call G(v1, v2)"},
		{ir.Instr{Op: ir.OpCall, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: "G"}, "call G()"},
		{ir.Instr{Op: ir.OpFAdd, Dst: f0, A: f0, B: f0, C: ir.NoReg}, "v2 = fadd v2 v2"},
	}
	for _, c := range cases {
		if got := ir.SprintInstr(f, &c.in, b); got != c.want {
			t.Errorf("SprintInstr = %q, want %q", got, c.want)
		}
	}
}

// TestOpAndCmpStrings covers the name tables.
func TestOpAndCmpStrings(t *testing.T) {
	if ir.OpFSqrt.String() != "fsqrt" || ir.OpAddI.String() != "addi" {
		t.Fatal("op names")
	}
	if ir.Op(250).String() == "" {
		t.Fatal("unknown op should still print")
	}
	for c := ir.CmpEQ; c <= ir.CmpGE; c++ {
		if c.String() == "" {
			t.Fatal("cmp name missing")
		}
	}
	if ir.ClassInt.String() != "int" || ir.ClassFloat.String() != "flt" {
		t.Fatal("class names")
	}
	if !ir.OpBr.IsTerminator() || ir.OpAdd.IsTerminator() {
		t.Fatal("IsTerminator")
	}
}
