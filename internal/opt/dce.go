package opt

import "regalloc/internal/ir"

// DeadCodeElim removes pure instructions whose results are never
// used, iterating until nothing more dies (removing one dead
// instruction can kill its operands' only uses). CSE and LICM leave
// such instructions behind — a replaced computation whose copy was
// itself redundant, a hoisted operand chain whose consumer later
// folded — and the paper-era optimizers all swept them up before
// allocation. Loads are also removable when dead: reading memory has
// no side effect in this machine model (bounds faults aside, and a
// dead load's address was computed for the live original).
// Returns the number of instructions removed.
func DeadCodeElim(f *ir.Func) int {
	removed := 0
	for {
		used := make([]bool, f.NumRegs())
		var ubuf []ir.Reg
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ubuf = b.Instrs[i].AppendUses(ubuf[:0])
				for _, u := range ubuf {
					used[u] = true
				}
			}
		}
		// Parameters are externally visible definitions; their
		// OpParam instructions stay regardless.
		died := 0
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				d := in.Def()
				removable := d != ir.NoReg && !used[d] &&
					(pure(in.Op) || in.Op == ir.OpLoad || in.Op == ir.OpMove || in.Op == ir.OpSpillLoad ||
						in.Op == ir.OpFtoI || in.Op == ir.OpItoF ||
						in.Op == ir.OpFSqrt || in.Op == ir.OpFExp || in.Op == ir.OpFLog ||
						in.Op == ir.OpFSin || in.Op == ir.OpFCos || in.Op == ir.OpFDiv ||
						in.Op == ir.OpFMod || in.Op == ir.OpFPow)
				if removable {
					died++
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if died == 0 {
			return removed
		}
		removed += died
	}
}
