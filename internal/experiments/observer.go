package experiments

import (
	"regalloc"
	"regalloc/internal/obs"
)

// observer is the sink every experiment's allocator runs feed; nil
// (the default) keeps them unobserved. cmd/bench sets it from the
// -trace and -metrics flags before regenerating a figure.
var observer obs.Sink

// SetObserver routes all subsequent experiment allocations to sink
// (nil disconnects). Not safe to call while experiments are running.
func SetObserver(sink obs.Sink) { observer = sink }

// defaultOptions is regalloc.DefaultOptions with the package
// observer attached; every experiment builds its Options through it.
func defaultOptions() regalloc.Options {
	o := regalloc.DefaultOptions()
	o.Observer = observer
	return o
}
