package workloads

// integerSource is the "more diverse set of non-floating point
// programs" the paper's §3.2 closes by asking for: four classic
// integer kernels with very different pressure profiles. SIEVE is
// array-bound with tiny scalar pressure; HASH keeps a handful of
// values hot across probe loops; CRCS is a bit-twiddling loop whose
// dialect has no shift operators (divide/modulo by two stand in, as
// on machines without a barrel shifter); GCDS runs Euclid's
// algorithm over array pairs.
const integerSource = `
      SUBROUTINE SIEVE(FLAGS,N,COUNT)
C     sieve of eratosthenes; flags(i) = 1 marks i as composite
      INTEGER FLAGS(*),COUNT(*)
      INTEGER I,J,N,NP
      DO I = 1,N
         FLAGS(I) = 0
      ENDDO
      NP = 0
      DO I = 2,N
         IF (FLAGS(I) .EQ. 0) THEN
            NP = NP + 1
            J = I + I
            DO WHILE (J .LE. N)
               FLAGS(J) = 1
               J = J + I
            ENDDO
         ENDIF
      ENDDO
      COUNT(1) = NP
      RETURN
      END

      SUBROUTINE HASH(KEYS,N,TABLE,M,HITS)
C     multiplicative hashing with linear probing: insert every key,
C     then probe for every key and count hits
      INTEGER KEYS(*),TABLE(*),HITS(*)
      INTEGER I,N,M,K,H,PROBES,FOUND,NHIT
      DO I = 1,M
         TABLE(I) = -1
      ENDDO
C     insert phase
      DO I = 1,N
         K = KEYS(I)
         H = MOD(K*2654435 + 12345, M) + 1
         IF (H .LT. 1) H = H + M
         PROBES = 0
         DO WHILE (TABLE(H) .GE. 0 .AND. PROBES .LT. M)
            IF (TABLE(H) .EQ. K) EXIT
            H = H + 1
            IF (H .GT. M) H = 1
            PROBES = PROBES + 1
         ENDDO
         TABLE(H) = K
      ENDDO
C     probe phase
      NHIT = 0
      DO I = 1,N
         K = KEYS(I)
         H = MOD(K*2654435 + 12345, M) + 1
         IF (H .LT. 1) H = H + M
         PROBES = 0
         FOUND = 0
         DO WHILE (PROBES .LT. M)
            IF (TABLE(H) .EQ. K) THEN
               FOUND = 1
               EXIT
            ENDIF
            IF (TABLE(H) .LT. 0) EXIT
            H = H + 1
            IF (H .GT. M) H = 1
            PROBES = PROBES + 1
         ENDDO
         NHIT = NHIT + FOUND
      ENDDO
      HITS(1) = NHIT
      RETURN
      END

      SUBROUTINE CRCS(DATA,N,CRC)
C     bitwise crc-16-ish checksum; the dialect has no shifts, so
C     halving and doubling with a parity test stand in
      INTEGER DATA(*),CRC(*)
      INTEGER I,J,N,R,W,BIT,FB
      R = 65535
      DO I = 1,N
         W = DATA(I)
         DO J = 1,16
            BIT = MOD(W,2)
            W = W/2
            FB = MOD(R,2)
            R = R/2
            IF (FB .NE. BIT) THEN
               R = R + 40961
               IF (R .GT. 65535) R = R - 65536
            ENDIF
         ENDDO
      ENDDO
      CRC(1) = R
      RETURN
      END

      SUBROUTINE GCDS(A,B,G,N)
C     greatest common divisors of array pairs by euclid's algorithm
      INTEGER A(*),B(*),G(*)
      INTEGER I,N,X,Y,T
      DO I = 1,N
         X = IABS(A(I))
         Y = IABS(B(I))
         DO WHILE (Y .NE. 0)
            T = MOD(X,Y)
            X = Y
            Y = T
         ENDDO
         G(I) = X
      ENDDO
      RETURN
      END
`

// IntegerKernels returns the extension workload answering the
// paper's §3.2 closing request for more non-floating-point data.
func IntegerKernels() Workload {
	return Workload{
		Program:  "INTKERN",
		Source:   integerSource,
		Routines: []string{"SIEVE", "HASH", "CRCS", "GCDS"},
	}
}
