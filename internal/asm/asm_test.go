package asm_test

import (
	"strings"
	"testing"

	"regalloc/internal/alloc"
	"regalloc/internal/asm"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
	"regalloc/internal/target"
	"regalloc/internal/vm"
)

func compileAndAllocate(t *testing.T, src, name string) (*ir.Func, []int16) {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(prog.Func(name), alloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Func, res.Colors
}

const loopSrc = `
      INTEGER FUNCTION SUMSQ(N)
      INTEGER I,S,N
      S = 0
      DO I = 1,N
         IF (MOD(I,2) .EQ. 0) THEN
            S = S + I*I
         ELSE
            S = S - I
         ENDIF
      ENDDO
      SUMSQ = S
      END
`

func TestLowerAndRun(t *testing.T) {
	f, colors := compileAndAllocate(t, loopSrc, "SUMSQ")
	af, err := asm.Lower(f, colors, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	if af.ObjectSize() != len(af.Code)*target.BytesPerInstr {
		t.Fatal("object size accounting wrong")
	}
	p := asm.NewProgram()
	p.Add(af)
	m := vm.New(p, 1<<22)
	v, err := m.Call("SUMSQ", vm.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		if i%2 == 0 {
			want += i * i
		} else {
			want -= i
		}
	}
	if v.I != want {
		t.Fatalf("got %d, want %d", v.I, want)
	}
}

// TestBranchTargetsResolved: every branch in lowered code points at
// a valid instruction index.
func TestBranchTargetsResolved(t *testing.T) {
	f, colors := compileAndAllocate(t, loopSrc, "SUMSQ")
	af, err := asm.Lower(f, colors, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	for i := range af.Code {
		in := &af.Code[i]
		if in.Op == ir.OpBr || in.Op == ir.OpBrIf {
			if in.T0 < 0 || int(in.T0) >= len(af.Code) {
				t.Fatalf("instr %d: branch target %d out of range", i, in.T0)
			}
		}
	}
}

// TestFallthroughElision: an unconditional branch to the next block
// is removed, so lowered code has fewer branch instructions than the
// IR has.
func TestFallthroughElision(t *testing.T) {
	f, colors := compileAndAllocate(t, loopSrc, "SUMSQ")
	irBrs := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBr {
				irBrs++
			}
		}
	}
	af, err := asm.Lower(f, colors, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	asmBrs := 0
	for i := range af.Code {
		if af.Code[i].Op == ir.OpBr {
			asmBrs++
		}
	}
	// BrIf false edges that are not lexically next add explicit
	// jumps, so the total can go either way; the invariant is that
	// no unconditional branch targets the very next instruction.
	_ = irBrs
	_ = asmBrs
	for i := range af.Code {
		if af.Code[i].Op == ir.OpBr && int(af.Code[i].T0) == i+1 {
			t.Fatalf("instr %d: unelided branch to next instruction", i)
		}
	}
}

// TestSpillOpsBecomeAbsolute: spill loads/stores lower to plain
// memory operations at the function's slot addresses.
func TestSpillOpsBecomeAbsolute(t *testing.T) {
	f := &ir.Func{Name: "S", StaticBase: 5000, StaticSize: 10}
	x := f.NewSpillTemp(ir.ClassInt)
	b := f.NewBlock()
	slot := f.NewSlot()
	b.Instrs = []ir.Instr{
		{Op: ir.OpSpillLoad, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot},
		{Op: ir.OpSpillStore, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg, Imm: slot},
		{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	af, err := asm.Lower(f, []int16{0}, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	if af.Code[0].Op != ir.OpLoad || af.Code[0].Imm != 5010 {
		t.Fatalf("spill load lowered to %v @%d", af.Code[0].Op, af.Code[0].Imm)
	}
	if af.Code[1].Op != ir.OpStore || af.Code[1].Imm != 5010 {
		t.Fatalf("spill store lowered to %v @%d", af.Code[1].Op, af.Code[1].Imm)
	}
}

func TestUncoloredRegisterRejected(t *testing.T) {
	f := &ir.Func{Name: "U"}
	x := f.NewReg(ir.ClassInt)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	if _, err := asm.Lower(f, []int16{-1}, target.RTPC()); err == nil {
		t.Fatal("expected error for uncolored register")
	}
}

func TestDisassemblyListing(t *testing.T) {
	f, colors := compileAndAllocate(t, loopSrc, "SUMSQ")
	af, err := asm.Lower(f, colors, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	asm.Fprint(&sb, af)
	out := sb.String()
	if !strings.Contains(out, "SUMSQ") || !strings.Contains(out, "brif") {
		t.Fatalf("listing looks wrong:\n%s", out)
	}
	// Physical register names appear (r0...), not virtual (v0...).
	if strings.Contains(out, " v0") {
		t.Fatal("listing contains virtual register names")
	}
}

func TestProgramLookup(t *testing.T) {
	p := asm.NewProgram()
	if p.Func("X") != nil {
		t.Fatal("empty program resolved a function")
	}
	p.Add(&asm.Func{Name: "X"})
	if p.Func("X") == nil {
		t.Fatal("lookup failed")
	}
}

// TestIdentityMovePeephole: a move whose operands landed in the same
// physical register disappears during lowering.
func TestIdentityMovePeephole(t *testing.T) {
	f := &ir.Func{Name: "P"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMove, Dst: b, A: a, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: b, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	// Force both into r0 (legal: they do not interfere).
	af, err := asm.Lower(f, []int16{0, 0}, target.RTPC())
	if err != nil {
		t.Fatal(err)
	}
	for i := range af.Code {
		if af.Code[i].Op == ir.OpMove {
			t.Fatal("identity move survived lowering")
		}
	}
}
