package ig_test

import (
	"testing"

	"regalloc/internal/dataflow"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
)

// callCrossFunc builds
//
//	a = const 1
//	b = const 2
//	call F()
//	c = add a, b
//	ret c
//
// so a and b are live across the call while c is born after it.
func callCrossFunc() (*ir.Func, [3]ir.Reg) {
	f := &ir.Func{Name: "CC"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpConst, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpCall, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: "F"},
		{Op: ir.OpAdd, Dst: c, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f, [3]ir.Reg{a, b, c}
}

func TestBuildWithMachineClobberEdges(t *testing.T) {
	f, regs := callCrossFunc()
	m := machine.RTPC()
	mg := ig.BuildWithMachine(f, dataflow.ComputeLiveness(f), m, nil)

	if mg.NumVRegs != 3 {
		t.Fatalf("NumVRegs = %d, want 3", mg.NumVRegs)
	}
	if got, want := mg.NumNodes(), 3+m.NumPrecolored(); got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	a, b, c := regs[0], regs[1], regs[2]
	// a and b cross the call: they interfere with every caller-saved
	// GPR and with no callee-saved one.
	for _, v := range []ir.Reg{a, b} {
		for r := int16(0); int(r) < m.NumRegs[ir.ClassInt]; r++ {
			want := m.IsCallerSaved(ir.ClassInt, r)
			if got := mg.Interfere(int32(v), mg.PreNode(ir.ClassInt, r)); got != want {
				t.Fatalf("v%d vs r%d: interfere = %v, want %v", v, r, got, want)
			}
		}
	}
	// c is born after the call: no clobber edges at all.
	for r := int16(0); int(r) < m.NumRegs[ir.ClassInt]; r++ {
		if mg.Interfere(int32(c), mg.PreNode(ir.ClassInt, r)) {
			t.Fatalf("v%d does not cross the call but interferes with r%d", c, r)
		}
	}
	// The vreg-vreg edges match the plain build.
	if !mg.Interfere(int32(a), int32(b)) {
		t.Fatal("a and b are simultaneously live; must interfere")
	}
	if mg.Interfere(int32(b), int32(c)) {
		t.Fatal("b dies feeding the add; must not interfere with c")
	}
}

func TestBuildWithMachinePrecoloredClique(t *testing.T) {
	f, _ := callCrossFunc()
	m := machine.RTPC()
	mg := ig.BuildWithMachine(f, dataflow.ComputeLiveness(f), m, nil)
	for _, cls := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		for x := int16(0); int(x) < m.NumRegs[cls]; x++ {
			for y := x + 1; int(y) < m.NumRegs[cls]; y++ {
				if !mg.Interfere(mg.PreNode(cls, x), mg.PreNode(cls, y)) {
					t.Fatalf("%s physical registers %d and %d do not interfere", cls, x, y)
				}
			}
		}
	}
	// Fixed colors line up with register numbers; vregs carry none.
	for r := int16(0); int(r) < m.NumRegs[ir.ClassInt]; r++ {
		n := mg.PreNode(ir.ClassInt, r)
		if mg.Pre[n] != r || !mg.Precolored(n) {
			t.Fatalf("precolored node %d: Pre=%d Precolored=%v", n, mg.Pre[n], mg.Precolored(n))
		}
	}
	for v := 0; v < mg.NumVRegs; v++ {
		if mg.Pre[v] != ig.NoPreColor || mg.Precolored(int32(v)) {
			t.Fatalf("vreg %d looks precolored", v)
		}
	}
}

func TestWrapPlain(t *testing.T) {
	g := ig.New([]ir.Class{ir.ClassInt, ir.ClassInt})
	g.AddEdge(0, 1)
	mg := ig.WrapPlain(g)
	if mg.NumVRegs != 2 || mg.Precolored(1) || mg.Pre[0] != ig.NoPreColor {
		t.Fatalf("WrapPlain misshaped: %+v", mg)
	}
}
