// Package irinterp is a reference interpreter for the IR. It
// executes functions directly over virtual registers, before any
// register allocation, and therefore defines the ground-truth
// semantics that allocated machine code (packages asm + vm) must
// preserve. The end-to-end tests compare the two on every workload
// and register count.
package irinterp

import (
	"fmt"
	"math"

	"regalloc/internal/ir"
)

// Value mirrors vm.Value without importing it, keeping the reference
// interpreter independent of the backend.
type Value struct {
	Cls ir.Class
	I   int64
	F   float64
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Cls: ir.ClassInt, I: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{Cls: ir.ClassFloat, F: v} }

// Interp executes IR programs over a shared memory image.
type Interp struct {
	prog *ir.Program
	Mem  []uint64
	// Steps counts executed instructions across calls.
	Steps uint64
	// MaxSteps aborts runaway programs (default 2e9).
	MaxSteps uint64
	MaxDepth int

	depth int
}

// New returns an interpreter for prog with the given memory size.
func New(prog *ir.Program, memWords int) *Interp {
	return &Interp{prog: prog, Mem: make([]uint64, memWords), MaxSteps: 2e9, MaxDepth: 64}
}

// LoadFloat reads the float at word address a.
func (it *Interp) LoadFloat(a int64) float64 { return math.Float64frombits(it.Mem[a]) }

// StoreFloat writes the float v at word address a.
func (it *Interp) StoreFloat(a int64, v float64) { it.Mem[a] = math.Float64bits(v) }

// LoadInt reads the integer at word address a.
func (it *Interp) LoadInt(a int64) int64 { return int64(it.Mem[a]) }

// StoreInt writes the integer v at word address a.
func (it *Interp) StoreInt(a int64, v int64) { it.Mem[a] = uint64(v) }

// Call runs the named function.
func (it *Interp) Call(name string, args ...Value) (Value, error) {
	f := it.prog.Func(name)
	if f == nil {
		return Value{}, fmt.Errorf("irinterp: no function %s", name)
	}
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("irinterp: %s expects %d args, got %d", name, len(f.Params), len(args))
	}
	it.depth++
	defer func() { it.depth-- }()
	if it.depth > it.MaxDepth {
		return Value{}, fmt.Errorf("irinterp: call depth exceeded at %s", name)
	}
	return it.run(f, args)
}

func (it *Interp) run(f *ir.Func, args []Value) (Value, error) {
	iv := make([]int64, f.NumRegs())
	fv := make([]float64, f.NumRegs())
	b := f.Entry()
	pc := 0

	addr := func(in *ir.Instr) (int64, error) {
		a := in.Imm
		if in.B != ir.NoReg {
			a += iv[in.B]
		}
		if in.C != ir.NoReg {
			a += iv[in.C]
		}
		if a < 0 || a >= int64(len(it.Mem)) {
			return 0, fmt.Errorf("irinterp: %s b%d/%d: address %d out of range", f.Name, b.ID, pc, a)
		}
		return a, nil
	}
	branch := func(succ int) {
		b = f.Blocks[b.Succs[succ]]
		pc = 0
	}

	for {
		if pc >= len(b.Instrs) {
			return Value{}, fmt.Errorf("irinterp: %s: fell off block b%d", f.Name, b.ID)
		}
		in := &b.Instrs[pc]
		it.Steps++
		if it.Steps > it.MaxSteps {
			return Value{}, fmt.Errorf("irinterp: step limit exceeded in %s", f.Name)
		}
		switch in.Op {
		case ir.OpNop:
		case ir.OpParam:
			v := args[in.Imm]
			if f.RegClass(in.Dst) == ir.ClassFloat {
				fv[in.Dst] = v.F
			} else {
				iv[in.Dst] = v.I
			}
		case ir.OpConst:
			if f.RegClass(in.Dst) == ir.ClassFloat {
				fv[in.Dst] = in.FImm
			} else {
				iv[in.Dst] = in.Imm
			}
		case ir.OpMove:
			if f.RegClass(in.Dst) == ir.ClassFloat {
				fv[in.Dst] = fv[in.A]
			} else {
				iv[in.Dst] = iv[in.A]
			}
		case ir.OpItoF:
			fv[in.Dst] = float64(iv[in.A])
		case ir.OpFtoI:
			iv[in.Dst] = int64(fv[in.A])
		case ir.OpAdd:
			iv[in.Dst] = iv[in.A] + iv[in.B]
		case ir.OpSub:
			iv[in.Dst] = iv[in.A] - iv[in.B]
		case ir.OpMul:
			iv[in.Dst] = iv[in.A] * iv[in.B]
		case ir.OpDiv:
			if iv[in.B] == 0 {
				return Value{}, fmt.Errorf("irinterp: %s: division by zero", f.Name)
			}
			iv[in.Dst] = iv[in.A] / iv[in.B]
		case ir.OpMod:
			if iv[in.B] == 0 {
				return Value{}, fmt.Errorf("irinterp: %s: MOD by zero", f.Name)
			}
			iv[in.Dst] = iv[in.A] % iv[in.B]
		case ir.OpNeg:
			iv[in.Dst] = -iv[in.A]
		case ir.OpIMin:
			if iv[in.A] < iv[in.B] {
				iv[in.Dst] = iv[in.A]
			} else {
				iv[in.Dst] = iv[in.B]
			}
		case ir.OpIMax:
			if iv[in.A] > iv[in.B] {
				iv[in.Dst] = iv[in.A]
			} else {
				iv[in.Dst] = iv[in.B]
			}
		case ir.OpIAbs:
			if iv[in.A] < 0 {
				iv[in.Dst] = -iv[in.A]
			} else {
				iv[in.Dst] = iv[in.A]
			}
		case ir.OpISign:
			a := iv[in.A]
			if a < 0 {
				a = -a
			}
			if iv[in.B] < 0 {
				a = -a
			}
			iv[in.Dst] = a
		case ir.OpIPow:
			iv[in.Dst] = ipow(iv[in.A], iv[in.B])
		case ir.OpAddI:
			iv[in.Dst] = iv[in.A] + in.Imm
		case ir.OpMulI:
			iv[in.Dst] = iv[in.A] * in.Imm
		case ir.OpFAdd:
			fv[in.Dst] = fv[in.A] + fv[in.B]
		case ir.OpFSub:
			fv[in.Dst] = fv[in.A] - fv[in.B]
		case ir.OpFMul:
			fv[in.Dst] = fv[in.A] * fv[in.B]
		case ir.OpFDiv:
			fv[in.Dst] = fv[in.A] / fv[in.B]
		case ir.OpFNeg:
			fv[in.Dst] = -fv[in.A]
		case ir.OpFMin:
			fv[in.Dst] = math.Min(fv[in.A], fv[in.B])
		case ir.OpFMax:
			fv[in.Dst] = math.Max(fv[in.A], fv[in.B])
		case ir.OpFAbs:
			fv[in.Dst] = math.Abs(fv[in.A])
		case ir.OpFSqrt:
			fv[in.Dst] = math.Sqrt(fv[in.A])
		case ir.OpFExp:
			fv[in.Dst] = math.Exp(fv[in.A])
		case ir.OpFLog:
			fv[in.Dst] = math.Log(fv[in.A])
		case ir.OpFSin:
			fv[in.Dst] = math.Sin(fv[in.A])
		case ir.OpFCos:
			fv[in.Dst] = math.Cos(fv[in.A])
		case ir.OpFSign:
			a := math.Abs(fv[in.A])
			if math.Signbit(fv[in.B]) {
				a = -a
			}
			fv[in.Dst] = a
		case ir.OpFMod:
			fv[in.Dst] = math.Mod(fv[in.A], fv[in.B])
		case ir.OpFPow:
			fv[in.Dst] = math.Pow(fv[in.A], fv[in.B])
		case ir.OpLoad:
			a, err := addr(in)
			if err != nil {
				return Value{}, err
			}
			if f.RegClass(in.Dst) == ir.ClassFloat {
				fv[in.Dst] = math.Float64frombits(it.Mem[a])
			} else {
				iv[in.Dst] = int64(it.Mem[a])
			}
		case ir.OpStore:
			a, err := addr(in)
			if err != nil {
				return Value{}, err
			}
			if f.RegClass(in.A) == ir.ClassFloat {
				it.Mem[a] = math.Float64bits(fv[in.A])
			} else {
				it.Mem[a] = uint64(iv[in.A])
			}
		case ir.OpSpillLoad:
			a := f.SlotAddr(in.Imm)
			if f.RegClass(in.Dst) == ir.ClassFloat {
				fv[in.Dst] = math.Float64frombits(it.Mem[a])
			} else {
				iv[in.Dst] = int64(it.Mem[a])
			}
		case ir.OpSpillStore:
			a := f.SlotAddr(in.Imm)
			if f.RegClass(in.A) == ir.ClassFloat {
				it.Mem[a] = math.Float64bits(fv[in.A])
			} else {
				it.Mem[a] = uint64(iv[in.A])
			}
		case ir.OpBr:
			branch(0)
			continue
		case ir.OpBrIf:
			var taken bool
			if in.Cls == ir.ClassFloat {
				taken = fcmp(in.Cmp, fv[in.A], fv[in.B])
			} else {
				taken = icmp(in.Cmp, iv[in.A], iv[in.B])
			}
			if taken {
				branch(0)
			} else {
				branch(1)
			}
			continue
		case ir.OpRet:
			if in.A == ir.NoReg {
				return Value{}, nil
			}
			if f.RegClass(in.A) == ir.ClassFloat {
				return Float(fv[in.A]), nil
			}
			return Int(iv[in.A]), nil
		case ir.OpCall:
			callArgs := make([]Value, len(in.Args))
			for i, a := range in.Args {
				if f.RegClass(a) == ir.ClassFloat {
					callArgs[i] = Float(fv[a])
				} else {
					callArgs[i] = Int(iv[a])
				}
			}
			ret, err := it.Call(in.Callee, callArgs...)
			if err != nil {
				return Value{}, err
			}
			if in.Dst != ir.NoReg {
				if f.RegClass(in.Dst) == ir.ClassFloat {
					fv[in.Dst] = ret.F
				} else {
					iv[in.Dst] = ret.I
				}
			}
		default:
			return Value{}, fmt.Errorf("irinterp: %s: unexecutable op %s", f.Name, in.Op)
		}
		pc++
	}
}

func ipow(a, b int64) int64 {
	if b < 0 {
		switch a {
		case 1:
			return 1
		case -1:
			if b%2 == 0 {
				return 1
			}
			return -1
		default:
			return 0
		}
	}
	r := int64(1)
	for ; b > 0; b-- {
		r *= a
	}
	return r
}

func icmp(c ir.Cmp, a, b int64) bool {
	switch c {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	default:
		return a >= b
	}
}

func fcmp(c ir.Cmp, a, b float64) bool {
	switch c {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	default:
		return a >= b
	}
}
