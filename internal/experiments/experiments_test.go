package experiments_test

import (
	"strings"
	"testing"

	"regalloc"
	"regalloc/internal/experiments"
)

// TestSemanticsPreserved is the repository's most important
// integration test: for every dynamic workload, the result digest of
// the register-allocated machine code on the simulator must equal
// the digest of the reference IR interpreter — under every
// heuristic. Allocation (including spill code) must not change
// program behaviour.
func TestSemanticsPreserved(t *testing.T) {
	machine := regalloc.RTPC()
	for _, d := range experiments.Drivers() {
		d := d
		t.Run(d.Workload.Program, func(t *testing.T) {
			prog, err := regalloc.Compile(d.Workload.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := d.Run(experiments.NewInterpEngine(prog))
			if err != nil {
				t.Fatalf("reference interpreter: %v", err)
			}
			for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs, regalloc.MatulaBeck} {
				eng, err := experiments.NewVMEngine(prog, h, machine)
				if err != nil {
					t.Fatalf("%s: assemble: %v", h, err)
				}
				got, err := d.Run(eng)
				if err != nil {
					t.Fatalf("%s: run: %v", h, err)
				}
				if got != want {
					t.Errorf("%s: digest %x, want %x (allocation changed behaviour)", h, got, want)
				}
			}
		})
	}
}

// TestSemanticsPreservedNoOpt repeats the check on unoptimized code:
// the optimizer must not be load-bearing for correctness.
func TestSemanticsPreservedNoOpt(t *testing.T) {
	machine := regalloc.RTPC()
	for _, d := range experiments.Drivers() {
		d := d
		t.Run(d.Workload.Program, func(t *testing.T) {
			optProg, err := regalloc.Compile(d.Workload.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			noProg, err := regalloc.CompileNoOpt(d.Workload.Source)
			if err != nil {
				t.Fatalf("compile (no opt): %v", err)
			}
			want, err := d.Run(experiments.NewInterpEngine(optProg))
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			// The optimizer itself must preserve semantics...
			gotNoOpt, err := d.Run(experiments.NewInterpEngine(noProg))
			if err != nil {
				t.Fatalf("reference (no opt): %v", err)
			}
			if gotNoOpt != want {
				t.Fatalf("optimizer changed behaviour: %x vs %x", gotNoOpt, want)
			}
			// ...and unoptimized code must allocate and run
			// correctly too.
			eng, err := experiments.NewVMEngine(noProg, regalloc.Briggs, machine)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			got, err := d.Run(eng)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got != want {
				t.Errorf("digest %x, want %x", got, want)
			}
		})
	}
}

// TestSemanticsAcrossRegisterCounts runs quicksort at every Figure 6
// register count under both heuristics: spill code under extreme
// pressure must still compute the same answer.
func TestSemanticsAcrossRegisterCounts(t *testing.T) {
	w := experiments.Drivers()[4] // quicksort
	prog, err := regalloc.Compile(w.Workload.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := experiments.RunQuicksortN(experiments.NewInterpEngine(prog), 5000)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, k := range []int{16, 14, 12, 10, 8, 6, 5} {
		for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs, regalloc.MatulaBeck} {
			eng, err := experiments.NewVMEngine(prog, h, regalloc.RTPC().WithGPR(k))
			if err != nil {
				if h == regalloc.MatulaBeck && k < 8 {
					// Smallest-last ordering is cost-blind, so under
					// extreme pressure its optimistic select can
					// leave a spill temporary uncolored — a
					// legitimate, clearly-reported failure mode.
					t.Logf("k=%d %s: %v (expected for cost-blind ordering)", k, h, err)
					continue
				}
				t.Fatalf("k=%d %s: assemble: %v", k, h, err)
			}
			got, err := experiments.RunQuicksortN(eng, 5000)
			if err != nil {
				t.Fatalf("k=%d %s: %v", k, h, err)
			}
			if got != want {
				t.Errorf("k=%d %s: digest %x, want %x", k, h, got, want)
			}
		}
	}
}

// TestFigure5Shape checks the qualitative claims of Figure 5 on our
// regenerated table: the new heuristic never spills more ranges or
// more estimated cost than the old one, at least one routine
// improves strictly, routines with no spilling show no difference,
// and the per-program dynamic improvement is never negative.
func TestFigure5Shape(t *testing.T) {
	res, err := experiments.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, p := range res.Programs {
		for _, row := range p.Rows {
			if row.SpilledNew > row.SpilledOld {
				t.Errorf("%s/%s: new spills %d > old %d", p.Program, row.Routine, row.SpilledNew, row.SpilledOld)
			}
			if row.CostNew > row.CostOld+1e-9 {
				t.Errorf("%s/%s: new cost %.0f > old %.0f", p.Program, row.Routine, row.CostNew, row.CostOld)
			}
			if row.SpilledNew < row.SpilledOld {
				improved++
			}
		}
		if p.HasDynamic && p.CyclesNew > p.CyclesOld {
			t.Errorf("%s: new code slower (%d > %d cycles)", p.Program, p.CyclesNew, p.CyclesOld)
		}
	}
	if improved == 0 {
		t.Error("no routine improved; the optimistic heuristic should win somewhere")
	}
	// The SVD headline: a strict improvement in both spilled ranges
	// and estimated cost (§3: 51% and 22% in the paper).
	svd := res.Programs[0].Rows[0]
	if svd.SpilledNew >= svd.SpilledOld {
		t.Errorf("SVD: expected strict spill improvement, got %d vs %d", svd.SpilledNew, svd.SpilledOld)
	}
	if svd.CostNew >= svd.CostOld {
		t.Errorf("SVD: expected strict cost improvement, got %.0f vs %.0f", svd.CostNew, svd.CostOld)
	}
}

// TestFigure6Shape checks the quicksort study's qualitative claims:
// identical behaviour with ample registers, monotonically growing
// spill pressure as registers shrink, the new heuristic never worse
// on any metric, and strictly better somewhere in the constrained
// region (§3.2: "greater improvement in highly constrained
// situations").
func TestFigure6Shape(t *testing.T) {
	res, err := experiments.Figure6(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(res.Rows))
	}
	first := res.Rows[0]
	if first.K != 16 || first.SpilledOld != first.SpilledNew || first.CyclesOld != first.CyclesNew {
		t.Errorf("at 16 registers the methods should coincide: %+v", first)
	}
	prevOld := -1
	strictly := false
	for _, row := range res.Rows {
		if row.SpilledNew > row.SpilledOld {
			t.Errorf("k=%d: new spills more (%d > %d)", row.K, row.SpilledNew, row.SpilledOld)
		}
		if row.CyclesNew > row.CyclesOld {
			t.Errorf("k=%d: new code slower", row.K)
		}
		if row.SizeNew > row.SizeOld {
			t.Errorf("k=%d: new code larger", row.K)
		}
		if row.SpilledOld < prevOld {
			t.Errorf("k=%d: spills should not decrease as registers shrink", row.K)
		}
		prevOld = row.SpilledOld
		if row.SpilledNew < row.SpilledOld {
			strictly = true
		}
	}
	if !strictly {
		t.Error("expected a strict improvement at some constrained register count")
	}
	// The §3.2 observation: with few registers the program runs
	// noticeably slower than with the full set.
	last := res.Rows[len(res.Rows)-1]
	if last.CyclesOld <= first.CyclesOld {
		t.Error("8-register code should be slower than 16-register code")
	}
}

// TestFigure7Shape checks the phase-time table's structural claims:
// both heuristics converge within a few passes (the paper never saw
// more than three; we allow a small margin), per-pass spill counts
// shrink, and the new heuristic's first pass always has a color
// phase while Chaitin's spilling passes do not.
func TestFigure7Shape(t *testing.T) {
	res, err := experiments.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routines) != 4 {
		t.Fatalf("want 4 routines, got %d", len(res.Routines))
	}
	for _, rt := range res.Routines {
		for _, r := range []*regalloc.Result{rt.Old, rt.New} {
			if len(r.Passes) > 5 {
				t.Errorf("%s: %d passes; expected rapid convergence", rt.Name, len(r.Passes))
			}
			for i := 1; i < len(r.Passes); i++ {
				if r.Passes[i].Spilled > r.Passes[i-1].Spilled {
					t.Errorf("%s: pass %d spills grew (%d > %d)", rt.Name, i+1,
						r.Passes[i].Spilled, r.Passes[i-1].Spilled)
				}
			}
			if r.Passes[len(r.Passes)-1].Spilled != 0 {
				t.Errorf("%s: final pass still spilled", rt.Name)
			}
		}
		if rt.New.FirstPassSpilled() > rt.Old.FirstPassSpilled() {
			t.Errorf("%s: new heuristic spilled more ranges than old", rt.Name)
		}
	}
}

// TestAblationsShape sanity-checks the design-choice studies: the
// paper's cost/degree metric never has higher estimated spill cost
// than degree-only (which ignores cost), coalescing never increases
// object size, and the density sweep shows optimism's savings
// concentrated at constrained densities.
func TestAblationsShape(t *testing.T) {
	res, err := experiments.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Metric {
		if !row.CostOverDegree.OK {
			t.Fatalf("%s: the default metric failed", row.Routine)
		}
		if row.DegreeOnly.OK && row.DegreeOnly.SpillCost < row.CostOverDegree.SpillCost {
			t.Errorf("%s: degree-only beat cost/degree on cost (%.0f < %.0f)?",
				row.Routine, row.DegreeOnly.SpillCost, row.CostOverDegree.SpillCost)
		}
	}
	for _, row := range res.Coalesce {
		if row.OnObjectSize > row.OffObjectSize {
			t.Errorf("%s: coalescing grew the code (%d > %d)", row.Routine, row.OnObjectSize, row.OffObjectSize)
		}
		if row.OnCoalescedMoves == 0 {
			t.Errorf("%s: no moves coalesced", row.Routine)
		}
	}
	saved := 0
	for _, row := range res.Density {
		if row.BriggsSpilled > row.ChaitinSpilled {
			t.Errorf("p=%.2f: briggs spilled more on random graphs", row.P)
		}
		saved += row.ChaitinSpilled - row.BriggsSpilled
	}
	if saved == 0 {
		t.Error("optimism saved nothing across the density sweep")
	}
}

// TestIntegerStudyShape runs the §3.2-requested integer-kernel sweep
// and checks its qualitative behaviour: results identical across
// heuristics (enforced inside IntegerStudy), the new heuristic never
// spills more, pressure grows as registers shrink, and the new code
// is never slower.
func TestIntegerStudyShape(t *testing.T) {
	res, err := experiments.IntegerStudy()
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for _, row := range res.Rows {
		if row.SpilledNew > row.SpilledOld {
			t.Errorf("%s k=%d: new spills more (%d > %d)", row.Routine, row.K, row.SpilledNew, row.SpilledOld)
		}
		if row.SpilledNew < row.SpilledOld {
			improved = true
		}
		if row.CyclesNew > row.CyclesOld {
			t.Errorf("k=%d: new code slower", row.K)
		}
	}
	if !improved {
		t.Error("no improvement anywhere in the integer sweep")
	}
}

// TestSemanticsPreservedWithRemat reruns the differential check with
// Chaitin's rematerialization refinement enabled: recomputing
// constants instead of reloading them must not change any program's
// results.
func TestSemanticsPreservedWithRemat(t *testing.T) {
	machine := regalloc.RTPC()
	for _, d := range experiments.Drivers() {
		d := d
		t.Run(d.Workload.Program, func(t *testing.T) {
			prog, err := regalloc.Compile(d.Workload.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := d.Run(experiments.NewInterpEngine(prog))
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			opt := regalloc.DefaultOptions()
			opt.Rematerialize = true
			eng, err := experiments.NewVMEngineWith(prog, machine, opt)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			got, err := d.Run(eng)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got != want {
				t.Errorf("rematerialization changed behaviour: %x vs %x", got, want)
			}
		})
	}
}

// TestSemanticsPreservedWithSplit reruns the differential check with
// live-range splitting (the paper's §4 future work) enabled, at both
// full and constrained register counts.
func TestSemanticsPreservedWithSplit(t *testing.T) {
	for _, d := range experiments.Drivers() {
		d := d
		t.Run(d.Workload.Program, func(t *testing.T) {
			prog, err := regalloc.Compile(d.Workload.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := d.Run(experiments.NewInterpEngine(prog))
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, m := range []regalloc.Machine{regalloc.RTPC(), regalloc.RTPC().WithGPR(10)} {
				opt := regalloc.DefaultOptions()
				opt.Split = true
				opt.KInt = m.NumGPR
				eng, err := experiments.NewVMEngineWith(prog, m, opt)
				if err != nil {
					t.Fatalf("k=%d: assemble: %v", m.NumGPR, err)
				}
				got, err := d.Run(eng)
				if err != nil {
					t.Fatalf("k=%d: run: %v", m.NumGPR, err)
				}
				if got != want {
					t.Errorf("k=%d: splitting changed behaviour: %x vs %x", m.NumGPR, got, want)
				}
			}
		})
	}
}

// TestTableRenderers smoke-tests every table's String method (the
// output cmd/bench prints).
func TestTableRenderers(t *testing.T) {
	f5, err := experiments.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if s := f5.String(); !strings.Contains(s, "SVD") || !strings.Contains(s, "Spill Cost") {
		t.Fatalf("figure 5 rendering:\n%s", s)
	}
	f6, err := experiments.Figure6(2000)
	if err != nil {
		t.Fatal(err)
	}
	if s := f6.String(); !strings.Contains(s, "quicksort") || !strings.Contains(s, "Running Time") {
		t.Fatalf("figure 6 rendering:\n%s", s)
	}
	f7, err := experiments.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if s := f7.String(); !strings.Contains(s, "Build") || !strings.Contains(s, "GRADNT/Old") {
		t.Fatalf("figure 7 rendering:\n%s", s)
	}
	ab, err := experiments.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if s := ab.String(); !strings.Contains(s, "ablation 1") || !strings.Contains(s, "ablation 6") {
		t.Fatalf("ablation rendering:\n%s", s)
	}
	is, err := experiments.IntegerStudy()
	if err != nil {
		t.Fatal(err)
	}
	if s := is.String(); !strings.Contains(s, "HASH") {
		t.Fatalf("integer study rendering:\n%s", s)
	}
}

// TestPassStudy checks the §3.3 convergence claims on the whole
// suite: spill counts decay monotonically pass over pass, the final
// pass is always spill-free, the two heuristics differ by at most
// one pass on any routine, and nothing needs more than a handful of
// passes (the paper saw at most 3; our HSSIAN occasionally takes 4).
func TestPassStudy(t *testing.T) {
	res, err := experiments.PassStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 30 {
		t.Fatalf("only %d routines studied", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, spills := range [][]int{row.OldSpills, row.NewSpills} {
			for i := 1; i < len(spills); i++ {
				if spills[i] > spills[i-1] {
					t.Errorf("%s/%s: spills grew between passes: %v", row.Program, row.Routine, spills)
				}
			}
			if len(spills) > 0 && spills[len(spills)-1] != 0 {
				t.Errorf("%s/%s: final pass spilled: %v", row.Program, row.Routine, spills)
			}
		}
		if d := row.NewPasses - row.OldPasses; d < -1 || d > 1 {
			t.Errorf("%s/%s: pass counts differ by %d (old %d, new %d)",
				row.Program, row.Routine, d, row.OldPasses, row.NewPasses)
		}
	}
	if res.MaxPasses() > 5 {
		t.Errorf("max passes %d; expected rapid convergence", res.MaxPasses())
	}
}
