package experiments

import (
	"fmt"
	"math"
	"strings"

	"regalloc"
	"regalloc/internal/ir"
	"regalloc/internal/workloads"
)

// IRCRow is one routine of the Figure 5 corpus allocated twice at the
// paper's machine size: once by Briggs with the conservative-coalesce
// pre-pass (the strongest single-shot configuration) and once by
// iterated register coalescing. The move columns count the register
// copies each allocator leaves in the unit; the cost columns are the
// total estimated spill cost, which IRC's decoupled design holds
// equal to the Briggs baseline by construction.
type IRCRow struct {
	Program string
	Routine string

	BriggsMoves int
	IRCMoves    int

	BriggsCostMilli int64
	IRCCostMilli    int64
}

// IRCStudyResult is the iterated-register-coalescing study: per-unit
// surviving copies under Briggs conservative coalescing versus IRC,
// plus the aggregate over move-heavy units (>= 4 copies surviving the
// pre-pass — the units where coalescing quality is measurable).
type IRCStudyResult struct {
	Rows []IRCRow

	// Aggregates over move-heavy units only.
	HeavyBriggsMoves int
	HeavyIRCMoves    int
}

// EliminatedPct is the share of copies IRC removed from the
// move-heavy units, as a percentage of what the Briggs pre-pass left.
func (r *IRCStudyResult) EliminatedPct() float64 {
	if r.HeavyBriggsMoves == 0 {
		return 0
	}
	return 100 * float64(r.HeavyBriggsMoves-r.HeavyIRCMoves) / float64(r.HeavyBriggsMoves)
}

// irMoveCount counts the register-copy instructions left in an
// allocated unit.
func irMoveCount(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].IsMove() {
				n++
			}
		}
	}
	return n
}

// IRCStudy allocates every routine of the Figure 5 corpus at the
// paper's machine size under Briggs conservative coalescing and under
// George–Appel iterated register coalescing, reporting the copies
// each leaves behind. The single conservative pre-pass tests each
// move once against the full-pressure graph; IRC retests every move
// as simplification lowers its neighborhood's degrees, so the gap is
// the value of iteration. Runs feed the package observer.
func IRCStudy() (*IRCStudyResult, error) {
	briggs := defaultOptions()
	briggs.ConservativeCoalesce = true

	ircOpt := defaultOptions()
	ircOpt.Heuristic = regalloc.IRC

	out := &IRCStudyResult{}
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("irc study: compile %s: %w", w.Program, err)
		}
		for _, routine := range w.Routines {
			bres, err := prog.Allocate(routine, briggs)
			if err != nil {
				return nil, fmt.Errorf("irc study: %s/%s briggs: %w", w.Program, routine, err)
			}
			ires, err := prog.Allocate(routine, ircOpt)
			if err != nil {
				return nil, fmt.Errorf("irc study: %s/%s irc: %w", w.Program, routine, err)
			}
			row := IRCRow{
				Program:         w.Program,
				Routine:         routine,
				BriggsMoves:     irMoveCount(bres.Func),
				IRCMoves:        irMoveCount(ires.Func),
				BriggsCostMilli: int64(math.Round(bres.TotalSpillCost() * 1000)),
				IRCCostMilli:    int64(math.Round(ires.TotalSpillCost() * 1000)),
			}
			if row.BriggsMoves >= 4 {
				out.HeavyBriggsMoves += row.BriggsMoves
				out.HeavyIRCMoves += row.IRCMoves
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the study table.
func (r *IRCStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Iterated register coalescing vs Briggs conservative coalescing\n")
	fmt.Fprintf(&b, "%-8s %-8s | %6s %6s %6s | %9s %9s\n",
		"program", "routine", "briggs", "irc", "elim", "b.cost", "irc.cost")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, row := range r.Rows {
		elim := "-"
		if row.BriggsMoves > 0 {
			elim = fmt.Sprintf("%.0f%%", 100*float64(row.BriggsMoves-row.IRCMoves)/float64(row.BriggsMoves))
		}
		fmt.Fprintf(&b, "%-8s %-8s | %6d %6d %6s | %9.3f %9.3f\n",
			row.Program, row.Routine, row.BriggsMoves, row.IRCMoves, elim,
			float64(row.BriggsCostMilli)/1000, float64(row.IRCCostMilli)/1000)
	}
	fmt.Fprintf(&b, "move-heavy units (>= 4 surviving copies): briggs leaves %d, irc leaves %d (%.0f%% eliminated)\n",
		r.HeavyBriggsMoves, r.HeavyIRCMoves, r.EliminatedPct())
	b.WriteString("move columns count register copies left in the unit; cost columns are total estimated spill cost\n")
	return b.String()
}
