// Package rescache is the content-addressed result cache behind
// allocd's service path: an LRU over immutable byte values keyed by
// cachekey digests, with singleflight collapse so N concurrent
// identical requests cost one allocation.
//
// The cache stores rendered response bodies rather than live result
// structures: bytes are immutable (a hit is returned by reference,
// never copied or mutated), byte-identical across hits by
// construction, and their size is the natural currency for the
// capacity bound. Errors are never cached — a failed fill leaves no
// entry, so the next request retries.
//
// Oversized values: a single value larger than the configured byte
// bound is rejected at store time without touching the LRU. The fill
// still succeeds and the caller gets its bytes; the value is simply
// not retained, and — the contract part — every already-resident
// entry survives the attempt. An oversized store never evicts
// anything except a stale smaller value stored under the same key.
//
// Singleflight semantics: the first requester of a missing key (the
// leader) runs the fill; requesters arriving while the fill is in
// flight wait for it and share the value (Outcome Shared). A waiter
// whose context expires stops waiting and returns the context error
// with Outcome Abandoned — it was never served, so it counts in the
// Abandoned counter, not in Shared. The leader keeps going — its
// result still lands in the cache for the next request. If the
// leader's fill fails, every waiter of that flight receives the
// leader's error, typed as the fill returned it.
package rescache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"regalloc/internal/cachekey"
	"regalloc/internal/obs"
	"regalloc/internal/reqtrace"
)

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// Miss: this call ran the fill (it was the flight leader).
	Miss Outcome = iota
	// Hit: served from a stored entry.
	Hit
	// Shared: collapsed onto another call's in-flight fill.
	Shared
	// Abandoned: waited on another call's fill but gave up when its
	// own context expired; no value was served.
	Abandoned
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	case Abandoned:
		return "abandoned"
	default:
		return "miss"
	}
}

type entry struct {
	key cachekey.Key
	val []byte
}

type flight struct {
	done chan struct{} // closed when the fill completes
	val  []byte
	err  error
}

// Cache is a bounded LRU of immutable byte values with singleflight
// fills. Safe for concurrent use. The zero value is not ready; use
// New.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front: most recently used; values: *entry
	items      map[cachekey.Key]*list.Element
	flights    map[cachekey.Key]*flight

	hits, misses, shared, abandoned, evictions int64
	hitLat, fillLat                            obs.LatencyHistogram
}

// New returns a cache bounded by maxEntries stored values and
// maxBytes stored value bytes (either 0: that bound is off; a value
// larger than maxBytes on its own is simply not stored).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[cachekey.Key]*list.Element),
		flights:    make(map[cachekey.Key]*flight),
	}
}

// Do returns the value for key, filling it at most once across
// concurrent callers. The returned bytes are shared and must not be
// mutated. ctx bounds only this caller's wait: the leader's fill is
// never abandoned mid-run (its result is cached for whoever asks
// next), but a waiter whose ctx expires returns early with ctx's
// error.
func (c *Cache) Do(ctx context.Context, key cachekey.Key, fill func() ([]byte, error)) ([]byte, Outcome, error) {
	t0 := time.Now()
	rt, parent := reqtrace.FromContext(ctx)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.hits++
		c.hitLat.Observe(time.Since(t0))
		c.mu.Unlock()
		rt.Record(parent, "cache:lookup", t0, time.Since(t0),
			reqtrace.Attr{Key: "outcome", Value: Hit.String()})
		return val, Hit, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
			c.mu.Lock()
			c.shared++
			c.mu.Unlock()
			rt.Record(parent, "cache:lookup", t0, time.Since(t0),
				reqtrace.Attr{Key: "outcome", Value: Shared.String()})
			return fl.val, Shared, fl.err
		case <-ctx.Done():
			// Not a share: this caller was never served. Counting it
			// as Shared (as the cache once did) inflated the hit rate
			// with lookups that returned an error, and hid timeout
			// storms behind a healthy-looking singleflight counter.
			c.mu.Lock()
			c.abandoned++
			c.mu.Unlock()
			rt.Record(parent, "cache:lookup", t0, time.Since(t0),
				reqtrace.Attr{Key: "outcome", Value: Abandoned.String()})
			return nil, Abandoned, ctx.Err()
		}
	}
	// Leader: publish the flight, fill outside the lock.
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.misses++
	c.mu.Unlock()
	lookup := rt.Record(parent, "cache:lookup", t0, time.Since(t0),
		reqtrace.Attr{Key: "outcome", Value: Miss.String()})

	tf := time.Now()
	val, err := fill()
	dur := time.Since(tf)
	if err == nil {
		rt.Record(lookup, "cache:fill", tf, dur)
	} else {
		rt.Record(lookup, "cache:fill", tf, dur,
			reqtrace.Attr{Key: "error", Value: err.Error()})
	}

	c.mu.Lock()
	c.fillLat.Observe(dur)
	delete(c.flights, key)
	if err == nil {
		c.store(key, val)
	}
	c.mu.Unlock()

	fl.val, fl.err = val, err
	close(fl.done)
	return val, Miss, err
}

// Get returns a stored value without filling (for tests and
// introspection).
func (c *Cache) Get(key cachekey.Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// store inserts under c.mu. A key raced to storage by two leaders
// (possible when a waiter-turned-retrier refills) keeps the newer
// value.
func (c *Cache) store(key cachekey.Key, val []byte) {
	// A value larger than the whole byte budget can never be resident,
	// so reject it before touching the LRU. Admitting it first and
	// evicting down (as the cache once did) flushed every resident
	// entry on the way to dropping the one value that could not stay.
	if c.maxBytes > 0 && int64(len(val)) > c.maxBytes {
		if el, ok := c.items[key]; ok {
			// An oversized refill of a stored key cannot keep the stale
			// bytes either.
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= int64(len(el.Value.(*entry).val))
			c.evictions++
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	// The new value fits the budget on its own, so eviction from the
	// back always terminates with at least the fresh entry resident.
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.val))
	c.evictions++
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters and capacity state.
func (c *Cache) Stats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		Abandoned:   c.abandoned,
		Evictions:   c.evictions,
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		MaxEntries:  c.maxEntries,
		MaxBytes:    c.maxBytes,
		HitLatency:  c.hitLat,
		FillLatency: c.fillLat,
	}
}
