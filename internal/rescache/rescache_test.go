package rescache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"regalloc/internal/cachekey"
)

func key(s string) cachekey.Key {
	h := cachekey.New("test")
	h.Str(s)
	return h.Key()
}

func fillWith(b []byte) func() ([]byte, error) {
	return func() ([]byte, error) { return b, nil }
}

func TestHitMissAndByteIdentity(t *testing.T) {
	c := New(8, 0)
	ctx := context.Background()

	v1, out, err := c.Do(ctx, key("a"), fillWith([]byte("alpha")))
	if err != nil || out != Miss || string(v1) != "alpha" {
		t.Fatalf("first Do: %q %v %v", v1, out, err)
	}
	v2, out, err := c.Do(ctx, key("a"), func() ([]byte, error) {
		t.Fatal("fill ran on a hit")
		return nil, nil
	})
	if err != nil || out != Hit {
		t.Fatalf("second Do: %v %v", out, err)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("hit not byte-identical: %q vs %q", v1, v2)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Shared != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitLatency.Count != 1 || st.FillLatency.Count != 1 {
		t.Fatalf("latency counts = %d hit, %d fill", st.HitLatency.Count, st.FillLatency.Count)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8, 0)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, key("a"), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed fill left an entry")
	}
	v, out, err := c.Do(ctx, key("a"), fillWith([]byte("ok")))
	if err != nil || out != Miss || string(v) != "ok" {
		t.Fatalf("retry after error: %q %v %v", v, out, err)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New(2, 0)
	ctx := context.Background()
	c.Do(ctx, key("a"), fillWith([]byte("a")))
	c.Do(ctx, key("b"), fillWith([]byte("b")))
	c.Do(ctx, key("a"), fillWith(nil)) // touch a: b becomes oldest
	c.Do(ctx, key("c"), fillWith([]byte("c")))
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("LRU evicted the recently-touched entry")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(0, 10)
	ctx := context.Background()
	c.Do(ctx, key("a"), fillWith(make([]byte, 6)))
	c.Do(ctx, key("b"), fillWith(make([]byte, 6)))
	st := c.Stats()
	if st.Bytes > 10 {
		t.Fatalf("byte bound exceeded: %d", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no eviction under byte pressure")
	}
	// A single oversized value is not retained.
	c2 := New(0, 4)
	c2.Do(ctx, key("big"), fillWith(make([]byte, 100)))
	if c2.Stats().Bytes > 4 {
		t.Fatalf("oversized value retained: %+v", c2.Stats())
	}
}

// TestSingleflightCollapse is the core service guarantee: N
// concurrent identical requests run the fill exactly once, and
// every non-leader is accounted as shared or hit.
func TestSingleflightCollapse(t *testing.T) {
	c := New(8, 0)
	ctx := context.Background()
	const n = 16
	var fills int64
	var mu sync.Mutex
	gate := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(ctx, key("hot"), func() ([]byte, error) {
				mu.Lock()
				fills++
				mu.Unlock()
				<-gate // hold every waiter in the same flight
				return []byte("value"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let the goroutines queue up on the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	for i, v := range vals {
		if string(v) != "value" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != n-1 {
		t.Fatalf("stats = %+v: want 1 miss and %d hit+shared", st, n-1)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := New(8, 0)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), key("slow"), func() ([]byte, error) {
			<-gate
			return []byte("late"), nil
		})
	}()
	// Wait until the flight is published.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, key("slow"), fillWith(nil))
	if !errors.Is(err, context.Canceled) || out != Abandoned {
		t.Fatalf("cancelled waiter: out=%v err=%v", out, err)
	}
	// The abandoned wait is its own counter: it was never served, so
	// it must not inflate Shared (and through it the hit rate).
	if st := c.Stats(); st.Abandoned != 1 || st.Shared != 0 {
		t.Fatalf("stats after abandoned wait = %+v", st)
	}
	// The leader is unaffected and its value lands for the next call.
	close(gate)
	<-leaderDone
	v, out, err := c.Do(context.Background(), key("slow"), fillWith(nil))
	if err != nil || out != Hit || string(v) != "late" {
		t.Fatalf("after leader completes: %q %v %v", v, out, err)
	}
}

// TestOversizedStoreLeavesCacheIntact is the regression for the
// LRU-flush bug: a value larger than the byte bound used to be
// admitted first and evicted down, which flushed every resident
// entry on the way to dropping the one value that could not stay.
func TestOversizedStoreLeavesCacheIntact(t *testing.T) {
	c := New(0, 32)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		c.Do(ctx, key(fmt.Sprintf("k%d", i)), fillWith(make([]byte, 4)))
	}
	if c.Len() != 8 {
		t.Fatalf("setup stored %d of 8 entries", c.Len())
	}
	// The fill still succeeds and the caller gets its bytes; only
	// retention is refused.
	v, out, err := c.Do(ctx, key("huge"), fillWith(make([]byte, 100)))
	if err != nil || out != Miss || len(v) != 100 {
		t.Fatalf("oversized fill: %d bytes, %v, %v", len(v), out, err)
	}
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(key(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("entry k%d evicted by an oversized store", i)
		}
	}
	if st := c.Stats(); st.Entries != 8 || st.Bytes != 32 || st.Evictions != 0 {
		t.Fatalf("stats after oversized store = %+v", st)
	}
	// An oversized refill of a stored key cannot keep the stale bytes.
	c2 := New(0, 32)
	c2.Do(ctx, key("a"), fillWith(make([]byte, 4)))
	c2.store(key("a"), make([]byte, 100))
	if _, ok := c2.Get(key("a")); ok {
		t.Fatal("oversized refill left the stale smaller value resident")
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64, 0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key(fmt.Sprintf("k%d", i%8))
			for j := 0; j < 50; j++ {
				v, _, err := c.Do(context.Background(), k, fillWith([]byte{byte(i % 8)}))
				if err != nil || v[0] != byte(i%8) {
					t.Errorf("k%d: %v %v", i%8, v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Requests() != 32*50 {
		t.Fatalf("requests = %d", st.Requests())
	}
}
