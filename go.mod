module regalloc

go 1.22
