package ssa

import (
	"sort"

	"regalloc/internal/cfg"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
)

// Construct rewrites f into strict pruned SSA form (in place) and
// returns the SSA view. The steps, in order: normalize the CFG
// (prune unreachable blocks, give the entry block no predecessors),
// add explicit zero definitions for registers upward-exposed at
// entry, split critical edges, compute dominators and dominance
// frontiers, insert pruned phis, and rename definitions along the
// dominator tree.
func Construct(f *ir.Func) (*Func, error) {
	pruneUnreachable(f)
	normalizeEntry(f)
	s := &Func{F: f, spilledEver: make(map[ir.Reg]bool)}
	s.ZeroDefs = insertZeroDefs(f)
	s.SplitEdges = splitCriticalEdges(f)
	s.Info = cfg.Analyze(f)
	s.Kids = domChildren(s.Info)
	s.Phis = make([][]Phi, len(f.Blocks))
	insertPhis(s)
	if err := rename(s); err != nil {
		return nil, err
	}
	return s, nil
}

// pruneUnreachable drops blocks no path from entry reaches. The
// renamer walks the dominator tree, which spans only reachable
// blocks, so unreachable code would otherwise survive un-renamed.
func pruneUnreachable(f *ir.Func) {
	reach := make([]bool, len(f.Blocks))
	var stack []int
	reach[0] = true
	stack = append(stack, 0)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, r := range reach {
		all = all && r
	}
	if all {
		return
	}
	newID := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if !reach[i] {
			newID[i] = -1
			continue
		}
		newID[i] = len(kept)
		kept = append(kept, b)
	}
	for _, b := range kept {
		b.ID = newID[b.ID]
		for si, s := range b.Succs {
			b.Succs[si] = newID[s]
		}
	}
	f.Blocks = kept
	f.RecomputePreds()
}

// normalizeEntry guarantees the entry block has no predecessors: a
// loop that branches back to block 0 would otherwise need phi
// arguments for an edge that does not exist (the function-entry
// "edge"). The parameter prologue moves into the fresh entry.
func normalizeEntry(f *ir.Func) {
	if len(f.Blocks[0].Preds) == 0 {
		return
	}
	old := f.Blocks[0]
	// Peel the leading OpParam run off the old entry; OpParam is
	// entry-prologue-only by convention.
	nparams := 0
	for nparams < len(old.Instrs) && old.Instrs[nparams].Op == ir.OpParam {
		nparams++
	}
	entry := &ir.Block{ID: 0}
	entry.Instrs = append(entry.Instrs, old.Instrs[:nparams]...)
	entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	entry.Succs = []int{1}
	old.Instrs = old.Instrs[nparams:]

	blocks := make([]*ir.Block, 0, len(f.Blocks)+1)
	blocks = append(blocks, entry)
	blocks = append(blocks, f.Blocks...)
	for i := 1; i < len(blocks); i++ {
		b := blocks[i]
		b.ID = i
		for si, s := range b.Succs {
			b.Succs[si] = s + 1
		}
	}
	f.Blocks = blocks
	f.RecomputePreds()
}

// insertZeroDefs gives every register that is upward-exposed at
// function entry an explicit `const 0` definition in the entry
// prologue. Both the IR interpreter and the VM zero-initialize their
// register files, so the rewrite preserves semantics while making
// the function strict: every use is now dominated by a definition,
// the precondition for SSA renaming (and for the chordality of the
// SSA interference graph).
func insertZeroDefs(f *ir.Func) int {
	lv := dataflow.ComputeLiveness(f)
	entryLive := lv.In[0]
	if entryLive.Empty() {
		return 0
	}
	entry := f.Blocks[0]
	at := 0
	for at < len(entry.Instrs) && entry.Instrs[at].Op == ir.OpParam {
		at++
	}
	var zeros []ir.Instr
	entryLive.ForEach(func(r int) {
		zeros = append(zeros, ir.Instr{Op: ir.OpConst, Dst: ir.Reg(r), A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
	})
	out := make([]ir.Instr, 0, len(entry.Instrs)+len(zeros))
	out = append(out, entry.Instrs[:at]...)
	out = append(out, zeros...)
	out = append(out, entry.Instrs[at:]...)
	entry.Instrs = out
	return len(zeros)
}

// splitCriticalEdges inserts a fresh branch-only block on every edge
// from a multi-successor block to a multi-predecessor block. After
// splitting, every predecessor of a join ends in an unconditional
// branch, giving phi lowering a place to put parallel copies (and
// phi insertion the guarantee that join predecessors are distinct).
func splitCriticalEdges(f *ir.Func) int {
	npreds := make([]int, len(f.Blocks))
	for i, b := range f.Blocks {
		npreds[i] = len(b.Preds)
	}
	split := 0
	orig := len(f.Blocks)
	for bi := 0; bi < orig; bi++ {
		b := f.Blocks[bi]
		if len(b.Succs) < 2 {
			continue
		}
		for si, s := range b.Succs {
			if npreds[s] < 2 {
				continue
			}
			nb := f.NewBlock()
			nb.Instrs = []ir.Instr{{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
			nb.Succs = []int{s}
			b.Succs[si] = nb.ID
			split++
		}
	}
	if split > 0 {
		f.RecomputePreds()
	}
	return split
}

// domChildren builds the dominator-tree child lists, each ordered by
// reverse-postorder position so every tree walk is deterministic.
func domChildren(info *cfg.Info) [][]int {
	kids := make([][]int, len(info.IDom))
	for b, id := range info.IDom {
		if b == 0 || id < 0 {
			continue
		}
		kids[id] = append(kids[id], b)
	}
	for _, ks := range kids {
		sort.Slice(ks, func(i, j int) bool { return info.RPONum[ks[i]] < info.RPONum[ks[j]] })
	}
	return kids
}

// frontiers computes each block's dominance frontier with the
// Cooper–Harvey–Kennedy join-point walk.
func frontiers(f *ir.Func, info *cfg.Info) [][]int {
	df := make([][]int, len(f.Blocks))
	mark := make([]int, len(f.Blocks))
	for i := range mark {
		mark[i] = -1
	}
	for _, b := range f.Blocks {
		if len(b.Preds) < 2 || info.RPONum[b.ID] < 0 {
			continue
		}
		for _, p := range b.Preds {
			if info.RPONum[p] < 0 {
				continue
			}
			for r := p; r != info.IDom[b.ID]; r = info.IDom[r] {
				if mark[r] != b.ID {
					mark[r] = b.ID
					df[r] = append(df[r], b.ID)
				}
			}
		}
	}
	return df
}

// insertPhis places pruned phis: register r gets a phi at join y iff
// y is in the iterated dominance frontier of r's definition sites
// and r is live into y. Phis are definition sites themselves, hence
// the worklist.
func insertPhis(s *Func) {
	f := s.F
	df := frontiers(f, s.Info)
	lv := dataflow.ComputeLiveness(f)

	nr := f.NumRegs()
	defsites := make([][]int, nr)
	lastDef := make([]int, nr)
	for i := range lastDef {
		lastDef[i] = -1
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg && lastDef[d] != b.ID {
				lastDef[d] = b.ID
				defsites[d] = append(defsites[d], b.ID)
			}
		}
	}

	hasPhi := make([]int, len(f.Blocks))
	queued := make([]int, len(f.Blocks))
	for i := range hasPhi {
		hasPhi[i] = -1
		queued[i] = -1
	}
	var work []int
	for r := 0; r < nr; r++ {
		if len(defsites[r]) == 0 {
			continue
		}
		work = work[:0]
		for _, b := range defsites[r] {
			queued[b] = r
			work = append(work, b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if hasPhi[y] == r || !lv.In[y].Has(r) {
					continue
				}
				hasPhi[y] = r
				s.Phis[y] = append(s.Phis[y], Phi{
					Var:  ir.Reg(r),
					Dst:  ir.NoReg,
					Args: make([]ir.Reg, len(f.Blocks[y].Preds)),
				})
				if queued[y] != r {
					queued[y] = r
					work = append(work, y)
				}
			}
		}
	}
	for _, ps := range s.Phis {
		for i := range ps {
			for j := range ps[i].Args {
				ps[i].Args[j] = ir.NoReg
			}
		}
	}
}

// rename walks the dominator tree, replacing every definition with a
// fresh register and every use with the definition on top of its
// variable's stack — standard Cytron et al. renaming, with phi
// arguments filled in at each successor.
//
// Copies are propagated on the way: a move's destination variable is
// bound to the *source's* current name instead of a fresh one, and
// the move is deleted. In SSA this is always sound — the source name
// is immutable, so it denotes the same value at every later use.
// This is the renaming-time equivalent of the aggressive coalescing
// the Chaitin path runs: without it, chains of IR-level copies (loop
// exit values, argument shuffles) become distinct simultaneously-live
// values that inflate MAXLIVE past what the program needs.
func rename(s *Func) error {
	f := s.F
	orig := f.NumRegs() // registers before renaming are "variables"
	stacks := make([][]ir.Reg, orig)
	fresh := func(v ir.Reg) ir.Reg {
		nd := f.NewReg(f.RegClass(v))
		if fl := f.RegFlags(v); fl != 0 {
			f.SetRegFlags(nd, fl)
		}
		return nd
	}
	top := func(v ir.Reg) ir.Reg {
		st := stacks[v]
		if len(st) == 0 {
			return ir.NoReg
		}
		return st[len(st)-1]
	}
	// predIndex(y, p) is the position of p in y's predecessor list;
	// after critical-edge splitting a join's predecessors are
	// distinct, so the position is unique.
	predIndex := func(y, p int) int {
		for j, q := range f.Blocks[y].Preds {
			if q == p {
				return j
			}
		}
		return -1
	}

	var walk func(b int) error
	walk = func(b int) error {
		var pushed []ir.Reg
		push := func(v, nd ir.Reg) {
			stacks[v] = append(stacks[v], nd)
			pushed = append(pushed, v)
		}
		blk := f.Blocks[b]
		for i := range s.Phis[b] {
			ph := &s.Phis[b][i]
			ph.Dst = fresh(ph.Var)
			push(ph.Var, ph.Dst)
		}
		var drop []int
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			rewrite := func(r *ir.Reg) error {
				if *r == ir.NoReg {
					return nil
				}
				nd := top(*r)
				if nd == ir.NoReg {
					return errUndefined(f, *r, "instruction use")
				}
				*r = nd
				return nil
			}
			if err := rewrite(&in.A); err != nil {
				return err
			}
			if err := rewrite(&in.B); err != nil {
				return err
			}
			if err := rewrite(&in.C); err != nil {
				return err
			}
			for ai := range in.Args {
				if err := rewrite(&in.Args[ai]); err != nil {
					return err
				}
			}
			if in.Dst != ir.NoReg {
				v := in.Dst
				if in.IsMove() {
					push(v, in.A)
					drop = append(drop, i)
					s.CopyProps++
					continue
				}
				in.Dst = fresh(v)
				push(v, in.Dst)
			}
		}
		if len(drop) > 0 {
			out := blk.Instrs[:0]
			di := 0
			for i := range blk.Instrs {
				if di < len(drop) && drop[di] == i {
					di++
					continue
				}
				out = append(out, blk.Instrs[i])
			}
			blk.Instrs = out
		}
		for _, t := range blk.Succs {
			j := predIndex(t, b)
			for i := range s.Phis[t] {
				ph := &s.Phis[t][i]
				nd := top(ph.Var)
				if nd == ir.NoReg {
					return errUndefined(f, ph.Var, "phi argument")
				}
				ph.Args[j] = nd
			}
		}
		for _, k := range s.Kids[b] {
			if err := walk(k); err != nil {
				return err
			}
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			v := pushed[i]
			stacks[v] = stacks[v][:len(stacks[v])-1]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}

	// The parameter registers were renamed with everything else;
	// point Params at the new names via the entry prologue.
	entry := f.Entry()
	for i := range entry.Instrs {
		in := &entry.Instrs[i]
		if in.Op != ir.OpParam {
			break
		}
		if int(in.Imm) < len(f.Params) {
			f.Params[in.Imm] = in.Dst
		}
	}
	return nil
}
