// Package liverange implements Chaitin's "renumber" phase: it
// partitions each variable's definitions and uses into webs (maximal
// communities of def–use chains) and rewrites the function so each
// web occupies a distinct virtual register. Webs — not source
// variables — are the nodes of the interference graph, and after
// spill code is inserted the next renumbering naturally splits a
// spilled variable into the per-reference micro-ranges the paper
// describes (§3.3: "spilling a live range does not entirely remove
// it; it simply divides that live range into several shorter live
// ranges").
package liverange

import (
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
)

// Renumber rewrites f in place so that every live range (web) has
// its own virtual register, and returns the number of live ranges.
func Renumber(f *ir.Func) int {
	r := dataflow.ComputeReaching(f)
	ns := len(r.Sites)

	// Union-find over def sites: two defs belong to the same web
	// when some use is reached by both.
	parent := make([]int, ns)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Keep the smaller root for deterministic numbering.
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}

	for _, b := range f.Blocks {
		r.WalkUses(f, b, func(_ int, _ *ir.Instr, _ ir.Reg, ds []int) {
			for i := 1; i < len(ds); i++ {
				union(ds[0], ds[i])
			}
		})
	}

	// Number webs in order of their smallest def site, which keeps
	// numbering deterministic (the paper's footnote 4: ties between
	// equal-cost ranges are broken by an arbitrary but fixed index).
	webOf := make([]ir.Reg, ns)
	for i := range webOf {
		webOf[i] = ir.NoReg
	}
	var cls []ir.Class
	var flags []ir.Flags
	next := ir.Reg(0)
	for si := 0; si < ns; si++ {
		root := find(si)
		if webOf[root] == ir.NoReg {
			webOf[root] = next
			orig := r.Sites[root].Reg
			cls = append(cls, f.RegClass(orig))
			flags = append(flags, f.RegFlags(orig))
			next++
		}
		webOf[si] = webOf[root]
	}

	// Index real def sites by (block, instr).
	siteAt := make([]map[int]int, len(f.Blocks))
	for i := range siteAt {
		siteAt[i] = make(map[int]int)
	}
	for si, s := range r.Sites {
		if s.Index >= 0 {
			siteAt[s.Block][s.Index] = si
		}
	}

	// Rewrite every operand. Uses are resolved against the reaching
	// set *before* the instruction's own definition takes effect.
	for _, b := range f.Blocks {
		cur := r.In[b.ID].Copy()
		for i := range b.Instrs {
			in := &b.Instrs[i]
			resolve := func(u ir.Reg) ir.Reg {
				if u == ir.NoReg {
					return ir.NoReg
				}
				for _, si := range r.ByReg[u] {
					if cur.Has(si) {
						return webOf[si]
					}
				}
				// A use with no reaching def cannot occur: every
				// upward-exposed or undefined register received a
				// fabricated entry def site.
				panic("liverange: use without reaching definition")
			}
			in.A = resolve(in.A)
			in.B = resolve(in.B)
			in.C = resolve(in.C)
			for j, a := range in.Args {
				in.Args[j] = resolve(a)
			}
			if d := in.Def(); d != ir.NoReg {
				for _, si := range r.ByReg[d] {
					cur.Remove(si)
				}
				si := siteAt[b.ID][i]
				cur.Add(si)
				in.Dst = webOf[si]
			}
		}
	}

	// Params refer to the webs of their OpParam definitions.
	remapParams(f)

	f.ResetRegs(cls, flags)
	return int(next)
}

// remapParams repoints f.Params at the rewritten OpParam
// destinations.
func remapParams(f *ir.Func) {
	entry := f.Entry()
	for i := range entry.Instrs {
		in := &entry.Instrs[i]
		if in.Op != ir.OpParam {
			continue
		}
		f.Params[in.Imm] = in.Dst
	}
}

// LiveRangeSizes returns, for each register of f, the number of
// definition and use occurrences — a cheap proxy for range size used
// in tests and diagnostics.
func LiveRangeSizes(f *ir.Func) (defs, uses []int) {
	defs = make([]int, f.NumRegs())
	uses = make([]int, f.NumRegs())
	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				defs[d]++
			}
			ubuf = in.AppendUses(ubuf[:0])
			for _, u := range ubuf {
				uses[u]++
			}
		}
	}
	return defs, uses
}
