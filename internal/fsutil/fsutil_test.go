package fsutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSyncCloseOK(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("data"); err != nil {
		t.Fatal(err)
	}
	if err := SyncClose(f); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "data" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestSyncCloseReportsClosedFile(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := SyncClose(f); err == nil {
		t.Fatal("SyncClose on a closed file returned nil")
	}
}
