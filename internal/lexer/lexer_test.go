package lexer_test

import (
	"testing"

	"regalloc/internal/lexer"
	"regalloc/internal/token"
)

func kinds(src string) []token.Kind {
	lx := lexer.New(src)
	var out []token.Kind
	for {
		t := lx.Next()
		out = append(out, t.Kind)
		if t.Kind == token.EOF {
			return out
		}
	}
}

func expect(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %s, want %s", src, i, got[i], want[i])
		}
	}
}

func TestBasicTokens(t *testing.T) {
	expect(t, "X = A + B*C\n",
		token.IDENT, token.ASSIGN, token.IDENT, token.PLUS, token.IDENT,
		token.STAR, token.IDENT, token.EOL, token.EOF)
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	expect(t, "do while (i .lt. n)\nenddo\n",
		token.DO, token.WHILE, token.LPAREN, token.IDENT, token.LT,
		token.IDENT, token.RPAREN, token.EOL, token.ENDDO, token.EOL, token.EOF)
}

func TestDottedOperators(t *testing.T) {
	expect(t, "IF (A .GE. B .AND. C .NE. D) THEN\n",
		token.IF, token.LPAREN, token.IDENT, token.GE, token.IDENT,
		token.AND, token.IDENT, token.NE, token.IDENT, token.RPAREN,
		token.THEN, token.EOL, token.EOF)
}

func TestModernRelationalOperators(t *testing.T) {
	expect(t, "IF (A <= B) X = 1\n",
		token.IF, token.LPAREN, token.IDENT, token.LE, token.IDENT,
		token.RPAREN, token.IDENT, token.ASSIGN, token.INTCONST,
		token.EOL, token.EOF)
}

func TestNumbers(t *testing.T) {
	lx := lexer.New("42 3.25 1.0E-8 2D0 .5 6.\n")
	tok := lx.Next()
	if tok.Kind != token.INTCONST || tok.Int != 42 {
		t.Fatalf("42: got %v %d", tok.Kind, tok.Int)
	}
	tok = lx.Next()
	if tok.Kind != token.REALCONST || tok.Real != 3.25 {
		t.Fatalf("3.25: got %v %g", tok.Kind, tok.Real)
	}
	tok = lx.Next()
	if tok.Kind != token.REALCONST || tok.Real != 1.0e-8 {
		t.Fatalf("1.0E-8: got %v %g", tok.Kind, tok.Real)
	}
	tok = lx.Next()
	if tok.Kind != token.REALCONST || tok.Real != 2.0 {
		t.Fatalf("2D0: got %v %g", tok.Kind, tok.Real)
	}
	tok = lx.Next()
	if tok.Kind != token.REALCONST || tok.Real != 0.5 {
		t.Fatalf(".5: got %v %g", tok.Kind, tok.Real)
	}
	tok = lx.Next()
	if tok.Kind != token.REALCONST || tok.Real != 6.0 {
		t.Fatalf("6.: got %v %g", tok.Kind, tok.Real)
	}
}

// TestIntDottedOperator: "1.LT.2" must lex as INT .LT. INT, not as
// the real 1.0 followed by garbage.
func TestIntDottedOperator(t *testing.T) {
	expect(t, "IF (1.LT.2) X = 1\n",
		token.IF, token.LPAREN, token.INTCONST, token.LT, token.INTCONST,
		token.RPAREN, token.IDENT, token.ASSIGN, token.INTCONST,
		token.EOL, token.EOF)
}

func TestCommentLines(t *testing.T) {
	src := "C full-line comment\n* starred comment\nX = 1 ! trailing\nC\n"
	expect(t, src,
		token.IDENT, token.ASSIGN, token.INTCONST, token.EOL, token.EOF)
}

// TestCVariableNotComment is the regression test for the bug that
// silently deleted SVD's rotation code: a statement whose first
// non-blank character is 'C' (the variable) must NOT be treated as a
// comment — 'C' only marks comments in column one.
func TestCVariableNotComment(t *testing.T) {
	expect(t, "      C = G/H\n",
		token.IDENT, token.ASSIGN, token.IDENT, token.SLASH, token.IDENT,
		token.EOL, token.EOF)
}

func TestContinuation(t *testing.T) {
	expect(t, "X = A + &\n    B\n",
		token.IDENT, token.ASSIGN, token.IDENT, token.PLUS, token.IDENT,
		token.EOL, token.EOF)
}

func TestPowerOperator(t *testing.T) {
	expect(t, "Y = X**2\n",
		token.IDENT, token.ASSIGN, token.IDENT, token.POW, token.INTCONST,
		token.EOL, token.EOF)
}

func TestLogicalConstants(t *testing.T) {
	lx := lexer.New("X = .TRUE.\n")
	lx.Next() // X
	lx.Next() // =
	tok := lx.Next()
	if tok.Kind != token.INTCONST || tok.Int != 1 {
		t.Fatalf(".TRUE.: got %v %d", tok.Kind, tok.Int)
	}
}

func TestEOLSynthesizedAtEOF(t *testing.T) {
	expect(t, "END", token.END, token.EOL, token.EOF)
}

func TestIllegalCharacter(t *testing.T) {
	lx := lexer.New("X = $\n")
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
	}
	if len(lx.Errors()) == 0 {
		t.Fatal("expected a diagnostic for '$'")
	}
}

func TestMalformedDotted(t *testing.T) {
	lx := lexer.New("X .FOO. Y\n")
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
	}
	if len(lx.Errors()) == 0 {
		t.Fatal("expected a diagnostic for .FOO.")
	}
}
